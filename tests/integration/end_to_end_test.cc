/** @file Whole-system integration tests: real learning through the
 *  simulated network, rack-scale hierarchy, async staleness effects,
 *  and failure injection. */

#include <gtest/gtest.h>

#include "harness/experiment.hh"

namespace isw {
namespace {

using dist::JobConfig;
using dist::RunResult;
using dist::StrategyKind;

TEST(EndToEnd, A2cLearnsThroughTheSwitch)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kA2c, StrategyKind::kSyncIswitch);
    cfg.wire_model_bytes = 0;
    cfg.stop.max_iterations = 700;
    cfg.curve_every = 50;
    RunResult res = dist::runJob(cfg);
    ASSERT_GE(res.reward_curve.points().size(), 4u);
    const double early = res.reward_curve.points()[1].v;
    EXPECT_GT(res.final_avg_reward, early + 2.0)
        << "distributed A2C should improve measurably";
}

TEST(EndToEnd, PpoLearnsOnRackScaleTree)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo, StrategyKind::kSyncIswitch,
                                /*workers=*/6);
    cfg.wire_model_bytes = 0;
    cfg.use_tree = true;
    cfg.cluster.per_rack = 3;
    cfg.stop.max_iterations = 150;
    RunResult res = dist::runJob(cfg);
    EXPECT_GE(res.iterations, 150u);
    EXPECT_GT(res.final_avg_reward, 20.0); // hopping, not idling
}

TEST(EndToEnd, AsyncIswitchLearnsDespiteStaleness)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo, StrategyKind::kAsyncIswitch);
    cfg.wire_model_bytes = 0;
    cfg.stop.max_iterations = 400;
    RunResult res = dist::runJob(cfg);
    EXPECT_GT(res.final_avg_reward, 20.0);
}

TEST(EndToEnd, AsyncPsLearnsThroughCentralServer)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo, StrategyKind::kAsyncPs);
    cfg.wire_model_bytes = 0;
    cfg.stop.max_iterations = 400;
    RunResult res = dist::runJob(cfg);
    EXPECT_GT(res.final_avg_reward, 15.0);
}

TEST(EndToEnd, SyncLearningUnderPacketLoss)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo, StrategyKind::kSyncIswitch);
    cfg.wire_model_bytes = 0;
    cfg.cluster.edge_link.loss_prob = 0.01;
    cfg.stop.max_iterations = 60;
    RunResult res = dist::runJob(cfg);
    EXPECT_GE(res.iterations, 60u)
        << "loss recovery must keep all rounds completing";
}

TEST(EndToEnd, HierarchyHandlesTwelveWorkers)
{
    JobConfig cfg = JobConfig::forBenchmark(
        rl::Algo::kPpo, StrategyKind::kSyncIswitch, /*workers=*/12);
    cfg.wire_model_bytes = 0;
    cfg.use_tree = true;
    cfg.cluster.per_rack = 3;
    cfg.stop.max_iterations = 20;
    RunResult res = dist::runJob(cfg);
    EXPECT_GE(res.iterations, 20u);
}

TEST(EndToEnd, MoreWorkersShortenAsyncUpdateInterval)
{
    JobConfig four =
        JobConfig::forBenchmark(rl::Algo::kPpo, StrategyKind::kAsyncPs, 4);
    four.wire_model_bytes = 0;
    four.stop.max_iterations = 60;
    JobConfig eight = four;
    eight.num_workers = 8;
    RunResult r4 = dist::runJob(four);
    RunResult r8 = dist::runJob(eight);
    EXPECT_LT(r8.perIterationMs(), r4.perIterationMs());
}

TEST(EndToEnd, TimingJobReproducesAggregationOrderingOnDqn)
{
    // The headline mechanism at the paper-scale wire: aggregation
    // latency ranks iSW < AR < PS for the 6.41 MB DQN model.
    auto mk = [](StrategyKind k) {
        JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kDqn, k);
        cfg.stop.max_iterations = 5;
        return dist::runJob(cfg);
    };
    const double agg_ps =
        mk(StrategyKind::kSyncPs)
            .breakdown.meanMs(dist::IterComponent::kGradAggregation);
    const double agg_ar =
        mk(StrategyKind::kSyncAllReduce)
            .breakdown.meanMs(dist::IterComponent::kGradAggregation);
    const double agg_isw =
        mk(StrategyKind::kSyncIswitch)
            .breakdown.meanMs(dist::IterComponent::kGradAggregation);
    EXPECT_LT(agg_isw, agg_ar);
    EXPECT_LT(agg_ar, agg_ps);
    EXPECT_LT(agg_isw, agg_ps / 3.0)
        << "in-switch aggregation should be several times faster";
}

} // namespace
} // namespace isw
