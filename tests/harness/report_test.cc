/** @file Table/CSV rendering and JSON report-schema tests. */

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "dist/metrics.hh"
#include "harness/json.hh"
#include "harness/report.hh"
#include "harness/runner.hh"

namespace isw::harness {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Every printed line has equal width.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.row({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("x"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"h1", "h2"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

TEST(Fmt, FixedDigits)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Scientific)
{
    EXPECT_EQ(fmtSci(1.4e6), "1.40E+06");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    banner("Table 1", os);
    EXPECT_NE(os.str().find("Table 1"), std::string::npos);
}

TEST(Json, DumpParseRoundTrip)
{
    json::Value v = json::Value::object();
    v["name"] = "timing/DQN/PS/w4";
    v["iterations"] = std::uint64_t{60};
    v["reward"] = 17.25;
    v["reached_target"] = false;
    json::Value arr = json::Value::array();
    arr.push(1.5);
    arr.push(json::Value()); // null (NaN serialization target)
    v["curve"] = std::move(arr);

    const json::Value back = json::Value::parse(v.dump(2));
    EXPECT_EQ(back.dump(), v.dump());
    EXPECT_EQ(back.find("name")->asString(), "timing/DQN/PS/w4");
    EXPECT_EQ(back.find("iterations")->asNumber(), 60.0);
    EXPECT_FALSE(back.find("reached_target")->asBool());
    EXPECT_TRUE(back.find("curve")->items()[1].isNull());
}

TEST(Json, DeterministicKeyOrderAndFormatting)
{
    json::Value a = json::Value::object();
    a["zeta"] = 1;
    a["alpha"] = 2;
    json::Value b = json::Value::object();
    b["alpha"] = 2;
    b["zeta"] = 1;
    // Sorted object keys: insertion order must not leak into output.
    EXPECT_EQ(a.dump(), b.dump());
    EXPECT_LT(a.dump().find("alpha"), a.dump().find("zeta"));
}

/** A RunResult with every serialized field populated. */
dist::RunResult
sampleResult()
{
    dist::RunResult r;
    r.iterations = 120;
    r.total_time = 120 * sim::fromMillis(42.5);
    r.final_avg_reward = 196.75;
    r.reached_target = true;
    r.breakdown.add(dist::IterComponent::kForwardPass, sim::fromMillis(30.0));
    r.breakdown.add(dist::IterComponent::kGradAggregation, sim::fromMillis(8.0));
    r.extras["gradients_committed"] = 118.0;
    r.extras["gradients_skipped"] = 2.0;
    r.reward_curve.record(1'000'000, 25.0);
    r.reward_curve.record(2'000'000, 180.0);
    return r;
}

TEST(ResultJson, SchemaFieldsPresent)
{
    const json::Value v = resultToJson(sampleResult());
    // The fields the issue pins down for BENCH_<name>.json consumers.
    ASSERT_NE(v.find("iterations"), nullptr);
    ASSERT_NE(v.find("per_iter_ms"), nullptr);
    ASSERT_NE(v.find("reward"), nullptr);
    ASSERT_NE(v.find("reached_target"), nullptr);
    ASSERT_NE(v.find("total_sim_ns"), nullptr);
    ASSERT_NE(v.find("breakdown_ms"), nullptr);
    ASSERT_NE(v.find("curve"), nullptr);
    EXPECT_EQ(v.find("iterations")->asNumber(), 120.0);
    EXPECT_NEAR(v.find("per_iter_ms")->asNumber(), 42.5, 1e-12);
    EXPECT_EQ(v.find("reward")->asNumber(), 196.75);
    EXPECT_TRUE(v.find("reached_target")->asBool());
}

TEST(ResultJson, RoundTripThroughText)
{
    const dist::RunResult orig = sampleResult();
    const json::Value parsed =
        json::Value::parse(resultToJson(orig).dump(2));
    const dist::RunResult back = resultFromJson(parsed);

    EXPECT_EQ(back.iterations, orig.iterations);
    EXPECT_EQ(back.total_time, orig.total_time);
    EXPECT_EQ(back.final_avg_reward, orig.final_avg_reward);
    EXPECT_EQ(back.reached_target, orig.reached_target);
    EXPECT_NEAR(back.perIterationMs(), orig.perIterationMs(), 1e-9);
    EXPECT_NEAR(back.breakdown.meanMs(dist::IterComponent::kForwardPass),
                30.0, 1e-9);
    EXPECT_NEAR(back.breakdown.meanMs(dist::IterComponent::kGradAggregation),
                8.0, 1e-9);
    EXPECT_EQ(back.extras.at("gradients_committed"), 118.0);
    EXPECT_EQ(back.extras.at("gradients_skipped"), 2.0);
    ASSERT_EQ(back.reward_curve.points().size(), 2u);
    EXPECT_EQ(back.reward_curve.points()[1].v, 180.0);

    // Serialization is a fixed point: dump(fromJson(toJson(r))) is
    // stable, which is what the parity test relies on.
    EXPECT_EQ(resultToJson(back).dump(), resultToJson(orig).dump());
}

TEST(ConfigJson, NanTargetSerializesAsNull)
{
    dist::JobConfig cfg;
    cfg.stop.target_reward = std::numeric_limits<double>::quiet_NaN();
    const json::Value v = configToJson(cfg);
    const json::Value *stop = v.find("stop");
    ASSERT_NE(stop, nullptr);
    ASSERT_NE(stop->find("target_reward"), nullptr);
    EXPECT_TRUE(stop->find("target_reward")->isNull());
    // And the text form is real JSON, not a bare nan token.
    EXPECT_EQ(v.dump().find("nan"), std::string::npos);
}

} // namespace
} // namespace isw::harness
