/** @file Table/CSV rendering tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/report.hh"

namespace isw::harness {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer-name", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    // Every printed line has equal width.
    std::istringstream is(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(is, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(Table, ShortRowsPadded)
{
    Table t({"a", "b", "c"});
    t.row({"x"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("x"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t({"h1", "h2"});
    t.row({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

TEST(Fmt, FixedDigits)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, Scientific)
{
    EXPECT_EQ(fmtSci(1.4e6), "1.40E+06");
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream os;
    banner("Table 1", os);
    EXPECT_NE(os.str().find("Table 1"), std::string::npos);
}

} // namespace
} // namespace isw::harness
