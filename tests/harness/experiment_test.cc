/** @file Experiment preset tests. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/experiment.hh"

namespace isw::harness {
namespace {

TEST(Experiment, TimingJobUsesPaperWire)
{
    const auto cfg =
        timingJob(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    EXPECT_NEAR(cfg.wire_model_bytes / (1024.0 * 1024.0), 6.41, 0.01);
    EXPECT_GT(cfg.stop.max_iterations, 0u);
    EXPECT_FALSE(cfg.stop.hasTarget());
}

TEST(Experiment, LearningJobSetsTarget)
{
    const auto cfg =
        learningJob(rl::Algo::kPpo, dist::StrategyKind::kSyncIswitch);
    EXPECT_TRUE(cfg.stop.hasTarget());
    EXPECT_DOUBLE_EQ(cfg.stop.target_reward,
                     targetRewardFor(rl::Algo::kPpo));
}

TEST(Experiment, LearningJobScalesLargeWires)
{
    ::unsetenv("ISW_BENCH_SCALE");
    const auto dqn =
        learningJob(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    EXPECT_LT(dqn.wire_model_bytes,
              static_cast<std::uint64_t>(6.41 * 1024 * 1024));
    // Small models keep their true footprint.
    const auto ppo =
        learningJob(rl::Algo::kPpo, dist::StrategyKind::kSyncIswitch);
    EXPECT_NEAR(ppo.wire_model_bytes / 1024.0, 40.02, 0.01);
}

TEST(Experiment, FullScaleKeepsPaperWire)
{
    ::setenv("ISW_BENCH_SCALE", "full", 1);
    const auto dqn =
        learningJob(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    EXPECT_NEAR(dqn.wire_model_bytes / (1024.0 * 1024.0), 6.41, 0.01);
    ::unsetenv("ISW_BENCH_SCALE");
}

TEST(Experiment, AsyncCapsExceedSync)
{
    EXPECT_GT(learnCapFor(rl::Algo::kDqn, /*async=*/true, false),
              learnCapFor(rl::Algo::kDqn, /*async=*/false, false));
}

TEST(Experiment, TargetsExistForAllAlgorithms)
{
    for (auto a : {rl::Algo::kDqn, rl::Algo::kA2c, rl::Algo::kPpo,
                   rl::Algo::kDdpg})
        EXPECT_NE(targetRewardFor(a), 0.0);
}

} // namespace
} // namespace isw::harness
