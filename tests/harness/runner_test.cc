/**
 * @file
 * Experiment-runner tests. The headline test is determinism parity:
 * the same spec batch executed serially (--jobs 1) and on an
 * 8-thread pool must produce byte-identical RunResults, because each
 * spec runs in its own self-contained Simulation seeded only by its
 * config.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/runner.hh"

namespace isw::harness {
namespace {

/** A diverse batch of cheap specs (few iterations each). */
std::vector<ExperimentSpec>
smallBatch()
{
    std::vector<ExperimentSpec> specs;
    auto add = [&specs](rl::Algo algo, dist::StrategyKind k) {
        ExperimentSpec spec = timingSpec(algo, k);
        spec.name += "/unit";
        spec.config.stop.max_iterations = 5;
        specs.push_back(std::move(spec));
    };
    add(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
    add(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    add(rl::Algo::kPpo, dist::StrategyKind::kSyncAllReduce);
    add(rl::Algo::kPpo, dist::StrategyKind::kAsyncIswitch);
    add(rl::Algo::kA2c, dist::StrategyKind::kSyncShardedPs);
    add(rl::Algo::kDdpg, dist::StrategyKind::kAsyncPs);
    return specs;
}

RunnerOptions
quietOpts(std::size_t jobs)
{
    RunnerOptions opts;
    opts.jobs = jobs;
    opts.log_sink = [](const std::string &) {};
    return opts;
}

TEST(Runner, ParallelMatchesSerialByteForByte)
{
    const std::vector<ExperimentSpec> specs = smallBatch();

    Runner serial(quietOpts(1));
    Runner parallel(quietOpts(8));
    ASSERT_EQ(serial.jobs(), 1u);
    ASSERT_EQ(parallel.jobs(), 8u);

    const auto a = serial.runAll(specs);
    const auto b = parallel.runAll(specs);
    ASSERT_EQ(a.size(), specs.size());
    ASSERT_EQ(b.size(), specs.size());

    for (std::size_t i = 0; i < specs.size(); ++i) {
        // The JSON dump covers every result field (iterations, timing,
        // reward, breakdown, extras, curve) with deterministic
        // formatting, so string equality is byte-level result parity.
        EXPECT_EQ(resultToJson(a[i]).dump(), resultToJson(b[i]).dump())
            << "spec " << specs[i].name
            << " diverged between --jobs 1 and --jobs 8";
    }
}

TEST(Runner, WarmPacketPoolDoesNotChangeResults)
{
    // Pool-recycling parity: the first run starts on a cold
    // thread-local PacketPool, the second reuses every recycled
    // packet, control block, and float buffer the first one parked.
    // Simulated results must be byte-identical either way.
    ExperimentSpec spec =
        timingSpec(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    spec.config.stop.max_iterations = 5;

    Runner cold(quietOpts(1));
    const std::string first = resultToJson(cold.run(spec)).dump();
    Runner warm(quietOpts(1));
    const std::string second = resultToJson(warm.run(spec)).dump();
    EXPECT_EQ(first, second)
        << "warm-pool rerun diverged from cold-pool run";
}

TEST(Runner, ReportCarriesPerfBlockOutsideResult)
{
    // Wall-clock-class throughput metrics must appear in the report
    // next to wall_clock_ms but never inside resultToJson (which the
    // parity tests compare byte-for-byte).
    ExperimentSpec spec =
        timingSpec(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    spec.config.stop.max_iterations = 3;

    Runner runner(quietOpts(1));
    const dist::RunResult &res = runner.run(spec);
    EXPECT_TRUE(res.perf.count("events_per_sec"));
    EXPECT_TRUE(res.perf.count("pool_allocs"));
    EXPECT_TRUE(res.extras.count("events_executed"));
    EXPECT_TRUE(res.extras.count("packets_sealed"));
    EXPECT_GT(res.extras.at("events_executed"), 0.0);
    EXPECT_GT(res.extras.at("packets_sealed"), 0.0);

    const json::Value result_json = resultToJson(res);
    EXPECT_EQ(result_json.find("perf"), nullptr);

    const json::Value report = runner.reportJson("unit");
    const json::Value *runs = report.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), 1u);
    const json::Value *perf = runs->items()[0].find("perf");
    ASSERT_NE(perf, nullptr);
    EXPECT_NE(perf->find("events_per_sec"), nullptr);
}

TEST(Runner, DeduplicatesIdenticalSpecsBeforeSubmission)
{
    ExperimentSpec spec =
        timingSpec(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
    spec.config.stop.max_iterations = 4;

    Runner runner(quietOpts(4));
    // Same config three times (one under a different display name):
    // one execution, three results.
    ExperimentSpec alias = spec;
    alias.name = "some/other/name";
    const auto results = runner.runAll({spec, alias, spec});
    EXPECT_EQ(runner.executed(), 1u);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(resultToJson(results[0]).dump(),
              resultToJson(results[1]).dump());
    EXPECT_EQ(resultToJson(results[0]).dump(),
              resultToJson(results[2]).dump());
}

TEST(Runner, MemoizesAcrossCalls)
{
    ExperimentSpec spec =
        timingSpec(rl::Algo::kPpo, dist::StrategyKind::kSyncIswitch);
    spec.config.stop.max_iterations = 4;

    Runner runner(quietOpts(2));
    const dist::RunResult &first = runner.run(spec);
    const dist::RunResult &again = runner.run(spec);
    EXPECT_EQ(&first, &again); // cached entry, not a re-run
    EXPECT_EQ(runner.executed(), 1u);
}

TEST(Runner, ResultsComeBackInSpecOrder)
{
    // Distinct iteration caps make each result identifiable.
    std::vector<ExperimentSpec> specs;
    for (std::uint64_t cap : {7u, 3u, 5u}) {
        ExperimentSpec spec =
            timingSpec(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
        spec.config.stop.max_iterations = cap;
        specs.push_back(std::move(spec));
    }
    Runner runner(quietOpts(8));
    const auto results = runner.runAll(specs);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].iterations, 7u);
    EXPECT_EQ(results[1].iterations, 3u);
    EXPECT_EQ(results[2].iterations, 5u);
}

TEST(Runner, SeedOverrideChangesRunIdentity)
{
    ExperimentSpec spec =
        timingSpec(rl::Algo::kA2c, dist::StrategyKind::kSyncPs);
    spec.config.stop.max_iterations = 3;
    ExperimentSpec reseeded = spec;
    reseeded.seed = 99;

    EXPECT_FALSE(SpecKey::of(spec.normalizedConfig()) ==
                 SpecKey::of(reseeded.normalizedConfig()));

    Runner runner(quietOpts(2));
    runner.run(spec);
    runner.run(reseeded);
    EXPECT_EQ(runner.executed(), 2u);
}

TEST(SpecKey, BitEqualConfigsShareAKey)
{
    const dist::JobConfig a =
        timingJob(rl::Algo::kDqn, dist::StrategyKind::kSyncIswitch);
    const dist::JobConfig b = a;
    EXPECT_TRUE(SpecKey::of(a) == SpecKey::of(b));
    EXPECT_FALSE(SpecKey::of(a) < SpecKey::of(b));
    EXPECT_FALSE(SpecKey::of(b) < SpecKey::of(a));
}

TEST(SpecKey, NanTargetRewardIsSelfEqual)
{
    // Timing configs carry target_reward = NaN; the bit-pattern
    // encoding must keep the ordering total (a raw double NaN would
    // compare false both ways against everything, corrupting the map).
    dist::JobConfig a =
        timingJob(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
    ASSERT_TRUE(std::isnan(a.stop.target_reward));
    dist::JobConfig b = a;
    EXPECT_TRUE(SpecKey::of(a) == SpecKey::of(b));

    b.stop.target_reward = 195.0;
    EXPECT_FALSE(SpecKey::of(a) == SpecKey::of(b));
}

TEST(SpecKey, EveryReportedFieldChangesTheKey)
{
    const dist::JobConfig base =
        timingJob(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
    const SpecKey k0 = SpecKey::of(base);

    dist::JobConfig c = base;
    c.seed += 1;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.num_workers += 1;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.wire_model_bytes += 1;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.use_tree = !c.use_tree;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.agg_threshold += 1;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.cluster.edge_link.bandwidth_bps *= 2.0;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.agent.lr *= 0.5;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.cluster.ha.with_backup = true;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.cluster.ha.repl_mode = core::ReplicationMode::kBatchedLazy;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.cluster.ha.staleness_window *= 2;
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.faults.switch_crashes.push_back(net::SwitchCrash{sim::kSec, 0});
    EXPECT_FALSE(SpecKey::of(c) == k0);

    c = base;
    c.faults.control_partitions.push_back(
        net::ControlPartition{sim::kSec, 2 * sim::kSec});
    EXPECT_FALSE(SpecKey::of(c) == k0);
}

TEST(Runner, FaultySpecDoesNotAbortTheSweep)
{
    // One misconfigured spec (zero workers -> the job constructor
    // throws) must yield an errored RunResult in its slot while every
    // other spec completes normally.
    std::vector<ExperimentSpec> specs = smallBatch();
    ExperimentSpec broken =
        timingSpec(rl::Algo::kDqn, dist::StrategyKind::kSyncPs);
    broken.name = "broken/zero-workers";
    broken.config.num_workers = 0;
    specs.insert(specs.begin() + 1, broken);

    Runner runner(quietOpts(4));
    const auto results = runner.runAll(specs);
    ASSERT_EQ(results.size(), specs.size());
    EXPECT_FALSE(results[1].ok());
    EXPECT_FALSE(results[1].error.empty());
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 1)
            continue;
        EXPECT_TRUE(results[i].ok()) << specs[i].name << ": "
                                     << results[i].error;
        EXPECT_GT(results[i].iterations, 0u);
    }

    // The report carries the failure alongside the successes.
    const json::Value report = runner.reportJson("unit");
    const json::Value *runs = report.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), specs.size());
    const json::Value *err = runs->items()[1].find("error");
    ASSERT_NE(err, nullptr);
    EXPECT_FALSE(err->asString().empty());
    EXPECT_EQ(runs->items()[1].find("name")->asString(),
              "broken/zero-workers");
}

TEST(Runner, WatchdogFailureIsCapturedPerSpec)
{
    // A run that trips the simulated-time watchdog reports through
    // RunResult::error, not an exception out of the pool.
    ExperimentSpec spec =
        timingSpec(rl::Algo::kPpo, dist::StrategyKind::kSyncPs);
    spec.config.stop.max_iterations = 50;
    spec.config.stop.max_sim_time = 1; // 1ns: nothing can finish
    Runner runner(quietOpts(1));
    const dist::RunResult &res = runner.run(spec);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("watchdog"), std::string::npos) << res.error;
}

TEST(Runner, ReportContainsEveryExecutedRun)
{
    const std::vector<ExperimentSpec> specs = smallBatch();
    Runner runner(quietOpts(4));
    runner.runAll(specs);

    const json::Value report = runner.reportJson("unit");
    EXPECT_EQ(report.find("bench")->asString(), "unit");
    const json::Value *runs = report.find("runs");
    ASSERT_NE(runs, nullptr);
    ASSERT_EQ(runs->size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        // First-submission order == spec order for a fresh runner.
        EXPECT_EQ(runs->items()[i].find("name")->asString(),
                  specs[i].name);
    }
}

} // namespace
} // namespace isw::harness
