/** @file Tests that the paper's published numbers are transcribed
 *  consistently (internal cross-checks of Tables 3/4/5). */

#include <gtest/gtest.h>

#include "harness/calibration.hh"

namespace isw::harness {
namespace {

TEST(Calibration, SyncTableHasAllAlgorithms)
{
    EXPECT_EQ(paperSyncTable().size(), 4u);
    EXPECT_EQ(paperAsyncTable().size(), 4u);
}

TEST(Calibration, Table3SpeedupsMatchAbstract)
{
    // "iSwitch offers ... up to 3.66x for synchronous ... 3.71x for
    // asynchronous" — the DQN rows.
    EXPECT_NEAR(paperSyncSpeedup(rl::Algo::kDqn,
                                 dist::StrategyKind::kSyncIswitch),
                3.66, 0.01);
    EXPECT_NEAR(paperAsyncSpeedup(rl::Algo::kDqn), 3.71, 0.01);
}

TEST(Calibration, SyncSpeedupRangeMatchesPaper)
{
    // Paper: 1.72x – 3.66x across benchmarks for sync iSwitch.
    double lo = 1e9, hi = 0;
    for (const auto &row : paperSyncTable()) {
        const double s =
            paperSyncSpeedup(row.algo, dist::StrategyKind::kSyncIswitch);
        lo = std::min(lo, s);
        hi = std::max(hi, s);
    }
    EXPECT_NEAR(lo, 1.72, 0.06);
    EXPECT_NEAR(hi, 3.66, 0.01);
}

TEST(Calibration, ArLosesOnSmallModels)
{
    // Table 3: AR is 0.91x / 0.90x for PPO / DDPG.
    EXPECT_LT(paperSyncSpeedup(rl::Algo::kPpo,
                               dist::StrategyKind::kSyncAllReduce),
              1.0);
    EXPECT_LT(paperSyncSpeedup(rl::Algo::kDdpg,
                               dist::StrategyKind::kSyncAllReduce),
              1.0);
    EXPECT_GT(paperSyncSpeedup(rl::Algo::kDqn,
                               dist::StrategyKind::kSyncAllReduce),
              1.5);
}

TEST(Calibration, PerIterationTimesDeriveFromTable4)
{
    // DQN PS: 31.72h over 1.4M iterations = 81.6 ms.
    EXPECT_NEAR(paperSyncPerIterMs(rl::Algo::kDqn,
                                   dist::StrategyKind::kSyncPs),
                81.6, 0.1);
    EXPECT_NEAR(paperSyncPerIterMs(rl::Algo::kPpo,
                                   dist::StrategyKind::kSyncIswitch),
                9.9, 0.1);
}

TEST(Calibration, AsyncIterationReductionsMatchText)
{
    // Paper §6.2: 44.4%–77.8% reduction in iterations.
    double lo = 1.0, hi = 0.0;
    for (const auto &row : paperAsyncTable()) {
        const double reduction = 1.0 - row.isw_iterations /
                                           row.ps_iterations;
        lo = std::min(lo, reduction);
        hi = std::max(hi, reduction);
    }
    EXPECT_NEAR(lo, 0.444, 0.01);
    EXPECT_NEAR(hi, 0.778, 0.01);
}

TEST(Calibration, AsyncPerIterCrossoverForSmallModels)
{
    // Table 5: iSW per-iteration is *larger* for PPO/DDPG, yet wins
    // end-to-end through fewer iterations.
    const auto &rows = paperAsyncTable();
    for (const auto &r : rows) {
        if (r.algo == rl::Algo::kPpo || r.algo == rl::Algo::kDdpg) {
            EXPECT_GT(r.isw_periter_ms, r.ps_periter_ms);
        }
        EXPECT_LT(r.isw_hours, r.ps_hours);
    }
}

TEST(Calibration, UnknownStrategyThrows)
{
    EXPECT_THROW(
        paperSyncSpeedup(rl::Algo::kDqn, dist::StrategyKind::kAsyncPs),
        std::invalid_argument);
}

} // namespace
} // namespace isw::harness
