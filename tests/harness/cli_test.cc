/** @file Command-line parser tests. */

#include <gtest/gtest.h>

#include "harness/cli.hh"

namespace isw::harness {
namespace {

Cli
make(std::vector<const char *> args)
{
    args.insert(args.begin(), "prog");
    return Cli(static_cast<int>(args.size()), args.data());
}

TEST(Cli, ParsesKeyValuePairs)
{
    Cli cli = make({"--workers", "8", "--algo", "dqn"});
    EXPECT_EQ(cli.getInt("workers", 4), 8);
    EXPECT_EQ(cli.get("algo"), "dqn");
    EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, BooleanFlags)
{
    Cli cli = make({"--csv", "--workers", "2"});
    EXPECT_TRUE(cli.has("csv"));
    EXPECT_FALSE(cli.has("verbose"));
    EXPECT_EQ(cli.getInt("workers", 4), 2);
}

TEST(Cli, FallbacksWhenAbsent)
{
    Cli cli = make({});
    EXPECT_EQ(cli.getInt("workers", 4), 4);
    EXPECT_DOUBLE_EQ(cli.getDouble("loss", 0.5), 0.5);
    EXPECT_EQ(cli.get("algo", "ppo"), "ppo");
}

TEST(Cli, NumericValidation)
{
    Cli cli = make({"--workers", "abc", "--rate", "1.5x"});
    EXPECT_THROW(cli.getInt("workers", 0), std::invalid_argument);
    EXPECT_THROW(cli.getDouble("rate", 0.0), std::invalid_argument);
}

TEST(Cli, DoubleParsing)
{
    Cli cli = make({"--rate", "0.125"});
    EXPECT_DOUBLE_EQ(cli.getDouble("rate", 0.0), 0.125);
}

TEST(Cli, RejectsPositionalArguments)
{
    EXPECT_THROW(make({"positional"}), std::invalid_argument);
    EXPECT_THROW(make({"--"}), std::invalid_argument);
}

TEST(Cli, RequireKnownCatchesTypos)
{
    Cli cli = make({"--workes", "8"});
    EXPECT_THROW(cli.requireKnown({"workers"}), std::invalid_argument);
    Cli ok = make({"--workers", "8"});
    EXPECT_NO_THROW(ok.requireKnown({"workers", "csv"}));
}

TEST(Cli, NegativeNumbersAreValues)
{
    // "-3" does not start with "--", so it binds as a value.
    Cli cli = make({"--offset", "-3"});
    EXPECT_EQ(cli.getInt("offset", 0), -3);
}

} // namespace
} // namespace isw::harness
