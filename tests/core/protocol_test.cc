/** @file Codec and segmentation tests for the iSwitch wire protocol. */

#include <gtest/gtest.h>

#include "core/protocol.hh"
#include "sim/random.hh"

namespace isw::core {
namespace {

TEST(Protocol, SegCountArithmetic)
{
    EXPECT_EQ(segCount(0), 0u);
    EXPECT_EQ(segCount(4), 1u);
    EXPECT_EQ(segCount(kFloatsPerSeg * 4), 1u);
    EXPECT_EQ(segCount(kFloatsPerSeg * 4 + 1), 2u);
    // The paper's DQN model: 6.41 MB.
    const std::uint64_t dqn = static_cast<std::uint64_t>(6.41 * 1024 * 1024);
    EXPECT_EQ(segCount(dqn), (dqn / 4 + 365) / 366);
}

TEST(Protocol, FloatsInSegCoversExactly)
{
    const std::uint64_t bytes = 4 * (2 * kFloatsPerSeg + 10);
    EXPECT_EQ(floatsInSeg(0, bytes), kFloatsPerSeg);
    EXPECT_EQ(floatsInSeg(1, bytes), kFloatsPerSeg);
    EXPECT_EQ(floatsInSeg(2, bytes), 10u);
    EXPECT_EQ(floatsInSeg(3, bytes), 0u);
    std::uint64_t total = 0;
    for (std::uint64_t s = 0; s < segCount(bytes); ++s)
        total += floatsInSeg(s, bytes);
    EXPECT_EQ(total, bytes / 4);
}

TEST(Protocol, ControlRoundTripNoValue)
{
    net::ControlPayload c{net::Action::kReset, 0, false};
    const auto bytes = encodeControl(c);
    EXPECT_EQ(bytes.size(), 1u);
    const auto back = decodeControl(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->action, net::Action::kReset);
    EXPECT_FALSE(back->has_value);
}

TEST(Protocol, ControlRoundTripWithValue)
{
    net::ControlPayload c{net::Action::kSetH, 0xDEADBEEFCAFE1234ULL, true};
    const auto bytes = encodeControl(c);
    EXPECT_EQ(bytes.size(), 9u);
    const auto back = decodeControl(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->action, net::Action::kSetH);
    EXPECT_EQ(back->value, 0xDEADBEEFCAFE1234ULL);
}

TEST(Protocol, ControlDecodeRejectsMalformed)
{
    EXPECT_FALSE(decodeControl({}).has_value());
    EXPECT_FALSE(decodeControl({1, 2}).has_value()); // bad length
    EXPECT_FALSE(decodeControl({0}).has_value());    // bad action code
    EXPECT_FALSE(decodeControl({99}).has_value());
}

TEST(Protocol, AllActionsRoundTrip)
{
    for (auto a :
         {net::Action::kJoin, net::Action::kLeave, net::Action::kReset,
          net::Action::kSetH, net::Action::kFBcast, net::Action::kHelp,
          net::Action::kHalt, net::Action::kAck}) {
        const auto back = decodeControl(encodeControl({a, 5, true}));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(back->action, a);
    }
}

TEST(Protocol, DataRoundTripPreservesFloats)
{
    net::ChunkPayload d;
    d.seg = 12345;
    d.wire_floats = 5;
    d.values = {1.5f, -2.25f, 0.0f, 3.14159f, -1e-8f};
    const auto bytes = encodeData(d);
    EXPECT_EQ(bytes.size(), 8u + 20u);
    const auto back = decodeData(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seg, 12345u);
    ASSERT_EQ(back->values.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(back->values[i], d.values[i]);
}

TEST(Protocol, DataEncodePadsWithZeros)
{
    net::ChunkPayload d;
    d.seg = 1;
    d.wire_floats = 4;
    d.values = {7.0f}; // 3 padding slots
    const auto back = decodeData(encodeData(d));
    ASSERT_TRUE(back.has_value());
    ASSERT_EQ(back->values.size(), 4u);
    EXPECT_EQ(back->values[0], 7.0f);
    EXPECT_EQ(back->values[1], 0.0f);
    EXPECT_EQ(back->values[3], 0.0f);
}

TEST(Protocol, DataDecodeRejectsMalformed)
{
    EXPECT_FALSE(decodeData({1, 2, 3}).has_value());        // short
    EXPECT_FALSE(decodeData(std::vector<std::uint8_t>(10, 0)) // ragged
                     .has_value());
}

/** Property sweep: random payloads round-trip bit-exactly. */
class ProtocolRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(ProtocolRoundTrip, RandomDataPayloads)
{
    sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
    net::ChunkPayload d;
    d.seg = static_cast<std::uint64_t>(rng.uniformInt(0, 1 << 20));
    d.wire_floats = static_cast<std::uint32_t>(rng.uniformInt(1, 366));
    const auto logical = static_cast<std::size_t>(
        rng.uniformInt(0, d.wire_floats));
    d.values.resize(logical);
    for (float &v : d.values)
        v = static_cast<float>(rng.normal(0.0, 100.0));
    const auto back = decodeData(encodeData(d));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seg, d.seg);
    EXPECT_EQ(back->wire_floats, d.wire_floats);
    for (std::size_t i = 0; i < logical; ++i)
        EXPECT_EQ(back->values[i], d.values[i]) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolRoundTrip,
                         ::testing::Range(0, 20));

TEST(SegWord, PacksAndUnpacks)
{
    const std::uint64_t w = packSegWord(0x123456789ABCULL, 7, 1);
    EXPECT_EQ(segWordIndex(w), 0x123456789ABCULL);
    EXPECT_EQ(segWordJob(w), 7);
    EXPECT_EQ(segWordVer(w), 1);
    // (job 0, ver 0) packs to the bare segment index: the multi-job
    // Seg word is byte-identical to the legacy single-job format.
    EXPECT_EQ(packSegWord(42), 42u);
    EXPECT_EQ(packSegWord(42, 0, 0), 42u);
    // The version bit is taken modulo 2.
    EXPECT_EQ(segWordVer(packSegWord(0, 0, 3)), 1);
}

TEST(SegWord, FieldsDoNotOverlap)
{
    const std::uint64_t w = packSegWord(kSegWordIndexMask, 0xFF, 1);
    EXPECT_EQ(segWordIndex(w), kSegWordIndexMask);
    EXPECT_EQ(segWordJob(w), 0xFF);
    EXPECT_EQ(segWordVer(w), 1);
    EXPECT_EQ(segWordJob(packSegWord(kSegWordIndexMask, 0, 1)), 0);
    EXPECT_EQ(segWordVer(packSegWord(kSegWordIndexMask, 0xFF, 0)), 0);
}

TEST(Protocol, DataRoundTripsJobAndVersion)
{
    net::ChunkPayload d;
    d.seg = 1234;
    d.job = 5;
    d.ver = 1;
    d.wire_floats = 2;
    d.values = {1.5f, -2.5f};
    const auto back = decodeData(encodeData(d));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->seg, 1234u);
    EXPECT_EQ(back->job, 5);
    EXPECT_EQ(back->ver, 1);
    EXPECT_EQ(back->values[0], 1.5f);
    EXPECT_EQ(back->values[1], -2.5f);
}

TEST(Protocol, LegacyJobZeroBytesUnchanged)
{
    // A (job 0, ver 0) data packet's bytes must equal the pre-sharing
    // wire format: the first 8 bytes are the bare segment index.
    net::ChunkPayload d;
    d.seg = 77;
    d.wire_floats = 1;
    d.values = {0.0f};
    const auto bytes = encodeData(d);
    ASSERT_GE(bytes.size(), 8u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(bytes[static_cast<std::size_t>(i)], 0u);
    EXPECT_EQ(bytes[7], 77u);
}

} // namespace
} // namespace isw::core
