/** @file HeartbeatMonitor state machine (DESIGN.md §16): alive while
 *  beats arrive, suspect at two misses, dead at the configured
 *  threshold; late beats clear suspicion and misses are never
 *  double-booked across repeated checks. */

#include <gtest/gtest.h>

#include "core/control.hh"

namespace isw::core {
namespace {

using State = HeartbeatMonitor::State;

constexpr sim::TimeNs kP = 5 * sim::kMsec;

TEST(Heartbeat, StaysAliveWhileBeatsArrive)
{
    HeartbeatMonitor m;
    m.configure(kP, 3, 0);
    for (int i = 1; i <= 10; ++i) {
        m.beat(i * kP);
        EXPECT_EQ(m.check(i * kP + kP / 2), State::kAlive);
    }
    EXPECT_EQ(m.beats(), 10u);
    EXPECT_EQ(m.missed(), 0u);
}

TEST(Heartbeat, EscalatesSuspectThenDead)
{
    HeartbeatMonitor m;
    m.configure(kP, 3, 0);
    m.beat(kP);
    EXPECT_EQ(m.check(kP + 1 * kP), State::kAlive); // one miss: grace
    EXPECT_EQ(m.check(kP + 2 * kP), State::kSuspect);
    EXPECT_EQ(m.check(kP + 3 * kP), State::kDead);
    EXPECT_EQ(m.missed(), 3u);
}

TEST(Heartbeat, LateBeatClearsSuspicion)
{
    HeartbeatMonitor m;
    m.configure(kP, 3, 0);
    m.beat(kP);
    EXPECT_EQ(m.check(3 * kP), State::kSuspect);
    m.beat(3 * kP); // the primary was only slow, not dead
    EXPECT_EQ(m.check(3 * kP + kP / 2), State::kAlive);
    EXPECT_EQ(m.missed(), 2u); // the two misses stay booked
}

TEST(Heartbeat, RepeatedChecksDoNotDoubleBookMisses)
{
    HeartbeatMonitor m;
    m.configure(kP, 5, 0);
    m.beat(kP);
    EXPECT_EQ(m.check(kP + 2 * kP), State::kSuspect);
    EXPECT_EQ(m.check(kP + 2 * kP), State::kSuspect);
    EXPECT_EQ(m.check(kP + 3 * kP), State::kSuspect);
    EXPECT_EQ(m.missed(), 3u); // 2 then +1, never 2+2+3
}

TEST(Heartbeat, ConfigureBaselinesThePrimaryAsAlive)
{
    HeartbeatMonitor m;
    m.configure(kP, 3, 40 * sim::kMsec);
    // No beat ever arrived, but the baseline anchors the miss count.
    EXPECT_EQ(m.check(41 * sim::kMsec), State::kAlive);
    EXPECT_EQ(m.check(40 * sim::kMsec + 3 * kP), State::kDead);
}

} // namespace
} // namespace isw::core
