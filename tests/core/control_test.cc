/** @file Unit tests for the control plane (Table 2 semantics). */

#include <gtest/gtest.h>

#include "core/control.hh"

namespace isw::core {
namespace {

using net::Action;
using net::ControlPayload;
using net::Ipv4Addr;

TEST(MembershipTable, JoinAssignsStableIds)
{
    MembershipTable t;
    const auto id0 = t.join(Ipv4Addr(10, 0, 0, 2), 99, MemberType::kWorker);
    const auto id1 = t.join(Ipv4Addr(10, 0, 0, 3), 99, MemberType::kWorker);
    EXPECT_NE(id0, id1);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.find(Ipv4Addr(10, 0, 0, 2))->id, id0);
}

TEST(MembershipTable, RejoinIsIdempotent)
{
    MembershipTable t;
    const auto id = t.join(Ipv4Addr(1, 1, 1, 1), 10, MemberType::kWorker);
    const auto id2 = t.join(Ipv4Addr(1, 1, 1, 1), 20, MemberType::kSwitch);
    EXPECT_EQ(id, id2);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.find(Ipv4Addr(1, 1, 1, 1))->udp_port, 20);
    EXPECT_EQ(t.find(Ipv4Addr(1, 1, 1, 1))->type, MemberType::kSwitch);
}

TEST(MembershipTable, LeaveRemoves)
{
    MembershipTable t;
    t.join(Ipv4Addr(1, 1, 1, 1), 10, MemberType::kWorker);
    EXPECT_TRUE(t.leave(Ipv4Addr(1, 1, 1, 1)));
    EXPECT_FALSE(t.leave(Ipv4Addr(1, 1, 1, 1)));
    EXPECT_TRUE(t.empty());
}

TEST(MembershipTable, MembersInIdOrder)
{
    MembershipTable t;
    t.join(Ipv4Addr(3, 3, 3, 3), 1, MemberType::kWorker);
    t.join(Ipv4Addr(1, 1, 1, 1), 1, MemberType::kWorker);
    const auto members = t.members();
    ASSERT_EQ(members.size(), 2u);
    EXPECT_LT(members[0].id, members[1].id);
    EXPECT_EQ(members[0].ip, Ipv4Addr(3, 3, 3, 3));
}

TEST(JoinValue, PacksPortAndType)
{
    const auto v = encodeJoinValue(9999, MemberType::kSwitch);
    EXPECT_EQ(joinValuePort(v), 9999);
    EXPECT_EQ(joinValueType(v), MemberType::kSwitch);
    const auto w = encodeJoinValue(80, MemberType::kWorker);
    EXPECT_EQ(joinValueType(w), MemberType::kWorker);
}

TEST(HelpValue, PacksSeqAndSeg)
{
    const auto v = helpValue(7, 123456);
    EXPECT_EQ(helpSeq(v), 7u);
    EXPECT_EQ(helpSeg(v), 123456u);
}

struct ControlFixture : ::testing::Test
{
    std::vector<std::pair<Ipv4Addr, ControlPayload>> sent;
    int resets = 0;
    std::uint32_t threshold = 0;
    std::vector<std::uint64_t> forced;
    std::vector<std::uint64_t> cleared;
    bool cache_hit = false;
    int membership_changes = 0;
    std::vector<Member> left;

    ControlPlane plane{ControlPlane::Hooks{
        .send_control =
            [this](const Member &m, ControlPayload msg) {
                sent.emplace_back(m.ip, msg);
            },
        .reset_accel = [this] { ++resets; },
        .set_threshold = [this](std::uint32_t h) { threshold = h; },
        .force_broadcast =
            [this](std::uint64_t seg) { forced.push_back(seg); },
        .resend_cached =
            [this](std::uint64_t req, const Member &) {
                (void)req;
                return cache_hit;
            },
        .clear_segment =
            [this](std::uint64_t seg) { cleared.push_back(seg); },
        .membership_changed = [this] { ++membership_changes; },
        .member_left = [this](const Member &m) { left.push_back(m); },
    }};

    ControlPayload
    msg(Action a, std::uint64_t value, bool has = true)
    {
        return ControlPayload{a, value, has};
    }
};

TEST_F(ControlFixture, JoinAddsMemberAndAcks)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin,
                     encodeJoinValue(9999, MemberType::kWorker)));
    EXPECT_EQ(plane.table().size(), 1u);
    EXPECT_EQ(plane.table().find(Ipv4Addr(10, 0, 0, 2))->udp_port, 9999);
    EXPECT_EQ(membership_changes, 1);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].second.action, Action::kAck);
    EXPECT_EQ(sent[0].second.value, 1u);
}

TEST_F(ControlFixture, JoinWithoutValueUsesSourcePort)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 1234,
                 msg(Action::kJoin, 0, /*has=*/false));
    EXPECT_EQ(plane.table().find(Ipv4Addr(10, 0, 0, 2))->udp_port, 1234);
}

TEST_F(ControlFixture, LeaveOfUnknownAcksFailure)
{
    plane.handle(Ipv4Addr(9, 9, 9, 9), 50, msg(Action::kLeave, 0, false));
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].second.value, 0u);
    EXPECT_EQ(membership_changes, 0);
}

TEST_F(ControlFixture, LeaveRemovesMemberAndRecomputesMembership)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    plane.handle(Ipv4Addr(10, 0, 0, 3), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    sent.clear();
    ASSERT_EQ(membership_changes, 2);

    plane.handle(Ipv4Addr(10, 0, 0, 2), 50, msg(Action::kLeave, 0, false));
    EXPECT_EQ(plane.table().size(), 1u);
    EXPECT_FALSE(plane.table().find(Ipv4Addr(10, 0, 0, 2)).has_value());
    // Departure triggers the same membership hook a Join does (the
    // switch recomputes its auto threshold from the new count).
    EXPECT_EQ(membership_changes, 3);
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].second.action, Action::kAck);
    EXPECT_EQ(sent[0].second.value, 1u);
}

TEST_F(ControlFixture, LeaveThenRejoinAssignsAFreshId)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    const auto id0 = plane.table().find(Ipv4Addr(10, 0, 0, 2))->id;
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50, msg(Action::kLeave, 0, false));
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    EXPECT_EQ(plane.table().size(), 1u);
    EXPECT_NE(plane.table().find(Ipv4Addr(10, 0, 0, 2))->id, id0);
}

TEST_F(ControlFixture, ResetInvokesHook)
{
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50, msg(Action::kReset, 0, false));
    EXPECT_EQ(resets, 1);
}

TEST_F(ControlFixture, SetHSetsThreshold)
{
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50, msg(Action::kSetH, 7));
    EXPECT_EQ(threshold, 7u);
    EXPECT_EQ(sent.back().second.value, 1u);
}

TEST_F(ControlFixture, SetHWithoutValueFails)
{
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50, msg(Action::kSetH, 0, false));
    EXPECT_EQ(threshold, 0u);
    EXPECT_EQ(sent.back().second.value, 0u);
}

TEST_F(ControlFixture, FBcastForcesSegment)
{
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50, msg(Action::kFBcast, 13));
    ASSERT_EQ(forced.size(), 1u);
    EXPECT_EQ(forced[0], 13u);
}

TEST_F(ControlFixture, HelpServedFromCacheSendsNothingElse)
{
    cache_hit = true;
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50,
                 msg(Action::kHelp, helpValue(1, 5)));
    EXPECT_TRUE(sent.empty());
    EXPECT_TRUE(cleared.empty());
}

TEST_F(ControlFixture, HelpMissRelaysRetransmitToWorkers)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    plane.handle(Ipv4Addr(10, 0, 0, 3), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    sent.clear();
    cache_hit = false;
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kHelp, helpValue(2, 9)));
    ASSERT_EQ(cleared.size(), 1u);
    EXPECT_EQ(cleared[0], 9u);
    ASSERT_EQ(sent.size(), 2u); // relayed to both workers
    EXPECT_EQ(sent[0].second.action, Action::kHelp);
    EXPECT_EQ(helpSeg(sent[0].second.value), 9u);
}

TEST_F(ControlFixture, HaltNotifiesAllMembersAndSetsFlag)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin, encodeJoinValue(1, MemberType::kWorker)));
    sent.clear();
    plane.handle(Ipv4Addr(10, 0, 0, 3), 50, msg(Action::kHalt, 0, false));
    EXPECT_TRUE(plane.halted());
    // One Halt to the member plus one Ack to the requester.
    ASSERT_EQ(sent.size(), 2u);
    EXPECT_EQ(sent[0].second.action, Action::kHalt);
    EXPECT_EQ(sent[1].second.action, Action::kAck);
}

TEST_F(ControlFixture, JoinClearsHaltedState)
{
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50, msg(Action::kHalt, 0, false));
    EXPECT_TRUE(plane.halted());
    plane.handle(Ipv4Addr(1, 1, 1, 2), 50, msg(Action::kJoin, 0, false));
    EXPECT_FALSE(plane.halted());
}

TEST_F(ControlFixture, AckIsTerminal)
{
    plane.handle(Ipv4Addr(1, 1, 1, 1), 50, msg(Action::kAck, 1));
    EXPECT_TRUE(sent.empty());
}

TEST_F(ControlFixture, DuplicateJoinIsIdempotent)
{
    // A retransmitted Join (same ip/port/type/job) must be Acked but
    // must NOT fire a spurious membership recompute: mid-round, a
    // recompute would re-derive the aggregation threshold and could
    // tear down in-flight per-job partial sums.
    const auto join = msg(Action::kJoin,
                          encodeJoinValue(9999, MemberType::kWorker));
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50, join);
    EXPECT_EQ(membership_changes, 1);
    ASSERT_EQ(sent.size(), 1u);

    plane.handle(Ipv4Addr(10, 0, 0, 2), 50, join);
    EXPECT_EQ(plane.table().size(), 1u);
    EXPECT_EQ(membership_changes, 1); // no spurious recompute
    ASSERT_EQ(sent.size(), 2u);       // still Acked (sender unblocks)
    EXPECT_EQ(sent[1].second.action, Action::kAck);
    EXPECT_EQ(sent[1].second.value, 1u);

    // A Join that actually changes the row (new port) does recompute.
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin,
                     encodeJoinValue(8888, MemberType::kWorker)));
    EXPECT_EQ(membership_changes, 2);
}

TEST(JoinValue, PacksJobId)
{
    const auto v = encodeJoinValue(9999, MemberType::kWorker, 7);
    EXPECT_EQ(joinValuePort(v), 9999);
    EXPECT_EQ(joinValueType(v), MemberType::kWorker);
    EXPECT_EQ(joinValueJob(v), 7);
    // Default job is 0 — the legacy encoding is unchanged.
    EXPECT_EQ(joinValueJob(encodeJoinValue(9999, MemberType::kWorker)), 0);
}

TEST_F(ControlFixture, JoinCarriesJobTag)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin,
                     encodeJoinValue(9999, MemberType::kWorker, 3)));
    ASSERT_TRUE(plane.table().find(Ipv4Addr(10, 0, 0, 2)).has_value());
    EXPECT_EQ(plane.table().find(Ipv4Addr(10, 0, 0, 2))->job, 3);
}

TEST_F(ControlFixture, LeaveReportsTheDepartedMember)
{
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50,
                 msg(Action::kJoin,
                     encodeJoinValue(9999, MemberType::kWorker, 2)));
    plane.handle(Ipv4Addr(10, 0, 0, 2), 50, msg(Action::kLeave, 0, false));
    ASSERT_EQ(left.size(), 1u);
    EXPECT_EQ(left[0].ip, Ipv4Addr(10, 0, 0, 2));
    EXPECT_EQ(left[0].job, 2);
    // Unknown-member Leave must not fire the hook.
    plane.handle(Ipv4Addr(9, 9, 9, 9), 50, msg(Action::kLeave, 0, false));
    EXPECT_EQ(left.size(), 1u);
}

} // namespace
} // namespace isw::core
