/** @file Functional and timing tests for the aggregation accelerator. */

#include <gtest/gtest.h>

#include <map>

#include "core/accelerator.hh"

namespace isw::core {
namespace {

net::ChunkPayload
chunk(std::uint64_t seg, std::vector<float> vals)
{
    net::ChunkPayload c;
    c.seg = seg;
    c.wire_floats = static_cast<std::uint32_t>(vals.size());
    c.values = std::move(vals);
    return c;
}

struct AccelFixture : ::testing::Test
{
    sim::Simulation s{1};
    Accelerator accel{s};
    std::map<std::uint64_t, SegState> emitted;

    void
    SetUp() override
    {
        accel.setEmit([this](std::uint64_t seg, SegState st) {
            emitted[seg] = std::move(st);
        });
    }
};

TEST_F(AccelFixture, EmitsWhenThresholdReached)
{
    accel.setThreshold(3);
    accel.ingest(chunk(0, {1.0f}));
    accel.ingest(chunk(0, {2.0f}));
    s.run();
    EXPECT_TRUE(emitted.empty()); // 2 of 3
    accel.ingest(chunk(0, {3.0f}));
    s.run();
    ASSERT_EQ(emitted.count(0), 1u);
    EXPECT_FLOAT_EQ(emitted[0].acc[0], 6.0f);
    EXPECT_EQ(emitted[0].count, 3u);
    EXPECT_EQ(accel.segmentsEmitted(), 1u);
}

TEST_F(AccelFixture, OnTheFlySegmentsCompleteIndependently)
{
    // Packet-granularity aggregation (Figure 8b): segment 1 can
    // complete and leave while segment 0 still waits.
    accel.setThreshold(2);
    accel.ingest(chunk(0, {1.0f}));
    accel.ingest(chunk(1, {5.0f}));
    accel.ingest(chunk(1, {6.0f}));
    s.run();
    EXPECT_EQ(emitted.count(0), 0u);
    ASSERT_EQ(emitted.count(1), 1u);
    EXPECT_FLOAT_EQ(emitted[1].acc[0], 11.0f);
}

TEST_F(AccelFixture, BufferClearedAfterEmission)
{
    accel.setThreshold(1);
    accel.ingest(chunk(0, {4.0f}));
    s.run();
    // A second round of the same segment starts from zero.
    accel.ingest(chunk(0, {8.0f}));
    s.run();
    EXPECT_FLOAT_EQ(emitted[0].acc[0], 8.0f);
    EXPECT_EQ(accel.pool().activeSegments(), 0u);
}

TEST_F(AccelFixture, ForceEmitFlushesPartial)
{
    accel.setThreshold(10);
    accel.ingest(chunk(3, {2.0f}));
    accel.ingest(chunk(3, {3.0f}));
    s.run();
    accel.forceEmit(3);
    ASSERT_EQ(emitted.count(3), 1u);
    EXPECT_FLOAT_EQ(emitted[3].acc[0], 5.0f);
    EXPECT_EQ(emitted[3].count, 2u); // partial: only 2 contributions
}

TEST_F(AccelFixture, ForceEmitOnEmptySegmentIsNoop)
{
    accel.forceEmit(42);
    EXPECT_TRUE(emitted.empty());
}

TEST_F(AccelFixture, ResetDropsPartialState)
{
    accel.setThreshold(2);
    accel.ingest(chunk(0, {1.0f}));
    s.run();
    accel.reset();
    accel.ingest(chunk(0, {2.0f}));
    s.run();
    EXPECT_TRUE(emitted.empty()); // count restarted at 1
    EXPECT_EQ(accel.pool().count(0), 1u);
}

TEST_F(AccelFixture, ProcTimeMatchesBurstPipeline)
{
    // 256-bit bursts at 200 MHz: 32 bytes per 5 ns cycle.
    EXPECT_EQ(accel.procTime(32), 5u);
    EXPECT_EQ(accel.procTime(33), 10u);
    EXPECT_EQ(accel.procTime(1472), 1472 / 32 * 5);
}

TEST_F(AccelFixture, PipelineSerializesPackets)
{
    // Two MTU packets back-to-back: second finishes one procTime later.
    accel.setThreshold(1);
    std::vector<sim::TimeNs> times;
    accel.setEmit([&](std::uint64_t, SegState) { times.push_back(s.now()); });
    net::ChunkPayload big = chunk(0, std::vector<float>(366, 1.0f));
    net::ChunkPayload big2 = chunk(1, std::vector<float>(366, 1.0f));
    accel.ingest(big);
    accel.ingest(big2);
    s.run();
    ASSERT_EQ(times.size(), 2u);
    const sim::TimeNs proc = accel.procTime(8 + 366 * 4);
    EXPECT_EQ(times[1] - times[0], proc);
}

TEST_F(AccelFixture, ThroughputExceedsTenGigabit)
{
    // The design requirement (§3.3): the accelerator must keep up with
    // the 10 GbE line rate. 32 B / 5 ns = 51.2 Gb/s.
    const double bytes_per_ns = 32.0 / 5.0;
    EXPECT_GT(bytes_per_ns * 8.0, 10.0); // Gb/s
}

TEST_F(AccelFixture, CountsIngestedPackets)
{
    accel.setThreshold(2);
    accel.ingest(chunk(0, {1.0f}));
    accel.ingest(chunk(0, {1.0f}));
    s.run();
    EXPECT_EQ(accel.packetsIngested(), 2u);
}

TEST(Accelerator, RejectsBadConfig)
{
    sim::Simulation s;
    AcceleratorConfig bad;
    bad.clock_hz = 0.0;
    EXPECT_THROW(Accelerator(s, bad), std::invalid_argument);
}

/**
 * Property: for any interleaving of worker packets, the per-segment
 * sums equal the element-wise sum over workers (order invariance).
 */
class AccelOrderInvariance : public ::testing::TestWithParam<int>
{
};

TEST_P(AccelOrderInvariance, SumsAreOrderInvariant)
{
    sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 1);
    const auto workers = static_cast<std::size_t>(rng.uniformInt(2, 6));
    const auto segs = static_cast<std::size_t>(rng.uniformInt(1, 8));
    const auto floats = static_cast<std::size_t>(rng.uniformInt(1, 32));

    // Build each worker's per-seg data.
    std::vector<std::vector<std::vector<float>>> data(workers);
    for (auto &w : data) {
        w.resize(segs);
        for (auto &seg : w) {
            seg.resize(floats);
            for (float &v : seg)
                v = static_cast<float>(rng.normal());
        }
    }
    // Shuffle all (worker, seg) pairs into a random arrival order.
    std::vector<std::pair<std::size_t, std::size_t>> arrivals;
    for (std::size_t w = 0; w < workers; ++w)
        for (std::size_t g = 0; g < segs; ++g)
            arrivals.emplace_back(w, g);
    for (std::size_t i = arrivals.size(); i > 1; --i)
        std::swap(arrivals[i - 1],
                  arrivals[static_cast<std::size_t>(
                      rng.uniformInt(0, static_cast<std::int64_t>(i) - 1))]);

    sim::Simulation s{1};
    Accelerator accel{s};
    accel.setThreshold(static_cast<std::uint32_t>(workers));
    std::map<std::uint64_t, SegState> emitted;
    accel.setEmit([&](std::uint64_t seg, SegState st) {
        emitted[seg] = std::move(st);
    });
    for (auto [w, g] : arrivals) {
        net::ChunkPayload c;
        c.seg = g;
        c.wire_floats = static_cast<std::uint32_t>(floats);
        c.values = data[w][g];
        accel.ingest(c);
    }
    s.run();

    ASSERT_EQ(emitted.size(), segs);
    for (std::size_t g = 0; g < segs; ++g) {
        for (std::size_t i = 0; i < floats; ++i) {
            float expect = 0.0f;
            for (std::size_t w = 0; w < workers; ++w)
                expect += data[w][g][i];
            EXPECT_NEAR(emitted[g].acc[i], expect, 1e-4f)
                << "seg " << g << " idx " << i;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccelOrderInvariance,
                         ::testing::Range(0, 25));

} // namespace
} // namespace isw::core
