/**
 * @file Integration tests for the programmable switch: end-to-end
 * aggregation over a simulated network, control handshakes,
 * hierarchical aggregation, and Help-based recovery.
 */

#include <gtest/gtest.h>

#include "core/programmable_switch.hh"
#include "net/topology.hh"

namespace isw::core {
namespace {

using net::Action;
using net::ChunkPayload;
using net::ControlPayload;
using net::Ipv4Addr;
using net::PacketPtr;

constexpr std::uint16_t kSwPort = 9000;
constexpr std::uint16_t kWkPort = 9999;

ChunkPayload
chunk(std::uint64_t seg, std::vector<float> vals)
{
    ChunkPayload c;
    c.seg = seg;
    c.wire_floats = static_cast<std::uint32_t>(vals.size());
    c.values = std::move(vals);
    return c;
}

struct StarFixture : ::testing::Test
{
    sim::Simulation s{1};
    net::Topology topo{s};
    ProgrammableSwitch *sw = nullptr;
    std::vector<net::Host *> hosts;
    /** Results seen per host: (seg -> values). */
    std::vector<std::map<std::uint64_t, std::vector<float>>> results;
    std::vector<std::vector<ControlPayload>> controls;

    void
    SetUp() override
    {
        ProgrammableSwitchConfig cfg;
        cfg.ip = Ipv4Addr(10, 0, 0, 1);
        sw = topo.addSwitch<ProgrammableSwitch>("sw0", 4, cfg);
        results.resize(3);
        controls.resize(3);
        for (int i = 0; i < 3; ++i) {
            net::Host *h = topo.addHost(
                "w" + std::to_string(i),
                Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(2 + i)));
            topo.connectHost(h, sw, static_cast<std::size_t>(i));
            const std::size_t idx = static_cast<std::size_t>(i);
            h->setReceiveHandler([this, idx](PacketPtr pkt) {
                if (const auto *c =
                        std::get_if<ChunkPayload>(&pkt->payload)) {
                    if (pkt->ip.tos == net::kTosResult)
                        results[idx][c->seg] = c->values;
                } else if (const auto *ctl = std::get_if<ControlPayload>(
                               &pkt->payload)) {
                    controls[idx].push_back(*ctl);
                }
            });
            hosts.push_back(h);
        }
    }

    void
    sendData(std::size_t worker, ChunkPayload c)
    {
        hosts[worker]->sendTo(sw->ip(), kSwPort, kWkPort, net::kTosData,
                              std::move(c));
    }

    void
    sendControl(std::size_t worker, ControlPayload c)
    {
        hosts[worker]->sendTo(sw->ip(), kSwPort, kWkPort, net::kTosControl,
                              std::move(c));
    }

    void
    joinAll()
    {
        for (std::size_t i = 0; i < hosts.size(); ++i) {
            sendControl(i, ControlPayload{Action::kJoin,
                                          encodeJoinValue(
                                              kWkPort, MemberType::kWorker),
                                          true});
        }
        s.run();
        for (auto &c : controls)
            c.clear();
    }
};

TEST_F(StarFixture, JoinHandshakeAcksAndRegisters)
{
    sendControl(0, ControlPayload{Action::kJoin,
                                  encodeJoinValue(kWkPort,
                                                  MemberType::kWorker),
                                  true});
    s.run();
    EXPECT_EQ(sw->controlPlane().table().size(), 1u);
    ASSERT_EQ(controls[0].size(), 1u);
    EXPECT_EQ(controls[0][0].action, Action::kAck);
    EXPECT_EQ(controls[0][0].value, 1u);
}

TEST_F(StarFixture, AggregatesAndBroadcastsToAllMembers)
{
    joinAll();
    sendData(0, chunk(0, {1.0f, 10.0f}));
    sendData(1, chunk(0, {2.0f, 20.0f}));
    sendData(2, chunk(0, {3.0f, 30.0f}));
    s.run();
    for (std::size_t w = 0; w < 3; ++w) {
        ASSERT_EQ(results[w].count(0), 1u) << "worker " << w;
        EXPECT_FLOAT_EQ(results[w][0][0], 6.0f);
        EXPECT_FLOAT_EQ(results[w][0][1], 60.0f);
    }
}

TEST_F(StarFixture, ThresholdTracksMembership)
{
    joinAll();
    EXPECT_EQ(sw->accelerator().threshold(), 3u);
    sendControl(0, ControlPayload{Action::kLeave, 0, false});
    s.run();
    EXPECT_EQ(sw->accelerator().threshold(), 2u);
}

TEST_F(StarFixture, SetHOverridesAutoThreshold)
{
    joinAll();
    sendControl(0, ControlPayload{Action::kSetH, 2, true});
    s.run();
    EXPECT_EQ(sw->accelerator().threshold(), 2u);
    // Membership changes no longer adjust H.
    sendControl(1, ControlPayload{Action::kLeave, 0, false});
    s.run();
    EXPECT_EQ(sw->accelerator().threshold(), 2u);
}

TEST_F(StarFixture, ResetClearsPartialAggregation)
{
    joinAll();
    sendData(0, chunk(0, {1.0f}));
    s.run();
    sendControl(1, ControlPayload{Action::kReset, 0, false});
    s.run();
    // Two more contributions do not complete the (cleared) segment...
    sendData(1, chunk(0, {2.0f}));
    sendData(2, chunk(0, {4.0f}));
    s.run();
    EXPECT_EQ(results[0].count(0), 0u);
    // ...until a third arrives.
    sendData(0, chunk(0, {1.0f}));
    s.run();
    ASSERT_EQ(results[0].count(0), 1u);
    EXPECT_FLOAT_EQ(results[0][0][0], 7.0f);
}

TEST_F(StarFixture, FBcastBroadcastsPartialSegment)
{
    joinAll();
    sendData(0, chunk(2, {5.0f}));
    s.run();
    sendControl(0, ControlPayload{Action::kFBcast, 2, true});
    s.run();
    ASSERT_EQ(results[1].count(2), 1u);
    EXPECT_FLOAT_EQ(results[1][2][0], 5.0f);
}

TEST_F(StarFixture, HelpServesCachedResult)
{
    joinAll();
    sendData(0, chunk(0, {1.0f}));
    sendData(1, chunk(0, {2.0f}));
    sendData(2, chunk(0, {3.0f}));
    s.run();
    results[1].clear();
    // Worker 1 lost the broadcast: ask for completion #1 of seg 0.
    sendControl(1, ControlPayload{Action::kHelp, helpValue(1, 0), true});
    s.run();
    ASSERT_EQ(results[1].count(0), 1u);
    EXPECT_FLOAT_EQ(results[1][0][0], 6.0f);
    EXPECT_EQ(sw->cachedResults(), 1u);
}

TEST_F(StarFixture, HelpForIncompleteSegmentRelaysRetransmit)
{
    joinAll();
    sendData(0, chunk(0, {1.0f}));
    sendData(1, chunk(0, {2.0f}));
    s.run(); // 2 of 3: segment incomplete
    sendControl(0, ControlPayload{Action::kHelp, helpValue(1, 0), true});
    s.run();
    // Every worker got the relayed Help; partial state was cleared.
    for (std::size_t w = 0; w < 3; ++w) {
        bool saw_help = false;
        for (const auto &c : controls[w])
            saw_help |= c.action == Action::kHelp &&
                        helpSeg(c.value) == 0;
        EXPECT_TRUE(saw_help) << "worker " << w;
    }
    EXPECT_EQ(sw->accelerator().pool().activeSegments(), 0u);
}

TEST_F(StarFixture, HelpIgnoresStaleCompletionSeq)
{
    joinAll();
    sendData(0, chunk(0, {1.0f}));
    sendData(1, chunk(0, {2.0f}));
    sendData(2, chunk(0, {3.0f}));
    s.run();
    results[0].clear();
    // Asking for completion #2 (a later round) must not serve round 1.
    sendControl(0, ControlPayload{Action::kHelp, helpValue(2, 0), true});
    s.run();
    EXPECT_EQ(results[0].count(0), 0u);
}

TEST_F(StarFixture, PlainTrafficStillForwards)
{
    joinAll();
    int got = 0;
    hosts[1]->setReceiveHandler([&](PacketPtr) { ++got; });
    hosts[0]->sendTo(hosts[1]->ip(), 7, 7, /*tos=*/0,
                     net::RawPayload{128, 0});
    s.run();
    EXPECT_EQ(got, 1);
}

TEST(Hierarchy, TwoLevelAggregationMatchesFlatSum)
{
    sim::Simulation s{1};
    net::Topology topo(s);

    ProgrammableSwitchConfig core_cfg;
    core_cfg.ip = Ipv4Addr(10, 0, 255, 1);
    auto *core = topo.addSwitch<ProgrammableSwitch>("core", 2, core_cfg);

    std::vector<ProgrammableSwitch *> tors;
    std::vector<net::Host *> hosts;
    std::vector<std::map<std::uint64_t, std::vector<float>>> results(4);
    for (int r = 0; r < 2; ++r) {
        ProgrammableSwitchConfig tor_cfg;
        tor_cfg.ip = Ipv4Addr(10, 0, static_cast<std::uint8_t>(r), 1);
        tor_cfg.parent = core_cfg.ip;
        auto *tor = topo.addSwitch<ProgrammableSwitch>(
            "tor" + std::to_string(r), 3, tor_cfg);
        for (int h = 0; h < 2; ++h) {
            const std::size_t idx = static_cast<std::size_t>(r * 2 + h);
            net::Host *host = topo.addHost(
                "w" + std::to_string(idx),
                Ipv4Addr(10, 0, static_cast<std::uint8_t>(r),
                         static_cast<std::uint8_t>(2 + h)));
            topo.connectHost(host, tor, static_cast<std::size_t>(h));
            tor->adminJoin(host->ip(), kWkPort, MemberType::kWorker);
            host->setReceiveHandler([&results, idx](PacketPtr pkt) {
                if (pkt->ip.tos != net::kTosResult)
                    return;
                if (const auto *c =
                        std::get_if<ChunkPayload>(&pkt->payload))
                    results[idx][c->seg] = c->values;
            });
            hosts.push_back(host);
        }
        topo.connectSwitches(tor, 2, core, static_cast<std::size_t>(r));
        core->addRoute(tor->ip(), static_cast<std::size_t>(r));
        core->adminJoin(tor->ip(), kSwPort, MemberType::kSwitch);
        tors.push_back(tor);
    }

    // Each worker contributes (idx+1) to both floats of segment 0.
    for (std::size_t w = 0; w < 4; ++w) {
        hosts[w]->sendTo(tors[w / 2]->ip(), kSwPort, kWkPort, net::kTosData,
                         chunk(0, {float(w + 1), float(10 * (w + 1))}));
    }
    s.run();

    // 1+2+3+4 = 10 at every worker, through two aggregation levels.
    for (std::size_t w = 0; w < 4; ++w) {
        ASSERT_EQ(results[w].count(0), 1u) << "worker " << w;
        EXPECT_FLOAT_EQ(results[w][0][0], 10.0f);
        EXPECT_FLOAT_EQ(results[w][0][1], 100.0f);
    }
    // The ToRs each saw 2 contributions; the core saw 2 partials.
    EXPECT_EQ(tors[0]->accelerator().packetsIngested(), 2u);
    EXPECT_EQ(core->accelerator().packetsIngested(), 2u);
}

} // namespace
} // namespace isw::core
