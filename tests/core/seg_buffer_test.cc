/** @file Unit tests for the segment buffer pool. */

#include <gtest/gtest.h>

#include "core/seg_buffer.hh"

namespace isw::core {
namespace {

net::ChunkPayload
chunk(std::uint64_t seg, std::vector<float> vals)
{
    net::ChunkPayload c;
    c.seg = seg;
    c.wire_floats = static_cast<std::uint32_t>(vals.size());
    c.values = std::move(vals);
    return c;
}

TEST(SegBufferPool, AccumulatesElementwise)
{
    SegBufferPool pool;
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 2, 3}), 2));
    EXPECT_TRUE(pool.accumulate(chunk(0, {10, 20, 30}), 2));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.count, 2u);
    ASSERT_EQ(st.acc.size(), 3u);
    EXPECT_FLOAT_EQ(st.acc[0], 11.0f);
    EXPECT_FLOAT_EQ(st.acc[1], 22.0f);
    EXPECT_FLOAT_EQ(st.acc[2], 33.0f);
}

TEST(SegBufferPool, SegmentsAreIndependent)
{
    SegBufferPool pool;
    pool.accumulate(chunk(1, {1}), 3);
    pool.accumulate(chunk(2, {5}), 3);
    EXPECT_EQ(pool.count(1), 1u);
    EXPECT_EQ(pool.count(2), 1u);
    EXPECT_EQ(pool.count(3), 0u);
    EXPECT_EQ(pool.activeSegments(), 2u);
}

TEST(SegBufferPool, HarvestRemovesSegment)
{
    SegBufferPool pool;
    pool.accumulate(chunk(7, {1}), 1);
    pool.harvest(7);
    EXPECT_FALSE(pool.has(7));
    EXPECT_THROW(pool.harvest(7), std::out_of_range);
}

TEST(SegBufferPool, ThresholdOneEmitsImmediately)
{
    SegBufferPool pool;
    EXPECT_TRUE(pool.accumulate(chunk(0, {1}), 1));
}

TEST(SegBufferPool, MixedPayloadSizesGrowBuffer)
{
    SegBufferPool pool;
    pool.accumulate(chunk(0, {1, 1}), 2);
    pool.accumulate(chunk(0, {1, 1, 1, 1}), 2);
    SegState st = pool.harvest(0);
    ASSERT_EQ(st.acc.size(), 4u);
    EXPECT_FLOAT_EQ(st.acc[0], 2.0f);
    EXPECT_FLOAT_EQ(st.acc[3], 1.0f);
}

TEST(SegBufferPool, WireFloatsTracksMax)
{
    SegBufferPool pool;
    auto c1 = chunk(0, {1});
    c1.wire_floats = 100;
    pool.accumulate(c1, 2);
    pool.accumulate(chunk(0, {1}), 2);
    EXPECT_EQ(pool.harvest(0).wire_floats, 100u);
}

TEST(SegBufferPool, ClearDropsEverything)
{
    SegBufferPool pool;
    pool.accumulate(chunk(0, {1}), 5);
    pool.accumulate(chunk(1, {1}), 5);
    pool.clear();
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, PeakActiveSegmentsTracksPressure)
{
    SegBufferPool pool;
    for (std::uint64_t s = 0; s < 10; ++s)
        pool.accumulate(chunk(s, {1}), 2);
    for (std::uint64_t s = 0; s < 10; ++s) {
        pool.accumulate(chunk(s, {1}), 2);
        pool.harvest(s);
    }
    EXPECT_EQ(pool.peakActiveSegments(), 10u);
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, DedupeIgnoresRepeatedSource)
{
    SegBufferPool pool;
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/7, true));
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/7, true));
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/8, true));
    EXPECT_TRUE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/9, true));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.count, 3u);
    EXPECT_FLOAT_EQ(st.acc[0], 3.0f);
}

TEST(SegBufferPool, RecycledSlotStartsClean)
{
    // Harvest parks the slot; the next segment that lands on it must
    // see zeroed state — count, dedupe set, accumulator, wire floats.
    SegBufferPool pool;
    auto c = chunk(0, {5, 5, 5});
    c.wire_floats = 99;
    pool.accumulate(c, 1, /*src=*/1, true);
    EXPECT_EQ(pool.harvest(0).wire_floats, 99u);

    EXPECT_FALSE(pool.accumulate(chunk(1, {2}), 2, /*src=*/1, true));
    EXPECT_EQ(pool.count(1), 1u);
    SegState st = pool.harvest(1);
    EXPECT_EQ(st.wire_floats, 1u);
    ASSERT_EQ(st.acc.size(), 1u);
    EXPECT_FLOAT_EQ(st.acc[0], 2.0f);
}

TEST(SegBufferPool, SparseStripedSegmentsChurn)
{
    // Async striping: seg indices grow without bound while the active
    // set stays small. The index must stay exact through thousands of
    // insert/erase cycles (probe chains, backward-shift deletion).
    SegBufferPool pool;
    const std::uint64_t kRounds = 2000, kStride = 64;
    for (std::uint64_t r = 0; r < kRounds; ++r) {
        const std::uint64_t seg = r * kStride + (r % 7);
        EXPECT_FALSE(pool.accumulate(chunk(seg, {1}), 2));
        EXPECT_TRUE(pool.accumulate(chunk(seg, {1}), 2));
        EXPECT_TRUE(pool.has(seg));
        EXPECT_EQ(pool.count(seg), 2u);
        SegState st = pool.harvest(seg);
        EXPECT_FLOAT_EQ(st.acc[0], 2.0f);
        EXPECT_FALSE(pool.has(seg));
    }
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, ManySimultaneousSegmentsProbeCorrectly)
{
    SegBufferPool pool;
    const std::uint64_t n = 500;
    for (std::uint64_t s = 0; s < n; ++s)
        pool.accumulate(chunk(s * 1000003, {float(s)}), 2);
    EXPECT_EQ(pool.activeSegments(), n);
    // Erase every third to force backward-shift repair, then verify
    // the survivors are all still findable with the right contents.
    for (std::uint64_t s = 0; s < n; s += 3)
        pool.harvest(s * 1000003);
    for (std::uint64_t s = 0; s < n; ++s) {
        if (s % 3 == 0) {
            EXPECT_FALSE(pool.has(s * 1000003));
        } else {
            ASSERT_TRUE(pool.has(s * 1000003));
            EXPECT_FLOAT_EQ(pool.harvest(s * 1000003).acc[0], float(s));
        }
    }
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, ClearThenReuse)
{
    SegBufferPool pool;
    pool.accumulate(chunk(3, {1}), 5);
    pool.clear();
    EXPECT_FALSE(pool.has(3));
    EXPECT_EQ(pool.count(3), 0u);
    EXPECT_TRUE(pool.accumulate(chunk(3, {4}), 1));
    EXPECT_FLOAT_EQ(pool.harvest(3).acc[0], 4.0f);
}

} // namespace
} // namespace isw::core
