/** @file Unit tests for the segment buffer pool. */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>

#include "core/seg_buffer.hh"
#include "ml/quantize.hh"
#include "sim/random.hh"

namespace isw::core {
namespace {

net::ChunkPayload
chunk(std::uint64_t seg, std::vector<float> vals)
{
    net::ChunkPayload c;
    c.seg = seg;
    c.wire_floats = static_cast<std::uint32_t>(vals.size());
    c.values = std::move(vals);
    return c;
}

TEST(SegBufferPool, AccumulatesElementwise)
{
    SegBufferPool pool;
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 2, 3}), 2));
    EXPECT_TRUE(pool.accumulate(chunk(0, {10, 20, 30}), 2));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.count, 2u);
    ASSERT_EQ(st.acc.size(), 3u);
    EXPECT_FLOAT_EQ(st.acc[0], 11.0f);
    EXPECT_FLOAT_EQ(st.acc[1], 22.0f);
    EXPECT_FLOAT_EQ(st.acc[2], 33.0f);
}

TEST(SegBufferPool, SegmentsAreIndependent)
{
    SegBufferPool pool;
    pool.accumulate(chunk(1, {1}), 3);
    pool.accumulate(chunk(2, {5}), 3);
    EXPECT_EQ(pool.count(1), 1u);
    EXPECT_EQ(pool.count(2), 1u);
    EXPECT_EQ(pool.count(3), 0u);
    EXPECT_EQ(pool.activeSegments(), 2u);
}

TEST(SegBufferPool, HarvestRemovesSegment)
{
    SegBufferPool pool;
    pool.accumulate(chunk(7, {1}), 1);
    pool.harvest(7);
    EXPECT_FALSE(pool.has(7));
    EXPECT_THROW(pool.harvest(7), std::out_of_range);
}

TEST(SegBufferPool, ThresholdOneEmitsImmediately)
{
    SegBufferPool pool;
    EXPECT_TRUE(pool.accumulate(chunk(0, {1}), 1));
}

TEST(SegBufferPool, MixedPayloadSizesGrowBuffer)
{
    SegBufferPool pool;
    pool.accumulate(chunk(0, {1, 1}), 2);
    pool.accumulate(chunk(0, {1, 1, 1, 1}), 2);
    SegState st = pool.harvest(0);
    ASSERT_EQ(st.acc.size(), 4u);
    EXPECT_FLOAT_EQ(st.acc[0], 2.0f);
    EXPECT_FLOAT_EQ(st.acc[3], 1.0f);
}

TEST(SegBufferPool, WireFloatsTracksMax)
{
    SegBufferPool pool;
    auto c1 = chunk(0, {1});
    c1.wire_floats = 100;
    pool.accumulate(c1, 2);
    pool.accumulate(chunk(0, {1}), 2);
    EXPECT_EQ(pool.harvest(0).wire_floats, 100u);
}

TEST(SegBufferPool, ClearDropsEverything)
{
    SegBufferPool pool;
    pool.accumulate(chunk(0, {1}), 5);
    pool.accumulate(chunk(1, {1}), 5);
    pool.clear();
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, PeakActiveSegmentsTracksPressure)
{
    SegBufferPool pool;
    for (std::uint64_t s = 0; s < 10; ++s)
        pool.accumulate(chunk(s, {1}), 2);
    for (std::uint64_t s = 0; s < 10; ++s) {
        pool.accumulate(chunk(s, {1}), 2);
        pool.harvest(s);
    }
    EXPECT_EQ(pool.peakActiveSegments(), 10u);
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, DedupeIgnoresRepeatedSource)
{
    SegBufferPool pool;
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/7, true));
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/7, true));
    EXPECT_FALSE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/8, true));
    EXPECT_TRUE(pool.accumulate(chunk(0, {1, 1}), 3, /*src=*/9, true));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.count, 3u);
    EXPECT_FLOAT_EQ(st.acc[0], 3.0f);
}

TEST(SegBufferPool, RecycledSlotStartsClean)
{
    // Harvest parks the slot; the next segment that lands on it must
    // see zeroed state — count, dedupe set, accumulator, wire floats.
    SegBufferPool pool;
    auto c = chunk(0, {5, 5, 5});
    c.wire_floats = 99;
    pool.accumulate(c, 1, /*src=*/1, true);
    EXPECT_EQ(pool.harvest(0).wire_floats, 99u);

    EXPECT_FALSE(pool.accumulate(chunk(1, {2}), 2, /*src=*/1, true));
    EXPECT_EQ(pool.count(1), 1u);
    SegState st = pool.harvest(1);
    EXPECT_EQ(st.wire_floats, 1u);
    ASSERT_EQ(st.acc.size(), 1u);
    EXPECT_FLOAT_EQ(st.acc[0], 2.0f);
}

TEST(SegBufferPool, SparseStripedSegmentsChurn)
{
    // Async striping: seg indices grow without bound while the active
    // set stays small. The index must stay exact through thousands of
    // insert/erase cycles (probe chains, backward-shift deletion).
    SegBufferPool pool;
    const std::uint64_t kRounds = 2000, kStride = 64;
    for (std::uint64_t r = 0; r < kRounds; ++r) {
        const std::uint64_t seg = r * kStride + (r % 7);
        EXPECT_FALSE(pool.accumulate(chunk(seg, {1}), 2));
        EXPECT_TRUE(pool.accumulate(chunk(seg, {1}), 2));
        EXPECT_TRUE(pool.has(seg));
        EXPECT_EQ(pool.count(seg), 2u);
        SegState st = pool.harvest(seg);
        EXPECT_FLOAT_EQ(st.acc[0], 2.0f);
        EXPECT_FALSE(pool.has(seg));
    }
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, ManySimultaneousSegmentsProbeCorrectly)
{
    SegBufferPool pool;
    const std::uint64_t n = 500;
    for (std::uint64_t s = 0; s < n; ++s)
        pool.accumulate(chunk(s * 1000003, {float(s)}), 2);
    EXPECT_EQ(pool.activeSegments(), n);
    // Erase every third to force backward-shift repair, then verify
    // the survivors are all still findable with the right contents.
    for (std::uint64_t s = 0; s < n; s += 3)
        pool.harvest(s * 1000003);
    for (std::uint64_t s = 0; s < n; ++s) {
        if (s % 3 == 0) {
            EXPECT_FALSE(pool.has(s * 1000003));
        } else {
            ASSERT_TRUE(pool.has(s * 1000003));
            EXPECT_FLOAT_EQ(pool.harvest(s * 1000003).acc[0], float(s));
        }
    }
    EXPECT_EQ(pool.activeSegments(), 0u);
}

TEST(SegBufferPool, ClearThenReuse)
{
    SegBufferPool pool;
    pool.accumulate(chunk(3, {1}), 5);
    pool.clear();
    EXPECT_FALSE(pool.has(3));
    EXPECT_EQ(pool.count(3), 0u);
    EXPECT_TRUE(pool.accumulate(chunk(3, {4}), 1));
    EXPECT_FLOAT_EQ(pool.harvest(3).acc[0], 4.0f);
}

// ---------------------------------------------------------------------
// Bounded (SwitchML-style) slot-pool mode.

net::ChunkPayload
jobChunk(std::uint64_t seg, std::uint8_t job, std::uint8_t ver,
         std::vector<float> vals)
{
    net::ChunkPayload c = chunk(seg, std::move(vals));
    c.job = job;
    c.ver = ver;
    return c;
}

TEST(BoundedSlotPool, StreamsTensorLargerThanPool)
{
    // 4 slots, 16-segment tensor, 2 workers, in-order delivery: every
    // segment completes through direct-mapped slot reuse and active
    // occupancy never exceeds the configured capacity.
    SegBufferPool pool;
    pool.setCapacity(4);
    EXPECT_TRUE(pool.bounded());
    for (std::uint64_t seg = 0; seg < 16; ++seg) {
        const auto ver = static_cast<std::uint8_t>((seg / 4) & 1);
        EXPECT_EQ(pool.offer(jobChunk(seg, 0, ver, {1}), 2, 1, true),
                  SlotOutcome::kAccepted);
        EXPECT_EQ(pool.offer(jobChunk(seg, 0, ver, {1}), 2, 2, true),
                  SlotOutcome::kCompleted);
        EXPECT_FLOAT_EQ(pool.harvest(packSegWord(seg)).acc[0], 2.0f);
    }
    EXPECT_LE(pool.peakActiveSegments(), 4u);
    EXPECT_EQ(pool.jobStats(0).completed, 16u);
    EXPECT_EQ(pool.contentionEvents(), 0u);
}

TEST(BoundedSlotPool, GhostDuplicateOfCompletedSegIsStale)
{
    // A duplicate of an already-harvested segment must not re-claim
    // the slot (it would wait forever for contributors that already
    // finished and deadlock the stream).
    SegBufferPool pool;
    pool.setCapacity(4);
    pool.offer(jobChunk(0, 0, 0, {1}), 2, 1, true);
    pool.offer(jobChunk(0, 0, 0, {1}), 2, 2, true);
    pool.harvest(packSegWord(0));
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {1}), 2, 1, true),
              SlotOutcome::kStale);
    EXPECT_EQ(pool.activeSegments(), 0u);
    EXPECT_EQ(pool.jobStats(0).stale_drops, 1u);
}

TEST(BoundedSlotPool, VersionBitSeparatesSlotReuseCycles)
{
    // seg 0 and seg 4 share slot 0 of a 4-slot pool but carry opposite
    // version bits; a straggling seg-0 packet arriving while seg 4
    // owns the slot must not pollute seg 4's sum.
    SegBufferPool pool;
    pool.setCapacity(4);
    pool.offer(jobChunk(0, 0, 0, {1}), 2, 1, true);
    pool.offer(jobChunk(0, 0, 0, {1}), 2, 2, true);
    pool.harvest(packSegWord(0));
    pool.offer(jobChunk(4, 0, 1, {10}), 2, 1, true);
    // Ghost of seg 0 (older seg, same slot): stale, occupant unharmed.
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {99}), 2, 2, true),
              SlotOutcome::kStale);
    // Same segment index but the opposite reuse-cycle version bit:
    // a different occupancy generation — must not mix in.
    EXPECT_EQ(pool.offer(jobChunk(4, 0, 0, {99}), 2, 2, true),
              SlotOutcome::kStale);
    EXPECT_EQ(pool.offer(jobChunk(4, 0, 1, {10}), 2, 2, true),
              SlotOutcome::kCompleted);
    EXPECT_FLOAT_EQ(pool.harvest(packSegWord(4)).acc[0], 20.0f);
    EXPECT_EQ(pool.jobStats(0).stale_drops, 2u);
}

TEST(BoundedSlotPool, NewerSegmentBouncesOffBusySlot)
{
    // Worker skew: seg 4 arrives while seg 0 (same slot) is still
    // aggregating. The newer segment is Nacked (busy), the occupant
    // unharmed.
    SegBufferPool pool;
    pool.setCapacity(4);
    pool.offer(jobChunk(0, 0, 0, {1}), 2, 1, true);
    EXPECT_EQ(pool.offer(jobChunk(4, 0, 1, {5}), 2, 2, true),
              SlotOutcome::kBusy);
    EXPECT_EQ(pool.count(packSegWord(0)), 1u);
    EXPECT_EQ(pool.jobStats(0).busy_drops, 1u);
    // The occupant still completes normally.
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {1}), 2, 2, true),
              SlotOutcome::kCompleted);
}

TEST(BoundedSlotPool, DuplicateWhileInFlightIsDeduped)
{
    SegBufferPool pool;
    pool.setCapacity(4);
    pool.offer(jobChunk(3, 0, 0, {1}), 3, 1, true);
    EXPECT_EQ(pool.offer(jobChunk(3, 0, 0, {1}), 3, 1, true),
              SlotOutcome::kDuplicate);
    EXPECT_EQ(pool.count(packSegWord(3)), 1u);
    EXPECT_EQ(pool.jobStats(0).duplicates, 1u);
}

TEST(BoundedSlotPool, PartitionsIsolateJobsAndRunAdmission)
{
    // Two jobs, 2 slots each. Same segment indices never collide
    // across jobs; a job without a partition is dropped and counted.
    SegBufferPool pool;
    pool.setCapacity(4);
    pool.setJobPartition(1, 0, 2);
    pool.setJobPartition(2, 2, 2);
    EXPECT_TRUE(pool.partitioned());
    EXPECT_EQ(pool.quotaFor(1), 2u);
    EXPECT_EQ(pool.quotaFor(3), 0u);

    EXPECT_EQ(pool.offer(jobChunk(0, 1, 0, {1}), 1, 1, true),
              SlotOutcome::kCompleted);
    EXPECT_EQ(pool.offer(jobChunk(0, 2, 0, {7}), 1, 1, true),
              SlotOutcome::kCompleted);
    EXPECT_FLOAT_EQ(pool.harvest(packSegWord(0, 1)).acc[0], 1.0f);
    EXPECT_FLOAT_EQ(pool.harvest(packSegWord(0, 2)).acc[0], 7.0f);

    EXPECT_EQ(pool.offer(jobChunk(0, 3, 0, {1}), 1, 1, true),
              SlotOutcome::kUnadmitted);
    EXPECT_EQ(pool.jobStats(3).unadmitted, 1u);
    EXPECT_GE(pool.contentionEvents(), 1u);
}

TEST(BoundedSlotPool, PartitionValidation)
{
    SegBufferPool unbounded;
    EXPECT_THROW(unbounded.setJobPartition(1, 0, 2), std::logic_error);
    SegBufferPool pool;
    pool.setCapacity(4);
    EXPECT_THROW(pool.setJobPartition(1, 2, 3), std::invalid_argument);
    EXPECT_THROW(pool.setJobPartition(1, 0, 0), std::invalid_argument);
}

TEST(BoundedSlotPool, ReclaimFromDropsCrashedWorkersPartials)
{
    SegBufferPool pool;
    pool.setCapacity(4);
    pool.offer(jobChunk(0, 0, 0, {1}), 3, /*src=*/11, true);
    pool.offer(jobChunk(1, 0, 0, {1}), 3, /*src=*/11, true);
    pool.offer(jobChunk(2, 0, 0, {1}), 3, /*src=*/22, true);
    EXPECT_EQ(pool.reclaimFrom(11), 2u);
    EXPECT_EQ(pool.activeSegments(), 1u);
    EXPECT_EQ(pool.jobStats(0).reclaimed, 2u);
    // The reclaimed segments stay admissible (floor untouched): the
    // surviving workers' resends can still complete them.
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {2}), 1, /*src=*/22, true),
              SlotOutcome::kCompleted);
    EXPECT_FLOAT_EQ(pool.harvest(packSegWord(0)).acc[0], 2.0f);
}

TEST(SegBufferPool, ReclaimFromUnboundedPool)
{
    SegBufferPool pool;
    pool.offer(chunk(5, {1}), 3, /*src=*/7, true);
    pool.offer(chunk(9, {1}), 3, /*src=*/8, true);
    EXPECT_EQ(pool.reclaimFrom(7), 1u);
    EXPECT_FALSE(pool.has(5));
    EXPECT_TRUE(pool.has(9));
    EXPECT_EQ(pool.jobStats(0).reclaimed, 1u);
}

TEST(BoundedSlotPool, HarvestPartialLeavesSegmentAdmissible)
{
    // Recovery drop (clear_segment / harvestPartial): the floor must
    // NOT advance, so the retransmitted segment can be rebuilt.
    SegBufferPool pool;
    pool.setCapacity(2);
    pool.offer(jobChunk(0, 0, 0, {1}), 2, 1, true);
    pool.harvest(packSegWord(0), /*completed=*/false);
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {1}), 2, 1, true),
              SlotOutcome::kAccepted);
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {1}), 2, 2, true),
              SlotOutcome::kCompleted);
}

TEST(BoundedSlotPool, UnorderedTrafficSkipsFloor)
{
    // Async traffic (dedupe off) legitimately reuses segment indices
    // across iterations: completing seg 0 must not blacklist the next
    // iteration's seg 0.
    SegBufferPool pool;
    pool.setCapacity(4);
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {1}), 1), //
              SlotOutcome::kCompleted);
    pool.harvest(packSegWord(0));
    EXPECT_EQ(pool.offer(jobChunk(0, 0, 0, {2}), 1),
              SlotOutcome::kCompleted);
    EXPECT_FLOAT_EQ(pool.harvest(packSegWord(0)).acc[0], 2.0f);
}

// ---------------------------------------------------------------------
// Quantized accumulate modes (DESIGN.md §14).

/** Encode @p vals into an int32 chunk at shared exponent @p e. */
net::ChunkPayload
int32Chunk(std::uint64_t seg, std::vector<float> vals, int e)
{
    net::ChunkPayload c;
    c.seg = seg;
    c.prec = net::Precision::kInt32;
    c.qexp = static_cast<std::int8_t>(e);
    c.wire_floats = static_cast<std::uint32_t>(vals.size());
    c.values.resize(vals.size());
    ml::encodeBlockInt32(vals.data(), vals.size(), e, c.values.data());
    return c;
}

TEST(QuantSlotPool, Int32AccumulatesExactIntegers)
{
    SegBufferPool pool;
    const int e = 4;
    EXPECT_FALSE(pool.accumulate(int32Chunk(0, {0.5f, -0.25f}, e), 2));
    EXPECT_TRUE(pool.accumulate(int32Chunk(0, {0.25f, 0.25f}, e), 2));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.prec, net::Precision::kInt32);
    EXPECT_EQ(st.qexp, e);
    std::vector<float> out(st.acc.size());
    ml::decodeBlockInt32(st.acc.data(), st.acc.size(), e, out.data());
    EXPECT_FLOAT_EQ(out[0], 0.75f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
    EXPECT_EQ(pool.totals().overflow_clamps, 0u);
    EXPECT_EQ(pool.totals().exp_rescales, 0u);
}

TEST(QuantSlotPool, Fp16AccumulatesHalfwise)
{
    SegBufferPool pool;
    net::ChunkPayload a, b;
    a.seg = b.seg = 0;
    a.prec = b.prec = net::Precision::kFp16;
    a.wire_floats = b.wire_floats = 1;
    const float va[2] = {1.5f, -2.0f}, vb[2] = {0.25f, 8.0f};
    a.values.resize(1);
    b.values.resize(1);
    ml::packHalfWords(va, 2, a.values.data());
    ml::packHalfWords(vb, 2, b.values.data());
    pool.accumulate(a, 2);
    EXPECT_TRUE(pool.accumulate(b, 2));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.prec, net::Precision::kFp16);
    float out[2];
    ml::unpackHalfWords(st.acc.data(), 2, out);
    EXPECT_EQ(out[0], 1.75f);
    EXPECT_EQ(out[1], 6.0f);
}

TEST(QuantSlotPool, Int32ArrivalOrderBitIdentical)
{
    // The property the int32 datapath exists for: same contributions,
    // any arrival order, identical aggregated bits.
    sim::Rng rng(17);
    const std::uint32_t h = 5;
    const std::size_t n = 33;
    std::vector<std::vector<float>> contribs(h);
    for (auto &c : contribs) {
        c.resize(n);
        for (auto &x : c)
            x = static_cast<float>(rng.uniform(-0.5, 0.5));
    }
    const int e = 6;
    std::vector<std::uint32_t> order(h);
    for (std::uint32_t w = 0; w < h; ++w)
        order[w] = w;
    std::vector<std::int32_t> ref;
    for (int perm = 0; perm < 6; ++perm) {
        SegBufferPool pool;
        bool done = false;
        for (std::uint32_t w : order)
            done = pool.accumulate(int32Chunk(9, contribs[w], e), h,
                                   /*src=*/w, true);
        EXPECT_TRUE(done);
        const SegState st = pool.harvest(9);
        std::vector<std::int32_t> bits(st.acc.size());
        for (std::size_t i = 0; i < st.acc.size(); ++i)
            bits[i] = std::bit_cast<std::int32_t>(st.acc[i]);
        if (ref.empty())
            ref = bits;
        else
            EXPECT_EQ(bits, ref) << "order " << perm;
        std::rotate(order.begin(), order.begin() + 1, order.end());
        if (perm == 2)
            std::reverse(order.begin(), order.end());
    }
}

TEST(QuantSlotPool, BoundedPoolArrivalOrderBitIdentical)
{
    // 4-slot bounded pool, 8 striped segments, 3 workers: segment
    // completion order and per-segment contributor order both vary,
    // yet every harvested accumulator is bit-identical.
    sim::Rng rng(19);
    const std::uint32_t h = 3;
    const std::uint64_t segs = 8;
    const std::size_t n = 16;
    const int e = 5;
    std::vector<std::vector<std::vector<float>>> grads(segs);
    for (auto &per_seg : grads) {
        per_seg.resize(h);
        for (auto &g : per_seg) {
            g.resize(n);
            for (auto &x : g)
                x = static_cast<float>(rng.uniform(-0.25, 0.25));
        }
    }
    auto run = [&](bool worker_major,
                   bool reverse_workers) -> std::vector<std::int32_t> {
        SegBufferPool pool;
        pool.setCapacity(4);
        std::vector<std::int32_t> all_bits;
        // Window of 4: slots are direct-mapped seg % 4, so finish a
        // slot's occupant before its successor arrives.
        for (std::uint64_t seg = 0; seg < segs; ++seg) {
            std::vector<std::uint32_t> ws(h);
            for (std::uint32_t w = 0; w < h; ++w)
                ws[w] = reverse_workers ? h - 1 - w : w;
            if (worker_major && seg % 2 == 1)
                std::rotate(ws.begin(), ws.begin() + 1, ws.end());
            const auto ver = static_cast<std::uint8_t>((seg / 4) & 1);
            for (std::uint32_t w : ws) {
                auto c = int32Chunk(seg, grads[seg][w], e);
                c.ver = ver;
                pool.offer(c, h, /*src=*/w, true);
            }
            const SegState st = pool.harvest(packSegWord(seg));
            EXPECT_EQ(st.count, h);
            for (float f : st.acc)
                all_bits.push_back(std::bit_cast<std::int32_t>(f));
        }
        return all_bits;
    };
    const auto a = run(false, false);
    const auto b = run(false, true);
    const auto c = run(true, false);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
}

TEST(QuantSlotPool, MixedExponentsRescaleTowardMaxAndCount)
{
    SegBufferPool pool;
    // First contribution at e=4, second at e=6: the slot rescales its
    // accumulator up to 6 (max is order-independent) and counts it.
    EXPECT_FALSE(pool.accumulate(int32Chunk(0, {0.5f}, 4), 2));
    EXPECT_TRUE(pool.accumulate(int32Chunk(0, {0.5f}, 6), 2));
    SegState st = pool.harvest(0);
    EXPECT_EQ(st.qexp, 6);
    EXPECT_EQ(pool.totals().exp_rescales, 1u);
    float out = 0.0f;
    ml::decodeBlockInt32(st.acc.data(), 1, 6, &out);
    EXPECT_FLOAT_EQ(out, 1.0f);

    // Lower-exponent latecomer: incoming rescales up, slot unchanged.
    SegBufferPool pool2;
    pool2.accumulate(int32Chunk(0, {0.5f}, 6), 2);
    pool2.accumulate(int32Chunk(0, {0.5f}, 4), 2);
    SegState st2 = pool2.harvest(0);
    EXPECT_EQ(st2.qexp, 6);
    EXPECT_EQ(pool2.totals().exp_rescales, 1u);
    ml::decodeBlockInt32(st2.acc.data(), 1, 6, &out);
    EXPECT_FLOAT_EQ(out, 1.0f);
}

TEST(QuantSlotPool, OverflowClampsAtRailAndCounts)
{
    SegBufferPool pool;
    // 0.9 at e=0 encodes as ~0.45 * 2^31; the third contribution
    // pushes the integer sum past the rail and must saturate, not wrap.
    pool.accumulate(int32Chunk(0, {0.9f}, 0), 3);
    pool.accumulate(int32Chunk(0, {0.9f}, 0), 3);
    EXPECT_TRUE(pool.accumulate(int32Chunk(0, {0.9f}, 0), 3));
    SegState st = pool.harvest(0);
    EXPECT_EQ(std::bit_cast<std::int32_t>(st.acc[0]), ml::kQuantMax);
    EXPECT_EQ(pool.totals().overflow_clamps, 1u);
}

} // namespace
} // namespace isw::core
