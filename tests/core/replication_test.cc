/** @file Primary->backup replication engine (DESIGN.md §16): frame
 *  word packing, per-harvest vs batched-lazy state streaming, the
 *  appended contributor set, and the always-immediate result path. */

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <variant>
#include <vector>

#include "core/accelerator.hh"
#include "core/replication.hh"

namespace isw::core {
namespace {

net::ChunkPayload
chunk(std::uint64_t seg, std::vector<float> vals)
{
    net::ChunkPayload c;
    c.seg = seg;
    c.wire_floats = static_cast<std::uint32_t>(vals.size());
    c.values = std::move(vals);
    return c;
}

TEST(Replication, FrameWordsRoundTrip)
{
    const std::uint64_t st = packReplState(7, 1234);
    EXPECT_EQ(st & kReplResultBit, 0u); // state: bit 63 clear
    EXPECT_EQ(replContributors(st), 7u);
    EXPECT_EQ(replCount(st), 1234u);

    const std::uint64_t rs = packReplResult(99, 4);
    EXPECT_NE(rs & kReplResultBit, 0u); // result: bit 63 set
    EXPECT_EQ(replResultSeq(rs), 99u);
    EXPECT_EQ(replCount(rs), 4u);

    const std::uint64_t mv = packReplMember(0x0A00FD01u, 0x1234u);
    EXPECT_EQ(replMemberIp(mv), 0x0A00FD01u);
    EXPECT_EQ(replMemberJoinValue(mv), 0x1234u);
}

struct ReplFixture : ::testing::Test
{
    sim::Simulation s{1};
    Accelerator accel{s};
    std::vector<net::Payload> sent;

    ReplicatedAccelerator
    makeRepl(ReplicationMode mode, sim::TimeNs window = 2 * sim::kMsec)
    {
        return ReplicatedAccelerator(
            s, accel, ReplicationConfig{mode, window},
            [this](net::Payload p) { sent.push_back(std::move(p)); });
    }
};

TEST_F(ReplFixture, PerHarvestStreamsEveryAcceptWithContributorSet)
{
    accel.setThreshold(3);
    // The HA datapath always runs with contributor dedupe on: the
    // replicated set is what makes post-failover retransmissions fold
    // in exactly once.
    accel.setDedupeContributors(true);
    ReplicatedAccelerator repl = makeRepl(ReplicationMode::kPerHarvest);
    accel.setAccept([&](std::uint64_t key) { repl.onAccept(key); });
    accel.ingest(chunk(0, {1.0f, 2.0f}), 0xA1);
    accel.ingest(chunk(0, {3.0f, 4.0f}), 0xA2);
    s.run();
    ASSERT_EQ(sent.size(), 2u); // one state frame per accept
    const auto &ch = std::get<net::ChunkPayload>(sent[1]);
    EXPECT_EQ(replContributors(ch.transfer_id), 2u);
    EXPECT_EQ(replCount(ch.transfer_id), 2u);
    // Accumulator words first, then the contributor IPs bit-cast into
    // float slots (replace semantics need the complete set).
    ASSERT_EQ(ch.values.size(), 4u);
    EXPECT_FLOAT_EQ(ch.values[0], 4.0f);
    EXPECT_FLOAT_EQ(ch.values[1], 6.0f);
    const std::set<std::uint32_t> contribs{
        std::bit_cast<std::uint32_t>(ch.values[2]),
        std::bit_cast<std::uint32_t>(ch.values[3])};
    EXPECT_TRUE(contribs.count(0xA1u));
    EXPECT_TRUE(contribs.count(0xA2u));
    EXPECT_EQ(repl.stats().state_frames, 2u);
}

TEST_F(ReplFixture, BatchedLazyCoalescesDirtyStateUntilTheWindowExpires)
{
    accel.setThreshold(3);
    ReplicatedAccelerator repl =
        makeRepl(ReplicationMode::kBatchedLazy, 1 * sim::kMsec);
    accel.setAccept([&](std::uint64_t key) { repl.onAccept(key); });
    accel.ingest(chunk(0, {1.0f}), 0xA1);
    accel.ingest(chunk(0, {2.0f}), 0xA2);
    s.run();
    EXPECT_TRUE(sent.empty()); // dirty, not yet due
    s.at(2 * sim::kMsec, [&] { repl.pump(); });
    s.run();
    ASSERT_EQ(sent.size(), 1u); // both accepts coalesced into one flush
    const auto &ch = std::get<net::ChunkPayload>(sent[0]);
    EXPECT_EQ(replCount(ch.transfer_id), 2u);
    EXPECT_EQ(repl.stats().state_frames, 1u);
}

TEST_F(ReplFixture, ResultsReplicateImmediatelyEvenInLazyMode)
{
    ReplicatedAccelerator repl =
        makeRepl(ReplicationMode::kBatchedLazy, 1 * sim::kMsec);
    repl.onResult(/*key=*/0, {10.0f}, /*wire_floats=*/1, /*count=*/3,
                  /*seq=*/1, net::Precision::kFp32, /*qexp=*/0);
    ASSERT_EQ(sent.size(), 1u); // no window wait: correctness floor
    const auto &ch = std::get<net::ChunkPayload>(sent[0]);
    EXPECT_NE(ch.transfer_id & kReplResultBit, 0u);
    EXPECT_EQ(replResultSeq(ch.transfer_id), 1u);
    EXPECT_EQ(replCount(ch.transfer_id), 3u);
    EXPECT_EQ(repl.stats().result_frames, 1u);
    EXPECT_EQ(repl.stats().state_frames, 0u);
}

TEST_F(ReplFixture, CompletedSegmentsDropOutOfTheDirtySet)
{
    accel.setThreshold(2);
    ReplicatedAccelerator repl =
        makeRepl(ReplicationMode::kBatchedLazy, 1 * sim::kMsec);
    accel.setAccept([&](std::uint64_t key) { repl.onAccept(key); });
    accel.setEmit([](std::uint64_t, SegState) {});
    accel.ingest(chunk(0, {1.0f}), 0xA1);
    accel.ingest(chunk(0, {2.0f}), 0xA2); // completes: pool slot harvested
    s.run();
    s.at(2 * sim::kMsec, [&] { repl.pump(); });
    s.run();
    // The dirty key's slot is gone by flush time; nothing is sent.
    EXPECT_TRUE(sent.empty());
    EXPECT_EQ(repl.stats().state_frames, 0u);
}

} // namespace
} // namespace isw::core
