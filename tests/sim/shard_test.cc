/** @file Sharded engine tests: serial equivalence, deterministic
 *  cross-domain merging, lookahead enforcement, cancellation. */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/shard.hh"
#include "sim/simulation.hh"

namespace isw::sim {
namespace {

TEST(ShardedEngine, SingleDomainMatchesSerialQueue)
{
    // The degenerate engine must replay the serial queue exactly:
    // same order (including FIFO ties), same clock, same counts.
    const auto feed = [](auto &&schedule) {
        schedule(30, "c");
        schedule(10, "a");
        schedule(10, "b"); // FIFO tie with "a"
        schedule(20, "d");
    };

    std::string serial;
    EventQueue q;
    feed([&](TimeNs t, const char *tag) {
        q.schedule(t, [&serial, tag] { serial += tag; });
    });
    const std::size_t serial_ran = q.runAll();

    std::string sharded;
    ShardedEngine eng(ShardPlan{1, 100, 1});
    feed([&](TimeNs t, const char *tag) {
        eng.schedule(0, t, [&sharded, tag] { sharded += tag; });
    });
    const std::size_t sharded_ran = eng.runAll();

    EXPECT_EQ(serial, "abdc");
    EXPECT_EQ(sharded, serial);
    EXPECT_EQ(sharded_ran, serial_ran);
    EXPECT_EQ(eng.now(), q.now());
    EXPECT_TRUE(eng.empty());
}

/** Three source domains each firing a burst of sends into domain 0,
 *  all arriving at the same instant: the merge must order them by
 *  (when, source domain, per-source sequence) regardless of the
 *  worker-thread count. */
std::string
crossMergeTrace(unsigned threads)
{
    ShardPlan plan;
    plan.domains = 4;
    plan.lookahead = 100;
    plan.threads = threads;
    ShardedEngine eng(plan);
    // Only domain 0's events append, so the log needs no locking.
    auto log = std::make_shared<std::string>();
    for (DomainId src = 1; src <= 3; ++src) {
        eng.schedule(src, 10, [&eng, src, log] {
            for (int burst = 0; burst < 3; ++burst) {
                const std::string tag =
                    " s" + std::to_string(src) + "#" + std::to_string(burst);
                eng.schedule(0, eng.now() + eng.lookahead(),
                             [log, tag] { *log += tag; });
            }
        });
    }
    eng.runAll();
    EXPECT_EQ(eng.crossEvents(), 9u);
    return *log;
}

TEST(ShardedEngine, CrossDomainMergeIsDeterministic)
{
    const std::string expected =
        " s1#0 s1#1 s1#2 s2#0 s2#1 s2#2 s3#0 s3#1 s3#2";
    EXPECT_EQ(crossMergeTrace(1), expected);
    EXPECT_EQ(crossMergeTrace(2), expected);
    EXPECT_EQ(crossMergeTrace(4), expected);
}

TEST(ShardedEngine, LookaheadViolationThrows)
{
    // threads = 1 keeps the offending callback on the calling thread
    // so the logic_error propagates out of runAll.
    ShardedEngine eng(ShardPlan{2, 100, 1});
    eng.schedule(0, 10, [&eng] {
        eng.schedule(1, eng.now() + 1, [] {}); // < window end: illegal
    });
    EXPECT_THROW(eng.runAll(), std::logic_error);
}

TEST(ShardedEngine, CrossEventsAreNotCancellable)
{
    ShardedEngine eng(ShardPlan{2, 100, 1});
    bool cross_ran = false;
    bool cancelled_ran = false;
    eng.schedule(0, 10, [&] {
        const EventId cross =
            eng.schedule(1, eng.now() + 100, [&] { cross_ran = true; });
        EXPECT_EQ(cross, kInvalidEventId);
        // Same-domain events stay cancellable mid-window.
        const EventId local =
            eng.schedule(0, eng.now() + 5, [&] { cancelled_ran = true; });
        EXPECT_NE(local, kInvalidEventId);
        EXPECT_TRUE(eng.cancelHere(local));
    });
    eng.runAll();
    EXPECT_TRUE(cross_ran);
    EXPECT_FALSE(cancelled_ran);
}

TEST(ShardedEngine, RunUntilAdvancesToDeadlineWhenDrained)
{
    ShardedEngine eng(ShardPlan{2, 50, 1});
    int ran = 0;
    eng.schedule(1, 30, [&ran] { ++ran; });
    eng.runUntil(500);
    EXPECT_EQ(ran, 1);
    EXPECT_TRUE(eng.empty());
    EXPECT_EQ(eng.now(), 500u);
    // A deadline before the next event executes nothing...
    eng.schedule(0, 900, [&ran] { ++ran; });
    eng.runUntil(700);
    EXPECT_EQ(ran, 1);
    // ...and the deadline-inclusive contract matches EventQueue.
    eng.runUntil(900);
    EXPECT_EQ(ran, 2);
}

TEST(ShardedEngine, DomainHooksWrapEveryWindowSlice)
{
    ShardedEngine eng(ShardPlan{2, 100, 1});
    std::vector<int> entered, left;
    eng.setDomainHooks(
        [&entered](DomainId d) { entered.push_back(static_cast<int>(d)); },
        [&left](DomainId d) { left.push_back(static_cast<int>(d)); });
    eng.schedule(0, 10, [] {});
    eng.schedule(1, 10, [] {});
    eng.runAll();
    EXPECT_EQ(entered, left);
    EXPECT_EQ(entered, (std::vector<int>{0, 1}));
}

TEST(ShardedEngine, CrossBatchesCountFlushesNotEvents)
{
    // A window slice's staged sends to one destination travel as a
    // single mailbox node: 3 events, 1 batch.
    ShardedEngine eng(ShardPlan{2, 100, 1});
    int ran = 0;
    eng.schedule(1, 10, [&eng, &ran] {
        for (int i = 0; i < 3; ++i)
            eng.schedule(0, eng.now() + eng.lookahead(),
                         [&ran] { ++ran; });
    });
    eng.runAll();
    EXPECT_EQ(ran, 3);
    EXPECT_EQ(eng.crossEvents(), 3u);
    EXPECT_EQ(eng.crossBatches(), 1u);
}

TEST(ShardedEngine, SerialFastPathSkipsIdleDomains)
{
    // Only domain 3 ever has work: every window should take the
    // single-active-domain fast path and count the idle domains as
    // skipped, without waking the worker pool.
    ShardedEngine eng(ShardPlan{4, 10, 2});
    int ran = 0;
    std::function<void()> chain = [&] {
        if (++ran < 5)
            eng.schedule(3, eng.now() + 50, chain);
    };
    eng.schedule(3, 10, chain);
    eng.runAll();
    EXPECT_EQ(ran, 5);
    EXPECT_GT(eng.windows(), 0u);
    EXPECT_EQ(eng.windowsSerialFastPath(), eng.windows());
    EXPECT_GT(eng.domainsSkipped(), 0u);
}

TEST(ShardedEngine, BarrierHookRunsAfterEveryWindow)
{
    ShardedEngine eng(ShardPlan{2, 50, 2});
    std::uint64_t barriers = 0;
    eng.setBarrierHook([&barriers] { ++barriers; });
    eng.schedule(0, 10, [] {});
    eng.schedule(1, 10, [] {});
    eng.schedule(0, 500, [] {});
    eng.runAll();
    EXPECT_EQ(barriers, eng.windows());
    EXPECT_GE(barriers, 2u);
}

TEST(ShardedEngine, CancelInRejectsForeignDomainMidWindow)
{
    ShardedEngine eng(ShardPlan{2, 100, 1});
    bool target_ran = false;
    const EventId target =
        eng.schedule(1, 500, [&target_ran] { target_ran = true; });
    ASSERT_NE(target, kInvalidEventId);
    // Mid-window, from domain 0: EventIds are queue-local, so a
    // cross-domain cancel must fail loudly instead of corrupting the
    // foreign queue.
    eng.schedule(0, 10, [&eng, target] { eng.cancelIn(1, target); });
    EXPECT_THROW(eng.runAll(), std::logic_error);
}

TEST(ShardedEngine, CancelInWorksFromSetupAndOwningDomain)
{
    ShardedEngine eng(ShardPlan{2, 100, 1});
    bool a_ran = false;
    bool b_ran = false;
    const EventId a = eng.schedule(1, 500, [&a_ran] { a_ran = true; });
    // Setup context (no domain pinned yet): any domain is cancellable.
    EXPECT_TRUE(eng.cancelIn(1, a));
    // Mid-window, from the owning domain: also fine.
    eng.schedule(1, 10, [&eng, &b_ran] {
        const EventId b =
            eng.schedule(1, eng.now() + 5, [&b_ran] { b_ran = true; });
        EXPECT_TRUE(eng.cancelIn(1, b));
    });
    // A cancelled-slot id is a polite no-op, as is kInvalidEventId.
    EXPECT_FALSE(eng.cancelIn(1, kInvalidEventId));
    eng.runAll();
    EXPECT_FALSE(a_ran);
    EXPECT_FALSE(b_ran);
}

TEST(SimulationShard, CancelEventInTargetsTheHomeDomain)
{
    Simulation s{1};
    s.shard(ShardPlan{3, 10, 1});
    bool ran = false;
    const EventId id = s.atInDomain(2, 50, [&ran] { ran = true; });
    EXPECT_TRUE(s.cancelEventIn(2, id));
    s.run();
    EXPECT_FALSE(ran);
    // Serial simulations route cancelEventIn to the single queue.
    Simulation serial{1};
    bool serial_ran = false;
    const EventId sid = serial.at(50, [&serial_ran] { serial_ran = true; });
    EXPECT_TRUE(serial.cancelEventIn(0, sid));
    serial.run();
    EXPECT_FALSE(serial_ran);
}

TEST(SimulationShard, RoutesThroughShardedEngine)
{
    Simulation s{1};
    // Lookahead 4 < the 5 ns gap: each event gets its own window, so
    // cross-domain execution follows timestamps (order within a single
    // window is the conservative contract's freedom, not tested here).
    s.shard(ShardPlan{3, 4, 1});
    ASSERT_TRUE(s.sharded());
    std::string order;
    s.atInDomain(1, 10, [&] { order += "a"; });
    s.atInDomain(2, 5, [&] { order += "b"; });
    s.run();
    EXPECT_EQ(order, "ba");
    EXPECT_EQ(s.eventsExecuted(), 2u);
    EXPECT_TRUE(s.queueEmpty());
}

TEST(SimulationShard, RejectsDoubleShardAndLateShard)
{
    Simulation s{1};
    s.shard(ShardPlan{2, 100, 1});
    EXPECT_THROW(s.shard(ShardPlan{2, 100, 1}), std::logic_error);

    Simulation late{1};
    late.after(10, [] {});
    EXPECT_THROW(late.shard(ShardPlan{2, 100, 1}), std::logic_error);
}

} // namespace
} // namespace isw::sim
