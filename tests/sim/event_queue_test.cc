/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace isw::sim {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero)
{
    EventQueue q;
    EXPECT_EQ(q.now(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_FALSE(q.runOne());
}

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTimeEventsRunFifo)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.runAll();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, ClockAdvancesToEventTime)
{
    EventQueue q;
    TimeNs seen = 0;
    q.schedule(42, [&] { seen = q.now(); });
    q.runOne();
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, SchedulingIntoThePastThrows)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.runOne();
    EXPECT_THROW(q.schedule(50, [] {}), std::logic_error);
}

TEST(EventQueue, NullCallbackThrows)
{
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback{}),
                 std::invalid_argument);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue q;
    bool ran = false;
    EventId id = q.schedule(10, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.runAll();
    EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelUnknownIdIsNoop)
{
    EventQueue q;
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

TEST(EventQueue, CancelledEventsDontCountAsPending)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.cancel(id);
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int depth = 0;
    std::function<void()> recurse = [&] {
        if (++depth < 5)
            q.scheduleAfter(10, recurse);
    };
    q.schedule(0, recurse);
    q.runAll();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, RunUntilStopsAtDeadline)
{
    EventQueue q;
    int count = 0;
    for (TimeNs t = 10; t <= 100; t += 10)
        q.schedule(t, [&] { ++count; });
    const std::size_t ran = q.runUntil(50);
    EXPECT_EQ(ran, 5u);
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.pending(), 5u);
    // Deadline-inclusive semantics: event exactly at 50 ran.
    q.runAll();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilAdvancesClockOnEmptyQueue)
{
    EventQueue q;
    q.runUntil(1000);
    EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, RunAllHonorsEventBudget)
{
    EventQueue q;
    int count = 0;
    std::function<void()> forever = [&] {
        ++count;
        q.scheduleAfter(1, forever);
    };
    q.schedule(0, forever);
    const std::size_t ran = q.runAll(100);
    EXPECT_EQ(ran, 100u);
    EXPECT_EQ(count, 100);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    TimeNs fired = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { fired = q.now(); });
    });
    q.runAll();
    EXPECT_EQ(fired, 150u);
}

TEST(EventQueue, CancelFromWithinEarlierEvent)
{
    EventQueue q;
    bool second_ran = false;
    EventId second = q.schedule(20, [&] { second_ran = true; });
    q.schedule(10, [&] { q.cancel(second); });
    q.runAll();
    EXPECT_FALSE(second_ran);
}

TEST(EventQueue, CancelOfFiredEventReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    q.runAll();
    // Historic bug: this used to park the id in a tombstone set
    // forever, and pending() (heap size minus tombstones) underflowed.
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DoubleCancelReturnsFalse)
{
    EventQueue q;
    EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PendingNeverUnderflowsUnderCancelChurn)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(q.schedule(static_cast<TimeNs>(i), [] {}));
    // Cancel half, fire the rest, then re-cancel everything.
    for (std::size_t i = 0; i < ids.size(); i += 2)
        EXPECT_TRUE(q.cancel(ids[i]));
    EXPECT_EQ(q.pending(), 50u);
    q.runAll();
    EXPECT_EQ(q.pending(), 0u);
    for (EventId id : ids)
        EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleIdDoesNotCancelRecycledSlot)
{
    EventQueue q;
    // Fire an event, then schedule another (which recycles the slot):
    // the first id must stay dead and never alias the new event.
    EventId first = q.schedule(1, [] {});
    q.runAll();
    bool ran = false;
    q.schedule(2, [&] { ran = true; });
    EXPECT_FALSE(q.cancel(first));
    q.runAll();
    EXPECT_TRUE(ran);
}

TEST(EventQueue, ExecutedCountsLifetimeEvents)
{
    EventQueue q;
    for (int i = 0; i < 5; ++i)
        q.schedule(static_cast<TimeNs>(i), [] {});
    EventId id = q.schedule(10, [] {});
    q.cancel(id);
    q.runAll();
    EXPECT_EQ(q.executed(), 5u);
    q.schedule(20, [] {});
    q.runAll();
    EXPECT_EQ(q.executed(), 6u);
}

TEST(EventQueue, InterleavedMonotoneAndOutOfOrderSchedules)
{
    // Exercises the monotone-tail / heap split: alternating ascending
    // and descending timestamps must still fire in global time order
    // with FIFO tie-breaks.
    EventQueue q;
    std::vector<TimeNs> fired;
    const TimeNs times[] = {50, 10, 60, 20, 60, 5, 70, 60};
    for (TimeNs t : times)
        q.schedule(t, [&fired, &q] { fired.push_back(q.now()); });
    q.runAll();
    const std::vector<TimeNs> want{5, 10, 20, 50, 60, 60, 60, 70};
    EXPECT_EQ(fired, want);
}

TEST(EventQueue, CancelHeadOfMonotoneTail)
{
    EventQueue q;
    bool a = false, b = false;
    EventId first = q.schedule(10, [&] { a = true; });
    q.schedule(20, [&] { b = true; });
    EXPECT_TRUE(q.cancel(first));
    q.runAll();
    EXPECT_FALSE(a);
    EXPECT_TRUE(b);
    EXPECT_EQ(q.now(), 20u);
}

} // namespace
} // namespace isw::sim
