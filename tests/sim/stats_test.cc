/** @file Unit tests for the statistics primitives. */

#include <gtest/gtest.h>

#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace isw::sim {
namespace {

TEST(Counter, IncrementsAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_EQ(a.count(), 8u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12); // unbiased
    EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, SingleSampleHasZeroVariance)
{
    Accumulator a;
    a.add(3.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, NegativeValues)
{
    Accumulator a;
    a.add(-5.0);
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), -5.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, RejectsBadConfig)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);
    h.add(0.5);
    h.add(9.5);
    h.add(10.0); // hi is exclusive
    h.add(25.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(9), 1u);
    EXPECT_EQ(h.count(), 5u);
}

TEST(Histogram, QuantileApproximation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
}

TEST(TimeSeries, RecordsPoints)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    ts.record(10, 1.5);
    ts.record(20, 2.5);
    ASSERT_EQ(ts.points().size(), 2u);
    EXPECT_EQ(ts.points()[0].t, 10u);
    EXPECT_DOUBLE_EQ(ts.points()[1].v, 2.5);
    ts.clear();
    EXPECT_TRUE(ts.empty());
}

TEST(StatsRegistry, CreatesOnFirstUse)
{
    StatsRegistry reg;
    reg.counter("a").inc(3);
    reg.counter("a").inc(2);
    EXPECT_EQ(reg.counter("a").value(), 5u);
    reg.accumulator("b").add(1.0);
    EXPECT_EQ(reg.accumulators().at("b").count(), 1u);
    reg.series("c").record(1, 2.0);
    EXPECT_EQ(reg.allSeries().at("c").points().size(), 1u);
}

TEST(Simulation, ForkedRngStreamsAreStable)
{
    Simulation s1(99), s2(99);
    Rng a = s1.forkRng();
    Rng b = s2.forkRng();
    EXPECT_EQ(a(), b());
    // A second fork differs from the first.
    Rng c = s1.forkRng();
    EXPECT_NE(a(), c());
}

TEST(Simulation, AfterSchedulesRelativeToNow)
{
    Simulation s;
    TimeNs fired = 0;
    s.after(25, [&] { fired = s.now(); });
    s.run();
    EXPECT_EQ(fired, 25u);
}

TEST(TimeHelpers, Conversions)
{
    EXPECT_DOUBLE_EQ(toMillis(fromMillis(12.5)), 12.5);
    EXPECT_DOUBLE_EQ(toSeconds(3 * kSec), 3.0);
    EXPECT_EQ(fromSeconds(2.0), 2 * kSec);
    EXPECT_EQ(kMsec, 1000 * kUsec);
}

} // namespace
} // namespace isw::sim
