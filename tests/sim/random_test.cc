/** @file Unit and statistical tests for the RNG. */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hh"

namespace isw::sim {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng r(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng r(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(r.uniformInt(9, 9), 9);
}

TEST(Rng, UniformIntUnbiasedAcrossBuckets)
{
    Rng r(13);
    std::array<int, 7> counts{};
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        counts[static_cast<std::size_t>(r.uniformInt(0, 6))]++;
    for (int c : counts)
        EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng r(17);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift)
{
    Rng r(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LognormalMeanCvHitsRequestedMean)
{
    Rng r(23);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.lognormalMeanCv(5.0, 0.3);
    EXPECT_NEAR(sum / n, 5.0, 0.08);
}

TEST(Rng, LognormalZeroCvIsDeterministic)
{
    Rng r(29);
    EXPECT_DOUBLE_EQ(r.lognormalMeanCv(7.5, 0.0), 7.5);
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3);
    EXPECT_NEAR(hits / double(n), 0.3, 0.01);
}

TEST(Rng, ForkIsDeterministic)
{
    Rng a(41), b(41);
    Rng fa = a.fork(5), fb = b.fork(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(fa(), fb());
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(43);
    Rng s1 = parent.fork(1);
    Rng s2 = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += s1() == s2();
    EXPECT_LT(equal, 3);
}

} // namespace
} // namespace isw::sim
