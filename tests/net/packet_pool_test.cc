/** @file Unit tests for the packet/float-buffer recycling pool. */

#include <gtest/gtest.h>

#include "net/packet.hh"
#include "net/packet_pool.hh"

namespace isw::net {
namespace {

Packet
chunkPacket(std::vector<float> vals)
{
    Packet pkt;
    pkt.ip.tos = kTosData;
    ChunkPayload chunk;
    chunk.seg = 1;
    chunk.wire_floats = static_cast<std::uint32_t>(vals.size());
    chunk.values = std::move(vals);
    pkt.payload = std::move(chunk);
    return pkt;
}

TEST(PacketPool, SealedPacketCarriesPayload)
{
    PacketPtr p = makePacket(chunkPacket({1, 2, 3}));
    const auto &chunk = std::get<ChunkPayload>(p->payload);
    EXPECT_EQ(chunk.values, (std::vector<float>{1, 2, 3}));
    EXPECT_EQ(chunk.wire_floats, 3u);
}

TEST(PacketPool, RecyclesPacketSlotAfterRelease)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    const Packet *raw;
    {
        PacketPtr p = pool.seal(chunkPacket({1}));
        raw = p.get();
    }
    // The slot was parked; the next seal must reuse the same object.
    EXPECT_GE(pool.idleSlots(), 1u);
    PacketPtr q = pool.seal(chunkPacket({2}));
    EXPECT_EQ(q.get(), raw);
    EXPECT_FLOAT_EQ(std::get<ChunkPayload>(q->payload).values[0], 2.0f);
}

TEST(PacketPool, SalvagesFloatBufferFromDeadChunk)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    { PacketPtr p = pool.seal(chunkPacket({1, 2, 3, 4})); }
    EXPECT_GE(pool.idleFloatBuffers(), 1u);
    std::vector<float> buf = pool.acquireFloats(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_GE(buf.capacity(), 4u);
}

TEST(PacketPool, AcquireFloatsReservesHint)
{
    PacketPool &pool = PacketPool::local();
    std::vector<float> buf = pool.acquireFloats(123);
    EXPECT_TRUE(buf.empty());
    EXPECT_GE(buf.capacity(), 123u);
}

TEST(PacketPool, StatsCountSealsAndReuses)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    const auto before = pool.stats();
    { PacketPtr p = pool.seal(chunkPacket({1})); }
    { PacketPtr p = pool.seal(chunkPacket({2})); }
    const auto after = pool.stats();
    EXPECT_EQ(after.sealed - before.sealed, 2u);
    // First seal on a trimmed pool allocates; the second reuses.
    EXPECT_GE(after.packet_allocs, before.packet_allocs + 1);
    EXPECT_GE(after.packet_reuses, before.packet_reuses + 1);
}

TEST(PacketPool, ControlAndRawPacketsRecycleToo)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    {
        Packet pkt;
        pkt.payload = ControlPayload{Action::kJoin, 0, false};
        PacketPtr p = pool.seal(std::move(pkt));
    }
    EXPECT_EQ(pool.idleSlots(), 1u);
    {
        Packet pkt;
        pkt.payload = RawPayload{64, 9};
        PacketPtr p = pool.seal(std::move(pkt));
        EXPECT_EQ(std::get<RawPayload>(p->payload).bytes, 64u);
    }
    EXPECT_EQ(pool.idleSlots(), 1u);
}

TEST(PacketPool, SharedOwnershipDelaysRecycle)
{
    PacketPool &pool = PacketPool::local();
    pool.trim();
    PacketPtr a = pool.seal(chunkPacket({1}));
    PacketPtr b = a; // broadcast-style fan-out
    a.reset();
    EXPECT_EQ(pool.idleSlots(), 0u);
    b.reset();
    EXPECT_EQ(pool.idleSlots(), 1u);
}

} // namespace
} // namespace isw::net
