/** @file Unit tests for the baseline Ethernet switch. */

#include <gtest/gtest.h>

#include "net/link.hh"
#include "net/switch.hh"
#include "net/topology.hh"

namespace isw::net {
namespace {

struct SwitchFixture : ::testing::Test
{
    sim::Simulation s{1};
    Topology topo{s};
    EthSwitch *sw = topo.addSwitch<EthSwitch>("sw", 4);
    Host *h0 = topo.addHost("h0", Ipv4Addr(10, 0, 0, 2));
    Host *h1 = topo.addHost("h1", Ipv4Addr(10, 0, 0, 3));

    void
    SetUp() override
    {
        topo.connectHost(h0, sw, 0);
        topo.connectHost(h1, sw, 1);
    }
};

TEST_F(SwitchFixture, ForwardsByDestinationIp)
{
    PacketPtr got;
    h1->setReceiveHandler([&](PacketPtr p) { got = std::move(p); });
    h0->sendTo(h1->ip(), 7, 7, 0, RawPayload{100, 1});
    s.run();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->ip.dst, h1->ip());
    EXPECT_EQ(sw->forwardedFrames(), 1u);
}

TEST_F(SwitchFixture, DropsUnroutablePackets)
{
    int at_h1 = 0;
    h1->setReceiveHandler([&](PacketPtr) { ++at_h1; });
    h0->sendTo(Ipv4Addr(10, 9, 9, 9), 7, 7, 0, RawPayload{100, 1});
    s.run();
    EXPECT_EQ(at_h1, 0);
    EXPECT_EQ(sw->droppedNoRoute(), 1u);
}

TEST_F(SwitchFixture, DefaultPortCatchesUnknownDestinations)
{
    Host *up = topo.addHost("up", Ipv4Addr(10, 0, 1, 2));
    topo.connectHost(up, sw, 2);
    sw->setDefaultPort(2);
    int got = 0;
    up->setReceiveHandler([&](PacketPtr) { ++got; });
    h0->sendTo(Ipv4Addr(99, 9, 9, 9), 7, 7, 0, RawPayload{10, 0});
    s.run();
    EXPECT_EQ(got, 1);
}

TEST_F(SwitchFixture, ForwardingLatencyApplied)
{
    sim::TimeNs arrival = 0;
    h1->setReceiveHandler([&](PacketPtr) { arrival = s.now(); });
    h0->sendTo(h1->ip(), 7, 7, 0, RawPayload{100, 1});
    s.run();
    // Two link traversals + the configured forwarding latency.
    Packet probe;
    probe.payload = RawPayload{100, 1};
    const Link *l = h0->link(0);
    const sim::TimeNs one_hop =
        l->txTime(probe.wireBytes()) + l->config().propagation;
    EXPECT_EQ(arrival, 2 * one_hop + SwitchConfig{}.forwarding_latency);
}

TEST_F(SwitchFixture, RouteToBadPortThrows)
{
    EXPECT_THROW(sw->addRoute(Ipv4Addr(1, 1, 1, 1), 99), std::out_of_range);
}

TEST_F(SwitchFixture, RouteForReportsConfiguredRoute)
{
    EXPECT_EQ(sw->routeFor(h0->ip()).value(), 0u);
    EXPECT_EQ(sw->routeFor(h1->ip()).value(), 1u);
    EXPECT_FALSE(sw->routeFor(Ipv4Addr(9, 9, 9, 9)).has_value());
}

TEST_F(SwitchFixture, ManyToOneTrafficSerializesOnEgress)
{
    Host *h2 = topo.addHost("h2", Ipv4Addr(10, 0, 0, 4));
    topo.connectHost(h2, sw, 2);
    std::vector<sim::TimeNs> arrivals;
    h1->setReceiveHandler([&](PacketPtr) { arrivals.push_back(s.now()); });
    h0->sendTo(h1->ip(), 7, 7, 0, RawPayload{1200, 1});
    h2->sendTo(h1->ip(), 7, 7, 0, RawPayload{1200, 2});
    s.run();
    ASSERT_EQ(arrivals.size(), 2u);
    Packet probe;
    probe.payload = RawPayload{1200, 1};
    const sim::TimeNs ser = h1->link(0)->txTime(probe.wireBytes());
    // The second frame queues behind the first on the shared egress.
    EXPECT_GE(arrivals[1] - arrivals[0], ser);
}

} // namespace
} // namespace isw::net
