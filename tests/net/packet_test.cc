/** @file Unit tests for the packet model and wire-size accounting. */

#include <gtest/gtest.h>

#include "net/packet.hh"

namespace isw::net {
namespace {

TEST(Packet, EmptyPayloadWireBytes)
{
    Packet p;
    EXPECT_EQ(p.payloadBytes(), 0u);
    EXPECT_EQ(p.wireBytes(), kEthHeaderBytes + kEthPhyOverheadBytes +
                                 kIpv4HeaderBytes + kUdpHeaderBytes);
}

TEST(Packet, ControlPayloadSizes)
{
    Packet p;
    p.ip.tos = kTosControl;
    p.payload = ControlPayload{Action::kReset, 0, false};
    EXPECT_EQ(p.payloadBytes(), 1u);
    p.payload = ControlPayload{Action::kSetH, 4, true};
    EXPECT_EQ(p.payloadBytes(), 9u);
}

TEST(Packet, ChunkPayloadIswitchPlane)
{
    Packet p;
    p.ip.tos = kTosData;
    ChunkPayload c;
    c.wire_floats = 366;
    p.payload = c;
    // 8-byte seg header + 366 floats fills the 1500-byte MTU exactly.
    EXPECT_EQ(p.payloadBytes(),
              kMtuBytes - kIpv4HeaderBytes - kUdpHeaderBytes);
}

TEST(Packet, ChunkPayloadHostPlaneHasBiggerHeader)
{
    Packet p;
    ChunkPayload c;
    c.wire_floats = 10;
    p.payload = c;
    EXPECT_EQ(p.payloadBytes(), 16u + 40u);
}

TEST(Packet, RawPayloadCountsBytes)
{
    Packet p;
    p.payload = RawPayload{512, 7};
    EXPECT_EQ(p.payloadBytes(), 512u);
}

TEST(Packet, IswitchPlaneDetection)
{
    Packet p;
    EXPECT_FALSE(p.isIswitchPlane());
    p.ip.tos = kTosControl;
    EXPECT_TRUE(p.isIswitchPlane());
    p.ip.tos = kTosData;
    EXPECT_TRUE(p.isIswitchPlane());
    p.ip.tos = kTosResult;
    EXPECT_TRUE(p.isIswitchPlane());
    p.ip.tos = 0x10;
    EXPECT_FALSE(p.isIswitchPlane());
}

TEST(Packet, MaxChunkFloatsMatchesMtu)
{
    EXPECT_EQ(maxChunkFloats(true), 366u);
    EXPECT_EQ(maxChunkFloats(false), 364u);
}

TEST(Packet, PaddedChunkChargesWireNotLogical)
{
    Packet p;
    p.ip.tos = kTosData;
    ChunkPayload c;
    c.wire_floats = 366;
    c.values = {1.0f, 2.0f}; // only 2 logical floats
    p.payload = std::move(c);
    EXPECT_EQ(p.payloadBytes(), 8u + 366u * 4u);
}

TEST(Packet, DescribeMentionsKeyFields)
{
    Packet p;
    p.ip.src = Ipv4Addr(10, 0, 0, 2);
    p.ip.dst = Ipv4Addr(10, 0, 0, 1);
    p.ip.tos = kTosControl;
    p.payload = ControlPayload{Action::kJoin, 42, true};
    const std::string d = p.describe();
    EXPECT_NE(d.find("Join"), std::string::npos);
    EXPECT_NE(d.find("10.0.0.2"), std::string::npos);
}

TEST(Packet, ActionNames)
{
    EXPECT_STREQ(actionName(Action::kJoin), "Join");
    EXPECT_STREQ(actionName(Action::kFBcast), "FBcast");
    EXPECT_STREQ(actionName(Action::kAck), "Ack");
}

} // namespace
} // namespace isw::net
