/** @file Unit tests for the declarative fault-injection subsystem:
 *  channel verdicts, Gilbert–Elliott bursts, down/crash windows,
 *  stragglers, and seed determinism. */

#include <gtest/gtest.h>

#include "net/fault.hh"
#include "net/host.hh"
#include "net/link.hh"
#include "sim/simulation.hh"

namespace isw::net {
namespace {

struct FaultFixture : ::testing::Test
{
    sim::Simulation s{1};
    Host a{s, "a", MacAddr(1), Ipv4Addr(10, 0, 0, 1)};
    Host b{s, "b", MacAddr(2), Ipv4Addr(10, 0, 0, 2)};
    Link l{s, "l", LinkConfig{10e9, 0, 0.0}};

    void
    SetUp() override
    {
        l.connect(&a, 0, &b, 0);
    }

    PacketPtr
    raw(std::uint32_t bytes = 934)
    {
        Packet p;
        p.ip.src = a.ip();
        p.ip.dst = b.ip();
        p.payload = RawPayload{bytes, 0};
        return makePacket(std::move(p));
    }

    /** Send @p n frames a->b at 10us spacing; returns deliveries. */
    std::size_t
    pump(std::size_t n)
    {
        std::size_t got = 0;
        b.setReceiveHandler([&](PacketPtr) { ++got; });
        for (std::size_t i = 0; i < n; ++i)
            s.at(static_cast<sim::TimeNs>(i) * 10 * sim::kUsec,
                 [this] { a.send(raw()); });
        s.run();
        return got;
    }
};

TEST_F(FaultFixture, EmptyPlanChangesNothing)
{
    FaultInjector inj(s, FaultPlan{}, 7);
    inj.attach(0, l);
    EXPECT_EQ(pump(50), 50u);
    EXPECT_EQ(inj.stats().ge_drops, 0u);
    EXPECT_EQ(inj.stats().iid_drops, 0u);
    EXPECT_EQ(inj.stats().down_drops, 0u);
}

TEST_F(FaultFixture, ExtraIidLossDropsRoughlyTheConfiguredFraction)
{
    FaultPlan plan;
    plan.extra_loss = 0.3;
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    const std::size_t got = pump(2000);
    EXPECT_EQ(got, 2000u - inj.stats().iid_drops);
    EXPECT_NEAR(static_cast<double>(inj.stats().iid_drops) / 2000.0, 0.3,
                0.05);
}

TEST_F(FaultFixture, GilbertElliottDropsInBursts)
{
    FaultPlan plan;
    plan.ge.p_good_to_bad = 0.05;
    plan.ge.p_bad_to_good = 0.2;
    plan.ge.loss_bad = 0.9;
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    const std::size_t got = pump(2000);
    EXPECT_GT(inj.stats().ge_drops, 0u);
    EXPECT_EQ(got, 2000u - inj.stats().ge_drops);
    // Steady-state bad fraction = 0.05/(0.05+0.2) = 20%; drop rate
    // within the bad state is 90%, so ~18% overall.
    EXPECT_NEAR(static_cast<double>(inj.stats().ge_drops) / 2000.0, 0.18,
                0.06);
}

TEST_F(FaultFixture, LinkDownWindowDropsEverythingInside)
{
    FaultPlan plan;
    plan.link_down.push_back(
        LinkDownWindow{0, 100 * sim::kUsec, 300 * sim::kUsec});
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    // 50 frames at 10us spacing: indices 10..29 fall inside the window.
    const std::size_t got = pump(50);
    EXPECT_EQ(inj.stats().down_drops, 20u);
    EXPECT_EQ(got, 30u);
    EXPECT_FALSE(inj.linkDown(0, 99 * sim::kUsec));
    EXPECT_TRUE(inj.linkDown(0, 100 * sim::kUsec));
    EXPECT_TRUE(inj.linkDown(0, 299 * sim::kUsec));
    EXPECT_FALSE(inj.linkDown(0, 300 * sim::kUsec));
}

TEST_F(FaultFixture, CrashWindowStartsAfterGraceAndEndsAtRejoin)
{
    FaultPlan plan;
    plan.crashes.push_back(
        WorkerCrash{0, 1 * sim::kMsec, 2 * sim::kMsec, false});
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    // The grace window lets the Leave announcement escape at the
    // crash instant.
    EXPECT_FALSE(inj.linkDown(0, 1 * sim::kMsec));
    EXPECT_TRUE(inj.linkDown(0, 1 * sim::kMsec + FaultInjector::kCrashGrace));
    EXPECT_TRUE(inj.linkDown(0, 2 * sim::kMsec - 1));
    EXPECT_FALSE(inj.linkDown(0, 2 * sim::kMsec));
}

TEST_F(FaultFixture, PermanentCrashNeverRejoins)
{
    // rejoin_at == 0 is *permanent* fail-stop, not an empty window.
    FaultPlan plan;
    plan.crashes.push_back(WorkerCrash{0, 100 * sim::kUsec, 0, false});
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    EXPECT_FALSE(inj.linkDown(0, 100 * sim::kUsec));
    EXPECT_TRUE(
        inj.linkDown(0, 100 * sim::kUsec + FaultInjector::kCrashGrace));
    EXPECT_TRUE(inj.linkDown(0, 1 * sim::kSec));
    EXPECT_TRUE(inj.linkDown(0, 1000 * sim::kSec));
    // 50 frames at 10us spacing: indices 0..10 beat the grace deadline,
    // everything after is gone forever.
    const std::size_t got = pump(50);
    EXPECT_EQ(got, 11u);
    EXPECT_EQ(inj.stats().down_drops, 39u);
}

TEST_F(FaultFixture, CrashWindowOverridesOverlappingStraggler)
{
    // A crashed worker sends nothing, so the straggler slowdown must
    // not stretch its compute inside the crash window.
    FaultPlan plan;
    plan.stragglers.push_back(Straggler{0, 4.0, 0, 10 * sim::kMsec});
    plan.crashes.push_back(
        WorkerCrash{0, 2 * sim::kMsec, 3 * sim::kMsec, false});
    FaultInjector inj(s, plan, 7);
    EXPECT_DOUBLE_EQ(inj.computeScale(0, 1 * sim::kMsec), 4.0);
    EXPECT_DOUBLE_EQ(inj.computeScale(0, 2500 * sim::kUsec), 1.0);
    EXPECT_DOUBLE_EQ(inj.computeScale(0, 3 * sim::kMsec), 4.0);
    // A permanent crash suppresses the straggler forever after.
    FaultPlan perm;
    perm.stragglers.push_back(Straggler{0, 4.0, 0, 10 * sim::kMsec});
    perm.crashes.push_back(WorkerCrash{0, 2 * sim::kMsec, 0, false});
    FaultInjector inj2(s, perm, 7);
    EXPECT_DOUBLE_EQ(inj2.computeScale(0, 1 * sim::kMsec), 4.0);
    EXPECT_DOUBLE_EQ(inj2.computeScale(0, 5 * sim::kMsec), 1.0);
}

TEST_F(FaultFixture, SwitchCrashWindowDropsEverythingOnSwitchLinks)
{
    FaultPlan plan;
    plan.switch_crashes.push_back(
        SwitchCrash{100 * sim::kUsec, 300 * sim::kUsec});
    FaultInjector inj(s, plan, 7);
    inj.attachSwitchLink(l);
    EXPECT_FALSE(inj.switchDown(99 * sim::kUsec));
    EXPECT_TRUE(inj.switchDown(100 * sim::kUsec));
    EXPECT_TRUE(inj.switchDown(299 * sim::kUsec));
    EXPECT_FALSE(inj.switchDown(300 * sim::kUsec));
    // 50 frames at 10us spacing: indices 10..29 fall inside the window.
    const std::size_t got = pump(50);
    EXPECT_EQ(inj.stats().switch_drops, 20u);
    EXPECT_EQ(got, 30u);
}

TEST_F(FaultFixture, PermanentSwitchCrashNeverLifts)
{
    FaultPlan plan;
    plan.switch_crashes.push_back(SwitchCrash{100 * sim::kUsec, 0});
    FaultInjector inj(s, plan, 7);
    inj.attachSwitchLink(l);
    EXPECT_TRUE(inj.switchDown(100 * sim::kUsec));
    EXPECT_TRUE(inj.switchDown(1000 * sim::kSec));
    EXPECT_EQ(pump(50), 10u);
    EXPECT_EQ(inj.stats().switch_drops, 40u);
}

TEST_F(FaultFixture, ControlPartitionDropsOnlyControlFrames)
{
    FaultPlan plan;
    plan.control_partitions.push_back(ControlPartition{0, 1 * sim::kSec});
    FaultInjector inj(s, plan, 7);
    inj.attachSwitchLink(l);
    std::size_t got = 0;
    b.setReceiveHandler([&](PacketPtr) { ++got; });
    s.at(0, [this] {
        a.send(raw()); // data plane: passes
        Packet p;
        p.ip.src = a.ip();
        p.ip.dst = b.ip();
        p.ip.tos = kTosControl;
        p.payload = RawPayload{100, 0};
        a.send(makePacket(std::move(p))); // control plane: dropped
    });
    s.run();
    EXPECT_EQ(got, 1u);
    EXPECT_EQ(inj.stats().partition_drops, 1u);
    EXPECT_EQ(inj.stats().switch_drops, 0u);
}

TEST_F(FaultFixture, DuplicationDeliversFrameTwice)
{
    FaultPlan plan;
    plan.duplicate_prob = 1.0;
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    EXPECT_EQ(pump(10), 20u);
    EXPECT_EQ(inj.stats().duplicates, 10u);
}

TEST_F(FaultFixture, ReorderDelaysFlaggedFrames)
{
    FaultPlan plan;
    plan.reorder_prob = 1.0;
    plan.reorder_delay = 50 * sim::kUsec;
    FaultInjector inj(s, plan, 7);
    inj.attach(0, l);
    sim::TimeNs arrival = 0;
    b.setReceiveHandler([&](PacketPtr) { arrival = s.now(); });
    a.send(raw());
    s.run();
    EXPECT_EQ(inj.stats().reorders, 1u);
    EXPECT_EQ(arrival, l.txTime(1000) + 50 * sim::kUsec);
}

TEST_F(FaultFixture, StragglerScaleAppliesOnlyInsideItsWindow)
{
    FaultPlan plan;
    plan.stragglers.push_back(
        Straggler{2, 3.0, 1 * sim::kSec, 2 * sim::kSec});
    FaultInjector inj(s, plan, 7);
    EXPECT_DOUBLE_EQ(inj.computeScale(2, 0), 1.0);
    EXPECT_DOUBLE_EQ(inj.computeScale(2, 1 * sim::kSec), 3.0);
    EXPECT_DOUBLE_EQ(inj.computeScale(2, 2 * sim::kSec), 1.0);
    EXPECT_DOUBLE_EQ(inj.computeScale(0, 1 * sim::kSec), 1.0);
}

TEST_F(FaultFixture, SameSeedSameDrops)
{
    FaultPlan plan;
    plan.extra_loss = 0.2;
    auto run_once = [&] {
        sim::Simulation sim{1};
        Host x{sim, "x", MacAddr(1), Ipv4Addr(10, 0, 0, 1)};
        Host y{sim, "y", MacAddr(2), Ipv4Addr(10, 0, 0, 2)};
        Link link{sim, "l", LinkConfig{10e9, 0, 0.0}};
        link.connect(&x, 0, &y, 0);
        FaultInjector inj(sim, plan, 42);
        inj.attach(0, link);
        std::vector<sim::TimeNs> arrivals;
        y.setReceiveHandler([&](PacketPtr) { arrivals.push_back(sim.now()); });
        for (std::size_t i = 0; i < 200; ++i) {
            sim.at(static_cast<sim::TimeNs>(i) * 10 * sim::kUsec, [&] {
                Packet p;
                p.ip.src = x.ip();
                p.ip.dst = y.ip();
                p.payload = RawPayload{934, 0};
                x.send(makePacket(std::move(p)));
            });
        }
        sim.run();
        return arrivals;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST_F(FaultFixture, PlanEmptyReflectsEveryKnob)
{
    EXPECT_TRUE(FaultPlan{}.empty());
    FaultPlan ge;
    ge.ge.p_good_to_bad = 0.1;
    ge.ge.loss_bad = 0.5;
    EXPECT_FALSE(ge.empty());
    FaultPlan crash;
    crash.crashes.push_back(WorkerCrash{0, 1, 2, true});
    EXPECT_FALSE(crash.empty());
    FaultPlan slow;
    slow.stragglers.push_back(Straggler{0, 2.0, 0, 100});
    EXPECT_FALSE(slow.empty());
    FaultPlan swc;
    swc.switch_crashes.push_back(SwitchCrash{1, 0});
    EXPECT_FALSE(swc.empty());
    EXPECT_TRUE(swc.hasSwitchFaults());
    FaultPlan part;
    part.control_partitions.push_back(ControlPartition{1, 2});
    EXPECT_FALSE(part.empty());
    EXPECT_TRUE(part.hasSwitchFaults());
    EXPECT_FALSE(crash.hasSwitchFaults());
    EXPECT_FALSE(FaultPlan{}.hasSwitchFaults());
}

} // namespace
} // namespace isw::net
