/** @file Unit tests for MAC/IPv4 address types. */

#include <gtest/gtest.h>

#include "net/address.hh"

namespace isw::net {
namespace {

TEST(Ipv4Addr, OctetConstruction)
{
    Ipv4Addr a(10, 0, 3, 42);
    EXPECT_EQ(a.bits(), 0x0A00032Au);
    EXPECT_EQ(a.str(), "10.0.3.42");
}

TEST(Ipv4Addr, DefaultIsUnspecified)
{
    Ipv4Addr a;
    EXPECT_TRUE(a.isUnspecified());
    EXPECT_FALSE(Ipv4Addr(1, 2, 3, 4).isUnspecified());
}

TEST(Ipv4Addr, Ordering)
{
    EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
    EXPECT_EQ(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(0x0A000001));
}

TEST(Ipv4Addr, ParseRoundTrip)
{
    const Ipv4Addr a = parseIpv4("192.168.1.200");
    EXPECT_EQ(a.str(), "192.168.1.200");
}

TEST(Ipv4Addr, ParseRejectsGarbage)
{
    EXPECT_THROW(parseIpv4("not-an-ip"), std::invalid_argument);
    EXPECT_THROW(parseIpv4("1.2.3"), std::invalid_argument);
    EXPECT_THROW(parseIpv4("1.2.3.4.5"), std::invalid_argument);
    EXPECT_THROW(parseIpv4("256.0.0.1"), std::invalid_argument);
}

TEST(MacAddr, MasksTo48Bits)
{
    MacAddr m(0xFFFF'1234'5678'9ABCULL);
    EXPECT_EQ(m.bits(), 0x1234'5678'9ABCULL);
}

TEST(MacAddr, Formatting)
{
    MacAddr m(0x0002'0304'0506ULL);
    EXPECT_EQ(m.str(), "00:02:03:04:05:06");
}

TEST(Addresses, Hashable)
{
    std::hash<Ipv4Addr> hip;
    std::hash<MacAddr> hmac;
    EXPECT_EQ(hip(Ipv4Addr(1, 2, 3, 4)), hip(Ipv4Addr(1, 2, 3, 4)));
    EXPECT_EQ(hmac(MacAddr(5)), hmac(MacAddr(5)));
}

} // namespace
} // namespace isw::net
