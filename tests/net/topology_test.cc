/** @file Unit tests for topology wiring and route propagation. */

#include <gtest/gtest.h>

#include "net/topology.hh"

namespace isw::net {
namespace {

TEST(Topology, HostsGetUniqueMacs)
{
    sim::Simulation s;
    Topology topo(s);
    Host *a = topo.addHost("a", Ipv4Addr(10, 0, 0, 2));
    Host *b = topo.addHost("b", Ipv4Addr(10, 0, 0, 3));
    EXPECT_NE(a->mac(), b->mac());
}

TEST(Topology, ConnectHostInstallsRoute)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch *sw = topo.addSwitch<EthSwitch>("sw", 2);
    Host *a = topo.addHost("a", Ipv4Addr(10, 0, 0, 2));
    topo.connectHost(a, sw, 1);
    EXPECT_EQ(sw->routeFor(a->ip()).value(), 1u);
    ASSERT_EQ(topo.subtreeHosts(sw).size(), 1u);
    EXPECT_EQ(topo.subtreeHosts(sw)[0], a);
}

TEST(Topology, UplinkRoutesPropagateToParent)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch *tor = topo.addSwitch<EthSwitch>("tor", 3);
    EthSwitch *core = topo.addSwitch<EthSwitch>("core", 2);
    Host *a = topo.addHost("a", Ipv4Addr(10, 0, 0, 2));
    topo.connectHost(a, tor, 0);
    topo.connectSwitches(tor, 2, core, 0);
    // The core can now reach `a` through port 0.
    EXPECT_EQ(core->routeFor(a->ip()).value(), 0u);
    EXPECT_EQ(topo.subtreeHosts(core).size(), 1u);
}

TEST(Topology, HostsAddedAfterUplinkAlsoPropagate)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch *tor = topo.addSwitch<EthSwitch>("tor", 3);
    EthSwitch *core = topo.addSwitch<EthSwitch>("core", 2);
    topo.connectSwitches(tor, 2, core, 0);
    Host *late = topo.addHost("late", Ipv4Addr(10, 0, 0, 9));
    topo.connectHost(late, tor, 0);
    EXPECT_EQ(core->routeFor(late->ip()).value(), 0u);
}

TEST(Topology, EndToEndAcrossTwoLevels)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch *t0 = topo.addSwitch<EthSwitch>("t0", 2);
    EthSwitch *t1 = topo.addSwitch<EthSwitch>("t1", 2);
    EthSwitch *core = topo.addSwitch<EthSwitch>("core", 2);
    Host *a = topo.addHost("a", Ipv4Addr(10, 0, 0, 2));
    Host *b = topo.addHost("b", Ipv4Addr(10, 0, 1, 2));
    topo.connectHost(a, t0, 0);
    topo.connectHost(b, t1, 0);
    topo.connectSwitches(t0, 1, core, 0);
    topo.connectSwitches(t1, 1, core, 1);
    int got = 0;
    b->setReceiveHandler([&](PacketPtr) { ++got; });
    a->sendTo(b->ip(), 7, 7, 0, RawPayload{64, 0});
    s.run();
    EXPECT_EQ(got, 1);
}

TEST(Topology, DoubleUplinkThrows)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch *tor = topo.addSwitch<EthSwitch>("tor", 3);
    EthSwitch *c1 = topo.addSwitch<EthSwitch>("c1", 2);
    EthSwitch *c2 = topo.addSwitch<EthSwitch>("c2", 2);
    topo.connectSwitches(tor, 0, c1, 0);
    EXPECT_THROW(topo.connectSwitches(tor, 1, c2, 0), std::logic_error);
}

TEST(Topology, SubtreeHostsOfUnknownSwitchIsEmpty)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch sw(s, "external", 2);
    EXPECT_TRUE(topo.subtreeHosts(&sw).empty());
}

TEST(Topology, OwnsNodesAndLinks)
{
    sim::Simulation s;
    Topology topo(s);
    EthSwitch *sw = topo.addSwitch<EthSwitch>("sw", 2);
    Host *a = topo.addHost("a", Ipv4Addr(10, 0, 0, 2));
    topo.connectHost(a, sw, 0);
    EXPECT_EQ(topo.nodes().size(), 2u);
    EXPECT_EQ(topo.links().size(), 1u);
}

} // namespace
} // namespace isw::net
