/** @file Unit tests for link serialization/propagation/loss modeling. */

#include <gtest/gtest.h>

#include "net/host.hh"
#include "net/link.hh"
#include "sim/simulation.hh"

namespace isw::net {
namespace {

struct LinkFixture : ::testing::Test
{
    sim::Simulation s{1};
    Host a{s, "a", MacAddr(1), Ipv4Addr(10, 0, 0, 1)};
    Host b{s, "b", MacAddr(2), Ipv4Addr(10, 0, 0, 2)};

    PacketPtr
    raw(std::uint32_t bytes)
    {
        Packet p;
        p.ip.src = a.ip();
        p.ip.dst = b.ip();
        p.payload = RawPayload{bytes, 0};
        return makePacket(std::move(p));
    }
};

TEST_F(LinkFixture, TxTimeMatchesBandwidth)
{
    Link l(s, "l", LinkConfig{10e9, 0, 0.0});
    // 1250 bytes at 10 Gb/s = 1 microsecond.
    EXPECT_EQ(l.txTime(1250), 1000u);
}

TEST_F(LinkFixture, DeliversAfterSerializationPlusPropagation)
{
    Link l(s, "l", LinkConfig{10e9, 500, 0.0});
    l.connect(&a, 0, &b, 0);
    sim::TimeNs arrival = 0;
    b.setReceiveHandler([&](PacketPtr) { arrival = s.now(); });
    PacketPtr p = raw(1250 - 66); // wire = 1250 bytes with headers
    a.send(p);
    s.run();
    EXPECT_EQ(arrival, l.txTime(p->wireBytes()) + 500);
}

TEST_F(LinkFixture, BackToBackFramesQueue)
{
    Link l(s, "l", LinkConfig{10e9, 0, 0.0});
    l.connect(&a, 0, &b, 0);
    std::vector<sim::TimeNs> arrivals;
    b.setReceiveHandler([&](PacketPtr) { arrivals.push_back(s.now()); });
    PacketPtr p = raw(934); // wire = 1000 bytes
    a.send(p);
    a.send(p);
    a.send(p);
    s.run();
    ASSERT_EQ(arrivals.size(), 3u);
    const sim::TimeNs t1 = l.txTime(1000);
    EXPECT_EQ(arrivals[0], t1);
    EXPECT_EQ(arrivals[1], 2 * t1);
    EXPECT_EQ(arrivals[2], 3 * t1);
}

TEST_F(LinkFixture, FullDuplexDirectionsDontInterfere)
{
    Link l(s, "l", LinkConfig{10e9, 0, 0.0});
    l.connect(&a, 0, &b, 0);
    sim::TimeNs at_a = 0, at_b = 0;
    a.setReceiveHandler([&](PacketPtr) { at_a = s.now(); });
    b.setReceiveHandler([&](PacketPtr) { at_b = s.now(); });
    a.send(raw(934));
    b.send(raw(934));
    s.run();
    // Both arrive at one serialization time: no shared pipe.
    EXPECT_EQ(at_a, at_b);
    EXPECT_EQ(at_a, l.txTime(1000));
}

TEST_F(LinkFixture, LossDropsFramesButConsumesPipe)
{
    Link l(s, "l", LinkConfig{10e9, 0, 1.0}); // always drop
    l.connect(&a, 0, &b, 0);
    int received = 0;
    b.setReceiveHandler([&](PacketPtr) { ++received; });
    a.send(raw(100));
    s.run();
    EXPECT_EQ(received, 0);
    EXPECT_EQ(l.dropped(), 1u);
    EXPECT_EQ(l.delivered(), 0u);
}

TEST_F(LinkFixture, LossRateApproximatesProbability)
{
    Link l(s, "l", LinkConfig{100e9, 0, 0.2});
    l.connect(&a, 0, &b, 0);
    int received = 0;
    b.setReceiveHandler([&](PacketPtr) { ++received; });
    const int n = 5000;
    for (int i = 0; i < n; ++i)
        a.send(raw(34));
    s.run();
    EXPECT_NEAR(received, n * 0.8, n * 0.05);
    EXPECT_EQ(l.dropped() + l.delivered(), static_cast<std::uint64_t>(n));
}

TEST_F(LinkFixture, BytesCarriedAccumulates)
{
    Link l(s, "l", LinkConfig{10e9, 0, 0.0});
    l.connect(&a, 0, &b, 0);
    b.setReceiveHandler([](PacketPtr) {});
    PacketPtr p = raw(100);
    a.send(p);
    a.send(p);
    s.run();
    EXPECT_EQ(l.bytesCarried(), 2 * p->wireBytes());
}

TEST_F(LinkFixture, DoubleConnectThrows)
{
    Link l(s, "l", {});
    l.connect(&a, 0, &b, 0);
    Host c{s, "c", MacAddr(3), Ipv4Addr(10, 0, 0, 3)};
    Host d{s, "d", MacAddr(4), Ipv4Addr(10, 0, 0, 4)};
    EXPECT_THROW(l.connect(&c, 0, &d, 0), std::logic_error);
}

TEST_F(LinkFixture, TransmitFromStrangerThrows)
{
    Link l(s, "l", {});
    l.connect(&a, 0, &b, 0);
    Host c{s, "c", MacAddr(3), Ipv4Addr(10, 0, 0, 3)};
    EXPECT_THROW(l.transmit(&c, raw(10)), std::logic_error);
}

TEST_F(LinkFixture, PeerOfReturnsOtherEnd)
{
    Link l(s, "l", {});
    l.connect(&a, 0, &b, 0);
    EXPECT_EQ(l.peerOf(&a), &b);
    EXPECT_EQ(l.peerOf(&b), &a);
}

TEST_F(LinkFixture, ZeroBandwidthRejected)
{
    EXPECT_THROW(Link(s, "bad", LinkConfig{0.0, 0, 0.0}),
                 std::invalid_argument);
}

TEST_F(LinkFixture, HostSendToStampsHeaders)
{
    Link l(s, "l", {});
    l.connect(&a, 0, &b, 0);
    PacketPtr got;
    b.setReceiveHandler([&](PacketPtr p) { got = std::move(p); });
    a.sendTo(b.ip(), 99, 42, kTosData, RawPayload{10, 0});
    s.run();
    ASSERT_TRUE(got);
    EXPECT_EQ(got->ip.src, a.ip());
    EXPECT_EQ(got->ip.dst, b.ip());
    EXPECT_EQ(got->udp.dst_port, 99);
    EXPECT_EQ(got->udp.src_port, 42);
    EXPECT_EQ(got->ip.tos, kTosData);
    EXPECT_EQ(got->eth.src, a.mac());
}

} // namespace
} // namespace isw::net
