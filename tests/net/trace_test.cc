/** @file Packet-trace facility tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "net/trace.hh"

namespace isw::net {
namespace {

struct TraceFixture : ::testing::Test
{
    sim::Simulation s{1};
    Topology topo{s};
    EthSwitch *sw = topo.addSwitch<EthSwitch>("sw", 2);
    Host *a = topo.addHost("a", Ipv4Addr(10, 0, 0, 2));
    Host *b = topo.addHost("b", Ipv4Addr(10, 0, 0, 3));

    void
    SetUp() override
    {
        topo.connectHost(a, sw, 0);
        topo.connectHost(b, sw, 1);
        b->setReceiveHandler([](PacketPtr) {});
    }
};

TEST_F(TraceFixture, CapturesTxAndDeliver)
{
    PacketTrace trace(s);
    trace.attachAll(topo);
    a->sendTo(b->ip(), 7, 7, 0, RawPayload{100, 1});
    s.run();
    // One frame crosses two links: 2 TX + 2 RX events.
    EXPECT_EQ(trace.count(LinkEvent::kTx), 2u);
    EXPECT_EQ(trace.count(LinkEvent::kDeliver), 2u);
    EXPECT_EQ(trace.count(LinkEvent::kDrop), 0u);
    EXPECT_EQ(trace.records().size(), 4u);
}

TEST_F(TraceFixture, RecordsCarrySimTimestamps)
{
    PacketTrace trace(s);
    trace.attachAll(topo);
    a->sendTo(b->ip(), 7, 7, 0, RawPayload{100, 1});
    s.run();
    sim::TimeNs prev = 0;
    for (const auto &r : trace.records()) {
        EXPECT_GE(r.t, prev);
        prev = r.t;
    }
    EXPECT_GT(prev, 0u);
}

TEST_F(TraceFixture, DropEventsCaptured)
{
    // Replace a's uplink with a lossy one is not possible post-build;
    // instead build a dedicated lossy pair.
    sim::Simulation s2{2};
    Host x{s2, "x", MacAddr(1), Ipv4Addr(1, 1, 1, 1)};
    Host y{s2, "y", MacAddr(2), Ipv4Addr(1, 1, 1, 2)};
    Link l{s2, "lossy", LinkConfig{10e9, 0, 1.0}};
    l.connect(&x, 0, &y, 0);
    PacketTrace trace(s2);
    trace.attach(l);
    Packet p;
    p.ip.dst = y.ip();
    p.payload = RawPayload{10, 0};
    x.send(makePacket(std::move(p)));
    s2.run();
    EXPECT_EQ(trace.count(LinkEvent::kDrop), 1u);
    EXPECT_EQ(trace.count(LinkEvent::kDeliver), 0u);
}

TEST_F(TraceFixture, IswitchOnlyFilter)
{
    PacketTrace trace(s);
    trace.setIswitchOnly(true);
    trace.attachAll(topo);
    a->sendTo(b->ip(), 7, 7, /*tos=*/0, RawPayload{100, 1});
    a->sendTo(b->ip(), 7, 7, kTosData, ChunkPayload{});
    s.run();
    for (const auto &r : trace.records())
        EXPECT_TRUE(r.pkt->isIswitchPlane());
    EXPECT_EQ(trace.count(LinkEvent::kTx), 2u); // tagged frame only
}

TEST_F(TraceFixture, RingBufferEvictsOldest)
{
    PacketTrace trace(s, /*capacity=*/4);
    trace.attachAll(topo);
    for (int i = 0; i < 10; ++i)
        a->sendTo(b->ip(), 7, 7, 0, RawPayload{64, std::uint64_t(i)});
    s.run();
    EXPECT_EQ(trace.records().size(), 4u);
    EXPECT_EQ(trace.captured(), 40u); // 10 frames x 2 links x (TX+RX)
}

TEST_F(TraceFixture, DumpIsHumanReadable)
{
    PacketTrace trace(s);
    trace.attachAll(topo);
    a->sendTo(b->ip(), 9000, 9999, kTosControl,
              ControlPayload{Action::kJoin, 1, true});
    s.run();
    std::ostringstream os;
    trace.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("TX"), std::string::npos);
    EXPECT_NE(out.find("Join"), std::string::npos);
    EXPECT_NE(out.find("10.0.0.2"), std::string::npos);
}

TEST_F(TraceFixture, ClearResets)
{
    PacketTrace trace(s);
    trace.attachAll(topo);
    a->sendTo(b->ip(), 7, 7, 0, RawPayload{64, 0});
    s.run();
    trace.clear();
    EXPECT_TRUE(trace.records().empty());
    EXPECT_EQ(trace.captured(), 0u);
    EXPECT_EQ(trace.count(LinkEvent::kTx), 0u);
}

} // namespace
} // namespace isw::net
