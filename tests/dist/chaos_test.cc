/** @file Chaos matrix: every training strategy must survive iid loss,
 *  Gilbert–Elliott bursts, and a mid-training worker crash + rejoin.
 *  Synchronous strategies must additionally converge to the *same*
 *  final weights as a lossless run (recovery is exact, not lossy);
 *  asynchronous strategies must stay live and finish. Also covers the
 *  announced-churn path (Leave/Join + auto-H) and the watchdog/stall
 *  diagnostics for unprotected runs. */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "dist/strategy.hh"

namespace isw::dist {
namespace {

JobConfig
chaosConfig(StrategyKind k, std::uint64_t iters = 6)
{
    JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kPpo, k, 4);
    cfg.wire_model_bytes = 0; // actual model size: fast tests
    cfg.stop.max_iterations = iters;
    cfg.curve_every = 4;
    return cfg;
}

struct Baseline
{
    ml::Vec weights;
    std::uint64_t iterations = 0;
    sim::TimeNs total_time = 0;
};

Baseline
losslessBaseline(const JobConfig &cfg)
{
    auto job = makeJob(cfg);
    const RunResult res = job->run();
    EXPECT_TRUE(res.ok()) << res.error;
    Baseline base;
    job->workerAgent(0).getWeights(base.weights);
    base.iterations = res.iterations;
    base.total_time = res.total_time;
    return base;
}

/** Run @p cfg and require full completion despite its faults. Sync
 *  strategies must reproduce the lossless weights: PS/AR sum in a
 *  fixed structural order, so recovery leaves the arithmetic
 *  untouched; sync iSwitch accumulates in switch-arrival order, so
 *  retransmissions reassociate the float sums and only a looser
 *  tolerance is meaningful. */
void
expectSurvives(const JobConfig &faulty, const Baseline &base)
{
    JobConfig cfg = faulty;
    // Safety net: a recovery bug diagnoses as a watchdog error
    // instead of hanging the test binary.
    cfg.stop.max_sim_time = base.total_time * 100 + sim::kSec;
    auto job = makeJob(cfg);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, cfg.stop.max_iterations);
    // Recovery counters are part of the observable result.
    EXPECT_TRUE(res.extras.count("retx_timeouts"));
    EXPECT_TRUE(res.extras.count("retx_segments"));
    EXPECT_TRUE(res.extras.count("recoveries"));
    if (isAsyncStrategy(cfg.strategy))
        return; // async: liveness + counters is the contract
    EXPECT_EQ(res.iterations, base.iterations);
    ml::Vec w;
    job->workerAgent(0).getWeights(w);
    ASSERT_EQ(w.size(), base.weights.size());
    const float tol =
        cfg.strategy == StrategyKind::kSyncIswitch ? 1e-4f : 1e-6f;
    for (std::size_t i = 0; i < w.size(); ++i)
        ASSERT_NEAR(w[i], base.weights[i], tol)
            << strategyName(cfg.strategy) << " weight " << i;
}

class ChaosMatrix : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(ChaosMatrix, SurvivesOnePercentIidLoss)
{
    const JobConfig cfg = chaosConfig(GetParam());
    const Baseline base = losslessBaseline(cfg);
    JobConfig lossy = cfg;
    lossy.faults.extra_loss = 0.01;
    expectSurvives(lossy, base);
}

TEST_P(ChaosMatrix, SurvivesGilbertElliottBursts)
{
    const JobConfig cfg = chaosConfig(GetParam());
    const Baseline base = losslessBaseline(cfg);
    JobConfig bursty = cfg;
    bursty.faults.ge.p_good_to_bad = 0.02;
    bursty.faults.ge.p_bad_to_good = 0.25;
    bursty.faults.ge.loss_bad = 0.8;
    expectSurvives(bursty, base);
}

TEST_P(ChaosMatrix, SurvivesSilentCrashAndRejoin)
{
    const JobConfig cfg = chaosConfig(GetParam());
    const Baseline base = losslessBaseline(cfg);
    JobConfig crashy = cfg;
    // Blackout worker 2's edge link for a quarter of the lossless
    // runtime, starting mid-training. announce=false: a silent
    // partition the retransmission layer must ride out on its own.
    crashy.faults.crashes.push_back(net::WorkerCrash{
        2, base.total_time * 3 / 10, base.total_time * 11 / 20, false});
    expectSurvives(crashy, base);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, ChaosMatrix,
    ::testing::Values(StrategyKind::kSyncPs, StrategyKind::kSyncAllReduce,
                      StrategyKind::kSyncIswitch,
                      StrategyKind::kSyncShardedPs, StrategyKind::kAsyncPs,
                      StrategyKind::kAsyncIswitch),
    [](const auto &info) {
        switch (info.param) {
          case StrategyKind::kSyncPs: return "SyncPs";
          case StrategyKind::kSyncAllReduce: return "SyncAr";
          case StrategyKind::kSyncIswitch: return "SyncIsw";
          case StrategyKind::kSyncShardedPs: return "ShardedPs";
          case StrategyKind::kAsyncPs: return "AsyncPs";
          case StrategyKind::kAsyncIswitch: return "AsyncIsw";
        }
        return "?";
    });

TEST(ChaosCounters, BurstyLossTripsTheRecoveryPath)
{
    // Under a sustained ~6% burst loss, a synchronous run cannot
    // finish without the retransmission layer actually firing.
    JobConfig cfg = chaosConfig(StrategyKind::kSyncPs, 8);
    cfg.faults.ge.p_good_to_bad = 0.02;
    cfg.faults.ge.p_bad_to_good = 0.25;
    cfg.faults.ge.loss_bad = 0.8;
    cfg.stop.max_sim_time = 60 * sim::kSec;
    const RunResult res = runJob(cfg);
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_TRUE(res.extras.count("fault_ge_drops"));
    EXPECT_GT(res.extras.at("fault_ge_drops"), 0.0);
    EXPECT_GT(res.extras.at("retx_timeouts"), 0.0);
    EXPECT_GT(res.extras.at("retx_segments"), 0.0);
    EXPECT_GT(res.extras.at("recoveries"), 0.0);
    EXPECT_GT(res.extras.at("recovery_latency_ms_total"), 0.0);
    EXPECT_TRUE(res.extras.count("recovery_hist_lt1ms"));
}

TEST(ChaosCounters, CrashWindowDropsAreAttributed)
{
    JobConfig cfg = chaosConfig(StrategyKind::kSyncPs);
    const Baseline base = losslessBaseline(cfg);
    JobConfig crashy = cfg;
    crashy.faults.crashes.push_back(net::WorkerCrash{
        2, base.total_time * 3 / 10, base.total_time * 11 / 20, false});
    crashy.stop.max_sim_time = base.total_time * 100 + sim::kSec;
    const RunResult res = runJob(crashy);
    ASSERT_TRUE(res.ok()) << res.error;
    ASSERT_TRUE(res.extras.count("fault_down_drops"));
    EXPECT_GT(res.extras.at("fault_down_drops"), 0.0);
}

TEST(ChaosCounters, LosslessRunExposesNoRecoveryKeys)
{
    // The recovery/fault extras are strictly conditional: a lossless
    // config must produce a result indistinguishable from one made by
    // a build without the fault subsystem (BENCH baseline contract).
    const RunResult res = runJob(chaosConfig(StrategyKind::kSyncPs));
    EXPECT_EQ(res.extras.count("retx_timeouts"), 0u);
    EXPECT_EQ(res.extras.count("retx_segments"), 0u);
    EXPECT_EQ(res.extras.count("fault_iid_drops"), 0u);
    EXPECT_EQ(res.extras.count("recovery_hist_lt1ms"), 0u);
}

TEST(ChaosDeterminism, FaultyRunsAreSeedDeterministic)
{
    JobConfig cfg = chaosConfig(StrategyKind::kSyncIswitch);
    cfg.faults.ge.p_good_to_bad = 0.02;
    cfg.faults.ge.p_bad_to_good = 0.25;
    cfg.faults.ge.loss_bad = 0.8;
    cfg.stop.max_sim_time = 60 * sim::kSec;
    const RunResult a = runJob(cfg);
    const RunResult b = runJob(cfg);
    ASSERT_TRUE(a.ok()) << a.error;
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.final_avg_reward, b.final_avg_reward);
    EXPECT_EQ(a.extras.at("fault_ge_drops"), b.extras.at("fault_ge_drops"));
    EXPECT_EQ(a.extras.at("retx_segments"), b.extras.at("retx_segments"));
}

TEST(QuantChaos, Int32AggregationIsBitExactUnderDupReorderAndBoundedSlots)
{
    // The headline property of the int32 wire (DESIGN.md §14): the
    // switch sums integers at a shared exponent, so the aggregate is a
    // pure function of the set of contributions — independent of
    // arrival order, duplication, retransmission, and slot reuse in a
    // bounded pool. Unlike the float path (1e-4 tolerance above), the
    // chaotic run must land on the *bit-identical* final weights.
    JobConfig cfg = chaosConfig(StrategyKind::kSyncIswitch);
    cfg.precision = net::Precision::kInt32;
    const Baseline base = losslessBaseline(cfg);

    JobConfig chaotic = cfg;
    chaotic.cluster.accel.num_slots = 4; // slot reuse while under fire
    chaotic.faults.duplicate_prob = 0.05;
    chaotic.faults.reorder_prob = 0.10;
    chaotic.faults.extra_loss = 0.01; // losses force re-encoded resends
    chaotic.stop.max_sim_time = base.total_time * 100 + sim::kSec;

    auto job = makeJob(chaotic);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.iterations, base.iterations);
    EXPECT_GT(res.extras.at("fault_duplicates") +
                  res.extras.at("fault_reorders"),
              0.0);
    ml::Vec w;
    job->workerAgent(0).getWeights(w);
    ASSERT_EQ(w.size(), base.weights.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(w[i]),
                  std::bit_cast<std::uint32_t>(base.weights[i]))
            << "weight " << i;
}

TEST(Churn, AnnouncedCrashDrivesLeaveJoinAndAutoH)
{
    // announce=true exercises the control plane end to end: a Leave at
    // the crash instant shrinks the membership table and recomputes
    // the auto threshold H (4 -> 3), the Join at rejoin restores it.
    JobConfig cfg = chaosConfig(StrategyKind::kAsyncIswitch, 16);
    const Baseline base = losslessBaseline(cfg);
    const sim::TimeNs crash_at = base.total_time * 3 / 10;
    const sim::TimeNs rejoin_at = base.total_time * 6 / 10;
    cfg.faults.crashes.push_back(
        net::WorkerCrash{3, crash_at, rejoin_at, true});
    cfg.stop.max_sim_time = base.total_time * 100 + sim::kSec;

    auto job = makeJob(cfg);
    std::uint32_t h_mid_crash = 0;
    job->simulation().at((crash_at + rejoin_at) / 2, [&] {
        h_mid_crash = job->cluster().root->accelerator().threshold();
    });
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, 16u);
    EXPECT_EQ(h_mid_crash, 3u); // Leave shrank membership, auto-H followed
    EXPECT_EQ(job->cluster().root->accelerator().threshold(), 4u);
}

// ---------------------------------------------------------------------
// High-availability failover (DESIGN.md §16): a backup switch shadows
// the primary's aggregation state; when the primary crashes mid-round,
// heartbeat misses promote the backup, workers re-home, and the round
// finishes from the replicated partials + retransmissions.

/** Like expectSurvives, but the fault is a *switch* crash and the run
 *  must additionally report exactly one failover. The sync weight
 *  contract is unchanged: recovery through the backup is exact. */
void
expectFailsOver(const JobConfig &faulty, const Baseline &base)
{
    JobConfig cfg = faulty;
    cfg.stop.max_sim_time = base.total_time * 100 + sim::kSec;
    auto job = makeJob(cfg);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, cfg.stop.max_iterations);
    ASSERT_TRUE(res.extras.count("failover_events"));
    EXPECT_EQ(res.extras.at("failover_events"), 1.0);
    EXPECT_GT(res.extras.at("failover_heartbeats"), 0.0);
    EXPECT_GT(res.extras.at("failover_beats_missed"), 0.0);
    EXPECT_GT(res.extras.at("failover_promote_ms"), 0.0);
    // Only the iSwitch plane replicates aggregation state; for PS/AR
    // strategies the backup is pure routing + membership shadow.
    if (cfg.strategy == StrategyKind::kSyncIswitch ||
        cfg.strategy == StrategyKind::kAsyncIswitch)
        EXPECT_GT(res.extras.at("failover_repl_frames"), 0.0);
    ASSERT_TRUE(res.extras.count("fault_switch_drops"));
    EXPECT_GT(res.extras.at("fault_switch_drops"), 0.0);
    if (isAsyncStrategy(cfg.strategy))
        return; // async: liveness through the failover is the contract
    EXPECT_EQ(res.iterations, base.iterations);
    ml::Vec w;
    job->workerAgent(0).getWeights(w);
    ASSERT_EQ(w.size(), base.weights.size());
    const float tol =
        cfg.strategy == StrategyKind::kSyncIswitch ? 1e-4f : 1e-6f;
    for (std::size_t i = 0; i < w.size(); ++i)
        ASSERT_NEAR(w[i], base.weights[i], tol)
            << strategyName(cfg.strategy) << " weight " << i;
}

class FailoverMatrix : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(FailoverMatrix, MidTrainingSwitchCrashFailsOverToBackup)
{
    const JobConfig cfg = chaosConfig(GetParam());
    const Baseline base = losslessBaseline(cfg); // no HA, no faults
    JobConfig crashy = cfg;
    crashy.cluster.ha.with_backup = true;
    // Fail-stop: the primary dies mid-training and never returns.
    crashy.faults.switch_crashes.push_back(
        net::SwitchCrash{base.total_time * 3 / 10, 0});
    expectFailsOver(crashy, base);
}

INSTANTIATE_TEST_SUITE_P(
    CoreStrategies, FailoverMatrix,
    ::testing::Values(StrategyKind::kSyncPs, StrategyKind::kSyncIswitch,
                      StrategyKind::kAsyncIswitch),
    [](const auto &info) {
        switch (info.param) {
          case StrategyKind::kSyncPs: return "SyncPs";
          case StrategyKind::kSyncIswitch: return "SyncIsw";
          case StrategyKind::kAsyncIswitch: return "AsyncIsw";
          default: return "?";
        }
    });

TEST(Failover, BatchedLazyReplicationAlsoRecovers)
{
    JobConfig cfg = chaosConfig(StrategyKind::kSyncIswitch);
    const Baseline base = losslessBaseline(cfg);
    JobConfig crashy = cfg;
    crashy.cluster.ha.with_backup = true;
    crashy.cluster.ha.repl_mode = core::ReplicationMode::kBatchedLazy;
    crashy.faults.switch_crashes.push_back(
        net::SwitchCrash{base.total_time * 3 / 10, 0});
    expectFailsOver(crashy, base);
}

TEST(Failover, BackupReplicatesWithoutDisturbingLosslessTraining)
{
    // Replication rides a dedicated peer link, so it never contends
    // with training traffic for bandwidth; its events do interleave
    // with same-timestamp data events though, which reassociates the
    // switch's float sums. The training outcome must be unaffected:
    // same iteration count, weights within the reassociation
    // tolerance, and zero failovers.
    JobConfig cfg = chaosConfig(StrategyKind::kSyncIswitch);
    const Baseline base = losslessBaseline(cfg);
    JobConfig ha = cfg;
    ha.cluster.ha.with_backup = true;
    auto job = makeJob(ha);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.iterations, base.iterations);
    EXPECT_EQ(res.extras.at("failover_events"), 0.0);
    EXPECT_GT(res.extras.at("failover_repl_frames"), 0.0);
    EXPECT_GT(res.extras.at("failover_repl_applied"), 0.0);
    EXPECT_GT(res.extras.at("failover_repl_results_applied"), 0.0);
    ml::Vec w;
    job->workerAgent(0).getWeights(w);
    ASSERT_EQ(w.size(), base.weights.size());
    for (std::size_t i = 0; i < w.size(); ++i)
        ASSERT_NEAR(w[i], base.weights[i], 1e-4f) << "weight " << i;
}

TEST(Failover, BatchedLazyModeSendsFewerStateFrames)
{
    JobConfig eager = chaosConfig(StrategyKind::kSyncIswitch);
    eager.cluster.ha.with_backup = true;
    JobConfig lazy = eager;
    lazy.cluster.ha.repl_mode = core::ReplicationMode::kBatchedLazy;
    const RunResult re = runJob(eager);
    const RunResult rl = runJob(lazy);
    ASSERT_TRUE(re.ok()) << re.error;
    ASSERT_TRUE(rl.ok()) << rl.error;
    // Same completions replicate either way; the lazy mode coalesces
    // the per-accept state stream into per-window dirty flushes.
    EXPECT_EQ(re.extras.at("failover_repl_results"),
              rl.extras.at("failover_repl_results"));
    EXPECT_GT(re.extras.at("failover_repl_frames"),
              rl.extras.at("failover_repl_frames"));
}

TEST(Failover, SwitchCrashWithoutBackupFailsLoudly)
{
    // Acceptance: no backup provisioned means a mid-training switch
    // crash must end in a diagnosable error, never a silent hang.
    JobConfig cfg = chaosConfig(StrategyKind::kSyncIswitch);
    const Baseline base = losslessBaseline(cfg);
    JobConfig crashy = cfg;
    crashy.faults.switch_crashes.push_back(
        net::SwitchCrash{base.total_time * 3 / 10, 0});
    crashy.stop.max_sim_time = 30 * sim::kSec;
    const RunResult res = runJob(crashy);
    EXPECT_FALSE(res.ok());
    EXPECT_TRUE(res.error.find("stalled") != std::string::npos ||
                res.error.find("watchdog") != std::string::npos)
        << res.error;
    ASSERT_TRUE(res.extras.count("fault_switch_drops"));
    EXPECT_GT(res.extras.at("fault_switch_drops"), 0.0);
    // No backup, no failover keys: the extras stay strictly honest.
    EXPECT_EQ(res.extras.count("failover_events"), 0u);
}

TEST(Failover, LosslessRunExposesNoFailoverKeys)
{
    // Without a backup and without switch faults, the failover/switch
    // extras must be absent entirely (BENCH baseline contract).
    const RunResult res = runJob(chaosConfig(StrategyKind::kSyncIswitch));
    EXPECT_EQ(res.extras.count("failover_events"), 0u);
    EXPECT_EQ(res.extras.count("failover_heartbeats"), 0u);
    EXPECT_EQ(res.extras.count("failover_repl_frames"), 0u);
    EXPECT_EQ(res.extras.count("fault_switch_drops"), 0u);
    EXPECT_EQ(res.extras.count("fault_partition_drops"), 0u);
}

TEST(Churn, PermanentAnnouncedCrashNeverRejoins)
{
    // rejoin_at == 0 is fail-stop: the Leave shrinks auto-H to 3 and
    // no Join is ever scheduled, so the table stays shrunk and the
    // dead worker's link drops frames to the end of the run.
    JobConfig cfg = chaosConfig(StrategyKind::kAsyncIswitch, 16);
    const Baseline base = losslessBaseline(cfg);
    cfg.faults.crashes.push_back(
        net::WorkerCrash{3, base.total_time * 3 / 10, 0, true});
    cfg.stop.max_sim_time = base.total_time * 100 + sim::kSec;
    auto job = makeJob(cfg);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, 16u);
    EXPECT_EQ(job->cluster().root->accelerator().threshold(), 3u);
    EXPECT_GT(res.extras.at("fault_down_drops"), 0.0);
}

TEST(Watchdog, UnprotectedLossyRunDiagnosesInsteadOfHanging)
{
    JobConfig cfg = chaosConfig(StrategyKind::kSyncPs, 50);
    cfg.faults.extra_loss = 0.05;
    cfg.retx.max_retries = 0; // recovery explicitly disabled
    cfg.stop.max_sim_time = 30 * sim::kSec;
    const RunResult res = runJob(cfg);
    EXPECT_FALSE(res.ok());
    // The first lost chunk starves the round; the event queue drains
    // (or the watchdog deadline passes) and the run reports why.
    EXPECT_TRUE(res.error.find("stalled") != std::string::npos ||
                res.error.find("watchdog") != std::string::npos)
        << res.error;
    EXPECT_LT(res.iterations, 50u);
}

TEST(Watchdog, TooShortDeadlineReportsWatchdogError)
{
    JobConfig cfg = chaosConfig(StrategyKind::kSyncPs, 50);
    cfg.stop.max_sim_time = 1 * sim::kUsec; // nothing can finish
    const RunResult res = runJob(cfg);
    EXPECT_FALSE(res.ok());
    EXPECT_NE(res.error.find("watchdog"), std::string::npos) << res.error;
}

} // namespace
} // namespace isw::dist
