/** @file Vector transport and reassembly tests. */

#include <gtest/gtest.h>

#include "dist/transport.hh"
#include "net/link.hh"

namespace isw::dist {
namespace {

net::ChunkPayload
chunkOf(const WireFormat &fmt, std::span<const float> logical,
        std::uint64_t seg)
{
    net::ChunkPayload c;
    c.seg = seg;
    c.wire_floats = core::floatsInSeg(seg, fmt.wire_bytes);
    const std::uint64_t begin = seg * core::kFloatsPerSeg;
    if (begin < logical.size()) {
        const auto end = std::min<std::uint64_t>(
            begin + core::kFloatsPerSeg, logical.size());
        c.values.assign(logical.begin() + begin, logical.begin() + end);
    }
    return c;
}

TEST(WireFormat, ClampsToLogicalSize)
{
    const WireFormat f = WireFormat::forVector(1000, 100, true);
    EXPECT_EQ(f.wire_bytes, 4000u);
    const WireFormat g = WireFormat::forVector(10, 40000, true);
    EXPECT_EQ(g.wire_bytes, 40000u);
}

TEST(WireFormat, SegmentCountMatchesProtocol)
{
    const WireFormat f = WireFormat::forVector(0, 366 * 4 * 3 + 4, true);
    EXPECT_EQ(f.segments(), 4u);
}

TEST(VectorAssembler, AssemblesInOrder)
{
    std::vector<float> data(800);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<float>(i);
    const WireFormat fmt = WireFormat::forVector(800, 800 * 4, true);
    VectorAssembler rx(fmt);
    for (std::uint64_t s = 0; s < fmt.segments(); ++s) {
        const bool done = rx.offer(chunkOf(fmt, data, s));
        EXPECT_EQ(done, s + 1 == fmt.segments());
    }
    EXPECT_TRUE(rx.complete());
    EXPECT_EQ(rx.vector(), data);
}

TEST(VectorAssembler, AssemblesOutOfOrder)
{
    std::vector<float> data(1000, 0.0f);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<float>(i) * 0.5f;
    const WireFormat fmt = WireFormat::forVector(1000, 1000 * 4, false);
    VectorAssembler rx(fmt);
    const std::uint64_t n = fmt.segments();
    for (std::uint64_t s = n; s-- > 0;)
        rx.offer(chunkOf(fmt, data, s));
    EXPECT_TRUE(rx.complete());
    EXPECT_EQ(rx.vector(), data);
}

TEST(VectorAssembler, DuplicatesAreIdempotent)
{
    std::vector<float> data(10, 3.0f);
    const WireFormat fmt = WireFormat::forVector(10, 40, true);
    VectorAssembler rx(fmt);
    EXPECT_TRUE(rx.offer(chunkOf(fmt, data, 0)));
    EXPECT_FALSE(rx.offer(chunkOf(fmt, data, 0)));
    EXPECT_EQ(rx.vector()[0], 3.0f);
}

TEST(VectorAssembler, PaddingSegmentsCountTowardCompletion)
{
    // 10 logical floats on a 3-segment wire: segments 1..2 are pure
    // padding but the vector is only complete once they arrive.
    std::vector<float> data(10, 1.0f);
    const WireFormat fmt =
        WireFormat::forVector(10, 3 * 366 * 4, true);
    VectorAssembler rx(fmt);
    EXPECT_FALSE(rx.offer(chunkOf(fmt, data, 0)));
    EXPECT_FALSE(rx.offer(chunkOf(fmt, data, 1)));
    EXPECT_TRUE(rx.offer(chunkOf(fmt, data, 2)));
    EXPECT_EQ(rx.vector(), data);
}

TEST(VectorAssembler, MissingSegmentsReported)
{
    const WireFormat fmt = WireFormat::forVector(0, 4 * 366 * 4, true);
    VectorAssembler rx(fmt);
    std::vector<float> none;
    rx.offer(chunkOf(fmt, none, 1));
    rx.offer(chunkOf(fmt, none, 3));
    EXPECT_EQ(rx.missingSegments(), (std::vector<std::uint64_t>{0, 2}));
}

TEST(VectorAssembler, ResetReArms)
{
    std::vector<float> data(5, 2.0f);
    const WireFormat fmt = WireFormat::forVector(5, 20, true);
    VectorAssembler rx(fmt);
    rx.offer(chunkOf(fmt, data, 0));
    rx.reset();
    EXPECT_FALSE(rx.complete());
    EXPECT_EQ(rx.segmentsReceived(), 0u);
}

TEST(VectorAssembler, SegBaseOffsetsSegments)
{
    std::vector<float> data(5, 2.0f);
    const WireFormat fmt = WireFormat::forVector(5, 20, false);
    VectorAssembler rx(fmt);
    net::ChunkPayload c = chunkOf(fmt, data, 0);
    c.seg = 100; // absolute numbering
    EXPECT_TRUE(rx.offer(c, /*seg_base=*/100));
}

TEST(VectorAssembler, IgnoresForeignSegments)
{
    const WireFormat fmt = WireFormat::forVector(5, 20, true);
    VectorAssembler rx(fmt);
    net::ChunkPayload c;
    c.seg = 99;
    EXPECT_FALSE(rx.offer(c));
    EXPECT_EQ(rx.segmentsReceived(), 0u);
}

TEST(MultiRoundAssembler, SeparatesInterleavedRounds)
{
    const WireFormat fmt = WireFormat::forVector(732, 732 * 4, true);
    ASSERT_EQ(fmt.segments(), 2u);
    MultiRoundAssembler rx(fmt);
    std::vector<float> r1(732, 1.0f), r2(732, 2.0f);
    // Round 2's segment 0 overtakes round 1's segment 1.
    rx.offer(chunkOf(fmt, r1, 0));
    rx.offer(chunkOf(fmt, r2, 0));
    EXPECT_FALSE(rx.frontComplete());
    rx.offer(chunkOf(fmt, r1, 1));
    ASSERT_TRUE(rx.frontComplete());
    EXPECT_EQ(rx.popFront()[0], 1.0f);
    rx.offer(chunkOf(fmt, r2, 1));
    ASSERT_TRUE(rx.frontComplete());
    EXPECT_EQ(rx.popFront()[0], 2.0f);
    EXPECT_EQ(rx.pendingRounds(), 0u);
}

TEST(MultiRoundAssembler, ManyRoundsDrainFifo)
{
    const WireFormat fmt = WireFormat::forVector(4, 16, true);
    MultiRoundAssembler rx(fmt);
    for (float round = 0; round < 5; ++round) {
        std::vector<float> v(4, round);
        rx.offer(chunkOf(fmt, v, 0));
    }
    for (float round = 0; round < 5; ++round) {
        ASSERT_TRUE(rx.frontComplete());
        EXPECT_EQ(rx.popFront()[0], round);
    }
}

TEST(SendVector, ProducesSegmentedPackets)
{
    sim::Simulation s{1};
    net::Host a{s, "a", net::MacAddr(1), net::Ipv4Addr(10, 0, 0, 1)};
    net::Host b{s, "b", net::MacAddr(2), net::Ipv4Addr(10, 0, 0, 2)};
    net::Link l{s, "l", {}};
    l.connect(&a, 0, &b, 0);

    std::vector<float> data(1000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<float>(i);
    const WireFormat fmt = WireFormat::forVector(1000, 1000 * 4, true);

    VectorAssembler rx(fmt);
    bool complete = false;
    std::size_t packets = 0;
    b.setReceiveHandler([&](net::PacketPtr pkt) {
        ++packets;
        EXPECT_EQ(pkt->ip.tos, net::kTosData);
        const auto *c = std::get_if<net::ChunkPayload>(&pkt->payload);
        ASSERT_NE(c, nullptr);
        if (rx.offer(*c))
            complete = true;
    });
    sendVector(a, b.ip(), 9000, 9999, net::kTosData, 0, data, fmt);
    s.run();
    EXPECT_EQ(packets, fmt.segments());
    EXPECT_TRUE(complete);
    EXPECT_EQ(rx.vector(), data);
}

TEST(SendVector, WirePaddingTransmitsFullSize)
{
    sim::Simulation s{1};
    net::Host a{s, "a", net::MacAddr(1), net::Ipv4Addr(10, 0, 0, 1)};
    net::Host b{s, "b", net::MacAddr(2), net::Ipv4Addr(10, 0, 0, 2)};
    net::Link l{s, "l", {}};
    l.connect(&a, 0, &b, 0);

    std::vector<float> tiny(8, 1.0f);
    // 8 logical floats but a 3-segment paper-scale wire footprint.
    const WireFormat fmt = WireFormat::forVector(8, 3 * 366 * 4, true);
    std::size_t packets = 0;
    b.setReceiveHandler([&](net::PacketPtr) { ++packets; });
    sendVector(a, b.ip(), 9000, 9999, net::kTosData, 0, tiny, fmt);
    s.run();
    EXPECT_EQ(packets, 3u);
    // The link carried ~3 full MTU frames, not 8 floats.
    EXPECT_GT(l.bytesCarried(), 3 * 1400u);
}

TEST(VectorAssembler, FirstMissingTracksContiguousPrefix)
{
    const WireFormat fmt = WireFormat::forVector(0, 5 * 366 * 4, true);
    std::vector<float> data;
    VectorAssembler rx(fmt);
    EXPECT_EQ(rx.firstMissing(), 0u);
    rx.offer(chunkOf(fmt, data, 0));
    EXPECT_EQ(rx.firstMissing(), 1u);
    rx.offer(chunkOf(fmt, data, 2)); // gap at 1
    EXPECT_EQ(rx.firstMissing(), 1u);
    rx.offer(chunkOf(fmt, data, 1)); // gap closes: skips past 2
    EXPECT_EQ(rx.firstMissing(), 3u);
    rx.offer(chunkOf(fmt, data, 3));
    rx.offer(chunkOf(fmt, data, 4));
    EXPECT_EQ(rx.firstMissing(), fmt.segments());
    rx.reset();
    EXPECT_EQ(rx.firstMissing(), 0u);
}

TEST(RetxTimer, BackoffClampsAtMaxTimeout)
{
    // Regression: timeout * backoff^n used to overflow TimeNs and
    // schedule the "retry" in the past. The backed-off interval must
    // saturate at max_timeout, exactly from the cap boundary on.
    sim::Simulation sim(1);
    RetransmitPolicy p;
    p.timeout = 10 * sim::kMsec;
    p.backoff = 1000.0;
    p.max_retries = 4;
    p.max_timeout = 50 * sim::kMsec;
    RecoveryStats stats;
    RetxTimer t;
    t.configure(sim, p, stats);
    std::vector<sim::TimeNs> fires;
    t.arm([&]() -> std::size_t {
        fires.push_back(sim.now());
        return 1; // work always remains: drive to the retry cap
    });
    sim.run();
    ASSERT_EQ(fires.size(), 4u);
    EXPECT_EQ(fires[0], 10 * sim::kMsec);
    // 10ms * 1000 would be 10s; every later interval is the cap.
    EXPECT_EQ(fires[1] - fires[0], 50 * sim::kMsec);
    EXPECT_EQ(fires[2] - fires[1], 50 * sim::kMsec);
    EXPECT_EQ(fires[3] - fires[2], 50 * sim::kMsec);
    EXPECT_EQ(stats.gave_up, 1u);
}

TEST(RetxTimer, ExtremeRetryCapStaysMonotonic)
{
    // With the default 300 s cap, 2^n growth over a large retry budget
    // stays finite and strictly monotonic (pre-clamp this wrapped).
    sim::Simulation sim(1);
    RetransmitPolicy p;
    p.timeout = 20 * sim::kMsec;
    p.backoff = 2.0;
    p.max_retries = 80;
    RecoveryStats stats;
    RetxTimer t;
    t.configure(sim, p, stats);
    std::vector<sim::TimeNs> fires;
    t.arm([&]() -> std::size_t {
        fires.push_back(sim.now());
        return 1;
    });
    sim.run();
    ASSERT_EQ(fires.size(), 80u);
    for (std::size_t i = 1; i < fires.size(); ++i) {
        EXPECT_GT(fires[i], fires[i - 1]);
        EXPECT_LE(fires[i] - fires[i - 1], p.max_timeout);
    }
    EXPECT_EQ(stats.gave_up, 1u);
}

} // namespace
} // namespace isw::dist
