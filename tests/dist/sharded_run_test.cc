/** @file Sharded-execution regression tests: multi-rack runs on the
 *  parallel engine must be byte-identical to the serial engine, and
 *  the gates that keep sharding sound must hold. */

#include <gtest/gtest.h>

#include "dist/strategy.hh"
#include "harness/runner.hh"

namespace isw::dist {
namespace {

JobConfig
treeConfig(StrategyKind k, std::size_t workers, std::uint64_t iters)
{
    JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kPpo, k, workers);
    cfg.wire_model_bytes = 0; // actual model size: fast tests
    cfg.use_tree = true;
    cfg.cluster.per_rack = 3;
    cfg.stop.max_iterations = iters;
    cfg.curve_every = 3;
    cfg.seed = 11;
    return cfg;
}

std::string
reportOf(const JobConfig &cfg)
{
    // resultToJson covers every deterministic result field (iterations,
    // simulated timing, rewards, breakdown, extras, curve) and excludes
    // the wall-clock perf block, so string equality is byte-level
    // result parity.
    return harness::resultToJson(runJob(cfg)).dump(2);
}

TEST(ShardedRun, TreeRunByteIdenticalToSerial)
{
    JobConfig serial = treeConfig(StrategyKind::kSyncIswitch, 6, 8);
    JobConfig sharded = serial;
    sharded.shard = true;
    sharded.shard_threads = 2;
    EXPECT_EQ(reportOf(serial), reportOf(sharded));
}

TEST(ShardedRun, FatTreeRunByteIdenticalToSerial)
{
    JobConfig serial = treeConfig(StrategyKind::kSyncIswitch, 8, 6);
    serial.use_tree = false;
    serial.use_fat_tree = true;
    serial.cluster.per_rack = 2;
    serial.cluster.racks_per_pod = 2; // 4 racks, 2 pods
    JobConfig sharded = serial;
    sharded.shard = true;
    EXPECT_EQ(reportOf(serial), reportOf(sharded));
}

TEST(ShardedRun, SyncPsRunByteIdenticalToSerial)
{
    // The PS host lives in rack 0's domain; its unicast fan-in/fan-out
    // crosses every rack boundary each round.
    JobConfig serial = treeConfig(StrategyKind::kSyncPs, 4, 4);
    JobConfig sharded = serial;
    sharded.shard = true;
    EXPECT_EQ(reportOf(serial), reportOf(sharded));
}

TEST(ShardedRun, ThreadCountDoesNotChangeResults)
{
    JobConfig one = treeConfig(StrategyKind::kSyncIswitch, 6, 6);
    one.shard = true;
    one.shard_threads = 1;
    JobConfig many = one;
    many.shard_threads = 3;
    JobConfig hw = one;
    hw.shard_threads = 0; // hardware concurrency
    const std::string base = reportOf(one);
    EXPECT_EQ(base, reportOf(many));
    EXPECT_EQ(base, reportOf(hw));
}

TEST(ShardedRun, ShardedRunReportsProgress)
{
    JobConfig cfg = treeConfig(StrategyKind::kSyncIswitch, 6, 8);
    cfg.shard = true;
    RunResult res = runJob(cfg);
    EXPECT_TRUE(res.error.empty()) << res.error;
    EXPECT_GE(res.iterations, 8u);
    EXPECT_GT(res.total_time, 0u);
    EXPECT_GT(res.extras.at("events_executed"), 0.0);
    EXPECT_GT(res.extras.at("packets_sealed"), 0.0);
}

TEST(ShardedRun, AsyncIswitchDeterministicAcrossThreadCounts)
{
    // Async strategies are version-bookkept via the window barrier, so
    // a sharded run must reproduce exactly across shard_threads (but
    // not necessarily match the serial engine, which sees live
    // versions rather than barrier snapshots).
    JobConfig cfg = treeConfig(StrategyKind::kAsyncIswitch, 6, 8);
    cfg.shard = true;
    cfg.shard_threads = 1;
    JobConfig many = cfg;
    many.shard_threads = 3;
    EXPECT_EQ(reportOf(cfg), reportOf(many));
}

TEST(ShardedRun, AsyncPsDeterministicAcrossThreadCounts)
{
    JobConfig cfg = treeConfig(StrategyKind::kAsyncPs, 4, 6);
    cfg.shard = true;
    cfg.shard_threads = 1;
    JobConfig many = cfg;
    many.shard_threads = 0; // hardware concurrency
    EXPECT_EQ(reportOf(cfg), reportOf(many));
}

TEST(ShardedRun, LossySyncRunByteIdenticalToSerial)
{
    // Lossy sync paths use the same domain-safe probe/defer machinery
    // under both engines on a partitioned fabric, so serial and
    // sharded reports must agree byte-for-byte.
    JobConfig serial = treeConfig(StrategyKind::kSyncIswitch, 6, 6);
    serial.cluster.edge_link.loss_prob = 0.01;
    JobConfig sharded = serial;
    sharded.shard = true;
    sharded.shard_threads = 3;
    EXPECT_EQ(reportOf(serial), reportOf(sharded));
}

TEST(ShardedRun, ShardedRunReportsPerfCounters)
{
    JobConfig cfg = treeConfig(StrategyKind::kSyncIswitch, 6, 6);
    cfg.shard = true;
    RunResult res = runJob(cfg);
    EXPECT_TRUE(res.error.empty()) << res.error;
    EXPECT_GT(res.perf.at("shard_windows"), 0.0);
    EXPECT_GT(res.perf.at("shard_cross_events"), 0.0);
    EXPECT_GT(res.perf.at("shard_cross_batches"), 0.0);
    // Counters that may legitimately be zero must still be reported.
    EXPECT_NO_THROW(res.perf.at("shard_windows_serial"));
    EXPECT_NO_THROW(res.perf.at("shard_domains_skipped"));
    EXPECT_NO_THROW(res.perf.at("shard_mailbox_contention"));
}

TEST(ShardedRun, RejectsSingleDomainClusters)
{
    JobConfig cfg = treeConfig(StrategyKind::kSyncIswitch, 4, 4);
    cfg.use_tree = false; // star: nothing to shard
    cfg.shard = true;
    EXPECT_THROW(makeJob(cfg), std::invalid_argument);
}

} // namespace
} // namespace isw::dist
