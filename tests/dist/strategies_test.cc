/** @file Strategy tests: every strategy runs, the sync strategies are
 *  mathematically equivalent, async respects staleness bounds, and
 *  loss recovery restores progress. */

#include <gtest/gtest.h>

#include "dist/iswitch_async.hh"
#include "dist/strategy.hh"

namespace isw::dist {
namespace {

JobConfig
quickConfig(rl::Algo algo, StrategyKind k, std::uint64_t iters = 12)
{
    JobConfig cfg = JobConfig::forBenchmark(algo, k, 4);
    cfg.wire_model_bytes = 0; // actual model size: fast tests
    cfg.stop.max_iterations = iters;
    cfg.curve_every = 4;
    return cfg;
}

TEST(StrategyName, CoversAllKinds)
{
    EXPECT_STREQ(strategyName(StrategyKind::kSyncPs), "PS");
    EXPECT_STREQ(strategyName(StrategyKind::kSyncAllReduce), "AR");
    EXPECT_STREQ(strategyName(StrategyKind::kSyncIswitch), "iSW");
    EXPECT_STREQ(strategyName(StrategyKind::kAsyncPs), "Async PS");
    EXPECT_STREQ(strategyName(StrategyKind::kAsyncIswitch), "Async iSW");
    EXPECT_FALSE(isAsyncStrategy(StrategyKind::kSyncPs));
    EXPECT_TRUE(isAsyncStrategy(StrategyKind::kAsyncIswitch));
}

/** Parameterized over all five strategies: basic liveness. */
class EveryStrategy : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(EveryStrategy, RunsToIterationCap)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, GetParam(), 10);
    RunResult res = runJob(cfg);
    EXPECT_GE(res.iterations, 10u);
    EXPECT_GT(res.total_time, 0u);
    EXPECT_GT(res.perIterationMs(), 0.0);
    EXPECT_FALSE(res.reached_target);
}

TEST_P(EveryStrategy, ProducesRewardCurve)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, GetParam(), 12);
    RunResult res = runJob(cfg);
    EXPECT_GE(res.reward_curve.points().size(), 2u);
    // Curve timestamps are monotonic.
    sim::TimeNs prev = 0;
    for (const auto &p : res.reward_curve.points()) {
        EXPECT_GE(p.t, prev);
        prev = p.t;
    }
}

TEST_P(EveryStrategy, BreakdownChargesLocalCompute)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, GetParam(), 8);
    RunResult res = runJob(cfg);
    EXPECT_GT(res.breakdown.meanMs(IterComponent::kForwardPass), 0.0);
    EXPECT_GT(res.breakdown.meanMs(IterComponent::kEnvironReact), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, EveryStrategy,
    ::testing::Values(StrategyKind::kSyncPs, StrategyKind::kSyncAllReduce,
                      StrategyKind::kSyncIswitch, StrategyKind::kAsyncPs,
                      StrategyKind::kAsyncIswitch),
    [](const auto &info) {
        switch (info.param) {
          case StrategyKind::kSyncPs: return "SyncPs";
          case StrategyKind::kSyncAllReduce: return "SyncAr";
          case StrategyKind::kSyncIswitch: return "SyncIsw";
          case StrategyKind::kAsyncPs: return "AsyncPs";
          case StrategyKind::kAsyncIswitch: return "AsyncIsw";
          case StrategyKind::kSyncShardedPs: return "ShardedPs";
        }
        return "?";
    });

/**
 * The paper's Table 4 observation: all three synchronous strategies
 * perform the same computation. Identically seeded single rounds must
 * produce the same post-update weights up to floating-point
 * reassociation (the strategies sum contributions in different
 * orders); beyond one round, reassociation noise can flip sampled
 * actions, so weight equality is the right invariant to test.
 */
TEST(SyncEquivalence, OneRoundWeightsMatchAcrossStrategies)
{
    auto weights_after_one_round = [](StrategyKind k) {
        JobConfig cfg = quickConfig(rl::Algo::kA2c, k, 1);
        auto job = makeJob(cfg);
        job->run();
        ml::Vec w;
        job->workerAgent(0).getWeights(w);
        return w;
    };
    const ml::Vec ps = weights_after_one_round(StrategyKind::kSyncPs);
    const ml::Vec ar = weights_after_one_round(StrategyKind::kSyncAllReduce);
    const ml::Vec isw = weights_after_one_round(StrategyKind::kSyncIswitch);
    ASSERT_EQ(ps.size(), isw.size());
    ASSERT_EQ(ar.size(), isw.size());
    for (std::size_t i = 0; i < isw.size(); ++i) {
        ASSERT_NEAR(ps[i], isw[i], 1e-5f) << "PS vs iSW at " << i;
        ASSERT_NEAR(ar[i], isw[i], 1e-5f) << "AR vs iSW at " << i;
    }
}

TEST(SyncEquivalence, IterationCountsAlwaysAgree)
{
    RunResult ps =
        runJob(quickConfig(rl::Algo::kA2c, StrategyKind::kSyncPs, 20));
    RunResult ar =
        runJob(quickConfig(rl::Algo::kA2c, StrategyKind::kSyncAllReduce, 20));
    RunResult isw =
        runJob(quickConfig(rl::Algo::kA2c, StrategyKind::kSyncIswitch, 20));
    EXPECT_EQ(ps.iterations, ar.iterations);
    EXPECT_EQ(ps.iterations, isw.iterations);
}

TEST(SyncEquivalence, IswitchFasterThanPsOnLargeModels)
{
    JobConfig ps = quickConfig(rl::Algo::kDqn, StrategyKind::kSyncPs, 8);
    JobConfig isw =
        quickConfig(rl::Algo::kDqn, StrategyKind::kSyncIswitch, 8);
    // Paper-scale wire (scaled 1/4 to keep the test quick).
    ps.wire_model_bytes = isw.wire_model_bytes =
        static_cast<std::uint64_t>(6.41 * 1024 * 1024 / 4);
    RunResult rps = runJob(ps);
    RunResult risw = runJob(isw);
    EXPECT_LT(risw.perIterationMs(), rps.perIterationMs());
    EXPECT_LT(risw.breakdown.meanMs(IterComponent::kGradAggregation),
              rps.breakdown.meanMs(IterComponent::kGradAggregation));
}

TEST(SyncIswitch, TargetRewardStopsEarly)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, StrategyKind::kSyncIswitch,
                                500);
    cfg.stop.target_reward = -1e9; // trivially satisfied
    cfg.stop.min_episodes = 1;
    RunResult res = runJob(cfg);
    EXPECT_TRUE(res.reached_target);
    EXPECT_LT(res.iterations, 500u);
}

TEST(SyncIswitch, SurvivesPacketLossViaHelp)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, StrategyKind::kSyncIswitch,
                                6);
    cfg.cluster.edge_link.loss_prob = 0.02; // 2% loss on every edge
    cfg.seed = 5;
    RunResult res = runJob(cfg);
    // Despite losses, all rounds completed via Help-based recovery.
    EXPECT_GE(res.iterations, 6u);
}

TEST(SyncIswitch, HierarchicalTreeMatchesStarWeights)
{
    // Hierarchical aggregation changes only the summation tree, so a
    // single round's post-update weights must match the flat switch
    // up to floating-point reassociation.
    auto one_round = [](bool tree) {
        JobConfig cfg =
            quickConfig(rl::Algo::kA2c, StrategyKind::kSyncIswitch, 1);
        cfg.num_workers = 6;
        cfg.use_tree = tree;
        cfg.cluster.per_rack = 3;
        auto job = makeJob(cfg);
        job->run();
        ml::Vec w;
        job->workerAgent(0).getWeights(w);
        return w;
    };
    const ml::Vec star = one_round(false);
    const ml::Vec tree = one_round(true);
    ASSERT_EQ(star.size(), tree.size());
    for (std::size_t i = 0; i < star.size(); ++i)
        ASSERT_NEAR(star[i], tree[i], 1e-5f) << "index " << i;
}

TEST(AsyncIswitch, StalenessBoundSkipsStaleGradients)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, StrategyKind::kAsyncIswitch,
                                40);
    cfg.staleness_bound = 0; // brutally tight: skips must happen
    auto job = std::make_unique<AsyncIswitchJob>(cfg);
    AsyncIswitchJob *raw = job.get();
    RunResult res = job->run();
    EXPECT_GE(res.iterations, 40u);
    EXPECT_GT(raw->gradientsCommitted(), 0u);
    // With S=0 and a pipelined LGC loop, some gradients get dropped.
    EXPECT_GT(raw->gradientsSkipped(), 0u);
}

TEST(AsyncIswitch, RelaxedBoundSkipsNothingWhenAggregationKeepsUp)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, StrategyKind::kAsyncIswitch,
                                30);
    cfg.staleness_bound = 100;
    auto job = std::make_unique<AsyncIswitchJob>(cfg);
    AsyncIswitchJob *raw = job.get();
    job->run();
    EXPECT_EQ(raw->gradientsSkipped(), 0u);
}

TEST(AsyncIswitch, SetHThresholdShortensUpdateInterval)
{
    // The SetH knob (Table 2): H=2 completes a broadcast after two
    // contributions, so updates come roughly twice as often as H=4.
    auto interval = [](std::uint32_t h) {
        JobConfig cfg =
            quickConfig(rl::Algo::kPpo, StrategyKind::kAsyncIswitch, 60);
        cfg.agg_threshold = h;
        return runJob(cfg).perIterationMs();
    };
    const double h4 = interval(4);
    const double h2 = interval(2);
    EXPECT_LT(h2, h4 * 0.7);
}

TEST(AsyncIswitch, SetHPinsSwitchThreshold)
{
    JobConfig cfg =
        quickConfig(rl::Algo::kPpo, StrategyKind::kAsyncIswitch, 5);
    cfg.agg_threshold = 2;
    auto job = makeJob(cfg);
    job->run();
    EXPECT_EQ(job->cluster().root->accelerator().threshold(), 2u);
}

TEST(AsyncPs, ServerCountsIterations)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, StrategyKind::kAsyncPs, 20);
    RunResult res = runJob(cfg);
    EXPECT_GE(res.iterations, 20u);
    // Async PS achieves a shorter update interval than one worker's
    // LGC (multiple workers feed one server).
    EXPECT_LT(res.perIterationMs(),
              sim::toMillis(cfg.profile.lgcMean()));
}

TEST(Jobs, ZeroWorkersRejected)
{
    JobConfig cfg = quickConfig(rl::Algo::kPpo, StrategyKind::kSyncPs, 1);
    cfg.num_workers = 0;
    EXPECT_THROW(runJob(cfg), std::invalid_argument);
}

TEST(Jobs, AllReduceNeedsTwoWorkers)
{
    JobConfig cfg =
        quickConfig(rl::Algo::kPpo, StrategyKind::kSyncAllReduce, 1);
    cfg.num_workers = 1;
    EXPECT_THROW(runJob(cfg), std::invalid_argument);
}

TEST(Jobs, ForBenchmarkPullsPaperWireSizes)
{
    const JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kDqn, StrategyKind::kSyncPs);
    EXPECT_NEAR(cfg.wire_model_bytes / (1024.0 * 1024.0), 6.41, 0.01);
    EXPECT_EQ(cfg.algo, rl::Algo::kDqn);
}

TEST(Jobs, SeedChangesOutcome)
{
    JobConfig a = quickConfig(rl::Algo::kA2c, StrategyKind::kSyncIswitch, 10);
    JobConfig b = a;
    b.seed = 999;
    RunResult ra = runJob(a);
    RunResult rb = runJob(b);
    // Different seeds explore differently (total time jitters too).
    EXPECT_NE(ra.total_time, rb.total_time);
}

TEST(Jobs, DeterministicForEqualSeeds)
{
    JobConfig cfg = quickConfig(rl::Algo::kA2c, StrategyKind::kSyncIswitch,
                                10);
    RunResult a = runJob(cfg);
    RunResult b = runJob(cfg);
    EXPECT_EQ(a.total_time, b.total_time);
    EXPECT_EQ(a.final_avg_reward, b.final_avg_reward);
}

} // namespace
} // namespace isw::dist
