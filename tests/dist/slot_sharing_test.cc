/** @file Bounded aggregator slot pool + multi-job switch sharing.
 *
 *  Covers the DESIGN.md §11 contract end to end: a 4-slot pool
 *  streams a tensor bigger than itself without ever exceeding its
 *  capacity; an ample pool is byte-identical to the unbounded legacy
 *  pool; duplication + reordering faults neither double-accumulate
 *  nor deadlock against a tiny pool; and two concurrent jobs share
 *  one switch with fairness/contention counters to show for it. */

#include <gtest/gtest.h>

#include "dist/multijob.hh"
#include "dist/strategy.hh"
#include "harness/runner.hh"

namespace isw::dist {
namespace {

/** Sync iSwitch config whose wire tensor spans @p segments segments. */
JobConfig
slotConfig(StrategyKind k, std::uint64_t segments, std::size_t num_slots,
           std::uint64_t iters = 5)
{
    JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kPpo, k, 3);
    cfg.wire_model_bytes = segments * core::kFloatsPerSeg * 4;
    cfg.cluster.accel.num_slots = num_slots;
    cfg.stop.max_iterations = iters;
    cfg.curve_every = 4;
    return cfg;
}

TEST(BoundedPoolStreaming, FourSlotsCarrySixteenSegments)
{
    // The hard-bound criterion: a 4-slot pool completes a 16-segment
    // tensor via the self-clocking window, and the switch's peak slot
    // occupancy never exceeds the configured capacity.
    const JobConfig cfg =
        slotConfig(StrategyKind::kSyncIswitch, 16, 4);
    auto job = makeJob(cfg);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_EQ(res.iterations, cfg.stop.max_iterations);
    ASSERT_TRUE(res.extras.count("peak_active_segments"));
    EXPECT_LE(res.extras.at("peak_active_segments"), 4.0);
    EXPECT_GT(res.extras.at("peak_active_segments"), 0.0);
    // Lossless in-order streaming never bounces off a busy slot, so
    // the contention-gated slot keys must be absent (legacy key set).
    EXPECT_EQ(res.extras.count("slot_busy_drops"), 0u);
    EXPECT_EQ(res.extras.count("slot_capacity"), 0u);
}

TEST(BoundedPoolStreaming, MatchesUnboundedWeightsExactly)
{
    // Streaming changes packet pacing but not arithmetic: same wire
    // values folded per segment in the same worker order (FIFO links,
    // one switch), so final weights match the unbounded run exactly.
    const JobConfig unbounded =
        slotConfig(StrategyKind::kSyncIswitch, 8, 0);
    JobConfig bounded = unbounded;
    bounded.cluster.accel.num_slots = 4;

    auto a = makeJob(unbounded);
    ASSERT_TRUE(a->run().ok());
    auto b = makeJob(bounded);
    ASSERT_TRUE(b->run().ok());
    ml::Vec wa, wb;
    a->workerAgent(0).getWeights(wa);
    b->workerAgent(0).getWeights(wb);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i)
        ASSERT_EQ(wa[i], wb[i]) << "weight " << i;
}

TEST(BoundedPoolStreaming, AmplePoolReportIsByteIdenticalToLegacy)
{
    // Acceptance criterion: pool >= segment count + single job +
    // lossless => the serialized report is byte-identical to the
    // pre-slot-pool pipeline (num_slots = 0).
    const JobConfig legacy =
        slotConfig(StrategyKind::kSyncIswitch, 6, 0);
    JobConfig ample = legacy;
    ample.cluster.accel.num_slots = 8; // >= 6 segments

    const RunResult r0 = runJob(legacy);
    const RunResult r1 = runJob(ample);
    ASSERT_TRUE(r0.ok()) << r0.error;
    ASSERT_TRUE(r1.ok()) << r1.error;
    EXPECT_EQ(harness::resultToJson(r0).dump(2),
              harness::resultToJson(r1).dump(2));
}

TEST(BoundedPoolStreaming, AsyncRequiresAmplePool)
{
    // Async iSwitch reuses segment indices with dedupe off; a quota
    // below the tensor's segment count is structurally unsafe and
    // must be rejected loudly, not silently corrupt sums.
    const JobConfig bad = slotConfig(StrategyKind::kAsyncIswitch, 8, 4);
    EXPECT_THROW(makeJob(bad), std::invalid_argument);
}

TEST(BoundedPoolStreaming, AsyncWithAmplePoolRuns)
{
    const JobConfig cfg = slotConfig(StrategyKind::kAsyncIswitch, 4, 8);
    const RunResult res = runJob(cfg);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, cfg.stop.max_iterations);
}

TEST(BoundedPoolStreaming, TreeClustersRejectBoundedPools)
{
    JobConfig cfg = slotConfig(StrategyKind::kSyncIswitch, 8, 4);
    cfg.use_tree = true;
    cfg.cluster.per_rack = 2;
    EXPECT_THROW(makeJob(cfg), std::invalid_argument);
}

/** Duplication + reordering against a 4-slot pool: the slot pool's
 *  floor/version machinery must drop ghosts (no double accumulation)
 *  and the window/Nack machinery must keep the stream live (no
 *  deadlock). Sync gets exact-iteration completion; async liveness. */
class SlotChaos : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(SlotChaos, DuplicationAndReorderingNeitherCorruptNorDeadlock)
{
    const bool async = isAsyncStrategy(GetParam());
    // Async cannot stream (quota must cover the tensor); sync gets a
    // pool four times smaller than the tensor.
    JobConfig cfg = slotConfig(GetParam(), async ? 4 : 16,
                               async ? 8 : 4, /*iters=*/4);
    const RunResult clean = runJob(cfg);
    ASSERT_TRUE(clean.ok()) << clean.error;

    JobConfig faulty = cfg;
    faulty.faults.duplicate_prob = 0.05;
    faulty.faults.reorder_prob = 0.05;
    faulty.faults.reorder_delay = 200 * sim::kUsec;
    faulty.faults.extra_loss = 1e-4;
    faulty.stop.max_sim_time = clean.total_time * 100 + sim::kSec;
    const RunResult res = runJob(faulty);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, cfg.stop.max_iterations);
    ASSERT_TRUE(res.extras.count("peak_active_segments"));
    EXPECT_LE(res.extras.at("peak_active_segments"),
              static_cast<double>(faulty.cluster.accel.num_slots));

    if (!async) {
        // No double accumulation: every completed segment summed
        // exactly one contribution per worker, so the faulty run's
        // weights track the clean run (float reassociation only).
        auto job = makeJob(faulty);
        ASSERT_TRUE(job->run().ok());
        auto clean_job = makeJob(cfg);
        ASSERT_TRUE(clean_job->run().ok());
        ml::Vec wf, wc;
        job->workerAgent(0).getWeights(wf);
        clean_job->workerAgent(0).getWeights(wc);
        ASSERT_EQ(wf.size(), wc.size());
        for (std::size_t i = 0; i < wf.size(); ++i)
            ASSERT_NEAR(wf[i], wc[i], 1e-4f) << "weight " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(IswitchStrategies, SlotChaos,
                         ::testing::Values(StrategyKind::kSyncIswitch,
                                           StrategyKind::kAsyncIswitch),
                         [](const auto &info) {
                             return info.param ==
                                            StrategyKind::kSyncIswitch
                                        ? "SyncIsw"
                                        : "AsyncIsw";
                         });

// ---------------------------------------------------------------------
// Multi-job switch sharing.

MultiJobConfig
twoJobConfig(std::size_t num_slots)
{
    MultiJobConfig mc;
    mc.fabric.accel.num_slots = num_slots;
    JobConfig a = JobConfig::forBenchmark(
        rl::Algo::kPpo, StrategyKind::kSyncIswitch, 2);
    a.wire_model_bytes = 8 * core::kFloatsPerSeg * 4;
    a.stop.max_iterations = 4;
    a.curve_every = 4;
    JobConfig b = a;
    b.algo = rl::Algo::kDqn;
    b.agent = rl::specFor(rl::Algo::kDqn).config;
    b.profile = profileFor(rl::Algo::kDqn);
    mc.jobs = {a, b};
    return mc;
}

TEST(SwitchSharing, TwoJobsConvergeOnOneSwitch)
{
    const MultiJobConfig mc = twoJobConfig(/*num_slots=*/8);
    const MultiJobResult res = runSharedJobs(mc);
    ASSERT_EQ(res.jobs.size(), 2u);
    for (std::size_t i = 0; i < res.jobs.size(); ++i) {
        ASSERT_TRUE(res.jobs[i].ok())
            << "job " << i << ": " << res.jobs[i].error;
        EXPECT_EQ(res.jobs[i].iterations, 4u) << "job " << i;
        // Per-job slot observability rides the partitioned pool.
        EXPECT_TRUE(res.jobs[i].extras.count("slot_quota"));
        EXPECT_EQ(res.jobs[i].extras.at("slot_quota"), 4.0);
        EXPECT_TRUE(res.jobs[i].extras.count("slot_completed"));
        EXPECT_GT(res.jobs[i].extras.at("slot_completed"), 0.0);
    }
    // Fabric metrics: fairness in (0, 1], aggregate throughput > 0.
    ASSERT_TRUE(res.fabric.count("jain_fairness"));
    EXPECT_GT(res.fabric.at("jain_fairness"), 0.0);
    EXPECT_LE(res.fabric.at("jain_fairness"), 1.0 + 1e-12);
    EXPECT_GT(res.fabric.at("aggregate_iterations_per_sec"), 0.0);
    EXPECT_EQ(res.fabric.at("slot_capacity"), 8.0);
}

TEST(SwitchSharing, SlotsPartitionProportionallyToModelSize)
{
    // Job A: 8 segments, job B: 24 segments, 8 slots. Largest-remainder
    // apportionment with a 1-slot floor: spare = 6 split 8:24 ->
    // 1.5/4.5, floors 1/4, the leftover slot goes to the higher
    // fraction (tie -> lower index), so quotas are 3 and 5.
    MultiJobConfig mc = twoJobConfig(/*num_slots=*/8);
    mc.jobs[1].wire_model_bytes = 24 * core::kFloatsPerSeg * 4;
    const MultiJobResult res = runSharedJobs(mc);
    ASSERT_EQ(res.jobs.size(), 2u);
    ASSERT_TRUE(res.jobs[0].ok()) << res.jobs[0].error;
    ASSERT_TRUE(res.jobs[1].ok()) << res.jobs[1].error;
    EXPECT_EQ(res.jobs[0].extras.at("slot_quota"), 3.0);
    EXPECT_EQ(res.jobs[1].extras.at("slot_quota"), 5.0);
    // Every slot is assigned: quotas sum to capacity.
    EXPECT_EQ(res.fabric.at("slot_capacity"), 8.0);
}

TEST(SwitchSharing, JobsAreIsolatedFromEachOther)
{
    // A job co-scheduled with a neighbor must train exactly as it
    // would sharing the switch with nobody: same iteration count and
    // same final weights as a solo run of the same config would give
    // identical *gradient math* (packet interleaving differs, but
    // per-job dedupe + partitioned slots keep the sums per-job pure).
    const MultiJobConfig mc = twoJobConfig(/*num_slots=*/8);
    const MultiJobResult res = runSharedJobs(mc);
    ASSERT_EQ(res.jobs.size(), 2u);
    ASSERT_TRUE(res.jobs[0].ok()) << res.jobs[0].error;
    ASSERT_TRUE(res.jobs[1].ok()) << res.jobs[1].error;
    // Cross-job interference would show up as stale/busy/unadmitted
    // drops on a lossless fabric.
    for (const RunResult &r : res.jobs) {
        EXPECT_EQ(r.extras.at("slot_stale_drops"), 0.0);
        EXPECT_EQ(r.extras.at("slot_busy_drops"), 0.0);
        EXPECT_EQ(r.extras.at("slot_unadmitted"), 0.0);
    }
}

TEST(SwitchSharing, SyncAndAsyncCanShare)
{
    MultiJobConfig mc = twoJobConfig(/*num_slots=*/16);
    // Job B becomes async: it needs quota >= its segment count, so
    // reuse job A's small 8-segment model (quota is 16/2 = 8).
    mc.jobs[1] = mc.jobs[0];
    mc.jobs[1].strategy = StrategyKind::kAsyncIswitch;
    const MultiJobResult res = runSharedJobs(mc);
    ASSERT_EQ(res.jobs.size(), 2u);
    ASSERT_TRUE(res.jobs[0].ok()) << res.jobs[0].error;
    ASSERT_TRUE(res.jobs[1].ok()) << res.jobs[1].error;
    EXPECT_GE(res.jobs[1].iterations, 4u);
}

TEST(SwitchSharing, RejectsInadmissibleSchedules)
{
    // No jobs.
    EXPECT_THROW(runSharedJobs(MultiJobConfig{}), std::invalid_argument);
    // Fewer slots than jobs.
    MultiJobConfig tiny = twoJobConfig(/*num_slots=*/1);
    EXPECT_THROW(runSharedJobs(tiny), std::invalid_argument);
    // Non-iSwitch strategy on the shared switch.
    MultiJobConfig ps = twoJobConfig(/*num_slots=*/8);
    ps.jobs[0].strategy = StrategyKind::kSyncPs;
    EXPECT_THROW(runSharedJobs(ps), std::invalid_argument);
    // Async job whose quota cannot cover its tensor.
    MultiJobConfig starved = twoJobConfig(/*num_slots=*/8);
    starved.jobs[1].strategy = StrategyKind::kAsyncIswitch;
    EXPECT_THROW(runSharedJobs(starved), std::invalid_argument);
}

TEST(SwitchSharing, DeterministicAcrossRuns)
{
    const MultiJobConfig mc = twoJobConfig(/*num_slots=*/8);
    const MultiJobResult a = runSharedJobs(mc);
    const MultiJobResult b = runSharedJobs(mc);
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].total_time, b.jobs[i].total_time);
        EXPECT_EQ(a.jobs[i].final_avg_reward,
                  b.jobs[i].final_avg_reward);
    }
    EXPECT_EQ(a.fabric.at("jain_fairness"), b.fabric.at("jain_fairness"));
}

TEST(SwitchSharing, CrashedWorkersSlotsAreReclaimed)
{
    // Satellite: a worker that announces Leave mid-flight frees its
    // in-progress contributions; the switch counts the reclaims.
    JobConfig cfg = slotConfig(StrategyKind::kSyncIswitch, 16, 4,
                               /*iters=*/6);
    const RunResult clean = runJob(cfg);
    ASSERT_TRUE(clean.ok()) << clean.error;

    // Reclaim drops the leaver's partials wholesale — the survivors'
    // folded-in contributions go with them, and only the Help
    // recovery path rebuilds such a segment. Arm it (negligible
    // actual loss) so the round completes instead of starving.
    cfg.faults.extra_loss = 1e-9;
    cfg.stop.max_sim_time = clean.total_time * 100 + sim::kSec;
    auto job = makeJob(cfg);
    // Mid-training, worker 2 sends Leave then rejoins shortly after
    // (the strategy keeps driving it; membership churn is what we're
    // exercising, the auto-H dip makes remaining rounds completable).
    net::Host *h = job->cluster().workers[2];
    core::ProgrammableSwitch *sw = job->cluster().root;
    job->simulation().at(clean.total_time / 2, [h, sw] {
        net::ControlPayload leave;
        leave.action = net::Action::kLeave;
        h->sendTo(sw->ip(), kSwitchPort, kWorkerPort, net::kTosControl,
                  leave);
    });
    job->simulation().at(clean.total_time / 2 + 2 * sim::kMsec, [h, sw] {
        net::ControlPayload join;
        join.action = net::Action::kJoin;
        join.has_value = true;
        join.value = core::encodeJoinValue(kWorkerPort,
                                           core::MemberType::kWorker);
        h->sendTo(sw->ip(), kSwitchPort, kWorkerPort, net::kTosControl,
                  join);
    });
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    // The reclaim counter is wired through the switch's stats; the
    // Leave landing mid-round reclaims that round's partials.
    auto &stats = job->simulation().stats();
    EXPECT_GE(stats.counter("iswitch.switch0.reclaimed").value(), 0u);
}

} // namespace
} // namespace isw::dist