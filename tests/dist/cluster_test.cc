/** @file Cluster builder tests (star and rack-scale tree). */

#include <gtest/gtest.h>

#include "dist/cluster.hh"

namespace isw::dist {
namespace {

TEST(StarCluster, BuildsWorkersAndMembership)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 4;
    Cluster c = buildStarCluster(s, cfg);
    EXPECT_EQ(c.workers.size(), 4u);
    ASSERT_EQ(c.leaves.size(), 1u);
    EXPECT_EQ(c.root, c.leaves[0]);
    EXPECT_EQ(c.ps, nullptr);
    EXPECT_EQ(c.root->controlPlane().table().size(), 4u);
    EXPECT_EQ(c.root->accelerator().threshold(), 4u);
    EXPECT_TRUE(c.root->isRoot());
}

TEST(StarCluster, PsNodeIsNotAMember)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 2;
    cfg.with_ps = true;
    Cluster c = buildStarCluster(s, cfg);
    ASSERT_NE(c.ps, nullptr);
    EXPECT_EQ(c.root->controlPlane().table().size(), 2u);
    // The PS host is routable through the switch.
    EXPECT_TRUE(c.root->routeFor(c.ps->ip()).has_value());
}

TEST(StarCluster, LeafOfAllWorkersIsTheSwitch)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 3;
    Cluster c = buildStarCluster(s, cfg);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(c.leafOf(i), c.root);
}

TEST(TreeCluster, RackLayoutMatchesPaperSetup)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 9;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    EXPECT_EQ(c.workers.size(), 9u);
    EXPECT_EQ(c.leaves.size(), 3u);
    EXPECT_TRUE(c.root->isRoot());
    for (auto *tor : c.leaves) {
        EXPECT_FALSE(tor->isRoot());
        EXPECT_EQ(tor->controlPlane().table().size(), 3u);
        EXPECT_EQ(tor->accelerator().threshold(), 3u);
    }
    // The core aggregates across the three ToRs.
    EXPECT_EQ(c.root->controlPlane().table().size(), 3u);
    EXPECT_EQ(c.root->accelerator().threshold(), 3u);
}

TEST(TreeCluster, PartialLastRack)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    EXPECT_EQ(c.leaves.size(), 2u);
    EXPECT_EQ(c.leaves[0]->controlPlane().table().size(), 3u);
    EXPECT_EQ(c.leaves[1]->controlPlane().table().size(), 1u);
    EXPECT_EQ(c.leaves[1]->accelerator().threshold(), 1u);
}

TEST(TreeCluster, LeafOfMapsWorkersToRacks)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 6;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    EXPECT_EQ(c.leafOf(0), c.leaves[0]);
    EXPECT_EQ(c.leafOf(2), c.leaves[0]);
    EXPECT_EQ(c.leafOf(3), c.leaves[1]);
    EXPECT_EQ(c.leafOf(5), c.leaves[1]);
}

TEST(TreeCluster, CrossRackRoutingWorks)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 6;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    int got = 0;
    c.workers[5]->setReceiveHandler([&](net::PacketPtr) { ++got; });
    c.workers[0]->sendTo(c.workers[5]->ip(), 7, 7, 0,
                         net::RawPayload{64, 0});
    s.run();
    EXPECT_EQ(got, 1);
}

TEST(TreeCluster, RejectsZeroPerRack)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.per_rack = 0;
    EXPECT_THROW(buildTreeCluster(s, cfg), std::invalid_argument);
}

TEST(TreeCluster, UnevenLastRackThresholdsAndDomains)
{
    // 7 workers in racks of 3: occupancy 3/3/1. Each ToR's threshold
    // must track its own occupancy, not per_rack, or the last rack's
    // aggregation never fires.
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 7;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    ASSERT_EQ(c.leaves.size(), 3u);
    const std::size_t expect[] = {3, 3, 1};
    for (std::size_t r = 0; r < 3; ++r) {
        EXPECT_EQ(c.leaves[r]->controlPlane().table().size(), expect[r]);
        EXPECT_EQ(c.leaves[r]->accelerator().threshold(), expect[r]);
        EXPECT_EQ(c.leaves[r]->domain(), r + 1);
    }
    EXPECT_EQ(c.root->accelerator().threshold(), 3u); // 3 ToRs
    EXPECT_EQ(c.sim_domains, 4u); // 3 racks + fabric domain 0
    EXPECT_EQ(c.domain_lookahead, cfg.uplink.propagation);
    for (std::size_t i = 0; i < 7; ++i)
        EXPECT_EQ(c.workers[i]->domain(), i / 3 + 1);
}

TEST(FatTreeCluster, LayoutThresholdsAndDomains)
{
    // 8 workers, racks of 2, pods of 2 -> 4 racks, 2 AGGs, 1 core.
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 8;
    cfg.per_rack = 2;
    cfg.racks_per_pod = 2;
    Cluster c = buildFatTreeCluster(s, cfg);
    EXPECT_EQ(c.workers.size(), 8u);
    ASSERT_EQ(c.leaves.size(), 4u);
    ASSERT_EQ(c.aggs.size(), 2u);
    EXPECT_TRUE(c.root->isRoot());
    for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_EQ(c.leaves[r]->controlPlane().table().size(), 2u);
        EXPECT_EQ(c.leaves[r]->accelerator().threshold(), 2u);
        EXPECT_EQ(c.leaves[r]->domain(), r + 1);
        EXPECT_EQ(c.leafOf(2 * r), c.leaves[r]);
    }
    for (auto *agg : c.aggs) {
        EXPECT_FALSE(agg->isRoot());
        EXPECT_EQ(agg->controlPlane().table().size(), 2u); // 2 ToRs
        EXPECT_EQ(agg->accelerator().threshold(), 2u);
        EXPECT_EQ(agg->domain(), 0u); // fabric domain
    }
    EXPECT_EQ(c.root->controlPlane().table().size(), 2u); // 2 AGGs
    EXPECT_EQ(c.root->accelerator().threshold(), 2u);
    EXPECT_EQ(c.sim_domains, 5u); // 4 racks + fabric
    EXPECT_EQ(c.domain_lookahead, cfg.uplink.propagation);
}

TEST(FatTreeCluster, UnevenLastRackTracksOccupancy)
{
    // 7 workers, racks of 3, pods of 2 -> racks 3/3/1, pods of 2/1
    // racks. Thresholds follow actual membership at every level.
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 7;
    cfg.per_rack = 3;
    cfg.racks_per_pod = 2;
    Cluster c = buildFatTreeCluster(s, cfg);
    ASSERT_EQ(c.leaves.size(), 3u);
    ASSERT_EQ(c.aggs.size(), 2u);
    const std::size_t expect[] = {3, 3, 1};
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_EQ(c.leaves[r]->accelerator().threshold(), expect[r]);
    EXPECT_EQ(c.aggs[0]->accelerator().threshold(), 2u); // racks 0,1
    EXPECT_EQ(c.aggs[1]->accelerator().threshold(), 1u); // rack 2 only
    EXPECT_EQ(c.root->accelerator().threshold(), 2u);    // 2 pods
}

TEST(FatTreeCluster, CrossPodRoutingWorks)
{
    // Worker 0 (pod 0) to the last worker (pod 1): the packet must
    // climb ToR -> AGG -> core and descend the far side.
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 8;
    cfg.per_rack = 2;
    cfg.racks_per_pod = 2;
    Cluster c = buildFatTreeCluster(s, cfg);
    int got = 0;
    c.workers[7]->setReceiveHandler([&](net::PacketPtr) { ++got; });
    c.workers[0]->sendTo(c.workers[7]->ip(), 7, 7, 0,
                         net::RawPayload{64, 0});
    s.run();
    EXPECT_EQ(got, 1);
}

TEST(FatTreeCluster, PsAttachesToRackZero)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.per_rack = 2;
    cfg.racks_per_pod = 2;
    cfg.with_ps = true;
    Cluster c = buildFatTreeCluster(s, cfg);
    ASSERT_NE(c.ps, nullptr);
    EXPECT_EQ(c.ps->domain(), 1u); // rack 0's shard domain
    EXPECT_TRUE(c.root->routeFor(c.ps->ip()).has_value());
    // The PS is reachable but not an aggregation member.
    EXPECT_EQ(c.leaves[0]->controlPlane().table().size(), 2u);
}

TEST(FatTreeCluster, RejectsBadShapes)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.per_rack = 0;
    EXPECT_THROW(buildFatTreeCluster(s, cfg), std::invalid_argument);
    cfg.per_rack = 3;
    cfg.racks_per_pod = 0;
    EXPECT_THROW(buildFatTreeCluster(s, cfg), std::invalid_argument);
    cfg.racks_per_pod = 4;
    cfg.per_rack = 1;
    cfg.num_workers = 251; // 251 racks: outside the 10.0.rack.x plan
    EXPECT_THROW(buildFatTreeCluster(s, cfg), std::invalid_argument);
}

} // namespace
} // namespace isw::dist
