/** @file Cluster builder tests (star and rack-scale tree). */

#include <gtest/gtest.h>

#include "dist/cluster.hh"

namespace isw::dist {
namespace {

TEST(StarCluster, BuildsWorkersAndMembership)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 4;
    Cluster c = buildStarCluster(s, cfg);
    EXPECT_EQ(c.workers.size(), 4u);
    ASSERT_EQ(c.leaves.size(), 1u);
    EXPECT_EQ(c.root, c.leaves[0]);
    EXPECT_EQ(c.ps, nullptr);
    EXPECT_EQ(c.root->controlPlane().table().size(), 4u);
    EXPECT_EQ(c.root->accelerator().threshold(), 4u);
    EXPECT_TRUE(c.root->isRoot());
}

TEST(StarCluster, PsNodeIsNotAMember)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 2;
    cfg.with_ps = true;
    Cluster c = buildStarCluster(s, cfg);
    ASSERT_NE(c.ps, nullptr);
    EXPECT_EQ(c.root->controlPlane().table().size(), 2u);
    // The PS host is routable through the switch.
    EXPECT_TRUE(c.root->routeFor(c.ps->ip()).has_value());
}

TEST(StarCluster, LeafOfAllWorkersIsTheSwitch)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 3;
    Cluster c = buildStarCluster(s, cfg);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(c.leafOf(i), c.root);
}

TEST(TreeCluster, RackLayoutMatchesPaperSetup)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 9;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    EXPECT_EQ(c.workers.size(), 9u);
    EXPECT_EQ(c.leaves.size(), 3u);
    EXPECT_TRUE(c.root->isRoot());
    for (auto *tor : c.leaves) {
        EXPECT_FALSE(tor->isRoot());
        EXPECT_EQ(tor->controlPlane().table().size(), 3u);
        EXPECT_EQ(tor->accelerator().threshold(), 3u);
    }
    // The core aggregates across the three ToRs.
    EXPECT_EQ(c.root->controlPlane().table().size(), 3u);
    EXPECT_EQ(c.root->accelerator().threshold(), 3u);
}

TEST(TreeCluster, PartialLastRack)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    EXPECT_EQ(c.leaves.size(), 2u);
    EXPECT_EQ(c.leaves[0]->controlPlane().table().size(), 3u);
    EXPECT_EQ(c.leaves[1]->controlPlane().table().size(), 1u);
    EXPECT_EQ(c.leaves[1]->accelerator().threshold(), 1u);
}

TEST(TreeCluster, LeafOfMapsWorkersToRacks)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 6;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    EXPECT_EQ(c.leafOf(0), c.leaves[0]);
    EXPECT_EQ(c.leafOf(2), c.leaves[0]);
    EXPECT_EQ(c.leafOf(3), c.leaves[1]);
    EXPECT_EQ(c.leafOf(5), c.leaves[1]);
}

TEST(TreeCluster, CrossRackRoutingWorks)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.num_workers = 6;
    cfg.per_rack = 3;
    Cluster c = buildTreeCluster(s, cfg);
    int got = 0;
    c.workers[5]->setReceiveHandler([&](net::PacketPtr) { ++got; });
    c.workers[0]->sendTo(c.workers[5]->ip(), 7, 7, 0,
                         net::RawPayload{64, 0});
    s.run();
    EXPECT_EQ(got, 1);
}

TEST(TreeCluster, RejectsZeroPerRack)
{
    sim::Simulation s{1};
    ClusterConfig cfg;
    cfg.per_rack = 0;
    EXPECT_THROW(buildTreeCluster(s, cfg), std::invalid_argument);
}

} // namespace
} // namespace isw::dist
