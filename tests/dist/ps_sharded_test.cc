/** @file Tests for the sharded parameter-server extension baseline. */

#include <gtest/gtest.h>

#include "dist/strategy.hh"

namespace isw::dist {
namespace {

JobConfig
shardedConfig(std::size_t shards, std::uint64_t iters,
              std::uint64_t wire = 0)
{
    JobConfig cfg = JobConfig::forBenchmark(
        rl::Algo::kA2c, StrategyKind::kSyncShardedPs, 4);
    cfg.wire_model_bytes = wire;
    cfg.ps_shards = shards;
    cfg.stop.max_iterations = iters;
    return cfg;
}

TEST(ShardedPs, RunsWithVariousShardCounts)
{
    for (std::size_t shards : {1u, 2u, 4u}) {
        RunResult res = runJob(shardedConfig(shards, 6));
        EXPECT_GE(res.iterations, 6u) << shards << " shards";
    }
}

TEST(ShardedPs, ClusterHasShardHosts)
{
    JobConfig cfg = shardedConfig(3, 1);
    auto job = makeJob(cfg);
    EXPECT_EQ(job->cluster().ps_shards.size(), 3u);
    EXPECT_EQ(job->cluster().ps, job->cluster().ps_shards[0]);
    job->run();
}

TEST(ShardedPs, OneRoundWeightsMatchPlainPs)
{
    auto one_round = [](StrategyKind k, std::size_t shards) {
        JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kA2c, k, 4);
        cfg.wire_model_bytes = 0;
        cfg.ps_shards = shards;
        cfg.stop.max_iterations = 1;
        auto job = makeJob(cfg);
        job->run();
        ml::Vec w;
        job->workerAgent(0).getWeights(w);
        return w;
    };
    const ml::Vec ps = one_round(StrategyKind::kSyncPs, 1);
    const ml::Vec sharded = one_round(StrategyKind::kSyncShardedPs, 4);
    ASSERT_EQ(ps.size(), sharded.size());
    for (std::size_t i = 0; i < ps.size(); ++i)
        ASSERT_NEAR(ps[i], sharded[i], 1e-5f) << "index " << i;
}

TEST(ShardedPs, ShardingRelievesTheCentralLink)
{
    // Big model: four shard links drain the aggregate roughly in
    // parallel where the single PS link serializes it.
    const std::uint64_t wire = 4 * 1024 * 1024;
    JobConfig plain = JobConfig::forBenchmark(
        rl::Algo::kDqn, StrategyKind::kSyncPs, 4);
    plain.wire_model_bytes = wire;
    plain.stop.max_iterations = 6;
    JobConfig sharded = JobConfig::forBenchmark(
        rl::Algo::kDqn, StrategyKind::kSyncShardedPs, 4);
    sharded.wire_model_bytes = wire;
    sharded.ps_shards = 4;
    sharded.stop.max_iterations = 6;
    const RunResult rp = runJob(plain);
    const RunResult rs = runJob(sharded);
    EXPECT_LT(rs.perIterationMs(), rp.perIterationMs());
}

TEST(ShardedPs, SingleShardBehavesLikePlainPsTiming)
{
    // K=1 sharded PS is the plain PS protocol with different transfer
    // bookkeeping; per-iteration times should be close.
    JobConfig plain = JobConfig::forBenchmark(
        rl::Algo::kPpo, StrategyKind::kSyncPs, 4);
    plain.stop.max_iterations = 10;
    JobConfig sharded = JobConfig::forBenchmark(
        rl::Algo::kPpo, StrategyKind::kSyncShardedPs, 4);
    sharded.ps_shards = 1;
    sharded.stop.max_iterations = 10;
    const RunResult rp = runJob(plain);
    const RunResult rs = runJob(sharded);
    EXPECT_NEAR(rs.perIterationMs(), rp.perIterationMs(),
                rp.perIterationMs() * 0.05);
}

TEST(ShardedPs, TreeTopologyPlacesShardsAcrossRacks)
{
    // Multi-rack fabrics used to reject K > 1; shards now land
    // round-robin over racks (shard k in rack k % racks), each in its
    // rack's shard domain.
    JobConfig cfg = shardedConfig(3, 1);
    cfg.use_tree = true;
    cfg.cluster.per_rack = 3; // 2 racks
    auto job = makeJob(cfg);
    const Cluster &c = job->cluster();
    ASSERT_EQ(c.ps_shards.size(), 3u);
    EXPECT_EQ(c.ps_shards[0]->domain(), 1u);
    EXPECT_EQ(c.ps_shards[1]->domain(), 2u);
    EXPECT_EQ(c.ps_shards[2]->domain(), 1u); // wraps
}

} // namespace
} // namespace isw::dist
