/** @file Compute-profile calibration tests. */

#include <gtest/gtest.h>

#include "dist/timing.hh"

namespace isw::dist {
namespace {

TEST(Timing, ComponentNamesMatchPaperLegend)
{
    EXPECT_STREQ(componentName(IterComponent::kGradAggregation),
                 "Grad Aggregation");
    EXPECT_STREQ(componentName(IterComponent::kAgentAction), "Agent Action");
    EXPECT_STREQ(componentName(IterComponent::kOthers), "Others");
}

TEST(Timing, LgcComponentsExcludeAggAndUpdate)
{
    EXPECT_TRUE(isLgcComponent(IterComponent::kForwardPass));
    EXPECT_TRUE(isLgcComponent(IterComponent::kBufferSampling));
    EXPECT_FALSE(isLgcComponent(IterComponent::kGradAggregation));
    EXPECT_FALSE(isLgcComponent(IterComponent::kWeightUpdate));
    EXPECT_FALSE(isLgcComponent(IterComponent::kOthers));
}

TEST(Timing, ProfilesExistForAllAlgorithms)
{
    for (auto algo : {rl::Algo::kDqn, rl::Algo::kA2c, rl::Algo::kPpo,
                      rl::Algo::kDdpg}) {
        const ComputeProfile p = profileFor(algo);
        EXPECT_GT(p.lgcMean(), 0u) << rl::algoName(algo);
    }
}

TEST(Timing, DqnLocalComputeMatchesCalibration)
{
    // Table 4: 81.6 ms/iter x (1 - 0.832 agg fraction) ~= 13.7 ms of
    // local work; LGC is that minus weight update and "others".
    const ComputeProfile p = profileFor(rl::Algo::kDqn);
    EXPECT_NEAR(sim::toMillis(p.lgcMean()), 12.4, 0.2);
}

TEST(Timing, SampleIsExactWithoutJitter)
{
    ComputeProfile p = profileFor(rl::Algo::kPpo);
    p.jitter_cv = 0.0;
    sim::Rng rng(1);
    EXPECT_EQ(p.sample(IterComponent::kForwardPass, rng),
              p.mean[static_cast<std::size_t>(IterComponent::kForwardPass)]);
}

TEST(Timing, SampleJitterCentersOnMean)
{
    ComputeProfile p = profileFor(rl::Algo::kDdpg);
    sim::Rng rng(2);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(
            p.sample(IterComponent::kEnvironReact, rng));
    const double mean = static_cast<double>(
        p.mean[static_cast<std::size_t>(IterComponent::kEnvironReact)]);
    EXPECT_NEAR(sum / n / mean, 1.0, 0.01);
}

TEST(Timing, ZeroMeanComponentSamplesZero)
{
    ComputeProfile p{};
    sim::Rng rng(3);
    EXPECT_EQ(p.sample(IterComponent::kGpuCopy, rng), 0u);
}

TEST(Timing, ScaledProfileShrinksUniformly)
{
    const ComputeProfile p = profileFor(rl::Algo::kA2c);
    const ComputeProfile half = scaled(p, 0.5);
    EXPECT_NEAR(static_cast<double>(half.lgcMean()),
                static_cast<double>(p.lgcMean()) * 0.5, 2.0);
}

TEST(Timing, MujocoEnvsCostMoreThanAtariPerStep)
{
    // The calibration encodes that simulated-physics environments are
    // pricier per interaction than Atari-style ones, relative to their
    // iteration budget.
    const auto ppo = profileFor(rl::Algo::kPpo);
    const auto er =
        static_cast<std::size_t>(IterComponent::kEnvironReact);
    EXPECT_GT(static_cast<double>(ppo.mean[er]) /
                  static_cast<double>(ppo.lgcMean()),
              0.3);
}

} // namespace
} // namespace isw::dist
