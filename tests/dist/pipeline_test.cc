/** @file Pre/post-processor pipeline (DESIGN.md §14): each precision's
 *  encode path must round-trip through VectorAssembler's decode path,
 *  the fp32 bypass must be bit-identical to the legacy wire fill, and
 *  every strategy must finish a short job at every precision with the
 *  quant counters exported (fp32 exporting none). */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "dist/pipeline.hh"
#include "dist/strategy.hh"
#include "dist/transport.hh"
#include "ml/quantize.hh"
#include "sim/random.hh"

namespace isw::dist {
namespace {

std::vector<float>
randomGrads(std::size_t n, std::uint64_t seed = 11)
{
    sim::Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-1.0, 1.0)) * 0.1f;
    return v;
}

/** Push @p logical through @p ppp segment by segment into @p rx,
 *  exactly as sendVector chunks it. Returns the encoded chunks'
 *  stamped exponents (one per segment). */
std::vector<std::int8_t>
sendThrough(PrePostProcessor &ppp, std::span<const float> logical,
            const WireFormat &fmt, VectorAssembler &rx,
            std::span<const std::int8_t> forced = {})
{
    std::vector<std::int8_t> exps;
    const std::uint64_t fps = fmt.floatsPerSeg();
    for (std::uint64_t seg = 0; seg < fmt.segments(); ++seg) {
        const std::uint64_t begin = seg * fps;
        std::span<const float> part;
        if (begin < logical.size())
            part = logical.subspan(
                begin, std::min<std::size_t>(fps, logical.size() - begin));
        net::ChunkPayload c;
        c.seg = seg;
        ppp.encodeSeg(part, c,
                      seg < forced.size() ? forced[seg] : kAutoQexp);
        c.wire_floats = static_cast<std::uint32_t>(c.values.size());
        exps.push_back(c.qexp);
        rx.offer(c);
    }
    return exps;
}

TEST(PipelineFactory, BuildsTheMatchingProcessor)
{
    for (auto prec : {net::Precision::kFp32, net::Precision::kFp16,
                      net::Precision::kInt32}) {
        auto ppp = makePrePostProcessor(prec);
        ASSERT_NE(ppp, nullptr);
        EXPECT_EQ(ppp->precision(), prec);
        EXPECT_EQ(ppp->stats().segments, 0u);
        EXPECT_EQ(ppp->stats().value_clamps, 0u);
        EXPECT_EQ(ppp->stats().exp_clamps, 0u);
    }
}

TEST(PipelineBypass, BitIdenticalRoundTripAndLegacyStamps)
{
    const std::vector<float> logical = randomGrads(1000);
    const WireFormat fmt = WireFormat::forVector(logical.size(), 0, false);
    BypassPpp ppp;
    VectorAssembler rx(fmt);

    const std::uint64_t fps = fmt.floatsPerSeg();
    for (std::uint64_t seg = 0; seg < fmt.segments(); ++seg) {
        const std::uint64_t begin = seg * fps;
        const auto part = std::span<const float>(logical).subspan(
            begin, std::min<std::size_t>(fps, logical.size() - begin));
        net::ChunkPayload c;
        c.seg = seg;
        ppp.encodeSeg(part, c, kAutoQexp);
        // Legacy wire contract: raw fp32 words, (kFp32, qexp 0) stamps
        // so the packed Seg word is bit-identical to the old format.
        EXPECT_EQ(c.prec, net::Precision::kFp32);
        EXPECT_EQ(c.qexp, 0);
        ASSERT_EQ(c.values.size(), part.size());
        for (std::size_t i = 0; i < part.size(); ++i)
            ASSERT_EQ(std::bit_cast<std::uint32_t>(c.values[i]),
                      std::bit_cast<std::uint32_t>(part[i]));
        rx.offer(c);
    }
    ASSERT_TRUE(rx.complete());
    EXPECT_EQ(ppp.stats().segments, fmt.segments());
    for (std::size_t i = 0; i < logical.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(rx.vector()[i]),
                  std::bit_cast<std::uint32_t>(logical[i]));
}

TEST(PipelineFp16, OddTailRoundTripsThroughAssembler)
{
    // 1001 floats: an odd logical count forces a half-filled final
    // wire word; fp16 also halves the segment count vs fp32.
    const std::vector<float> logical = randomGrads(1001);
    const WireFormat fmt = WireFormat::forVector(logical.size(), 0, false,
                                                 net::Precision::kFp16);
    const WireFormat f32 = WireFormat::forVector(logical.size(), 0, false);
    EXPECT_LT(fmt.segments(), f32.segments());

    Fp16Ppp ppp;
    VectorAssembler rx(fmt);
    sendThrough(ppp, logical, fmt, rx);
    ASSERT_TRUE(rx.complete());

    // floatsPerSeg is even, so per-segment packing pairs the same
    // halves as packing the whole vector at once.
    std::vector<float> wire((logical.size() + 1) / 2);
    std::vector<float> expect(logical.size());
    ml::packHalfWords(logical.data(), logical.size(), wire.data());
    ml::unpackHalfWords(wire.data(), logical.size(), expect.data());
    for (std::size_t i = 0; i < logical.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(rx.vector()[i]),
                  std::bit_cast<std::uint32_t>(expect[i]))
            << "float " << i;
}

TEST(PipelineInt32, AutoExponentMatchesReferenceCodec)
{
    const std::vector<float> logical = randomGrads(700);
    const WireFormat fmt = WireFormat::forVector(logical.size(), 0, false,
                                                 net::Precision::kInt32);
    Int32Ppp ppp(/*headroom=*/1);
    VectorAssembler rx(fmt);
    const std::vector<std::int8_t> exps = sendThrough(ppp, logical, fmt, rx);
    ASSERT_TRUE(rx.complete());

    // The pipeline must be plumbing, not a second codec: per segment,
    // its output is bit-identical to ml/quantize applied directly.
    const std::uint64_t fps = fmt.floatsPerSeg();
    for (std::uint64_t seg = 0; seg < fmt.segments(); ++seg) {
        const std::uint64_t begin = seg * fps;
        const std::size_t n =
            std::min<std::size_t>(fps, logical.size() - begin);
        const int e = ml::blockExponent(logical.data() + begin, n, 1);
        EXPECT_EQ(exps[seg], e);
        std::vector<float> wire(n), expect(n);
        ml::encodeBlockInt32(logical.data() + begin, n, e, wire.data());
        ml::decodeBlockInt32(wire.data(), n, e, expect.data());
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(std::bit_cast<std::uint32_t>(rx.vector()[begin + i]),
                      std::bit_cast<std::uint32_t>(expect[i]))
                << "seg " << seg << " float " << i;
    }
}

TEST(PipelineInt32, ForcedExponentIsStampedAndDecodedWith)
{
    const std::vector<float> logical = randomGrads(96);
    const WireFormat fmt = WireFormat::forVector(logical.size(), 0, false,
                                                 net::Precision::kInt32);
    ASSERT_EQ(fmt.segments(), 1u);
    Int32Ppp ppp;
    VectorAssembler rx(fmt);
    const std::vector<std::int8_t> forced{7};
    sendThrough(ppp, logical, fmt, rx, forced);
    ASSERT_TRUE(rx.complete());

    std::vector<float> wire(logical.size()), expect(logical.size());
    ml::encodeBlockInt32(logical.data(), logical.size(), 7, wire.data());
    ml::decodeBlockInt32(wire.data(), wire.size(), 7, expect.data());
    for (std::size_t i = 0; i < logical.size(); ++i)
        ASSERT_EQ(std::bit_cast<std::uint32_t>(rx.vector()[i]),
                  std::bit_cast<std::uint32_t>(expect[i]));
}

TEST(PipelineInt32, TooSmallForcedExponentCountsValueClamps)
{
    // Values near 1.0 at forced exponent -10 scale by 2^40: every
    // nonzero lane saturates at the rail and the stats must say so.
    std::vector<float> logical(8, 0.9f);
    net::ChunkPayload c;
    c.seg = 0;
    Int32Ppp ppp;
    ppp.encodeSeg(logical, c, /*forced_qexp=*/-10);
    EXPECT_EQ(c.qexp, -10);
    EXPECT_EQ(ppp.stats().value_clamps, logical.size());
    for (float w : c.values)
        EXPECT_EQ(std::bit_cast<std::int32_t>(w), ml::kQuantMax);
}

/** Every strategy must finish a short run at every precision; the
 *  quant counters appear iff the wire is actually quantized. */
class PipelineMatrix : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(PipelineMatrix, AllPrecisionsTrainToCompletion)
{
    for (auto prec : {net::Precision::kFp32, net::Precision::kFp16,
                      net::Precision::kInt32}) {
        JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kPpo, GetParam(), 4);
        cfg.wire_model_bytes = 0; // actual model size: fast tests
        cfg.stop.max_iterations = 4;
        cfg.curve_every = 4;
        cfg.precision = prec;
        const RunResult res = runJob(cfg);
        ASSERT_TRUE(res.ok())
            << strategyName(GetParam()) << "/" << net::precisionName(prec)
            << ": " << res.error;
        EXPECT_GE(res.iterations, 4u);
        if (prec == net::Precision::kFp32) {
            // Bypass runs must look exactly like a pre-pipeline build.
            EXPECT_EQ(res.extras.count("pipeline_segments"), 0u);
            EXPECT_EQ(res.extras.count("quant_value_clamps"), 0u);
        } else {
            ASSERT_TRUE(res.extras.count("pipeline_segments"))
                << strategyName(GetParam()) << "/"
                << net::precisionName(prec);
            EXPECT_GT(res.extras.at("pipeline_segments"), 0.0);
            EXPECT_TRUE(res.extras.count("quant_value_clamps"));
            EXPECT_TRUE(res.extras.count("quant_exp_clamps"));
        }
        if (prec == net::Precision::kInt32 &&
            (GetParam() == StrategyKind::kSyncIswitch ||
             GetParam() == StrategyKind::kAsyncIswitch)) {
            // Switch-side exactness counters ride along on int32.
            EXPECT_TRUE(res.extras.count("switch_overflow_clamps"));
            EXPECT_TRUE(res.extras.count("switch_exp_rescales"));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PipelineMatrix,
    ::testing::Values(StrategyKind::kSyncPs, StrategyKind::kSyncAllReduce,
                      StrategyKind::kSyncIswitch,
                      StrategyKind::kSyncShardedPs, StrategyKind::kAsyncPs,
                      StrategyKind::kAsyncIswitch),
    [](const auto &info) {
        switch (info.param) {
          case StrategyKind::kSyncPs: return "SyncPs";
          case StrategyKind::kSyncAllReduce: return "SyncAr";
          case StrategyKind::kSyncIswitch: return "SyncIsw";
          case StrategyKind::kSyncShardedPs: return "ShardedPs";
          case StrategyKind::kAsyncPs: return "AsyncPs";
          case StrategyKind::kAsyncIswitch: return "AsyncIsw";
        }
        return "?";
    });

TEST(PipelineWire, Fp16HalvesThePaperWireModel)
{
    // The retired bench-side hack divided wire_model_bytes by two;
    // the pipeline must reproduce that timing model exactly.
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kDqn, StrategyKind::kSyncPs, 4);
    cfg.stop.max_iterations = 3;

    JobConfig halved = cfg;
    halved.wire_model_bytes /= 2;
    const RunResult hacked = runJob(halved);

    cfg.precision = net::Precision::kFp16;
    const RunResult piped = runJob(cfg);

    ASSERT_TRUE(hacked.ok()) << hacked.error;
    ASSERT_TRUE(piped.ok()) << piped.error;
    EXPECT_EQ(piped.total_time, hacked.total_time);
}

} // namespace
} // namespace isw::dist
