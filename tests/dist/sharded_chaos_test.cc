/** @file Chaos matrix x sharded engine: lossy and faulted runs on a
 *  partitioned multi-rack fabric must execute on the parallel engine,
 *  reproduce exactly across shard_threads, and — for synchronous
 *  strategies — match the serial engine byte-for-byte (both engines
 *  share the domain-safe probe/defer recovery path on partitioned
 *  fabrics, so reports cannot diverge). */

#include <gtest/gtest.h>

#include "dist/strategy.hh"
#include "harness/runner.hh"

namespace isw::dist {
namespace {

JobConfig
shardedChaosConfig(StrategyKind k, std::size_t workers = 6,
                   std::uint64_t iters = 6)
{
    JobConfig cfg = JobConfig::forBenchmark(rl::Algo::kPpo, k, workers);
    cfg.wire_model_bytes = 0; // actual model size: fast tests
    cfg.use_tree = true;
    cfg.cluster.per_rack = 3;
    cfg.stop.max_iterations = iters;
    cfg.stop.max_sim_time = 120 * sim::kSec; // fault-recovery safety net
    cfg.curve_every = 3;
    cfg.seed = 23;
    return cfg;
}

std::string
reportOf(const JobConfig &cfg)
{
    // resultToJson covers every deterministic result field and excludes
    // the wall-clock perf block: string equality is result parity.
    return harness::resultToJson(runJob(cfg)).dump(2);
}

void
addBurstLoss(JobConfig &cfg)
{
    cfg.faults.ge.p_good_to_bad = 0.02;
    cfg.faults.ge.p_bad_to_good = 0.25;
    cfg.faults.ge.loss_bad = 0.8;
}

void
addCrash(JobConfig &cfg)
{
    // Blackout worker 2's edge link mid-training; silent partition the
    // retransmission layer must ride out on its own.
    cfg.faults.crashes.push_back(
        net::WorkerCrash{2, 20 * sim::kMsec, 60 * sim::kMsec, false});
}

class ShardedChaosMatrix : public ::testing::TestWithParam<StrategyKind>
{
  protected:
    /** Sharded faulted run: completes, deterministic across thread
     *  counts, and byte-identical to serial for sync strategies. */
    void
    checkFaultedRun(const JobConfig &faulty)
    {
        JobConfig one = faulty;
        one.shard = true;
        one.shard_threads = 1;
        JobConfig two = one;
        two.shard_threads = 2;
        JobConfig hw = one;
        hw.shard_threads = 0; // hardware concurrency

        const std::string base = reportOf(one);
        EXPECT_EQ(base, reportOf(two));
        EXPECT_EQ(base, reportOf(hw));
        if (!isAsyncStrategy(faulty.strategy)) {
            EXPECT_EQ(base, reportOf(faulty)); // serial engine
        }
        const RunResult res = runJob(one);
        ASSERT_TRUE(res.ok()) << res.error;
        EXPECT_GE(res.iterations, faulty.stop.max_iterations);
    }
};

TEST_P(ShardedChaosMatrix, SurvivesIidLossSharded)
{
    JobConfig cfg = shardedChaosConfig(GetParam());
    cfg.faults.extra_loss = 0.01;
    checkFaultedRun(cfg);
}

TEST_P(ShardedChaosMatrix, SurvivesBurstLossSharded)
{
    JobConfig cfg = shardedChaosConfig(GetParam());
    addBurstLoss(cfg);
    checkFaultedRun(cfg);
}

TEST_P(ShardedChaosMatrix, SurvivesCrashAndRejoinSharded)
{
    JobConfig cfg = shardedChaosConfig(GetParam());
    addCrash(cfg);
    checkFaultedRun(cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ShardedChaosMatrix,
    ::testing::Values(StrategyKind::kSyncPs, StrategyKind::kSyncAllReduce,
                      StrategyKind::kSyncIswitch,
                      StrategyKind::kSyncShardedPs, StrategyKind::kAsyncPs,
                      StrategyKind::kAsyncIswitch),
    [](const auto &info) {
        switch (info.param) {
          case StrategyKind::kSyncPs: return "SyncPs";
          case StrategyKind::kSyncAllReduce: return "SyncAr";
          case StrategyKind::kSyncIswitch: return "SyncIsw";
          case StrategyKind::kSyncShardedPs: return "ShardedPs";
          case StrategyKind::kAsyncPs: return "AsyncPs";
          case StrategyKind::kAsyncIswitch: return "AsyncIsw";
        }
        return "?";
    });

/** Switch-crash failover on the tree fabric (DESIGN.md §16): the core
 *  switch fail-stops mid-training, ToRs re-home to the backup core,
 *  and the run finishes. Sync runs must stay serial/sharded
 *  byte-identical *through* the failover and land on the lossless
 *  weights; async runs must stay live and thread-deterministic. */
class ShardedFailoverMatrix : public ::testing::TestWithParam<StrategyKind>
{
};

TEST_P(ShardedFailoverMatrix, CoreSwitchCrashFailsOverSharded)
{
    const JobConfig cfg = shardedChaosConfig(GetParam());
    // Lossless no-HA serial baseline anchors the weight contract.
    auto basejob = makeJob(cfg);
    const RunResult baseres = basejob->run();
    ASSERT_TRUE(baseres.ok()) << baseres.error;

    JobConfig crashy = cfg;
    crashy.cluster.ha.with_backup = true;
    crashy.faults.switch_crashes.push_back(
        net::SwitchCrash{baseres.total_time * 3 / 10, 0});

    JobConfig one = crashy;
    one.shard = true;
    one.shard_threads = 1;
    JobConfig two = one;
    two.shard_threads = 2;
    const std::string base = reportOf(one);
    EXPECT_EQ(base, reportOf(two));
    if (!isAsyncStrategy(crashy.strategy)) {
        EXPECT_EQ(base, reportOf(crashy)); // serial engine parity
    }

    auto job = makeJob(one);
    const RunResult res = job->run();
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, crashy.stop.max_iterations);
    ASSERT_TRUE(res.extras.count("failover_events"));
    EXPECT_EQ(res.extras.at("failover_events"), 1.0);
    EXPECT_GT(res.extras.at("failover_beats_missed"), 0.0);
    // Only the iSwitch plane replicates aggregation state; for PS
    // strategies the backup is pure routing + membership shadow.
    if (crashy.strategy == StrategyKind::kSyncIswitch ||
        crashy.strategy == StrategyKind::kAsyncIswitch)
        EXPECT_GT(res.extras.at("failover_repl_frames"), 0.0);
    EXPECT_GT(res.extras.at("fault_switch_drops"), 0.0);
    if (isAsyncStrategy(crashy.strategy))
        return;
    EXPECT_EQ(res.iterations, baseres.iterations);
    ml::Vec bw, w;
    basejob->workerAgent(0).getWeights(bw);
    job->workerAgent(0).getWeights(w);
    ASSERT_EQ(w.size(), bw.size());
    const float tol =
        crashy.strategy == StrategyKind::kSyncIswitch ? 1e-4f : 1e-6f;
    for (std::size_t i = 0; i < w.size(); ++i)
        ASSERT_NEAR(w[i], bw[i], tol) << "weight " << i;
}

INSTANTIATE_TEST_SUITE_P(
    CoreStrategies, ShardedFailoverMatrix,
    ::testing::Values(StrategyKind::kSyncPs, StrategyKind::kSyncIswitch,
                      StrategyKind::kAsyncIswitch),
    [](const auto &info) {
        switch (info.param) {
          case StrategyKind::kSyncPs: return "SyncPs";
          case StrategyKind::kSyncIswitch: return "SyncIsw";
          case StrategyKind::kAsyncIswitch: return "AsyncIsw";
          default: return "?";
        }
    });

TEST(ShardedChaos, MultiShardPsPlacesShardsAcrossRacks)
{
    // Tree builders spread PS shards round-robin over racks: shard k
    // lives in rack k % racks (domain k % racks + 1).
    JobConfig cfg = shardedChaosConfig(StrategyKind::kSyncShardedPs, 6, 4);
    cfg.ps_shards = 3;
    auto job = makeJob(cfg);
    const Cluster &c = job->cluster();
    ASSERT_EQ(c.ps_shards.size(), 3u);
    EXPECT_EQ(c.ps_shards[0]->domain(), 1u);
    EXPECT_EQ(c.ps_shards[1]->domain(), 2u);
    EXPECT_EQ(c.ps_shards[2]->domain(), 1u); // wraps: 2 racks
}

TEST(ShardedChaos, MultiShardPsLossyShardedMatchesSerial)
{
    JobConfig serial = shardedChaosConfig(StrategyKind::kSyncShardedPs,
                                          6, 4);
    serial.ps_shards = 3;
    serial.faults.extra_loss = 0.01;
    JobConfig sharded = serial;
    sharded.shard = true;
    sharded.shard_threads = 3;
    EXPECT_EQ(reportOf(serial), reportOf(sharded));
}

TEST(ShardedChaos, AnnouncedCrashLeaveJoinRunsInHomeDomain)
{
    // announce=true drives real Leave/Join control frames from the
    // crashed worker's host; on the sharded engine those must originate
    // in the worker's home domain and still recompute auto-H.
    JobConfig cfg = shardedChaosConfig(StrategyKind::kAsyncIswitch, 6, 12);
    cfg.faults.crashes.push_back(
        net::WorkerCrash{3, 20 * sim::kMsec, 60 * sim::kMsec, true});
    cfg.shard = true;
    cfg.shard_threads = 2;
    const RunResult res = runJob(cfg);
    ASSERT_TRUE(res.ok()) << res.error;
    EXPECT_GE(res.iterations, 12u);
}

} // namespace
} // namespace isw::dist
