/** @file Regression tests for asynchronous-training failure modes
 *  found during development: commit-backlog underflow livelock,
 *  round interleaving under aggregation pressure, and bounded switch
 *  memory under round striping. */

#include <gtest/gtest.h>

#include "core/programmable_switch.hh"
#include "dist/iswitch_async.hh"
#include "dist/strategy.hh"
#include "net/topology.hh"

namespace isw::dist {
namespace {

/**
 * Regression: a worker whose commit count falls below the global
 * round count (because other workers' surplus commits completed
 * rounds it skipped) must not compute a huge unsigned backlog and
 * skip forever. Aggregation pressure (big wire, slow links) plus
 * timing jitter reproduces the original livelock within ~1.5k rounds.
 */
TEST(AsyncRegression, NoBacklogUnderflowLivelock)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo,
                                StrategyKind::kAsyncIswitch, 4);
    cfg.wire_model_bytes = 512 * 1024;
    cfg.cluster.edge_link.bandwidth_bps = 2e9; // pressure, not collapse
    cfg.stop.max_iterations = 400;
    const RunResult res = runJob(cfg);
    EXPECT_GE(res.iterations, 400u)
        << "async training livelocked before the iteration budget";
}

TEST(AsyncRegression, BackpressureBoundsInFlightWork)
{
    // When aggregation is much slower than LGC, commits must throttle
    // to the drain rate instead of queueing unboundedly.
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo,
                                StrategyKind::kAsyncIswitch, 4);
    cfg.wire_model_bytes = 2 * 1024 * 1024;
    cfg.cluster.edge_link.bandwidth_bps = 1e9; // GA ~2x slower than LGC
    cfg.stop.max_iterations = 120;
    auto job = std::make_unique<AsyncIswitchJob>(cfg);
    AsyncIswitchJob *raw = job.get();
    const RunResult res = job->run();
    EXPECT_GE(res.iterations, 120u);
    // Committed work tracks applied rounds: at most workers * (S+1)
    // vectors beyond the applied count may ever be outstanding.
    const std::uint64_t applied_total = res.iterations * 4;
    EXPECT_LE(raw->gradientsCommitted(),
              applied_total + 4 * (cfg.staleness_bound + 2) + 8);
    EXPECT_GT(raw->gradientsSkipped(), 0u)
        << "pressure this high must trigger the backpressure path";
}

TEST(AsyncRegression, SkippingWorkersDontStallOthers)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo,
                                StrategyKind::kAsyncIswitch, 4);
    cfg.staleness_bound = 0; // maximum skip pressure
    cfg.wire_model_bytes = 0;
    cfg.stop.max_iterations = 200;
    const RunResult res = runJob(cfg);
    EXPECT_GE(res.iterations, 200u);
}

/** Striped rounds keep the synchronous switch cache bounded. */
TEST(SyncRegression, SwitchCacheStaysBounded)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kPpo, StrategyKind::kSyncIswitch,
                                4);
    // Small retention window so the bound is exercised quickly.
    cfg.cluster.accel = {};
    cfg.stop.max_iterations = 60;
    cfg.wire_model_bytes = 0;
    auto job = makeJob(cfg);
    const RunResult res = job->run();
    EXPECT_GE(res.iterations, 60u);
    const auto *sw = job->cluster().root;
    // 60 rounds x segments went through; the cache must hold at most
    // 2x its retention window, not the whole history.
    EXPECT_LE(sw->cachedResults(), 2 * (1ULL << 13));
    (void)res;
}

TEST(SyncRegression, RoundStripingKeepsRoundsSeparate)
{
    // Two workers deliberately one round apart must never mix sums:
    // drive the switch manually with striped indices.
    sim::Simulation s{1};
    net::Topology topo{s};
    core::ProgrammableSwitchConfig sw_cfg;
    sw_cfg.ip = net::Ipv4Addr(10, 0, 0, 1);
    auto *sw = topo.addSwitch<core::ProgrammableSwitch>("sw", 2, sw_cfg);
    std::vector<net::Host *> hosts;
    std::map<std::uint64_t, std::vector<float>> results;
    for (int i = 0; i < 2; ++i) {
        auto *h = topo.addHost("w" + std::to_string(i),
                               net::Ipv4Addr(10, 0, 0,
                                             std::uint8_t(2 + i)));
        topo.connectHost(h, sw, std::size_t(i));
        sw->adminJoin(h->ip(), 9999, core::MemberType::kWorker);
        h->setReceiveHandler([&results](net::PacketPtr pkt) {
            if (pkt->ip.tos != net::kTosResult)
                return;
            if (const auto *c =
                    std::get_if<net::ChunkPayload>(&pkt->payload))
                results[c->seg] = c->values;
        });
        hosts.push_back(h);
    }
    auto send = [&](int w, std::uint64_t seg, float v) {
        net::ChunkPayload c;
        c.seg = seg;
        c.wire_floats = 1;
        c.values = {v};
        hosts[std::size_t(w)]->sendTo(sw->ip(), 9000, 9999, net::kTosData,
                                      c);
    };
    // Worker 0 contributes to round 0 (seg 0) and round 1 (seg P=1).
    send(0, 0, 1.0f);
    send(0, 1, 10.0f);
    // Worker 1 completes round 0 only.
    send(1, 0, 2.0f);
    s.run();
    ASSERT_EQ(results.count(0), 1u);
    EXPECT_FLOAT_EQ(results[0][0], 3.0f); // 1 + 2, no round-1 pollution
    EXPECT_EQ(results.count(1), 0u);      // round 1 still waiting
    // Worker 1 completes round 1.
    send(1, 1, 20.0f);
    s.run();
    ASSERT_EQ(results.count(1), 1u);
    EXPECT_FLOAT_EQ(results[1][0], 30.0f);
}

/** Regular cross traffic must not disturb an ongoing aggregation. */
TEST(SwitchSharing, BackgroundTrafficDoesNotCorruptAggregation)
{
    JobConfig cfg =
        JobConfig::forBenchmark(rl::Algo::kA2c, StrategyKind::kSyncIswitch,
                                2);
    cfg.wire_model_bytes = 0;
    cfg.stop.max_iterations = 5;
    auto with_noise = [&](bool noise) {
        auto job = makeJob(cfg);
        if (noise) {
            // Flood worker-to-worker raw traffic through the switch
            // throughout the run.
            net::Host *a = job->cluster().workers[0];
            net::Host *b = job->cluster().workers[1];
            for (int i = 0; i < 2000; ++i) {
                job->simulation().at(
                    static_cast<sim::TimeNs>(i) * 40 * sim::kUsec,
                    [a, b] {
                        a->sendTo(b->ip(), 7, 7, /*tos=*/0,
                                  net::RawPayload{1200, 99});
                    });
            }
        }
        job->run();
        ml::Vec w;
        job->workerAgent(0).getWeights(w);
        return w;
    };
    const ml::Vec clean = with_noise(false);
    const ml::Vec noisy = with_noise(true);
    // Identical training outcome: the accelerator plane is isolated
    // from regular forwarding (timing may shift, data must not).
    EXPECT_EQ(clean, noisy);
}

} // namespace
} // namespace isw::dist
