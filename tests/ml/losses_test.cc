/** @file Loss and probability-utility tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/losses.hh"

namespace isw::ml {
namespace {

TEST(MseLoss, ValueAndGradient)
{
    Matrix pred(1, 2);
    pred.at(0, 0) = 1.0f;
    pred.at(0, 1) = 3.0f;
    Matrix target(1, 2);
    target.at(0, 0) = 0.0f;
    target.at(0, 1) = 1.0f;
    Matrix d;
    const float loss = mseLoss(pred, target, d);
    EXPECT_FLOAT_EQ(loss, (1.0f + 4.0f) / 2.0f);
    EXPECT_FLOAT_EQ(d.at(0, 0), 2.0f * 1.0f / 2.0f);
    EXPECT_FLOAT_EQ(d.at(0, 1), 2.0f * 2.0f / 2.0f);
}

TEST(MseLoss, ZeroAtPerfectPrediction)
{
    Matrix pred(2, 2, 3.0f);
    Matrix d;
    EXPECT_FLOAT_EQ(mseLoss(pred, pred, d), 0.0f);
    for (float v : d.raw())
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(HuberLoss, QuadraticInsideDelta)
{
    Matrix pred(1, 1);
    pred.at(0, 0) = 0.5f;
    Matrix target(1, 1);
    target.at(0, 0) = 0.0f;
    Matrix d;
    const float loss = huberLoss(pred, target, d, 1.0f);
    EXPECT_FLOAT_EQ(loss, 0.5f * 0.25f);
    EXPECT_FLOAT_EQ(d.at(0, 0), 0.5f);
}

TEST(HuberLoss, LinearOutsideDelta)
{
    Matrix pred(1, 1);
    pred.at(0, 0) = 3.0f;
    Matrix target(1, 1);
    target.at(0, 0) = 0.0f;
    Matrix d;
    const float loss = huberLoss(pred, target, d, 1.0f);
    EXPECT_FLOAT_EQ(loss, 1.0f * (3.0f - 0.5f));
    EXPECT_FLOAT_EQ(d.at(0, 0), 1.0f); // clamped slope
}

TEST(Softmax, NormalizesAndOrders)
{
    Vec logits{1.0f, 2.0f, 3.0f};
    softmaxRow(logits);
    float sum = 0.0f;
    for (float p : logits)
        sum += p;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_LT(logits[0], logits[1]);
    EXPECT_LT(logits[1], logits[2]);
}

TEST(Softmax, StableForHugeLogits)
{
    Vec logits{1000.0f, 1001.0f};
    softmaxRow(logits);
    EXPECT_FALSE(std::isnan(logits[0]));
    EXPECT_NEAR(logits[0] + logits[1], 1.0f, 1e-6f);
}

TEST(LogSoftmax, MatchesLogOfSoftmax)
{
    Vec logits{0.5f, -1.0f, 2.0f};
    Vec probs = logits;
    softmaxRow(probs);
    Vec ls = logSoftmaxRow(logits);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(ls[i], std::log(probs[i]), 1e-5f);
}

TEST(SampleCategorical, RespectsDistribution)
{
    sim::Rng rng(5);
    Vec probs{0.1f, 0.7f, 0.2f};
    std::array<int, 3> counts{};
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        counts[sampleCategorical(probs, rng)]++;
    EXPECT_NEAR(counts[0], 0.1 * n, 0.02 * n);
    EXPECT_NEAR(counts[1], 0.7 * n, 0.02 * n);
    EXPECT_NEAR(counts[2], 0.2 * n, 0.02 * n);
}

TEST(ArgmaxRow, FindsMaximum)
{
    Vec v{0.1f, 0.9f, 0.5f};
    EXPECT_EQ(argmaxRow(v), 1u);
}

TEST(EntropyRow, UniformIsMaximal)
{
    Vec uniform{0.25f, 0.25f, 0.25f, 0.25f};
    Vec peaked{0.97f, 0.01f, 0.01f, 0.01f};
    EXPECT_NEAR(entropyRow(uniform), std::log(4.0f), 1e-5f);
    EXPECT_LT(entropyRow(peaked), entropyRow(uniform));
}

TEST(EntropyRow, HandlesZeroProbabilities)
{
    Vec v{1.0f, 0.0f};
    EXPECT_FLOAT_EQ(entropyRow(v), 0.0f);
}

} // namespace
} // namespace isw::ml
