/** @file Tests for Network composition and the flat ParamSet view. */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/network.hh"

namespace isw::ml {
namespace {

TEST(Network, MlpLayerCount)
{
    sim::Rng rng(1);
    Network net = Network::mlp<ReLU>({4, 8, 8, 2}, rng);
    // Linear-ReLU-Linear-ReLU-Linear: activation between layers only.
    EXPECT_EQ(net.numLayers(), 5u);
}

TEST(Network, ForwardProducesExpectedShape)
{
    sim::Rng rng(2);
    Network net = Network::mlp<Tanh>({3, 6, 2}, rng);
    Matrix y = net.forward(Matrix(5, 3, 0.1f));
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 2u);
}

TEST(ParamSet, CountMatchesArchitecture)
{
    sim::Rng rng(3);
    Network net = Network::mlp<ReLU>({4, 8, 2}, rng);
    ParamSet p;
    p.addNetwork(net);
    // (4*8 + 8) + (8*2 + 2) = 58.
    EXPECT_EQ(p.count(), 58u);
}

TEST(ParamSet, ValueRoundTrip)
{
    sim::Rng rng(4);
    Network net = Network::mlp<ReLU>({2, 3, 1}, rng);
    ParamSet p;
    p.addNetwork(net);
    Vec w;
    p.copyValuesTo(w);
    for (float &v : w)
        v += 1.0f;
    p.setValues(w);
    Vec back;
    p.copyValuesTo(back);
    EXPECT_EQ(back, w);
}

TEST(ParamSet, SetValuesRejectsWrongSize)
{
    sim::Rng rng(5);
    Network net = Network::mlp<ReLU>({2, 2}, rng);
    ParamSet p;
    p.addNetwork(net);
    Vec tiny(2, 0.0f);
    EXPECT_THROW(p.setValues(tiny), std::invalid_argument);
}

TEST(ParamSet, ZeroAndScaleGrads)
{
    sim::Rng rng(6);
    Network net = Network::mlp<ReLU>({2, 2}, rng);
    ParamSet p;
    p.addNetwork(net);
    net.forward(Matrix(1, 2, 1.0f));
    net.backward(Matrix(1, 2, 1.0f));
    Vec g;
    p.copyGradsTo(g);
    float nonzero = 0.0f;
    for (float v : g)
        nonzero += std::fabs(v);
    EXPECT_GT(nonzero, 0.0f);

    p.scaleGrads(0.5f);
    Vec half;
    p.copyGradsTo(half);
    for (std::size_t i = 0; i < g.size(); ++i)
        EXPECT_FLOAT_EQ(half[i], g[i] * 0.5f);

    p.zeroGrads();
    p.copyGradsTo(g);
    for (float v : g)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ParamSet, AccumulateGrads)
{
    sim::Rng rng(7);
    Network net = Network::mlp<ReLU>({2, 2}, rng);
    ParamSet p;
    p.addNetwork(net);
    p.zeroGrads();
    Vec inc(p.count(), 2.0f);
    p.accumulateGrads(inc);
    p.accumulateGrads(inc);
    Vec g;
    p.copyGradsTo(g);
    for (float v : g)
        EXPECT_FLOAT_EQ(v, 4.0f);
}

TEST(ParamSet, ClipGradNormScalesDown)
{
    sim::Rng rng(8);
    Network net = Network::mlp<ReLU>({2, 2}, rng);
    ParamSet p;
    p.addNetwork(net);
    p.zeroGrads();
    Vec big(p.count(), 10.0f);
    p.accumulateGrads(big);
    const float pre = p.clipGradNorm(1.0f);
    EXPECT_GT(pre, 1.0f);
    Vec g;
    p.copyGradsTo(g);
    float sq = 0.0f;
    for (float v : g)
        sq += v * v;
    EXPECT_NEAR(std::sqrt(sq), 1.0f, 1e-4f);
}

TEST(ParamSet, ClipGradNormLeavesSmallGradients)
{
    sim::Rng rng(9);
    Network net = Network::mlp<ReLU>({2, 2}, rng);
    ParamSet p;
    p.addNetwork(net);
    p.zeroGrads();
    Vec small(p.count(), 1e-4f);
    p.accumulateGrads(small);
    p.clipGradNorm(100.0f);
    Vec g;
    p.copyGradsTo(g);
    for (float v : g)
        EXPECT_FLOAT_EQ(v, 1e-4f);
}

TEST(ParamSet, MultiNetworkLayoutIsRegistrationOrder)
{
    sim::Rng rng(10);
    Network a = Network::mlp<ReLU>({1, 1}, rng, "a");
    Network b = Network::mlp<ReLU>({1, 1}, rng, "b");
    ParamSet p;
    p.addNetwork(a);
    p.addNetwork(b);
    ASSERT_EQ(p.refs().size(), 4u);
    EXPECT_EQ(p.refs()[0].name, "a.l0.w");
    EXPECT_EQ(p.refs()[2].name, "b.l0.w");
}

} // namespace
} // namespace isw::ml
