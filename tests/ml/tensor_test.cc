/** @file Unit tests for the dense math kernels. */

#include <gtest/gtest.h>

#include "ml/tensor.hh"

namespace isw::ml {
namespace {

TEST(Matrix, ShapeAndAccess)
{
    Matrix m(2, 3, 1.5f);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m.size(), 6u);
    EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
    m.at(0, 1) = 7.0f;
    EXPECT_FLOAT_EQ(m.at(0, 1), 7.0f);
}

TEST(Matrix, RowSpanAliasesStorage)
{
    Matrix m(2, 2);
    auto row = m.row(1);
    row[0] = 4.0f;
    EXPECT_FLOAT_EQ(m.at(1, 0), 4.0f);
}

TEST(Matrix, FillOverwrites)
{
    Matrix m(2, 2, 1.0f);
    m.fill(9.0f);
    for (float v : m.raw())
        EXPECT_FLOAT_EQ(v, 9.0f);
}

TEST(AffineForward, ComputesXWTPlusB)
{
    // x = [1 2], W = [[1 0], [0 1], [1 1]], b = [10 20 30]
    Matrix x(1, 2);
    x.at(0, 0) = 1.0f;
    x.at(0, 1) = 2.0f;
    Matrix w(3, 2);
    w.at(0, 0) = 1.0f;
    w.at(1, 1) = 1.0f;
    w.at(2, 0) = 1.0f;
    w.at(2, 1) = 1.0f;
    Vec b{10.0f, 20.0f, 30.0f};
    Matrix y;
    affineForward(x, w, b, y);
    ASSERT_EQ(y.rows(), 1u);
    ASSERT_EQ(y.cols(), 3u);
    EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 22.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 33.0f);
}

TEST(AffineForward, BatchedRowsIndependent)
{
    Matrix x(2, 1);
    x.at(0, 0) = 1.0f;
    x.at(1, 0) = -1.0f;
    Matrix w(1, 1);
    w.at(0, 0) = 3.0f;
    Vec b{0.5f};
    Matrix y;
    affineForward(x, w, b, y);
    EXPECT_FLOAT_EQ(y.at(0, 0), 3.5f);
    EXPECT_FLOAT_EQ(y.at(1, 0), -2.5f);
}

TEST(AffineBackward, GradientsMatchManualDerivation)
{
    // y = x W^T + b with x=[1,2], W=[[3,4]], b=[0]; dy = [1].
    Matrix x(1, 2);
    x.at(0, 0) = 1.0f;
    x.at(0, 1) = 2.0f;
    Matrix w(1, 2);
    w.at(0, 0) = 3.0f;
    w.at(0, 1) = 4.0f;
    Matrix dy(1, 1);
    dy.at(0, 0) = 1.0f;
    Matrix dw(1, 2);
    Vec db(1, 0.0f);
    Matrix dx;
    affineBackward(dy, x, w, dw, db, dx);
    EXPECT_FLOAT_EQ(dw.at(0, 0), 1.0f); // dL/dW = dy^T x
    EXPECT_FLOAT_EQ(dw.at(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(db[0], 1.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 3.0f); // dL/dx = dy W
    EXPECT_FLOAT_EQ(dx.at(0, 1), 4.0f);
}

TEST(AffineBackward, AccumulatesAcrossBatch)
{
    Matrix x(2, 1);
    x.at(0, 0) = 1.0f;
    x.at(1, 0) = 2.0f;
    Matrix w(1, 1, 1.0f);
    Matrix dy(2, 1, 1.0f);
    Matrix dw(1, 1);
    Vec db(1, 0.0f);
    Matrix dx;
    affineBackward(dy, x, w, dw, db, dx);
    EXPECT_FLOAT_EQ(dw.at(0, 0), 3.0f); // 1 + 2
    EXPECT_FLOAT_EQ(db[0], 2.0f);
}

TEST(Kernels, Axpy)
{
    Vec x{1.0f, 2.0f};
    Vec y{10.0f, 20.0f};
    axpy(2.0f, x, y);
    EXPECT_FLOAT_EQ(y[0], 12.0f);
    EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(Kernels, DotAndNorm)
{
    Vec a{3.0f, 4.0f};
    EXPECT_FLOAT_EQ(dot(a, a), 25.0f);
    EXPECT_FLOAT_EQ(l2norm(a), 5.0f);
}

} // namespace
} // namespace isw::ml
