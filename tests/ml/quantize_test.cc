/** @file Wire codec tests: fp16, packed halves, block int32. */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "ml/quantize.hh"
#include "sim/random.hh"

namespace isw::ml {
namespace {

TEST(Half, ExactValuesRoundTrip)
{
    for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.0f, 1024.0f,
                    0.25f, -0.125f, 65504.0f /* max half */}) {
        EXPECT_EQ(decodeHalf(encodeHalf(f)), f) << f;
    }
}

TEST(Half, SignedZeros)
{
    EXPECT_EQ(encodeHalf(0.0f), 0x0000);
    EXPECT_EQ(encodeHalf(-0.0f), 0x8000);
    EXPECT_EQ(decodeHalf(0x8000), -0.0f);
    EXPECT_TRUE(std::signbit(decodeHalf(0x8000)));
}

TEST(Half, InfinityAndNan)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(encodeHalf(inf), 0x7C00);
    EXPECT_EQ(encodeHalf(-inf), 0xFC00);
    EXPECT_TRUE(std::isinf(decodeHalf(0x7C00)));
    EXPECT_TRUE(std::isnan(
        decodeHalf(encodeHalf(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Half, OverflowSaturatesToInfinity)
{
    EXPECT_EQ(encodeHalf(1e9f), 0x7C00);
    EXPECT_EQ(encodeHalf(-1e9f), 0xFC00);
    EXPECT_EQ(encodeHalf(65520.0f), 0x7C00); // rounds past max half
}

TEST(Half, UnderflowFlushesToZero)
{
    EXPECT_EQ(decodeHalf(encodeHalf(1e-12f)), 0.0f);
}

TEST(Half, SubnormalsRepresentable)
{
    // Smallest positive subnormal half is 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(decodeHalf(encodeHalf(tiny)), tiny);
    const float sub = std::ldexp(3.0f, -24);
    EXPECT_EQ(decodeHalf(encodeHalf(sub)), sub);
}

TEST(Half, RelativeErrorBoundedForNormals)
{
    sim::Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const float f =
            static_cast<float>(rng.uniform(-1000.0, 1000.0));
        if (std::fabs(f) < 1e-4f)
            continue;
        const float back = decodeHalf(encodeHalf(f));
        // Half has 11 significand bits: eps = 2^-11.
        EXPECT_LE(std::fabs(back - f) / std::fabs(f), 0x1.0p-11 + 1e-7f)
            << f;
    }
}

TEST(Half, AllHalfBitPatternsSurviveDecodeEncode)
{
    // decode(h) is exact in float; re-encoding must reproduce h for
    // every non-NaN pattern (NaN payloads may canonicalize).
    for (std::uint32_t h = 0; h <= 0xFFFF; ++h) {
        const float f = decodeHalf(static_cast<std::uint16_t>(h));
        if (std::isnan(f))
            continue;
        EXPECT_EQ(encodeHalf(f), h) << std::hex << h;
    }
}

TEST(Half, VectorHelpers)
{
    std::vector<float> v{1.0f, 2.5f, -3.25f};
    const auto halves = toHalf(v);
    EXPECT_EQ(halves.size(), 3u);
    EXPECT_EQ(fromHalf(halves), v); // all exactly representable

    std::vector<float> q{0.1f, 0.2f};
    quantizeInPlace(q);
    EXPECT_NE(q[0], 0.1f); // 0.1 is not representable in half
    EXPECT_NEAR(q[0], 0.1f, 1e-4f);
    EXPECT_GT(halfRoundTripError(std::vector<float>{0.1f}), 0.0f);
    EXPECT_EQ(halfRoundTripError(v), 0.0f);
}

TEST(QuantHalfWords, PackUnpackRoundTripsOddTail)
{
    // Exactly representable halves survive the packed round trip; the
    // odd tail's unused high half must encode as zero.
    const std::vector<float> v{1.0f, -0.5f, 2.0f, 0.25f, -8.0f};
    std::vector<float> words((v.size() + 1) / 2);
    packHalfWords(v.data(), v.size(), words.data());
    EXPECT_EQ(std::bit_cast<std::uint32_t>(words.back()) >> 16, 0u);
    std::vector<float> back(v.size());
    unpackHalfWords(words.data(), back.size(), back.data());
    EXPECT_EQ(back, v);
}

TEST(QuantHalfWords, AddHalfWordsIsHalfwise)
{
    const float a[2] = {1.5f, -2.0f};
    const float b[2] = {0.25f, 8.0f};
    float wa, wb;
    packHalfWords(a, 2, &wa);
    packHalfWords(b, 2, &wb);
    const float sum = addHalfWords(wa, wb);
    float out[2];
    unpackHalfWords(&sum, 2, out);
    EXPECT_EQ(out[0], 1.75f);
    EXPECT_EQ(out[1], 6.0f);
}

TEST(QuantInt32, ZeroBlockUsesDefaultExponent)
{
    const std::vector<float> zeros(64, 0.0f);
    QuantStats st;
    EXPECT_EQ(blockExponent(zeros.data(), zeros.size(), 4, &st),
              kDefaultQexp);
    EXPECT_EQ(st.exp_clamps, 0u);
    std::vector<float> words(zeros.size());
    encodeBlockInt32(zeros.data(), zeros.size(), kDefaultQexp,
                     words.data(), &st);
    EXPECT_EQ(st.value_clamps, 0u);
    for (float w : words)
        EXPECT_EQ(std::bit_cast<std::int32_t>(w), 0);
    std::vector<float> back(zeros.size(), 1.0f);
    decodeBlockInt32(words.data(), words.size(), kDefaultQexp,
                     back.data());
    EXPECT_EQ(back, zeros);
}

TEST(QuantInt32, RoundTripErrorBoundedByOneStep)
{
    sim::Rng rng(11);
    std::vector<float> v(733);
    for (auto &x : v)
        x = static_cast<float>(rng.uniform(-0.3, 0.3));
    const int e = blockExponent(v.data(), v.size(), 1);
    std::vector<float> words(v.size()), back(v.size());
    encodeBlockInt32(v.data(), v.size(), e, words.data());
    decodeBlockInt32(words.data(), words.size(), e, back.data());
    const double step = std::ldexp(1.0, e - kQuantFracBits);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_NEAR(back[i], v[i], step) << i;
}

TEST(QuantInt32, AllNegativeBlockRoundTrips)
{
    const std::vector<float> v{-0.5f, -0.125f, -0.75f, -0.0625f};
    const int e = blockExponent(v.data(), v.size(), 1);
    std::vector<float> words(v.size()), back(v.size());
    encodeBlockInt32(v.data(), v.size(), e, words.data());
    decodeBlockInt32(words.data(), words.size(), e, back.data());
    // Powers of two at this magnitude are exact in the fixed point.
    EXPECT_EQ(back, v);
}

TEST(QuantInt32, DenormalsClampExponentAndFlushToZero)
{
    const std::vector<float> v(8, 1e-41f); // float denormal
    QuantStats st;
    const int e = blockExponent(v.data(), v.size(), 1, &st);
    EXPECT_EQ(e, kQexpMin);
    EXPECT_EQ(st.exp_clamps, 1u);
    std::vector<float> words(v.size()), back(v.size());
    encodeBlockInt32(v.data(), v.size(), e, words.data(), &st);
    EXPECT_EQ(st.value_clamps, 0u); // too small to saturate: rounds to 0
    decodeBlockInt32(words.data(), words.size(), e, back.data());
    for (float x : back)
        EXPECT_EQ(x, 0.0f);
}

TEST(QuantInt32, NonFiniteValuesSaturateOrDrop)
{
    const float inf = std::numeric_limits<float>::infinity();
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const std::vector<float> v{nan, inf, -inf, 0.25f};
    QuantStats st;
    // blockExponent ignores non-finite values: only 0.25 counts.
    const int e = blockExponent(v.data(), v.size(), 1, &st);
    std::vector<float> words(v.size());
    encodeBlockInt32(v.data(), v.size(), e, words.data(), &st);
    EXPECT_EQ(st.value_clamps, 3u);
    EXPECT_EQ(std::bit_cast<std::int32_t>(words[0]), 0);
    EXPECT_EQ(std::bit_cast<std::int32_t>(words[1]), kQuantMax);
    EXPECT_EQ(std::bit_cast<std::int32_t>(words[2]), kQuantMin);
}

TEST(QuantInt32, ExponentRangeStraddleSaturatesHugeValues)
{
    // A block whose magnitudes straddle the 5-bit exponent range: the
    // huge value forces e past kQexpMax, where it cannot be
    // represented and saturates; the tiny one quantizes to zero.
    const std::vector<float> v{1e30f, 1e-30f, 0.5f};
    QuantStats st;
    const int e = blockExponent(v.data(), v.size(), 1, &st);
    EXPECT_EQ(e, kQexpMax);
    EXPECT_EQ(st.exp_clamps, 1u);
    std::vector<float> words(v.size()), back(v.size());
    encodeBlockInt32(v.data(), v.size(), e, words.data(), &st);
    EXPECT_EQ(st.value_clamps, 1u);
    decodeBlockInt32(words.data(), words.size(), e, back.data());
    EXPECT_LT(back[0], 1e30f); // clamped to the rail's decoded value
    EXPECT_EQ(back[1], 0.0f);
    EXPECT_NEAR(back[2], 0.5f, std::ldexp(1.0, e - kQuantFracBits));
}

TEST(QuantInt32, AccumulateOverflowClampsAndCounts)
{
    // Four contributions of ~0.9 at headroom 1 exceed int32: the
    // saturating add must clamp at the rail and report each lane.
    const std::vector<float> v(16, 0.9f);
    const int e = blockExponent(v.data(), v.size(), 1);
    std::vector<float> words(v.size());
    encodeBlockInt32(v.data(), v.size(), e, words.data());
    std::vector<float> acc = words;
    std::uint64_t clamps = 0;
    for (int k = 0; k < 3; ++k)
        clamps += addBlockInt32(acc.data(), words.data(), words.size());
    EXPECT_GT(clamps, 0u);
    for (float w : acc)
        EXPECT_EQ(std::bit_cast<std::int32_t>(w), kQuantMax);
    // With headroom 4 the same four contributions fit exactly.
    const int e4 = blockExponent(v.data(), v.size(), 4);
    EXPECT_GE(e4, e + 2);
    encodeBlockInt32(v.data(), v.size(), e4, words.data());
    acc = words;
    clamps = 0;
    for (int k = 0; k < 3; ++k)
        clamps += addBlockInt32(acc.data(), words.data(), words.size());
    EXPECT_EQ(clamps, 0u);
    std::vector<float> back(v.size());
    decodeBlockInt32(acc.data(), acc.size(), e4, back.data());
    for (float x : back)
        EXPECT_NEAR(x, 3.6f, 4 * std::ldexp(1.0, e4 - kQuantFracBits));
}

TEST(QuantInt32, AdditionCommutesBitIdentically)
{
    // The property that justifies in-switch integer aggregation:
    // summing the same contributions in any order yields the same
    // bits. Property-check several random blocks and orders.
    sim::Rng rng(23);
    for (int round = 0; round < 10; ++round) {
        const std::size_t n = 97;
        const std::uint32_t h = 8;
        std::vector<std::vector<float>> contribs(h);
        std::vector<float> all;
        for (auto &c : contribs) {
            c.resize(n);
            for (auto &x : c)
                x = static_cast<float>(rng.uniform(-1.0, 1.0));
            all.insert(all.end(), c.begin(), c.end());
        }
        const int e = blockExponent(all.data(), all.size(), h);
        std::vector<std::vector<float>> words(h);
        for (std::uint32_t w = 0; w < h; ++w) {
            words[w].resize(n);
            encodeBlockInt32(contribs[w].data(), n, e, words[w].data());
        }
        std::vector<std::uint32_t> order(h);
        for (std::uint32_t w = 0; w < h; ++w)
            order[w] = w;
        std::vector<float> ref;
        for (int perm = 0; perm < 8; ++perm) {
            std::vector<float> acc(n, std::bit_cast<float>(0));
            std::uint64_t clamps = 0;
            for (std::uint32_t w : order)
                clamps += addBlockInt32(acc.data(), words[w].data(), n);
            EXPECT_EQ(clamps, 0u);
            if (ref.empty()) {
                ref = acc;
            } else {
                for (std::size_t i = 0; i < n; ++i)
                    ASSERT_EQ(std::bit_cast<std::int32_t>(acc[i]),
                              std::bit_cast<std::int32_t>(ref[i]))
                        << i;
            }
            // Next sampled order: reverse, then random-ish rotations.
            if (perm == 0)
                std::reverse(order.begin(), order.end());
            else
                std::rotate(order.begin(),
                            order.begin() + 1 + (perm % (h - 1)),
                            order.end());
        }
    }
}

TEST(QuantInt32, RescaleShiftsAndSaturates)
{
    std::vector<float> words{std::bit_cast<float>(std::int32_t{1024}),
                             std::bit_cast<float>(std::int32_t{-1024})};
    // Raising the exponent by 2 divides by 4 (no clamping possible).
    EXPECT_EQ(rescaleBlockInt32(words.data(), words.size(), 2, 4), 0u);
    EXPECT_EQ(std::bit_cast<std::int32_t>(words[0]), 256);
    EXPECT_EQ(std::bit_cast<std::int32_t>(words[1]), -256);
    // Lowering it back multiplies by 4 exactly.
    EXPECT_EQ(rescaleBlockInt32(words.data(), words.size(), 4, 2), 0u);
    EXPECT_EQ(std::bit_cast<std::int32_t>(words[0]), 1024);
    // Lowering far enough saturates and counts.
    std::vector<float> big{std::bit_cast<float>(kQuantMax / 2 + 1)};
    EXPECT_EQ(rescaleBlockInt32(big.data(), big.size(), 4, 2), 1u);
    EXPECT_EQ(std::bit_cast<std::int32_t>(big[0]), kQuantMax);
}

TEST(QuantInt32, SpeculateExponentIsPureAndDefaultsOnZero)
{
    const std::vector<float> zeros(16, 0.0f);
    EXPECT_EQ(speculateExponent(zeros.data(), zeros.size(), 4),
              kDefaultQexp);
    sim::Rng rng(31);
    std::vector<float> agg(64);
    for (auto &x : agg)
        x = static_cast<float>(rng.uniform(-4.0, 4.0));
    const int a = speculateExponent(agg.data(), agg.size(), 4);
    const int b = speculateExponent(agg.data(), agg.size(), 4);
    EXPECT_EQ(a, b);
    // The speculated exponent must leave room for H contributions of
    // the estimated per-worker magnitude: encoding agg itself at the
    // result never saturates.
    QuantStats st;
    std::vector<float> words(agg.size());
    encodeBlockInt32(agg.data(), agg.size(), a, words.data(), &st);
    EXPECT_EQ(st.value_clamps, 0u);
}

} // namespace
} // namespace isw::ml
