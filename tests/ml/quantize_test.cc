/** @file fp16 codec tests, including exhaustive round-trips. */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/quantize.hh"
#include "sim/random.hh"

namespace isw::ml {
namespace {

TEST(Half, ExactValuesRoundTrip)
{
    for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -2.0f, 1024.0f,
                    0.25f, -0.125f, 65504.0f /* max half */}) {
        EXPECT_EQ(decodeHalf(encodeHalf(f)), f) << f;
    }
}

TEST(Half, SignedZeros)
{
    EXPECT_EQ(encodeHalf(0.0f), 0x0000);
    EXPECT_EQ(encodeHalf(-0.0f), 0x8000);
    EXPECT_EQ(decodeHalf(0x8000), -0.0f);
    EXPECT_TRUE(std::signbit(decodeHalf(0x8000)));
}

TEST(Half, InfinityAndNan)
{
    const float inf = std::numeric_limits<float>::infinity();
    EXPECT_EQ(encodeHalf(inf), 0x7C00);
    EXPECT_EQ(encodeHalf(-inf), 0xFC00);
    EXPECT_TRUE(std::isinf(decodeHalf(0x7C00)));
    EXPECT_TRUE(std::isnan(
        decodeHalf(encodeHalf(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Half, OverflowSaturatesToInfinity)
{
    EXPECT_EQ(encodeHalf(1e9f), 0x7C00);
    EXPECT_EQ(encodeHalf(-1e9f), 0xFC00);
    EXPECT_EQ(encodeHalf(65520.0f), 0x7C00); // rounds past max half
}

TEST(Half, UnderflowFlushesToZero)
{
    EXPECT_EQ(decodeHalf(encodeHalf(1e-12f)), 0.0f);
}

TEST(Half, SubnormalsRepresentable)
{
    // Smallest positive subnormal half is 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(decodeHalf(encodeHalf(tiny)), tiny);
    const float sub = std::ldexp(3.0f, -24);
    EXPECT_EQ(decodeHalf(encodeHalf(sub)), sub);
}

TEST(Half, RelativeErrorBoundedForNormals)
{
    sim::Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const float f =
            static_cast<float>(rng.uniform(-1000.0, 1000.0));
        if (std::fabs(f) < 1e-4f)
            continue;
        const float back = decodeHalf(encodeHalf(f));
        // Half has 11 significand bits: eps = 2^-11.
        EXPECT_LE(std::fabs(back - f) / std::fabs(f), 0x1.0p-11 + 1e-7f)
            << f;
    }
}

TEST(Half, AllHalfBitPatternsSurviveDecodeEncode)
{
    // decode(h) is exact in float; re-encoding must reproduce h for
    // every non-NaN pattern (NaN payloads may canonicalize).
    for (std::uint32_t h = 0; h <= 0xFFFF; ++h) {
        const float f = decodeHalf(static_cast<std::uint16_t>(h));
        if (std::isnan(f))
            continue;
        EXPECT_EQ(encodeHalf(f), h) << std::hex << h;
    }
}

TEST(Half, VectorHelpers)
{
    std::vector<float> v{1.0f, 2.5f, -3.25f};
    const auto halves = toHalf(v);
    EXPECT_EQ(halves.size(), 3u);
    EXPECT_EQ(fromHalf(halves), v); // all exactly representable

    std::vector<float> q{0.1f, 0.2f};
    quantizeInPlace(q);
    EXPECT_NE(q[0], 0.1f); // 0.1 is not representable in half
    EXPECT_NEAR(q[0], 0.1f, 1e-4f);
    EXPECT_GT(halfRoundTripError(std::vector<float>{0.1f}), 0.0f);
    EXPECT_EQ(halfRoundTripError(v), 0.0f);
}

} // namespace
} // namespace isw::ml
