/** @file Layer tests, including a numeric gradient check. */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/layers.hh"
#include "ml/network.hh"

namespace isw::ml {
namespace {

TEST(Linear, ShapesAndParamCollection)
{
    sim::Rng rng(1);
    Linear l(4, 3, rng, "test");
    EXPECT_EQ(l.inDim(), 4u);
    EXPECT_EQ(l.outDim(), 3u);
    std::vector<ParamRef> refs;
    l.collectParams(refs);
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_EQ(refs[0].name, "test.w");
    EXPECT_EQ(refs[0].value.size(), 12u);
    EXPECT_EQ(refs[1].value.size(), 3u);
}

TEST(Linear, XavierInitBounded)
{
    sim::Rng rng(2);
    Linear l(100, 100, rng);
    const double bound = std::sqrt(6.0 / 200.0);
    for (float v : l.weight().raw())
        EXPECT_LE(std::fabs(v), bound + 1e-6);
    for (float b : l.bias())
        EXPECT_FLOAT_EQ(b, 0.0f);
}

TEST(ReLU, ForwardClampsNegatives)
{
    ReLU r;
    Matrix x(1, 3);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 0.0f;
    x.at(0, 2) = 2.0f;
    Matrix y = r.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);
}

TEST(ReLU, BackwardMasksGradient)
{
    ReLU r;
    Matrix x(1, 2);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 3.0f;
    r.forward(x);
    Matrix dy(1, 2, 1.0f);
    Matrix dx = r.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 1), 1.0f);
}

TEST(Tanh, ForwardAndDerivative)
{
    Tanh t;
    Matrix x(1, 1);
    x.at(0, 0) = 0.5f;
    Matrix y = t.forward(x);
    EXPECT_NEAR(y.at(0, 0), std::tanh(0.5f), 1e-6);
    Matrix dy(1, 1, 1.0f);
    Matrix dx = t.backward(dy);
    const float th = std::tanh(0.5f);
    EXPECT_NEAR(dx.at(0, 0), 1.0f - th * th, 1e-6);
}

TEST(ParamVector, ExposesValueAndGrad)
{
    ParamVector p(3, 0.25f, "ls");
    std::vector<ParamRef> refs;
    p.collectParams(refs);
    ASSERT_EQ(refs.size(), 1u);
    EXPECT_EQ(refs[0].name, "ls");
    EXPECT_FLOAT_EQ(p.value()[2], 0.25f);
    EXPECT_FLOAT_EQ(p.grad()[0], 0.0f);
}

/**
 * Numeric gradient check: perturb parameters of a small MLP and
 * compare finite-difference loss slopes against backprop.
 */
TEST(GradCheck, MlpMatchesFiniteDifferences)
{
    sim::Rng rng(7);
    Network net = Network::mlp<Tanh>({3, 5, 2}, rng, "g");
    ParamSet params;
    params.addNetwork(net);

    Matrix x(2, 3);
    for (float &v : x.raw())
        v = static_cast<float>(rng.normal());
    Matrix target(2, 2);
    for (float &v : target.raw())
        v = static_cast<float>(rng.normal());

    auto loss = [&] {
        Matrix y = net.forward(x);
        float l = 0.0f;
        for (std::size_t i = 0; i < y.raw().size(); ++i) {
            const float d = y.raw()[i] - target.raw()[i];
            l += 0.5f * d * d;
        }
        return l;
    };

    params.zeroGrads();
    Matrix y = net.forward(x);
    Matrix dy(2, 2);
    for (std::size_t i = 0; i < y.raw().size(); ++i)
        dy.raw()[i] = y.raw()[i] - target.raw()[i];
    net.backward(dy);
    Vec analytic;
    params.copyGradsTo(analytic);

    Vec values;
    params.copyValuesTo(values);
    const float eps = 1e-3f;
    for (std::size_t i = 0; i < values.size(); i += 3) {
        Vec probe = values;
        probe[i] = values[i] + eps;
        params.setValues(probe);
        const float up = loss();
        probe[i] = values[i] - eps;
        params.setValues(probe);
        const float down = loss();
        const float numeric = (up - down) / (2 * eps);
        EXPECT_NEAR(analytic[i], numeric, 2e-2f) << "param " << i;
    }
}

} // namespace
} // namespace isw::ml
