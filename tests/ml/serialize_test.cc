/** @file Checkpoint container tests. */

#include <gtest/gtest.h>

#include <sstream>

#include "ml/serialize.hh"

namespace isw::ml {
namespace {

TEST(Serialize, RoundTripPreservesBits)
{
    std::vector<float> w{1.5f, -2.25f, 0.0f, 3.14159f, 1e-30f, -1e30f};
    std::stringstream ss;
    saveWeights(ss, w);
    const auto back = loadWeights(ss);
    EXPECT_EQ(back, w);
}

TEST(Serialize, EmptyVectorRoundTrips)
{
    std::stringstream ss;
    saveWeights(ss, {});
    EXPECT_TRUE(loadWeights(ss).empty());
}

TEST(Serialize, LargeVectorRoundTrips)
{
    std::vector<float> w(100000);
    for (std::size_t i = 0; i < w.size(); ++i)
        w[i] = static_cast<float>(i) * 0.001f;
    std::stringstream ss;
    saveWeights(ss, w);
    EXPECT_EQ(loadWeights(ss), w);
}

TEST(Serialize, RejectsBadMagic)
{
    std::stringstream ss;
    ss << "NOPE garbage";
    EXPECT_THROW(loadWeights(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncation)
{
    std::vector<float> w(64, 1.0f);
    std::stringstream ss;
    saveWeights(ss, w);
    const std::string full = ss.str();
    std::stringstream cut(full.substr(0, full.size() - 9));
    EXPECT_THROW(loadWeights(cut), std::runtime_error);
}

TEST(Serialize, DetectsCorruption)
{
    std::vector<float> w(16, 2.0f);
    std::stringstream ss;
    saveWeights(ss, w);
    std::string data = ss.str();
    data[20] ^= 0x40; // flip a bit in the payload
    std::stringstream bad(data);
    EXPECT_THROW(loadWeights(bad), std::runtime_error);
}

TEST(Serialize, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "isw_ckpt_test.bin";
    std::vector<float> w{4.0f, 5.0f, 6.0f};
    saveWeightsFile(path, w);
    EXPECT_EQ(loadWeightsFile(path), w);
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows)
{
    EXPECT_THROW(loadWeightsFile("/nonexistent/dir/x.bin"),
                 std::runtime_error);
}

TEST(Serialize, Fnv1aKnownVector)
{
    // FNV-1a of empty input is the offset basis.
    EXPECT_EQ(fnv1a("", 0), 0xCBF29CE484222325ULL);
    // Differs for different content.
    EXPECT_NE(fnv1a("a", 1), fnv1a("b", 1));
}

} // namespace
} // namespace isw::ml
