/** @file Optimizer tests against hand-derived reference updates. */

#include <gtest/gtest.h>

#include <cmath>

#include "ml/optimizer.hh"

namespace isw::ml {
namespace {

TEST(Sgd, PlainStep)
{
    Sgd opt(0.1);
    std::vector<float> p{1.0f, 2.0f};
    std::vector<float> g{1.0f, -1.0f};
    opt.step(p, g);
    EXPECT_FLOAT_EQ(p[0], 0.9f);
    EXPECT_FLOAT_EQ(p[1], 2.1f);
}

TEST(Sgd, MomentumAccumulates)
{
    Sgd opt(1.0, 0.5);
    std::vector<float> p{0.0f};
    std::vector<float> g{1.0f};
    opt.step(p, g); // v=1, p=-1
    EXPECT_FLOAT_EQ(p[0], -1.0f);
    opt.step(p, g); // v=1.5, p=-2.5
    EXPECT_FLOAT_EQ(p[0], -2.5f);
}

TEST(Sgd, LearningRateMutable)
{
    Sgd opt(0.1);
    opt.setLearningRate(0.01);
    EXPECT_DOUBLE_EQ(opt.learningRate(), 0.01);
}

TEST(RmsProp, MatchesReferenceFormula)
{
    const double lr = 0.01, rho = 0.9, eps = 1e-8;
    RmsProp opt(lr, rho, eps);
    std::vector<float> p{1.0f};
    std::vector<float> g{2.0f};
    opt.step(p, g);
    const double sq = (1 - rho) * 4.0;
    const double expect = 1.0 - lr * 2.0 / (std::sqrt(sq) + eps);
    EXPECT_NEAR(p[0], expect, 1e-6);
}

TEST(Adam, FirstStepMatchesReference)
{
    const double lr = 0.001, b1 = 0.9, b2 = 0.999, eps = 1e-8;
    Adam opt(lr, b1, b2, eps);
    std::vector<float> p{1.0f};
    std::vector<float> g{3.0f};
    opt.step(p, g);
    // t=1: m=0.3, v=0.009*... m_hat=3.0, v_hat=9.0 -> step ~ lr.
    const double m = (1 - b1) * 3.0;
    const double v = (1 - b2) * 9.0;
    const double alpha = lr * std::sqrt(1 - b2) / (1 - b1);
    const double expect = 1.0 - alpha * m / (std::sqrt(v) + eps);
    EXPECT_NEAR(p[0], expect, 1e-6);
}

TEST(Adam, ConvergesOnQuadratic)
{
    // Minimize f(x) = (x-5)^2 from x=0.
    Adam opt(0.1);
    std::vector<float> p{0.0f};
    for (int i = 0; i < 500; ++i) {
        std::vector<float> g{2.0f * (p[0] - 5.0f)};
        opt.step(p, g);
    }
    EXPECT_NEAR(p[0], 5.0f, 0.05f);
}

TEST(Adam, DeterministicAcrossReplicas)
{
    // The decentralized-weights argument: identical optimizers applied
    // to identical gradients stay bit-identical.
    Adam a(0.01), b(0.01);
    std::vector<float> pa{1.0f, -1.0f}, pb{1.0f, -1.0f};
    for (int i = 0; i < 100; ++i) {
        std::vector<float> g{static_cast<float>(i % 7) - 3.0f,
                             static_cast<float>(i % 5) - 2.0f};
        a.step(pa, g);
        b.step(pb, g);
    }
    EXPECT_EQ(pa[0], pb[0]);
    EXPECT_EQ(pa[1], pb[1]);
}

TEST(Sgd, MomentumConvergesOnQuadratic)
{
    Sgd opt(0.05, 0.9);
    std::vector<float> p{10.0f};
    for (int i = 0; i < 300; ++i) {
        std::vector<float> g{2.0f * p[0]};
        opt.step(p, g);
    }
    EXPECT_NEAR(p[0], 0.0f, 0.01f);
}

} // namespace
} // namespace isw::ml
