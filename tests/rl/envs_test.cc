/** @file Environment determinism, physics, and interface tests. */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/envs/cheetah.hh"
#include "rl/envs/hopper.hh"
#include "rl/envs/pong.hh"
#include "rl/envs/qbert.hh"

namespace isw::rl {
namespace {

TEST(PongLite, ObservationShape)
{
    PongLite env{sim::Rng(1)};
    EXPECT_EQ(env.observationDim(), 6u);
    EXPECT_EQ(env.actionDim(), 3u);
    EXPECT_FALSE(env.continuousActions());
    const Vec obs = env.reset();
    EXPECT_EQ(obs.size(), 6u);
}

TEST(PongLite, DeterministicUnderEqualSeeds)
{
    PongLite a{sim::Rng(42)}, b{sim::Rng(42)};
    a.reset();
    b.reset();
    for (int i = 0; i < 200; ++i) {
        const std::size_t act = static_cast<std::size_t>(i % 3);
        StepResult ra = a.step(act);
        StepResult rb = b.step(act);
        EXPECT_EQ(ra.observation, rb.observation);
        EXPECT_EQ(ra.reward, rb.reward);
        EXPECT_EQ(ra.done, rb.done);
        if (ra.done) {
            a.reset();
            b.reset();
        }
    }
}

TEST(PongLite, EpisodeEndsAtPointsToWin)
{
    PongConfig cfg;
    cfg.points_to_win = 1;
    PongLite env{sim::Rng(3), cfg};
    env.reset();
    bool done = false;
    float total = 0.0f;
    for (int i = 0; i < 10000 && !done; ++i) {
        StepResult r = env.step(0); // do nothing
        total += r.reward;
        done = r.done;
    }
    EXPECT_TRUE(done);
    EXPECT_EQ(env.agentScore() + env.opponentScore(), 1);
    EXPECT_NEAR(std::fabs(total), 1.0f, 1e-6);
}

TEST(PongLite, RewardsBoundedPerPoint)
{
    PongLite env{sim::Rng(5)};
    env.reset();
    for (int i = 0; i < 5000; ++i) {
        StepResult r = env.step(static_cast<std::size_t>(i % 3));
        EXPECT_GE(r.reward, -1.0f);
        EXPECT_LE(r.reward, 1.0f);
        if (r.done)
            env.reset();
    }
}

TEST(PongLite, DiscreteStepOnContinuousThrows)
{
    PongLite env{sim::Rng(1)};
    env.reset();
    float a[] = {0.0f};
    EXPECT_THROW(env.step(std::span<const float>(a, 1)), std::logic_error);
}

TEST(QbertLite, StartsAtApexWithOneColoredCell)
{
    QbertLite env{sim::Rng(1)};
    const Vec obs = env.reset();
    EXPECT_EQ(obs.size(), env.observationDim());
    EXPECT_NEAR(env.coloredFraction(), 1.0f / 15.0f, 1e-6f); // 5 rows
}

TEST(QbertLite, HoppingOffPyramidEndsEpisode)
{
    QbertLite env{sim::Rng(1)};
    env.reset();
    StepResult r = env.step(2); // up-left from the apex: off-board
    EXPECT_TRUE(r.done);
    EXPECT_LT(r.reward, 0.0f);
}

TEST(QbertLite, ColoringNewCellsRewards)
{
    QbertLite env{sim::Rng(1)};
    env.reset();
    StepResult r = env.step(0); // down-left: new cell
    EXPECT_GT(r.reward, 0.0f);
    EXPECT_FALSE(r.done);
    // Going back up: already colored, only the step cost.
    StepResult r2 = env.step(3);
    EXPECT_LT(r2.reward, 0.0f);
}

TEST(QbertLite, FullClearGrantsBonusAndEnds)
{
    QbertConfig cfg;
    cfg.rows = 2; // 3 cells: trivial to clear
    QbertLite env{sim::Rng(1), cfg};
    env.reset();
    StepResult r = env.step(0); // (1,0)
    EXPECT_FALSE(r.done);
    r = env.step(1); // wait: from (1,0) down-right -> (2,1) invalid (rows=2)
    // Instead hop up-right back then down-right.
    (void)r;
    QbertLite env2{sim::Rng(1), cfg};
    env2.reset();
    env2.step(0);               // (1,0) colored
    StepResult fin = env2.step(3); // up-right -> (0,0) already colored
    fin = env2.step(1);            // down-right -> (1,1): clears all 3
    EXPECT_TRUE(fin.done);
    EXPECT_GT(fin.reward, cfg.clear_bonus - 1.0f);
}

TEST(Hopper1D, GroundThrustLaunchesBody)
{
    Hopper1D env{sim::Rng(1)};
    env.reset();
    EXPECT_TRUE(env.grounded());
    float full[] = {1.0f};
    env.step(std::span<const float>(full, 1));
    EXPECT_FALSE(env.grounded());
    EXPECT_GT(env.forwardVelocity(), 0.0f);
}

TEST(Hopper1D, GravityBringsItBackDown)
{
    Hopper1D env{sim::Rng(1)};
    env.reset();
    float full[] = {1.0f};
    float zero[] = {0.0f};
    env.step(std::span<const float>(full, 1));
    int steps = 0;
    while (!env.grounded() && steps < 100) {
        env.step(std::span<const float>(zero, 1));
        ++steps;
    }
    EXPECT_TRUE(env.grounded());
    EXPECT_GT(steps, 2);
}

TEST(Hopper1D, HoppingBeatsIdlingInReward)
{
    Hopper1D a{sim::Rng(1)}, b{sim::Rng(1)};
    a.reset();
    b.reset();
    float hop[] = {1.0f};
    float idle[] = {0.0f};
    float ra = 0.0f, rb = 0.0f;
    for (int i = 0; i < 200; ++i) {
        ra += a.step(std::span<const float>(hop, 1)).reward;
        rb += b.step(std::span<const float>(idle, 1)).reward;
    }
    EXPECT_GT(ra, rb);
}

TEST(Hopper1D, EpisodeEndsAtHorizon)
{
    HopperConfig cfg;
    cfg.max_steps = 10;
    Hopper1D env{sim::Rng(1), cfg};
    env.reset();
    float zero[] = {0.0f};
    StepResult r;
    for (int i = 0; i < 10; ++i)
        r = env.step(std::span<const float>(zero, 1));
    EXPECT_TRUE(r.done);
}

TEST(CheetahLite, PushingAcceleratesWhileStrideHasRoom)
{
    CheetahLite env{sim::Rng(1)};
    env.reset();
    float push[] = {1.0f, 0.0f};
    env.step(std::span<const float>(push, 2));
    EXPECT_GT(env.velocity(), 0.0f);
}

TEST(CheetahLite, StrideSaturatesWithoutRecovery)
{
    CheetahLite env{sim::Rng(1)};
    env.reset();
    float push[] = {1.0f, 0.0f};
    for (int i = 0; i < 50; ++i)
        env.step(std::span<const float>(push, 2));
    EXPECT_NEAR(env.stride(), 1.0f, 1e-5f);
    const float v_stuck = env.velocity();
    // With the stride pinned at 1 there is no more thrust: velocity
    // decays despite full push.
    env.step(std::span<const float>(push, 2));
    EXPECT_LT(env.velocity(), v_stuck);
}

TEST(CheetahLite, PumpingSustainsSpeed)
{
    CheetahLite pump{sim::Rng(1)}, hold{sim::Rng(1)};
    pump.reset();
    hold.reset();
    float push[] = {1.0f, 0.0f};
    float recover[] = {0.0f, 1.0f};
    float rp = 0.0f, rh = 0.0f;
    for (int i = 0; i < 200; ++i) {
        const bool phase = pump.stride() > 0.6f;
        rp += pump.step(std::span<const float>(phase ? recover : push, 2))
                  .reward;
        rh += hold.step(std::span<const float>(push, 2)).reward;
    }
    EXPECT_GT(rp, rh);
}

} // namespace
} // namespace isw::rl
