/** @file Policy evaluation tests. */

#include <gtest/gtest.h>

#include "rl/evaluate.hh"
#include "rl/model_zoo.hh"

namespace isw::rl {
namespace {

class EvalSuite : public ::testing::TestWithParam<Algo>
{
};

TEST_P(EvalSuite, EnvironmentFactoryMatchesAgentDims)
{
    auto env = makeEnvironment(GetParam(), 7);
    auto agent = makeAgent(GetParam(), specFor(GetParam()).config, 1, 2);
    const ml::Vec obs = env->reset();
    const ml::Vec action = agent->policyAction(obs);
    if (env->continuousActions()) {
        EXPECT_EQ(action.size(), env->actionDim());
    } else {
        ASSERT_EQ(action.size(), 1u);
        EXPECT_LT(static_cast<std::size_t>(action[0]), env->actionDim());
    }
}

TEST_P(EvalSuite, EvaluationRunsRequestedEpisodes)
{
    auto env = makeEnvironment(GetParam(), 11);
    auto agent = makeAgent(GetParam(), specFor(GetParam()).config, 1, 2);
    const EvalResult res = evaluatePolicy(*agent, *env, 3, 500);
    EXPECT_EQ(res.episodes, 3u);
    EXPECT_GE(res.max_reward, res.mean_reward);
    EXPECT_LE(res.min_reward, res.mean_reward);
    EXPECT_GT(res.mean_length, 0.0);
}

TEST_P(EvalSuite, EvaluationDoesNotTouchTrainingState)
{
    auto env = makeEnvironment(GetParam(), 13);
    auto agent = makeAgent(GetParam(), specFor(GetParam()).config, 1, 2);
    ml::Vec before;
    agent->getWeights(before);
    const auto episodes_before = agent->episodesCompleted();
    evaluatePolicy(*agent, *env, 2, 300);
    ml::Vec after;
    agent->getWeights(after);
    EXPECT_EQ(before, after);
    EXPECT_EQ(agent->episodesCompleted(), episodes_before);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, EvalSuite,
                         ::testing::Values(Algo::kDqn, Algo::kA2c,
                                           Algo::kPpo, Algo::kDdpg),
                         [](const auto &info) {
                             return algoName(info.param);
                         });

TEST(Evaluate, TrainedPpoBeatsUntrained)
{
    const auto &spec = specFor(Algo::kPpo);
    auto untrained = makeAgent(Algo::kPpo, spec.config, 21, 22);
    auto trained = makeAgent(Algo::kPpo, spec.config, 21, 22);
    for (int i = 0; i < 250; ++i) {
        const ml::Vec &g = trained->computeGradient();
        trained->applyAggregatedGradient(g, 1);
    }
    auto env_a = makeEnvironment(Algo::kPpo, 99);
    auto env_b = makeEnvironment(Algo::kPpo, 99);
    const EvalResult cold = evaluatePolicy(*untrained, *env_a, 5);
    const EvalResult hot = evaluatePolicy(*trained, *env_b, 5);
    EXPECT_GT(hot.mean_reward, cold.mean_reward + 5.0);
}

TEST(Evaluate, ZeroEpisodesIsWellDefined)
{
    auto env = makeEnvironment(Algo::kPpo, 1);
    auto agent = makeAgent(Algo::kPpo, specFor(Algo::kPpo).config, 1, 2);
    const EvalResult res = evaluatePolicy(*agent, *env, 0);
    EXPECT_EQ(res.episodes, 0u);
    EXPECT_EQ(res.mean_reward, 0.0);
}

} // namespace
} // namespace isw::rl
