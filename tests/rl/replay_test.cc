/** @file Replay buffer tests. */

#include <gtest/gtest.h>

#include "rl/replay_buffer.hh"

namespace isw::rl {
namespace {

Transition
t(float tag)
{
    return Transition{{tag}, {0.0f}, tag, {tag}, false};
}

TEST(ReplayBuffer, RejectsZeroCapacity)
{
    EXPECT_THROW(ReplayBuffer(0), std::invalid_argument);
}

TEST(ReplayBuffer, FillsUpToCapacity)
{
    ReplayBuffer buf(3);
    EXPECT_TRUE(buf.empty());
    buf.push(t(1));
    buf.push(t(2));
    EXPECT_EQ(buf.size(), 2u);
    buf.push(t(3));
    buf.push(t(4)); // evicts the oldest
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.capacity(), 3u);
}

TEST(ReplayBuffer, RingOverwritesOldest)
{
    ReplayBuffer buf(2);
    buf.push(t(1));
    buf.push(t(2));
    buf.push(t(3));
    // Slot 0 now holds tag 3.
    EXPECT_FLOAT_EQ(buf.at(0).reward, 3.0f);
    EXPECT_FLOAT_EQ(buf.at(1).reward, 2.0f);
}

TEST(ReplayBuffer, SampleOnEmptyThrows)
{
    ReplayBuffer buf(2);
    sim::Rng rng(1);
    std::vector<const Transition *> out;
    EXPECT_THROW(buf.sample(1, rng, out), std::logic_error);
}

TEST(ReplayBuffer, SampleReturnsRequestedCount)
{
    ReplayBuffer buf(4);
    for (int i = 0; i < 4; ++i)
        buf.push(t(float(i)));
    sim::Rng rng(2);
    std::vector<const Transition *> out;
    buf.sample(16, rng, out);
    EXPECT_EQ(out.size(), 16u);
    for (const Transition *tr : out)
        EXPECT_NE(tr, nullptr);
}

TEST(ReplayBuffer, SampleCoversAllEntries)
{
    ReplayBuffer buf(8);
    for (int i = 0; i < 8; ++i)
        buf.push(t(float(i)));
    sim::Rng rng(3);
    std::vector<const Transition *> out;
    std::set<float> seen;
    for (int round = 0; round < 50; ++round) {
        buf.sample(8, rng, out);
        for (const Transition *tr : out)
            seen.insert(tr->reward);
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(ReplayBuffer, SampleOnlyFromFilledRegion)
{
    ReplayBuffer buf(100);
    buf.push(t(7));
    sim::Rng rng(4);
    std::vector<const Transition *> out;
    buf.sample(32, rng, out);
    for (const Transition *tr : out)
        EXPECT_FLOAT_EQ(tr->reward, 7.0f);
}

} // namespace
} // namespace isw::rl
