/** @file Agent tests: every algorithm x determinism, gradient shape,
 *  weight install semantics, and single-node learning sanity. */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/agent.hh"
#include "rl/model_zoo.hh"

namespace isw::rl {
namespace {

/** Parameterized over all four paper algorithms. */
class AgentSuite : public ::testing::TestWithParam<Algo>
{
  protected:
    std::unique_ptr<Agent>
    make(std::uint64_t weight_seed = 42, std::uint64_t env_seed = 7)
    {
        return makeAgent(GetParam(), specFor(GetParam()).config, weight_seed,
                         env_seed);
    }
};

TEST_P(AgentSuite, ReportsItsAlgorithm)
{
    EXPECT_EQ(make()->algo(), GetParam());
}

TEST_P(AgentSuite, GradientMatchesParamCount)
{
    auto a = make();
    const ml::Vec &g = a->computeGradient();
    EXPECT_EQ(g.size(), a->paramCount());
    EXPECT_GT(a->paramCount(), 100u);
}

TEST_P(AgentSuite, GradientIsFinite)
{
    auto a = make();
    for (int i = 0; i < 5; ++i) {
        const ml::Vec &g = a->computeGradient();
        for (float v : g)
            ASSERT_TRUE(std::isfinite(v));
        a->applyAggregatedGradient(g, 1);
    }
}

TEST_P(AgentSuite, EqualWeightSeedsGiveIdenticalInitialWeights)
{
    auto a = make(42, 1);
    auto b = make(42, 2); // different env seed
    ml::Vec wa, wb;
    a->getWeights(wa);
    b->getWeights(wb);
    EXPECT_EQ(wa, wb);
}

TEST_P(AgentSuite, DifferentWeightSeedsDiffer)
{
    auto a = make(42, 1);
    auto b = make(43, 1);
    ml::Vec wa, wb;
    a->getWeights(wa);
    b->getWeights(wb);
    EXPECT_NE(wa, wb);
}

TEST_P(AgentSuite, SetWeightsRoundTrips)
{
    auto a = make();
    ml::Vec w;
    a->getWeights(w);
    for (float &v : w)
        v += 0.01f;
    a->setWeights(w);
    ml::Vec back;
    a->getWeights(back);
    EXPECT_EQ(back, w);
}

TEST_P(AgentSuite, ApplyAggregatedGradientMovesWeights)
{
    auto a = make();
    ml::Vec before;
    a->getWeights(before);
    ml::Vec g = a->computeGradient(); // copy
    bool any_nonzero = false;
    for (float v : g)
        any_nonzero |= v != 0.0f;
    if (!any_nonzero) {
        // Replay-based algorithms return zeros during warmup; keep
        // collecting until learning starts.
        for (int i = 0; i < 30 && !any_nonzero; ++i) {
            g = a->computeGradient();
            for (float v : g)
                any_nonzero |= v != 0.0f;
        }
    }
    ASSERT_TRUE(any_nonzero);
    a->applyAggregatedGradient(g, 2);
    ml::Vec after;
    a->getWeights(after);
    EXPECT_NE(before, after);
    EXPECT_EQ(a->updatesApplied(), 1u);
}

TEST_P(AgentSuite, ApplyRejectsWrongSize)
{
    auto a = make();
    ml::Vec tiny(3, 0.0f);
    EXPECT_THROW(a->applyAggregatedGradient(tiny, 1), std::invalid_argument);
    ml::Vec ok(a->paramCount(), 0.0f);
    EXPECT_THROW(a->applyAggregatedGradient(ok, 0), std::invalid_argument);
}

TEST_P(AgentSuite, ReplicasStayIdenticalUnderSharedUpdates)
{
    // The paper's decentralized-weight-storage invariant (§4.1).
    auto a = make(42, 1);
    auto b = make(42, 2);
    for (int i = 0; i < 8; ++i) {
        ml::Vec ga = a->computeGradient();
        const ml::Vec &gb = b->computeGradient();
        ml::Vec sum(ga.size());
        for (std::size_t j = 0; j < sum.size(); ++j)
            sum[j] = ga[j] + gb[j];
        a->applyAggregatedGradient(sum, 2);
        b->applyAggregatedGradient(sum, 2);
    }
    ml::Vec wa, wb;
    a->getWeights(wa);
    b->getWeights(wb);
    EXPECT_EQ(wa, wb);
}

TEST_P(AgentSuite, InstallWeightsCountsAsUpdate)
{
    auto a = make();
    ml::Vec w;
    a->getWeights(w);
    a->installWeights(w);
    EXPECT_EQ(a->updatesApplied(), 1u);
}

TEST_P(AgentSuite, EpisodesAndRewardsAccumulate)
{
    auto a = make();
    for (int i = 0; i < 60 && a->episodesCompleted() < 2; ++i) {
        const ml::Vec &g = a->computeGradient();
        a->applyAggregatedGradient(g, 1);
    }
    EXPECT_GE(a->episodesCompleted(), 2u);
    // avgEpisodeReward is defined once an episode finished.
    (void)a->avgEpisodeReward(10);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, AgentSuite,
                         ::testing::Values(Algo::kDqn, Algo::kA2c,
                                           Algo::kPpo, Algo::kDdpg),
                         [](const auto &info) {
                             return algoName(info.param);
                         });

TEST(ModelZoo, MatchesPaperTable1)
{
    EXPECT_EQ(benchmarks().size(), 4u);
    EXPECT_EQ(specFor(Algo::kDqn).paper_iterations, 200'000'000ULL);
    EXPECT_NEAR(specFor(Algo::kDqn).paper_model_bytes / (1024.0 * 1024.0),
                6.41, 0.01);
    EXPECT_NEAR(specFor(Algo::kPpo).paper_model_bytes / 1024.0, 40.02, 0.01);
    EXPECT_NEAR(specFor(Algo::kDdpg).paper_model_bytes / 1024.0, 157.52,
                0.01);
    EXPECT_EQ(specFor(Algo::kA2c).paper_iterations, 2'000'000ULL);
}

TEST(LearningSanity, A2cImprovesOnQbertLite)
{
    auto a = makeAgent(Algo::kA2c, specFor(Algo::kA2c).config, 11, 12);
    for (int i = 0; i < 60; ++i) {
        const ml::Vec &g = a->computeGradient();
        a->applyAggregatedGradient(g, 1);
    }
    const double early = a->avgEpisodeReward(50);
    for (int i = 0; i < 900; ++i) {
        const ml::Vec &g = a->computeGradient();
        a->applyAggregatedGradient(g, 1);
    }
    EXPECT_GT(a->avgEpisodeReward(10), early + 1.0);
}

TEST(LearningSanity, PpoImprovesOnHopper1D)
{
    auto a = makeAgent(Algo::kPpo, specFor(Algo::kPpo).config, 21, 22);
    const ml::Vec &g0 = a->computeGradient();
    a->applyAggregatedGradient(g0, 1);
    const double early = a->avgEpisodeReward(10);
    for (int i = 0; i < 300; ++i) {
        const ml::Vec &g = a->computeGradient();
        a->applyAggregatedGradient(g, 1);
    }
    EXPECT_GT(a->avgEpisodeReward(10), early);
}

} // namespace
} // namespace isw::rl
