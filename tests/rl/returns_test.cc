/** @file Hand-computed fixtures for the return/advantage estimators. */

#include <gtest/gtest.h>

#include <cmath>

#include "rl/returns.hh"

namespace isw::rl {
namespace {

TEST(NStepReturns, PlainDiscountedChain)
{
    // R2 = 3 + 0.5*10 = 8; R1 = 2 + 0.5*8 = 6; R0 = 1 + 0.5*6 = 4.
    const std::vector<float> rewards{1.0f, 2.0f, 3.0f};
    const std::vector<bool> dones{false, false, false};
    const auto r = nStepReturns(rewards, dones, 10.0f, 0.5f);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_FLOAT_EQ(r[2], 8.0f);
    EXPECT_FLOAT_EQ(r[1], 6.0f);
    EXPECT_FLOAT_EQ(r[0], 4.0f);
}

TEST(NStepReturns, TerminalStepIgnoresBootstrap)
{
    const std::vector<float> rewards{1.0f, 2.0f};
    const std::vector<bool> dones{false, true};
    const auto r = nStepReturns(rewards, dones, 100.0f, 0.9f);
    EXPECT_FLOAT_EQ(r[1], 2.0f);            // no bootstrap past `done`
    EXPECT_FLOAT_EQ(r[0], 1.0f + 0.9f * 2); // chains within the episode
}

TEST(NStepReturns, MidBatchEpisodeBoundaryResets)
{
    // Episode ends at step 1; step 2 starts a fresh episode.
    const std::vector<float> rewards{1.0f, 2.0f, 3.0f};
    const std::vector<bool> dones{false, true, false};
    const auto r = nStepReturns(rewards, dones, 10.0f, 0.5f);
    EXPECT_FLOAT_EQ(r[2], 3.0f + 0.5f * 10.0f); // bootstraps
    EXPECT_FLOAT_EQ(r[1], 2.0f);                // terminal
    EXPECT_FLOAT_EQ(r[0], 1.0f + 0.5f * 2.0f);  // stops at boundary
}

TEST(NStepReturns, EmptyAndMismatched)
{
    EXPECT_TRUE(nStepReturns({}, {}, 1.0f, 0.9f).empty());
    const std::vector<float> rewards{1.0f};
    EXPECT_THROW(nStepReturns(rewards, {}, 0.0f, 0.9f),
                 std::invalid_argument);
}

TEST(Gae, LambdaOneIsMonteCarloAdvantage)
{
    // With lambda = 1, A_t = R_t - V_t (telescoping deltas).
    const std::vector<float> rewards{1.0f, 1.0f, 1.0f};
    const std::vector<float> values{0.5f, 0.25f, 0.125f};
    const std::vector<bool> dones{false, false, false};
    const float gamma = 0.9f, boot = 2.0f;
    const GaeResult g =
        gaeAdvantages(rewards, values, dones, boot, gamma, 1.0f);
    const auto mc = nStepReturns(rewards, dones, boot, gamma);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_NEAR(g.advantages[i], mc[i] - values[i], 1e-5f);
        EXPECT_NEAR(g.returns[i], mc[i], 1e-5f);
    }
}

TEST(Gae, LambdaZeroIsOneStepTdError)
{
    const std::vector<float> rewards{2.0f, 3.0f};
    const std::vector<float> values{1.0f, 1.5f};
    const std::vector<bool> dones{false, false};
    const GaeResult g =
        gaeAdvantages(rewards, values, dones, 4.0f, 0.5f, 0.0f);
    EXPECT_FLOAT_EQ(g.advantages[0], 2.0f + 0.5f * 1.5f - 1.0f);
    EXPECT_FLOAT_EQ(g.advantages[1], 3.0f + 0.5f * 4.0f - 1.5f);
}

TEST(Gae, HandComputedMidLambda)
{
    // Single step, terminal: delta = r - V.
    const std::vector<float> rewards{1.0f};
    const std::vector<float> values{0.4f};
    const std::vector<bool> dones{true};
    const GaeResult g =
        gaeAdvantages(rewards, values, dones, 99.0f, 0.9f, 0.95f);
    EXPECT_FLOAT_EQ(g.advantages[0], 0.6f);
    EXPECT_FLOAT_EQ(g.returns[0], 1.0f);
}

TEST(Gae, EpisodeBoundaryStopsCredit)
{
    const std::vector<float> rewards{1.0f, 5.0f};
    const std::vector<float> values{0.0f, 0.0f};
    const std::vector<bool> dones{true, false};
    const GaeResult g =
        gaeAdvantages(rewards, values, dones, 10.0f, 0.9f, 0.9f);
    // Step 0 terminal: its advantage is exactly r0 - V0; no leakage
    // from the juicy step-1 future.
    EXPECT_FLOAT_EQ(g.advantages[0], 1.0f);
    EXPECT_FLOAT_EQ(g.advantages[1], 5.0f + 0.9f * 10.0f);
}

TEST(Normalize, ZeroMeanUnitStd)
{
    std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};
    normalizeInPlace(v);
    float mean = 0.0f, sq = 0.0f;
    for (float x : v)
        mean += x;
    mean /= 4.0f;
    for (float x : v)
        sq += (x - mean) * (x - mean);
    EXPECT_NEAR(mean, 0.0f, 1e-6f);
    EXPECT_NEAR(std::sqrt(sq / 4.0f), 1.0f, 1e-3f);
}

TEST(Normalize, ConstantVectorDoesNotExplode)
{
    std::vector<float> v{5.0f, 5.0f, 5.0f};
    normalizeInPlace(v);
    for (float x : v) {
        EXPECT_TRUE(std::isfinite(x));
        EXPECT_NEAR(x, 0.0f, 1e-3f);
    }
}

TEST(Normalize, EmptyIsNoop)
{
    std::vector<float> v;
    normalizeInPlace(v);
    EXPECT_TRUE(v.empty());
}

} // namespace
} // namespace isw::rl
