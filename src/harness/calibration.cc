#include "harness/calibration.hh"

#include <stdexcept>

namespace isw::harness {

const std::array<PaperSyncRow, 4> &
paperSyncTable()
{
    // Table 4 of the paper, verbatim.
    static const std::array<PaperSyncRow, 4> kRows{{
        {rl::Algo::kDqn, 1.40e6, 31.72, 16.08, 8.66, 20.00, 19.94, 20.00},
        {rl::Algo::kA2c, 2.00e5, 2.87, 1.78, 1.12, 13491.73, 13478.39,
         13489.22},
        {rl::Algo::kPpo, 8.00e4, 0.39, 0.42, 0.22, 3090.24, 3093.18,
         3091.61},
        {rl::Algo::kDdpg, 7.50e5, 8.07, 9.01, 4.40, 2476.75, 2487.43,
         2479.62},
    }};
    return kRows;
}

const std::array<PaperAsyncRow, 4> &
paperAsyncTable()
{
    // Table 5 of the paper, verbatim.
    static const std::array<PaperAsyncRow, 4> kRows{{
        {rl::Algo::kDqn, 6.30e6, 3.50e6, 24.88, 12.07, 43.54, 11.74, 19.10,
         19.82},
        {rl::Algo::kA2c, 1.20e6, 4.00e5, 13.13, 12.53, 4.38, 1.39, 13402.83,
         13505.46},
        {rl::Algo::kPpo, 5.40e5, 1.20e5, 3.40, 7.99, 0.51, 0.27, 3083.67,
         3084.23},
        {rl::Algo::kDdpg, 3.00e6, 1.50e6, 11.58, 14.89, 9.65, 6.20, 2421.89,
         2485.35},
    }};
    return kRows;
}

namespace {

const PaperSyncRow &
syncRow(rl::Algo algo)
{
    for (const auto &r : paperSyncTable())
        if (r.algo == algo)
            return r;
    throw std::logic_error("calibration: unknown algorithm");
}

const PaperAsyncRow &
asyncRow(rl::Algo algo)
{
    for (const auto &r : paperAsyncTable())
        if (r.algo == algo)
            return r;
    throw std::logic_error("calibration: unknown algorithm");
}

} // namespace

double
paperSyncSpeedup(rl::Algo algo, dist::StrategyKind k)
{
    const auto &r = syncRow(algo);
    switch (k) {
      case dist::StrategyKind::kSyncPs: return 1.0;
      case dist::StrategyKind::kSyncAllReduce: return r.ps_hours / r.ar_hours;
      case dist::StrategyKind::kSyncIswitch: return r.ps_hours / r.isw_hours;
      default:
        throw std::invalid_argument("paperSyncSpeedup: async strategy");
    }
}

double
paperAsyncSpeedup(rl::Algo algo)
{
    const auto &r = asyncRow(algo);
    return r.ps_hours / r.isw_hours;
}

double
paperSyncPerIterMs(rl::Algo algo, dist::StrategyKind k)
{
    const auto &r = syncRow(algo);
    double hours = 0.0;
    switch (k) {
      case dist::StrategyKind::kSyncPs: hours = r.ps_hours; break;
      case dist::StrategyKind::kSyncAllReduce: hours = r.ar_hours; break;
      case dist::StrategyKind::kSyncIswitch: hours = r.isw_hours; break;
      default:
        throw std::invalid_argument("paperSyncPerIterMs: async strategy");
    }
    return hours * 3600.0 * 1000.0 / r.iterations;
}

} // namespace isw::harness
