/**
 * @file
 * The paper's published evaluation numbers (Tables 3, 4, 5), kept in
 * one place so every bench can print measured-vs-paper comparisons and
 * EXPERIMENTS.md stays verifiable.
 */

#ifndef ISW_HARNESS_CALIBRATION_HH
#define ISW_HARNESS_CALIBRATION_HH

#include "dist/strategy.hh"
#include "rl/agent.hh"

namespace isw::harness {

/** One (algorithm, strategy) cell of the paper's sync evaluation. */
struct PaperSyncRow
{
    rl::Algo algo;
    double iterations;        ///< Table 4 "Number of Iterations"
    double ps_hours;          ///< Table 4 PS end-to-end time
    double ar_hours;          ///< Table 4 AR end-to-end time
    double isw_hours;         ///< Table 4 iSW end-to-end time
    double ps_reward;         ///< Table 4 final average rewards
    double ar_reward;
    double isw_reward;
};

/** One algorithm row of the paper's async evaluation (Table 5). */
struct PaperAsyncRow
{
    rl::Algo algo;
    double ps_iterations;
    double isw_iterations;
    double ps_periter_ms;
    double isw_periter_ms;
    double ps_hours;
    double isw_hours;
    double ps_reward;
    double isw_reward;
};

/** Table 4 as published. */
const std::array<PaperSyncRow, 4> &paperSyncTable();

/** Table 5 as published. */
const std::array<PaperAsyncRow, 4> &paperAsyncTable();

/** Table 3 speedups derived from Table 4 (vs the PS baseline). */
double paperSyncSpeedup(rl::Algo algo, dist::StrategyKind k);

/** Table 3 async speedups derived from Table 5. */
double paperAsyncSpeedup(rl::Algo algo);

/** Paper per-iteration milliseconds for the sync strategies. */
double paperSyncPerIterMs(rl::Algo algo, dist::StrategyKind k);

} // namespace isw::harness

#endif // ISW_HARNESS_CALIBRATION_HH
