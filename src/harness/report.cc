#include "harness/report.hh"

#include <algorithm>
#include <cstdio>

namespace isw::harness {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
}

Table &
Table::row(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
    return *this;
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c]
               << std::string(width[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };
    auto rule = [&] {
        for (std::size_t c = 0; c < width.size(); ++c)
            os << "+" << std::string(width[c] + 2, '-');
        os << "+\n";
    };

    rule();
    line(headers_);
    rule();
    for (const auto &r : rows_)
        line(r);
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c ? "," : "") << cells[c];
        os << "\n";
    };
    line(headers_);
    for (const auto &r : rows_)
        line(r);
}

std::string
fmt(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmtSci(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.2E", v);
    return buf;
}

void
banner(const std::string &title, std::ostream &os)
{
    os << "\n=== " << title << " ===\n";
}

} // namespace isw::harness
