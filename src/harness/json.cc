#include "harness/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace isw::harness::json {

namespace {

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/**
 * Shortest-round-trip-ish number formatting: integers (within the
 * double-exact range) print without a fraction so keys like iteration
 * counts stay readable; everything else prints with %.17g, which
 * round-trips any double exactly.
 */
void
appendNumber(std::string &out, double v)
{
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", v);
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    out += buf;
}

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        throw std::invalid_argument("json: " + why + " at offset " +
                                    std::to_string(pos));
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    bool
    consume(const std::string &word)
    {
        skipWs();
        if (text.compare(pos, word.size(), word) == 0) {
            pos += word.size();
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            char e = text[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    fail("short \\u escape");
                const unsigned code =
                    std::stoul(text.substr(pos, 4), nullptr, 16);
                pos += 4;
                // ASCII only; anything above is replaced. The writer
                // never emits non-ASCII escapes.
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    Value
    parseValue()
    {
        const char c = peek();
        if (c == '{') {
            ++pos;
            Value v = Value::object();
            if (peek() == '}') {
                ++pos;
                return v;
            }
            while (true) {
                const std::string key = parseString();
                expect(':');
                v[key] = parseValue();
                const char n = peek();
                ++pos;
                if (n == '}')
                    return v;
                if (n != ',')
                    fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            Value v = Value::array();
            if (peek() == ']') {
                ++pos;
                return v;
            }
            while (true) {
                v.push(parseValue());
                const char n = peek();
                ++pos;
                if (n == ']')
                    return v;
                if (n != ',')
                    fail("expected ',' or ']'");
            }
        }
        if (c == '"')
            return Value(parseString());
        if (consume("true"))
            return Value(true);
        if (consume("false"))
            return Value(false);
        if (consume("null"))
            return Value();
        // Number.
        std::size_t end = pos;
        while (end < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[end])) ||
                text[end] == '-' || text[end] == '+' || text[end] == '.' ||
                text[end] == 'e' || text[end] == 'E'))
            ++end;
        if (end == pos)
            fail("unexpected character");
        try {
            const double num = std::stod(text.substr(pos, end - pos));
            pos = end;
            return Value(num);
        } catch (const std::exception &) {
            fail("bad number");
        }
    }
};

} // namespace

bool
Value::asBool() const
{
    if (type_ != Type::kBool)
        throw std::logic_error("json: not a bool");
    return bool_;
}

double
Value::asNumber() const
{
    if (type_ != Type::kNumber)
        throw std::logic_error("json: not a number");
    return num_;
}

const std::string &
Value::asString() const
{
    if (type_ != Type::kString)
        throw std::logic_error("json: not a string");
    return str_;
}

Value &
Value::push(Value v)
{
    if (type_ == Type::kNull)
        type_ = Type::kArray;
    if (type_ != Type::kArray)
        throw std::logic_error("json: not an array");
    items_.push_back(std::move(v));
    return *this;
}

Value &
Value::operator[](const std::string &key)
{
    if (type_ == Type::kNull)
        type_ = Type::kObject;
    if (type_ != Type::kObject)
        throw std::logic_error("json: not an object");
    return members_[key];
}

const Value *
Value::find(const std::string &key) const
{
    if (type_ != Type::kObject)
        return nullptr;
    auto it = members_.find(key);
    return it == members_.end() ? nullptr : &it->second;
}

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const bool pretty = indent >= 0;
    const std::string pad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 (static_cast<std::size_t>(depth) + 1),
                             ' ')
               : "";
    const std::string close_pad =
        pretty ? std::string(static_cast<std::size_t>(indent) *
                                 static_cast<std::size_t>(depth),
                             ' ')
               : "";
    const char *nl = pretty ? "\n" : "";
    const char *colon = pretty ? ": " : ":";

    switch (type_) {
      case Type::kNull: out += "null"; break;
      case Type::kBool: out += bool_ ? "true" : "false"; break;
      case Type::kNumber: appendNumber(out, num_); break;
      case Type::kString: appendEscaped(out, str_); break;
      case Type::kArray: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < items_.size(); ++i) {
            out += pad;
            items_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < items_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        break;
      }
      case Type::kObject: {
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        std::size_t i = 0;
        for (const auto &[key, val] : members_) {
            out += pad;
            appendEscaped(out, key);
            out += colon;
            val.dumpTo(out, indent, depth + 1);
            if (++i < members_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

Value
Value::parse(const std::string &text)
{
    Parser p{text};
    Value v = p.parseValue();
    p.skipWs();
    if (p.pos != text.size())
        p.fail("trailing characters");
    return v;
}

} // namespace isw::harness::json
