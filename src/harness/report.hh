/**
 * @file
 * Plain-text table and CSV reporting for the benchmark binaries.
 */

#ifndef ISW_HARNESS_REPORT_HH
#define ISW_HARNESS_REPORT_HH

#include <iostream>
#include <string>
#include <vector>

namespace isw::harness {

/** A fixed-width text table builder. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row; cells beyond the header count are dropped. */
    Table &row(std::vector<std::string> cells);

    /** Render with aligned columns to @p os. */
    void print(std::ostream &os = std::cout) const;

    /** Render as CSV (no alignment, comma-separated). */
    void printCsv(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p digits fraction digits. */
std::string fmt(double v, int digits = 2);

/** Format in scientific notation like the paper's tables (1.40E+06). */
std::string fmtSci(double v);

/** Print a section banner. */
void banner(const std::string &title, std::ostream &os = std::cout);

} // namespace isw::harness

#endif // ISW_HARNESS_REPORT_HH
