#include "harness/runner.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <thread>

#include "harness/experiment.hh"

namespace isw::harness {

namespace {

std::size_t
resolveJobs(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("ISW_BENCH_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** Appends typed fields as canonical 64-bit words. */
struct KeyBuilder
{
    std::vector<std::uint64_t> words;

    void u(std::uint64_t v) { words.push_back(v); }
    void d(double v) { words.push_back(std::bit_cast<std::uint64_t>(v)); }
};

void
appendLink(KeyBuilder &kb, const net::LinkConfig &l)
{
    kb.d(l.bandwidth_bps);
    kb.u(l.propagation);
    kb.d(l.loss_prob);
}

} // namespace

dist::JobConfig
ExperimentSpec::normalizedConfig() const
{
    dist::JobConfig cfg = config;
    if (seed != 0)
        cfg.seed = seed;
    return cfg;
}

SpecKey
SpecKey::of(const dist::JobConfig &cfg)
{
    // Every JobConfig field, in declaration order. A field added to
    // JobConfig (or its nested configs) must be appended here, or two
    // configs differing only in that field would share a cache slot.
    KeyBuilder kb;
    kb.u(static_cast<std::uint64_t>(cfg.algo));
    kb.u(static_cast<std::uint64_t>(cfg.strategy));
    kb.u(cfg.num_workers);

    const rl::AgentConfig &a = cfg.agent;
    kb.u(a.hidden);
    kb.d(a.lr);
    kb.d(a.gamma);
    kb.u(a.steps_per_iter);
    kb.u(a.batch_size);
    kb.u(a.replay_capacity);
    kb.u(a.warmup);
    kb.u(a.target_sync_iters);
    kb.d(a.grad_clip);
    kb.d(a.eps_start);
    kb.d(a.eps_end);
    kb.u(a.eps_decay_iters);
    kb.d(a.noise_std);
    kb.d(a.tau);
    kb.d(a.value_coef);
    kb.d(a.entropy_coef);
    kb.d(a.gae_lambda);
    kb.d(a.ppo_clip);
    kb.d(a.init_log_std);

    kb.u(cfg.wire_model_bytes);
    for (const sim::TimeNs t : cfg.profile.mean)
        kb.u(t);
    kb.d(cfg.profile.jitter_cv);
    kb.u(cfg.overhead.send);
    kb.u(cfg.overhead.recv);
    kb.u(cfg.iswitch_overhead.send);
    kb.u(cfg.iswitch_overhead.recv);
    kb.d(cfg.ps_sum_bytes_per_sec);

    const dist::ClusterConfig &c = cfg.cluster;
    kb.u(c.num_workers);
    kb.u(c.with_ps ? 1 : 0);
    kb.u(c.ps_shards);
    appendLink(kb, c.edge_link);
    appendLink(kb, c.uplink);
    kb.u(c.per_rack);
    kb.u(c.racks_per_pod);
    appendLink(kb, c.core_link);
    kb.d(c.accel.clock_hz);
    kb.u(c.accel.burst_bytes);
    kb.u(c.accel.fixed_latency);
    kb.u(c.accel.num_slots);
    kb.u(c.switch_cfg.forwarding_latency);
    kb.u(c.worker_jobs.size());
    for (const std::uint8_t j : c.worker_jobs)
        kb.u(j);
    kb.u(c.ha.with_backup ? 1 : 0);
    kb.u(static_cast<std::uint64_t>(c.ha.repl_mode));
    kb.u(c.ha.staleness_window);
    kb.u(c.ha.heartbeat_period);
    kb.u(c.ha.miss_threshold);

    kb.u(cfg.use_tree ? 1 : 0);
    kb.u(cfg.use_fat_tree ? 1 : 0);
    kb.u(cfg.shard ? 1 : 0);
    kb.u(cfg.shard_threads);
    kb.u(cfg.seed);
    kb.u(cfg.staleness_bound);
    kb.u(cfg.ps_shards);
    kb.u(cfg.agg_threshold);
    kb.u(static_cast<std::uint64_t>(cfg.precision));
    kb.u(cfg.stop.max_iterations);
    kb.d(cfg.stop.target_reward);
    kb.u(cfg.stop.min_episodes);
    kb.u(cfg.stop.max_sim_time);
    kb.u(cfg.curve_every);

    kb.u(cfg.retx.timeout);
    kb.d(cfg.retx.backoff);
    kb.u(cfg.retx.max_retries);
    kb.u(cfg.retx.max_timeout);

    const net::FaultPlan &f = cfg.faults;
    kb.d(f.ge.p_good_to_bad);
    kb.d(f.ge.p_bad_to_good);
    kb.d(f.ge.loss_good);
    kb.d(f.ge.loss_bad);
    kb.d(f.extra_loss);
    kb.d(f.duplicate_prob);
    kb.d(f.reorder_prob);
    kb.u(f.reorder_delay);
    kb.u(f.link_down.size());
    for (const net::LinkDownWindow &w : f.link_down) {
        kb.u(w.worker);
        kb.u(w.down_at);
        kb.u(w.up_at);
    }
    kb.u(f.crashes.size());
    for (const net::WorkerCrash &c : f.crashes) {
        kb.u(c.worker);
        kb.u(c.crash_at);
        kb.u(c.rejoin_at);
        kb.u(c.announce ? 1 : 0);
    }
    kb.u(f.stragglers.size());
    for (const net::Straggler &s : f.stragglers) {
        kb.u(s.worker);
        kb.d(s.slowdown);
        kb.u(s.from);
        kb.u(s.until);
    }
    kb.u(f.switch_crashes.size());
    for (const net::SwitchCrash &sc : f.switch_crashes) {
        kb.u(sc.crash_at);
        kb.u(sc.rejoin_at);
    }
    kb.u(f.control_partitions.size());
    for (const net::ControlPartition &p : f.control_partitions) {
        kb.u(p.from);
        kb.u(p.until);
    }

    return SpecKey{std::move(kb.words)};
}

struct Runner::Entry
{
    ExperimentSpec spec;     ///< first spec submitted for this config
    std::uint64_t order = 0; ///< first-submission index
    dist::RunResult result;
    double wall_ms = 0.0;
    bool done = false;
};

Runner::Runner(RunnerOptions opts)
    : opts_(std::move(opts)), jobs_(resolveJobs(opts_.jobs))
{
}

Runner::~Runner() = default;

std::pair<std::shared_ptr<Runner::Entry>, bool>
Runner::lookup(const ExperimentSpec &spec)
{
    SpecKey key = SpecKey::of(spec.normalizedConfig());
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return {it->second, false};
    auto entry = std::make_shared<Entry>();
    entry->spec = spec;
    entry->spec.config = spec.normalizedConfig();
    entry->spec.seed = 0;
    entry->order = next_order_++;
    cache_.emplace(std::move(key), entry);
    return {entry, true};
}

void
Runner::execute(Entry &e)
{
    const auto t0 = std::chrono::steady_clock::now();
    dist::RunResult result;
    try {
        auto job = dist::makeJob(e.spec.config);
        // Per-runner serialized sink: a job's log lines never
        // interleave with another's mid-line, and each line says which
        // experiment produced it.
        sim::Logger &logger = job->simulation().logger();
        logger.setLevel(opts_.log_level);
        logger.setSink([this, name = e.spec.name](const std::string &line) {
            std::lock_guard<std::mutex> lock(log_mu_);
            if (opts_.log_sink)
                opts_.log_sink("[" + name + "] " + line);
            else
                std::fprintf(stderr, "[%s] %s\n", name.c_str(),
                             line.c_str());
        });
        result = job->run();
    } catch (const std::exception &ex) {
        // One faulty spec must not abort a whole sweep: the failure
        // becomes this spec's diagnostic result instead.
        result.error = ex.what();
    } catch (...) {
        result.error = "unknown exception";
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    {
        std::lock_guard<std::mutex> lock(mu_);
        e.result = std::move(result);
        e.wall_ms = wall_ms;
        e.done = true;
    }
    cv_.notify_all();
}

void
Runner::waitDone(Entry &e)
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&e] { return e.done; });
}

const dist::RunResult &
Runner::run(const ExperimentSpec &spec)
{
    auto [entry, fresh] = lookup(spec);
    if (fresh)
        execute(*entry);
    waitDone(*entry);
    return entry->result;
}

std::vector<dist::RunResult>
Runner::runAll(const std::vector<ExperimentSpec> &specs)
{
    // Dedup before submission: one cache entry per unique normalized
    // config; only fresh entries become work items.
    std::vector<std::shared_ptr<Entry>> order;
    std::vector<std::shared_ptr<Entry>> work;
    order.reserve(specs.size());
    for (const ExperimentSpec &spec : specs) {
        auto [entry, fresh] = lookup(spec);
        order.push_back(entry);
        if (fresh)
            work.push_back(std::move(entry));
    }

    const std::size_t width = std::min(jobs_, work.size());
    if (width <= 1) {
        for (auto &e : work)
            execute(*e);
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> pool;
        pool.reserve(width);
        for (std::size_t t = 0; t < width; ++t) {
            pool.emplace_back([this, &next, &work] {
                for (;;) {
                    const std::size_t i = next.fetch_add(1);
                    if (i >= work.size())
                        return;
                    execute(*work[i]);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    // Deterministic spec order, regardless of completion order.
    std::vector<dist::RunResult> results;
    results.reserve(order.size());
    for (auto &e : order) {
        waitDone(*e);
        results.push_back(e->result);
    }
    return results;
}

std::size_t
Runner::executed() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

json::Value
Runner::reportJson(const std::string &bench_name) const
{
    std::vector<std::shared_ptr<Entry>> entries;
    {
        std::lock_guard<std::mutex> lock(mu_);
        entries.reserve(cache_.size());
        for (const auto &[key, entry] : cache_)
            entries.push_back(entry);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto &a, const auto &b) {
                  return a->order < b->order;
              });

    json::Value root = json::Value::object();
    root["bench"] = bench_name;
    root["schema_version"] = 1;
    root["jobs"] = static_cast<std::uint64_t>(jobs_);
    root["scale"] = benchOptions().full ? "full" : "quick";
    json::Value runs = json::Value::array();
    for (const auto &e : entries) {
        if (!e->done)
            continue;
        json::Value run = resultToJson(e->result);
        run["name"] = e->spec.name;
        if (!e->spec.tags.empty()) {
            json::Value tags = json::Value::array();
            for (const std::string &t : e->spec.tags)
                tags.push(t);
            run["tags"] = std::move(tags);
        }
        run["config"] = configToJson(e->spec.config);
        run["wall_clock_ms"] = e->wall_ms;
        if (!e->result.perf.empty()) {
            // Wall-clock-class throughput metrics: kept out of
            // resultToJson so determinism comparisons stay clean.
            json::Value perf = json::Value::object();
            for (const auto &[key, value] : e->result.perf)
                perf[key] = value;
            run["perf"] = std::move(perf);
        }
        runs.push(std::move(run));
    }
    root["runs"] = std::move(runs);
    return root;
}

std::string
Runner::writeReport(const std::string &bench_name,
                    const std::string &dir) const
{
    const json::Value root = reportJson(bench_name);
    const std::string path = dir + "/BENCH_" + bench_name + ".json";
    std::ofstream out(path);
    out << root.dump(2) << "\n";
    out.close();
    std::printf("# wrote %s (%zu runs)\n", path.c_str(),
                root.find("runs")->size());
    return path;
}

json::Value
resultToJson(const dist::RunResult &r)
{
    json::Value v = json::Value::object();
    v["iterations"] = r.iterations;
    v["per_iter_ms"] = r.perIterationMs();
    v["reward"] = r.final_avg_reward;
    v["reached_target"] = r.reached_target;
    v["total_sim_ns"] = r.total_time;
    if (!r.error.empty())
        v["error"] = r.error;

    json::Value breakdown = json::Value::object();
    for (std::size_t c = 0; c < dist::kNumComponents; ++c) {
        const auto comp = static_cast<dist::IterComponent>(c);
        breakdown[dist::componentName(comp)] = r.breakdown.meanMs(comp);
    }
    v["breakdown_ms"] = std::move(breakdown);

    if (!r.extras.empty()) {
        json::Value extras = json::Value::object();
        for (const auto &[key, value] : r.extras)
            extras[key] = value;
        v["extras"] = std::move(extras);
    }

    json::Value curve = json::Value::array();
    for (const auto &p : r.reward_curve.points()) {
        json::Value point = json::Value::array();
        point.push(p.t);
        point.push(p.v);
        curve.push(std::move(point));
    }
    v["curve"] = std::move(curve);
    return v;
}

dist::RunResult
resultFromJson(const json::Value &v)
{
    dist::RunResult r;
    if (const json::Value *f = v.find("iterations"))
        r.iterations = static_cast<std::uint64_t>(f->asNumber());
    if (const json::Value *f = v.find("total_sim_ns"))
        r.total_time = static_cast<sim::TimeNs>(f->asNumber());
    if (const json::Value *f = v.find("reward"))
        r.final_avg_reward = f->asNumber();
    if (const json::Value *f = v.find("reached_target"))
        r.reached_target = f->asBool();
    if (const json::Value *f = v.find("error"))
        r.error = f->asString();
    if (const json::Value *f = v.find("breakdown_ms")) {
        for (std::size_t c = 0; c < dist::kNumComponents; ++c) {
            const auto comp = static_cast<dist::IterComponent>(c);
            if (const json::Value *m = f->find(dist::componentName(comp))) {
                const double mean = m->asNumber();
                if (mean > 0.0)
                    r.breakdown.add(comp, sim::fromMillis(mean));
            }
        }
    }
    if (const json::Value *f = v.find("extras")) {
        for (const auto &[key, value] : f->members())
            r.extras[key] = value.asNumber();
    }
    if (const json::Value *f = v.find("curve")) {
        for (const json::Value &p : f->items()) {
            if (p.size() == 2)
                r.reward_curve.record(
                    static_cast<sim::TimeNs>(p.items()[0].asNumber()),
                    p.items()[1].asNumber());
        }
    }
    return r;
}

json::Value
configToJson(const dist::JobConfig &cfg)
{
    json::Value v = json::Value::object();
    v["algo"] = rl::algoName(cfg.algo);
    v["strategy"] = dist::strategyName(cfg.strategy);
    v["num_workers"] = static_cast<std::uint64_t>(cfg.num_workers);
    v["wire_model_bytes"] = cfg.wire_model_bytes;
    v["use_tree"] = cfg.use_tree;
    // Conditional: absent on two-layer configs so pre-fat-tree reports
    // stay byte-identical.
    if (cfg.use_fat_tree)
        v["use_fat_tree"] = true;
    if (cfg.shard)
        v["shard"] = true;
    v["seed"] = cfg.seed;
    v["staleness_bound"] =
        static_cast<std::uint64_t>(cfg.staleness_bound);
    v["ps_shards"] = static_cast<std::uint64_t>(cfg.ps_shards);
    v["agg_threshold"] = static_cast<std::uint64_t>(cfg.agg_threshold);
    // Conditional: absent on fp32 configs so pre-pipeline reports stay
    // byte-identical.
    if (cfg.precision != net::Precision::kFp32)
        v["precision"] = net::precisionName(cfg.precision);
    v["curve_every"] = static_cast<std::uint64_t>(cfg.curve_every);
    v["edge_bandwidth_bps"] = cfg.cluster.edge_link.bandwidth_bps;
    // Conditional: absent on unbounded-pool configs so pre-slot-pool
    // reports stay byte-identical.
    if (cfg.cluster.accel.num_slots > 0)
        v["num_slots"] =
            static_cast<std::uint64_t>(cfg.cluster.accel.num_slots);
    json::Value stop = json::Value::object();
    stop["max_iterations"] = cfg.stop.max_iterations;
    if (cfg.stop.hasTarget())
        stop["target_reward"] = cfg.stop.target_reward;
    else
        stop["target_reward"] = json::Value(); // null: no reward target
    stop["min_episodes"] = cfg.stop.min_episodes;
    // Conditional keys: absent on pre-fault-subsystem configs so the
    // committed BENCH baselines stay byte-identical.
    if (cfg.stop.max_sim_time > 0)
        stop["max_sim_time_ns"] = cfg.stop.max_sim_time;
    v["stop"] = std::move(stop);
    const bool lossy = !cfg.faults.empty() ||
                       cfg.cluster.edge_link.loss_prob > 0.0 ||
                       cfg.cluster.uplink.loss_prob > 0.0;
    if (lossy) {
        json::Value retx = json::Value::object();
        retx["timeout_ns"] = cfg.retx.timeout;
        retx["backoff"] = cfg.retx.backoff;
        retx["max_retries"] =
            static_cast<std::uint64_t>(cfg.retx.max_retries);
        v["retx"] = std::move(retx);
    }
    if (!cfg.faults.empty()) {
        const net::FaultPlan &f = cfg.faults;
        json::Value fp = json::Value::object();
        if (f.ge.enabled()) {
            json::Value ge = json::Value::object();
            ge["p_good_to_bad"] = f.ge.p_good_to_bad;
            ge["p_bad_to_good"] = f.ge.p_bad_to_good;
            ge["loss_good"] = f.ge.loss_good;
            ge["loss_bad"] = f.ge.loss_bad;
            fp["gilbert_elliott"] = std::move(ge);
        }
        if (f.extra_loss > 0.0)
            fp["extra_loss"] = f.extra_loss;
        if (f.duplicate_prob > 0.0)
            fp["duplicate_prob"] = f.duplicate_prob;
        if (f.reorder_prob > 0.0)
            fp["reorder_prob"] = f.reorder_prob;
        fp["link_down_windows"] =
            static_cast<std::uint64_t>(f.link_down.size());
        fp["crashes"] = static_cast<std::uint64_t>(f.crashes.size());
        fp["stragglers"] =
            static_cast<std::uint64_t>(f.stragglers.size());
        v["faults"] = std::move(fp);
    }
    return v;
}

} // namespace isw::harness
