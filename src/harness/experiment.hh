/**
 * @file
 * Canonical experiment presets used by the bench binaries.
 *
 * Two run flavors:
 *  - timing runs: paper-sized wire models, a fixed number of
 *    iterations — they measure per-iteration time and its breakdown
 *    (Figures 4, 12; the per-iteration columns of Tables 4, 5).
 *  - learning runs: real training to a reward target — they measure
 *    iterations-to-converge and reward curves (Figures 13, 14; the
 *    iteration/reward columns of Tables 4, 5). Learning runs may scale
 *    down very large wire models (the 6.41 MB DQN gradient) so a full
 *    bench sweep finishes in CI time; end-to-end hours are composed as
 *    measured-iterations x timing-run per-iteration time, which is
 *    recorded in EXPERIMENTS.md.
 *
 * Set ISW_BENCH_SCALE=full for paper-sized learning runs and deeper
 * iteration budgets (slower, higher fidelity).
 */

#ifndef ISW_HARNESS_EXPERIMENT_HH
#define ISW_HARNESS_EXPERIMENT_HH

#include "dist/strategy.hh"
#include "harness/runner.hh"

namespace isw::harness {

/** Bench effort knobs, derived from the environment. */
struct BenchOptions
{
    bool full = false;                 ///< ISW_BENCH_SCALE=full
    std::uint64_t timing_iterations = 40;
    /** Learning-run wire scale for models >= 1 MB (1.0 when full). */
    double large_wire_scale = 0.125;
};

/** Read bench options from the environment. */
BenchOptions benchOptions();

/** Reward the local benchmark env counts as "trained". */
double targetRewardFor(rl::Algo algo);

/** Learning-run iteration cap (safety net above the reward target). */
std::uint64_t learnCapFor(rl::Algo algo, bool async, bool full);

/** Timing-run preset: paper wire size, fixed iterations. */
dist::JobConfig timingJob(rl::Algo algo, dist::StrategyKind k,
                          std::size_t workers = 4);

/** Learning-run preset: trains for real until the reward target. */
dist::JobConfig learningJob(rl::Algo algo, dist::StrategyKind k,
                            std::size_t workers = 4);

/**
 * Canonical spec name, e.g. "timing/DQN/Async-iSW/w4/tree" (spaces in
 * strategy names become '-' so names stay shell- and path-friendly).
 */
std::string specName(const std::string &flavor, rl::Algo algo,
                     dist::StrategyKind k, std::size_t workers,
                     bool tree = false);

/** timingJob() wrapped as a named, tagged ExperimentSpec. */
ExperimentSpec timingSpec(rl::Algo algo, dist::StrategyKind k,
                          std::size_t workers = 4, bool tree = false);

/**
 * Fabric shape for timing specs beyond the legacy star/tree pair.
 * Zero-valued size knobs keep the ClusterConfig defaults.
 */
struct FabricSpec
{
    bool tree = false;             ///< two-layer ToR + core
    bool fat_tree = false;         ///< three-layer ToR + AGG + core
    std::size_t per_rack = 0;      ///< workers per rack
    std::size_t racks_per_pod = 0; ///< ToRs per AGG (fat-tree)
    bool shard = false;            ///< run on the sharded engine
    unsigned shard_threads = 0;    ///< 0 = one per core
};

/**
 * timingSpec over an explicit fabric. Star/tree shapes with default
 * sizing produce exactly the legacy spec names ("…"/"…/tree");
 * fat-trees append "/fat[-rR][-pP]", and sharded runs append
 * "/sharded" (their reports are byte-identical to the serial spec of
 * the same shape — the suffix only keeps report files apart).
 */
ExperimentSpec timingSpec(rl::Algo algo, dist::StrategyKind k,
                          std::size_t workers, const FabricSpec &fabric);

/** learningJob() wrapped as a named, tagged ExperimentSpec. */
ExperimentSpec learningSpec(rl::Algo algo, dist::StrategyKind k,
                            std::size_t workers = 4);

} // namespace isw::harness

#endif // ISW_HARNESS_EXPERIMENT_HH
