#include "harness/cli.hh"

#include <stdexcept>

namespace isw::harness {

Cli::Cli(int argc, const char *const *argv)
{
    if (argc > 0)
        program_ = argv[0];
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            throw std::invalid_argument("Cli: expected --flag, got '" + arg +
                                        "'");
        const std::string name = arg.substr(2);
        if (name.empty())
            throw std::invalid_argument("Cli: bare '--'");
        // `--key value` when the next token isn't itself a flag.
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
            flags_[name] = argv[++i];
        } else {
            flags_[name] = "";
        }
    }
}

bool
Cli::has(const std::string &name) const
{
    return flags_.count(name) != 0;
}

std::string
Cli::get(const std::string &name, const std::string &fallback) const
{
    auto it = flags_.find(name);
    return it == flags_.end() ? fallback : it->second;
}

std::int64_t
Cli::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    std::size_t pos = 0;
    std::int64_t v = 0;
    try {
        v = std::stoll(it->second, &pos);
    } catch (const std::exception &) {
        pos = std::string::npos;
    }
    if (pos != it->second.size())
        throw std::invalid_argument("Cli: --" + name + " wants an integer, got '" +
                                    it->second + "'");
    return v;
}

double
Cli::getDouble(const std::string &name, double fallback) const
{
    auto it = flags_.find(name);
    if (it == flags_.end())
        return fallback;
    std::size_t pos = 0;
    double v = 0.0;
    try {
        v = std::stod(it->second, &pos);
    } catch (const std::exception &) {
        pos = std::string::npos;
    }
    if (pos != it->second.size())
        throw std::invalid_argument("Cli: --" + name + " wants a number, got '" +
                                    it->second + "'");
    return v;
}

void
Cli::requireKnown(const std::vector<std::string> &known) const
{
    for (const auto &[name, value] : flags_) {
        bool ok = false;
        for (const auto &k : known)
            ok |= k == name;
        if (!ok)
            throw std::invalid_argument("Cli: unknown flag --" + name);
    }
}

} // namespace isw::harness
