/**
 * @file
 * Minimal JSON value with deterministic serialization.
 *
 * Exists so the experiment runner can emit machine-readable
 * `BENCH_<name>.json` reports (and tests can parse them back) without
 * an external dependency. Deterministic output matters: the runner's
 * parity test compares serialized RunResults byte-for-byte, so dump()
 * must be a pure function of the value (sorted object keys, fixed
 * number formatting).
 */

#ifndef ISW_HARNESS_JSON_HH
#define ISW_HARNESS_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isw::harness::json {

/** One JSON value (null / bool / number / string / array / object). */
class Value
{
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() : type_(Type::kNull) {}
    Value(bool b) : type_(Type::kBool), bool_(b) {}
    Value(double n) : type_(Type::kNumber), num_(n) {}
    Value(int n) : type_(Type::kNumber), num_(n) {}
    Value(std::int64_t n) : type_(Type::kNumber),
                            num_(static_cast<double>(n)) {}
    Value(std::uint64_t n) : type_(Type::kNumber),
                             num_(static_cast<double>(n)) {}
    Value(const char *s) : type_(Type::kString), str_(s) {}
    Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Value array() { Value v; v.type_ = Type::kArray; return v; }
    static Value object() { Value v; v.type_ = Type::kObject; return v; }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }

    /** Typed accessors; throw std::logic_error on type mismatch. */
    bool asBool() const;
    double asNumber() const;
    const std::string &asString() const;

    /** Array: append one element (converts a null value to an array). */
    Value &push(Value v);
    /** Array elements (empty for non-arrays). */
    const std::vector<Value> &items() const { return items_; }
    std::size_t size() const { return items_.size(); }

    /** Object: member lookup, creating on first use (like a map). */
    Value &operator[](const std::string &key);
    /** Object: member lookup without creation; nullptr if absent. */
    const Value *find(const std::string &key) const;
    const std::map<std::string, Value> &members() const { return members_; }

    /**
     * Serialize. @p indent < 0 renders compact one-line JSON;
     * otherwise pretty-printed with that many spaces per level.
     * Non-finite numbers render as null (JSON has no NaN/Inf).
     */
    std::string dump(int indent = -1) const;

    /** Parse @p text; throws std::invalid_argument on malformed input. */
    static Value parse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Value> items_;
    std::map<std::string, Value> members_;
};

} // namespace isw::harness::json

#endif // ISW_HARNESS_JSON_HH
