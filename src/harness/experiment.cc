#include "harness/experiment.hh"

#include <cstdlib>
#include <cstring>

namespace isw::harness {

BenchOptions
benchOptions()
{
    BenchOptions opts;
    const char *scale = std::getenv("ISW_BENCH_SCALE");
    if (scale != nullptr && std::strcmp(scale, "full") == 0) {
        opts.full = true;
        opts.timing_iterations = 120;
        opts.large_wire_scale = 1.0;
    }
    return opts;
}

double
targetRewardFor(rl::Algo algo)
{
    // Calibrated against single-node training on the local envs: the
    // level a competent policy reaches, clearly above random play.
    switch (algo) {
      case rl::Algo::kDqn: return 2.0;  // PongLite, win by >= 2 points
      case rl::Algo::kA2c: return 7.0;  // QbertLite, most cells colored
      case rl::Algo::kPpo: return 30.0; // Hopper1D, sustained hopping
      case rl::Algo::kDdpg: return 2.0; // CheetahLite, sustained speed
    }
    return 0.0;
}

std::uint64_t
learnCapFor(rl::Algo algo, bool async, bool full)
{
    std::uint64_t cap = 0;
    switch (algo) {
      case rl::Algo::kDqn: cap = 5000; break;
      case rl::Algo::kA2c: cap = 3000; break;
      case rl::Algo::kPpo: cap = 1200; break;
      case rl::Algo::kDdpg: cap = 4000; break;
    }
    if (async)
        cap *= 4; // async counts per-gradient updates
    if (full)
        cap *= 3;
    return cap;
}

dist::JobConfig
timingJob(rl::Algo algo, dist::StrategyKind k, std::size_t workers)
{
    const BenchOptions opts = benchOptions();
    dist::JobConfig cfg = dist::JobConfig::forBenchmark(algo, k, workers);
    cfg.stop.max_iterations = opts.timing_iterations;
    cfg.curve_every = opts.timing_iterations; // curves unused here
    return cfg;
}

dist::JobConfig
learningJob(rl::Algo algo, dist::StrategyKind k, std::size_t workers)
{
    const BenchOptions opts = benchOptions();
    dist::JobConfig cfg = dist::JobConfig::forBenchmark(algo, k, workers);
    if (cfg.wire_model_bytes >= (1ULL << 20)) {
        cfg.wire_model_bytes = static_cast<std::uint64_t>(
            static_cast<double>(cfg.wire_model_bytes) *
            opts.large_wire_scale);
    }
    cfg.stop.target_reward = targetRewardFor(algo);
    cfg.stop.max_iterations =
        learnCapFor(algo, dist::isAsyncStrategy(k), opts.full);
    cfg.stop.min_episodes = 20;
    cfg.curve_every = 5;
    return cfg;
}

std::string
specName(const std::string &flavor, rl::Algo algo, dist::StrategyKind k,
         std::size_t workers, bool tree)
{
    std::string strategy = dist::strategyName(k);
    for (char &c : strategy)
        if (c == ' ')
            c = '-';
    std::string name = flavor + "/" + rl::algoName(algo) + "/" + strategy +
                       "/w" + std::to_string(workers);
    if (tree)
        name += "/tree";
    return name;
}

ExperimentSpec
timingSpec(rl::Algo algo, dist::StrategyKind k, std::size_t workers,
           bool tree)
{
    ExperimentSpec spec;
    spec.name = specName("timing", algo, k, workers, tree);
    spec.config = timingJob(algo, k, workers);
    spec.config.use_tree = tree;
    spec.tags = {"timing"};
    return spec;
}

ExperimentSpec
timingSpec(rl::Algo algo, dist::StrategyKind k, std::size_t workers,
           const FabricSpec &fabric)
{
    ExperimentSpec spec = timingSpec(algo, k, workers, fabric.tree);
    if (fabric.per_rack > 0)
        spec.config.cluster.per_rack = fabric.per_rack;
    if (fabric.racks_per_pod > 0)
        spec.config.cluster.racks_per_pod = fabric.racks_per_pod;
    if (fabric.fat_tree) {
        spec.config.use_tree = false;
        spec.config.use_fat_tree = true;
        spec.name += "/fat";
        if (fabric.per_rack > 0)
            spec.name += "-r" + std::to_string(fabric.per_rack);
        if (fabric.racks_per_pod > 0)
            spec.name += "-p" + std::to_string(fabric.racks_per_pod);
    }
    if (fabric.shard) {
        spec.config.shard = true;
        spec.config.shard_threads = fabric.shard_threads;
        spec.name += "/sharded";
    }
    return spec;
}

ExperimentSpec
learningSpec(rl::Algo algo, dist::StrategyKind k, std::size_t workers)
{
    ExperimentSpec spec;
    spec.name = specName("learn", algo, k, workers);
    spec.config = learningJob(algo, k, workers);
    spec.tags = {"learning"};
    return spec;
}

} // namespace isw::harness
