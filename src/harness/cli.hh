/**
 * @file
 * A tiny command-line flag parser for the bench and example binaries:
 * `--key value` and boolean `--flag` forms, with typed accessors and
 * an unknown-flag check so typos fail loudly.
 */

#ifndef ISW_HARNESS_CLI_HH
#define ISW_HARNESS_CLI_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace isw::harness {

/** Parsed command line. */
class Cli
{
  public:
    Cli(int argc, const char *const *argv);

    /** True if --name was present (with or without a value). */
    bool has(const std::string &name) const;

    /** String value of --name, or @p fallback. */
    std::string get(const std::string &name,
                    const std::string &fallback = "") const;

    /** Integer value of --name; throws on non-numeric input. */
    std::int64_t getInt(const std::string &name,
                        std::int64_t fallback) const;

    /** Double value of --name; throws on non-numeric input. */
    double getDouble(const std::string &name, double fallback) const;

    /**
     * Throw std::invalid_argument if any parsed flag is not in
     * @p known (catches typos in bench invocations).
     */
    void requireKnown(const std::vector<std::string> &known) const;

    const std::string &program() const { return program_; }

  private:
    std::string program_;
    std::map<std::string, std::string> flags_;
};

} // namespace isw::harness

#endif // ISW_HARNESS_CLI_HH
