/**
 * @file
 * Experiment runner: declarative specs, parallel batch execution, and
 * machine-readable reports.
 *
 * Every `isw::sim::Simulation` is a fully self-contained world (clock,
 * event queue, RNG, stats, logger), so independent runs are
 * embarrassingly parallel. The Runner exploits that: bench binaries
 * declare a batch of ExperimentSpecs, the Runner executes each spec's
 * Job in its own Simulation on a thread pool (`--jobs N` /
 * `ISW_BENCH_JOBS`, default hardware concurrency), memoizes results
 * under a typed key so identical specs execute exactly once, and
 * returns results in deterministic spec order regardless of
 * completion order. Parallel and serial execution produce
 * byte-identical results (same seeds => same worlds); the parity test
 * in tests/harness/runner_test.cc enforces this.
 */

#ifndef ISW_HARNESS_RUNNER_HH
#define ISW_HARNESS_RUNNER_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dist/strategy.hh"
#include "harness/json.hh"
#include "sim/log.hh"

namespace isw::harness {

/** One named, self-contained experiment: a job config plus metadata. */
struct ExperimentSpec
{
    /** Display/report name, e.g. "timing/DQN/PS/w4". */
    std::string name;
    /** The complete run description (includes its own seed). */
    dist::JobConfig config;
    /** Convenience seed override; 0 keeps config.seed. */
    std::uint64_t seed = 0;
    /** Free-form labels carried into the JSON report. */
    std::vector<std::string> tags;

    /** config with the seed override applied (the run identity). */
    dist::JobConfig normalizedConfig() const;
};

/**
 * Typed memoization key: a canonical encoding of every JobConfig
 * field. Doubles are encoded by bit pattern, which makes the ordering
 * total (NaN-safe — StopCondition::target_reward is NaN for timing
 * runs) and two configs equal exactly when every field is bit-equal.
 * Replaces the stringly-keyed bench::TimingCache map.
 */
struct SpecKey
{
    std::vector<std::uint64_t> words;

    /** Build the key for @p cfg. Update alongside JobConfig. */
    static SpecKey of(const dist::JobConfig &cfg);

    bool operator<(const SpecKey &o) const { return words < o.words; }
    bool operator==(const SpecKey &o) const { return words == o.words; }
};

/** Runner construction knobs. */
struct RunnerOptions
{
    /**
     * Worker threads for batch execution. 0 = the ISW_BENCH_JOBS
     * environment variable, falling back to hardware concurrency.
     */
    std::size_t jobs = 0;
    /** Log level installed on every job's Simulation logger. */
    sim::LogLevel log_level = sim::LogLevel::kWarn;
    /**
     * Optional destination for job log lines. Lines arrive serialized
     * (one writer at a time) and tagged with the spec name; default is
     * stderr.
     */
    sim::Logger::Sink log_sink;
};

/**
 * Executes ExperimentSpecs, each in its own isolated Simulation.
 *
 * Results are memoized across run()/runAll() calls: submitting a spec
 * whose normalized config was already executed returns the cached
 * RunResult without re-running, and duplicate specs inside one batch
 * are deduplicated *before* submission so shared timing runs execute
 * once. Not copyable; share one Runner per bench process.
 */
class Runner
{
  public:
    explicit Runner(RunnerOptions opts = {});
    ~Runner();

    Runner(const Runner &) = delete;
    Runner &operator=(const Runner &) = delete;

    /** Resolved thread-pool width. */
    std::size_t jobs() const { return jobs_; }

    /**
     * Execute one spec (or return its cached result). The reference
     * stays valid for the Runner's lifetime.
     */
    const dist::RunResult &run(const ExperimentSpec &spec);

    /**
     * Execute a batch on the thread pool. Returns one result per
     * input spec, in spec order, duplicates and already-cached specs
     * served from the memo. Throws the first job error, if any.
     */
    std::vector<dist::RunResult> runAll(
        const std::vector<ExperimentSpec> &specs);

    /** Number of jobs actually executed (cache misses) so far. */
    std::size_t executed() const;

    /**
     * Write `<dir>/BENCH_<bench_name>.json` describing every run this
     * Runner executed, in first-submission order: per run the spec
     * name, tags, config, per-iteration ms, iterations, reward,
     * simulated time, wall-clock ms, component breakdown, extras, and
     * reward curve. Returns the path written.
     */
    std::string writeReport(const std::string &bench_name,
                            const std::string &dir = ".") const;

    /** The report payload (what writeReport serializes). */
    json::Value reportJson(const std::string &bench_name) const;

  private:
    struct Entry;

    /** Find-or-create the cache entry; fresh=true if this caller must
     *  execute it. */
    std::pair<std::shared_ptr<Entry>, bool> lookup(
        const ExperimentSpec &spec);
    void execute(Entry &e);
    void waitDone(Entry &e);

    RunnerOptions opts_;
    std::size_t jobs_ = 1;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<SpecKey, std::shared_ptr<Entry>> cache_;
    std::uint64_t next_order_ = 0;

    std::mutex log_mu_; ///< serializes tagged job log lines
};

/** Serialize a RunResult (schema: iterations, per_iter_ms, reward,
 *  reached_target, total_sim_ns, breakdown, extras, curve). */
json::Value resultToJson(const dist::RunResult &r);

/**
 * Rebuild a RunResult from resultToJson output. The breakdown comes
 * back as one sample per component (means preserved; counts and
 * variances are not serialized).
 */
dist::RunResult resultFromJson(const json::Value &v);

/** Serialize the reportable fields of a JobConfig. */
json::Value configToJson(const dist::JobConfig &cfg);

} // namespace isw::harness

#endif // ISW_HARNESS_RUNNER_HH
