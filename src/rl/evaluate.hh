/**
 * @file
 * Policy evaluation: run a trained agent's greedy/deterministic policy
 * on a fresh environment, without exploration noise and without
 * touching the agent's training state.
 */

#ifndef ISW_RL_EVALUATE_HH
#define ISW_RL_EVALUATE_HH

#include <memory>

#include "rl/agent.hh"

namespace isw::rl {

/** Construct the benchmark environment for @p algo (PongLite, ...). */
std::unique_ptr<Environment> makeEnvironment(Algo algo, std::uint64_t seed);

/** Outcome of an evaluation sweep. */
struct EvalResult
{
    double mean_reward = 0.0;
    double min_reward = 0.0;
    double max_reward = 0.0;
    double mean_length = 0.0; ///< steps per episode
    std::size_t episodes = 0;
};

/**
 * Run @p episodes full episodes of @p agent's deterministic policy on
 * @p env. The agent's weights are read, never written; its training
 * environment and replay state are untouched.
 *
 * @param max_steps Per-episode step cap (safety net).
 */
EvalResult evaluatePolicy(Agent &agent, Environment &env,
                          std::size_t episodes, std::size_t max_steps = 5000);

} // namespace isw::rl

#endif // ISW_RL_EVALUATE_HH
