#include "rl/replay_buffer.hh"

#include <stdexcept>

namespace isw::rl {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : buf_(capacity)
{
    if (capacity == 0)
        throw std::invalid_argument("ReplayBuffer: zero capacity");
}

void
ReplayBuffer::push(Transition t)
{
    buf_[head_] = std::move(t);
    head_ = (head_ + 1) % buf_.size();
    if (size_ < buf_.size())
        ++size_;
}

void
ReplayBuffer::sample(std::size_t n, sim::Rng &rng,
                     std::vector<const Transition *> &out) const
{
    if (empty())
        throw std::logic_error("ReplayBuffer::sample on empty buffer");
    out.clear();
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(size_) - 1));
        out.push_back(&buf_[idx]);
    }
}

} // namespace isw::rl
