#include "rl/agent.hh"

#include "rl/a2c.hh"
#include "rl/ddpg.hh"
#include "rl/dqn.hh"
#include "rl/envs/cheetah.hh"
#include "rl/envs/hopper.hh"
#include "rl/envs/pong.hh"
#include "rl/envs/qbert.hh"
#include "rl/ppo.hh"

namespace isw::rl {

const char *
algoName(Algo a)
{
    switch (a) {
      case Algo::kDqn: return "DQN";
      case Algo::kA2c: return "A2C";
      case Algo::kPpo: return "PPO";
      case Algo::kDdpg: return "DDPG";
    }
    return "?";
}

AgentBase::AgentBase(AgentConfig cfg, std::unique_ptr<Environment> env,
                     sim::Rng rng)
    : cfg_(cfg), env_(std::move(env)), rng_(rng)
{
    cur_obs_ = env_->reset();
}

void
AgentBase::trackReward(float reward, bool done)
{
    episode_reward_ += reward;
    if (done) {
        recent_rewards_.push_back(episode_reward_);
        if (recent_rewards_.size() > 100)
            recent_rewards_.pop_front();
        episode_reward_ = 0.0;
        ++episodes_;
    }
}

double
AgentBase::avgEpisodeReward(std::size_t n) const
{
    if (recent_rewards_.empty())
        return 0.0;
    const std::size_t take = std::min(n, recent_rewards_.size());
    double sum = 0.0;
    for (std::size_t i = recent_rewards_.size() - take;
         i < recent_rewards_.size(); ++i) {
        sum += recent_rewards_[i];
    }
    return sum / static_cast<double>(take);
}

void
AgentBase::applyAggregatedGradient(std::span<const float> sum,
                                   std::uint32_t h)
{
    if (sum.size() != params_.count())
        throw std::invalid_argument("applyAggregatedGradient: size mismatch");
    if (h == 0)
        throw std::invalid_argument("applyAggregatedGradient: h == 0");
    scratch_mean_.assign(sum.begin(), sum.end());
    const float inv = 1.0f / static_cast<float>(h);
    for (float &g : scratch_mean_)
        g *= inv;
    params_.copyValuesTo(scratch_weights_);
    opt_->step(scratch_weights_, scratch_mean_);
    params_.setValues(scratch_weights_);
    ++updates_;
    postUpdate();
}

std::unique_ptr<Agent>
makeAgent(Algo algo, const AgentConfig &cfg, std::uint64_t weight_seed,
          std::uint64_t env_seed)
{
    // Weights are drawn from weight_seed only: workers constructed
    // with equal weight_seed start bit-identical regardless of their
    // env streams, which is what distributed training requires.
    sim::Rng weight_rng(weight_seed);
    sim::Rng env_rng(env_seed);
    switch (algo) {
      case Algo::kDqn: {
        auto env = std::make_unique<PongLite>(env_rng.fork(0));
        return std::make_unique<DqnAgent>(cfg, std::move(env), weight_rng,
                                          env_rng.fork(1));
      }
      case Algo::kA2c: {
        auto env = std::make_unique<QbertLite>(env_rng.fork(0));
        return std::make_unique<A2cAgent>(cfg, std::move(env), weight_rng,
                                          env_rng.fork(1));
      }
      case Algo::kPpo: {
        auto env = std::make_unique<Hopper1D>(env_rng.fork(0));
        return std::make_unique<PpoAgent>(cfg, std::move(env), weight_rng,
                                          env_rng.fork(1));
      }
      case Algo::kDdpg: {
        auto env = std::make_unique<CheetahLite>(env_rng.fork(0));
        return std::make_unique<DdpgAgent>(cfg, std::move(env), weight_rng,
                                           env_rng.fork(1));
      }
    }
    throw std::logic_error("makeAgent: unknown algorithm");
}

} // namespace isw::rl
