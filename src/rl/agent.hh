/**
 * @file
 * The agent interface distributed training drives, plus a shared base
 * class handling weights, optimizer, and reward accounting.
 *
 * The contract mirrors the paper's training loop: each iteration the
 * strategy asks every worker's agent for a local gradient computed at
 * the current weights (LGC stage), aggregates the gradients somewhere
 * (PS node, ring, or in-switch), and hands every agent the *sum* of H
 * contributions to apply (LWU stage: optimizer step on sum/H). The
 * update is deterministic, so identically seeded agents keep identical
 * weights — the paper's decentralized-weight-storage argument (§4.1).
 */

#ifndef ISW_RL_AGENT_HH
#define ISW_RL_AGENT_HH

#include <deque>
#include <memory>

#include "ml/network.hh"
#include "ml/optimizer.hh"
#include "rl/env.hh"

namespace isw::rl {

/** Which RL algorithm an agent runs. */
enum class Algo { kDqn, kA2c, kPpo, kDdpg };

/** Printable algorithm name. */
const char *algoName(Algo a);

/** Shared hyperparameters (algorithm-specific fields have defaults). */
struct AgentConfig
{
    std::size_t hidden = 64;        ///< MLP hidden width (2 layers)
    double lr = 1e-3;               ///< optimizer learning rate
    float gamma = 0.99f;            ///< discount
    std::size_t steps_per_iter = 32; ///< env steps collected per iteration
    std::size_t batch_size = 64;    ///< replay minibatch (DQN/DDPG)
    std::size_t replay_capacity = 20000;
    std::size_t warmup = 500;       ///< replay fill before learning
    std::size_t target_sync_iters = 50; ///< DQN target refresh period
    float grad_clip = 10.0f;        ///< global-norm gradient clip
    // Exploration.
    float eps_start = 1.0f; ///< DQN epsilon-greedy start
    float eps_end = 0.05f;
    std::size_t eps_decay_iters = 2000;
    float noise_std = 0.2f; ///< DDPG Gaussian action noise
    float tau = 0.01f;      ///< DDPG soft target update rate
    // On-policy (A2C/PPO).
    float value_coef = 0.5f;
    float entropy_coef = 0.01f;
    float gae_lambda = 0.95f;
    float ppo_clip = 0.2f;
    float init_log_std = -0.5f;
};

/** Interface between a worker and its learning algorithm. */
class Agent
{
  public:
    virtual ~Agent() = default;

    virtual Algo algo() const = 0;

    /** Scalar parameter count (gradient vector length). */
    virtual std::size_t paramCount() = 0;

    /** Copy current flat weights into @p out. */
    virtual void getWeights(ml::Vec &out) = 0;

    /** Overwrite flat weights (size must equal paramCount()). */
    virtual void setWeights(std::span<const float> w) = 0;

    /**
     * LGC stage: interact with the environment for one iteration's
     * worth of steps and compute the local gradient at the current
     * weights. The returned reference stays valid until the next call.
     */
    virtual const ml::Vec &computeGradient() = 0;

    /**
     * LWU stage: apply the aggregated gradient (element-wise sum of
     * @p h worker contributions) via the local optimizer replica.
     */
    virtual void applyAggregatedGradient(std::span<const float> sum,
                                         std::uint32_t h) = 0;

    /**
     * The deterministic (exploration-free) policy action for @p obs.
     * Discrete algorithms return the action index in element 0;
     * continuous algorithms return the action vector. Used by
     * evaluation; does not advance any training state.
     */
    virtual ml::Vec policyAction(const ml::Vec &obs) = 0;

    /**
     * Install weights pulled from a central server (Async PS). Unlike
     * setWeights this counts as a weight refresh: target networks and
     * exploration schedules advance, exactly as applyAggregatedGradient
     * does for the decentralized strategies.
     */
    virtual void installWeights(std::span<const float> w) = 0;

    /** Episode reward averaged over the last @p n finished episodes. */
    virtual double avgEpisodeReward(std::size_t n = 10) const = 0;

    virtual std::uint64_t episodesCompleted() const = 0;
    virtual std::uint64_t updatesApplied() const = 0;
};

/** Common plumbing for the four algorithm implementations. */
class AgentBase : public Agent
{
  public:
    AgentBase(AgentConfig cfg, std::unique_ptr<Environment> env,
              sim::Rng rng);

    std::size_t paramCount() override { return params_.count(); }
    void getWeights(ml::Vec &out) override { params_.copyValuesTo(out); }
    void setWeights(std::span<const float> w) override
    {
        params_.setValues(w);
    }

    void applyAggregatedGradient(std::span<const float> sum,
                                 std::uint32_t h) override;

    void installWeights(std::span<const float> w) override
    {
        params_.setValues(w);
        ++updates_;
        postUpdate();
    }

    double avgEpisodeReward(std::size_t n = 10) const override;
    std::uint64_t episodesCompleted() const override { return episodes_; }
    std::uint64_t updatesApplied() const override { return updates_; }

    Environment &environment() { return *env_; }

  protected:
    /** Fold a step's reward into episode accounting. */
    void trackReward(float reward, bool done);

    /** Algorithm hook invoked after each weight update (target nets). */
    virtual void postUpdate() {}

    AgentConfig cfg_;
    std::unique_ptr<Environment> env_;
    sim::Rng rng_;
    ml::ParamSet params_;              ///< trainable parameters
    std::unique_ptr<ml::Optimizer> opt_;
    ml::Vec grad_;                     ///< last computed flat gradient
    ml::Vec cur_obs_;                  ///< persistent env observation
    std::uint64_t updates_ = 0;

  private:
    double episode_reward_ = 0.0;
    std::deque<double> recent_rewards_;
    std::uint64_t episodes_ = 0;
    ml::Vec scratch_weights_;
    ml::Vec scratch_mean_;
};

/**
 * Construct an agent of kind @p algo with its benchmark environment
 * (DQN->PongLite, A2C->QbertLite, PPO->Hopper1D, DDPG->CheetahLite).
 * @param rng Independent stream for this worker (weights are seeded
 *        from a *shared* stream internally so all workers start equal;
 *        see makeAgent's env_seed / weight determinism contract).
 */
std::unique_ptr<Agent> makeAgent(Algo algo, const AgentConfig &cfg,
                                 std::uint64_t weight_seed,
                                 std::uint64_t env_seed);

} // namespace isw::rl

#endif // ISW_RL_AGENT_HH
