#include "rl/ppo.hh"

#include <cmath>

#include "rl/returns.hh"

namespace isw::rl {

PpoAgent::PpoAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
                   sim::Rng &weight_rng, sim::Rng act_rng)
    : AgentBase(cfg, std::move(env), act_rng)
{
    const std::size_t obs = env_->observationDim();
    const std::size_t act = env_->actionDim();
    policy_ = ml::Network::mlp<ml::Tanh>({obs, cfg_.hidden, cfg_.hidden, act},
                                         weight_rng, "pi");
    value_ = ml::Network::mlp<ml::Tanh>({obs, cfg_.hidden, cfg_.hidden, 1},
                                        weight_rng, "v");
    log_std_ = log_std_net_.add<ml::ParamVector>(act, cfg_.init_log_std,
                                                 "log_std");
    params_.addNetwork(policy_);
    params_.addNetwork(value_);
    params_.addNetwork(log_std_net_);
    opt_ = std::make_unique<ml::Adam>(cfg_.lr);
}

ml::Vec
PpoAgent::meanAction(const ml::Vec &obs)
{
    ml::Matrix x(1, obs.size());
    std::copy(obs.begin(), obs.end(), x.data());
    const ml::Matrix mu = policy_.forward(x);
    return {mu.row(0).begin(), mu.row(0).end()};
}

const ml::Vec &
PpoAgent::computeGradient()
{
    const std::size_t T = cfg_.steps_per_iter;
    const std::size_t obs_dim = env_->observationDim();
    const std::size_t act_dim = env_->actionDim();

    // --- Rollout with the current (old) policy -------------------------
    ml::Matrix states(T, obs_dim);
    ml::Matrix actions(T, act_dim);
    std::vector<float> rewards(T), values(T), old_logp(T);
    std::vector<bool> dones(T);
    for (std::size_t t = 0; t < T; ++t) {
        std::copy(cur_obs_.begin(), cur_obs_.end(),
                  states.data() + t * obs_dim);
        const ml::Vec mu = meanAction(cur_obs_);
        {
            ml::Matrix x(1, obs_dim);
            std::copy(cur_obs_.begin(), cur_obs_.end(), x.data());
            values[t] = value_.forward(x).at(0, 0);
        }
        float logp = 0.0f;
        for (std::size_t j = 0; j < act_dim; ++j) {
            const float sd = std::exp(log_std_->value()[j]);
            const float eps = static_cast<float>(rng_.normal());
            const float a = mu[j] + sd * eps;
            actions.at(t, j) = a;
            logp += -0.5f * eps * eps - log_std_->value()[j] -
                    0.5f * std::log(2.0f * static_cast<float>(M_PI));
        }
        old_logp[t] = logp;
        StepResult res = env_->step(actions.row(t));
        trackReward(res.reward, res.done);
        rewards[t] = res.reward;
        dones[t] = res.done;
        cur_obs_ = res.done ? env_->reset() : std::move(res.observation);
    }

    // --- GAE advantages -------------------------------------------------
    float boot;
    {
        ml::Matrix x(1, obs_dim);
        std::copy(cur_obs_.begin(), cur_obs_.end(), x.data());
        boot = value_.forward(x).at(0, 0);
    }
    GaeResult gae = gaeAdvantages(rewards, values, dones, boot, cfg_.gamma,
                                  cfg_.gae_lambda);
    std::vector<float> &adv = gae.advantages;
    const std::vector<float> &returns = gae.returns;
    // Advantage normalization (standard PPO practice).
    normalizeInPlace(adv);

    // --- Gradient pass ----------------------------------------------------
    const ml::Matrix mu_all = policy_.forward(states);
    const ml::Matrix v_all = value_.forward(states);

    ml::Matrix dmu(T, act_dim);
    ml::Matrix dv(T, 1);
    ml::Vec dlogstd(act_dim, 0.0f);
    const float inv_t = 1.0f / static_cast<float>(T);
    for (std::size_t t = 0; t < T; ++t) {
        // New log-prob under (possibly moved) weights.
        float logp = 0.0f;
        for (std::size_t j = 0; j < act_dim; ++j) {
            const float sd = std::exp(log_std_->value()[j]);
            const float z = (actions.at(t, j) - mu_all.at(t, j)) / sd;
            logp += -0.5f * z * z - log_std_->value()[j] -
                    0.5f * std::log(2.0f * static_cast<float>(M_PI));
        }
        const float ratio = std::exp(logp - old_logp[t]);
        const bool clipped = (adv[t] > 0.0f && ratio > 1.0f + cfg_.ppo_clip) ||
                             (adv[t] < 0.0f && ratio < 1.0f - cfg_.ppo_clip);
        for (std::size_t j = 0; j < act_dim; ++j) {
            const float sd = std::exp(log_std_->value()[j]);
            const float z = (actions.at(t, j) - mu_all.at(t, j)) / sd;
            if (!clipped) {
                // d(-ratio*A)/dmu = -A * ratio * z / sd.
                dmu.at(t, j) = -adv[t] * ratio * z / sd * inv_t;
                // d(-ratio*A)/dlogstd = -A * ratio * (z^2 - 1).
                dlogstd[j] += -adv[t] * ratio * (z * z - 1.0f) * inv_t;
            } else {
                dmu.at(t, j) = 0.0f;
            }
        }
        dv.at(t, 0) =
            cfg_.value_coef * 2.0f * (v_all.at(t, 0) - returns[t]) * inv_t;
    }
    // Gaussian entropy bonus: H = sum_j (log_std_j + const), dH/dls = 1.
    for (std::size_t j = 0; j < act_dim; ++j)
        dlogstd[j] += -cfg_.entropy_coef;

    params_.zeroGrads();
    policy_.backward(dmu);
    value_.backward(dv);
    for (std::size_t j = 0; j < act_dim; ++j)
        log_std_->grad()[j] += dlogstd[j];
    params_.clipGradNorm(cfg_.grad_clip);
    params_.copyGradsTo(grad_);
    return grad_;
}

} // namespace isw::rl
