/**
 * @file
 * Per-algorithm benchmark presets, pairing a laptop-scale learnable
 * configuration with the paper's published workload constants
 * (Table 1 model sizes and training-iteration counts).
 */

#ifndef ISW_RL_MODEL_ZOO_HH
#define ISW_RL_MODEL_ZOO_HH

#include <array>
#include <cstdint>

#include "rl/agent.hh"

namespace isw::rl {

/** One benchmark row of the paper's Table 1, plus our local config. */
struct BenchmarkSpec
{
    Algo algo;
    const char *paper_env;    ///< environment the paper used
    const char *local_env;    ///< our substitute environment
    std::uint64_t paper_model_bytes;  ///< Table 1 "Model Size"
    std::uint64_t paper_iterations;   ///< Table 1 "Training Iteration"
    AgentConfig config;       ///< learnable local hyperparameters
};

/** The paper's four benchmarks (Table 1). */
const std::array<BenchmarkSpec, 4> &benchmarks();

/** Spec for a given algorithm. */
const BenchmarkSpec &specFor(Algo algo);

} // namespace isw::rl

#endif // ISW_RL_MODEL_ZOO_HH
