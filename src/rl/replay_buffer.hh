/**
 * @file
 * Uniform-sampling experience replay for off-policy algorithms
 * (DQN, DDPG).
 */

#ifndef ISW_RL_REPLAY_BUFFER_HH
#define ISW_RL_REPLAY_BUFFER_HH

#include <cstddef>
#include <vector>

#include "ml/tensor.hh"
#include "sim/random.hh"

namespace isw::rl {

/** One stored transition. The action is a float vector; discrete
 *  algorithms store the index in action[0]. */
struct Transition
{
    ml::Vec state;
    ml::Vec action;
    float reward = 0.0f;
    ml::Vec next_state;
    bool done = false;
};

/** Fixed-capacity ring buffer with uniform random sampling. */
class ReplayBuffer
{
  public:
    explicit ReplayBuffer(std::size_t capacity);

    void push(Transition t);

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return buf_.size(); }
    bool empty() const { return size_ == 0; }

    /** Sample @p n transitions (with replacement) into @p out. */
    void sample(std::size_t n, sim::Rng &rng,
                std::vector<const Transition *> &out) const;

    const Transition &at(std::size_t i) const { return buf_.at(i); }

  private:
    std::vector<Transition> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace isw::rl

#endif // ISW_RL_REPLAY_BUFFER_HH
