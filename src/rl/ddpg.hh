/**
 * @file
 * Deep Deterministic Policy Gradient (Lillicrap et al.) on
 * CheetahLite: deterministic tanh actor, Q critic on (state, action),
 * target copies of both with soft (Polyak) updates, Gaussian
 * exploration noise, and experience replay.
 */

#ifndef ISW_RL_DDPG_HH
#define ISW_RL_DDPG_HH

#include "rl/agent.hh"
#include "rl/replay_buffer.hh"

namespace isw::rl {

/** DDPG agent (continuous actions). */
class DdpgAgent final : public AgentBase
{
  public:
    DdpgAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
              sim::Rng &weight_rng, sim::Rng act_rng);

    Algo algo() const override { return Algo::kDdpg; }
    const ml::Vec &computeGradient() override;

    /** Deterministic (noise-free) action for @p obs. */
    ml::Vec act(const ml::Vec &obs);

    ml::Vec
    policyAction(const ml::Vec &obs) override
    {
        return act(obs);
    }

  protected:
    void postUpdate() override; ///< soft-updates both targets

  private:
    ml::Vec actNoisy(const ml::Vec &obs);

    ml::Network actor_;
    ml::Network critic_;
    ml::Network actor_target_;
    ml::Network critic_target_;
    ml::ParamSet actor_params_;
    ml::ParamSet critic_params_;
    ml::ParamSet target_params_; ///< both targets, not transmitted
    ReplayBuffer replay_;
    std::vector<const Transition *> batch_;
};

} // namespace isw::rl

#endif // ISW_RL_DDPG_HH
