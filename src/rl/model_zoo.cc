#include "rl/model_zoo.hh"

#include <stdexcept>

namespace isw::rl {

namespace {

AgentConfig
dqnConfig()
{
    AgentConfig c;
    c.hidden = 64;
    c.lr = 1e-3;
    c.steps_per_iter = 32;
    c.batch_size = 64;
    c.replay_capacity = 20000;
    c.warmup = 300;
    c.target_sync_iters = 50;
    c.eps_decay_iters = 800;
    return c;
}

AgentConfig
a2cConfig()
{
    AgentConfig c;
    c.hidden = 64;
    c.lr = 2e-3;
    c.steps_per_iter = 32;
    c.entropy_coef = 0.02f;
    c.value_coef = 0.5f;
    return c;
}

AgentConfig
ppoConfig()
{
    AgentConfig c;
    c.hidden = 32;
    c.lr = 1e-3;
    c.steps_per_iter = 64;
    c.gae_lambda = 0.95f;
    c.entropy_coef = 0.003f;
    c.init_log_std = -0.5f;
    return c;
}

AgentConfig
ddpgConfig()
{
    AgentConfig c;
    c.hidden = 48;
    c.lr = 1e-3;
    c.steps_per_iter = 32;
    c.batch_size = 64;
    c.replay_capacity = 20000;
    c.warmup = 500;
    c.noise_std = 0.25f;
    c.tau = 0.02f;
    return c;
}

} // namespace

const std::array<BenchmarkSpec, 4> &
benchmarks()
{
    // Paper Table 1: DQN 6.41 MB / 200M iters; A2C 3.31 MB / 2M;
    // PPO 40.02 KB / 0.15M; DDPG 157.52 KB / 2.5M.
    static const std::array<BenchmarkSpec, 4> kSpecs{{
        {Algo::kDqn, "Atari Pong", "PongLite",
         static_cast<std::uint64_t>(6.41 * 1024 * 1024), 200'000'000ULL,
         dqnConfig()},
        {Algo::kA2c, "Atari Qbert", "QbertLite",
         static_cast<std::uint64_t>(3.31 * 1024 * 1024), 2'000'000ULL,
         a2cConfig()},
        {Algo::kPpo, "MuJoCo Hopper", "Hopper1D",
         static_cast<std::uint64_t>(40.02 * 1024), 150'000ULL, ppoConfig()},
        {Algo::kDdpg, "MuJoCo HalfCheetah", "CheetahLite",
         static_cast<std::uint64_t>(157.52 * 1024), 2'500'000ULL,
         ddpgConfig()},
    }};
    return kSpecs;
}

const BenchmarkSpec &
specFor(Algo algo)
{
    for (const auto &s : benchmarks())
        if (s.algo == algo)
            return s;
    throw std::logic_error("specFor: unknown algorithm");
}

} // namespace isw::rl
