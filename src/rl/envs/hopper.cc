#include "rl/envs/hopper.hh"

#include <algorithm>
#include <cmath>

namespace isw::rl {

Hopper1D::Hopper1D(sim::Rng rng, HopperConfig cfg) : rng_(rng), cfg_(cfg) {}

Vec
Hopper1D::observe() const
{
    return {z_, vz_ / 5.0f, vx_ / 5.0f, grounded() ? 1.0f : 0.0f};
}

Vec
Hopper1D::reset()
{
    z_ = 0.0f;
    vz_ = 0.0f;
    vx_ = 0.0f;
    steps_ = 0;
    return observe();
}

StepResult
Hopper1D::step(std::span<const float> action)
{
    ++steps_;
    const float a = std::clamp(action.empty() ? 0.0f : action[0], -1.0f, 1.0f);
    const float thrust = std::max(a, 0.0f);

    if (grounded()) {
        // Push-off: thrust converts to vertical and forward velocity.
        vz_ = thrust * cfg_.jump_gain;
        vx_ = cfg_.ground_drag * vx_ + thrust * cfg_.push_gain;
    } else {
        vz_ -= cfg_.gravity * cfg_.dt;
        vx_ *= cfg_.air_drag;
    }
    z_ += vz_ * cfg_.dt;
    if (z_ <= 0.0f) {
        z_ = 0.0f;
        vz_ = 0.0f;
    }

    StepResult res;
    res.reward = cfg_.vel_reward * vx_ * cfg_.dt + cfg_.alive_bonus -
                 cfg_.ctrl_cost * a * a;
    res.done = steps_ >= cfg_.max_steps;
    res.observation = observe();
    return res;
}

} // namespace isw::rl
