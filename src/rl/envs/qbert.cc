#include "rl/envs/qbert.hh"

namespace isw::rl {

QbertLite::QbertLite(sim::Rng rng, QbertConfig cfg) : rng_(rng), cfg_(cfg)
{
    cells_.resize(static_cast<std::size_t>(cfg_.rows) * (cfg_.rows + 1) / 2);
}

bool
QbertLite::valid(int r, int c) const
{
    return r >= 0 && r < cfg_.rows && c >= 0 && c <= r;
}

std::uint8_t &
QbertLite::colored(int r, int c)
{
    return cells_.at(static_cast<std::size_t>(r) * (r + 1) / 2 + c);
}

bool
QbertLite::coloredAt(int r, int c) const
{
    return cells_.at(static_cast<std::size_t>(r) * (r + 1) / 2 + c);
}

std::pair<int, int>
QbertLite::hop(int r, int c, std::size_t a)
{
    switch (a) {
      case 0: return {r + 1, c};     // down-left
      case 1: return {r + 1, c + 1}; // down-right
      case 2: return {r - 1, c - 1}; // up-left
      default: return {r - 1, c};    // up-right
    }
}

Vec
QbertLite::observe() const
{
    Vec obs;
    obs.reserve(observationDim());
    obs.push_back(static_cast<float>(r_) / static_cast<float>(cfg_.rows));
    obs.push_back(static_cast<float>(c_) /
                  static_cast<float>(std::max(1, r_)));
    obs.push_back(coloredFraction());
    for (std::size_t a = 0; a < 4; ++a) {
        auto [nr, nc] = hop(r_, c_, a);
        const bool ok = valid(nr, nc);
        obs.push_back(ok ? 1.0f : 0.0f);
        obs.push_back(ok && coloredAt(nr, nc) ? 1.0f : 0.0f);
    }
    return obs;
}

float
QbertLite::coloredFraction() const
{
    return static_cast<float>(colored_count_) /
           static_cast<float>(cells_.size());
}

Vec
QbertLite::reset()
{
    std::fill(cells_.begin(), cells_.end(), false);
    r_ = 0;
    c_ = 0;
    steps_ = 0;
    colored(0, 0) = true;
    colored_count_ = 1;
    return observe();
}

StepResult
QbertLite::step(std::size_t action)
{
    ++steps_;
    StepResult res;
    auto [nr, nc] = hop(r_, c_, action);
    if (!valid(nr, nc)) {
        res.reward = -cfg_.fall_penalty;
        res.done = true;
        res.observation = observe();
        return res;
    }
    r_ = nr;
    c_ = nc;
    float reward = -cfg_.step_cost;
    if (!coloredAt(r_, c_)) {
        colored(r_, c_) = true;
        ++colored_count_;
        reward += cfg_.new_cell_reward;
    }
    bool done = false;
    if (colored_count_ == static_cast<int>(cells_.size())) {
        reward += cfg_.clear_bonus;
        done = true;
    }
    if (steps_ >= cfg_.max_steps)
        done = true;
    res.reward = reward;
    res.done = done;
    res.observation = observe();
    return res;
}

} // namespace isw::rl
