#include "rl/envs/pong.hh"

#include <algorithm>
#include <cmath>

namespace isw::rl {

PongLite::PongLite(sim::Rng rng, PongConfig cfg) : rng_(rng), cfg_(cfg) {}

Vec
PongLite::observe() const
{
    return {bx_, by_, bvx_ / cfg_.ball_speed, bvy_ / cfg_.ball_speed,
            agent_y_, opp_y_};
}

void
PongLite::serve(int direction)
{
    bx_ = 0.5f;
    by_ = static_cast<float>(rng_.uniform(0.2, 0.8));
    const float angle = static_cast<float>(rng_.uniform(-0.7, 0.7));
    bvx_ = cfg_.ball_speed * static_cast<float>(direction) * std::cos(angle);
    bvy_ = cfg_.ball_speed * std::sin(angle);
}

Vec
PongLite::reset()
{
    agent_score_ = 0;
    opp_score_ = 0;
    steps_ = 0;
    agent_y_ = 0.5f;
    opp_y_ = 0.5f;
    serve(rng_.bernoulli(0.5) ? 1 : -1);
    return observe();
}

StepResult
PongLite::step(std::size_t action)
{
    ++steps_;
    // Agent paddle.
    if (action == 1)
        agent_y_ = std::min(1.0f, agent_y_ + cfg_.paddle_speed);
    else if (action == 2)
        agent_y_ = std::max(0.0f, agent_y_ - cfg_.paddle_speed);

    // Scripted opponent tracks the ball with bounded speed + noise.
    const float target =
        by_ + cfg_.opponent_noise * static_cast<float>(rng_.normal());
    if (target > opp_y_ + 0.01f)
        opp_y_ = std::min(1.0f, opp_y_ + cfg_.opponent_speed);
    else if (target < opp_y_ - 0.01f)
        opp_y_ = std::max(0.0f, opp_y_ - cfg_.opponent_speed);

    // Ball physics.
    bx_ += bvx_;
    by_ += bvy_;
    if (by_ < 0.0f) {
        by_ = -by_;
        bvy_ = -bvy_;
    } else if (by_ > 1.0f) {
        by_ = 2.0f - by_;
        bvy_ = -bvy_;
    }

    float reward = 0.0f;
    if (bx_ >= 1.0f) {
        // Reached the agent's side.
        if (std::fabs(by_ - agent_y_) <= cfg_.paddle_half) {
            bvx_ = -std::fabs(bvx_);
            bx_ = 2.0f - bx_;
            // Deflection: hitting off-center steers the ball.
            bvy_ += 0.5f * cfg_.ball_speed * (by_ - agent_y_) /
                    cfg_.paddle_half;
        } else {
            reward = -1.0f;
            ++opp_score_;
            serve(-1);
        }
    } else if (bx_ <= 0.0f) {
        if (std::fabs(by_ - opp_y_) <= cfg_.paddle_half) {
            bvx_ = std::fabs(bvx_);
            bx_ = -bx_;
            bvy_ +=
                0.5f * cfg_.ball_speed * (by_ - opp_y_) / cfg_.paddle_half;
        } else {
            reward = 1.0f;
            ++agent_score_;
            serve(1);
        }
    }

    StepResult res;
    res.reward = reward;
    res.done = agent_score_ >= cfg_.points_to_win ||
               opp_score_ >= cfg_.points_to_win || steps_ >= cfg_.max_steps;
    res.observation = observe();
    return res;
}

} // namespace isw::rl
