/**
 * @file
 * QbertLite: a pyramid-hopping stand-in for the Atari Q*bert game the
 * paper trains A2C on.
 *
 * The agent hops diagonally on a triangular pyramid of cells, earning
 * reward for landing on uncolored cells, a bonus for coloring the
 * whole pyramid, and a penalty (plus episode end) for hopping off the
 * edge. Observations are engineered features: normalized position,
 * colored fraction, and validity/colored flags for the four hop
 * directions, which keeps the task MLP-learnable.
 */

#ifndef ISW_RL_ENVS_QBERT_HH
#define ISW_RL_ENVS_QBERT_HH

#include <vector>

#include "rl/env.hh"

namespace isw::rl {

/** Tunable parameters of QbertLite. */
struct QbertConfig
{
    int rows = 5;            ///< pyramid height (row r has r+1 cells)
    float step_cost = 0.02f; ///< per-hop penalty (encourages progress)
    float new_cell_reward = 1.0f;
    float fall_penalty = 3.0f;
    float clear_bonus = 5.0f;
    int max_steps = 200;
};

/** The A2C benchmark environment. */
class QbertLite final : public Environment
{
  public:
    QbertLite(sim::Rng rng, QbertConfig cfg = {});

    const char *name() const override { return "QbertLite"; }
    std::size_t observationDim() const override { return 3 + 4 * 2; }
    /** Hops: 0=down-left, 1=down-right, 2=up-left, 3=up-right. */
    std::size_t actionDim() const override { return 4; }
    bool continuousActions() const override { return false; }

    using Environment::step;

    Vec reset() override;
    StepResult step(std::size_t action) override;

    /** Fraction of cells colored (testing hook). */
    float coloredFraction() const;

  private:
    bool valid(int r, int c) const;
    std::uint8_t &colored(int r, int c);
    bool coloredAt(int r, int c) const;
    Vec observe() const;
    /** Destination of hop @p a from (r, c); may be off-pyramid. */
    static std::pair<int, int> hop(int r, int c, std::size_t a);

    sim::Rng rng_;
    QbertConfig cfg_;
    std::vector<std::uint8_t> cells_; ///< row-major triangular colored flags
    int r_ = 0, c_ = 0;
    int colored_count_ = 0;
    int steps_ = 0;
};

} // namespace isw::rl

#endif // ISW_RL_ENVS_QBERT_HH
