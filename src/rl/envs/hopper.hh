/**
 * @file
 * Hopper1D: a one-legged hopping stand-in for the MuJoCo Hopper task
 * the paper trains PPO on.
 *
 * A point body with height z and velocities (vz, vx) must learn to
 * push off the ground: thrust only works during ground contact, turns
 * into both upward and forward velocity, and forward speed decays in
 * flight. Reward = forward progress + alive bonus - control cost, so
 * the optimal behaviour is a periodic hop, which requires a genuinely
 * state-dependent continuous policy.
 */

#ifndef ISW_RL_ENVS_HOPPER_HH
#define ISW_RL_ENVS_HOPPER_HH

#include "rl/env.hh"

namespace isw::rl {

/** Tunable parameters of Hopper1D. */
struct HopperConfig
{
    float dt = 0.05f;
    float gravity = 9.8f;
    float jump_gain = 8.0f;    ///< thrust -> vertical velocity
    float push_gain = 1.5f;    ///< thrust -> forward velocity
    float ground_drag = 0.80f; ///< vx multiplier while grounded
    float air_drag = 0.995f;   ///< vx multiplier while airborne
    float ctrl_cost = 0.05f;
    float alive_bonus = 0.05f;
    float vel_reward = 1.0f;
    int max_steps = 200;
};

/** The PPO benchmark environment (1-D continuous action: thrust). */
class Hopper1D final : public Environment
{
  public:
    Hopper1D(sim::Rng rng, HopperConfig cfg = {});

    const char *name() const override { return "Hopper1D"; }
    std::size_t observationDim() const override { return 4; }
    std::size_t actionDim() const override { return 1; }
    bool continuousActions() const override { return true; }

    using Environment::step;

    Vec reset() override;
    StepResult step(std::span<const float> action) override;

    float forwardVelocity() const { return vx_; }
    bool grounded() const { return z_ <= 0.0f; }

  private:
    Vec observe() const;

    sim::Rng rng_;
    HopperConfig cfg_;
    float z_ = 0.0f;  ///< height above ground
    float vz_ = 0.0f; ///< vertical velocity
    float vx_ = 0.0f; ///< forward velocity
    int steps_ = 0;
};

} // namespace isw::rl

#endif // ISW_RL_ENVS_HOPPER_HH
