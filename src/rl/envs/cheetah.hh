/**
 * @file
 * CheetahLite: a planar stride-pumping stand-in for the MuJoCo
 * HalfCheetah task the paper trains DDPG on.
 *
 * The body has a forward velocity and a stride variable p in [-1, 1].
 * Action 0 ("push") extends the stride and produces thrust only while
 * stride room remains; action 1 ("recover") retracts the stride
 * without thrust. Sustained speed therefore requires alternating
 * push/recover conditioned on p — a state-dependent 2-D continuous
 * policy, which is what DDPG is exercised on.
 */

#ifndef ISW_RL_ENVS_CHEETAH_HH
#define ISW_RL_ENVS_CHEETAH_HH

#include "rl/env.hh"

namespace isw::rl {

/** Tunable parameters of CheetahLite. */
struct CheetahConfig
{
    float dt = 0.05f;
    float stride_rate = 3.0f; ///< how fast actions move the stride
    float thrust_gain = 2.0f;
    float drag = 0.05f;
    float ctrl_cost = 0.05f;
    float vel_reward = 1.0f;
    int max_steps = 200;
};

/** The DDPG benchmark environment (2-D continuous action). */
class CheetahLite final : public Environment
{
  public:
    CheetahLite(sim::Rng rng, CheetahConfig cfg = {});

    const char *name() const override { return "CheetahLite"; }
    std::size_t observationDim() const override { return 3; }
    std::size_t actionDim() const override { return 2; }
    bool continuousActions() const override { return true; }

    using Environment::step;

    Vec reset() override;
    StepResult step(std::span<const float> action) override;

    float velocity() const { return v_; }
    float stride() const { return p_; }

  private:
    Vec observe() const;

    sim::Rng rng_;
    CheetahConfig cfg_;
    float v_ = 0.0f; ///< forward velocity
    float p_ = 0.0f; ///< stride position in [-1, 1]
    int steps_ = 0;
};

} // namespace isw::rl

#endif // ISW_RL_ENVS_CHEETAH_HH
