#include "rl/envs/cheetah.hh"

#include <algorithm>
#include <cmath>

namespace isw::rl {

CheetahLite::CheetahLite(sim::Rng rng, CheetahConfig cfg)
    : rng_(rng), cfg_(cfg)
{
}

Vec
CheetahLite::observe() const
{
    return {v_ / 5.0f, p_, 1.0f - std::fabs(p_)};
}

Vec
CheetahLite::reset()
{
    v_ = 0.0f;
    p_ = static_cast<float>(rng_.uniform(-0.2, 0.2));
    steps_ = 0;
    return observe();
}

StepResult
CheetahLite::step(std::span<const float> action)
{
    ++steps_;
    const float push =
        std::clamp(action.size() > 0 ? action[0] : 0.0f, -1.0f, 1.0f);
    const float recover =
        std::clamp(action.size() > 1 ? action[1] : 0.0f, -1.0f, 1.0f);

    // Thrust only while the stride still has room to extend.
    const float room = std::max(0.0f, 1.0f - p_);
    const float thrust = std::max(push, 0.0f) * room;
    v_ += thrust * cfg_.thrust_gain * cfg_.dt;
    v_ *= 1.0f - cfg_.drag;

    p_ += (std::max(push, 0.0f) - std::max(recover, 0.0f)) *
          cfg_.stride_rate * cfg_.dt;
    p_ = std::clamp(p_, -1.0f, 1.0f);

    StepResult res;
    res.reward = cfg_.vel_reward * v_ * cfg_.dt -
                 cfg_.ctrl_cost * (push * push + recover * recover);
    res.done = steps_ >= cfg_.max_steps;
    res.observation = observe();
    return res;
}

} // namespace isw::rl
