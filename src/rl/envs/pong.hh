/**
 * @file
 * PongLite: a low-dimensional Pong stand-in for the Atari game the
 * paper trains DQN on.
 *
 * A ball bounces in a unit box; the learning agent moves the right
 * paddle (3 actions: stay/up/down), a scripted opponent with bounded
 * speed and reaction noise moves the left paddle. A point scores +1
 * when the opponent misses and -1 when the agent misses; an episode
 * ends when either side reaches `points_to_win`. The average episode
 * reward therefore lives in [-points_to_win, +points_to_win], just as
 * Atari Pong's lives in [-21, 21].
 */

#ifndef ISW_RL_ENVS_PONG_HH
#define ISW_RL_ENVS_PONG_HH

#include "rl/env.hh"

namespace isw::rl {

/** Tunable parameters of PongLite. */
struct PongConfig
{
    int points_to_win = 5;        ///< episode ends at this score
    float paddle_speed = 0.05f;   ///< agent paddle step per tick
    float opponent_speed = 0.03f; ///< scripted paddle step per tick
    float opponent_noise = 0.15f; ///< tracking error magnitude
    float ball_speed = 0.04f;     ///< ball velocity magnitude
    float paddle_half = 0.10f;    ///< paddle half-height
    int max_steps = 3000;         ///< hard episode cap
};

/** The DQN benchmark environment. */
class PongLite final : public Environment
{
  public:
    PongLite(sim::Rng rng, PongConfig cfg = {});

    const char *name() const override { return "PongLite"; }
    std::size_t observationDim() const override { return 6; }
    std::size_t actionDim() const override { return 3; }
    bool continuousActions() const override { return false; }

    using Environment::step;

    Vec reset() override;
    StepResult step(std::size_t action) override;

    int agentScore() const { return agent_score_; }
    int opponentScore() const { return opp_score_; }

  private:
    Vec observe() const;
    void serve(int direction);

    sim::Rng rng_;
    PongConfig cfg_;
    float bx_ = 0.5f, by_ = 0.5f; ///< ball position
    float bvx_ = 0.0f, bvy_ = 0.0f;
    float agent_y_ = 0.5f; ///< right paddle center
    float opp_y_ = 0.5f;   ///< left paddle center
    int agent_score_ = 0;
    int opp_score_ = 0;
    int steps_ = 0;
};

} // namespace isw::rl

#endif // ISW_RL_ENVS_PONG_HH
