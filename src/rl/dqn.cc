#include "rl/dqn.hh"

#include <algorithm>
#include <cmath>

#include "ml/losses.hh"

namespace isw::rl {

namespace {

ml::Matrix
rowMatrix(const ml::Vec &v)
{
    ml::Matrix m(1, v.size());
    std::copy(v.begin(), v.end(), m.data());
    return m;
}

} // namespace

DqnAgent::DqnAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
                   sim::Rng &weight_rng, sim::Rng act_rng)
    : AgentBase(cfg, std::move(env), act_rng),
      replay_(cfg.replay_capacity)
{
    const std::size_t obs = env_->observationDim();
    const std::size_t act = env_->actionDim();
    const std::vector<std::size_t> dims{obs, cfg_.hidden, cfg_.hidden, act};
    q_ = ml::Network::mlp<ml::ReLU>(dims, weight_rng, "q");
    // The target starts as an exact copy of q (initialized below).
    sim::Rng dummy(0);
    target_ = ml::Network::mlp<ml::ReLU>(dims, dummy, "qt");
    params_.addNetwork(q_);
    target_params_.addNetwork(target_);
    syncTarget();
    opt_ = std::make_unique<ml::Adam>(cfg_.lr);
}

float
DqnAgent::epsilon() const
{
    const double progress =
        std::min(1.0, static_cast<double>(updates_) /
                          static_cast<double>(cfg_.eps_decay_iters));
    return static_cast<float>(cfg_.eps_end +
                              (cfg_.eps_start - cfg_.eps_end) *
                                  (1.0 - progress));
}

std::size_t
DqnAgent::greedyAction(const ml::Vec &obs)
{
    const ml::Matrix qv = q_.forward(rowMatrix(obs));
    return ml::argmaxRow(qv.row(0));
}

void
DqnAgent::syncTarget()
{
    ml::Vec w;
    params_.copyValuesTo(w);
    target_params_.setValues(w);
}

void
DqnAgent::postUpdate()
{
    if (updates_ % cfg_.target_sync_iters == 0)
        syncTarget();
}

const ml::Vec &
DqnAgent::computeGradient()
{
    // --- Experience collection ---------------------------------------
    for (std::size_t s = 0; s < cfg_.steps_per_iter; ++s) {
        std::size_t action;
        if (rng_.bernoulli(epsilon())) {
            action = static_cast<std::size_t>(rng_.uniformInt(
                0, static_cast<std::int64_t>(env_->actionDim()) - 1));
        } else {
            action = greedyAction(cur_obs_);
        }
        StepResult res = env_->step(action);
        trackReward(res.reward, res.done);
        replay_.push(Transition{cur_obs_,
                                {static_cast<float>(action)},
                                res.reward,
                                res.observation,
                                res.done});
        cur_obs_ = res.done ? env_->reset() : std::move(res.observation);
    }

    // --- Gradient computation ----------------------------------------
    params_.zeroGrads();
    grad_.assign(params_.count(), 0.0f);
    if (replay_.size() < cfg_.warmup)
        return grad_; // still warming up: contribute a zero gradient

    replay_.sample(cfg_.batch_size, rng_, batch_);
    const std::size_t batch = batch_.size();
    const std::size_t obs_dim = env_->observationDim();
    ml::Matrix s(batch, obs_dim), s2(batch, obs_dim);
    for (std::size_t i = 0; i < batch; ++i) {
        std::copy(batch_[i]->state.begin(), batch_[i]->state.end(),
                  s.data() + i * obs_dim);
        std::copy(batch_[i]->next_state.begin(), batch_[i]->next_state.end(),
                  s2.data() + i * obs_dim);
    }

    const ml::Matrix q_next = target_.forward(s2);
    const ml::Matrix q_pred = q_.forward(s);

    ml::Matrix dpred(batch, env_->actionDim());
    const float inv_b = 1.0f / static_cast<float>(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        const auto a = static_cast<std::size_t>(batch_[i]->action[0]);
        const float max_next =
            *std::max_element(q_next.row(i).begin(), q_next.row(i).end());
        const float y = batch_[i]->reward +
                        (batch_[i]->done ? 0.0f : cfg_.gamma * max_next);
        const float diff = q_pred.at(i, a) - y;
        // Huber derivative, delta = 1.
        dpred.at(i, a) = std::clamp(diff, -1.0f, 1.0f) * inv_b;
    }

    q_.backward(dpred);
    params_.clipGradNorm(cfg_.grad_clip);
    params_.copyGradsTo(grad_);
    return grad_;
}

} // namespace isw::rl
