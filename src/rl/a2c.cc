#include "rl/a2c.hh"

#include <cmath>

#include "ml/losses.hh"
#include "rl/returns.hh"

namespace isw::rl {

A2cAgent::A2cAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
                   sim::Rng &weight_rng, sim::Rng act_rng)
    : AgentBase(cfg, std::move(env), act_rng)
{
    const std::size_t obs = env_->observationDim();
    const std::size_t act = env_->actionDim();
    trunk_ = ml::Network::mlp<ml::ReLU>({obs, cfg_.hidden, cfg_.hidden},
                                        weight_rng, "trunk");
    trunk_.add<ml::ReLU>(); // activation after the last trunk layer
    policy_head_ =
        policy_net_.add<ml::Linear>(cfg_.hidden, act, weight_rng, "pi");
    value_head_ =
        value_net_.add<ml::Linear>(cfg_.hidden, std::size_t{1}, weight_rng,
                                   "v");
    params_.addNetwork(trunk_);
    params_.addNetwork(policy_net_);
    params_.addNetwork(value_net_);
    opt_ = std::make_unique<ml::Adam>(cfg_.lr);
}

std::pair<ml::Vec, float>
A2cAgent::evaluate(const ml::Vec &obs)
{
    ml::Matrix x(1, obs.size());
    std::copy(obs.begin(), obs.end(), x.data());
    const ml::Matrix h = trunk_.forward(x);
    ml::Matrix logits = policy_net_.forward(h);
    const ml::Matrix v = value_net_.forward(h);
    ml::Vec probs(logits.row(0).begin(), logits.row(0).end());
    ml::softmaxRow(probs);
    return {std::move(probs), v.at(0, 0)};
}

std::size_t
A2cAgent::sampleAction(const ml::Vec &obs)
{
    auto [probs, v] = evaluate(obs);
    (void)v;
    return ml::sampleCategorical(probs, rng_);
}

ml::Vec
A2cAgent::policyAction(const ml::Vec &obs)
{
    auto [probs, v] = evaluate(obs);
    (void)v;
    return {static_cast<float>(ml::argmaxRow(probs))};
}

const ml::Vec &
A2cAgent::computeGradient()
{
    const std::size_t T = cfg_.steps_per_iter;
    const std::size_t obs_dim = env_->observationDim();
    const std::size_t act_dim = env_->actionDim();

    // --- Rollout -------------------------------------------------------
    ml::Matrix states(T, obs_dim);
    std::vector<std::size_t> actions(T);
    std::vector<float> rewards(T);
    std::vector<bool> dones(T);
    for (std::size_t t = 0; t < T; ++t) {
        std::copy(cur_obs_.begin(), cur_obs_.end(),
                  states.data() + t * obs_dim);
        auto [probs, v] = evaluate(cur_obs_);
        (void)v;
        const std::size_t a = ml::sampleCategorical(probs, rng_);
        StepResult res = env_->step(a);
        trackReward(res.reward, res.done);
        actions[t] = a;
        rewards[t] = res.reward;
        dones[t] = res.done;
        cur_obs_ = res.done ? env_->reset() : std::move(res.observation);
    }

    // Bootstrap from the state after the last step.
    auto [last_probs, last_v] = evaluate(cur_obs_);
    (void)last_probs;

    // --- Returns ---------------------------------------------------------
    const std::vector<float> returns =
        nStepReturns(rewards, dones, last_v, cfg_.gamma);

    // --- Batched forward (weights unchanged since rollout) -------------
    const ml::Matrix h = trunk_.forward(states);
    const ml::Matrix logits = policy_net_.forward(h);
    const ml::Matrix values = value_net_.forward(h);

    ml::Matrix dlogits(T, act_dim);
    ml::Matrix dv(T, 1);
    const float inv_t = 1.0f / static_cast<float>(T);
    for (std::size_t t = 0; t < T; ++t) {
        ml::Vec probs(logits.row(t).begin(), logits.row(t).end());
        ml::softmaxRow(probs);
        const float adv = returns[t] - values.at(t, 0);
        const float ent = ml::entropyRow(probs);
        for (std::size_t j = 0; j < act_dim; ++j) {
            const float onehot = j == actions[t] ? 1.0f : 0.0f;
            float g = (probs[j] - onehot) * adv * inv_t; // policy gradient
            if (probs[j] > 0.0f) {
                // Entropy bonus: dL/dz = c_e * p (log p + H).
                g += cfg_.entropy_coef * probs[j] *
                     (std::log(probs[j]) + ent) * inv_t;
            }
            dlogits.at(t, j) = g;
        }
        dv.at(t, 0) =
            cfg_.value_coef * 2.0f * (values.at(t, 0) - returns[t]) * inv_t;
    }

    // --- Backward --------------------------------------------------------
    params_.zeroGrads();
    ml::Matrix dh_pi = policy_net_.backward(dlogits);
    const ml::Matrix dh_v = value_net_.backward(dv);
    for (std::size_t i = 0; i < dh_pi.raw().size(); ++i)
        dh_pi.raw()[i] += dh_v.raw()[i];
    trunk_.backward(dh_pi);
    params_.clipGradNorm(cfg_.grad_clip);
    params_.copyGradsTo(grad_);
    return grad_;
}

} // namespace isw::rl
