/**
 * @file
 * Return and advantage estimators shared by the on-policy algorithms:
 * n-step bootstrapped returns (A2C) and Generalized Advantage
 * Estimation (PPO). Extracted as free functions so the recurrences
 * are unit-testable against hand-computed fixtures.
 */

#ifndef ISW_RL_RETURNS_HH
#define ISW_RL_RETURNS_HH

#include <span>
#include <vector>

namespace isw::rl {

/**
 * Discounted n-step returns with bootstrapping.
 *
 * R_t = r_t + gamma * R_{t+1}, restarting at episode boundaries;
 * the recursion seeds from @p bootstrap_value (V of the state after
 * the last step) unless the final step terminated.
 *
 * @param rewards Per-step rewards, oldest first.
 * @param dones Per-step episode-termination flags.
 * @param bootstrap_value V(s_T) of the state after the last step.
 * @param gamma Discount factor.
 */
std::vector<float> nStepReturns(std::span<const float> rewards,
                                const std::vector<bool> &dones,
                                float bootstrap_value, float gamma);

/** GAE output: advantages plus the matching value targets. */
struct GaeResult
{
    std::vector<float> advantages;
    std::vector<float> returns; ///< advantages + values
};

/**
 * Generalized Advantage Estimation (Schulman et al., 2016).
 *
 * delta_t = r_t + gamma * V_{t+1} * (1 - done_t) - V_t
 * A_t     = delta_t + gamma * lambda * (1 - done_t) * A_{t+1}
 *
 * @param values V(s_t) for each step.
 * @param bootstrap_value V(s_T) after the last step.
 */
GaeResult gaeAdvantages(std::span<const float> rewards,
                        std::span<const float> values,
                        const std::vector<bool> &dones,
                        float bootstrap_value, float gamma, float lambda);

/**
 * Normalize @p v to zero mean / unit standard deviation in place
 * (population std + epsilon), the standard PPO advantage treatment.
 */
void normalizeInPlace(std::span<float> v, float eps = 1e-6f);

} // namespace isw::rl

#endif // ISW_RL_RETURNS_HH
