/**
 * @file
 * Deep Q-Network (Mnih et al.) on PongLite: epsilon-greedy
 * exploration, uniform experience replay, target network, Huber TD
 * loss. Exploration decays with the number of *applied updates* so
 * distributed workers stay mutually consistent.
 */

#ifndef ISW_RL_DQN_HH
#define ISW_RL_DQN_HH

#include "rl/agent.hh"
#include "rl/replay_buffer.hh"

namespace isw::rl {

/** DQN agent (discrete actions). */
class DqnAgent final : public AgentBase
{
  public:
    /**
     * @param weight_rng Stream for parameter init (shared per job).
     * @param act_rng Stream for exploration (unique per worker).
     */
    DqnAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
             sim::Rng &weight_rng, sim::Rng act_rng);

    Algo algo() const override { return Algo::kDqn; }
    const ml::Vec &computeGradient() override;

    /** Current exploration rate (decays with applied updates). */
    float epsilon() const;

    /** Greedy action for @p obs (used by evaluation/examples). */
    std::size_t greedyAction(const ml::Vec &obs);

    ml::Vec
    policyAction(const ml::Vec &obs) override
    {
        return {static_cast<float>(greedyAction(obs))};
    }

  protected:
    void postUpdate() override;

  private:
    void syncTarget();

    ml::Network q_;
    ml::Network target_;
    ml::ParamSet target_params_;
    ReplayBuffer replay_;
    std::vector<const Transition *> batch_;
};

} // namespace isw::rl

#endif // ISW_RL_DQN_HH
