#include "rl/returns.hh"

#include <cmath>
#include <stdexcept>

namespace isw::rl {

std::vector<float>
nStepReturns(std::span<const float> rewards, const std::vector<bool> &dones,
             float bootstrap_value, float gamma)
{
    const std::size_t t = rewards.size();
    if (dones.size() != t)
        throw std::invalid_argument("nStepReturns: size mismatch");
    std::vector<float> returns(t);
    if (t == 0)
        return returns;
    float run = dones[t - 1] ? 0.0f : bootstrap_value;
    for (std::size_t i = t; i-- > 0;) {
        if (dones[i])
            run = 0.0f;
        run = rewards[i] + gamma * run;
        returns[i] = run;
    }
    return returns;
}

GaeResult
gaeAdvantages(std::span<const float> rewards, std::span<const float> values,
              const std::vector<bool> &dones, float bootstrap_value,
              float gamma, float lambda)
{
    const std::size_t t = rewards.size();
    if (values.size() != t || dones.size() != t)
        throw std::invalid_argument("gaeAdvantages: size mismatch");
    GaeResult out;
    out.advantages.resize(t);
    out.returns.resize(t);
    float gae = 0.0f;
    for (std::size_t i = t; i-- > 0;) {
        const float mask = dones[i] ? 0.0f : 1.0f;
        const float next_v =
            i + 1 < t ? values[i + 1] : bootstrap_value;
        if (dones[i])
            gae = 0.0f;
        const float delta = rewards[i] + gamma * next_v * mask - values[i];
        gae = delta + gamma * lambda * mask * gae;
        out.advantages[i] = gae;
        out.returns[i] = gae + values[i];
    }
    return out;
}

void
normalizeInPlace(std::span<float> v, float eps)
{
    if (v.empty())
        return;
    double mean = 0.0;
    for (float x : v)
        mean += x;
    mean /= static_cast<double>(v.size());
    double sq = 0.0;
    for (float x : v)
        sq += (x - mean) * (x - mean);
    const float stddev = static_cast<float>(
        std::sqrt(sq / static_cast<double>(v.size())) + eps);
    for (float &x : v)
        x = (x - static_cast<float>(mean)) / stddev;
}

} // namespace isw::rl
