#include "rl/ddpg.hh"

#include <algorithm>
#include <cmath>

namespace isw::rl {

namespace {

/** Horizontally concatenate two matrices with equal row counts. */
ml::Matrix
hconcat(const ml::Matrix &a, const ml::Matrix &b)
{
    ml::Matrix out(a.rows(), a.cols() + b.cols());
    for (std::size_t r = 0; r < a.rows(); ++r) {
        std::copy(a.row(r).begin(), a.row(r).end(),
                  out.data() + r * out.cols());
        std::copy(b.row(r).begin(), b.row(r).end(),
                  out.data() + r * out.cols() + a.cols());
    }
    return out;
}

} // namespace

DdpgAgent::DdpgAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
                     sim::Rng &weight_rng, sim::Rng act_rng)
    : AgentBase(cfg, std::move(env), act_rng),
      replay_(cfg.replay_capacity)
{
    const std::size_t obs = env_->observationDim();
    const std::size_t act = env_->actionDim();
    actor_ = ml::Network::mlp<ml::Tanh>({obs, cfg_.hidden, cfg_.hidden, act},
                                        weight_rng, "actor");
    actor_.add<ml::Tanh>(); // bound actions to [-1, 1]
    critic_ = ml::Network::mlp<ml::Tanh>(
        {obs + act, cfg_.hidden, cfg_.hidden, 1}, weight_rng, "critic");

    sim::Rng dummy(0);
    actor_target_ = ml::Network::mlp<ml::Tanh>(
        {obs, cfg_.hidden, cfg_.hidden, act}, dummy, "actor_t");
    actor_target_.add<ml::Tanh>();
    critic_target_ = ml::Network::mlp<ml::Tanh>(
        {obs + act, cfg_.hidden, cfg_.hidden, 1}, dummy, "critic_t");

    actor_params_.addNetwork(actor_);
    critic_params_.addNetwork(critic_);
    params_.addNetwork(actor_);
    params_.addNetwork(critic_);
    target_params_.addNetwork(actor_target_);
    target_params_.addNetwork(critic_target_);

    // Targets start as exact copies.
    ml::Vec w;
    params_.copyValuesTo(w);
    target_params_.setValues(w);

    opt_ = std::make_unique<ml::Adam>(cfg_.lr);
}

ml::Vec
DdpgAgent::act(const ml::Vec &obs)
{
    ml::Matrix x(1, obs.size());
    std::copy(obs.begin(), obs.end(), x.data());
    const ml::Matrix a = actor_.forward(x);
    return {a.row(0).begin(), a.row(0).end()};
}

ml::Vec
DdpgAgent::actNoisy(const ml::Vec &obs)
{
    ml::Vec a = act(obs);
    for (float &v : a) {
        v += cfg_.noise_std * static_cast<float>(rng_.normal());
        v = std::clamp(v, -1.0f, 1.0f);
    }
    return a;
}

void
DdpgAgent::postUpdate()
{
    // Polyak averaging toward the live networks.
    ml::Vec live;
    params_.copyValuesTo(live);
    ml::Vec tgt;
    target_params_.copyValuesTo(tgt);
    for (std::size_t i = 0; i < live.size(); ++i)
        tgt[i] += cfg_.tau * (live[i] - tgt[i]);
    target_params_.setValues(tgt);
}

const ml::Vec &
DdpgAgent::computeGradient()
{
    // --- Experience collection ---------------------------------------
    for (std::size_t s = 0; s < cfg_.steps_per_iter; ++s) {
        ml::Vec a = actNoisy(cur_obs_);
        StepResult res = env_->step(std::span<const float>(a));
        trackReward(res.reward, res.done);
        replay_.push(
            Transition{cur_obs_, a, res.reward, res.observation, res.done});
        cur_obs_ = res.done ? env_->reset() : std::move(res.observation);
    }

    params_.zeroGrads();
    grad_.assign(params_.count(), 0.0f);
    if (replay_.size() < cfg_.warmup)
        return grad_;

    replay_.sample(cfg_.batch_size, rng_, batch_);
    const std::size_t batch = batch_.size();
    const std::size_t obs_dim = env_->observationDim();
    const std::size_t act_dim = env_->actionDim();
    ml::Matrix s(batch, obs_dim), a(batch, act_dim), s2(batch, obs_dim);
    for (std::size_t i = 0; i < batch; ++i) {
        std::copy(batch_[i]->state.begin(), batch_[i]->state.end(),
                  s.data() + i * obs_dim);
        std::copy(batch_[i]->action.begin(), batch_[i]->action.end(),
                  a.data() + i * act_dim);
        std::copy(batch_[i]->next_state.begin(), batch_[i]->next_state.end(),
                  s2.data() + i * obs_dim);
    }
    const float inv_b = 1.0f / static_cast<float>(batch);

    // --- Actor pass first, so its gradient can be isolated from the
    // critic parameter gradients it incidentally produces. -------------
    const ml::Matrix a_pred = actor_.forward(s);
    critic_.forward(hconcat(s, a_pred));
    ml::Matrix dq_actor(batch, 1);
    for (std::size_t i = 0; i < batch; ++i)
        dq_actor.at(i, 0) = -inv_b; // maximize Q(s, actor(s))
    const ml::Matrix dsa = critic_.backward(dq_actor);
    ml::Matrix da(batch, act_dim);
    for (std::size_t i = 0; i < batch; ++i) {
        for (std::size_t j = 0; j < act_dim; ++j)
            da.at(i, j) = dsa.at(i, obs_dim + j);
    }
    actor_.backward(da);
    ml::Vec actor_grad;
    actor_params_.copyGradsTo(actor_grad);

    // --- Critic TD pass (fresh gradients). ------------------------------
    params_.zeroGrads();
    const ml::Matrix a2 = actor_target_.forward(s2);
    const ml::Matrix q2 = critic_target_.forward(hconcat(s2, a2));
    const ml::Matrix q_pred = critic_.forward(hconcat(s, a));
    ml::Matrix dq(batch, 1);
    for (std::size_t i = 0; i < batch; ++i) {
        const float y =
            batch_[i]->reward +
            (batch_[i]->done ? 0.0f : cfg_.gamma * q2.at(i, 0));
        dq.at(i, 0) = 2.0f * (q_pred.at(i, 0) - y) * inv_b;
    }
    critic_.backward(dq);
    actor_params_.accumulateGrads(actor_grad);

    params_.clipGradNorm(cfg_.grad_clip);
    params_.copyGradsTo(grad_);
    return grad_;
}

} // namespace isw::rl
