/**
 * @file
 * Environment interface for the RL substrate.
 *
 * Environments are deterministic given their RNG stream, run entirely
 * in-process, and expose either a discrete action set or a continuous
 * action vector (see DESIGN.md §2 for how these substitute for the
 * paper's Atari / MuJoCo tasks).
 */

#ifndef ISW_RL_ENV_HH
#define ISW_RL_ENV_HH

#include <memory>
#include <span>
#include <stdexcept>
#include <string>

#include "ml/tensor.hh"
#include "sim/random.hh"

namespace isw::rl {

using ml::Vec;

/** Result of one environment step. */
struct StepResult
{
    Vec observation;
    float reward = 0.0f;
    bool done = false;
};

/** Abstract RL environment. */
class Environment
{
  public:
    virtual ~Environment() = default;

    virtual const char *name() const = 0;
    virtual std::size_t observationDim() const = 0;

    /** Number of discrete actions, or the continuous action width. */
    virtual std::size_t actionDim() const = 0;
    virtual bool continuousActions() const = 0;

    /** Reset to an initial state and return the first observation. */
    virtual Vec reset() = 0;

    /** Step with a discrete action index. */
    virtual StepResult
    step(std::size_t action)
    {
        (void)action;
        throw std::logic_error(std::string(name()) +
                               ": discrete step unsupported");
    }

    /** Step with a continuous action vector (values in [-1, 1]). */
    virtual StepResult
    step(std::span<const float> action)
    {
        (void)action;
        throw std::logic_error(std::string(name()) +
                               ": continuous step unsupported");
    }
};

} // namespace isw::rl

#endif // ISW_RL_ENV_HH
