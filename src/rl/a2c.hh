/**
 * @file
 * Advantage Actor-Critic (synchronous A2C, Mnih et al.) on QbertLite:
 * a shared trunk with softmax policy and value heads, n-step
 * bootstrapped returns, and an entropy bonus.
 */

#ifndef ISW_RL_A2C_HH
#define ISW_RL_A2C_HH

#include "rl/agent.hh"

namespace isw::rl {

/** A2C agent (discrete actions). */
class A2cAgent final : public AgentBase
{
  public:
    A2cAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
             sim::Rng &weight_rng, sim::Rng act_rng);

    Algo algo() const override { return Algo::kA2c; }
    const ml::Vec &computeGradient() override;

    /** Sample an action from the current policy (examples hook). */
    std::size_t sampleAction(const ml::Vec &obs);

    ml::Vec policyAction(const ml::Vec &obs) override;

  private:
    /** Forward one observation; returns (probs, value). */
    std::pair<ml::Vec, float> evaluate(const ml::Vec &obs);

    ml::Network trunk_;
    ml::Linear *policy_head_;
    ml::Linear *value_head_;
    ml::Network policy_net_; ///< owns policy_head_
    ml::Network value_net_;  ///< owns value_head_
};

} // namespace isw::rl

#endif // ISW_RL_A2C_HH
