/**
 * @file
 * Proximal Policy Optimization (clipped surrogate, Schulman et al.)
 * on Hopper1D: diagonal-Gaussian policy with a trainable
 * state-independent log-std, GAE advantages, and a separate value
 * network.
 *
 * In the paper's distributed paradigm each training iteration
 * contributes exactly one gradient, so the local pass is a single
 * epoch over a freshly collected rollout; the clipping machinery is
 * implemented in full and becomes active whenever weights moved
 * between collection and gradient computation.
 */

#ifndef ISW_RL_PPO_HH
#define ISW_RL_PPO_HH

#include "rl/agent.hh"

namespace isw::rl {

/** PPO agent (continuous actions). */
class PpoAgent final : public AgentBase
{
  public:
    PpoAgent(const AgentConfig &cfg, std::unique_ptr<Environment> env,
             sim::Rng &weight_rng, sim::Rng act_rng);

    Algo algo() const override { return Algo::kPpo; }
    const ml::Vec &computeGradient() override;

    /** Mean (deterministic) action for @p obs. */
    ml::Vec meanAction(const ml::Vec &obs);

    ml::Vec
    policyAction(const ml::Vec &obs) override
    {
        return meanAction(obs);
    }

  private:
    ml::Network policy_; ///< obs -> action mean
    ml::Network value_;  ///< obs -> V(s)
    ml::ParamVector *log_std_;
    ml::Network log_std_net_; ///< owns log_std_ (parameter only)
};

} // namespace isw::rl

#endif // ISW_RL_PPO_HH
