#include "rl/evaluate.hh"

#include <algorithm>
#include <limits>

#include "rl/envs/cheetah.hh"
#include "rl/envs/hopper.hh"
#include "rl/envs/pong.hh"
#include "rl/envs/qbert.hh"

namespace isw::rl {

std::unique_ptr<Environment>
makeEnvironment(Algo algo, std::uint64_t seed)
{
    sim::Rng rng(seed);
    switch (algo) {
      case Algo::kDqn: return std::make_unique<PongLite>(rng);
      case Algo::kA2c: return std::make_unique<QbertLite>(rng);
      case Algo::kPpo: return std::make_unique<Hopper1D>(rng);
      case Algo::kDdpg: return std::make_unique<CheetahLite>(rng);
    }
    throw std::logic_error("makeEnvironment: unknown algorithm");
}

EvalResult
evaluatePolicy(Agent &agent, Environment &env, std::size_t episodes,
               std::size_t max_steps)
{
    EvalResult res;
    res.episodes = episodes;
    res.min_reward = std::numeric_limits<double>::infinity();
    res.max_reward = -std::numeric_limits<double>::infinity();
    double total_reward = 0.0;
    double total_steps = 0.0;

    for (std::size_t ep = 0; ep < episodes; ++ep) {
        ml::Vec obs = env.reset();
        double ep_reward = 0.0;
        std::size_t steps = 0;
        for (; steps < max_steps; ++steps) {
            const ml::Vec action = agent.policyAction(obs);
            StepResult sr =
                env.continuousActions()
                    ? env.step(std::span<const float>(action))
                    : env.step(static_cast<std::size_t>(action.at(0)));
            ep_reward += sr.reward;
            obs = std::move(sr.observation);
            if (sr.done)
                break;
        }
        total_reward += ep_reward;
        total_steps += static_cast<double>(steps + 1);
        res.min_reward = std::min(res.min_reward, ep_reward);
        res.max_reward = std::max(res.max_reward, ep_reward);
    }
    if (episodes > 0) {
        res.mean_reward = total_reward / static_cast<double>(episodes);
        res.mean_length = total_steps / static_cast<double>(episodes);
    } else {
        res.min_reward = res.max_reward = 0.0;
    }
    return res;
}

} // namespace isw::rl
