#include "net/address.hh"

#include <cstdio>
#include <stdexcept>

namespace isw::net {

std::string
MacAddr::str() const
{
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  unsigned((bits_ >> 40) & 0xFF), unsigned((bits_ >> 32) & 0xFF),
                  unsigned((bits_ >> 24) & 0xFF), unsigned((bits_ >> 16) & 0xFF),
                  unsigned((bits_ >> 8) & 0xFF), unsigned(bits_ & 0xFF));
    return buf;
}

std::string
Ipv4Addr::str() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xFF,
                  (bits_ >> 16) & 0xFF, (bits_ >> 8) & 0xFF, bits_ & 0xFF);
    return buf;
}

Ipv4Addr
parseIpv4(const std::string &text)
{
    unsigned a, b, c, d;
    char extra;
    if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) !=
            4 ||
        a > 255 || b > 255 || c > 255 || d > 255) {
        throw std::invalid_argument("parseIpv4: bad address '" + text + "'");
    }
    return Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                    static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

} // namespace isw::net
