/**
 * @file
 * Structured packet model with byte-accurate wire sizes.
 *
 * Packets carry decoded headers plus one of three payload kinds:
 *  - ControlPayload: an iSwitch control message (Action + Value),
 *  - ChunkPayload:   one segment of a bulk float vector (gradients,
 *                    weights, AllReduce chunks, aggregated results),
 *  - RawPayload:     an opaque byte count (background traffic).
 *
 * Keeping payloads decoded makes simulation fast; `core/protocol`
 * provides real byte codecs that round-trip these structures so the
 * wire format of Figure 5 is implemented and tested, not implied.
 */

#ifndef ISW_NET_PACKET_HH
#define ISW_NET_PACKET_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "net/address.hh"

namespace isw::net {

/** Ethernet MTU used throughout (bytes of L3 payload per frame). */
constexpr std::size_t kMtuBytes = 1500;
/** Ethernet header bytes counted on the wire. */
constexpr std::size_t kEthHeaderBytes = 14;
/** Physical-layer overhead per frame: preamble 8 + FCS 4 + IFG 12. */
constexpr std::size_t kEthPhyOverheadBytes = 24;
/** IPv4 header bytes (no options). */
constexpr std::size_t kIpv4HeaderBytes = 20;
/** UDP header bytes. */
constexpr std::size_t kUdpHeaderBytes = 8;

/** Ethernet header fields the simulator models. */
struct EthernetHeader
{
    MacAddr src;
    MacAddr dst;
    std::uint16_t ether_type = 0x0800; // IPv4
};

/** IPv4 header fields the simulator models. */
struct Ipv4Header
{
    Ipv4Addr src;
    Ipv4Addr dst;
    std::uint8_t tos = 0;
    std::uint8_t protocol = 17; // UDP
    std::uint8_t ttl = 64;
};

/** UDP header fields the simulator models. */
struct UdpHeader
{
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
};

/**
 * Reserved ToS values tagging iSwitch-plane traffic (Figure 5).
 * The paper reserves distinct ToS values for control and data; we add
 * a third for aggregated-result packets so hierarchical switches can
 * tell contributions (aggregate me) from results (forward me down).
 */
constexpr std::uint8_t kTosControl = 0xC0;
constexpr std::uint8_t kTosData = 0xC4;
constexpr std::uint8_t kTosResult = 0xC8;
/** HA replication frames (primary -> backup switch, DESIGN.md §16). */
constexpr std::uint8_t kTosRepl = 0xCC;

/** iSwitch control actions (paper Table 2, plus the slot-pool Nack
 *  extension: the switch rejects a contribution whose aggregator slot
 *  is still busy with an older segment — DESIGN.md §11). */
enum class Action : std::uint8_t {
    kJoin = 1,
    kLeave,
    kReset,
    kSetH,
    kFBcast,
    kHelp,
    kHalt,
    kAck,
    kNack,
    kHeartbeat, ///< primary -> backup liveness beat (HA, DESIGN.md §16)
    kFailover,  ///< backup -> members: re-home to me, the primary died
};

/** Printable name of a control action. */
const char *actionName(Action a);

/**
 * Wire encoding of a chunk's float words (DESIGN.md §14). Tag values
 * ride bits [63:62] of the Seg word (core::packSegWord), so kFp32
 * packets stay bit-identical to the legacy format.
 */
enum class Precision : std::uint8_t {
    kFp32 = 0, ///< raw float32 words (lossless legacy wire)
    kFp16 = 1, ///< two packed IEEE binary16 halves per word
    kInt32 = 2, ///< block-shared-exponent fixed point (ml/quantize)
};

/** Printable name of a wire precision ("fp32"/"fp16"/"int32"). */
const char *precisionName(Precision p);

/** Control message: 1-byte action plus optional 8-byte value. */
struct ControlPayload
{
    Action action = Action::kAck;
    std::uint64_t value = 0;
    bool has_value = false;
};

/**
 * One segment of a bulk float vector.
 *
 * `wire_floats` is the number of float32 slots this packet occupies on
 * the wire; `values` holds the logical floats actually carried (may be
 * fewer than wire_floats when the transport pads tiny models up to a
 * paper-scale wire size — see DESIGN.md §2).
 */
struct ChunkPayload
{
    std::uint64_t transfer_id = 0; ///< vector/round id (0 on iSwitch plane)
    std::uint64_t seg = 0;         ///< spatial offset index (Figure 5b)
    std::uint32_t wire_floats = 0; ///< float slots charged on the wire
    /**
     * Multi-job extension (DESIGN.md §11): job id and slot-reuse
     * version bit. Both ride the upper bits of the 8-byte Seg word on
     * the wire (core::packSegWord), so the packet layout and byte
     * count are unchanged and a (job=0, ver=0) packet is bit-identical
     * to the pre-extension format.
     */
    std::uint8_t job = 0; ///< owning training job (0 = sole job)
    std::uint8_t ver = 0; ///< slot-reuse cycle parity (0 when unused)
    /**
     * Quantized-wire extension (DESIGN.md §14): how `values` encodes
     * its words and, for kInt32, the block's shared exponent. Both
     * ride the upper bits of the Seg word (core::packSegWord), so a
     * kFp32 packet is bit-identical to the pre-extension format.
     */
    Precision prec = Precision::kFp32;
    std::int8_t qexp = 0; ///< shared exponent (kInt32 only, else 0)
    std::vector<float> values;     ///< wire words (size <= wire_floats)

    /** Bytes of UDP payload this chunk occupies. */
    std::size_t wireBytes(bool iswitch_plane) const
    {
        // iSwitch data packets carry an 8-byte Seg header; host-to-host
        // bulk chunks also carry the 8-byte transfer id.
        const std::size_t header = iswitch_plane ? 8 : 16;
        return header + std::size_t{wire_floats} * 4;
    }
};

/** Opaque payload for cross traffic; only its size matters. */
struct RawPayload
{
    std::uint32_t bytes = 0;
    std::uint64_t tag = 0;
};

using Payload = std::variant<std::monostate, ControlPayload, ChunkPayload,
                             RawPayload>;

/**
 * A simulated network packet. Immutable after construction by
 * convention: broadcast fans out shared_ptr copies.
 */
struct Packet
{
    EthernetHeader eth;
    Ipv4Header ip;
    UdpHeader udp;
    Payload payload;

    /** True if the ToS field marks this packet as iSwitch-plane. */
    bool isIswitchPlane() const;

    /** Bytes of UDP payload. */
    std::size_t payloadBytes() const;

    /** Total frame bytes on the wire (headers + payload + PHY). */
    std::size_t wireBytes() const;

    /** Short human-readable description for logs. */
    std::string describe() const;
};

using PacketPtr = std::shared_ptr<const Packet>;

/** Build a shared immutable packet. */
PacketPtr makePacket(Packet pkt);

/** Maximum float32 slots per chunk on the iSwitch data plane. */
constexpr std::size_t
maxChunkFloats(bool iswitch_plane)
{
    const std::size_t header = iswitch_plane ? 8 : 16;
    return (kMtuBytes - kIpv4HeaderBytes - kUdpHeaderBytes - header) / 4;
}

static_assert(maxChunkFloats(true) == 366,
              "iSwitch data packets carry 366 float32 values at 1500 MTU");

} // namespace isw::net

#endif // ISW_NET_PACKET_HH
