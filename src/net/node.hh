/**
 * @file
 * Base class for simulated network devices (hosts and switches).
 *
 * A Node owns a set of numbered ports; each port may be attached to
 * one end of a Link. Delivery is push-based: the Link calls
 * Node::deliver() when the last bit of a frame arrives.
 */

#ifndef ISW_NET_NODE_HH
#define ISW_NET_NODE_HH

#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/simulation.hh"

namespace isw::net {

class Link;

/** A network device with numbered ports. */
class Node
{
  public:
    Node(sim::Simulation &s, std::string name, std::size_t num_ports);
    virtual ~Node() = default;

    Node(const Node &) = delete;
    Node &operator=(const Node &) = delete;

    const std::string &name() const { return name_; }
    std::size_t numPorts() const { return ports_.size(); }
    sim::Simulation &simulation() { return sim_; }

    /**
     * Shard domain this device executes in (sim/shard.hh). Assigned by
     * the cluster builder before the run starts; 0 (the default) is
     * the core/control domain. Ignored on un-sharded simulations.
     */
    sim::DomainId domain() const { return domain_; }
    void setDomain(sim::DomainId d) { domain_ = d; }

    /** Attach @p link to @p port (called by Link::connect). */
    void attachLink(std::size_t port, Link *link);

    /** Link on @p port, or nullptr if unattached. */
    Link *link(std::size_t port) const { return ports_.at(port); }

    /** Frame fully received on @p in_port. */
    virtual void deliver(PacketPtr pkt, std::size_t in_port) = 0;

    /** Transmit @p pkt out of @p port. Throws if the port is bare. */
    void sendOut(std::size_t port, PacketPtr pkt);

  protected:
    sim::Simulation &sim_;

  private:
    std::string name_;
    std::vector<Link *> ports_;
    sim::DomainId domain_ = 0;
};

} // namespace isw::net

#endif // ISW_NET_NODE_HH
