#include "net/link.hh"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "net/node.hh"

namespace isw::net {

Link::Link(sim::Simulation &s, std::string name, LinkConfig cfg)
    : sim_(s), name_(std::move(name)), cfg_(cfg), loss_rng_(s.forkRng())
{
    if (cfg_.bandwidth_bps <= 0.0)
        throw std::invalid_argument("Link: bandwidth must be positive");
}

void
Link::connect(Node *a, std::size_t a_port, Node *b, std::size_t b_port)
{
    if (ends_[0].node || ends_[1].node)
        throw std::logic_error("Link already connected: " + name_);
    ends_[0] = End{a, a_port, 0};
    ends_[1] = End{b, b_port, 0};
    a->attachLink(a_port, this);
    b->attachLink(b_port, this);
}

sim::TimeNs
Link::txTime(std::size_t bytes) const
{
    const double ns =
        static_cast<double>(bytes) * 8.0 * 1e9 / cfg_.bandwidth_bps;
    return static_cast<sim::TimeNs>(std::llround(ns));
}

int
Link::endIndexOf(const Node *n) const
{
    if (ends_[0].node == n)
        return 0;
    if (ends_[1].node == n)
        return 1;
    throw std::logic_error("Link::transmit from non-endpoint node");
}

Node *
Link::peerOf(const Node *n) const
{
    return ends_[1 - endIndexOf(n)].node;
}

void
Link::transmit(Node *from, PacketPtr pkt)
{
    assert(pkt);
    const int src = endIndexOf(from);
    End &tx = ends_[src];
    End &rx = ends_[1 - src];

    const sim::TimeNs now = sim_.now();
    const sim::TimeNs start = std::max(now, tx.busy_until);
    const sim::TimeNs done = start + txTime(pkt->wireBytes());
    tx.busy_until = done;
    bytes_.fetch_add(pkt->wireBytes(), std::memory_order_relaxed);
    if (tap_)
        tap_(LinkEvent::kTx, pkt);

    if (cfg_.loss_prob > 0.0 && loss_rng_.bernoulli(cfg_.loss_prob)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        if (tap_)
            tap_(LinkEvent::kDrop, pkt);
        return; // the pipe time is still consumed: the frame was sent
    }

    sim::TimeNs extra = 0;
    if (channel_ != nullptr) {
        const ChannelVerdict v = channel_->onFrame(*this, pkt);
        if (v.drop) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            if (tap_)
                tap_(LinkEvent::kDrop, pkt);
            return;
        }
        extra = v.delay;
        if (v.duplicate)
            deliverAt(done + cfg_.propagation + v.dup_delay, rx, pkt);
    }

    deliverAt(done + cfg_.propagation + extra, rx, pkt);
}

void
Link::deliverAt(sim::TimeNs when, const End &rx, const PacketPtr &pkt)
{
    Node *dst_node = rx.node;
    const std::size_t dst_port = rx.port;
    // The delivery event belongs to the *receiver's* shard domain:
    // this is the single point where causality crosses a domain
    // boundary, and the propagation delay baked into `when` is what
    // funds the engine's lookahead. atInDomain degenerates to a plain
    // schedule on un-sharded simulations.
    sim_.atInDomain(dst_node->domain(), when,
                    [this, dst_node, dst_port, pkt] {
                        delivered_.fetch_add(1, std::memory_order_relaxed);
                        if (tap_)
                            tap_(LinkEvent::kDeliver, pkt);
                        dst_node->deliver(pkt, dst_port);
                    });
}

} // namespace isw::net
