#include "net/topology.hh"

#include <stdexcept>

namespace isw::net {

Host *
Topology::addHost(const std::string &name, Ipv4Addr ip,
                  std::size_t num_ports)
{
    auto host = std::make_unique<Host>(sim_, name, MacAddr(next_mac_++), ip,
                                       num_ports);
    Host *raw = host.get();
    nodes_.push_back(std::move(host));
    return raw;
}

Link *
Topology::makeLink(const std::string &name, LinkConfig cfg)
{
    auto link = std::make_unique<Link>(sim_, name, cfg);
    Link *raw = link.get();
    links_.push_back(std::move(link));
    return raw;
}

Link *
Topology::connectHost(Host *host, EthSwitch *sw, std::size_t sw_port,
                      LinkConfig cfg)
{
    Link *l = makeLink(host->name() + "<->" + sw->name(), cfg);
    l->connect(host, 0, sw, sw_port);
    sw->addRoute(host->ip(), sw_port);
    // Propagate the new host up the existing ancestor chain, using
    // the parent-side ports recorded when the uplinks were wired.
    EthSwitch *cur = sw;
    subtree_hosts_[cur].push_back(host);
    auto it = parent_of_.find(cur);
    while (it != parent_of_.end()) {
        EthSwitch *parent = it->second.parent;
        parent->addRoute(host->ip(), it->second.parent_port);
        subtree_hosts_[parent].push_back(host);
        cur = parent;
        it = parent_of_.find(cur);
    }
    return l;
}

Link *
Topology::connectSwitches(EthSwitch *child, std::size_t child_port,
                          EthSwitch *parent, std::size_t parent_port,
                          LinkConfig cfg)
{
    if (parent_of_.count(child))
        throw std::logic_error(child->name() + " already has an uplink");
    Link *l = makeLink(child->name() + "<->" + parent->name(), cfg);
    l->connect(child, child_port, parent, parent_port);
    child->setDefaultPort(child_port);
    parent_of_[child] = Uplink{parent, parent_port};

    // Install routes for the child's whole subtree on every ancestor.
    const auto &hosts = subtree_hosts_[child];
    EthSwitch *cur = parent;
    std::size_t via_port = parent_port;
    while (cur != nullptr) {
        auto &list = subtree_hosts_[cur];
        for (Host *h : hosts) {
            cur->addRoute(h->ip(), via_port);
            list.push_back(h);
        }
        auto it = parent_of_.find(cur);
        if (it == parent_of_.end())
            break;
        // Grandparents reach these hosts through the parent-side port
        // recorded when `cur` itself was connected.
        via_port = it->second.parent_port;
        cur = it->second.parent;
    }
    return l;
}

Link *
Topology::connectHostPort(Host *host, std::size_t host_port, EthSwitch *sw,
                          std::size_t sw_port, LinkConfig cfg)
{
    Link *l = makeLink(host->name() + "<->" + sw->name(), cfg);
    l->connect(host, host_port, sw, sw_port);
    sw->addRoute(host->ip(), sw_port);
    return l;
}

Link *
Topology::connectPeers(EthSwitch *a, std::size_t a_port, EthSwitch *b,
                       std::size_t b_port, LinkConfig cfg)
{
    Link *l = makeLink(a->name() + "<->" + b->name(), cfg);
    l->connect(a, a_port, b, b_port);
    return l;
}

const std::vector<Host *> &
Topology::subtreeHosts(EthSwitch *sw) const
{
    static const std::vector<Host *> kEmpty;
    auto it = subtree_hosts_.find(sw);
    return it == subtree_hosts_.end() ? kEmpty : it->second;
}

} // namespace isw::net
