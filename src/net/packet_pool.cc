#include "net/packet_pool.hh"

#include <memory>
#include <utility>

namespace isw::net {

namespace {

/**
 * Free-listed allocator for the shared_ptr control block. Only one
 * node type is ever instantiated (the counted-deleter node for
 * <const Packet>), so a per-type thread-local list suffices.
 */
template <class T>
struct CtrlBlockAlloc
{
    using value_type = T;

    CtrlBlockAlloc() = default;
    template <class U>
    CtrlBlockAlloc(const CtrlBlockAlloc<U> &) noexcept
    {
    }

    struct FreeList
    {
        std::vector<void *> blocks;
        ~FreeList()
        {
            for (void *p : blocks)
                ::operator delete(p);
        }
    };

    static FreeList &
    freeList()
    {
        thread_local FreeList fl;
        return fl;
    }

    T *
    allocate(std::size_t n)
    {
        auto &fl = freeList().blocks;
        if (n == 1 && !fl.empty()) {
            void *p = fl.back();
            fl.pop_back();
            return static_cast<T *>(p);
        }
        return static_cast<T *>(::operator new(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t n)
    {
        auto &fl = freeList().blocks;
        if (n == 1 && fl.size() < 4096) {
            fl.push_back(p);
            return;
        }
        ::operator delete(p);
    }

    template <class U>
    bool
    operator==(const CtrlBlockAlloc<U> &) const noexcept
    {
        return true;
    }
};

} // namespace

struct PacketRecycler
{
    void
    operator()(const Packet *p) const noexcept
    {
        PacketPool::local().recycle(const_cast<Packet *>(p));
    }
};

namespace {

thread_local PacketPool *tls_pool_override = nullptr;

} // namespace

PacketPool &
PacketPool::local()
{
    thread_local PacketPool pool;
    return tls_pool_override != nullptr ? *tls_pool_override : pool;
}

void
PacketPool::setLocalOverride(PacketPool *pool)
{
    tls_pool_override = pool;
}

PacketPool::~PacketPool()
{
    for (Packet *p : slots_)
        delete p;
}

PacketPtr
PacketPool::seal(Packet &&pkt)
{
    Packet *slot;
    if (!slots_.empty()) {
        slot = slots_.back();
        slots_.pop_back();
        *slot = std::move(pkt);
        ++stats_.packet_reuses;
    } else {
        slot = new Packet(std::move(pkt));
        ++stats_.packet_allocs;
    }
    ++stats_.sealed;
    return PacketPtr(static_cast<const Packet *>(slot), PacketRecycler{},
                     CtrlBlockAlloc<const Packet>{});
}

std::vector<float>
PacketPool::acquireFloats(std::size_t hint)
{
    std::vector<float> buf;
    if (!float_bufs_.empty()) {
        buf = std::move(float_bufs_.back());
        float_bufs_.pop_back();
        ++stats_.float_reuses;
    } else {
        ++stats_.float_allocs;
    }
    buf.clear();
    buf.reserve(hint);
    return buf;
}

void
PacketPool::releaseFloats(std::vector<float> &&buf)
{
    if (buf.capacity() == 0 || float_bufs_.size() >= kMaxIdleFloatBufs)
        return; // nothing worth parking / list full: let it free
    float_bufs_.push_back(std::move(buf));
}

void
PacketPool::recycle(Packet *p)
{
    if (auto *chunk = std::get_if<ChunkPayload>(&p->payload))
        releaseFloats(std::move(chunk->values));
    if (slots_.size() >= kMaxIdleSlots) {
        delete p;
        return;
    }
    slots_.push_back(p);
}

void
PacketPool::trim()
{
    for (Packet *p : slots_)
        delete p;
    slots_.clear();
    float_bufs_.clear();
}

} // namespace isw::net
