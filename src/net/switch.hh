/**
 * @file
 * L3 Ethernet switch with static routes (Figure 6's baseline data
 * plane: header parse -> lookup tables -> egress queue).
 *
 * Programmable behaviour is added by overriding interceptIngress():
 * the iSwitch accelerator (src/core) consumes tagged packets before
 * they reach the forwarding pipeline, exactly as the paper's enhanced
 * Input Arbiter feeds tagged packets to the accelerator.
 */

#ifndef ISW_NET_SWITCH_HH
#define ISW_NET_SWITCH_HH

#include <optional>
#include <unordered_map>

#include "net/node.hh"
#include "sim/stats.hh"

namespace isw::net {

/** Static configuration of a switch. */
struct SwitchConfig
{
    /** Header parse + lookup + crossbar latency per forwarded frame. */
    sim::TimeNs forwarding_latency = 800;
};

/** A store-and-forward switch with an exact-match IPv4 route table. */
class EthSwitch : public Node
{
  public:
    EthSwitch(sim::Simulation &s, std::string name, std::size_t num_ports,
              SwitchConfig cfg = {});

    /** Route packets destined to @p ip out of @p port. */
    void addRoute(Ipv4Addr ip, std::size_t port);

    /** Port used when no route matches (typically the uplink). */
    void setDefaultPort(std::size_t port) { default_port_ = port; }

    /** Look up the egress port for @p ip. */
    std::optional<std::size_t> routeFor(Ipv4Addr ip) const;

    void deliver(PacketPtr pkt, std::size_t in_port) final;

    std::uint64_t forwardedFrames() const { return forwarded_; }
    std::uint64_t droppedNoRoute() const { return no_route_; }

  protected:
    /**
     * Hook for programmable extensions. Return true to consume the
     * packet (it will not be forwarded by the regular pipeline).
     */
    virtual bool interceptIngress(const PacketPtr &pkt, std::size_t in_port)
    {
        (void)pkt;
        (void)in_port;
        return false;
    }

    /** Forward a frame through the regular pipeline (with latency). */
    void forward(PacketPtr pkt);

    /** Emit a frame on @p port after the forwarding latency. */
    void emitAfterLatency(std::size_t port, PacketPtr pkt);

  private:
    SwitchConfig cfg_;
    std::unordered_map<Ipv4Addr, std::size_t> routes_;
    std::optional<std::size_t> default_port_;
    std::uint64_t forwarded_ = 0;
    std::uint64_t no_route_ = 0;
    /**
     * Registry counter resolved at construction: the registry's map
     * must not be mutated from domain threads mid-run (sim/shard.hh),
     * and the name concatenation is off the hot path this way too.
     */
    sim::Counter &no_route_counter_;
};

} // namespace isw::net

#endif // ISW_NET_SWITCH_HH
