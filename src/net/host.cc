#include "net/host.hh"

namespace isw::net {

void
Host::sendTo(Ipv4Addr dst_ip, std::uint16_t dst_port, std::uint16_t src_port,
             std::uint8_t tos, Payload payload)
{
    Packet pkt;
    pkt.eth.src = mac_;
    pkt.ip.src = ip_;
    pkt.ip.dst = dst_ip;
    pkt.ip.tos = tos;
    pkt.udp.src_port = src_port;
    pkt.udp.dst_port = dst_port;
    pkt.payload = std::move(payload);
    ++tx_frames_;
    send(makePacket(std::move(pkt)));
}

void
Host::deliver(PacketPtr pkt, std::size_t in_port)
{
    (void)in_port;
    ++rx_frames_;
    if (handler_)
        handler_(std::move(pkt));
}

} // namespace isw::net
