#include "net/trace.hh"

#include <iomanip>
#include <ostream>

namespace isw::net {

const char *
linkEventName(LinkEvent ev)
{
    switch (ev) {
      case LinkEvent::kTx: return "TX  ";
      case LinkEvent::kDeliver: return "RX  ";
      case LinkEvent::kDrop: return "DROP";
    }
    return "?";
}

void
PacketTrace::attach(Link &link)
{
    const std::string name = link.name();
    link.setTap([this, name](LinkEvent ev, const PacketPtr &pkt) {
        record(name, ev, pkt);
    });
}

void
PacketTrace::attachAll(Topology &topo)
{
    for (const auto &link : topo.links())
        attach(*link);
}

void
PacketTrace::record(const std::string &link, LinkEvent ev,
                    const PacketPtr &pkt)
{
    if (iswitch_only_ && !pkt->isIswitchPlane())
        return;
    ++captured_;
    ++counts_[static_cast<std::size_t>(ev)];
    records_.push_back(TraceRecord{sim_.now(), ev, link, pkt});
    if (records_.size() > capacity_)
        records_.pop_front();
}

void
PacketTrace::dump(std::ostream &os) const
{
    for (const auto &r : records_) {
        os << "[" << std::setw(12) << r.t << "ns] "
           << linkEventName(r.event) << " " << r.link << " "
           << r.pkt->describe() << "\n";
    }
}

void
PacketTrace::clear()
{
    records_.clear();
    counts_ = {};
    captured_ = 0;
}

} // namespace isw::net
