/**
 * @file
 * MAC and IPv4 address value types.
 */

#ifndef ISW_NET_ADDRESS_HH
#define ISW_NET_ADDRESS_HH

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace isw::net {

/** 48-bit Ethernet MAC address stored in the low bits of a uint64. */
class MacAddr
{
  public:
    constexpr MacAddr() = default;
    constexpr explicit MacAddr(std::uint64_t bits) : bits_(bits & kMask) {}

    constexpr std::uint64_t bits() const { return bits_; }
    std::string str() const;

    auto operator<=>(const MacAddr &) const = default;

  private:
    static constexpr std::uint64_t kMask = 0xFFFFFFFFFFFFULL;
    std::uint64_t bits_ = 0;
};

/** IPv4 address in host byte order. */
class Ipv4Addr
{
  public:
    constexpr Ipv4Addr() = default;
    constexpr explicit Ipv4Addr(std::uint32_t bits) : bits_(bits) {}
    constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                       std::uint8_t d)
        : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                (std::uint32_t{c} << 8) | std::uint32_t{d})
    {}

    constexpr std::uint32_t bits() const { return bits_; }
    constexpr bool isUnspecified() const { return bits_ == 0; }
    std::string str() const;

    auto operator<=>(const Ipv4Addr &) const = default;

  private:
    std::uint32_t bits_ = 0;
};

/** Parse dotted-quad notation; throws std::invalid_argument on error. */
Ipv4Addr parseIpv4(const std::string &text);

} // namespace isw::net

template <>
struct std::hash<isw::net::Ipv4Addr>
{
    std::size_t
    operator()(const isw::net::Ipv4Addr &a) const noexcept
    {
        return std::hash<std::uint32_t>{}(a.bits());
    }
};

template <>
struct std::hash<isw::net::MacAddr>
{
    std::size_t
    operator()(const isw::net::MacAddr &a) const noexcept
    {
        return std::hash<std::uint64_t>{}(a.bits());
    }
};

#endif // ISW_NET_ADDRESS_HH
