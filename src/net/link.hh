/**
 * @file
 * Full-duplex point-to-point link with serialization, propagation,
 * FIFO egress queueing, and optional random loss.
 */

#ifndef ISW_NET_LINK_HH
#define ISW_NET_LINK_HH

#include <array>
#include <atomic>
#include <functional>
#include <string>

#include "net/packet.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace isw::net {

class Node;

/** Observable events on a link (see PacketTrace in net/trace.hh). */
enum class LinkEvent { kTx, kDeliver, kDrop };

class Link;

/** What a ChannelModel decided about one frame. */
struct ChannelVerdict
{
    bool drop = false;       ///< lose the frame (pipe time still spent)
    bool duplicate = false;  ///< deliver a second copy
    sim::TimeNs delay = 0;   ///< extra delivery delay (reordering)
    sim::TimeNs dup_delay = 0; ///< extra delay of the duplicate copy
};

/**
 * Pluggable per-frame channel impairment model (fault injection).
 * Consulted after the link's own iid loss draw; the default (no model
 * installed) leaves the data path bit-for-bit unchanged.
 */
class ChannelModel
{
  public:
    virtual ~ChannelModel() = default;

    /** Decide the fate of @p pkt crossing @p link right now. */
    virtual ChannelVerdict onFrame(const Link &link, const PacketPtr &pkt) = 0;
};

/** Static configuration of a link. */
struct LinkConfig
{
    /** Raw bit rate, bits per second (default 10 GbE). */
    double bandwidth_bps = 10e9;
    /** One-way propagation delay. */
    sim::TimeNs propagation = 200;
    /** Per-frame independent drop probability (0 = lossless). */
    double loss_prob = 0.0;
};

/**
 * A full-duplex link between two (node, port) endpoints.
 *
 * Each direction models an egress serialization pipe: a frame begins
 * transmitting when the previous frame's last bit left, occupies the
 * pipe for wireBytes*8/bandwidth, then arrives propagation later
 * (store-and-forward at the receiver).
 */
class Link
{
  public:
    Link(sim::Simulation &s, std::string name, LinkConfig cfg);

    /** Wire both endpoints; must be called exactly once. */
    void connect(Node *a, std::size_t a_port, Node *b, std::size_t b_port);

    /** Transmit @p pkt from endpoint node @p from toward its peer. */
    void transmit(Node *from, PacketPtr pkt);

    /** Serialization time of @p bytes at this link's bandwidth. */
    sim::TimeNs txTime(std::size_t bytes) const;

    /**
     * Install an observer invoked on every transmit, delivery, and
     * drop (at the simulated instant of each). Pass an empty function
     * to detach. Zero cost when unset beyond one branch per frame.
     */
    void setTap(std::function<void(LinkEvent, const PacketPtr &)> tap)
    {
        tap_ = std::move(tap);
    }

    /**
     * Install a channel impairment model (non-owning; pass nullptr to
     * detach). Zero cost when unset beyond one branch per frame.
     */
    void setChannel(ChannelModel *model) { channel_ = model; }
    ChannelModel *channel() const { return channel_; }

    const std::string &name() const { return name_; }
    const LinkConfig &config() const { return cfg_; }
    Node *peerOf(const Node *n) const;

    /** Total frames dropped by loss injection (both directions). */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }
    /** Total frames delivered (both directions). */
    std::uint64_t delivered() const
    {
        return delivered_.load(std::memory_order_relaxed);
    }
    /** Total payload+header bytes carried (both directions). */
    std::uint64_t bytesCarried() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

  private:
    struct End
    {
        Node *node = nullptr;
        std::size_t port = 0;
        sim::TimeNs busy_until = 0; ///< egress pipe free time
    };

    int endIndexOf(const Node *n) const;
    void deliverAt(sim::TimeNs when, const End &rx, const PacketPtr &pkt);

    sim::Simulation &sim_;
    std::string name_;
    LinkConfig cfg_;
    std::array<End, 2> ends_;
    sim::Rng loss_rng_;
    ChannelModel *channel_ = nullptr;
    std::function<void(LinkEvent, const PacketPtr &)> tap_;
    // On a sharded simulation a boundary link's two directions run on
    // different domain threads; the shared counters stay exact under
    // relaxed atomics (pure tallies, no ordering needed).
    std::atomic<std::uint64_t> dropped_{0};
    std::atomic<std::uint64_t> delivered_{0};
    std::atomic<std::uint64_t> bytes_{0};
};

} // namespace isw::net

#endif // ISW_NET_LINK_HH
