/**
 * @file
 * PacketTrace: a bounded, filterable capture of link activity —
 * tcpdump for the simulated fabric. Attach it to individual links or
 * a whole topology, optionally restrict to iSwitch-plane traffic, and
 * dump human-readable lines for debugging protocol behaviour.
 */

#ifndef ISW_NET_TRACE_HH
#define ISW_NET_TRACE_HH

#include <deque>
#include <iosfwd>

#include "net/link.hh"
#include "net/topology.hh"

namespace isw::net {

/** Printable name of a link event. */
const char *linkEventName(LinkEvent ev);

/** One captured frame event. */
struct TraceRecord
{
    sim::TimeNs t = 0;
    LinkEvent event = LinkEvent::kTx;
    std::string link;
    PacketPtr pkt;
};

/** Ring-buffered packet capture. */
class PacketTrace
{
  public:
    /** @param capacity Oldest records are evicted past this bound. */
    explicit PacketTrace(sim::Simulation &s, std::size_t capacity = 4096)
        : sim_(s), capacity_(capacity)
    {}

    /**
     * Capture only iSwitch-plane packets (control/data/result ToS).
     * Default: capture everything.
     */
    void setIswitchOnly(bool on) { iswitch_only_ = on; }

    /** Start capturing @p link (replaces any existing tap on it). */
    void attach(Link &link);

    /** Attach to every link @p topo owns. */
    void attachAll(Topology &topo);

    const std::deque<TraceRecord> &records() const { return records_; }

    /** Captured (post-filter) event count, including evicted ones. */
    std::uint64_t captured() const { return captured_; }

    /** Events seen per kind (post-filter). */
    std::uint64_t count(LinkEvent ev) const
    {
        return counts_[static_cast<std::size_t>(ev)];
    }

    /** Write one line per retained record to @p os. */
    void dump(std::ostream &os) const;

    void clear();

  private:
    void record(const std::string &link, LinkEvent ev, const PacketPtr &pkt);

    sim::Simulation &sim_;
    std::size_t capacity_;
    bool iswitch_only_ = false;
    std::deque<TraceRecord> records_;
    std::array<std::uint64_t, 3> counts_{};
    std::uint64_t captured_ = 0;
};

} // namespace isw::net

#endif // ISW_NET_TRACE_HH
