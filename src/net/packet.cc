#include "net/packet.hh"

#include <sstream>

#include "net/packet_pool.hh"

namespace isw::net {

const char *
actionName(Action a)
{
    switch (a) {
      case Action::kJoin: return "Join";
      case Action::kLeave: return "Leave";
      case Action::kReset: return "Reset";
      case Action::kSetH: return "SetH";
      case Action::kFBcast: return "FBcast";
      case Action::kHelp: return "Help";
      case Action::kHalt: return "Halt";
      case Action::kAck: return "Ack";
      case Action::kNack: return "Nack";
      case Action::kHeartbeat: return "Heartbeat";
      case Action::kFailover: return "Failover";
    }
    return "?";
}

const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::kFp32: return "fp32";
      case Precision::kFp16: return "fp16";
      case Precision::kInt32: return "int32";
    }
    return "?";
}

bool
Packet::isIswitchPlane() const
{
    return ip.tos == kTosControl || ip.tos == kTosData ||
           ip.tos == kTosResult || ip.tos == kTosRepl;
}

std::size_t
Packet::payloadBytes() const
{
    struct Visitor
    {
        bool iswitch_plane;

        std::size_t operator()(std::monostate) const { return 0; }
        std::size_t
        operator()(const ControlPayload &c) const
        {
            return 1 + (c.has_value ? 8 : 0);
        }
        std::size_t
        operator()(const ChunkPayload &c) const
        {
            return c.wireBytes(iswitch_plane);
        }
        std::size_t
        operator()(const RawPayload &r) const
        {
            return r.bytes;
        }
    };
    return std::visit(Visitor{isIswitchPlane()}, payload);
}

std::size_t
Packet::wireBytes() const
{
    return kEthHeaderBytes + kEthPhyOverheadBytes + kIpv4HeaderBytes +
           kUdpHeaderBytes + payloadBytes();
}

std::string
Packet::describe() const
{
    std::ostringstream os;
    os << ip.src.str() << ":" << udp.src_port << "->" << ip.dst.str() << ":"
       << udp.dst_port;
    if (const auto *c = std::get_if<ControlPayload>(&payload)) {
        os << " ctrl " << actionName(c->action);
        if (c->has_value)
            os << "(" << c->value << ")";
    } else if (const auto *d = std::get_if<ChunkPayload>(&payload)) {
        os << " chunk xfer=" << d->transfer_id << " seg=" << d->seg
           << " floats=" << d->wire_floats;
    } else if (const auto *r = std::get_if<RawPayload>(&payload)) {
        os << " raw " << r->bytes << "B tag=" << r->tag;
    }
    os << " tos=0x" << std::hex << unsigned(ip.tos);
    return os.str();
}

PacketPtr
makePacket(Packet pkt)
{
    return PacketPool::local().seal(std::move(pkt));
}

} // namespace isw::net
