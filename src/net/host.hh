/**
 * @file
 * End host: a single-port node with MAC/IP identity and an
 * application receive handler.
 */

#ifndef ISW_NET_HOST_HH
#define ISW_NET_HOST_HH

#include <functional>

#include "net/node.hh"

namespace isw::net {

/**
 * A server node with one NIC port — or several when dual-homed for HA
 * (port 0 to the primary switch, port 1 to the backup). All traffic
 * egresses the active uplink; failover flips it.
 */
class Host : public Node
{
  public:
    using ReceiveHandler = std::function<void(PacketPtr)>;

    Host(sim::Simulation &s, std::string name, MacAddr mac, Ipv4Addr ip,
         std::size_t num_ports = 1)
        : Node(s, std::move(name), num_ports), mac_(mac), ip_(ip)
    {}

    MacAddr mac() const { return mac_; }
    Ipv4Addr ip() const { return ip_; }

    /** Install the application-layer receive callback. */
    void setReceiveHandler(ReceiveHandler h) { handler_ = std::move(h); }

    /** NIC port all egress uses (0 unless failed over). */
    std::size_t activeUplink() const { return active_uplink_; }
    void setActiveUplink(std::size_t port) { active_uplink_ = port; }

    /** Transmit a packet out of the active NIC port. */
    void send(PacketPtr pkt) { sendOut(active_uplink_, std::move(pkt)); }

    /**
     * Convenience builder: stamp this host's addresses as source and
     * send a UDP packet.
     */
    void sendTo(Ipv4Addr dst_ip, std::uint16_t dst_port,
                std::uint16_t src_port, std::uint8_t tos, Payload payload);

    void deliver(PacketPtr pkt, std::size_t in_port) override;

    /** Frames received (post-filter). */
    std::uint64_t rxFrames() const { return rx_frames_; }
    /** Frames sent. */
    std::uint64_t txFrames() const { return tx_frames_; }

  private:
    MacAddr mac_;
    Ipv4Addr ip_;
    std::size_t active_uplink_ = 0;
    ReceiveHandler handler_;
    std::uint64_t rx_frames_ = 0;
    std::uint64_t tx_frames_ = 0;
};

} // namespace isw::net

#endif // ISW_NET_HOST_HH
