/**
 * @file
 * End host: a single-port node with MAC/IP identity and an
 * application receive handler.
 */

#ifndef ISW_NET_HOST_HH
#define ISW_NET_HOST_HH

#include <functional>

#include "net/node.hh"

namespace isw::net {

/** A server node with one NIC port. */
class Host : public Node
{
  public:
    using ReceiveHandler = std::function<void(PacketPtr)>;

    Host(sim::Simulation &s, std::string name, MacAddr mac, Ipv4Addr ip)
        : Node(s, std::move(name), 1), mac_(mac), ip_(ip)
    {}

    MacAddr mac() const { return mac_; }
    Ipv4Addr ip() const { return ip_; }

    /** Install the application-layer receive callback. */
    void setReceiveHandler(ReceiveHandler h) { handler_ = std::move(h); }

    /** Transmit a packet out of the NIC. */
    void send(PacketPtr pkt) { sendOut(0, std::move(pkt)); }

    /**
     * Convenience builder: stamp this host's addresses as source and
     * send a UDP packet.
     */
    void sendTo(Ipv4Addr dst_ip, std::uint16_t dst_port,
                std::uint16_t src_port, std::uint8_t tos, Payload payload);

    void deliver(PacketPtr pkt, std::size_t in_port) override;

    /** Frames received (post-filter). */
    std::uint64_t rxFrames() const { return rx_frames_; }
    /** Frames sent. */
    std::uint64_t txFrames() const { return tx_frames_; }

  private:
    MacAddr mac_;
    Ipv4Addr ip_;
    ReceiveHandler handler_;
    std::uint64_t rx_frames_ = 0;
    std::uint64_t tx_frames_ = 0;
};

} // namespace isw::net

#endif // ISW_NET_HOST_HH
