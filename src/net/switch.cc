#include "net/switch.hh"

#include <stdexcept>

namespace isw::net {

EthSwitch::EthSwitch(sim::Simulation &s, std::string name,
                     std::size_t num_ports, SwitchConfig cfg)
    : Node(s, std::move(name), num_ports), cfg_(cfg),
      no_route_counter_(
          s.stats().counter("switch." + this->name() + ".no_route"))
{
}

void
EthSwitch::addRoute(Ipv4Addr ip, std::size_t port)
{
    if (port >= numPorts())
        throw std::out_of_range(name() + ": route to nonexistent port");
    routes_[ip] = port;
}

std::optional<std::size_t>
EthSwitch::routeFor(Ipv4Addr ip) const
{
    auto it = routes_.find(ip);
    if (it != routes_.end())
        return it->second;
    return default_port_;
}

void
EthSwitch::deliver(PacketPtr pkt, std::size_t in_port)
{
    if (interceptIngress(pkt, in_port))
        return;
    forward(std::move(pkt));
}

void
EthSwitch::forward(PacketPtr pkt)
{
    auto port = routeFor(pkt->ip.dst);
    if (!port) {
        ++no_route_;
        no_route_counter_.inc();
        return;
    }
    ++forwarded_;
    emitAfterLatency(*port, std::move(pkt));
}

void
EthSwitch::emitAfterLatency(std::size_t port, PacketPtr pkt)
{
    sim_.after(cfg_.forwarding_latency,
               [this, port, pkt = std::move(pkt)] { sendOut(port, pkt); });
}

} // namespace isw::net
