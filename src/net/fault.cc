#include "net/fault.hh"

namespace isw::net {

namespace {
/**
 * Seed salt: keeps the injector's RNG tree disjoint from the
 * simulation's forkRng() streams (workers, links, PS jitter) even
 * though both descend from the job seed. Attaching a plan must not
 * shift any pre-existing stream, or a faulty run's *computation* would
 * diverge from the lossless run for RNG reasons rather than fault
 * reasons.
 */
constexpr std::uint64_t kFaultSeedSalt = 0xFA17'1A7E'D00D'5EEDULL;
} // namespace

FaultInjector::FaultInjector(sim::Simulation &sim, FaultPlan plan,
                             std::uint64_t seed)
    : sim_(sim), plan_(std::move(plan)), seed_(seed ^ kFaultSeedSalt)
{
}

void
FaultInjector::attach(std::size_t worker, Link &link)
{
    PortState st;
    st.worker = worker;
    st.rng = sim::Rng(seed_).fork(worker);
    ports_.emplace(&link, std::move(st));
    link.setChannel(this);
}

void
FaultInjector::attachSwitchLink(Link &link)
{
    switch_links_.insert(&link);
    link.setChannel(this);
}

bool
FaultInjector::linkDown(std::size_t worker, sim::TimeNs now) const
{
    for (const LinkDownWindow &w : plan_.link_down)
        if (w.worker == worker && now >= w.down_at && now < w.up_at)
            return true;
    for (const WorkerCrash &c : plan_.crashes)
        if (c.worker == worker && now >= c.crash_at + kCrashGrace &&
            (c.rejoin_at == 0 || now < c.rejoin_at))
            return true; // rejoin_at == 0: permanent fail-stop
    return false;
}

bool
FaultInjector::switchDown(sim::TimeNs now) const
{
    for (const SwitchCrash &c : plan_.switch_crashes)
        if (now >= c.crash_at && (c.rejoin_at == 0 || now < c.rejoin_at))
            return true;
    return false;
}

bool
FaultInjector::controlPartitioned(sim::TimeNs now) const
{
    for (const ControlPartition &p : plan_.control_partitions)
        if (now >= p.from && now < p.until)
            return true;
    return false;
}

double
FaultInjector::computeScale(std::size_t worker, sim::TimeNs now) const
{
    // Crash beats straggler: a crashed worker sends nothing, so there
    // is no slowed-but-delivered traffic inside a crash window. Without
    // this check an overlapping straggler window would stretch the
    // worker's LGC past its rejoin and distort the recovery timeline.
    for (const WorkerCrash &c : plan_.crashes)
        if (c.worker == worker && now >= c.crash_at &&
            (c.rejoin_at == 0 || now < c.rejoin_at))
            return 1.0;
    double scale = 1.0;
    for (const Straggler &s : plan_.stragglers)
        if (s.worker == worker && now >= s.from && now < s.until &&
            s.slowdown > scale)
            scale = s.slowdown;
    return scale;
}

FaultStats
FaultInjector::stats() const
{
    FaultStats total;
    for (const auto &kv : ports_)
        total += kv.second.stats; // integer sums: order irrelevant
    total.switch_drops = switch_drops_.load(std::memory_order_relaxed);
    total.partition_drops =
        partition_drops_.load(std::memory_order_relaxed);
    return total;
}

ChannelVerdict
FaultInjector::onFrame(const Link &link, const PacketPtr &pkt)
{
    ChannelVerdict v;
    // Switch-crash/partition checks come first and are stateless: a
    // switch link transmits from both endpoints' domains, so only
    // plan-timestamp predicates plus atomic counters are domain-safe
    // here (the per-port state below is single-writer by contract).
    if (!switch_links_.empty() && switch_links_.count(&link) != 0) {
        const sim::TimeNs snow = sim_.now();
        if (switchDown(snow)) {
            switch_drops_.fetch_add(1, std::memory_order_relaxed);
            v.drop = true;
            return v;
        }
        if (pkt->ip.tos == kTosControl && controlPartitioned(snow)) {
            partition_drops_.fetch_add(1, std::memory_order_relaxed);
            v.drop = true;
            return v;
        }
    }
    auto it = ports_.find(&link);
    if (it == ports_.end())
        return v; // not a link we manage
    PortState &st = it->second;
    const sim::TimeNs now = sim_.now();

    if (linkDown(st.worker, now)) {
        ++st.stats.down_drops;
        v.drop = true;
        return v;
    }

    if (plan_.ge.enabled()) {
        // Advance the chain once per frame, then draw the state's loss.
        if (st.ge_bad) {
            if (st.rng.bernoulli(plan_.ge.p_bad_to_good))
                st.ge_bad = false;
        } else {
            if (st.rng.bernoulli(plan_.ge.p_good_to_bad))
                st.ge_bad = true;
        }
        const double p = st.ge_bad ? plan_.ge.loss_bad : plan_.ge.loss_good;
        if (p > 0.0 && st.rng.bernoulli(p)) {
            ++st.stats.ge_drops;
            v.drop = true;
            return v;
        }
    }

    if (plan_.extra_loss > 0.0 && st.rng.bernoulli(plan_.extra_loss)) {
        ++st.stats.iid_drops;
        v.drop = true;
        return v;
    }

    if (plan_.duplicate_prob > 0.0 &&
        st.rng.bernoulli(plan_.duplicate_prob)) {
        ++st.stats.duplicates;
        v.duplicate = true;
        // Duplicates trail the original by the reorder delay, so they
        // also exercise out-of-order arrival.
        v.dup_delay = plan_.reorder_delay;
    }

    if (plan_.reorder_prob > 0.0 && st.rng.bernoulli(plan_.reorder_prob)) {
        ++st.stats.reorders;
        v.delay = plan_.reorder_delay;
    }

    return v;
}

} // namespace isw::net
