#include "net/fault.hh"

namespace isw::net {

namespace {
/**
 * Seed salt: keeps the injector's RNG tree disjoint from the
 * simulation's forkRng() streams (workers, links, PS jitter) even
 * though both descend from the job seed. Attaching a plan must not
 * shift any pre-existing stream, or a faulty run's *computation* would
 * diverge from the lossless run for RNG reasons rather than fault
 * reasons.
 */
constexpr std::uint64_t kFaultSeedSalt = 0xFA17'1A7E'D00D'5EEDULL;
} // namespace

FaultInjector::FaultInjector(sim::Simulation &sim, FaultPlan plan,
                             std::uint64_t seed)
    : sim_(sim), plan_(std::move(plan)), seed_(seed ^ kFaultSeedSalt)
{
}

void
FaultInjector::attach(std::size_t worker, Link &link)
{
    PortState st;
    st.worker = worker;
    st.rng = sim::Rng(seed_).fork(worker);
    ports_.emplace(&link, std::move(st));
    link.setChannel(this);
}

bool
FaultInjector::linkDown(std::size_t worker, sim::TimeNs now) const
{
    for (const LinkDownWindow &w : plan_.link_down)
        if (w.worker == worker && now >= w.down_at && now < w.up_at)
            return true;
    for (const WorkerCrash &c : plan_.crashes)
        if (c.worker == worker && now >= c.crash_at + kCrashGrace &&
            now < c.rejoin_at)
            return true;
    return false;
}

double
FaultInjector::computeScale(std::size_t worker, sim::TimeNs now) const
{
    double scale = 1.0;
    for (const Straggler &s : plan_.stragglers)
        if (s.worker == worker && now >= s.from && now < s.until &&
            s.slowdown > scale)
            scale = s.slowdown;
    return scale;
}

FaultStats
FaultInjector::stats() const
{
    FaultStats total;
    for (const auto &kv : ports_)
        total += kv.second.stats; // integer sums: order irrelevant
    return total;
}

ChannelVerdict
FaultInjector::onFrame(const Link &link, const PacketPtr &pkt)
{
    (void)pkt;
    ChannelVerdict v;
    auto it = ports_.find(&link);
    if (it == ports_.end())
        return v; // not a link we manage
    PortState &st = it->second;
    const sim::TimeNs now = sim_.now();

    if (linkDown(st.worker, now)) {
        ++st.stats.down_drops;
        v.drop = true;
        return v;
    }

    if (plan_.ge.enabled()) {
        // Advance the chain once per frame, then draw the state's loss.
        if (st.ge_bad) {
            if (st.rng.bernoulli(plan_.ge.p_bad_to_good))
                st.ge_bad = false;
        } else {
            if (st.rng.bernoulli(plan_.ge.p_good_to_bad))
                st.ge_bad = true;
        }
        const double p = st.ge_bad ? plan_.ge.loss_bad : plan_.ge.loss_good;
        if (p > 0.0 && st.rng.bernoulli(p)) {
            ++st.stats.ge_drops;
            v.drop = true;
            return v;
        }
    }

    if (plan_.extra_loss > 0.0 && st.rng.bernoulli(plan_.extra_loss)) {
        ++st.stats.iid_drops;
        v.drop = true;
        return v;
    }

    if (plan_.duplicate_prob > 0.0 &&
        st.rng.bernoulli(plan_.duplicate_prob)) {
        ++st.stats.duplicates;
        v.duplicate = true;
        // Duplicates trail the original by the reorder delay, so they
        // also exercise out-of-order arrival.
        v.dup_delay = plan_.reorder_delay;
    }

    if (plan_.reorder_prob > 0.0 && st.rng.bernoulli(plan_.reorder_prob)) {
        ++st.stats.reorders;
        v.delay = plan_.reorder_delay;
    }

    return v;
}

} // namespace isw::net
