/**
 * @file
 * Ownership container and wiring helpers for networks.
 *
 * A Topology owns every Node and Link in a simulated network and keeps
 * the routing tables consistent as devices are wired together. Build
 * bottom-up: attach hosts to their edge switch first, then connect
 * edge switches to parents; uplink routes are propagated automatically.
 */

#ifndef ISW_NET_TOPOLOGY_HH
#define ISW_NET_TOPOLOGY_HH

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/host.hh"
#include "net/link.hh"
#include "net/switch.hh"

namespace isw::net {

/** Owns nodes and links; provides wiring helpers. */
class Topology
{
  public:
    explicit Topology(sim::Simulation &s) : sim_(s) {}

    /** Create a host with an automatically assigned MAC. @p num_ports
     *  is > 1 only for dual-homed HA hosts (port 1 -> backup). */
    Host *addHost(const std::string &name, Ipv4Addr ip,
                  std::size_t num_ports = 1);

    /**
     * Create and own a switch of any EthSwitch-derived type.
     * Usage: topo.addSwitch<core::ProgrammableSwitch>("tor0", 8, cfg);
     */
    template <class SwitchT, class... Args>
    SwitchT *
    addSwitch(const std::string &name, std::size_t num_ports, Args &&...args)
    {
        auto sw = std::make_unique<SwitchT>(sim_, name, num_ports,
                                            std::forward<Args>(args)...);
        SwitchT *raw = sw.get();
        nodes_.push_back(std::move(sw));
        subtree_hosts_[raw]; // ensure entry
        return raw;
    }

    /**
     * Wire @p host to @p sw at @p sw_port; installs the host route on
     * the switch and records the host in the switch's subtree.
     */
    Link *connectHost(Host *host, EthSwitch *sw, std::size_t sw_port,
                      LinkConfig cfg = {});

    /**
     * Wire @p child (and its whole subtree of hosts) below @p parent.
     * Sets the child's default (uplink) port and installs routes to
     * every subtree host on the parent and its ancestors.
     */
    Link *connectSwitches(EthSwitch *child, std::size_t child_port,
                          EthSwitch *parent, std::size_t parent_port,
                          LinkConfig cfg = {});

    /**
     * Wire a *secondary* NIC port of @p host to @p sw. Installs the
     * host route on the switch but does not touch subtree bookkeeping
     * or ancestor routes: backup links are invisible to the primary
     * routing fabric by design.
     */
    Link *connectHostPort(Host *host, std::size_t host_port, EthSwitch *sw,
                          std::size_t sw_port, LinkConfig cfg = {});

    /**
     * Wire two switches as peers (HA primary <-> backup). No uplink
     * relationship, no default port, no route propagation — callers
     * install whatever routes the protocol needs.
     */
    Link *connectPeers(EthSwitch *a, std::size_t a_port, EthSwitch *b,
                       std::size_t b_port, LinkConfig cfg = {});

    /** All hosts reachable below @p sw (including directly attached). */
    const std::vector<Host *> &subtreeHosts(EthSwitch *sw) const;

    const std::vector<std::unique_ptr<Node>> &nodes() const { return nodes_; }
    const std::vector<std::unique_ptr<Link>> &links() const { return links_; }

    sim::Simulation &simulation() { return sim_; }

  private:
    Link *makeLink(const std::string &name, LinkConfig cfg);

    sim::Simulation &sim_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::vector<std::unique_ptr<Link>> links_;
    /**
     * A switch's uplink: the parent switch plus the parent-side port
     * of the uplink, recorded when connectSwitches() wires it. The
     * port makes route propagation O(1) per ancestor — re-deriving it
     * by scanning the parent's ports (the old `portToward`) made
     * building an N-host fabric O(hosts x ports x depth).
     */
    struct Uplink
    {
        EthSwitch *parent;
        std::size_t parent_port;
    };

    std::unordered_map<EthSwitch *, std::vector<Host *>> subtree_hosts_;
    std::unordered_map<EthSwitch *, Uplink> parent_of_;
    std::uint64_t next_mac_ = 0x0200'0000'0001ULL;
};

} // namespace isw::net

#endif // ISW_NET_TOPOLOGY_HH
