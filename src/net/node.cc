#include "net/node.hh"

#include <stdexcept>

#include "net/link.hh"

namespace isw::net {

Node::Node(sim::Simulation &s, std::string name, std::size_t num_ports)
    : sim_(s), name_(std::move(name)), ports_(num_ports, nullptr)
{
}

void
Node::attachLink(std::size_t port, Link *link)
{
    if (port >= ports_.size())
        throw std::out_of_range(name_ + ": no such port");
    if (ports_[port] != nullptr)
        throw std::logic_error(name_ + ": port already attached");
    ports_[port] = link;
}

void
Node::sendOut(std::size_t port, PacketPtr pkt)
{
    Link *l = ports_.at(port);
    if (l == nullptr)
        throw std::logic_error(name_ + ": sendOut on unattached port");
    l->transmit(this, std::move(pkt));
}

} // namespace isw::net
