/**
 * @file
 * PacketPool: per-thread recycling of Packet objects, their shared_ptr
 * control blocks, and chunk float buffers.
 *
 * The simulated datapath creates one heap `shared_ptr<const Packet>`
 * (object + control block) and one fresh `std::vector<float>` per
 * segment per hop — the dominant allocator traffic once the event
 * queue stopped allocating (DESIGN.md §9). The pool mirrors the
 * pre-allocated slot designs of SwitchML/NetReduce in software:
 *
 *  - `seal()` places a Packet into a recycled slot and attaches a
 *    deleter that, when the last reference drops, salvages the chunk's
 *    float buffer into the free list and returns the slot — objects
 *    stay constructed between uses, so capacity survives.
 *  - The shared_ptr control block is allocated through a free-listed
 *    allocator, so the whole send → switch → deliver round trip is
 *    allocation-free in steady state.
 *  - `acquireFloats()` hands senders a recycled, cleared buffer whose
 *    capacity was grown by earlier rounds.
 *
 * Each Simulation runs wholly on one thread, so the thread-local pool
 * is effectively per-Simulation; pool warmth carries across jobs that
 * share a worker thread, which is why alloc/reuse counters are
 * reported as wall-clock-class `perf` metrics, never in the
 * deterministic `extras` (see harness/metrics.hh). `sealed` counts
 * pure packet creations and IS deterministic per job.
 */

#ifndef ISW_NET_PACKET_POOL_HH
#define ISW_NET_PACKET_POOL_HH

#include <cstdint>
#include <vector>

#include "net/packet.hh"

namespace isw::net {

class PacketPool
{
  public:
    /** Creation / recycling counters (monotone; snapshot and diff). */
    struct Stats
    {
        std::uint64_t sealed = 0;        ///< packets created via seal()
        std::uint64_t packet_allocs = 0; ///< slot misses (fresh Packet)
        std::uint64_t packet_reuses = 0; ///< slot hits (recycled Packet)
        std::uint64_t float_allocs = 0;  ///< acquireFloats() misses
        std::uint64_t float_reuses = 0;  ///< acquireFloats() hits
    };

    /** The calling thread's pool (the override when one is set). */
    static PacketPool &local();

    /**
     * Redirect this thread's local() to @p pool (nullptr restores the
     * default thread-local pool). The sharded engine's domain hooks
     * use this so every domain owns a private pool: packets sealed
     * and recycled inside a domain's window — including packets that
     * crossed domains and die on the receiver's thread — touch only
     * that domain's free lists, keeping the pool single-threaded.
     */
    static void setLocalOverride(PacketPool *pool);

    PacketPool() = default;
    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;
    ~PacketPool();

    /** Pooled equivalent of make_shared<const Packet>(std::move(pkt)). */
    PacketPtr seal(Packet &&pkt);

    /**
     * A cleared float buffer with capacity for @p hint elements,
     * recycled from an earlier packet when available.
     */
    std::vector<float> acquireFloats(std::size_t hint);

    /** Return a buffer to the free list (capacity is kept). */
    void releaseFloats(std::vector<float> &&buf);

    Stats stats() const { return stats_; }

    /** Packets currently parked in the slot free list. */
    std::size_t idleSlots() const { return slots_.size(); }
    /** Float buffers currently parked in the free list. */
    std::size_t idleFloatBuffers() const { return float_bufs_.size(); }

    /** Drop all parked slots and buffers (tests; memory release). */
    void trim();

  private:
    friend struct PacketRecycler;

    /** Deleter target: salvage buffers, park the slot. */
    void recycle(Packet *p);

    // Caps bound idle memory only; they never affect simulation
    // results (a full list simply frees instead of parking).
    static constexpr std::size_t kMaxIdleSlots = 4096;
    static constexpr std::size_t kMaxIdleFloatBufs = 4096;

    std::vector<Packet *> slots_;
    std::vector<std::vector<float>> float_bufs_;
    Stats stats_;
};

} // namespace isw::net

#endif // ISW_NET_PACKET_POOL_HH
