/**
 * @file
 * Declarative, seed-deterministic fault injection.
 *
 * A FaultPlan describes *what* goes wrong — bursty (Gilbert–Elliott)
 * loss, extra iid loss, duplication, reordering, timed link-down
 * windows, worker crash/rejoin cycles, straggler slowdowns — and a
 * FaultInjector executes it by installing itself as the ChannelModel
 * of the affected edge links. All randomness comes from a private RNG
 * tree seeded from (job seed, worker index), so attaching a plan never
 * perturbs the RNG streams of the rest of the simulation: a lossless
 * run with and without the subsystem compiled in is bit-identical, and
 * two runs of the same plan are too.
 *
 * Crash semantics are fail-stop with warm restart: during
 * [crash_at + grace, rejoin_at) every frame to or from the worker is
 * dropped; the worker's in-memory training state survives. The small
 * grace lets a Leave control frame sent at the crash instant escape,
 * so plans can drive the control plane's real Leave/Join actions
 * (paper Table 2) and the switch's auto-H recomputation.
 */

#ifndef ISW_NET_FAULT_HH
#define ISW_NET_FAULT_HH

#include <atomic>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/link.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace isw::net {

/**
 * Two-state Gilbert–Elliott loss chain, advanced once per frame.
 * The canonical model of bursty loss: mostly-clean "good" periods
 * interrupted by short "bad" bursts with high drop probability.
 */
struct GilbertElliott
{
    double p_good_to_bad = 0.0; ///< per-frame G->B transition probability
    double p_bad_to_good = 0.0; ///< per-frame B->G transition probability
    double loss_good = 0.0;     ///< drop probability while good
    double loss_bad = 0.0;      ///< drop probability while bad

    bool
    enabled() const
    {
        return p_good_to_bad > 0.0 || loss_good > 0.0 || loss_bad > 0.0;
    }
};

/** Drop everything on @p worker's edge link during [down_at, up_at). */
struct LinkDownWindow
{
    std::size_t worker = 0;
    sim::TimeNs down_at = 0;
    sim::TimeNs up_at = 0;
};

/**
 * Fail-stop crash at crash_at, warm rejoin at rejoin_at.
 * rejoin_at == 0 means *permanent* fail-stop: the worker never comes
 * back (the long-soak scenario behind switch failover testing).
 */
struct WorkerCrash
{
    std::size_t worker = 0;
    sim::TimeNs crash_at = 0;
    sim::TimeNs rejoin_at = 0;
    /**
     * Announce the crash/recovery to the control plane: a Leave is
     * sent at the crash instant and a Join at rejoin, driving the
     * switch's membership table and auto-H recomputation. false models
     * a silent partition (the cluster must ride it out via recovery).
     */
    bool announce = true;
};

/**
 * Crash of the primary aggregation switch: every frame touching the
 * switch (data, control, results, heartbeats, replication) is dropped
 * during [crash_at, rejoin_at). rejoin_at == 0 means the switch never
 * rejoins — the expected shape for failover runs, since the HA layer
 * is fail-stop (a promoted backup never demotes).
 */
struct SwitchCrash
{
    sim::TimeNs crash_at = 0;
    sim::TimeNs rejoin_at = 0;
};

/**
 * Control-plane partition: only control frames (kTosControl — joins,
 * leaves, helps, heartbeats) touching the primary switch are dropped
 * during [from, until); the data plane keeps flowing.
 */
struct ControlPartition
{
    sim::TimeNs from = 0;
    sim::TimeNs until = 0;
};

/** Scale @p worker's local compute by @p slowdown during a window. */
struct Straggler
{
    std::size_t worker = 0;
    double slowdown = 1.0; ///< multiplier on LGC durations (>= 1)
    sim::TimeNs from = 0;
    sim::TimeNs until = std::numeric_limits<sim::TimeNs>::max();
};

/** The full declarative fault schedule for one run. */
struct FaultPlan
{
    GilbertElliott ge;
    /** Extra iid loss, independent of LinkConfig::loss_prob. */
    double extra_loss = 0.0;
    /** Probability a frame is delivered twice. */
    double duplicate_prob = 0.0;
    /** Probability a frame is delayed by reorder_delay (overtaken). */
    double reorder_prob = 0.0;
    sim::TimeNs reorder_delay = 50 * sim::kUsec;
    std::vector<LinkDownWindow> link_down;
    std::vector<WorkerCrash> crashes;
    std::vector<Straggler> stragglers;
    std::vector<SwitchCrash> switch_crashes;
    std::vector<ControlPartition> control_partitions;

    bool
    empty() const
    {
        return !ge.enabled() && extra_loss <= 0.0 &&
               duplicate_prob <= 0.0 && reorder_prob <= 0.0 &&
               link_down.empty() && crashes.empty() &&
               stragglers.empty() && switch_crashes.empty() &&
               control_partitions.empty();
    }

    bool
    hasSwitchFaults() const
    {
        return !switch_crashes.empty() || !control_partitions.empty();
    }
};

/** Deterministic counters of what the injector actually did. */
struct FaultStats
{
    std::uint64_t ge_drops = 0;   ///< dropped by the Gilbert–Elliott chain
    std::uint64_t iid_drops = 0;  ///< dropped by extra_loss
    std::uint64_t down_drops = 0; ///< dropped inside down/crash windows
    std::uint64_t duplicates = 0;
    std::uint64_t reorders = 0;
    std::uint64_t switch_drops = 0;    ///< dropped by switch-crash windows
    std::uint64_t partition_drops = 0; ///< control frames dropped by partitions

    FaultStats &operator+=(const FaultStats &o)
    {
        ge_drops += o.ge_drops;
        iid_drops += o.iid_drops;
        down_drops += o.down_drops;
        duplicates += o.duplicates;
        reorders += o.reorders;
        switch_drops += o.switch_drops;
        partition_drops += o.partition_drops;
        return *this;
    }
};

/**
 * Executes a FaultPlan on the edge links of a cluster. Attach once per
 * worker (`attach(i, link)`); the injector becomes the link's
 * ChannelModel. Crash/down windows are evaluated by timestamp (no
 * events scheduled), so an attached-but-empty plan costs one virtual
 * call per frame and changes nothing else.
 */
class FaultInjector : public ChannelModel
{
  public:
    /** Grace after crash_at during which the Leave frame escapes. */
    static constexpr sim::TimeNs kCrashGrace = 1 * sim::kUsec;

    FaultInjector(sim::Simulation &sim, FaultPlan plan, std::uint64_t seed);

    /** Register @p link as @p worker's edge link and install self. */
    void attach(std::size_t worker, Link &link);

    /**
     * Register @p link as one of the primary switch's links and
     * install self. Switch links may also be registered edge links (a
     * star fabric's worker links *are* the switch's links): the
     * switch-crash check runs first, then the per-worker machinery.
     */
    void attachSwitchLink(Link &link);

    ChannelVerdict onFrame(const Link &link, const PacketPtr &pkt) override;

    /** Is @p worker unreachable right now (crash or down window)? */
    bool linkDown(std::size_t worker, sim::TimeNs now) const;

    /** Is the primary switch inside a crash window at @p now? */
    bool switchDown(sim::TimeNs now) const;

    /** Is the control plane partitioned from the switch at @p now? */
    bool controlPartitioned(sim::TimeNs now) const;

    /** Straggler compute multiplier for @p worker at @p now (>= 1). */
    double computeScale(std::size_t worker, sim::TimeNs now) const;

    const FaultPlan &plan() const { return plan_; }
    /** Aggregate counters across all attached links. Summed on demand:
     *  the live counters are per-port so a sharded engine's domains
     *  never write a shared cache line (each edge link's frames are
     *  processed entirely within the link's home domain). The sum of
     *  per-port totals is order-independent, hence deterministic. */
    FaultStats stats() const;

  private:
    /**
     * Per-edge-link state: the GE chain, the RNG, and the fault
     * counters. A link's frames all execute in the link's home domain
     * (one rack = one domain), so everything here is single-writer —
     * no atomics needed even when domains run on parallel threads.
     */
    struct PortState
    {
        std::size_t worker = 0;
        bool ge_bad = false; ///< Gilbert–Elliott chain state
        sim::Rng rng;
        FaultStats stats;
    };

    sim::Simulation &sim_;
    FaultPlan plan_;
    std::uint64_t seed_ = 0;
    /** Read-only after attach() (runtime lookups never mutate). */
    std::unordered_map<const Link *, PortState> ports_;
    /**
     * The primary switch's links. Unlike edge links, a switch link's
     * frames execute from *two* domains (each endpoint transmits from
     * its own), so the crash/partition checks are stateless timestamp
     * predicates and the counters are atomics — never PortState.
     */
    std::unordered_set<const Link *> switch_links_;
    std::atomic<std::uint64_t> switch_drops_{0};
    std::atomic<std::uint64_t> partition_drops_{0};
};

} // namespace isw::net

#endif // ISW_NET_FAULT_HH
