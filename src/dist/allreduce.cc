#include "dist/allreduce.hh"

#include <stdexcept>

namespace isw::dist {

SyncAllReduceJob::SyncAllReduceJob(const JobConfig &cfg) : JobBase(cfg)
{
    const std::size_t n = workers_.size();
    if (n < 2)
        throw std::invalid_argument("AllReduce needs at least 2 workers");

    const WireFormat fmt = gradientWire(/*iswitch_plane=*/false);
    // Split logical floats evenly; split wire bytes evenly at 4-byte
    // granularity with the remainder on the last chunk.
    chunks_.resize(n);
    const std::uint64_t base_wire = (fmt.wire_bytes / n) & ~3ULL;
    std::uint64_t wire_used = 0;
    for (std::size_t c = 0; c < n; ++c) {
        chunks_[c].log_begin = fmt.logical_floats * c / n;
        chunks_[c].log_end = fmt.logical_floats * (c + 1) / n;
        chunks_[c].wire_bytes =
            c + 1 == n ? fmt.wire_bytes - wire_used : base_wire;
        wire_used += chunks_[c].wire_bytes;
        // The wire share must fit the logical share at our precision.
        const std::uint64_t need = WireFormat::minWireBytes(
            fmt.precision, chunks_[c].log_end - chunks_[c].log_begin);
        if (chunks_[c].wire_bytes < need)
            chunks_[c].wire_bytes = need;
    }
    ring_.resize(n);
    out_.resize(n);
}

std::size_t
SyncAllReduceJob::sendChunkAt(std::size_t i, std::size_t step) const
{
    const std::size_t n = workers_.size();
    if (step < n - 1) // scatter-reduce
        return (i + n - step % n) % n;
    const std::size_t s = step - (n - 1); // all-gather
    return (i + 1 + n - s % n) % n;
}

std::size_t
SyncAllReduceJob::recvChunkAt(std::size_t i, std::size_t step) const
{
    const std::size_t n = workers_.size();
    // What my predecessor sends at this step.
    return sendChunkAt((i + n - 1) % n, step);
}

void
SyncAllReduceJob::start()
{
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncAllReduceJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] { startRing(*wp); });
}

void
SyncAllReduceJob::startRing(WorkerCtx &w)
{
    RingState &rs = ring_[w.index];
    rs.acc = w.pending_grad;
    rs.step = 0;
    rs.active = true;
    sendStep(w, 0);
    tryAdvance(w);
}

void
SyncAllReduceJob::sendStep(WorkerCtx &w, std::size_t step)
{
    RingState &rs = ring_[w.index];
    const std::size_t chunk = sendChunkAt(w.index, step);
    const ChunkSpec &cs = chunks_[chunk];
    WorkerCtx &next = workers_[(w.index + 1) % workers_.size()];
    const WireFormat cfmt =
        WireFormat::forVector(cs.log_end - cs.log_begin, cs.wire_bytes,
                              /*iswitch_plane=*/false, cfg_.precision);
    WorkerCtx *wp = &w;
    net::Host *dst = next.host;
    const std::uint64_t tid = xferId(rs.round, step);
    sim_->after(cfg_.overhead.send, [this, wp, dst, cs, cfmt, tid] {
        const RingState &rs = ring_[wp->index];
        sendVector(*wp->host, dst->ip(), kWorkerPort, kWorkerPort,
                   /*tos=*/0, tid,
                   std::span<const float>(rs.acc.data() + cs.log_begin,
                                          cs.log_end - cs.log_begin),
                   cfmt, /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                   wp->ppp.get());
        if (!recoveryEnabled())
            return;
        // Snapshot the chunk as sent: rs.acc mutates as later steps
        // fold into it, so resends must read the copy.
        Outgoing &o = out_[wp->index][tid];
        o.data.assign(rs.acc.data() + cs.log_begin,
                      rs.acc.data() + cs.log_end);
        o.fmt = cfmt;
        o.src = wp->host;
        o.dst = dst;
        configureTimer(o.timer);
        const std::size_t rcv = (wp->index + 1) % workers_.size();
        o.timer.arm([this, wp, tid, rcv]() -> std::size_t {
            auto oit = out_[wp->index].find(tid);
            if (stopped() || oit == out_[wp->index].end())
                return 0;
            if (!crossDomainFabric()) {
                // Free-ack model: consult the successor's assembler for
                // what is still missing (absent = nothing arrived yet).
                std::vector<std::uint64_t> missing;
                auto ait = ring_[rcv].inflight.find(tid);
                if (ait != ring_[rcv].inflight.end()) {
                    missing = ait->second.missingSegments();
                } else {
                    missing.resize(oit->second.fmt.segments());
                    for (std::uint64_t s = 0; s < missing.size(); ++s)
                        missing[s] = s;
                }
                for (std::uint64_t seg : missing) {
                    sendVectorSegment(
                        *oit->second.src, oit->second.dst->ip(),
                        kWorkerPort, kWorkerPort, /*tos=*/0, tid,
                        oit->second.data, oit->second.fmt, seg,
                        /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                        wp->ppp.get());
                    ++recovery_.retransmits;
                }
                return missing.size();
            }
            // Partitioned fabric: the successor's assembler lives in
            // its own domain — probe there, hop back here to resend.
            // Stay armed (return 1) until the successor's completion
            // defers a done() to this domain.
            inDomainOf(workers_[rcv].host, [this, wp, tid, rcv] {
                if (stopped())
                    return;
                const RingState &rr = ring_[rcv];
                const std::uint64_t round = tid / 1000;
                const std::size_t step = tid % 1000;
                if (round < rr.round ||
                    (round == rr.round && step < rr.step))
                    return; // consumed; a deferred done() is in flight
                std::vector<std::uint64_t> missing;
                auto ait = rr.inflight.find(tid);
                const bool all = ait == rr.inflight.end();
                if (!all) {
                    if (ait->second.complete())
                        return; // assembled, consumption pending
                    missing = ait->second.missingSegments();
                    if (missing.empty())
                        return;
                }
                inDomainOf(wp->host, [this, wp, tid, all,
                                      missing = std::move(missing)] {
                    auto oit = out_[wp->index].find(tid);
                    if (stopped() || oit == out_[wp->index].end())
                        return;
                    std::vector<std::uint64_t> segs = missing;
                    if (all) {
                        segs.resize(oit->second.fmt.segments());
                        for (std::uint64_t s = 0; s < segs.size(); ++s)
                            segs[s] = s;
                    }
                    for (std::uint64_t seg : segs) {
                        sendVectorSegment(
                            *oit->second.src, oit->second.dst->ip(),
                            kWorkerPort, kWorkerPort, /*tos=*/0, tid,
                            oit->second.data, oit->second.fmt, seg,
                            /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                            wp->ppp.get());
                        ++recovery_.retransmits;
                    }
                });
            });
            return 1;
        });
    });
}

void
SyncAllReduceJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (checkFailoverFrame(pkt))
        return;
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    RingState &rs = ring_[w.index];
    const std::uint64_t round = chunk->transfer_id / 1000;
    const std::size_t step = chunk->transfer_id % 1000;
    // Stale gating: a consumed step's transfer can only reappear as a
    // late retransmission or channel duplicate — never re-assemble it.
    if (round < rs.round || (round == rs.round && step < rs.step))
        return;
    auto it = rs.inflight.find(chunk->transfer_id);
    if (it == rs.inflight.end()) {
        // Derive which step this transfer is to size its assembler.
        if (step >= totalSteps())
            return;
        const std::size_t c = recvChunkAt(w.index, step);
        const ChunkSpec &cs = chunks_[c];
        const WireFormat cfmt =
            WireFormat::forVector(cs.log_end - cs.log_begin, cs.wire_bytes,
                                  /*iswitch_plane=*/false, cfg_.precision);
        it = rs.inflight.emplace(chunk->transfer_id, VectorAssembler(cfmt))
                 .first;
    }
    if (it->second.offer(*chunk)) {
        // Transfer complete: release the predecessor's retransmission
        // guard for it. The guard (timer + Outgoing entry) belongs to
        // the predecessor's domain, so on a partitioned fabric the
        // release hops there; transfer ids never repeat, so a stale
        // lookup is a harmless no-op.
        if (recoveryEnabled()) {
            const std::size_t pred =
                (w.index + workers_.size() - 1) % workers_.size();
            const std::uint64_t tid = chunk->transfer_id;
            if (!crossDomainFabric()) {
                auto oit = out_[pred].find(tid);
                if (oit != out_[pred].end()) {
                    oit->second.timer.done();
                    out_[pred].erase(oit);
                }
            } else {
                inDomainOf(workers_[pred].host, [this, pred, tid] {
                    auto oit = out_[pred].find(tid);
                    if (oit != out_[pred].end()) {
                        oit->second.timer.done();
                        out_[pred].erase(oit);
                    }
                });
            }
        }
        tryAdvance(w);
    }
}

void
SyncAllReduceJob::tryAdvance(WorkerCtx &w)
{
    RingState &rs = ring_[w.index];
    if (rs.processing || !rs.active)
        return;
    const std::uint64_t tid = xferId(rs.round, rs.step);
    auto it = rs.inflight.find(tid);
    if (it == rs.inflight.end() || !it->second.complete())
        return;

    rs.processing = true;
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp, tid] {
        WorkerCtx &w = *wp;
        RingState &rs = ring_[w.index];
        auto it = rs.inflight.find(tid);
        if (it == rs.inflight.end())
            throw std::logic_error("AllReduce: step transfer vanished");
        const std::vector<float> &recv = it->second.vector();
        const std::size_t c = recvChunkAt(w.index, rs.step);
        const ChunkSpec &cs = chunks_[c];
        if (rs.step < workers_.size() - 1) {
            // Scatter-reduce: fold into the working copy.
            for (std::uint64_t i = 0; i < recv.size(); ++i)
                rs.acc[cs.log_begin + i] += recv[i];
        } else {
            // All-gather: adopt the fully reduced chunk.
            for (std::uint64_t i = 0; i < recv.size(); ++i)
                rs.acc[cs.log_begin + i] = recv[i];
        }
        rs.inflight.erase(it);
        ++rs.step;
        rs.processing = false;
        if (rs.step == totalSteps()) {
            ringDone(w);
        } else {
            sendStep(w, rs.step);
            tryAdvance(w);
        }
    });
}

void
SyncAllReduceJob::ringDone(WorkerCtx &w)
{
    ring_[w.index].active = false;
    chargeAggregation(w, sim_->now() - w.lgc_end);
    const sim::TimeNs wu = chargeWeightUpdate(w);
    WorkerCtx *wp = &w;
    sim_->after(wu, [this, wp] {
        WorkerCtx &w = *wp;
        RingState &rs = ring_[w.index];
        w.agent->applyAggregatedGradient(
            rs.acc, static_cast<std::uint32_t>(workers_.size()));
        ++rs.round;
        rs.step = 0; // keep the stale-transfer gate aligned with round
        ++w.round;
        if (w.index == 0)
            noteGlobalIteration();
        beginRound(w);
    });
}

} // namespace isw::dist
