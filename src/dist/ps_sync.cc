#include "dist/ps_sync.hh"

namespace isw::dist {

namespace {
/**
 * Transfer ids stamp the round so a straggling retransmission from
 * round r can never pollute round r+1's assembler: gradients use
 * (round << kRoundShift) | worker, results set kResultFlag on top.
 */
constexpr std::uint64_t kRoundShift = 20;
constexpr std::uint64_t kWorkerMask = (1ULL << kRoundShift) - 1;
constexpr std::uint64_t kResultFlag = 1ULL << 63;

constexpr std::uint64_t
gradTid(std::uint64_t round, std::uint64_t worker)
{
    return (round << kRoundShift) | worker;
}

constexpr std::uint64_t
tidRound(std::uint64_t tid)
{
    return (tid & ~kResultFlag) >> kRoundShift;
}

constexpr std::uint64_t
tidWorker(std::uint64_t tid)
{
    return tid & kWorkerMask;
}
} // namespace

SyncPsJob::SyncPsJob(const JobConfig &cfg) : JobBase(cfg)
{
    fmt_ = gradientWire(/*iswitch_plane=*/false);
    ps_rx_.resize(workers_.size());
    for (auto &rx : ps_rx_)
        rx.reset(fmt_);
    for (auto &w : workers_)
        w.rx.reset(fmt_);
    ps_rng_ = sim_->forkRng();
    srv_ppp_ = makePipeline();
    grad_retx_.resize(workers_.size());
    result_retx_.resize(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        configureTimer(grad_retx_[i]);
        configureTimer(result_retx_[i]);
    }
}

void
SyncPsJob::start()
{
    cluster_.ps->setReceiveHandler(
        [this](net::PacketPtr pkt) { onPsPacket(pkt); });
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncPsJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        sim_->after(cfg_.overhead.send, [this, wp] {
            const std::uint64_t r = wp->round;
            sendVector(*wp->host, cluster_.ps->ip(), kPsPort, kWorkerPort,
                       /*tos=*/0, gradTid(r, wp->index), wp->pending_grad,
                       fmt_, /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                       wp->ppp.get());
            // Guard the uplink transfer: on timeout, re-send whatever
            // the server's assembler is still missing (the ack channel
            // is modeled as free; data resends pay full wire cost).
            grad_retx_[wp->index].arm([this, wp, r]() -> std::size_t {
                if (stopped())
                    return 0;
                if (!crossDomainFabric()) {
                    if (srv_round_ != r)
                        return 0;
                    std::size_t n = 0;
                    for (std::uint64_t seg :
                         ps_rx_[wp->index].missingSegments()) {
                        sendVectorSegment(*wp->host, cluster_.ps->ip(),
                                          kPsPort, kWorkerPort, /*tos=*/0,
                                          gradTid(r, wp->index),
                                          wp->pending_grad, fmt_, seg,
                                          /*seg_base=*/0, /*job=*/0,
                                          /*ver_quota=*/0, wp->ppp.get());
                        ++recovery_.retransmits;
                        ++n;
                    }
                    return n;
                }
                // Partitioned fabric: the server's assembler lives in
                // another domain, so the timer probes it there and the
                // resend hops back to the worker's domain. The timer
                // stays armed (return 1) until the server's completion
                // defers a done() to this domain.
                inDomainOf(cluster_.ps, [this, wp, r] {
                    if (stopped() || srv_round_ != r)
                        return;
                    std::vector<std::uint64_t> missing =
                        ps_rx_[wp->index].missingSegments();
                    if (missing.empty())
                        return;
                    inDomainOf(wp->host, [this, wp, r,
                                          missing = std::move(missing)] {
                        if (stopped() || wp->round != r)
                            return;
                        for (std::uint64_t seg : missing) {
                            sendVectorSegment(
                                *wp->host, cluster_.ps->ip(), kPsPort,
                                kWorkerPort, /*tos=*/0,
                                gradTid(r, wp->index), wp->pending_grad,
                                fmt_, seg, /*seg_base=*/0, /*job=*/0,
                                /*ver_quota=*/0, wp->ppp.get());
                            ++recovery_.retransmits;
                        }
                    });
                });
                return 1;
            });
        });
    });
}

void
SyncPsJob::onPsPacket(const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || (chunk->transfer_id & kResultFlag) != 0)
        return;
    const std::uint64_t widx = tidWorker(chunk->transfer_id);
    if (widx >= ps_rx_.size() || tidRound(chunk->transfer_id) != srv_round_)
        return; // stale round (late retransmission): drop
    if (ps_rx_[widx].offer(*chunk)) {
        // The timer lives in the worker's domain; done() hops there.
        deferDone(grad_retx_[widx], workers_[widx].host);
        if (++ps_received_ == workers_.size())
            serverAggregate();
    }
}

void
SyncPsJob::serverAggregate()
{
    // Conventional aggregation (Figure 8a): all vectors are resident
    // before the summation starts.
    ps_sum_.assign(fmt_.logical_floats, 0.0f);
    for (const auto &rx : ps_rx_) {
        const auto &v = rx.vector();
        for (std::size_t i = 0; i < ps_sum_.size(); ++i)
            ps_sum_[i] += v[i];
    }
    const double sum_bytes = static_cast<double>(fmt_.wire_bytes) *
                             static_cast<double>(workers_.size());
    const auto sum_time = static_cast<sim::TimeNs>(
        sum_bytes / cfg_.ps_sum_bytes_per_sec * 1e9);
    last_server_wu_ =
        cfg_.profile.sample(IterComponent::kWeightUpdate, ps_rng_);

    // Reset reception state for the next round before replies go out.
    for (auto &rx : ps_rx_)
        rx.reset();
    ps_received_ = 0;
    const std::uint64_t round = srv_round_++;

    sim_->after(cfg_.overhead.recv + sum_time + last_server_wu_,
                [this, round] {
        // Unicast the aggregate to every worker; each message costs a
        // send posting, and all share the server's single link.
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            WorkerCtx *wp = &workers_[i];
            sim_->after(cfg_.overhead.send * (i + 1), [this, wp, round] {
                const std::uint64_t tid =
                    kResultFlag | gradTid(round, wp->index);
                sendVector(*cluster_.ps, wp->host->ip(), kWorkerPort,
                           kPsPort, /*tos=*/0, tid, ps_sum_, fmt_,
                           /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                           srv_ppp_.get());
                // Guard the downlink transfer; ps_sum_ is stable until
                // every worker finished this round.
                result_retx_[wp->index].arm([this, wp, tid,
                                             round]() -> std::size_t {
                    if (stopped())
                        return 0;
                    if (!crossDomainFabric()) {
                        if (wp->round != round)
                            return 0;
                        std::size_t n = 0;
                        for (std::uint64_t seg : wp->rx.missingSegments()) {
                            sendVectorSegment(
                                *cluster_.ps, wp->host->ip(), kWorkerPort,
                                kPsPort, /*tos=*/0, tid, ps_sum_, fmt_, seg,
                                /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                                srv_ppp_.get());
                            ++recovery_.retransmits;
                            ++n;
                        }
                        return n;
                    }
                    // Probe the worker's assembler in its own domain,
                    // then resend from the server's domain. srv_round_
                    // guards ps_sum_ liveness: once the next aggregate
                    // overwrites it, stale resends are pointless (the
                    // receiver would drop them by round anyway).
                    inDomainOf(wp->host, [this, wp, tid, round] {
                        if (stopped() || wp->round != round)
                            return;
                        std::vector<std::uint64_t> missing =
                            wp->rx.missingSegments();
                        if (missing.empty())
                            return;
                        inDomainOf(cluster_.ps,
                                   [this, wp, tid, round,
                                    missing = std::move(missing)] {
                            if (stopped() || srv_round_ != round + 1)
                                return;
                            for (std::uint64_t seg : missing) {
                                sendVectorSegment(
                                    *cluster_.ps, wp->host->ip(),
                                    kWorkerPort, kPsPort, /*tos=*/0, tid,
                                    ps_sum_, fmt_, seg, /*seg_base=*/0,
                                    /*job=*/0, /*ver_quota=*/0,
                                    srv_ppp_.get());
                                ++recovery_.retransmits;
                            }
                        });
                    });
                    return 1;
                });
            });
        }
    });
}

void
SyncPsJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (checkFailoverFrame(pkt))
        return;
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || (chunk->transfer_id & kResultFlag) == 0)
        return;
    if (tidWorker(chunk->transfer_id) != w.index ||
        tidRound(chunk->transfer_id) != w.round)
        return; // stale round or misrouted: drop
    if (w.rx.offer(*chunk)) {
        // The timer was armed in the server's domain; done() hops there.
        deferDone(result_retx_[w.index], cluster_.ps);
        onWeightsComplete(w);
    }
}

void
SyncPsJob::onWeightsComplete(WorkerCtx &w)
{
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        // The server's update time is part of the round but is weight
        // update, not aggregation; split the charges accordingly.
        const sim::TimeNs elapsed = sim_->now() - w.lgc_end;
        const sim::TimeNs agg =
            elapsed > last_server_wu_ ? elapsed - last_server_wu_ : 0;
        chargeAggregation(w, agg);
        w.metrics.add(IterComponent::kWeightUpdate, last_server_wu_);
        w.agent->applyAggregatedGradient(
            w.rx.vector(), static_cast<std::uint32_t>(workers_.size()));
        w.rx.reset();
        ++w.round;
        if (w.index == 0)
            noteGlobalIteration();
        beginRound(w);
    });
}

} // namespace isw::dist
