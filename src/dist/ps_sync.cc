#include "dist/ps_sync.hh"

namespace isw::dist {

namespace {
/** Transfer ids: gradients use the worker index; result streams are
 *  offset so they can never collide. */
constexpr std::uint64_t kResultXferBase = 1'000'000;
} // namespace

SyncPsJob::SyncPsJob(const JobConfig &cfg) : JobBase(cfg)
{
    fmt_ = gradientWire(/*iswitch_plane=*/false);
    ps_rx_.resize(workers_.size());
    for (auto &rx : ps_rx_)
        rx.reset(fmt_);
    for (auto &w : workers_)
        w.rx.reset(fmt_);
    ps_rng_ = sim_->forkRng();
}

void
SyncPsJob::start()
{
    cluster_.ps->setReceiveHandler(
        [this](net::PacketPtr pkt) { onPsPacket(pkt); });
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncPsJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        sim_->after(cfg_.overhead.send, [this, wp] {
            sendVector(*wp->host, cluster_.ps->ip(), kPsPort, kWorkerPort,
                       /*tos=*/0, /*transfer_id=*/wp->index,
                       wp->pending_grad, fmt_);
        });
    });
}

void
SyncPsJob::onPsPacket(const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || chunk->transfer_id >= ps_rx_.size())
        return;
    if (ps_rx_[chunk->transfer_id].offer(*chunk)) {
        if (++ps_received_ == workers_.size())
            serverAggregate();
    }
}

void
SyncPsJob::serverAggregate()
{
    // Conventional aggregation (Figure 8a): all vectors are resident
    // before the summation starts.
    ps_sum_.assign(fmt_.logical_floats, 0.0f);
    for (const auto &rx : ps_rx_) {
        const auto &v = rx.vector();
        for (std::size_t i = 0; i < ps_sum_.size(); ++i)
            ps_sum_[i] += v[i];
    }
    const double sum_bytes = static_cast<double>(fmt_.wire_bytes) *
                             static_cast<double>(workers_.size());
    const auto sum_time = static_cast<sim::TimeNs>(
        sum_bytes / cfg_.ps_sum_bytes_per_sec * 1e9);
    last_server_wu_ =
        cfg_.profile.sample(IterComponent::kWeightUpdate, ps_rng_);

    // Reset reception state for the next round before replies go out.
    for (auto &rx : ps_rx_)
        rx.reset();
    ps_received_ = 0;

    sim_->after(cfg_.overhead.recv + sum_time + last_server_wu_, [this] {
        // Unicast the aggregate to every worker; each message costs a
        // send posting, and all share the server's single link.
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            WorkerCtx *wp = &workers_[i];
            sim_->after(cfg_.overhead.send * (i + 1), [this, wp] {
                sendVector(*cluster_.ps, wp->host->ip(), kWorkerPort,
                           kPsPort, /*tos=*/0,
                           kResultXferBase + wp->index, ps_sum_, fmt_);
            });
        }
    });
}

void
SyncPsJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    if (w.rx.offer(*chunk))
        onWeightsComplete(w);
}

void
SyncPsJob::onWeightsComplete(WorkerCtx &w)
{
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        // The server's update time is part of the round but is weight
        // update, not aggregation; split the charges accordingly.
        const sim::TimeNs elapsed = sim_->now() - w.lgc_end;
        const sim::TimeNs agg =
            elapsed > last_server_wu_ ? elapsed - last_server_wu_ : 0;
        chargeAggregation(w, agg);
        w.metrics.add(IterComponent::kWeightUpdate, last_server_wu_);
        w.agent->applyAggregatedGradient(
            w.rx.vector(), static_cast<std::uint32_t>(workers_.size()));
        w.rx.reset();
        ++w.round;
        if (w.index == 0)
            noteGlobalIteration();
        beginRound(w);
    });
}

} // namespace isw::dist
