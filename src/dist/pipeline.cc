#include "dist/pipeline.hh"

#include "net/packet_pool.hh"

namespace isw::dist {

void
BypassPpp::encodeSeg(std::span<const float> logical,
                     net::ChunkPayload &chunk, int forced_qexp)
{
    (void)forced_qexp;
    ++stats_.segments;
    chunk.prec = net::Precision::kFp32;
    chunk.qexp = 0;
    chunk.values = net::PacketPool::local().acquireFloats(logical.size());
    chunk.values.assign(logical.begin(), logical.end());
}

void
Fp16Ppp::encodeSeg(std::span<const float> logical, net::ChunkPayload &chunk,
                   int forced_qexp)
{
    (void)forced_qexp;
    ++stats_.segments;
    chunk.prec = net::Precision::kFp16;
    chunk.qexp = 0;
    const std::size_t words = (logical.size() + 1) / 2;
    chunk.values = net::PacketPool::local().acquireFloats(words);
    chunk.values.resize(words);
    ml::packHalfWords(logical.data(), logical.size(), chunk.values.data());
}

void
Int32Ppp::encodeSeg(std::span<const float> logical, net::ChunkPayload &chunk,
                    int forced_qexp)
{
    ++stats_.segments;
    ml::QuantStats qs;
    const int e = forced_qexp == kAutoQexp
                      ? ml::blockExponent(logical.data(), logical.size(),
                                          headroom_, &qs)
                      : forced_qexp;
    chunk.prec = net::Precision::kInt32;
    chunk.qexp = static_cast<std::int8_t>(e);
    chunk.values = net::PacketPool::local().acquireFloats(logical.size());
    chunk.values.resize(logical.size());
    ml::encodeBlockInt32(logical.data(), logical.size(), e,
                         chunk.values.data(), &qs);
    stats_.value_clamps += qs.value_clamps;
    stats_.exp_clamps += qs.exp_clamps;
}

std::unique_ptr<PrePostProcessor>
makePrePostProcessor(net::Precision precision, std::uint32_t headroom)
{
    switch (precision) {
      case net::Precision::kFp16:
        return std::make_unique<Fp16Ppp>();
      case net::Precision::kInt32:
        return std::make_unique<Int32Ppp>(headroom);
      case net::Precision::kFp32:
      default:
        return std::make_unique<BypassPpp>();
    }
}

} // namespace isw::dist
