#include "dist/iswitch_sync.hh"

#include <algorithm>

namespace isw::dist {

SyncIswitchJob::SyncIswitchJob(const JobConfig &cfg) : JobBase(cfg)
{
    init();
}

SyncIswitchJob::SyncIswitchJob(const JobConfig &cfg,
                               const SharedWorld &world)
    : JobBase(cfg, world)
{
    init();
}

void
SyncIswitchJob::init()
{
    fmt_ = gradientWire(/*iswitch_plane=*/true);
    for (auto &w : workers_)
        w.rx.reset(fmt_);
    help_.resize(workers_.size());
    for (auto &t : help_)
        configureTimer(t);
    next_unsent_.assign(workers_.size(), 0);
    nack_streak_.assign(workers_.size(), 0);
    if (cfg_.precision == net::Precision::kInt32)
        seg_qexp_.assign(workers_.size(),
                         std::vector<std::int8_t>(fmt_.segments(),
                                                  ml::kDefaultQexp));
    // Retransmissions must be idempotent in synchronous mode. On a
    // shared fabric only our own job's traffic may be touched.
    if (jobId() == 0) {
        for (auto *leaf : cluster_.leaves)
            leaf->accelerator().setDedupeContributors(true);
        cluster_.root->accelerator().setDedupeContributors(true);
        // An HA backup aggregates the same traffic after promotion,
        // so it needs the same idempotence discipline.
        if (cluster_.backup != nullptr)
            cluster_.backup->accelerator().setDedupeContributors(true);
    } else {
        cluster_.root->accelerator().setJobDedupe(jobId(), true);
    }
}

std::uint64_t
SyncIswitchJob::segBase(const WorkerCtx &w) const
{
    // Synchronous rounds stripe the round number into the Seg index
    // (seg' = round * P + offset): distinct rounds can never mix in
    // the switch buffers, retransmissions are unambiguous, and the
    // Help cache lookup is exact. Memory stays bounded through the
    // switch's cache retention window.
    return w.round * fmt_.segments();
}

std::uint64_t
SyncIswitchJob::windowSegments() const
{
    // A window equal to the slot quota keeps every in-flight segment
    // in a distinct aggregator slot (direct-mapped seg % quota): no
    // busy drops in lossless runs. An ample quota degenerates to the
    // legacy whole-round burst.
    const std::uint64_t q = slotQuota();
    return (q == 0 || q >= fmt_.segments()) ? 0 : q;
}

void
SyncIswitchJob::start()
{
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncIswitchJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        sim_->after(cfg_.iswitch_overhead.send,
                    [this, wp] { sendGradient(*wp); });
    });
}

void
SyncIswitchJob::sendGradient(WorkerCtx &w)
{
    const net::Ipv4Addr agg = aggIpOf(w);
    const std::uint64_t window = windowSegments();
    if (window == 0) {
        sendVector(*w.host, agg, kSwitchPort, kWorkerPort,
                   net::kTosData, /*transfer_id=*/0, w.pending_grad, fmt_,
                   segBase(w), jobId(), slotQuota(), w.ppp.get(),
                   qexpSpan(w));
        next_unsent_[w.index] = fmt_.segments();
    } else {
        // Stream the first window; results self-clock the rest.
        next_unsent_[w.index] = 0;
        for (std::uint64_t seg = 0; seg < window; ++seg)
            sendOneSegment(w, seg);
        next_unsent_[w.index] = window;
    }
    WorkerCtx *wp = &w;
    help_[w.index].arm([this, wp]() -> std::size_t {
        if (stopped())
            return 0;
        return requestHelp(*wp);
    });
}

void
SyncIswitchJob::sendOneSegment(WorkerCtx &w, std::uint64_t seg)
{
    sendVectorSegment(*w.host, aggIpOf(w), kSwitchPort, kWorkerPort,
                      net::kTosData, /*transfer_id=*/0, w.pending_grad,
                      fmt_, seg, segBase(w), jobId(), slotQuota(),
                      w.ppp.get(), qexpSpan(w));
}

void
SyncIswitchJob::advanceWindow(WorkerCtx &w)
{
    const std::uint64_t window = windowSegments();
    if (window == 0)
        return;
    // Segment s+W is released only once result s arrived, so the
    // in-flight set stays within [firstMissing, firstMissing + W) and
    // every in-flight segment owns a distinct slot.
    std::uint64_t &next = next_unsent_[w.index];
    const std::uint64_t limit =
        std::min(fmt_.segments(), w.rx.firstMissing() + window);
    while (next < limit) {
        sendOneSegment(w, next);
        ++next;
    }
}

std::size_t
SyncIswitchJob::requestHelp(WorkerCtx &w)
{
    if (w.rx.complete())
        return 0;
    const net::Ipv4Addr agg = aggIpOf(w);
    // Ask the switch for each missing segment (Table 2: Help). Each
    // striped index identifies exactly one (round, offset), so a
    // cached completion can be served unambiguously. In streaming mode
    // only segments already released are eligible — the rest are not
    // lost, merely unsent.
    std::size_t n = 0;
    for (std::uint64_t seg : w.rx.missingSegments()) {
        if (seg >= next_unsent_[w.index])
            continue;
        net::ControlPayload help;
        help.action = net::Action::kHelp;
        help.has_value = true;
        help.value = core::helpValue(1, segBase(w) + seg);
        w.host->sendTo(agg, kSwitchPort, kWorkerPort,
                       net::kTosControl, help);
        ++recovery_.help_requests;
        ++n;
    }
    return n;
}

void
SyncIswitchJob::resendSegment(WorkerCtx &w, std::uint64_t seg_prime)
{
    const std::uint64_t base = segBase(w);
    if (seg_prime < base || seg_prime >= base + fmt_.segments())
        return; // not our current round: ignore
    sendOneSegment(w, seg_prime - base);
    ++recovery_.retransmits;
}

void
SyncIswitchJob::onNack(WorkerCtx &w, std::uint64_t value)
{
    if (core::segWordJob(value) != jobId())
        return;
    const std::uint64_t seg_prime = core::segWordIndex(value);
    const std::uint64_t base = segBase(w);
    if (seg_prime < base || seg_prime >= base + fmt_.segments())
        return; // stale Nack from a previous round
    // The aggregator slot was still busy with an older segment. Back
    // off with an escalating delay (the occupant completes via normal
    // aggregation or Help recovery, freeing the slot) and retry.
    const std::uint32_t streak =
        std::min<std::uint32_t>(++nack_streak_[w.index], 10);
    const sim::TimeNs delay = std::min<sim::TimeNs>(
        (50 * sim::kUsec) << streak, 100 * sim::kMsec);
    WorkerCtx *wp = &w;
    sim_->after(delay, [this, wp, seg_prime] {
        if (stopped())
            return;
        const std::uint64_t b = segBase(*wp);
        if (seg_prime < b || seg_prime >= b + fmt_.segments())
            return; // round moved on while we backed off
        if (wp->rx.hasSegment(seg_prime - b))
            return; // result arrived meanwhile
        sendOneSegment(*wp, seg_prime - b);
    });
}

std::span<const std::int8_t>
SyncIswitchJob::qexpSpan(const WorkerCtx &w) const
{
    if (seg_qexp_.empty())
        return {};
    return seg_qexp_[w.index];
}

void
SyncIswitchJob::speculateNextExponents(WorkerCtx &w)
{
    if (seg_qexp_.empty())
        return;
    // Derive round r+1's per-segment exponents from round r's decoded
    // aggregate — a pure function of the broadcast every worker holds,
    // so all H workers agree without an extra negotiation round
    // (DESIGN.md §14). Round 0 used the static default from init().
    const auto &agg = w.rx.vector();
    const std::uint64_t fps = fmt_.floatsPerSeg();
    const auto h = static_cast<std::uint32_t>(workers_.size());
    auto &exps = seg_qexp_[w.index];
    for (std::uint64_t seg = 0; seg < exps.size(); ++seg) {
        const std::uint64_t begin = seg * fps;
        if (begin >= agg.size())
            break;
        const std::uint64_t n =
            std::min<std::uint64_t>(fps, agg.size() - begin);
        exps[seg] = static_cast<std::int8_t>(
            ml::speculateExponent(agg.data() + begin, n, h));
    }
}

void
SyncIswitchJob::onPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (pkt->ip.tos == net::kTosResult) {
        if (const auto *chunk =
                std::get_if<net::ChunkPayload>(&pkt->payload)) {
            if (chunk->job != jobId())
                return; // another job's result (shared fabric)
            nack_streak_[w.index] = 0;
            const bool done = w.rx.offer(*chunk, segBase(w));
            advanceWindow(w);
            if (done)
                onResultComplete(w);
        }
    } else if (pkt->ip.tos == net::kTosControl) {
        if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
            if (c->action == net::Action::kFailover) {
                handleFailover();
            } else if (c->action == net::Action::kHelp && c->has_value) {
                // The switch relays retransmission requests when a
                // segment never completed: resend our contribution if
                // the request targets our current round.
                resendSegment(w, core::helpSeg(c->value));
            } else if (c->action == net::Action::kNack && c->has_value) {
                onNack(w, c->value);
            }
        }
    }
}

void
SyncIswitchJob::onResultComplete(WorkerCtx &w)
{
    help_[w.index].done();
    WorkerCtx *wp = &w;
    sim_->after(cfg_.iswitch_overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        chargeAggregation(w, sim_->now() - w.lgc_end);
        const sim::TimeNs wu = chargeWeightUpdate(w);
        sim_->after(wu, [this, wp] {
            WorkerCtx &w = *wp;
            w.agent->applyAggregatedGradient(
                w.rx.vector(), static_cast<std::uint32_t>(workers_.size()));
            speculateNextExponents(w);
            w.rx.reset();
            ++w.round;
            if (w.index == 0)
                noteGlobalIteration();
            beginRound(w);
        });
    });
}

} // namespace isw::dist
