#include "dist/iswitch_sync.hh"

namespace isw::dist {

SyncIswitchJob::SyncIswitchJob(const JobConfig &cfg) : JobBase(cfg)
{
    fmt_ = gradientWire(/*iswitch_plane=*/true);
    timeout_ev_.assign(workers_.size(), sim::kInvalidEventId);
    if (cfg_.cluster.edge_link.loss_prob > 0.0 ||
        cfg_.cluster.uplink.loss_prob > 0.0) {
        // Generous: several full-vector serializations plus slack.
        const double bw = cfg_.cluster.edge_link.bandwidth_bps;
        help_timeout_ = static_cast<sim::TimeNs>(
                            static_cast<double>(fmt_.wire_bytes) * 8e9 / bw) *
                            6 +
                        5 * sim::kMsec;
    }
    for (auto &w : workers_)
        w.rx.reset(fmt_);
    // Retransmissions must be idempotent in synchronous mode.
    for (auto *leaf : cluster_.leaves)
        leaf->accelerator().setDedupeContributors(true);
    cluster_.root->accelerator().setDedupeContributors(true);
}

std::uint64_t
SyncIswitchJob::segBase(const WorkerCtx &w) const
{
    // Synchronous rounds stripe the round number into the Seg index
    // (seg' = round * P + offset): distinct rounds can never mix in
    // the switch buffers, retransmissions are unambiguous, and the
    // Help cache lookup is exact. Memory stays bounded through the
    // switch's cache retention window.
    return w.round * fmt_.segments();
}

void
SyncIswitchJob::start()
{
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncIswitchJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        sim_->after(cfg_.iswitch_overhead.send,
                    [this, wp] { sendGradient(*wp); });
    });
}

void
SyncIswitchJob::sendGradient(WorkerCtx &w)
{
    auto *leaf = cluster_.leafOf(w.index);
    sendVector(*w.host, leaf->ip(), kSwitchPort, kWorkerPort, net::kTosData,
               /*transfer_id=*/0, w.pending_grad, fmt_, segBase(w));
    armHelpTimeout(w);
}

void
SyncIswitchJob::resendSegment(WorkerCtx &w, std::uint64_t seg_prime)
{
    const std::uint64_t base = segBase(w);
    if (seg_prime < base || seg_prime >= base + fmt_.segments())
        return; // not our current round: ignore
    const std::uint64_t seg = seg_prime - base;
    auto *leaf = cluster_.leafOf(w.index);
    net::ChunkPayload chunk;
    chunk.seg = seg_prime;
    chunk.wire_floats = core::floatsInSeg(seg, fmt_.wire_bytes);
    const std::uint64_t begin = seg * core::kFloatsPerSeg;
    if (begin < w.pending_grad.size()) {
        const std::uint64_t end = std::min<std::uint64_t>(
            begin + core::kFloatsPerSeg, w.pending_grad.size());
        chunk.values.assign(w.pending_grad.begin() + begin,
                            w.pending_grad.begin() + end);
    }
    w.host->sendTo(leaf->ip(), kSwitchPort, kWorkerPort, net::kTosData,
                   std::move(chunk));
}

void
SyncIswitchJob::armHelpTimeout(WorkerCtx &w)
{
    if (help_timeout_ == 0)
        return;
    sim_->events().cancel(timeout_ev_[w.index]);
    WorkerCtx *wp = &w;
    timeout_ev_[w.index] =
        sim_->after(help_timeout_, [this, wp] { onHelpTimeout(*wp); });
}

void
SyncIswitchJob::onHelpTimeout(WorkerCtx &w)
{
    if (stopped() || w.rx.complete())
        return;
    auto *leaf = cluster_.leafOf(w.index);
    // Ask the switch for each missing segment (Table 2: Help). Each
    // striped index identifies exactly one (round, offset), so a
    // cached completion can be served unambiguously.
    for (std::uint64_t seg : w.rx.missingSegments()) {
        net::ControlPayload help;
        help.action = net::Action::kHelp;
        help.has_value = true;
        help.value = core::helpValue(1, segBase(w) + seg);
        w.host->sendTo(leaf->ip(), kSwitchPort, kWorkerPort,
                       net::kTosControl, help);
    }
    armHelpTimeout(w);
}

void
SyncIswitchJob::onPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (pkt->ip.tos == net::kTosResult) {
        if (const auto *chunk =
                std::get_if<net::ChunkPayload>(&pkt->payload)) {
            if (w.rx.offer(*chunk, segBase(w)))
                onResultComplete(w);
        }
    } else if (pkt->ip.tos == net::kTosControl) {
        if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
            if (c->action == net::Action::kHelp && c->has_value) {
                // The switch relays retransmission requests when a
                // segment never completed: resend our contribution if
                // the request targets our current round.
                resendSegment(w, core::helpSeg(c->value));
            }
        }
    }
}

void
SyncIswitchJob::onResultComplete(WorkerCtx &w)
{
    sim_->events().cancel(timeout_ev_[w.index]);
    WorkerCtx *wp = &w;
    sim_->after(cfg_.iswitch_overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        chargeAggregation(w, sim_->now() - w.lgc_end);
        const sim::TimeNs wu = chargeWeightUpdate(w);
        sim_->after(wu, [this, wp] {
            WorkerCtx &w = *wp;
            w.agent->applyAggregatedGradient(
                w.rx.vector(), static_cast<std::uint32_t>(workers_.size()));
            w.rx.reset();
            ++w.round;
            if (w.index == 0)
                noteGlobalIteration();
            beginRound(w);
        });
    });
}

} // namespace isw::dist
