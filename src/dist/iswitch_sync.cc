#include "dist/iswitch_sync.hh"

namespace isw::dist {

SyncIswitchJob::SyncIswitchJob(const JobConfig &cfg) : JobBase(cfg)
{
    fmt_ = gradientWire(/*iswitch_plane=*/true);
    for (auto &w : workers_)
        w.rx.reset(fmt_);
    help_.resize(workers_.size());
    for (auto &t : help_)
        configureTimer(t);
    // Retransmissions must be idempotent in synchronous mode.
    for (auto *leaf : cluster_.leaves)
        leaf->accelerator().setDedupeContributors(true);
    cluster_.root->accelerator().setDedupeContributors(true);
}

std::uint64_t
SyncIswitchJob::segBase(const WorkerCtx &w) const
{
    // Synchronous rounds stripe the round number into the Seg index
    // (seg' = round * P + offset): distinct rounds can never mix in
    // the switch buffers, retransmissions are unambiguous, and the
    // Help cache lookup is exact. Memory stays bounded through the
    // switch's cache retention window.
    return w.round * fmt_.segments();
}

void
SyncIswitchJob::start()
{
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncIswitchJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        sim_->after(cfg_.iswitch_overhead.send,
                    [this, wp] { sendGradient(*wp); });
    });
}

void
SyncIswitchJob::sendGradient(WorkerCtx &w)
{
    auto *leaf = cluster_.leafOf(w.index);
    sendVector(*w.host, leaf->ip(), kSwitchPort, kWorkerPort, net::kTosData,
               /*transfer_id=*/0, w.pending_grad, fmt_, segBase(w));
    WorkerCtx *wp = &w;
    help_[w.index].arm([this, wp]() -> std::size_t {
        if (stopped())
            return 0;
        return requestHelp(*wp);
    });
}

std::size_t
SyncIswitchJob::requestHelp(WorkerCtx &w)
{
    if (w.rx.complete())
        return 0;
    auto *leaf = cluster_.leafOf(w.index);
    // Ask the switch for each missing segment (Table 2: Help). Each
    // striped index identifies exactly one (round, offset), so a
    // cached completion can be served unambiguously.
    std::size_t n = 0;
    for (std::uint64_t seg : w.rx.missingSegments()) {
        net::ControlPayload help;
        help.action = net::Action::kHelp;
        help.has_value = true;
        help.value = core::helpValue(1, segBase(w) + seg);
        w.host->sendTo(leaf->ip(), kSwitchPort, kWorkerPort,
                       net::kTosControl, help);
        ++recovery_.help_requests;
        ++n;
    }
    return n;
}

void
SyncIswitchJob::resendSegment(WorkerCtx &w, std::uint64_t seg_prime)
{
    const std::uint64_t base = segBase(w);
    if (seg_prime < base || seg_prime >= base + fmt_.segments())
        return; // not our current round: ignore
    auto *leaf = cluster_.leafOf(w.index);
    sendVectorSegment(*w.host, leaf->ip(), kSwitchPort, kWorkerPort,
                      net::kTosData, /*transfer_id=*/0, w.pending_grad,
                      fmt_, seg_prime - base, base);
    ++recovery_.retransmits;
}

void
SyncIswitchJob::onPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (pkt->ip.tos == net::kTosResult) {
        if (const auto *chunk =
                std::get_if<net::ChunkPayload>(&pkt->payload)) {
            if (w.rx.offer(*chunk, segBase(w)))
                onResultComplete(w);
        }
    } else if (pkt->ip.tos == net::kTosControl) {
        if (const auto *c = std::get_if<net::ControlPayload>(&pkt->payload)) {
            if (c->action == net::Action::kHelp && c->has_value) {
                // The switch relays retransmission requests when a
                // segment never completed: resend our contribution if
                // the request targets our current round.
                resendSegment(w, core::helpSeg(c->value));
            }
        }
    }
}

void
SyncIswitchJob::onResultComplete(WorkerCtx &w)
{
    help_[w.index].done();
    WorkerCtx *wp = &w;
    sim_->after(cfg_.iswitch_overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        chargeAggregation(w, sim_->now() - w.lgc_end);
        const sim::TimeNs wu = chargeWeightUpdate(w);
        sim_->after(wu, [this, wp] {
            WorkerCtx &w = *wp;
            w.agent->applyAggregatedGradient(
                w.rx.vector(), static_cast<std::uint32_t>(workers_.size()));
            w.rx.reset();
            ++w.round;
            if (w.index == 0)
                noteGlobalIteration();
            beginRound(w);
        });
    });
}

} // namespace isw::dist
