/**
 * @file
 * Synchronous parameter-server training (paper Figure 1a), the PS
 * baseline: workers unicast full gradient vectors to a central server;
 * the server waits for *complete* vectors from every worker before
 * summing (conventional aggregation, Figure 8a), performs the weight
 * update, and unicasts the result back to each worker over its single
 * link — the central bottleneck the paper measures.
 *
 * Logically the server returns the aggregated gradient and workers run
 * identical local optimizer replicas; this is mathematically the same
 * as shipping updated weights (same bytes on the wire) and keeps the
 * three synchronous strategies bit-comparable.
 */

#ifndef ISW_DIST_PS_SYNC_HH
#define ISW_DIST_PS_SYNC_HH

#include <deque>

#include "dist/strategy.hh"

namespace isw::dist {

/** Sync PS job (PS rows of Tables 3/4). */
class SyncPsJob : public JobBase
{
  public:
    explicit SyncPsJob(const JobConfig &cfg);

  protected:
    void start() override;

  private:
    void beginRound(WorkerCtx &w);
    void onPsPacket(const net::PacketPtr &pkt);
    void onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt);
    void serverAggregate();
    void onWeightsComplete(WorkerCtx &w);

    WireFormat fmt_;
    std::vector<VectorAssembler> ps_rx_; ///< per-worker gradient streams
    std::size_t ps_received_ = 0;
    std::uint64_t srv_round_ = 0; ///< round the server is collecting
    ml::Vec ps_sum_;
    sim::TimeNs last_server_wu_ = 0;
    sim::Rng ps_rng_;
    /** The server's own pipeline stage for result sends (workers use
     *  their per-WorkerCtx processors; endpoint strategies pick each
     *  chunk's exponent from the data, headroom 1). */
    std::unique_ptr<PrePostProcessor> srv_ppp_;
    /** Per-worker loss-recovery timers (uplink / downlink). Deque:
     *  RetxTimer is address-pinned (its pending event captures this). */
    std::deque<RetxTimer> grad_retx_;
    std::deque<RetxTimer> result_retx_;
};

} // namespace isw::dist

#endif // ISW_DIST_PS_SYNC_HH
