/**
 * @file
 * Multi-job switch sharing (DESIGN.md §11): admit several independent
 * training jobs onto ONE programmable switch, partition the bounded
 * aggregator slot pool between them, and drive them concurrently on a
 * single Simulation.
 *
 * Each job gets a contiguous slice of the fabric's worker hosts, a
 * nonzero job id (1..K — id 0 stays the legacy/owned-world tag), and
 * a share of the switch's aggregator slots proportional to its tensor
 * segment count (min one slot per job). The scheduler reports per-job
 * RunResults plus fabric-level fairness, contention, and
 * aggregate-throughput counters.
 */

#ifndef ISW_DIST_MULTIJOB_HH
#define ISW_DIST_MULTIJOB_HH

#include <map>
#include <string>
#include <vector>

#include "dist/strategy.hh"

namespace isw::dist {

/** A shared-switch schedule: K jobs on one star fabric. */
struct MultiJobConfig
{
    /**
     * The co-scheduled jobs (iSwitch strategies only — PS/AllReduce
     * never touch the aggregation plane). Each entry's num_workers
     * claims that many hosts on the shared fabric; per-job faults and
     * tree clusters are owned-world features and are rejected.
     */
    std::vector<JobConfig> jobs;
    /**
     * Shared-fabric knobs (links + switch + accelerator). num_workers,
     * worker_jobs, and with_ps are derived from `jobs` and ignored.
     * accel.num_slots > 0 bounds the aggregator pool; it is split
     * between the jobs proportionally to their tensor segment counts
     * (largest-remainder apportionment, at least one slot each, every
     * slot assigned), so it must be at least K.
     */
    ClusterConfig fabric;
    std::uint64_t seed = 1;
};

/** What runSharedJobs returns: per-job results + fabric metrics. */
struct MultiJobResult
{
    std::vector<RunResult> jobs;
    /**
     * Fabric-level metrics (deterministic, same spirit as
     * RunResult::extras): "jobs", "jain_fairness",
     * "aggregate_iterations_per_sec", "slot_capacity",
     * "slot_contention_events", "slot_stale_drops", "slot_busy_drops",
     * "slot_unadmitted", "slot_reclaimed".
     */
    std::map<std::string, double> fabric;
};

/**
 * Build the shared fabric, partition the slot pool, run every job to
 * its own stop condition on one Simulation, and collect results.
 * Throws std::invalid_argument on an inadmissible schedule (no jobs,
 * more jobs than slots, a non-iSwitch strategy, an async job whose
 * quota cannot cover its tensor, ...).
 */
MultiJobResult runSharedJobs(const MultiJobConfig &cfg);

} // namespace isw::dist

#endif // ISW_DIST_MULTIJOB_HH
