#include "dist/strategy.hh"

#include <chrono>
#include <stdexcept>

#include "dist/allreduce.hh"
#include "dist/iswitch_async.hh"
#include "dist/iswitch_sync.hh"
#include "dist/ps_async.hh"
#include "dist/ps_sharded.hh"
#include "dist/ps_sync.hh"
#include "net/packet_pool.hh"

namespace isw::dist {

const char *
strategyName(StrategyKind k)
{
    switch (k) {
      case StrategyKind::kSyncPs: return "PS";
      case StrategyKind::kSyncAllReduce: return "AR";
      case StrategyKind::kSyncIswitch: return "iSW";
      case StrategyKind::kAsyncPs: return "Async PS";
      case StrategyKind::kAsyncIswitch: return "Async iSW";
      case StrategyKind::kSyncShardedPs: return "Sharded PS";
    }
    return "?";
}

bool
isAsyncStrategy(StrategyKind k)
{
    return k == StrategyKind::kAsyncPs || k == StrategyKind::kAsyncIswitch;
}

JobConfig
JobConfig::forBenchmark(rl::Algo algo, StrategyKind strategy,
                        std::size_t num_workers)
{
    const rl::BenchmarkSpec &spec = rl::specFor(algo);
    JobConfig cfg;
    cfg.algo = algo;
    cfg.strategy = strategy;
    cfg.num_workers = num_workers;
    cfg.agent = spec.config;
    cfg.wire_model_bytes = spec.paper_model_bytes;
    cfg.profile = profileFor(algo);
    return cfg;
}

JobBase::JobBase(const JobConfig &cfg) : cfg_(cfg)
{
    if (cfg_.num_workers == 0)
        throw std::invalid_argument("JobBase: zero workers");
    if (cfg_.cluster.accel.num_slots > 0 &&
        (cfg_.use_tree || cfg_.use_fat_tree))
        throw std::invalid_argument(
            "JobBase: bounded slot pools are star-cluster only (the "
            "hierarchical path has no slot-aware upward flow yet)");
    owned_sim_ = std::make_unique<sim::Simulation>(cfg_.seed);
    sim_ = owned_sim_.get();
    slot_quota_ =
        static_cast<std::uint32_t>(cfg_.cluster.accel.num_slots);

    ClusterConfig ccfg = cfg_.cluster;
    ccfg.num_workers = cfg_.num_workers;
    ccfg.with_ps = cfg_.strategy == StrategyKind::kSyncPs ||
                   cfg_.strategy == StrategyKind::kAsyncPs ||
                   cfg_.strategy == StrategyKind::kSyncShardedPs;
    ccfg.ps_shards = cfg_.strategy == StrategyKind::kSyncShardedPs
                         ? std::max<std::size_t>(cfg_.ps_shards, 1)
                         : 1;
    cluster_ = cfg_.use_fat_tree ? buildFatTreeCluster(*sim_, ccfg)
               : cfg_.use_tree   ? buildTreeCluster(*sim_, ccfg)
                                 : buildStarCluster(*sim_, ccfg);
    if (cfg_.shard)
        enableSharding();

    initWorkers();
    installFaults();
    resolveRetx();
}

JobBase::JobBase(const JobConfig &cfg, const SharedWorld &world) : cfg_(cfg)
{
    if (cfg_.num_workers == 0)
        throw std::invalid_argument("JobBase: zero workers");
    if (world.sim == nullptr || world.fabric == nullptr)
        throw std::invalid_argument("JobBase: incomplete SharedWorld");
    if (!cfg_.faults.empty())
        throw std::invalid_argument(
            "JobBase: fault plans are owned-world only");
    if (cfg_.use_tree || cfg_.use_fat_tree)
        throw std::invalid_argument(
            "JobBase: shared fabrics are star clusters");
    if (cfg_.shard)
        throw std::invalid_argument(
            "JobBase: sharded execution is owned-world only (shared "
            "fabrics are single-switch stars with nothing to shard)");
    if (world.worker_offset + cfg_.num_workers >
        world.fabric->workers.size())
        throw std::invalid_argument(
            "JobBase: worker slice exceeds the shared fabric");
    sim_ = world.sim;
    job_id_ = world.job_id;
    slot_quota_ = world.slot_quota;

    // View of the shared fabric: our worker slice, everyone's switches.
    cluster_.workers.assign(
        world.fabric->workers.begin() +
            static_cast<std::ptrdiff_t>(world.worker_offset),
        world.fabric->workers.begin() +
            static_cast<std::ptrdiff_t>(world.worker_offset +
                                        cfg_.num_workers));
    cluster_.leaves = world.fabric->leaves;
    cluster_.root = world.fabric->root;
    cluster_.workersPerRack = 0; // star: every worker hangs off root

    initWorkers();
    resolveRetx();
}

JobBase::~JobBase()
{
    // An async run can stop with deliveries still queued, and a queued
    // event's packet recycles into its sealing domain's pool when the
    // engine's queues unwind. Drop the simulation first so those
    // recycles land in still-live `domain_pools_` (member order would
    // destroy the pools before `owned_sim_`).
    sim_ = nullptr;
    owned_sim_.reset();
}

void
JobBase::initWorkers()
{
    workers_.resize(cfg_.num_workers);
    published_.resize(cfg_.num_workers);
    for (std::size_t i = 0; i < cfg_.num_workers; ++i) {
        WorkerCtx &w = workers_[i];
        w.index = i;
        w.host = cluster_.workers.at(i);
        // Same weight seed on every worker (identical initial model);
        // unique env/exploration seed per worker.
        w.agent = rl::makeAgent(cfg_.algo, cfg_.agent,
                                /*weight_seed=*/cfg_.seed * 7919 + 17,
                                /*env_seed=*/cfg_.seed * 104729 + 31 + i);
        w.rng = sim_->forkRng();
        w.ppp = makePipeline();
        publishWorker(w);
    }
}

void
JobBase::enableSharding()
{
    if (cluster_.sim_domains < 2)
        throw std::invalid_argument(
            "JobBase: sharding needs a multi-rack tree/fat-tree cluster "
            "(set use_tree or use_fat_tree with num_workers > per_rack)");
    sim::ShardPlan plan;
    plan.domains = cluster_.sim_domains;
    plan.lookahead = std::max<sim::TimeNs>(cluster_.domain_lookahead, 1);
    plan.threads = cfg_.shard_threads;
    sim_->shard(plan);
    // One PacketPool per domain: every seal/recycle inside a window
    // touches only the executing domain's free lists.
    domain_pools_.resize(plan.domains);
    sim_->engine()->setDomainHooks(
        [this](sim::DomainId d) {
            net::PacketPool::setLocalOverride(&domain_pools_[d]);
        },
        [](sim::DomainId) { net::PacketPool::setLocalOverride(nullptr); });
    // Async staleness snapshots publish at window barriers (the lambda
    // runs after construction, so the virtual dispatch reaches the
    // subclass override).
    sim_->engine()->setBarrierHook([this] { onShardBarrier(); });
}

void
JobBase::inDomainOf(const net::Node *n, std::function<void()> fn)
{
    if (!crossDomainFabric()) {
        fn(); // star / single-domain: legacy inline path, bit for bit
        return;
    }
    sim_->atInDomain(n->domain(), sim_->now() + domainHopDelay(),
                     std::move(fn));
}

void
JobBase::deferDone(RetxTimer &t, const net::Node *home)
{
    if (!recovery_on_ || !crossDomainFabric()) {
        t.done(); // no-op when unconfigured: zero events either way
        return;
    }
    sim_->atInDomain(home->domain(), sim_->now() + domainHopDelay(),
                     [&t] { t.done(); });
}

void
JobBase::publishWorker(const WorkerCtx &w)
{
    PublishedWorker &p = published_[w.index];
    p.reward.store(w.agent->avgEpisodeReward(10), std::memory_order_relaxed);
    p.episodes.store(w.agent->episodesCompleted(),
                     std::memory_order_relaxed);
}

net::PacketPool::Stats
JobBase::pooledPacketStats() const
{
    net::PacketPool::Stats s = net::PacketPool::local().stats();
    for (const net::PacketPool &p : domain_pools_) {
        const net::PacketPool::Stats d = p.stats();
        s.sealed += d.sealed;
        s.packet_allocs += d.packet_allocs;
        s.packet_reuses += d.packet_reuses;
        s.float_allocs += d.float_allocs;
        s.float_reuses += d.float_reuses;
    }
    return s;
}

void
JobBase::resolveRetx()
{
    retx_ = cfg_.retx;
    if (retx_.timeout == 0) {
        // Auto timeout: the PS return path unicasts one full vector
        // per worker over a single link, so a transfer can legally sit
        // behind ~N serializations plus host overheads; pad generously
        // (spurious firings are dedupe-safe but waste traffic).
        const double bw = cfg_.cluster.edge_link.bandwidth_bps;
        const auto serial = static_cast<sim::TimeNs>(
            static_cast<double>(gradientWire(false).wire_bytes) * 8e9 / bw);
        retx_.timeout =
            serial * static_cast<sim::TimeNs>(cfg_.num_workers + 2) +
            2 * (cfg_.overhead.send + cfg_.overhead.recv) + 5 * sim::kMsec;
    }
    recovery_on_ = lossyEnv() && retx_.max_retries > 0;
}

bool
JobBase::lossyEnv() const
{
    return cfg_.cluster.edge_link.loss_prob > 0.0 ||
           cfg_.cluster.uplink.loss_prob > 0.0 || !cfg_.faults.empty();
}

void
JobBase::installFaults()
{
    if (cfg_.faults.empty())
        return;
    // The injector draws from a private RNG tree (seed ^ salt), never
    // from sim_->forkRng(): attaching a plan must not shift the
    // stream ids of workers or links vs. the lossless run.
    injector_ = std::make_unique<net::FaultInjector>(*sim_, cfg_.faults,
                                                     cfg_.seed);
    for (std::size_t i = 0; i < workers_.size(); ++i)
        injector_->attach(i, *cluster_.workers[i]->link(0));
    if (cfg_.faults.hasSwitchFaults())
        for (net::Link *l : cluster_.primary_links)
            injector_->attachSwitchLink(*l);

    for (const net::WorkerCrash &c : cfg_.faults.crashes) {
        if (!c.announce || c.worker >= workers_.size())
            continue;
        net::Host *h = cluster_.workers[c.worker];
        core::ProgrammableSwitch *leaf = cluster_.leafOf(c.worker);
        // The Leave departs at the crash instant, inside the injector's
        // grace window, driving the real membership/auto-H machinery;
        // the Join goes out the moment the link is back up. Anchored in
        // the host's home domain: the send must execute on the domain
        // thread owning the host's NIC queues, and the resulting
        // membership update then rides the ordinary mailbox path to the
        // fabric domain. Serial engines ignore the domain.
        sim_->atInDomain(h->domain(), c.crash_at, [h, leaf] {
            net::ControlPayload leave;
            leave.action = net::Action::kLeave;
            h->sendTo(leaf->ip(), kSwitchPort, kWorkerPort,
                      net::kTosControl, leave);
        });
        if (c.rejoin_at == 0)
            continue; // permanent fail-stop: the worker never rejoins
        sim_->atInDomain(h->domain(), c.rejoin_at, [h, leaf] {
            net::ControlPayload join;
            join.action = net::Action::kJoin;
            join.has_value = true;
            join.value = core::encodeJoinValue(kWorkerPort,
                                               core::MemberType::kWorker);
            h->sendTo(leaf->ip(), kSwitchPort, kWorkerPort,
                      net::kTosControl, join);
        });
    }
}

void
JobBase::scheduleHaTick()
{
    if (cluster_.backup == nullptr)
        return;
    const sim::TimeNs period =
        std::max<sim::TimeNs>(cfg_.cluster.ha.heartbeat_period, 1);
    // Root and backup both live in domain 0 on every fabric.
    sim_->atInDomain(0, sim_->now() + period, [this] { haTick(); });
}

void
JobBase::haTick()
{
    if (stopped_)
        return; // let the queue drain once the run is over
    // A promoted backup is authoritative and fail-stop: stop beating
    // the old primary so a rejoined one cannot stream stale state.
    if (!cluster_.backup->haPromoted())
        cluster_.root->haBeat();
    cluster_.backup->haCheckPeer();
    scheduleHaTick();
}

net::Ipv4Addr
JobBase::aggIpOf(const WorkerCtx &w) const
{
    core::ProgrammableSwitch *leaf = cluster_.leafOf(w.index);
    if (leaf == cluster_.root && cluster_.backup != nullptr &&
        ha_failed_over_.load(std::memory_order_relaxed))
        return cluster_.backup->ip();
    return leaf->ip();
}

bool
JobBase::checkFailoverFrame(const net::PacketPtr &pkt)
{
    if (pkt->ip.tos != net::kTosControl)
        return false;
    const auto *c = std::get_if<net::ControlPayload>(&pkt->payload);
    if (c == nullptr || c->action != net::Action::kFailover)
        return false;
    handleFailover();
    return true;
}

void
JobBase::handleFailover()
{
    if (ha_failed_over_.exchange(true, std::memory_order_relaxed))
        return;
    if (cluster_.workersPerRack == 0) {
        // Star fabric: every dual-homed host (workers and PS shards
        // alike — the PS is not an aggregation member, so it never
        // sees the kFailover broadcast itself) flips to the backup
        // NIC. Single-domain, so flipping them all here is safe.
        for (net::Host *h : cluster_.workers)
            h->setActiveUplink(1);
        for (net::Host *h : cluster_.ps_shards)
            h->setActiveUplink(1);
    }
}

rl::Agent &
JobBase::workerAgent(std::size_t i)
{
    return *workers_.at(i).agent;
}

WireFormat
JobBase::gradientWire(bool iswitch_plane) const
{
    return gradientWire(iswitch_plane, cfg_.precision);
}

WireFormat
JobBase::gradientWire(bool iswitch_plane, net::Precision precision) const
{
    const std::uint64_t logical = workers_.front().agent->paramCount();
    std::uint64_t wire =
        cfg_.wire_model_bytes == 0
            ? WireFormat::minWireBytes(precision, logical)
            : cfg_.wire_model_bytes;
    // A paper-sized wire model counts fp32 words; packed halves carry
    // it in half the bytes (int32 words are the same width as fp32).
    if (cfg_.wire_model_bytes != 0 && precision == net::Precision::kFp16)
        wire /= 2;
    return WireFormat::forVector(logical, wire, iswitch_plane, precision);
}

void
JobBase::scheduleLgc(WorkerCtx &w, std::function<void()> done)
{
    // Snapshot semantics: the gradient is computed against the weights
    // as of LGC start; the result becomes visible when the stage's
    // simulated duration elapses.
    const ml::Vec &g = w.agent->computeGradient();
    w.pending_grad.assign(g.begin(), g.end());
    publishWorker(w); // episode state may have advanced during compute

    // Straggler injection: a slowed worker's compute stretches
    // uniformly (and the stretched time is what its metrics record).
    const double scale =
        injector_ ? injector_->computeScale(w.index, sim_->now()) : 1.0;
    const auto stretch = [scale](sim::TimeNs d) {
        return scale == 1.0
                   ? d
                   : static_cast<sim::TimeNs>(static_cast<double>(d) * scale);
    };

    sim::TimeNs total = 0;
    for (std::size_t c = 0; c < kNumComponents; ++c) {
        const auto comp = static_cast<IterComponent>(c);
        if (!isLgcComponent(comp))
            continue;
        const sim::TimeNs dur = stretch(cfg_.profile.sample(comp, w.rng));
        w.metrics.add(comp, dur);
        total += dur;
    }
    // "Others" is measured as part of the local stage in Figure 4.
    const sim::TimeNs oth =
        stretch(cfg_.profile.sample(IterComponent::kOthers, w.rng));
    w.metrics.add(IterComponent::kOthers, oth);
    total += oth;

    WorkerCtx *wp = &w;
    // Anchor the completion in the worker's rack domain: round 0 is
    // scheduled from the setup thread (no domain context), and this
    // pins each worker's whole event chain to its own domain under
    // sharding. Serial engines ignore the domain, so timing and order
    // are exactly the old after(total, ...).
    sim_->atInDomain(wp->host->domain(), sim_->now() + total,
                     [wp, done = std::move(done)] {
                         wp->lgc_end = wp->host->simulation().now();
                         done();
                     });
}

sim::TimeNs
JobBase::chargeWeightUpdate(WorkerCtx &w)
{
    const sim::TimeNs dur =
        cfg_.profile.sample(IterComponent::kWeightUpdate, w.rng);
    w.metrics.add(IterComponent::kWeightUpdate, dur);
    return dur;
}

double
JobBase::clusterAvgReward() const
{
    // Published snapshots, not live agents: equal at every event
    // boundary (workers republish whenever episode state changes) and
    // safe to read from another domain's thread in sharded runs.
    double sum = 0.0;
    for (const PublishedWorker &p : published_)
        sum += p.reward.load(std::memory_order_relaxed);
    return sum / static_cast<double>(published_.size());
}

std::uint64_t
JobBase::totalEpisodes() const
{
    std::uint64_t n = 0;
    for (const PublishedWorker &p : published_)
        n += p.episodes.load(std::memory_order_relaxed);
    return n;
}

void
JobBase::noteGlobalIteration()
{
    ++global_iters_;
    last_update_time_ = sim_->now();
    if (global_iters_ % cfg_.curve_every == 0)
        curve_.record(sim_->now(), clusterAvgReward());
    checkStop();
}

void
JobBase::checkStop()
{
    if (stopped_)
        return;
    if (global_iters_ >= cfg_.stop.max_iterations) {
        stopped_ = true;
        return;
    }
    if (cfg_.stop.hasTarget() && totalEpisodes() >= cfg_.stop.min_episodes &&
        clusterAvgReward() >= cfg_.stop.target_reward) {
        stopped_ = true;
        reached_target_ = true;
    }
}

void
JobBase::beginRun()
{
    // Serial jobs run wholly on the calling thread; sharded jobs spread
    // over per-domain pools. Either way the summed counter deltas are
    // exactly this job's traffic (for shared fabrics: the fabric's
    // traffic since this job began).
    const net::PacketPool::Stats pool0 = pooledPacketStats();
    run_pool_sealed0_ = pool0.sealed;
    run_pool_pallocs0_ = pool0.packet_allocs;
    run_pool_fallocs0_ = pool0.float_allocs;
    run_pool_preuse0_ = pool0.packet_reuses;
    run_pool_freuse0_ = pool0.float_reuses;
    run_events0_ = sim_->eventsExecuted();
    run_t0_ = std::chrono::steady_clock::now();
    start();
    scheduleHaTick();
}

RunResult
JobBase::run()
{
    beginRun();
    // Generous runaway guard: every iteration costs a bounded number
    // of events (packets dominate), with extra headroom for loss
    // recovery retransmissions.
    const std::size_t guard =
        (cfg_.stop.max_iterations + 10) * cfg_.num_workers *
        (gradientWire(false).segments() * 64 + 4096);
    std::string error;
    if (cfg_.stop.max_sim_time > 0) {
        sim_->runUntil(cfg_.stop.max_sim_time);
        if (!stopped_ && !sim_->queueEmpty())
            error = "watchdog: no stop condition met by max_sim_time (" +
                    std::to_string(global_iters_) + "/" +
                    std::to_string(cfg_.stop.max_iterations) +
                    " iterations)";
    } else {
        sim_->run(guard);
        if (!sim_->queueEmpty())
            error = "event guard exhausted: runaway event loop after " +
                    std::to_string(global_iters_) + " iterations";
    }
    if (error.empty() && !stopped_)
        error = "stalled: event queue drained after " +
                std::to_string(global_iters_) + "/" +
                std::to_string(cfg_.stop.max_iterations) +
                " iterations (lost traffic never recovered?)";
    return finishRun(std::move(error));
}

RunResult
JobBase::finishRun(std::string error)
{
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      run_t0_)
            .count();
    const net::PacketPool::Stats pool1 = pooledPacketStats();
    const auto events =
        static_cast<double>(sim_->eventsExecuted() - run_events0_);
    const auto sealed =
        static_cast<double>(pool1.sealed - run_pool_sealed0_);

    RunResult res;
    res.error = std::move(error);
    res.iterations = global_iters_;
    res.total_time = last_update_time_;
    res.final_avg_reward = clusterAvgReward();
    res.reached_target = reached_target_;
    res.breakdown = workers_.front().metrics;
    res.reward_curve = curve_;
    // Deterministic counts: identical serial vs parallel, so they are
    // safe in extras (which resultToJson serializes and the runner
    // parity test compares byte-for-byte).
    res.extras["events_executed"] = events;
    res.extras["packets_sealed"] = sealed;
    // Wall-clock / pool-warmth dependent rates live in perf only.
    if (wall_s > 0.0) {
        res.perf["events_per_sec"] = events / wall_s;
        res.perf["packets_per_sec"] = sealed / wall_s;
    }
    const auto fresh_allocs =
        static_cast<double>((pool1.packet_allocs - run_pool_pallocs0_) +
                            (pool1.float_allocs - run_pool_fallocs0_));
    res.perf["pool_allocs"] = fresh_allocs;
    res.perf["pool_reuses"] =
        static_cast<double>((pool1.packet_reuses - run_pool_preuse0_) +
                            (pool1.float_reuses - run_pool_freuse0_));
    if (global_iters_ > 0)
        res.perf["allocs_per_iteration"] =
            fresh_allocs / static_cast<double>(global_iters_);
    // Sharded-engine loop counters. The window/skip/batch counts are
    // deterministic, but they describe the engine, not the experiment,
    // and mailbox contention is genuinely scheduling-dependent — so
    // all of them live in perf (excluded from resultToJson).
    if (sim_->sharded()) {
        const sim::ShardedEngine &eng = *sim_->engine();
        res.perf["shard_windows"] = static_cast<double>(eng.windows());
        res.perf["shard_windows_serial"] =
            static_cast<double>(eng.windowsSerialFastPath());
        res.perf["shard_domains_skipped"] =
            static_cast<double>(eng.domainsSkipped());
        res.perf["shard_cross_events"] =
            static_cast<double>(eng.crossEvents());
        res.perf["shard_cross_batches"] =
            static_cast<double>(eng.crossBatches());
        res.perf["shard_mailbox_contention"] =
            static_cast<double>(eng.mailboxContention());
    }
    collectExtras(res);
    return res;
}

void
JobBase::collectExtras(RunResult &res) const
{
    if (cluster_.root != nullptr) {
        const auto &pool = cluster_.root->accelerator().pool();
        res.extras["peak_active_segments"] =
            static_cast<double>(pool.peakActiveSegments());
        res.extras["cached_results"] =
            static_cast<double>(cluster_.root->cachedResults());
        // Slot-pool observability. Gated on the pool actually being
        // shared or contended so a single-job bounded run with an
        // ample pool reports the exact legacy key set (byte-identity
        // of lossless reports).
        if (pool.bounded() &&
            (pool.partitioned() || pool.contentionEvents() > 0)) {
            res.extras["slot_capacity"] =
                static_cast<double>(pool.capacity());
            res.extras["slot_quota"] =
                static_cast<double>(pool.quotaFor(job_id_));
            const core::SlotPoolStats js = pool.jobStats(job_id_);
            res.extras["slot_accepted"] =
                static_cast<double>(js.accepted);
            res.extras["slot_completed"] =
                static_cast<double>(js.completed);
            res.extras["slot_stale_drops"] =
                static_cast<double>(js.stale_drops);
            res.extras["slot_busy_drops"] =
                static_cast<double>(js.busy_drops);
            res.extras["slot_unadmitted"] =
                static_cast<double>(js.unadmitted);
            res.extras["slot_reclaimed"] =
                static_cast<double>(js.reclaimed);
            res.extras["slot_contention_events"] =
                static_cast<double>(pool.contentionEvents());
        }
    }
    // Recovery/fault observability. Gated so lossless runs emit the
    // exact pre-existing key set (BENCH_*.json byte-identity).
    if (recovery_on_) {
        const RecoveryStats &r = recovery_;
        res.extras["retx_timeouts"] = static_cast<double>(r.timeouts);
        res.extras["retx_segments"] = static_cast<double>(r.retransmits);
        res.extras["help_requests"] = static_cast<double>(r.help_requests);
        res.extras["fbcasts"] = static_cast<double>(r.fbcasts);
        res.extras["recoveries"] = static_cast<double>(r.recoveries);
        res.extras["retx_gave_up"] = static_cast<double>(r.gave_up);
        res.extras["recovery_latency_ms_total"] =
            sim::toMillis(r.latency_total);
        res.extras["recovery_latency_ms_max"] = sim::toMillis(r.latency_max);
        static const char *const kHistKeys[6] = {
            "recovery_hist_lt1ms",   "recovery_hist_lt4ms",
            "recovery_hist_lt16ms",  "recovery_hist_lt64ms",
            "recovery_hist_lt256ms", "recovery_hist_ge256ms",
        };
        for (std::size_t b = 0; b < r.latency_hist.size(); ++b)
            res.extras[kHistKeys[b]] =
                static_cast<double>(r.latency_hist[b]);
    }
    // Quantization observability. Gated on a quantized precision so
    // fp32 (bypass) runs emit the exact legacy key set.
    if (cfg_.precision != net::Precision::kFp32) {
        PipelineStats p;
        for (const WorkerCtx &w : workers_) {
            if (w.ppp == nullptr)
                continue;
            p.segments += w.ppp->stats().segments;
            p.value_clamps += w.ppp->stats().value_clamps;
            p.exp_clamps += w.ppp->stats().exp_clamps;
        }
        res.extras["pipeline_segments"] = static_cast<double>(p.segments);
        res.extras["quant_value_clamps"] =
            static_cast<double>(p.value_clamps);
        res.extras["quant_exp_clamps"] = static_cast<double>(p.exp_clamps);
        if (cluster_.root != nullptr) {
            // Integer-datapath counters summed over every aggregating
            // switch (a star's root is also leaves.front(); count each
            // switch once).
            core::SlotPoolStats sw;
            const auto fold = [&sw](core::ProgrammableSwitch *s) {
                const core::SlotPoolStats t =
                    s->accelerator().pool().totals();
                sw.overflow_clamps += t.overflow_clamps;
                sw.exp_rescales += t.exp_rescales;
            };
            fold(cluster_.root);
            for (core::ProgrammableSwitch *leaf : cluster_.leaves)
                if (leaf != cluster_.root)
                    fold(leaf);
            for (core::ProgrammableSwitch *agg : cluster_.aggs)
                if (agg != cluster_.root)
                    fold(agg);
            res.extras["switch_overflow_clamps"] =
                static_cast<double>(sw.overflow_clamps);
            res.extras["switch_exp_rescales"] =
                static_cast<double>(sw.exp_rescales);
        }
    }
    if (injector_ != nullptr) {
        const net::FaultStats &f = injector_->stats();
        res.extras["fault_ge_drops"] = static_cast<double>(f.ge_drops);
        res.extras["fault_iid_drops"] = static_cast<double>(f.iid_drops);
        res.extras["fault_down_drops"] = static_cast<double>(f.down_drops);
        res.extras["fault_duplicates"] = static_cast<double>(f.duplicates);
        res.extras["fault_reorders"] = static_cast<double>(f.reorders);
        // Switch-fault counters only when the plan schedules switch
        // faults: plans without them keep the exact legacy key set.
        if (cfg_.faults.hasSwitchFaults()) {
            res.extras["fault_switch_drops"] =
                static_cast<double>(f.switch_drops);
            res.extras["fault_partition_drops"] =
                static_cast<double>(f.partition_drops);
        }
    }
    // HA observability, strictly conditional on a backup existing so
    // every pre-HA report keeps its exact key set.
    if (cluster_.backup != nullptr) {
        const core::ProgrammableSwitch &bk = *cluster_.backup;
        res.extras["failover_events"] = bk.haPromoted() ? 1.0 : 0.0;
        res.extras["failover_heartbeats"] =
            static_cast<double>(bk.haMonitor().beats());
        res.extras["failover_beats_missed"] =
            static_cast<double>(bk.haMonitor().missed());
        res.extras["failover_promote_ms"] =
            bk.haPromoted() ? sim::toMillis(bk.haPromoteTime()) : 0.0;
        if (const core::ReplicatedAccelerator *r =
                cluster_.root->replication()) {
            const core::ReplicationStats &rs = r->stats();
            res.extras["failover_repl_frames"] = static_cast<double>(
                rs.state_frames + rs.result_frames + rs.member_frames);
            res.extras["failover_repl_results"] =
                static_cast<double>(rs.result_frames);
        }
        res.extras["failover_repl_applied"] = static_cast<double>(
            bk.haStateApplied() + bk.haMembersApplied());
        res.extras["failover_repl_results_applied"] =
            static_cast<double>(bk.haResultsApplied());
    }
}

std::unique_ptr<JobBase>
makeJob(const JobConfig &cfg)
{
    switch (cfg.strategy) {
      case StrategyKind::kSyncPs:
        return std::make_unique<SyncPsJob>(cfg);
      case StrategyKind::kSyncAllReduce:
        return std::make_unique<SyncAllReduceJob>(cfg);
      case StrategyKind::kSyncIswitch:
        return std::make_unique<SyncIswitchJob>(cfg);
      case StrategyKind::kAsyncPs:
        return std::make_unique<AsyncPsJob>(cfg);
      case StrategyKind::kAsyncIswitch:
        return std::make_unique<AsyncIswitchJob>(cfg);
      case StrategyKind::kSyncShardedPs:
        return std::make_unique<SyncShardedPsJob>(cfg);
    }
    throw std::logic_error("makeJob: unknown strategy");
}

std::unique_ptr<JobBase>
makeSharedJob(const JobConfig &cfg, const SharedWorld &world)
{
    switch (cfg.strategy) {
      case StrategyKind::kSyncIswitch:
        return std::make_unique<SyncIswitchJob>(cfg, world);
      case StrategyKind::kAsyncIswitch:
        return std::make_unique<AsyncIswitchJob>(cfg, world);
      default:
        throw std::invalid_argument(
            "makeSharedJob: only the iSwitch strategies can share a "
            "switch (PS/AllReduce never touch the aggregation plane)");
    }
}

RunResult
runJob(const JobConfig &cfg)
{
    return makeJob(cfg)->run();
}

} // namespace isw::dist
