#include "dist/timing.hh"

#include <stdexcept>

namespace isw::dist {

const char *
componentName(IterComponent c)
{
    switch (c) {
      case IterComponent::kAgentAction: return "Agent Action";
      case IterComponent::kEnvironReact: return "Environ React";
      case IterComponent::kBufferSampling: return "Buffer Sampling";
      case IterComponent::kMemoryAlloc: return "Memory Alloc";
      case IterComponent::kForwardPass: return "Forward Pass";
      case IterComponent::kBackwardPass: return "Backward Pass";
      case IterComponent::kGpuCopy: return "GPU Copy";
      case IterComponent::kGradAggregation: return "Grad Aggregation";
      case IterComponent::kWeightUpdate: return "Weight Update";
      case IterComponent::kOthers: return "Others";
      case IterComponent::kCount: break;
    }
    return "?";
}

bool
isLgcComponent(IterComponent c)
{
    switch (c) {
      case IterComponent::kAgentAction:
      case IterComponent::kEnvironReact:
      case IterComponent::kBufferSampling:
      case IterComponent::kMemoryAlloc:
      case IterComponent::kForwardPass:
      case IterComponent::kBackwardPass:
      case IterComponent::kGpuCopy:
        return true;
      default:
        return false;
    }
}

sim::TimeNs
ComputeProfile::lgcMean() const
{
    sim::TimeNs total = 0;
    for (std::size_t i = 0; i < kNumComponents; ++i)
        if (isLgcComponent(static_cast<IterComponent>(i)))
            total += mean[i];
    return total;
}

sim::TimeNs
ComputeProfile::sample(IterComponent c, sim::Rng &rng) const
{
    const auto m = mean[static_cast<std::size_t>(c)];
    if (m == 0)
        return 0;
    return static_cast<sim::TimeNs>(
        rng.lognormalMeanCv(static_cast<double>(m), jitter_cv));
}

namespace {

using sim::fromMillis;

ComputeProfile
make(double aa, double er, double bs, double ma, double fw, double bw,
     double gc, double wu, double oth)
{
    ComputeProfile p;
    auto set = [&p](IterComponent c, double ms) {
        p.mean[static_cast<std::size_t>(c)] = fromMillis(ms);
    };
    set(IterComponent::kAgentAction, aa);
    set(IterComponent::kEnvironReact, er);
    set(IterComponent::kBufferSampling, bs);
    set(IterComponent::kMemoryAlloc, ma);
    set(IterComponent::kForwardPass, fw);
    set(IterComponent::kBackwardPass, bw);
    set(IterComponent::kGpuCopy, gc);
    set(IterComponent::kWeightUpdate, wu);
    set(IterComponent::kOthers, oth);
    return p;
}

} // namespace

ComputeProfile
profileFor(rl::Algo algo)
{
    // Derivation: Table 4 gives the PS per-iteration time; Figure 4
    // gives the gradient-aggregation fraction. The remainder is split
    // across local components according to each algorithm's character
    // (replay-heavy DQN/DDPG sample buffers; on-policy A2C/PPO spend
    // relatively more in the environment; MuJoCo-style physics is
    // pricier than Atari emulation per step).
    switch (algo) {
      case rl::Algo::kDqn: // 81.6 ms/iter, 83.2% aggregation
        return make(1.8, 2.2, 2.6, 0.7, 1.9, 2.6, 0.6, 1.0, 0.3);
      case rl::Algo::kA2c: // 51.7 ms/iter, ~75% aggregation
        return make(2.4, 3.1, 0.2, 0.8, 2.2, 2.6, 0.4, 0.9, 0.3);
      case rl::Algo::kPpo: // 17.6 ms/iter, ~50% aggregation
        return make(1.6, 3.2, 0.1, 0.4, 1.3, 1.6, 0.2, 0.25, 0.15);
      case rl::Algo::kDdpg: // 38.7 ms/iter, ~55% aggregation
        return make(2.5, 4.5, 2.0, 0.8, 2.7, 3.6, 0.4, 0.6, 0.3);
    }
    throw std::logic_error("profileFor: unknown algorithm");
}

ComputeProfile
scaled(const ComputeProfile &p, double scale)
{
    ComputeProfile out = p;
    for (auto &m : out.mean)
        m = static_cast<sim::TimeNs>(static_cast<double>(m) * scale);
    return out;
}

} // namespace isw::dist
