#include "dist/metrics.hh"

#include <algorithm>

namespace isw::dist {

double
IterationMetrics::totalMeanMs() const
{
    double total = 0.0;
    for (const auto &a : acc_)
        total += a.mean();
    return total;
}

double
IterationMetrics::fraction(IterComponent c) const
{
    const double total = totalMeanMs();
    return total <= 0.0 ? 0.0 : meanMs(c) / total;
}

std::size_t
IterationMetrics::iterations() const
{
    std::size_t n = 0;
    for (const auto &a : acc_)
        n = std::max(n, a.count());
    return n;
}

} // namespace isw::dist
