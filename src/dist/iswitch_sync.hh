/**
 * @file
 * Synchronous iSwitch training (paper §4, Figure 1c): every worker
 * sends its tagged gradient packets to the switch; the in-switch
 * accelerator aggregates each segment on the fly and broadcasts it
 * the moment all H contributions land; workers apply sum/N locally.
 *
 * Loss recovery (paper §3.3 control plane): after sending, a worker
 * arms a retransmission timer; if result segments are missing it sends
 * Help(seg) to the switch, which re-sends a cached completed segment
 * or relays a retransmission request to all workers. The timer rides
 * the shared RetxTimer layer, so Help requests follow the same
 * exponential-backoff discipline as the unicast strategies.
 *
 * Bounded slot pools (DESIGN.md §11): when the switch grants this job
 * a finite aggregator-slot quota Q smaller than the tensor's segment
 * count, the worker streams the round through a sliding window of Q
 * unacknowledged segments anchored at its first missing result. The
 * window is self-clocking — segment s+Q is released only once result
 * s arrived — so at most Q distinct segments are ever in flight and a
 * lossless run never bounces off a busy slot. Busy-slot Nacks (loss
 * reordering) re-send after an escalating delay.
 */

#ifndef ISW_DIST_ISWITCH_SYNC_HH
#define ISW_DIST_ISWITCH_SYNC_HH

#include <deque>

#include "dist/strategy.hh"

namespace isw::dist {

/** Sync iSwitch job (iSW rows of Tables 3/4). */
class SyncIswitchJob : public JobBase
{
  public:
    explicit SyncIswitchJob(const JobConfig &cfg);

    /** Shared-fabric variant (multi-job switch sharing). */
    SyncIswitchJob(const JobConfig &cfg, const SharedWorld &world);

  protected:
    void start() override;

  private:
    void init();

    /** First striped Seg index of @p w's current round. */
    std::uint64_t segBase(const WorkerCtx &w) const;

    /** Sliding sender window (0 = whole round at once). */
    std::uint64_t windowSegments() const;

    void beginRound(WorkerCtx &w);
    void sendGradient(WorkerCtx &w);
    /** Send one segment (streaming window / Nack retry path). */
    void sendOneSegment(WorkerCtx &w, std::uint64_t seg);
    /** Release window segments up to firstMissing() + W. */
    void advanceWindow(WorkerCtx &w);
    void resendSegment(WorkerCtx &w, std::uint64_t seg_prime);
    void onNack(WorkerCtx &w, std::uint64_t value);
    /** Send Help(seg) for every missing result segment; returns how
     *  many were requested (the RetxTimer resend hook). */
    std::size_t requestHelp(WorkerCtx &w);
    void onPacket(WorkerCtx &w, const net::PacketPtr &pkt);
    void onResultComplete(WorkerCtx &w);

    /** Forced per-segment exponents for @p w's sends ({} unless int32). */
    std::span<const std::int8_t> qexpSpan(const WorkerCtx &w) const;
    /** Derive next round's exponents from the decoded aggregate. */
    void speculateNextExponents(WorkerCtx &w);

    WireFormat fmt_;
    /**
     * Per-worker per-segment shared exponents for the int32 datapath
     * (DESIGN.md §14). Every worker must encode a segment at the same
     * exponent so the switch adds equal-scale integers; round r+1's
     * exponents are speculated from round r's broadcast aggregate — a
     * pure function of data all workers share — and round 0 uses the
     * static default. Empty unless cfg_.precision == kInt32.
     */
    std::vector<std::vector<std::int8_t>> seg_qexp_;
    /** Per-worker Help timers (deque: RetxTimer is address-pinned). */
    std::deque<RetxTimer> help_;
    /** Per-worker next unsent segment offset (streaming mode only). */
    std::vector<std::uint64_t> next_unsent_;
    /** Per-worker consecutive-Nack streak (retry backoff escalation). */
    std::vector<std::uint32_t> nack_streak_;
};

} // namespace isw::dist

#endif // ISW_DIST_ISWITCH_SYNC_HH
