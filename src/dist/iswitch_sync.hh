/**
 * @file
 * Synchronous iSwitch training (paper §4, Figure 1c): every worker
 * sends its tagged gradient packets to the switch; the in-switch
 * accelerator aggregates each segment on the fly and broadcasts it
 * the moment all H contributions land; workers apply sum/N locally.
 *
 * Loss recovery (paper §3.3 control plane): after sending, a worker
 * arms a retransmission timer; if result segments are missing it sends
 * Help(seg) to the switch, which re-sends a cached completed segment
 * or relays a retransmission request to all workers. The timer rides
 * the shared RetxTimer layer, so Help requests follow the same
 * exponential-backoff discipline as the unicast strategies.
 */

#ifndef ISW_DIST_ISWITCH_SYNC_HH
#define ISW_DIST_ISWITCH_SYNC_HH

#include <deque>

#include "dist/strategy.hh"

namespace isw::dist {

/** Sync iSwitch job (iSW rows of Tables 3/4). */
class SyncIswitchJob : public JobBase
{
  public:
    explicit SyncIswitchJob(const JobConfig &cfg);

  protected:
    void start() override;

  private:
    /** First striped Seg index of @p w's current round. */
    std::uint64_t segBase(const WorkerCtx &w) const;

    void beginRound(WorkerCtx &w);
    void sendGradient(WorkerCtx &w);
    void resendSegment(WorkerCtx &w, std::uint64_t seg_prime);
    /** Send Help(seg) for every missing result segment; returns how
     *  many were requested (the RetxTimer resend hook). */
    std::size_t requestHelp(WorkerCtx &w);
    void onPacket(WorkerCtx &w, const net::PacketPtr &pkt);
    void onResultComplete(WorkerCtx &w);

    WireFormat fmt_;
    /** Per-worker Help timers (deque: RetxTimer is address-pinned). */
    std::deque<RetxTimer> help_;
};

} // namespace isw::dist

#endif // ISW_DIST_ISWITCH_SYNC_HH
