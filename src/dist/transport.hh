/**
 * @file
 * Bulk vector transport: chunk a flat float vector into MTU-sized
 * packets and reassemble on the far side.
 *
 * The wire size and the logical size are decoupled (DESIGN.md §2):
 * the network carries `wireBytes` worth of packets — the paper's model
 * sizes — while only the first `logicalFloats` slots hold real data.
 * Padding segments carry zero logical floats but full wire weight, so
 * timing is byte-accurate while training stays real.
 */

#ifndef ISW_DIST_TRANSPORT_HH
#define ISW_DIST_TRANSPORT_HH

#include <deque>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.hh"
#include "net/host.hh"
#include "sim/time.hh"

namespace isw::dist {

/** Host network-stack cost model (per logical message, not packet). */
struct HostOverhead
{
    /** Kernel/MPI cost to post one vector (or chunk) send. */
    sim::TimeNs send = 30 * sim::kUsec;
    /** Cost to deliver one completed vector to the application. */
    sim::TimeNs recv = 20 * sim::kUsec;
};

/** Shape of one vector on the wire. */
struct WireFormat
{
    std::uint64_t logical_floats = 0; ///< real data carried
    std::uint64_t wire_bytes = 0;     ///< bytes charged on the network
    bool iswitch_plane = false;       ///< 8-byte vs 16-byte chunk header

    /** Number of segments/packets. */
    std::uint64_t segments() const { return core::segCount(wire_bytes); }

    /** Clamp so the wire can actually carry the logical data. */
    static WireFormat
    forVector(std::uint64_t logical_floats, std::uint64_t wire_bytes,
              bool iswitch_plane)
    {
        WireFormat f;
        f.logical_floats = logical_floats;
        f.wire_bytes = std::max(wire_bytes, logical_floats * 4);
        f.iswitch_plane = iswitch_plane;
        return f;
    }
};

/**
 * Enqueue the packets of one vector on @p host's NIC.
 *
 * All segments are posted back-to-back; link serialization paces them.
 * @param seg_base Added to each segment index (AllReduce uses it to
 *        address chunk ranges of the full vector).
 */
void sendVector(net::Host &host, net::Ipv4Addr dst_ip,
                std::uint16_t dst_port, std::uint16_t src_port,
                std::uint8_t tos, std::uint64_t transfer_id,
                std::span<const float> logical, const WireFormat &fmt,
                std::uint64_t seg_base = 0);

/** Reassembles one vector from its segment packets. */
class VectorAssembler
{
  public:
    VectorAssembler() = default;
    explicit VectorAssembler(WireFormat fmt) { reset(fmt); }

    /** Re-arm for a fresh vector of shape @p fmt. */
    void reset(WireFormat fmt);

    /** Re-arm with the same shape. */
    void reset();

    /**
     * Offer a segment (duplicate-safe). @p seg_base is subtracted from
     * the packet's segment index before placement.
     * @return true if this segment completed the vector.
     */
    bool offer(const net::ChunkPayload &chunk, std::uint64_t seg_base = 0);

    bool complete() const { return seen_.size() == fmt_.segments(); }

    /** True if segment @p seg has already been received. */
    bool hasSegment(std::uint64_t seg) const { return seen_.count(seg) != 0; }
    std::size_t segmentsReceived() const { return seen_.size(); }
    const std::vector<float> &vector() const { return data_; }
    const WireFormat &format() const { return fmt_; }

    /** Segments not yet received (loss recovery). */
    std::vector<std::uint64_t> missingSegments() const;

  private:
    WireFormat fmt_;
    std::vector<float> data_;
    std::unordered_set<std::uint64_t> seen_;
};

/**
 * Assembles a *stream* of result vectors whose segments may interleave
 * across rounds (asynchronous iSwitch: the switch emits segment k the
 * moment its H-th contribution lands, so round r+1's early segments
 * can overtake round r's late ones). Segments are first-fit assigned
 * to the oldest round still missing them; a per-segment arrival
 * counter finds that round in O(1) instead of scanning.
 */
class MultiRoundAssembler
{
  public:
    MultiRoundAssembler() = default;
    explicit MultiRoundAssembler(WireFormat fmt) : fmt_(fmt) {}

    void reset(WireFormat fmt)
    {
        fmt_ = fmt;
        rounds_.clear();
        arrivals_.clear();
        popped_ = 0;
    }

    /** Offer a segment; returns true if the *front* round is complete. */
    bool offer(const net::ChunkPayload &chunk);

    bool frontComplete() const
    {
        return !rounds_.empty() && rounds_.front().complete();
    }

    /** Pop the completed front round's vector. */
    std::vector<float> popFront();

    std::size_t pendingRounds() const { return rounds_.size(); }

  private:
    WireFormat fmt_;
    std::deque<VectorAssembler> rounds_;
    /** arrivals_[seg] = rounds that already hold seg (absolute). */
    std::unordered_map<std::uint64_t, std::uint64_t> arrivals_;
    std::uint64_t popped_ = 0; ///< completed rounds retired so far
};

} // namespace isw::dist

#endif // ISW_DIST_TRANSPORT_HH
