/**
 * @file
 * Bulk vector transport: chunk a flat float vector into MTU-sized
 * packets and reassemble on the far side.
 *
 * The wire size and the logical size are decoupled (DESIGN.md §2):
 * the network carries `wireBytes` worth of packets — the paper's model
 * sizes — while only the first `logicalFloats` slots hold real data.
 * Padding segments carry zero logical floats but full wire weight, so
 * timing is byte-accurate while training stays real.
 */

#ifndef ISW_DIST_TRANSPORT_HH
#define ISW_DIST_TRANSPORT_HH

#include <array>
#include <atomic>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.hh"
#include "net/host.hh"
#include "sim/simulation.hh"
#include "sim/time.hh"

namespace isw::dist {

class PrePostProcessor; // pipeline.hh

/** Host network-stack cost model (per logical message, not packet). */
struct HostOverhead
{
    /** Kernel/MPI cost to post one vector (or chunk) send. */
    sim::TimeNs send = 30 * sim::kUsec;
    /** Cost to deliver one completed vector to the application. */
    sim::TimeNs recv = 20 * sim::kUsec;
};

/** Shape of one vector on the wire. */
struct WireFormat
{
    std::uint64_t logical_floats = 0; ///< real data carried
    std::uint64_t wire_bytes = 0;     ///< bytes charged on the network
    bool iswitch_plane = false;       ///< 8-byte vs 16-byte chunk header
    /** Word encoding of the float payload (DESIGN.md §14). */
    net::Precision precision = net::Precision::kFp32;

    /** Number of segments/packets. */
    std::uint64_t segments() const { return core::segCount(wire_bytes); }

    /**
     * Logical floats carried by one full segment: fp32 and int32 use
     * one 4-byte wire word per value; fp16 packs two halves per word,
     * doubling per-packet capacity.
     */
    std::uint64_t floatsPerSeg() const
    {
        return precision == net::Precision::kFp16 ? core::kFloatsPerSeg * 2
                                                  : core::kFloatsPerSeg;
    }

    /**
     * Smallest honest wire size for @p logical_floats at @p precision
     * (the forVector clamp). fp16 rounds an odd count up to a whole
     * half-pair word; int32 is one word per value like fp32.
     */
    static std::uint64_t
    minWireBytes(net::Precision precision, std::uint64_t logical_floats)
    {
        if (precision == net::Precision::kFp16)
            return (logical_floats + 1) / 2 * 4;
        return logical_floats * 4;
    }

    /** Clamp so the wire can actually carry the logical data. */
    static WireFormat
    forVector(std::uint64_t logical_floats, std::uint64_t wire_bytes,
              bool iswitch_plane,
              net::Precision precision = net::Precision::kFp32)
    {
        WireFormat f;
        f.logical_floats = logical_floats;
        f.wire_bytes =
            std::max(wire_bytes, minWireBytes(precision, logical_floats));
        f.iswitch_plane = iswitch_plane;
        f.precision = precision;
        return f;
    }
};

/**
 * Enqueue the packets of one vector on @p host's NIC.
 *
 * All segments are posted back-to-back; link serialization paces them.
 * @param seg_base Added to each segment index (AllReduce uses it to
 *        address chunk ranges of the full vector).
 * @param job Job id stamped into each chunk (multi-job switch sharing).
 * @param ver_quota When nonzero, each chunk carries the slot-reuse
 *        version bit ((seg_base+seg)/ver_quota)&1 so a bounded switch
 *        pool can tell apart successive occupants of one slot.
 * @param ppp Optional pre-processor that encodes each segment's
 *        logical floats into wire words (pipeline.hh). nullptr runs
 *        the legacy raw-fp32 copy, bit for bit.
 * @param seg_qexp Optional per-segment forced shared exponents
 *        (indexed by segment offset within @p fmt), used by
 *        switch-aggregated int32 runs so every contributor encodes a
 *        segment at the agreed exponent. Segments beyond the span
 *        fall back to the processor's auto choice.
 */
void sendVector(net::Host &host, net::Ipv4Addr dst_ip,
                std::uint16_t dst_port, std::uint16_t src_port,
                std::uint8_t tos, std::uint64_t transfer_id,
                std::span<const float> logical, const WireFormat &fmt,
                std::uint64_t seg_base = 0, std::uint8_t job = 0,
                std::uint32_t ver_quota = 0,
                PrePostProcessor *ppp = nullptr,
                std::span<const std::int8_t> seg_qexp = {});

/**
 * Enqueue a single segment of a vector (loss-recovery resends).
 * @p seg is the segment offset within @p fmt; the packet carries
 * seg_base + seg like sendVector would. @p job / @p ver_quota /
 * @p ppp / @p seg_qexp as in sendVector.
 */
void sendVectorSegment(net::Host &host, net::Ipv4Addr dst_ip,
                       std::uint16_t dst_port, std::uint16_t src_port,
                       std::uint8_t tos, std::uint64_t transfer_id,
                       std::span<const float> logical, const WireFormat &fmt,
                       std::uint64_t seg, std::uint64_t seg_base = 0,
                       std::uint8_t job = 0, std::uint32_t ver_quota = 0,
                       PrePostProcessor *ppp = nullptr,
                       std::span<const std::int8_t> seg_qexp = {});

/**
 * Knobs of the universal retransmission layer (DESIGN.md §10): a
 * timeout re-sends whatever a transfer is still missing, backing off
 * exponentially up to a retry cap.
 */
struct RetransmitPolicy
{
    /** Initial timeout; 0 = auto (the job derives it from wire size). */
    sim::TimeNs timeout = 0;
    double backoff = 2.0;
    /** Retry cap; 0 disables recovery entirely. */
    std::uint32_t max_retries = 12;
    /**
     * Ceiling on the backed-off timeout. Without it, timeout *
     * backoff^retries overflows sim::TimeNs for large retry caps
     * (e.g. 2.0^63 already wraps a 20 ms base) and the wrapped value
     * schedules the "retry" in the past or absurdly far out. 5 sim
     * minutes is beyond any legitimate round time.
     */
    sim::TimeNs max_timeout = 300 * sim::kSec;
};

/**
 * Deterministic recovery counters, exported via RunResult::extras.
 *
 * Atomics: one RecoveryStats is shared by every RetxTimer of a job,
 * and under a sharded engine timers fire concurrently in different
 * domains within one window. Every update is a commutative accumulate
 * (sum / max / histogram bump) tied to a deterministic simulated
 * event, so the final totals are identical for any thread count.
 */
struct RecoveryStats
{
    std::atomic<std::uint64_t> timeouts{0};    ///< timer firings that found work
    std::atomic<std::uint64_t> retransmits{0}; ///< data segments re-sent
    std::atomic<std::uint64_t> help_requests{0}; ///< iSwitch Help messages sent
    std::atomic<std::uint64_t> fbcasts{0};     ///< FBcast nudges sent
    std::atomic<std::uint64_t> recoveries{0};  ///< guarded ops completed after >=1 timeout
    std::atomic<std::uint64_t> gave_up{0};     ///< retry cap exhausted
    std::atomic<sim::TimeNs> latency_total{0}; ///< sum of recovery latencies
    std::atomic<sim::TimeNs> latency_max{0};
    /**
     * Recovery latency histogram (first timeout -> completion):
     * {<1ms, <4ms, <16ms, <64ms, <256ms, >=256ms}.
     */
    std::array<std::atomic<std::uint64_t>, 6> latency_hist{};

    /** Record one recovery that took @p latency beyond first timeout. */
    void recordRecovery(sim::TimeNs latency);
};

/**
 * One guarded operation's retransmission timer.
 *
 * arm(resend) starts the clock; when it expires, @p resend is invoked
 * and must re-send whatever is still missing, returning how many items
 * it re-sent (0 = nothing missing: the timer disarms silently). While
 * work remains the timer re-arms with exponential backoff until the
 * retry cap, then gives up. done() stops the timer and records the
 * recovery latency if any timeout had fired; re-arming an armed timer
 * counts as progress the same way.
 *
 * Unconfigured timers (lossless runs) make every call a no-op, so
 * strategies can arm/done unconditionally without scheduling a single
 * event when recovery is off. Not movable: the pending event captures
 * `this` (store RetxTimers in a std::deque or node-based container).
 *
 * Domain safety (sharded engines): the pending event lives in the
 * queue of whatever domain called arm(), and the timer records that
 * domain so teardown from the owning thread cancels the right queue
 * (Simulation::cancelEventIn). All other operations — arm/done/
 * cancel/fire — must run in that same home domain; strategies whose
 * completion signal arrives in another domain defer the done() there
 * (JobBase::deferDone) instead of calling it in place.
 */
class RetxTimer
{
  public:
    using ResendFn = std::function<std::size_t()>;

    RetxTimer() = default;
    ~RetxTimer();

    RetxTimer(const RetxTimer &) = delete;
    RetxTimer &operator=(const RetxTimer &) = delete;

    /** Enable the timer; without this every operation is a no-op. */
    void configure(sim::Simulation &sim, const RetransmitPolicy &policy,
                   RecoveryStats &stats);

    /** (Re)start guarding an operation. */
    void arm(ResendFn resend);

    /** The guarded operation completed. */
    void done();

    /** Abandon silently (no recovery recorded). */
    void cancel();

    bool armed() const { return pending_ != sim::kInvalidEventId; }

  private:
    void fire();
    void schedule();
    void finish(bool record);

    sim::Simulation *sim_ = nullptr;
    const RetransmitPolicy *policy_ = nullptr;
    RecoveryStats *stats_ = nullptr;
    ResendFn resend_;
    sim::EventId pending_ = sim::kInvalidEventId;
    /** Domain whose queue holds pending_ (recorded at schedule time so
     *  teardown cancels the owning queue, not the caller's). */
    sim::DomainId pending_domain_ = 0;
    sim::TimeNs cur_timeout_ = 0;
    sim::TimeNs first_timeout_at_ = 0;
    std::uint32_t retries_ = 0;
};

/**
 * Reassembles one vector from its segment packets. The receive side
 * of the pipeline lives here: quantized wire words (fmt.precision)
 * are decoded back to fp32 as each segment lands, using the chunk's
 * own precision exponent — so every strategy gets the post-processor
 * stage for free (DESIGN.md §14).
 */
class VectorAssembler
{
  public:
    VectorAssembler() = default;
    explicit VectorAssembler(WireFormat fmt) { reset(fmt); }

    /** Re-arm for a fresh vector of shape @p fmt. */
    void reset(WireFormat fmt);

    /** Re-arm with the same shape. */
    void reset();

    /**
     * Offer a segment (duplicate-safe). @p seg_base is subtracted from
     * the packet's segment index before placement.
     * @return true if this segment completed the vector.
     */
    bool offer(const net::ChunkPayload &chunk, std::uint64_t seg_base = 0);

    bool complete() const { return seen_.size() == fmt_.segments(); }

    /** True if segment @p seg has already been received. */
    bool hasSegment(std::uint64_t seg) const { return seen_.count(seg) != 0; }
    std::size_t segmentsReceived() const { return seen_.size(); }
    const std::vector<float> &vector() const { return data_; }
    const WireFormat &format() const { return fmt_; }

    /** Segments not yet received (loss recovery). */
    std::vector<std::uint64_t> missingSegments() const;

    /**
     * Smallest segment index not yet received (== segments() once
     * complete). The sliding sender window of the bounded-slot
     * streaming mode is anchored here (DESIGN.md §11).
     */
    std::uint64_t firstMissing() const { return first_missing_; }

  private:
    WireFormat fmt_;
    std::vector<float> data_;
    std::unordered_set<std::uint64_t> seen_;
    std::uint64_t first_missing_ = 0;
};

/**
 * Assembles a *stream* of result vectors whose segments may interleave
 * across rounds (asynchronous iSwitch: the switch emits segment k the
 * moment its H-th contribution lands, so round r+1's early segments
 * can overtake round r's late ones). Segments are first-fit assigned
 * to the oldest round still missing them; a per-segment arrival
 * counter finds that round in O(1) instead of scanning.
 */
class MultiRoundAssembler
{
  public:
    MultiRoundAssembler() = default;
    explicit MultiRoundAssembler(WireFormat fmt) : fmt_(fmt) {}

    void reset(WireFormat fmt)
    {
        fmt_ = fmt;
        rounds_.clear();
        arrivals_.clear();
        popped_ = 0;
    }

    /** Offer a segment; returns true if the *front* round is complete. */
    bool offer(const net::ChunkPayload &chunk);

    bool frontComplete() const
    {
        return !rounds_.empty() && rounds_.front().complete();
    }

    /** Pop the completed front round's vector. */
    std::vector<float> popFront();

    /**
     * Segments the oldest pending round is still missing; every
     * segment when no round has started arriving (loss recovery).
     */
    std::vector<std::uint64_t> missingFront() const;

    std::size_t pendingRounds() const { return rounds_.size(); }

  private:
    WireFormat fmt_;
    std::deque<VectorAssembler> rounds_;
    /** arrivals_[seg] = rounds that already hold seg (absolute). */
    std::unordered_map<std::uint64_t, std::uint64_t> arrivals_;
    std::uint64_t popped_ = 0; ///< completed rounds retired so far
};

} // namespace isw::dist

#endif // ISW_DIST_TRANSPORT_HH
