#include "dist/transport.hh"

#include <algorithm>

#include "net/packet_pool.hh"

namespace isw::dist {

void
sendVector(net::Host &host, net::Ipv4Addr dst_ip, std::uint16_t dst_port,
           std::uint16_t src_port, std::uint8_t tos,
           std::uint64_t transfer_id, std::span<const float> logical,
           const WireFormat &fmt, std::uint64_t seg_base)
{
    auto &pool = net::PacketPool::local();
    const std::uint64_t segs = fmt.segments();
    for (std::uint64_t seg = 0; seg < segs; ++seg) {
        net::ChunkPayload chunk;
        chunk.transfer_id = transfer_id;
        chunk.seg = seg_base + seg;
        chunk.wire_floats = core::floatsInSeg(seg, fmt.wire_bytes);
        const std::uint64_t begin = seg * core::kFloatsPerSeg;
        if (begin < logical.size()) {
            const std::uint64_t end =
                std::min<std::uint64_t>(begin + core::kFloatsPerSeg,
                                        logical.size());
            chunk.values = pool.acquireFloats(end - begin);
            chunk.values.assign(logical.begin() + begin,
                                logical.begin() + end);
        }
        host.sendTo(dst_ip, dst_port, src_port, tos, std::move(chunk));
    }
}

void
VectorAssembler::reset(WireFormat fmt)
{
    fmt_ = fmt;
    data_.assign(fmt_.logical_floats, 0.0f);
    seen_.clear();
}

void
VectorAssembler::reset()
{
    data_.assign(fmt_.logical_floats, 0.0f);
    seen_.clear();
}

bool
VectorAssembler::offer(const net::ChunkPayload &chunk, std::uint64_t seg_base)
{
    const std::uint64_t seg = chunk.seg - seg_base;
    if (seg >= fmt_.segments())
        return false; // not ours / malformed
    if (!seen_.insert(seg).second)
        return false; // duplicate
    const std::uint64_t begin = seg * core::kFloatsPerSeg;
    for (std::size_t i = 0;
         i < chunk.values.size() && begin + i < data_.size(); ++i) {
        data_[begin + i] = chunk.values[i];
    }
    return complete();
}

bool
MultiRoundAssembler::offer(const net::ChunkPayload &chunk)
{
    // First-fit in O(1): the number of times this seg has arrived IS
    // the absolute index of the oldest round still missing it (rounds
    // are only popped once complete, so every popped round had every
    // seg — arrivals_[seg] >= popped_ always holds).
    const std::uint64_t target = arrivals_[chunk.seg]++;
    const std::uint64_t idx = target - popped_;
    if (idx == rounds_.size())
        rounds_.emplace_back(fmt_);
    rounds_[idx].offer(chunk);
    return frontComplete();
}

std::vector<float>
MultiRoundAssembler::popFront()
{
    std::vector<float> out = rounds_.front().vector();
    rounds_.pop_front();
    ++popped_;
    return out;
}

std::vector<std::uint64_t>
VectorAssembler::missingSegments() const
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t seg = 0; seg < fmt_.segments(); ++seg)
        if (!seen_.count(seg))
            out.push_back(seg);
    return out;
}

} // namespace isw::dist
