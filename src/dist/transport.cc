#include "dist/transport.hh"

#include <algorithm>

#include "dist/pipeline.hh"
#include "ml/quantize.hh"
#include "net/packet_pool.hh"

namespace isw::dist {

namespace {

/**
 * Fill one chunk's wire words from its logical sub-span: the legacy
 * raw-fp32 copy when @p ppp is null (bit-identical to the
 * pre-pipeline transport), the processor's encode otherwise. Padding
 * segments (beyond the logical data) stay empty either way.
 */
void
fillChunk(net::ChunkPayload &chunk, std::span<const float> logical,
          const WireFormat &fmt, std::uint64_t seg, PrePostProcessor *ppp,
          std::span<const std::int8_t> seg_qexp)
{
    const std::uint64_t fps = fmt.floatsPerSeg();
    const std::uint64_t begin = seg * fps;
    if (begin >= logical.size())
        return;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + fps, logical.size());
    const auto part = logical.subspan(begin, end - begin);
    if (ppp != nullptr) {
        const int forced =
            seg < seg_qexp.size() ? seg_qexp[seg] : kAutoQexp;
        ppp->encodeSeg(part, chunk, forced);
        return;
    }
    chunk.values = net::PacketPool::local().acquireFloats(part.size());
    chunk.values.assign(part.begin(), part.end());
}

} // namespace

void
sendVector(net::Host &host, net::Ipv4Addr dst_ip, std::uint16_t dst_port,
           std::uint16_t src_port, std::uint8_t tos,
           std::uint64_t transfer_id, std::span<const float> logical,
           const WireFormat &fmt, std::uint64_t seg_base, std::uint8_t job,
           std::uint32_t ver_quota, PrePostProcessor *ppp,
           std::span<const std::int8_t> seg_qexp)
{
    const std::uint64_t segs = fmt.segments();
    for (std::uint64_t seg = 0; seg < segs; ++seg) {
        net::ChunkPayload chunk;
        chunk.transfer_id = transfer_id;
        chunk.seg = seg_base + seg;
        chunk.job = job;
        if (ver_quota != 0)
            chunk.ver = static_cast<std::uint8_t>(
                (chunk.seg / ver_quota) & 1);
        chunk.wire_floats = core::floatsInSeg(seg, fmt.wire_bytes);
        fillChunk(chunk, logical, fmt, seg, ppp, seg_qexp);
        host.sendTo(dst_ip, dst_port, src_port, tos, std::move(chunk));
    }
}

void
sendVectorSegment(net::Host &host, net::Ipv4Addr dst_ip,
                  std::uint16_t dst_port, std::uint16_t src_port,
                  std::uint8_t tos, std::uint64_t transfer_id,
                  std::span<const float> logical, const WireFormat &fmt,
                  std::uint64_t seg, std::uint64_t seg_base,
                  std::uint8_t job, std::uint32_t ver_quota,
                  PrePostProcessor *ppp, std::span<const std::int8_t> seg_qexp)
{
    net::ChunkPayload chunk;
    chunk.transfer_id = transfer_id;
    chunk.seg = seg_base + seg;
    chunk.job = job;
    if (ver_quota != 0)
        chunk.ver =
            static_cast<std::uint8_t>((chunk.seg / ver_quota) & 1);
    chunk.wire_floats = core::floatsInSeg(seg, fmt.wire_bytes);
    fillChunk(chunk, logical, fmt, seg, ppp, seg_qexp);
    host.sendTo(dst_ip, dst_port, src_port, tos, std::move(chunk));
}

void
RecoveryStats::recordRecovery(sim::TimeNs latency)
{
    recoveries.fetch_add(1, std::memory_order_relaxed);
    latency_total.fetch_add(latency, std::memory_order_relaxed);
    // CAS max: fetch_max is C++26, so spin until our value is in or
    // a concurrent recorder's larger one already is.
    sim::TimeNs seen = latency_max.load(std::memory_order_relaxed);
    while (latency > seen &&
           !latency_max.compare_exchange_weak(seen, latency,
                                              std::memory_order_relaxed))
        ;
    const double ms = sim::toMillis(latency);
    std::size_t bucket = 0;
    for (const double edge : {1.0, 4.0, 16.0, 64.0, 256.0}) {
        if (ms < edge)
            break;
        ++bucket;
    }
    latency_hist[bucket].fetch_add(1, std::memory_order_relaxed);
}

RetxTimer::~RetxTimer()
{
    // Teardown runs on the owning thread after the run: cancel through
    // the domain that scheduled the event (cancelEvent would assume
    // the *caller's* domain and hit the wrong queue under sharding).
    if (sim_ != nullptr)
        sim_->cancelEventIn(pending_domain_, pending_);
}

void
RetxTimer::configure(sim::Simulation &sim, const RetransmitPolicy &policy,
                     RecoveryStats &stats)
{
    sim_ = &sim;
    policy_ = &policy;
    stats_ = &stats;
}

void
RetxTimer::arm(ResendFn resend)
{
    if (sim_ == nullptr || policy_->max_retries == 0)
        return;
    // Re-arming an armed timer is progress on the guarded stream.
    finish(/*record=*/true);
    resend_ = std::move(resend);
    retries_ = 0;
    first_timeout_at_ = 0;
    cur_timeout_ = policy_->timeout;
    schedule();
}

void
RetxTimer::done()
{
    finish(/*record=*/true);
}

void
RetxTimer::cancel()
{
    finish(/*record=*/false);
}

void
RetxTimer::finish(bool record)
{
    if (sim_ == nullptr)
        return;
    if (record && first_timeout_at_ != 0)
        stats_->recordRecovery(sim_->now() - first_timeout_at_);
    sim_->cancelEventIn(pending_domain_, pending_);
    pending_ = sim::kInvalidEventId;
    first_timeout_at_ = 0;
    resend_ = nullptr;
}

void
RetxTimer::schedule()
{
    pending_domain_ = sim_->hereDomain();
    pending_ = sim_->after(cur_timeout_, [this] { fire(); });
}

void
RetxTimer::fire()
{
    pending_ = sim::kInvalidEventId;
    if (!resend_)
        return;
    const std::size_t missing = resend_();
    if (missing == 0) {
        // Nothing left to recover; disarm without recording (the
        // owner's completion path calls done() when it notices).
        first_timeout_at_ = 0;
        resend_ = nullptr;
        return;
    }
    ++stats_->timeouts;
    if (first_timeout_at_ == 0)
        first_timeout_at_ = sim_->now();
    if (++retries_ >= policy_->max_retries) {
        ++stats_->gave_up;
        first_timeout_at_ = 0;
        resend_ = nullptr;
        return;
    }
    // Clamp before the cast: timeout * backoff^n overflows TimeNs long
    // before the retry cap for aggressive backoff factors, and the
    // wrapped value would schedule the retry nonsensically.
    const double next =
        static_cast<double>(cur_timeout_) * policy_->backoff;
    const double cap = static_cast<double>(policy_->max_timeout);
    cur_timeout_ = static_cast<sim::TimeNs>(next < cap ? next : cap);
    schedule();
}

void
VectorAssembler::reset(WireFormat fmt)
{
    fmt_ = fmt;
    data_.assign(fmt_.logical_floats, 0.0f);
    seen_.clear();
    first_missing_ = 0;
}

void
VectorAssembler::reset()
{
    data_.assign(fmt_.logical_floats, 0.0f);
    seen_.clear();
    first_missing_ = 0;
}

bool
VectorAssembler::offer(const net::ChunkPayload &chunk, std::uint64_t seg_base)
{
    const std::uint64_t seg = chunk.seg - seg_base;
    if (seg >= fmt_.segments())
        return false; // not ours / malformed
    if (!seen_.insert(seg).second)
        return false; // duplicate
    while (seen_.count(first_missing_) != 0)
        ++first_missing_; // advance the contiguous-prefix watermark
    const std::uint64_t begin = seg * fmt_.floatsPerSeg();
    const std::size_t avail =
        begin < data_.size() ? data_.size() - begin : 0;
    switch (fmt_.precision) {
      case net::Precision::kFp16: {
        // Post-process: unpack half-pair wire words to fp32.
        const std::size_t n =
            std::min<std::size_t>(avail, chunk.values.size() * 2);
        if (n != 0)
            ml::unpackHalfWords(chunk.values.data(), n,
                                data_.data() + begin);
        break;
      }
      case net::Precision::kInt32: {
        // Post-process: decode int32 words at the chunk's exponent.
        const std::size_t n =
            std::min<std::size_t>(avail, chunk.values.size());
        if (n != 0)
            ml::decodeBlockInt32(chunk.values.data(), n, chunk.qexp,
                                 data_.data() + begin);
        break;
      }
      default:
        for (std::size_t i = 0;
             i < chunk.values.size() && begin + i < data_.size(); ++i) {
            data_[begin + i] = chunk.values[i];
        }
        break;
    }
    return complete();
}

bool
MultiRoundAssembler::offer(const net::ChunkPayload &chunk)
{
    // First-fit in O(1): the number of times this seg has arrived IS
    // the absolute index of the oldest round still missing it (rounds
    // are only popped once complete, so every popped round had every
    // seg — arrivals_[seg] >= popped_ always holds).
    const std::uint64_t target = arrivals_[chunk.seg]++;
    const std::uint64_t idx = target - popped_;
    if (idx == rounds_.size())
        rounds_.emplace_back(fmt_);
    rounds_[idx].offer(chunk);
    return frontComplete();
}

std::vector<float>
MultiRoundAssembler::popFront()
{
    std::vector<float> out = rounds_.front().vector();
    rounds_.pop_front();
    ++popped_;
    return out;
}

std::vector<std::uint64_t>
MultiRoundAssembler::missingFront() const
{
    if (!rounds_.empty())
        return rounds_.front().missingSegments();
    std::vector<std::uint64_t> all(fmt_.segments());
    for (std::uint64_t seg = 0; seg < all.size(); ++seg)
        all[seg] = seg;
    return all;
}

std::vector<std::uint64_t>
VectorAssembler::missingSegments() const
{
    std::vector<std::uint64_t> out;
    for (std::uint64_t seg = 0; seg < fmt_.segments(); ++seg)
        if (!seen_.count(seg))
            out.push_back(seg);
    return out;
}

} // namespace isw::dist
