/**
 * @file
 * Asynchronous iSwitch training — the paper's Algorithm 1 with the
 * three-stage pipeline of Figure 11:
 *
 *   - LGC thread: runs back-to-back, never blocking on aggregation;
 *     commits a gradient only if its staleness ts - tw <= S.
 *   - GA stage (in the switch): counts H gradient vectors per segment,
 *     sums, and broadcasts — contributions from different worker
 *     iterations may mix, which is inherent to the design.
 *   - LWU thread: applies each broadcast sum (ws -= lr * gsum / H) and
 *     advances the local weight version ts.
 *
 * Decentralized weight storage: every worker applies the identical
 * broadcast sums in the identical order, so weights stay agreed.
 */

#ifndef ISW_DIST_ISWITCH_ASYNC_HH
#define ISW_DIST_ISWITCH_ASYNC_HH

#include <atomic>
#include <deque>

#include "dist/strategy.hh"

namespace isw::dist {

/** Async iSwitch job (Async iSW rows of Tables 3/5). */
class AsyncIswitchJob : public JobBase
{
  public:
    explicit AsyncIswitchJob(const JobConfig &cfg);

    /** Shared-fabric variant (multi-job switch sharing). Async mode
     *  reuses segment indices every iteration with dedupe off, so a
     *  bounded slot quota must cover the whole tensor: quota <
     *  segments() throws std::invalid_argument. */
    AsyncIswitchJob(const JobConfig &cfg, const SharedWorld &world);

  protected:
    void start() override;
    void collectExtras(RunResult &res) const override;

  private:
    void init();
    void lgcLoop(WorkerCtx &w);
    void onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt);
    void drainLwu(WorkerCtx &w);
    /** (Re)arm @p w's stall watchdog iff it has outstanding results. */
    void rearmWatch(WorkerCtx &w);
    /** Stall recovery: FBcast + re-contribute each missing front seg.
     *  Returns the number of nudged segments (RetxTimer resend fn). */
    std::size_t nudge(WorkerCtx &w);

    WireFormat fmt_;
    std::uint32_t h_ = 0; ///< effective aggregation threshold
    std::vector<MultiRoundAssembler> rx_;
    /** uint8_t, not bool: vector<bool> packs bits, so two workers in
     *  different sim domains would race on the same word. */
    std::vector<std::uint8_t> lwu_busy_;
    /** Per-worker gradients committed (for send-side backpressure). */
    std::vector<std::uint64_t> sent_;
    /** Atomic: every worker's domain increments these; relaxed adds
     *  are commutative, so totals are thread-count-deterministic. */
    std::atomic<std::uint64_t> committed_{0}; ///< gradients sent (stats)
    std::atomic<std::uint64_t> skipped_{0}; ///< dropped as too stale
    /** Snapshot of the last committed gradient, for re-contribution
     *  (pending_grad mutates as the LGC pipeline runs ahead). */
    std::vector<ml::Vec> last_sent_;
    /** Per-worker stall watchdogs (deque: RetxTimer is pinned). */
    std::deque<RetxTimer> watch_;
    /**
     * Static per-segment exponents for the int32 datapath. Async mode
     * cannot speculate from a previous aggregate — cross-iteration
     * segment mixing means there is no common broadcast to derive the
     * next exponent from — so every round encodes at the fixed default
     * and order-independence is preserved (DESIGN.md §14). Empty
     * unless cfg_.precision == kInt32.
     */
    std::vector<std::int8_t> static_qexp_;

  public:
    std::uint64_t
    gradientsCommitted() const
    {
        return committed_.load(std::memory_order_relaxed);
    }
    std::uint64_t
    gradientsSkipped() const
    {
        return skipped_.load(std::memory_order_relaxed);
    }
};

} // namespace isw::dist

#endif // ISW_DIST_ISWITCH_ASYNC_HH
