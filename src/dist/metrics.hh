/**
 * @file
 * Per-iteration breakdown metrics and run-level results, matching the
 * paper's evaluation metrics (§5.2): Final Average Reward, Number of
 * Iterations, Per-Iteration Time, End-to-End Training Time.
 */

#ifndef ISW_DIST_METRICS_HH
#define ISW_DIST_METRICS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dist/timing.hh"
#include "sim/stats.hh"

namespace isw::dist {

/** Accumulated per-component iteration times for one worker. */
class IterationMetrics
{
  public:
    /** Charge @p dur to component @p c for the current iteration. */
    void add(IterComponent c, sim::TimeNs dur)
    {
        acc_[static_cast<std::size_t>(c)].add(sim::toMillis(dur));
    }

    /** Mean time (ms) spent in @p c per iteration. */
    double meanMs(IterComponent c) const
    {
        return acc_[static_cast<std::size_t>(c)].mean();
    }

    /** Mean total iteration time (ms), summed over components. */
    double totalMeanMs() const;

    /** Fraction of the iteration spent in @p c. */
    double fraction(IterComponent c) const;

    /** Iterations recorded (count of the most-populated component). */
    std::size_t iterations() const;

    const sim::Accumulator &accumulator(IterComponent c) const
    {
        return acc_[static_cast<std::size_t>(c)];
    }

  private:
    std::array<sim::Accumulator, kNumComponents> acc_;
};

/** Result of one distributed training run. */
struct RunResult
{
    std::uint64_t iterations = 0;      ///< weight updates performed
    sim::TimeNs total_time = 0;        ///< simulated end-to-end time
    double final_avg_reward = 0.0;     ///< avg of last-10 episode rewards
    bool reached_target = false;       ///< stopped by reward target?
    IterationMetrics breakdown;        ///< representative worker breakdown
    sim::TimeSeries reward_curve;      ///< (sim time, avg reward)
    /**
     * Strategy-specific counters collected after the run (e.g. async
     * gradients committed/skipped, peak switch buffer occupancy), so
     * bench binaries can consume every figure they print from a
     * RunResult instead of poking at live Job internals. Keys are
     * stable snake_case names; see JobBase::collectExtras.
     */
    std::map<std::string, double> extras;
    /**
     * Wall-clock-derived throughput metrics (events/sec, packets/sec,
     * allocator traffic from the instrumented PacketPool). Unlike
     * `extras` these are NOT deterministic — they depend on host speed
     * and pool warmth — so resultToJson excludes them; the runner
     * report emits them next to wall_clock_ms instead (DESIGN.md §9).
     */
    std::map<std::string, double> perf;
    /**
     * Non-empty when the run did not complete cleanly: the simulated-
     * time watchdog tripped (StopCondition::max_sim_time), the event
     * queue drained before the stop condition (a deadlocked strategy),
     * or the job constructor/runner caught an exception. Partial
     * metrics above remain valid up to the failure point.
     */
    std::string error;

    /** True when the run completed without a diagnostic error. */
    bool ok() const { return error.empty(); }

    /** Mean per-iteration wall time in milliseconds. */
    double
    perIterationMs() const
    {
        return iterations == 0
                   ? 0.0
                   : sim::toMillis(total_time) /
                         static_cast<double>(iterations);
    }

    /** End-to-end time in (simulated) hours. */
    double
    totalHours() const
    {
        return sim::toSeconds(total_time) / 3600.0;
    }
};

} // namespace isw::dist

#endif // ISW_DIST_METRICS_HH
