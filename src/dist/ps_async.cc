#include "dist/ps_async.hh"

namespace isw::dist {

namespace {
constexpr std::uint64_t kWeightXferShift = 16;
constexpr std::uint64_t kIdMask = (1ULL << kWeightXferShift) - 1;
constexpr std::uint64_t kPullRequestBytes = 64;
/** rx_ver_ sentinel: the worker adopts the next reply it sees. */
constexpr std::uint64_t kNoVer = ~0ULL;
} // namespace

AsyncPsJob::AsyncPsJob(const JobConfig &cfg) : JobBase(cfg)
{
    fmt_ = gradientWire(/*iswitch_plane=*/false);
    wfmt_ = gradientWire(/*iswitch_plane=*/false, net::Precision::kFp32);
    srv_rx_.resize(workers_.size());
    for (auto &rx : srv_rx_)
        rx.reset(fmt_);
    for (auto &w : workers_)
        w.rx.reset(wfmt_);
    installed_version_.assign(workers_.size(), 0);
    // The server's replica starts from the same weights as everyone.
    workers_.front().agent->getWeights(srv_weights_);
    srv_opt_ = std::make_unique<ml::Adam>(cfg_.agent.lr);
    ps_rng_ = sim_->forkRng();

    push_seq_.assign(workers_.size(), 0);
    last_push_.resize(workers_.size());
    srv_applied_.assign(workers_.size(), 0);
    srv_asm_seq_.assign(workers_.size(), 0);
    rx_ver_.assign(workers_.size(), kNoVer);
    pull_outstanding_.assign(workers_.size(), 0);
    push_retx_.resize(workers_.size());
    pull_retx_.resize(workers_.size());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        configureTimer(push_retx_[i]);
        configureTimer(pull_retx_[i]);
    }
}

std::uint64_t
AsyncPsJob::stalenessVersion() const
{
    return sim_->sharded()
               ? srv_version_pub_.load(std::memory_order_relaxed)
               : srv_version_;
}

void
AsyncPsJob::onShardBarrier()
{
    // Runs on the coordinator thread between windows; the window join
    // orders it after every event the server's domain executed.
    srv_version_pub_.store(srv_version_, std::memory_order_relaxed);
}

void
AsyncPsJob::start()
{
    cluster_.ps->setReceiveHandler(
        [this](net::PacketPtr pkt) { onPsPacket(pkt); });
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    // Anchor each initial pull in its worker's home domain: start()
    // runs in setup context (events land in domain 0), but the pull
    // retransmission timer must be armed where done() will later run —
    // the worker's own domain. Zero-delay wrappers in worker order keep
    // the serial event sequence (and reports) byte-identical.
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        sim_->atInDomain(w.host->domain(), sim_->now(),
                         [this, wp] { pullWeights(*wp); });
    }
}

void
AsyncPsJob::pullWeights(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    pull_outstanding_[w.index] = true;
    sim_->after(cfg_.overhead.send, [this, wp] {
        wp->host->sendTo(cluster_.ps->ip(), kPsPort, kWorkerPort, /*tos=*/0,
                         net::RawPayload{kPullRequestBytes, wp->index});
        // The pull timer covers the whole request/reply exchange: if
        // either direction loses frames, re-issuing the request makes
        // the server reply with its *current* weights (possibly a
        // newer version, which the worker adopts via rx_ver_).
        pull_retx_[wp->index].arm([this, wp]() -> std::size_t {
            if (stopped() || !pull_outstanding_[wp->index])
                return 0;
            wp->host->sendTo(cluster_.ps->ip(), kPsPort, kWorkerPort,
                             /*tos=*/0,
                             net::RawPayload{kPullRequestBytes, wp->index});
            ++recovery_.retransmits;
            return 1;
        });
    });
}

void
AsyncPsJob::onPsPacket(const net::PacketPtr &pkt)
{
    if (const auto *raw = std::get_if<net::RawPayload>(&pkt->payload)) {
        // Pull request: reply with the current weights, stamped with
        // the server version so the worker can track staleness.
        const std::size_t idx = raw->tag;
        if (idx >= workers_.size())
            return;
        const std::uint64_t tid =
            (srv_version_ << kWeightXferShift) | idx;
        net::Host *dst = workers_[idx].host;
        sim_->after(cfg_.overhead.send, [this, dst, tid] {
            sendVector(*cluster_.ps, dst->ip(), kWorkerPort, kPsPort,
                       /*tos=*/0, tid, srv_weights_, wfmt_);
        });
        return;
    }
    if (const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload)) {
        const std::size_t idx = chunk->transfer_id & kIdMask;
        if (idx >= srv_rx_.size())
            return;
        const std::uint64_t seq = chunk->transfer_id >> kWeightXferShift;
        if (seq <= srv_applied_[idx])
            return; // late retransmission of an applied push (seq >= 1)
        if (seq < srv_asm_seq_[idx])
            return; // stale vs the push being assembled
        if (seq > srv_asm_seq_[idx]) {
            // Newer push supersedes a partial one (the worker moved
            // on); restart assembly for it.
            srv_rx_[idx].reset();
            srv_asm_seq_[idx] = seq;
        }
        if (!srv_rx_[idx].offer(*chunk))
            return;
        srv_applied_[idx] = seq;
        // The push timer lives in the worker's domain; done() hops.
        deferDone(push_retx_[idx], workers_[idx].host);
        // Full gradient received: apply it after the update cost.
        const sim::TimeNs wu =
            cfg_.profile.sample(IterComponent::kWeightUpdate, ps_rng_);
        if (!sim_->sharded()) {
            workers_[idx].metrics.add(IterComponent::kWeightUpdate, wu);
            workers_[idx].metrics.add(IterComponent::kGradAggregation,
                                      sim_->now() - workers_[idx].lgc_end);
        } else {
            // lgc_end and the accumulator belong to the worker's
            // domain: attribute there, against the arrival timestamp.
            WorkerCtx *wp = &workers_[idx];
            const sim::TimeNs arrive = sim_->now();
            inDomainOf(wp->host, [this, wp, wu, arrive] {
                wp->metrics.add(IterComponent::kWeightUpdate, wu);
                wp->metrics.add(IterComponent::kGradAggregation,
                                arrive > wp->lgc_end ? arrive - wp->lgc_end
                                                     : 0);
            });
        }
        const ml::Vec grad = srv_rx_[idx].vector();
        srv_rx_[idx].reset();
        sim_->after(cfg_.overhead.recv + wu, [this, grad] {
            srv_opt_->step(srv_weights_, grad);
            ++srv_version_;
            noteGlobalIteration();
        });
    }
}

void
AsyncPsJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (checkFailoverFrame(pkt))
        return;
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    const std::uint64_t version = chunk->transfer_id >> kWeightXferShift;
    if (rx_ver_[w.index] == kNoVer || version > rx_ver_[w.index]) {
        // First chunk of a reply, or a newer-version reply overtaking
        // a partial one (re-issued pull): restart assembly.
        w.rx.reset();
        rx_ver_[w.index] = version;
    } else if (version < rx_ver_[w.index]) {
        return; // late chunk of an older reply: drop
    }
    if (!w.rx.offer(*chunk))
        return;
    pull_retx_[w.index].done();
    pull_outstanding_[w.index] = false;
    rx_ver_[w.index] = kNoVer;
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp, version] {
        wp->agent->installWeights(wp->rx.vector());
        installed_version_[wp->index] = version;
        wp->rx.reset();
        lgc(*wp);
    });
}

void
AsyncPsJob::lgc(WorkerCtx &w)
{
    if (stopped())
        return;
    const std::uint64_t tw = installed_version_[w.index];
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp, tw] {
        // Algorithm 1's staleness rule, applied to the PS baseline for
        // a fair comparison: commit only lightly stale gradients. The
        // snapshot can lag the version we installed from (tw), so
        // clamp instead of letting unsigned subtraction wrap.
        const std::uint64_t v = stalenessVersion();
        if ((v > tw ? v - tw : 0) <= cfg_.staleness_bound) {
            const std::uint64_t seq = ++push_seq_[wp->index];
            sim_->after(cfg_.overhead.send, [this, wp, seq] {
                const std::uint64_t tid =
                    (seq << kWeightXferShift) | wp->index;
                if (recoveryEnabled())
                    last_push_[wp->index] = wp->pending_grad;
                sendVector(*wp->host, cluster_.ps->ip(), kPsPort,
                           kWorkerPort, /*tos=*/0, tid,
                           wp->pending_grad, fmt_, /*seg_base=*/0,
                           /*job=*/0, /*ver_quota=*/0, wp->ppp.get());
                push_retx_[wp->index].arm([this, wp, tid,
                                           seq]() -> std::size_t {
                    const std::size_t i = wp->index;
                    if (stopped() || push_seq_[i] != seq)
                        return 0;
                    if (!crossDomainFabric()) {
                        if (srv_applied_[i] >= seq)
                            return 0;
                        // If the server never adopted this seq, all of
                        // it is missing; else consult its assembler.
                        std::vector<std::uint64_t> missing;
                        if (srv_asm_seq_[i] == seq) {
                            missing = srv_rx_[i].missingSegments();
                        } else {
                            missing.resize(fmt_.segments());
                            for (std::uint64_t s = 0; s < missing.size();
                                 ++s)
                                missing[s] = s;
                        }
                        for (std::uint64_t seg : missing) {
                            sendVectorSegment(
                                *wp->host, cluster_.ps->ip(), kPsPort,
                                kWorkerPort, /*tos=*/0, tid, last_push_[i],
                                fmt_, seg, /*seg_base=*/0, /*job=*/0,
                                /*ver_quota=*/0, wp->ppp.get());
                            ++recovery_.retransmits;
                        }
                        return missing.size();
                    }
                    // Partitioned fabric: probe the server's assembler
                    // in its home domain, hop back here to resend.
                    inDomainOf(cluster_.ps, [this, wp, tid, seq] {
                        const std::size_t i = wp->index;
                        if (stopped() || srv_applied_[i] >= seq ||
                            srv_asm_seq_[i] > seq)
                            return;
                        std::vector<std::uint64_t> missing;
                        if (srv_asm_seq_[i] == seq) {
                            missing = srv_rx_[i].missingSegments();
                        } else {
                            missing.resize(fmt_.segments());
                            for (std::uint64_t s = 0; s < missing.size();
                                 ++s)
                                missing[s] = s;
                        }
                        if (missing.empty())
                            return;
                        inDomainOf(wp->host,
                                   [this, wp, tid, seq,
                                    missing = std::move(missing)] {
                            const std::size_t i = wp->index;
                            if (stopped() || push_seq_[i] != seq)
                                return;
                            for (std::uint64_t seg : missing) {
                                sendVectorSegment(
                                    *wp->host, cluster_.ps->ip(), kPsPort,
                                    kWorkerPort, /*tos=*/0, tid,
                                    last_push_[i], fmt_, seg,
                                    /*seg_base=*/0, /*job=*/0,
                                    /*ver_quota=*/0, wp->ppp.get());
                                ++recovery_.retransmits;
                            }
                        });
                    });
                    return 1;
                });
            });
        }
        ++wp->round;
        pullWeights(*wp);
    });
}

} // namespace isw::dist
