#include "dist/ps_async.hh"

namespace isw::dist {

namespace {
constexpr std::uint64_t kWeightXferShift = 16;
constexpr std::uint64_t kPullRequestBytes = 64;
} // namespace

AsyncPsJob::AsyncPsJob(const JobConfig &cfg) : JobBase(cfg)
{
    fmt_ = gradientWire(/*iswitch_plane=*/false);
    srv_rx_.resize(workers_.size());
    for (auto &rx : srv_rx_)
        rx.reset(fmt_);
    for (auto &w : workers_)
        w.rx.reset(fmt_);
    installed_version_.assign(workers_.size(), 0);
    // The server's replica starts from the same weights as everyone.
    workers_.front().agent->getWeights(srv_weights_);
    srv_opt_ = std::make_unique<ml::Adam>(cfg_.agent.lr);
    ps_rng_ = sim_->forkRng();
}

void
AsyncPsJob::start()
{
    cluster_.ps->setReceiveHandler(
        [this](net::PacketPtr pkt) { onPsPacket(pkt); });
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        pullWeights(w);
}

void
AsyncPsJob::pullWeights(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.send, [this, wp] {
        wp->host->sendTo(cluster_.ps->ip(), kPsPort, kWorkerPort, /*tos=*/0,
                         net::RawPayload{kPullRequestBytes, wp->index});
    });
}

void
AsyncPsJob::onPsPacket(const net::PacketPtr &pkt)
{
    if (const auto *raw = std::get_if<net::RawPayload>(&pkt->payload)) {
        // Pull request: reply with the current weights, stamped with
        // the server version so the worker can track staleness.
        const std::size_t idx = raw->tag;
        if (idx >= workers_.size())
            return;
        const std::uint64_t tid =
            (srv_version_ << kWeightXferShift) | idx;
        net::Host *dst = workers_[idx].host;
        sim_->after(cfg_.overhead.send, [this, dst, tid] {
            sendVector(*cluster_.ps, dst->ip(), kWorkerPort, kPsPort,
                       /*tos=*/0, tid, srv_weights_, fmt_);
        });
        return;
    }
    if (const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload)) {
        const std::size_t idx = chunk->transfer_id;
        if (idx >= srv_rx_.size())
            return;
        if (!srv_rx_[idx].offer(*chunk))
            return;
        // Full gradient received: apply it after the update cost.
        const sim::TimeNs wu =
            cfg_.profile.sample(IterComponent::kWeightUpdate, ps_rng_);
        workers_[idx].metrics.add(IterComponent::kWeightUpdate, wu);
        workers_[idx].metrics.add(IterComponent::kGradAggregation,
                                  sim_->now() - workers_[idx].lgc_end);
        const ml::Vec grad = srv_rx_[idx].vector();
        srv_rx_[idx].reset();
        sim_->after(cfg_.overhead.recv + wu, [this, grad] {
            srv_opt_->step(srv_weights_, grad);
            ++srv_version_;
            noteGlobalIteration();
        });
    }
}

void
AsyncPsJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    if (!w.rx.offer(*chunk))
        return;
    const std::uint64_t version = chunk->transfer_id >> kWeightXferShift;
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp, version] {
        wp->agent->installWeights(wp->rx.vector());
        installed_version_[wp->index] = version;
        wp->rx.reset();
        lgc(*wp);
    });
}

void
AsyncPsJob::lgc(WorkerCtx &w)
{
    if (stopped())
        return;
    const std::uint64_t tw = installed_version_[w.index];
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp, tw] {
        // Algorithm 1's staleness rule, applied to the PS baseline for
        // a fair comparison: commit only lightly stale gradients.
        if (srv_version_ - tw <= cfg_.staleness_bound) {
            sim_->after(cfg_.overhead.send, [this, wp] {
                sendVector(*wp->host, cluster_.ps->ip(), kPsPort,
                           kWorkerPort, /*tos=*/0, wp->index,
                           wp->pending_grad, fmt_);
            });
        }
        ++wp->round;
        pullWeights(*wp);
    });
}

} // namespace isw::dist
