/**
 * @file
 * Pluggable worker pre/post-processor pipeline (DESIGN.md §14),
 * modeled on SwitchML's client-side prepostprocessors (bypass_ppp /
 * cpu_exponent_quantizer_ppp): a per-chunk stage that converts a
 * segment's logical fp32 gradients into wire words before the send
 * and back after the receive.
 *
 * The pre-processing half lives here; the post-processing half is
 * performed by VectorAssembler as segments land (transport.hh), keyed
 * off WireFormat::precision and each chunk's own tag + exponent — so
 * receivers need no processor object and results decoded from the
 * switch take the same path as worker-to-worker traffic.
 *
 * Three processors:
 *  - BypassPpp: raw fp32 words, bit-identical to the legacy wire;
 *  - Fp16Ppp:   two packed IEEE binary16 halves per wire word;
 *  - Int32Ppp:  block-shared-exponent fixed point (ml/quantize). The
 *               exponent is chosen per segment, or forced by the
 *               caller when a switch-side aggregation needs all
 *               contributors to agree (sendVector's seg_qexp span).
 */

#ifndef ISW_DIST_PIPELINE_HH
#define ISW_DIST_PIPELINE_HH

#include <memory>
#include <span>

#include "dist/transport.hh"
#include "ml/quantize.hh"
#include "net/packet.hh"

namespace isw::dist {

/** Sentinel for encodeSeg: pick the block exponent automatically. */
constexpr int kAutoQexp = 127;

/** Deterministic per-processor counters (RunResult::extras). */
struct PipelineStats
{
    std::uint64_t segments = 0;     ///< data segments encoded
    std::uint64_t value_clamps = 0; ///< values saturated by the codec
    std::uint64_t exp_clamps = 0;   ///< exponents clamped to wire range
};

/**
 * One worker's (or server's) pipeline stage. Stateful only in its
 * counters; give each simulated endpoint its own instance — sharded
 * runs execute workers on different domain threads.
 */
class PrePostProcessor
{
  public:
    virtual ~PrePostProcessor() = default;

    /** Wire precision this processor produces. */
    virtual net::Precision precision() const = 0;

    /**
     * Encode one segment's logical floats into @p chunk's wire words
     * and stamp chunk.prec / chunk.qexp. @p forced_qexp pins the
     * shared exponent for int32 blocks (kAutoQexp = choose from the
     * data); other precisions ignore it.
     */
    virtual void encodeSeg(std::span<const float> logical,
                           net::ChunkPayload &chunk,
                           int forced_qexp = kAutoQexp) = 0;

    const PipelineStats &stats() const { return stats_; }

  protected:
    PipelineStats stats_;
};

/** Raw fp32 words: byte-identical to the pre-pipeline wire. */
class BypassPpp final : public PrePostProcessor
{
  public:
    net::Precision precision() const override
    {
        return net::Precision::kFp32;
    }
    void encodeSeg(std::span<const float> logical, net::ChunkPayload &chunk,
                   int forced_qexp) override;
};

/** Two packed IEEE binary16 halves per 32-bit wire word. */
class Fp16Ppp final : public PrePostProcessor
{
  public:
    net::Precision precision() const override
    {
        return net::Precision::kFp16;
    }
    void encodeSeg(std::span<const float> logical, net::ChunkPayload &chunk,
                   int forced_qexp) override;
};

/**
 * Block-shared-exponent int32 (SwitchML-style exponent quantizer).
 * @p headroom is the number of worst-case contributions the switch
 * will sum into one slot (1 for endpoint-aggregated strategies, H
 * for switch-aggregated ones choosing exponents automatically).
 */
class Int32Ppp final : public PrePostProcessor
{
  public:
    explicit Int32Ppp(std::uint32_t headroom = 1) : headroom_(headroom) {}

    net::Precision precision() const override
    {
        return net::Precision::kInt32;
    }
    void encodeSeg(std::span<const float> logical, net::ChunkPayload &chunk,
                   int forced_qexp) override;

  private:
    std::uint32_t headroom_;
};

/**
 * Build the processor for @p precision (@p headroom as in Int32Ppp).
 */
std::unique_ptr<PrePostProcessor>
makePrePostProcessor(net::Precision precision, std::uint32_t headroom = 1);

} // namespace isw::dist

#endif // ISW_DIST_PIPELINE_HH
