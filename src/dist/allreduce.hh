/**
 * @file
 * Ring-AllReduce training (paper Figure 1b), the AR baseline: the
 * gradient vector is split into N chunks; over 2(N-1) steps each
 * worker sends one chunk to its ring successor (through the switch)
 * and folds/stores the chunk arriving from its predecessor
 * (scatter-reduce then all-gather). Bandwidth-optimal, but every step
 * costs network hops and per-message host overhead — which is why the
 * paper finds AR *slower* than PS for the tiny PPO/DDPG models.
 */

#ifndef ISW_DIST_ALLREDUCE_HH
#define ISW_DIST_ALLREDUCE_HH

#include <map>

#include "dist/strategy.hh"

namespace isw::dist {

/** Sync Ring-AllReduce job (AR rows of Tables 3/4). */
class SyncAllReduceJob : public JobBase
{
  public:
    explicit SyncAllReduceJob(const JobConfig &cfg);

  protected:
    void start() override;

  private:
    /** Logical/wire extent of one ring chunk. */
    struct ChunkSpec
    {
        std::uint64_t log_begin = 0;
        std::uint64_t log_end = 0;
        std::uint64_t wire_bytes = 0;
    };

    /** Per-worker ring state beyond the base WorkerCtx. */
    struct RingState
    {
        ml::Vec acc;               ///< working copy being reduced
        std::size_t step = 0;      ///< next step awaiting receive
        std::uint64_t round = 0;
        /** Buffered per-step chunk assemblers, keyed by transfer id. */
        std::map<std::uint64_t, VectorAssembler> inflight;
        bool processing = false;
        /** True between startRing and ringDone; chunks arriving while
         *  this worker is still computing are buffered, not applied. */
        bool active = false;
    };

    /**
     * Retransmission state for one in-flight ring transfer. The data
     * is a snapshot of the sent chunk: rs.acc keeps mutating as later
     * steps fold into it, so resends must not re-read it. Lives in a
     * std::map (node-based) because RetxTimer is address-pinned.
     */
    struct Outgoing
    {
        std::vector<float> data;
        WireFormat fmt;
        net::Host *src = nullptr;
        net::Host *dst = nullptr;
        RetxTimer timer;
    };

    void beginRound(WorkerCtx &w);
    void startRing(WorkerCtx &w);
    void sendStep(WorkerCtx &w, std::size_t step);
    void onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt);
    void tryAdvance(WorkerCtx &w);
    void ringDone(WorkerCtx &w);

    /** Chunk index worker @p i transmits at @p step. */
    std::size_t sendChunkAt(std::size_t i, std::size_t step) const;
    /** Chunk index worker @p i receives at @p step. */
    std::size_t recvChunkAt(std::size_t i, std::size_t step) const;

    std::uint64_t xferId(std::uint64_t round, std::size_t step) const
    {
        return round * 1000 + step;
    }

    std::size_t totalSteps() const { return 2 * (workers_.size() - 1); }

    std::vector<ChunkSpec> chunks_;
    std::vector<RingState> ring_;
    /** Per-sender in-flight transfers, keyed by transfer id; entries
     *  exist only while recovery is enabled. */
    std::vector<std::map<std::uint64_t, Outgoing>> out_;
};

} // namespace isw::dist

#endif // ISW_DIST_ALLREDUCE_HH
