/**
 * @file
 * Distributed-training job framework.
 *
 * A Job owns a simulation, a cluster, and one timed worker context per
 * training node, and implements one of the paper's five training
 * strategies (§5.2): Sync PS, Sync AllReduce, Sync iSwitch, Async PS,
 * Async iSwitch. Subclasses provide the event choreography; the base
 * provides timing charges, stop conditions, reward curves, and result
 * collection.
 */

#ifndef ISW_DIST_STRATEGY_HH
#define ISW_DIST_STRATEGY_HH

#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>

#include "dist/cluster.hh"
#include "dist/metrics.hh"
#include "dist/pipeline.hh"
#include "dist/timing.hh"
#include "dist/transport.hh"
#include "net/fault.hh"
#include "net/packet_pool.hh"
#include "rl/agent.hh"
#include "rl/model_zoo.hh"

namespace isw::dist {

/** The five training strategies evaluated by the paper. */
enum class StrategyKind {
    kSyncPs,
    kSyncAllReduce,
    kSyncIswitch,
    kAsyncPs,
    kAsyncIswitch,
    /** Extension baseline (not in the paper): K-way sharded sync PS. */
    kSyncShardedPs,
};

/** Printable strategy name (paper notation: PS/AR/iSW/...). */
const char *strategyName(StrategyKind k);

/** True for the asynchronous strategies. */
bool isAsyncStrategy(StrategyKind k);

/** When to end a training run. */
struct StopCondition
{
    std::uint64_t max_iterations = 200;
    /** Stop early when the cluster-average reward reaches this. */
    double target_reward = std::numeric_limits<double>::quiet_NaN();
    /** Episodes required before the reward target is consulted. */
    std::uint64_t min_episodes = 10;
    /**
     * Simulated-time watchdog: when > 0 and the run has not met a stop
     * condition by this simulated instant, it terminates with a
     * diagnostic RunResult::error instead of spinning the event loop
     * (a lossy run of an unprotected strategy used to hang forever).
     */
    sim::TimeNs max_sim_time = 0;

    bool
    hasTarget() const
    {
        return !std::isnan(target_reward);
    }
};

/** Complete description of one distributed training run. */
struct JobConfig
{
    rl::Algo algo = rl::Algo::kDqn;
    StrategyKind strategy = StrategyKind::kSyncIswitch;
    std::size_t num_workers = 4;
    rl::AgentConfig agent;
    /**
     * Bytes the gradient occupies on the wire (paper model size).
     * 0 means "the actual local model size".
     */
    std::uint64_t wire_model_bytes = 0;
    ComputeProfile profile;
    /**
     * Per-message host cost of the PS/AR baselines, which ride the
     * full framework stack (PyTorch distributed / OpenMPI in the
     * paper's reference designs, §5.1).
     */
    HostOverhead overhead{1500 * sim::kUsec, 1000 * sim::kUsec};
    /**
     * Per-message host cost on the iSwitch plane, whose custom raw
     * UDP protocol (§3.2) bypasses the framework stack.
     */
    HostOverhead iswitch_overhead{30 * sim::kUsec, 20 * sim::kUsec};
    /** Server summation throughput for the PS baselines (bytes/s). */
    double ps_sum_bytes_per_sec = 8e9;
    ClusterConfig cluster;
    bool use_tree = false; ///< star (main cluster) vs rack-scale tree
    /**
     * Three-layer ToR-AGG-Core fat-tree (takes precedence over
     * use_tree; see buildFatTreeCluster). cluster.per_rack,
     * cluster.racks_per_pod, and cluster.core_link shape the fabric.
     */
    bool use_fat_tree = false;
    /**
     * Execute on the domain-sharded parallel engine (sim/shard.hh):
     * one domain per rack, windows bounded by the uplink propagation
     * delay. Requires a multi-rack tree/fat-tree cluster (throws
     * otherwise); every strategy and lossy/faulted environments are
     * supported (DESIGN.md §15). Sync lossless and sync lossy reports
     * are byte-identical to the serial engine; async reports are
     * deterministic across shard_threads. Both hold up to
     * sub-lookahead event ties, which the millisecond-scale compute
     * jitter makes vanishingly unlikely; the determinism regression
     * tests pin this.
     */
    bool shard = false;
    /** Worker threads for the sharded engine (0 = one per core). */
    unsigned shard_threads = 0;
    std::uint64_t seed = 1;
    /** Algorithm 1's staleness bound S (async strategies). */
    std::uint32_t staleness_bound = 3;
    /** Shard count for the sharded-PS extension baseline. */
    std::size_t ps_shards = 4;
    /**
     * Async iSwitch aggregation threshold H (the SetH knob, Table 2).
     * 0 = the paper default: H tracks the number of workers. Smaller
     * H broadcasts partial sums more often — more frequent, noisier
     * updates.
     */
    std::uint32_t agg_threshold = 0;
    /**
     * Gradient wire precision — the pre/post-processor pipeline every
     * strategy runs per chunk (DESIGN.md §14). kFp32 is the lossless
     * bypass (reports byte-identical to a build without the
     * pipeline); kFp16 packs two halves per wire word and halves a
     * paper-sized wire model; kInt32 is block-shared-exponent fixed
     * point, which the switch accumulates exactly with integer adds.
     * Async-PS weight pulls always stay fp32 — only gradients
     * quantize.
     */
    net::Precision precision = net::Precision::kFp32;
    StopCondition stop;
    std::size_t curve_every = 10; ///< curve sample period (iterations)
    /**
     * Declarative fault schedule (empty = no injector attached; the
     * data path is bit-identical to a build without the subsystem).
     */
    net::FaultPlan faults;
    /**
     * Universal loss-recovery knobs. Recovery activates only in lossy
     * environments (link loss_prob > 0 or a non-empty fault plan), so
     * lossless runs schedule zero recovery events. timeout 0 derives a
     * default from the wire size and worker count.
     */
    RetransmitPolicy retx;

    /** Preset for @p algo + @p strategy with zoo hyperparameters and
     *  the paper's wire model size. */
    static JobConfig forBenchmark(rl::Algo algo, StrategyKind strategy,
                                  std::size_t num_workers = 4);
};

/**
 * A slice of a shared switch fabric handed to a job that coexists with
 * other jobs on one Simulation (multi-job switch sharing, DESIGN.md
 * §11). The job uses the fabric's switches and a contiguous range of
 * its worker hosts instead of building its own cluster.
 */
struct SharedWorld
{
    sim::Simulation *sim = nullptr;
    Cluster *fabric = nullptr;      ///< shared topology (owned elsewhere)
    std::size_t worker_offset = 0;  ///< first worker host of this job
    std::uint8_t job_id = 0;        ///< tag on every packet/member row
    std::uint32_t slot_quota = 0;   ///< aggregator slots partitioned to us
};

/** Base class implementing the shared run machinery. */
class JobBase
{
  public:
    JobBase(const JobConfig &cfg);

    /** Construct against a shared fabric instead of an owned world.
     *  Fault plans and tree clusters are owned-mode only. */
    JobBase(const JobConfig &cfg, const SharedWorld &world);

    virtual ~JobBase();

    JobBase(const JobBase &) = delete;
    JobBase &operator=(const JobBase &) = delete;

    /** Execute the job to completion and collect results. */
    RunResult run();

    /**
     * Split-phase execution for shared-fabric scheduling: beginRun()
     * snapshots counters and schedules the initial events; the caller
     * drives the shared simulation; finishRun() assembles the result.
     * run() is exactly beginRun + drive + finishRun for owned jobs.
     */
    void beginRun();
    RunResult finishRun(std::string error);

    /** Has this job met one of its stop conditions? */
    bool finished() const { return stopped_; }

    sim::Simulation &simulation() { return *sim_; }
    const Cluster &cluster() const { return cluster_; }
    const JobConfig &config() const { return cfg_; }

    /** Worker @p i's agent (inspection by tests and examples). */
    rl::Agent &workerAgent(std::size_t i);

  protected:
    /** Per-worker simulation state. */
    struct WorkerCtx
    {
        std::size_t index = 0;
        net::Host *host = nullptr;
        std::unique_ptr<rl::Agent> agent;
        sim::Rng rng; ///< timing jitter stream
        IterationMetrics metrics;
        VectorAssembler rx;
        /**
         * This worker's pipeline stage (always present; BypassPpp for
         * fp32). Per worker, not per job: sharded runs execute
         * workers on different domain threads and the stage keeps
         * mutable counters.
         */
        std::unique_ptr<PrePostProcessor> ppp;
        ml::Vec pending_grad;     ///< gradient awaiting transmission
        sim::TimeNs lgc_end = 0;  ///< when the last LGC stage finished
        std::uint64_t round = 0;  ///< sync round / iteration index
        std::uint64_t ts = 0;     ///< async weight version (Algorithm 1)
    };

    /** Schedule the initial events (called once by run()). */
    virtual void start() = 0;

    /**
     * Populate RunResult::extras after the simulation drains. The base
     * records switch-side resource stats (peak active segment buffers,
     * recovery-cache entries) when the cluster has an aggregation
     * root; subclasses add strategy-specific counters.
     */
    virtual void collectExtras(RunResult &res) const;

    /**
     * Run the LGC stage for @p w: computes the real gradient at the
     * current weights (snapshot semantics), charges the calibrated
     * component times, and invokes @p done when the stage finishes in
     * simulated time.
     */
    void scheduleLgc(WorkerCtx &w, std::function<void()> done);

    /** Charge and return a jittered weight-update duration. */
    sim::TimeNs chargeWeightUpdate(WorkerCtx &w);

    /** Record aggregation latency for this worker's iteration. */
    void chargeAggregation(WorkerCtx &w, sim::TimeNs dur)
    {
        w.metrics.add(IterComponent::kGradAggregation, dur);
    }

    /** Count one global iteration (weight update); updates curve and
     *  stop state. */
    void noteGlobalIteration();

    /** Cluster-average of the last-10-episode rewards. */
    double clusterAvgReward() const;

    /** Total episodes finished across workers. */
    std::uint64_t totalEpisodes() const;

    bool stopped() const { return stopped_; }

    /** The wire format gradients use on this job (cfg precision). */
    WireFormat gradientWire(bool iswitch_plane) const;

    /**
     * gradientWire at an explicit precision. Async-PS weight pulls
     * pass kFp32: the server's reply is authoritative state, not a
     * gradient, and always travels lossless.
     */
    WireFormat gradientWire(bool iswitch_plane,
                            net::Precision precision) const;

    /** Build a pipeline stage for this job's configured precision. */
    std::unique_ptr<PrePostProcessor>
    makePipeline(std::uint32_t headroom = 1) const
    {
        return makePrePostProcessor(cfg_.precision, headroom);
    }

    /** Can frames be lost (link loss or an attached fault plan)? */
    bool lossyEnv() const;

    /** Should strategies arm retransmission timers? */
    bool recoveryEnabled() const { return recovery_on_; }

    /** The resolved retransmission policy (timeout never 0). */
    const RetransmitPolicy &retxPolicy() const { return retx_; }

    /** Configure @p t against this job's policy iff recovery is on;
     *  unconfigured timers no-op, so call sites stay unconditional. */
    void configureTimer(RetxTimer &t)
    {
        if (recovery_on_)
            t.configure(*sim_, retx_, recovery_);
    }

    /**
     * True when the cluster is partitioned into >= 2 shard domains
     * (multi-rack tree/fat-tree fabrics) — regardless of the engine
     * actually in use. The cross-domain hop discipline below keys off
     * the *fabric*, not off cfg_.shard, so a serial run of a
     * partitioned fabric behaves identically to its sharded twin
     * (byte-identical reports), while star clusters keep the legacy
     * zero-hop paths bit for bit.
     */
    bool crossDomainFabric() const { return cluster_.sim_domains >= 2; }

    /**
     * Fixed delay when deferring work into another node's domain:
     * the conservative window width, so a mid-window handoff is
     * always a legal cross-domain schedule (now >= window start =>
     * now + hop >= window end).
     */
    sim::TimeNs domainHopDelay() const
    {
        return std::max<sim::TimeNs>(cluster_.domain_lookahead, 1);
    }

    /**
     * Run @p fn in the domain owning node @p n. Single-domain fabrics
     * call it inline (zero new events — star reports unchanged);
     * partitioned fabrics schedule it at now + domainHopDelay() in
     * n's domain, on serial *and* sharded engines alike. Used to
     * introspect another domain's receive state (retransmit probes)
     * and to resend from the owning side.
     */
    void inDomainOf(const net::Node *n, std::function<void()> fn);

    /**
     * Complete @p t from a foreign domain: defers t.done() into the
     * domain of @p home (the node whose event chain armed the timer).
     * Inline on single-domain fabrics or when recovery is off, so
     * lossless and star runs schedule zero extra events. The deferred
     * done cannot race a re-arm: re-arming requires a full network
     * round trip (>> one hop) after the completion that triggered it.
     */
    void deferDone(RetxTimer &t, const net::Node *home);

    /**
     * Window-barrier callback (sharded runs only): invoked on the
     * owning thread after every conservative window, with all domains
     * quiescent. Async strategies publish their cross-domain version
     * snapshots here (DESIGN.md §15).
     */
    virtual void onShardBarrier() {}

    /** The attached fault injector, or nullptr. */
    net::FaultInjector *faultInjector() const { return injector_.get(); }

    // ----- High-availability failover (DESIGN.md §16) -----

    /** Has the backup taken over (kFailover observed by this job)? */
    bool
    failedOver() const
    {
        return ha_failed_over_.load(std::memory_order_relaxed);
    }

    /**
     * Aggregation-plane address worker @p w targets: its leaf switch,
     * or the promoted backup once an HA root has failed over (star
     * fabrics re-home directly; tree/fat-tree workers keep their ToR,
     * whose uplink re-parents instead).
     */
    net::Ipv4Addr aggIpOf(const WorkerCtx &w) const;

    /**
     * Strategy packet-handler front door: a kFailover control frame
     * re-homes the job (handleFailover) and returns true (the frame
     * carries no other payload). Everything else returns false.
     */
    bool checkFailoverFrame(const net::PacketPtr &pkt);

    /**
     * Re-home the job onto the promoted backup. Idempotent. Star
     * fabrics flip every dual-homed host's active uplink; tree/fat
     * fabrics need no host action (their child switches re-parent via
     * ControlPlane failover hooks).
     */
    void handleFailover();

    /** Job id stamped on this job's packets (0 for owned worlds). */
    std::uint8_t jobId() const { return job_id_; }

    /** Aggregator slots available to this job on the root switch
     *  (0 = unbounded pool: no streaming window needed). */
    std::uint32_t slotQuota() const { return slot_quota_; }

    JobConfig cfg_;
    std::unique_ptr<sim::Simulation> owned_sim_; ///< owned-world storage
    sim::Simulation *sim_ = nullptr; ///< the world (owned or shared)
    Cluster cluster_;
    std::vector<WorkerCtx> workers_;

    std::uint64_t global_iters_ = 0;
    sim::TimeNs last_update_time_ = 0;
    /**
     * Atomic because sharded runs read the stop flag from every
     * worker's domain thread while worker 0's domain writes it.
     * Within one conservative window the read is racy by design —
     * identical to serial order except for sub-lookahead event ties
     * (see JobConfig::shard).
     */
    std::atomic<bool> stopped_{false};
    bool reached_target_ = false;
    sim::TimeSeries curve_;
    /** Shared recovery counters (all strategies' timers feed here). */
    RecoveryStats recovery_;

  private:
    void initWorkers();
    void resolveRetx();
    void checkStop();
    void installFaults();

    /** Arm the periodic HA tick (no-op without a backup). */
    void scheduleHaTick();
    /** One HA tick: primary heartbeat + backup liveness check. */
    void haTick();

    /**
     * Switch sim_ to the domain-sharded engine per the cluster's shard
     * plan and give every domain a private PacketPool. Owned-world
     * only; throws unless the cluster is multi-rack (any strategy,
     * lossy or lossless — DESIGN.md §15).
     */
    void enableSharding();

    /**
     * Worker state mirrored for cross-domain readers. Sharded runs
     * sample reward curves and stop conditions from worker 0's domain
     * while other workers' agents are stepping on their own threads;
     * reading the agents directly would race. Each worker republishes
     * after every gradient computation (the only point its episode
     * state changes), so the snapshot equals the live value at every
     * event boundary — serial runs read it too and are byte-identical.
     */
    struct PublishedWorker
    {
        std::atomic<double> reward{0.0};
        std::atomic<std::uint64_t> episodes{0};
    };

    /** Refresh @p w's published snapshot from its agent. */
    void publishWorker(const WorkerCtx &w);

    /** Pool counters summed across the main thread and all domains. */
    net::PacketPool::Stats pooledPacketStats() const;

    std::unique_ptr<net::FaultInjector> injector_;
    /** deque: atomics are neither movable nor copyable. */
    std::deque<PublishedWorker> published_;
    /** Per-domain packet pools for sharded runs (index = domain id). */
    std::deque<net::PacketPool> domain_pools_;
    RetransmitPolicy retx_; ///< resolved policy (timeout never 0)
    bool recovery_on_ = false;
    std::uint8_t job_id_ = 0;
    std::uint32_t slot_quota_ = 0;
    /** Atomic: kFailover frames can land on any domain's thread. */
    std::atomic<bool> ha_failed_over_{false};

    /** beginRun() snapshots, consumed by finishRun(). */
    std::uint64_t run_pool_sealed0_ = 0;
    std::uint64_t run_pool_pallocs0_ = 0;
    std::uint64_t run_pool_fallocs0_ = 0;
    std::uint64_t run_pool_preuse0_ = 0;
    std::uint64_t run_pool_freuse0_ = 0;
    std::uint64_t run_events0_ = 0;
    std::chrono::steady_clock::time_point run_t0_;
};

/** Construct the right Job subclass for @p cfg. */
std::unique_ptr<JobBase> makeJob(const JobConfig &cfg);

/**
 * Construct a job against a shared switch fabric (multi-job switch
 * sharing). Only the iSwitch strategies can share a switch; anything
 * else throws std::invalid_argument.
 */
std::unique_ptr<JobBase> makeSharedJob(const JobConfig &cfg,
                                       const SharedWorld &world);

/** Convenience: build, run, destroy. */
RunResult runJob(const JobConfig &cfg);

} // namespace isw::dist

#endif // ISW_DIST_STRATEGY_HH
