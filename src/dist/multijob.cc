#include "dist/multijob.hh"

#include <algorithm>
#include <stdexcept>

namespace isw::dist {

namespace {

/** Jain's fairness index over per-job throughputs (1 = perfectly
 *  fair, 1/K = one job starves the rest). Degenerate inputs (all
 *  zero) report 1: nobody is being treated unequally. */
double
jainIndex(const std::vector<double> &xs)
{
    double sum = 0.0, sq = 0.0;
    for (double x : xs) {
        sum += x;
        sq += x * x;
    }
    if (sq == 0.0)
        return 1.0;
    return (sum * sum) / (static_cast<double>(xs.size()) * sq);
}

} // namespace

MultiJobResult
runSharedJobs(const MultiJobConfig &cfg)
{
    const std::size_t k = cfg.jobs.size();
    if (k == 0)
        throw std::invalid_argument("runSharedJobs: no jobs");
    if (k > 200)
        throw std::invalid_argument(
            "runSharedJobs: job ids are 8-bit (at most 200 jobs)");

    // One world, one star fabric holding every job's workers, tagged
    // so the switch broadcasts each job's results only to its own
    // members.
    sim::Simulation sim(cfg.seed);
    ClusterConfig fabric_cfg = cfg.fabric;
    fabric_cfg.with_ps = false;
    fabric_cfg.ps_shards = 1;
    fabric_cfg.num_workers = 0;
    fabric_cfg.worker_jobs.clear();
    for (std::size_t i = 0; i < k; ++i) {
        fabric_cfg.num_workers += cfg.jobs[i].num_workers;
        fabric_cfg.worker_jobs.insert(fabric_cfg.worker_jobs.end(),
                                      cfg.jobs[i].num_workers,
                                      static_cast<std::uint8_t>(i + 1));
    }
    Cluster fabric = buildStarCluster(sim, fabric_cfg);

    // Partition the bounded slot pool proportionally to each job's
    // tensor segment count: a job streaming a 100 MB model through the
    // same window as a 1 MB job starves under an even split. Every job
    // keeps at least one slot; the spare slots are apportioned by
    // largest remainder (ties: higher fraction, then lower index), so
    // the layout is deterministic and sums to exactly `slots`. An
    // unbounded pool needs no partition (quota 0 = "no streaming
    // window required").
    const std::size_t slots = fabric_cfg.accel.num_slots;
    std::vector<std::uint32_t> quotas(k, 0);
    if (slots > 0) {
        if (slots < k)
            throw std::invalid_argument(
                "runSharedJobs: fewer aggregator slots than jobs");
        std::vector<std::uint64_t> segs(k);
        std::uint64_t total_segs = 0;
        for (std::size_t i = 0; i < k; ++i) {
            // wire_model_bytes == 0 means "actual model size", unknown
            // until the job is built; assume 1 MiB (same convention as
            // the event guard below).
            const std::uint64_t wire = cfg.jobs[i].wire_model_bytes == 0
                                           ? (std::uint64_t{1} << 20)
                                           : cfg.jobs[i].wire_model_bytes;
            segs[i] = core::segCount(wire);
            total_segs += segs[i];
        }
        const auto spare = static_cast<std::uint64_t>(slots - k);
        std::vector<double> frac(k);
        std::uint64_t assigned = 0;
        for (std::size_t i = 0; i < k; ++i) {
            const double exact = static_cast<double>(spare) *
                                 static_cast<double>(segs[i]) /
                                 static_cast<double>(total_segs);
            const auto base = static_cast<std::uint64_t>(exact);
            quotas[i] = static_cast<std::uint32_t>(1 + base);
            frac[i] = exact - static_cast<double>(base);
            assigned += base;
        }
        std::vector<std::size_t> order(k);
        for (std::size_t i = 0; i < k; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&frac](std::size_t a, std::size_t b) {
                             return frac[a] > frac[b];
                         });
        for (std::uint64_t r = 0; r < spare - assigned; ++r)
            ++quotas[order[r % k]];
        auto &pool = fabric.root->accelerator().pool();
        std::size_t first = 0;
        for (std::size_t i = 0; i < k; ++i) {
            pool.setJobPartition(static_cast<std::uint8_t>(i + 1), first,
                                 quotas[i]);
            first += quotas[i];
        }
    }

    // Construct every job against its fabric slice. The job's own
    // cluster knobs are overridden by the fabric's so derived values
    // (retransmission auto-timeouts, lossy-environment detection)
    // describe the network the job actually runs on.
    std::vector<std::unique_ptr<JobBase>> jobs;
    jobs.reserve(k);
    std::size_t offset = 0;
    for (std::size_t i = 0; i < k; ++i) {
        JobConfig jc = cfg.jobs[i];
        jc.cluster.edge_link = fabric_cfg.edge_link;
        jc.cluster.uplink = fabric_cfg.uplink;
        jc.cluster.accel = fabric_cfg.accel;
        SharedWorld world;
        world.sim = &sim;
        world.fabric = &fabric;
        world.worker_offset = offset;
        world.job_id = static_cast<std::uint8_t>(i + 1);
        world.slot_quota = quotas[i];
        jobs.push_back(makeSharedJob(jc, world));
        offset += jc.num_workers;
    }

    for (auto &j : jobs)
        j->beginRun();

    // Drive the shared event loop until every job meets its stop
    // condition. Chunked execution so the all-finished check runs
    // between batches; the guard and watchdog mirror JobBase::run().
    std::size_t guard = 0;
    sim::TimeNs watchdog = 0;
    for (const auto &j : jobs) {
        const JobConfig &jc = j->config();
        // wire_model_bytes == 0 means "actual model size", unknown
        // here; assume 1 MiB so the guard errs generous.
        const std::uint64_t wire = jc.wire_model_bytes == 0
                                       ? (std::uint64_t{1} << 20)
                                       : jc.wire_model_bytes;
        guard += (jc.stop.max_iterations + 10) * jc.num_workers *
                 (core::segCount(wire) * 64 + 4096);
        watchdog = std::max(watchdog, jc.stop.max_sim_time);
    }
    const auto all_finished = [&jobs] {
        return std::all_of(jobs.begin(), jobs.end(),
                           [](const auto &j) { return j->finished(); });
    };
    std::size_t executed = 0;
    std::string error;
    while (!all_finished()) {
        const std::size_t chunk = 65536;
        const std::size_t ran = sim.run(std::min(chunk, guard - executed));
        executed += ran;
        if (ran == 0) {
            if (!all_finished())
                error = "stalled: shared event queue drained with "
                        "unfinished jobs";
            break;
        }
        if (watchdog > 0 && sim.now() > watchdog && !all_finished()) {
            error = "watchdog: not every job met its stop condition "
                    "by max_sim_time";
            break;
        }
        if (executed >= guard) {
            error = "event guard exhausted: runaway shared event loop";
            break;
        }
    }

    MultiJobResult out;
    out.jobs.reserve(k);
    std::vector<double> throughput;
    double agg = 0.0;
    for (auto &j : jobs) {
        RunResult r = j->finishRun(j->finished() ? "" : error);
        const double secs = static_cast<double>(r.total_time) / 1e9;
        const double x =
            secs > 0.0 ? static_cast<double>(r.iterations) / secs : 0.0;
        throughput.push_back(x);
        agg += x;
        out.jobs.push_back(std::move(r));
    }

    out.fabric["jobs"] = static_cast<double>(k);
    out.fabric["jain_fairness"] = jainIndex(throughput);
    out.fabric["aggregate_iterations_per_sec"] = agg;
    const auto &pool = fabric.root->accelerator().pool();
    if (pool.bounded()) {
        const core::SlotPoolStats t = pool.totals();
        out.fabric["slot_capacity"] = static_cast<double>(pool.capacity());
        out.fabric["slot_contention_events"] =
            static_cast<double>(pool.contentionEvents());
        out.fabric["slot_stale_drops"] = static_cast<double>(t.stale_drops);
        out.fabric["slot_busy_drops"] = static_cast<double>(t.busy_drops);
        out.fabric["slot_unadmitted"] = static_cast<double>(t.unadmitted);
        out.fabric["slot_reclaimed"] = static_cast<double>(t.reclaimed);
    }
    return out;
}

} // namespace isw::dist
