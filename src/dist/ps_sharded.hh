/**
 * @file
 * Sharded synchronous parameter server — an extension baseline.
 *
 * The paper identifies the PS's central link as the scalability
 * bottleneck (§2.3). The classic systems mitigation is sharding: K
 * server nodes each own 1/K of the parameter vector; workers scatter
 * their gradient slices to all shards, every shard sums its slice once
 * all N arrive, and broadcasts it back. This spreads the aggregation
 * load over K links at the cost of K x N messages per round — useful
 * context for how much of iSwitch's win survives against a stronger
 * server-side baseline (see `bench_ablation_sharded_ps`).
 */

#ifndef ISW_DIST_PS_SHARDED_HH
#define ISW_DIST_PS_SHARDED_HH

#include <deque>

#include "dist/strategy.hh"

namespace isw::dist {

/** Sync sharded-PS job (extension; not a paper strategy). */
class SyncShardedPsJob : public JobBase
{
  public:
    explicit SyncShardedPsJob(const JobConfig &cfg);

  protected:
    void start() override;

  private:
    /** Logical/wire extent of one shard's slice. */
    struct ShardSpec
    {
        std::uint64_t log_begin = 0;
        std::uint64_t log_end = 0;
        std::uint64_t wire_bytes = 0;
        WireFormat fmt;
    };

    /** Per-shard server state. */
    struct ShardState
    {
        std::vector<VectorAssembler> rx; ///< one per worker
        std::size_t received = 0;
        std::uint64_t round = 0; ///< round this shard is collecting
        ml::Vec sum;
        /** The shard's pipeline stage for result sends (per shard:
         *  sharded runs may execute shards on domain threads). */
        std::unique_ptr<PrePostProcessor> ppp;
    };

    void beginRound(WorkerCtx &w);
    void onShardPacket(std::size_t shard, const net::PacketPtr &pkt);
    void shardAggregate(std::size_t shard);
    void onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt);
    void onSlicesComplete(WorkerCtx &w);

    std::vector<ShardSpec> shards_;
    std::vector<ShardState> state_;
    /** Per-worker count of completed result slices this round. */
    std::vector<std::size_t> slices_done_;
    /** Per-worker per-shard result assemblers. */
    std::vector<std::vector<VectorAssembler>> worker_rx_;
    /** Per-worker reassembled aggregate. */
    std::vector<ml::Vec> agg_;
    sim::TimeNs last_server_wu_ = 0;
    sim::Rng ps_rng_;
    /** Partitioned fabrics place each shard in its own domain, so the
     *  shared rng/last_wu pair above would be multi-writer. Instead
     *  each shard samples from its own fork and publishes its round's
     *  weight-update share here (single-writer per slot); workers take
     *  the max across shards when splitting the round's charge. Empty
     *  on star fabrics (legacy path, byte-identical reports). */
    std::vector<sim::Rng> shard_rng_;
    std::vector<sim::TimeNs> shard_wu_;
    /** Loss-recovery timers, flattened worker * K + shard (deque:
     *  RetxTimer is address-pinned by its pending event). */
    std::deque<RetxTimer> grad_retx_;
    std::deque<RetxTimer> result_retx_;
};

} // namespace isw::dist

#endif // ISW_DIST_PS_SHARDED_HH
