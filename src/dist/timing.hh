/**
 * @file
 * Per-iteration compute timing model.
 *
 * The paper breaks each training iteration into the components of
 * Figure 4. Everything network-side (gradient aggregation) is produced
 * by the network simulator; the *local* components are simulated
 * durations calibrated from the paper's measurements (Table 4
 * per-iteration times x Figure 4 non-aggregation fractions), with
 * lognormal jitter. Local compute is strategy-invariant — the paper
 * replays the same trace across PS/AR/iSwitch — which keeps strategy
 * comparisons fair.
 */

#ifndef ISW_DIST_TIMING_HH
#define ISW_DIST_TIMING_HH

#include <array>
#include <cstddef>

#include "rl/agent.hh"
#include "sim/random.hh"
#include "sim/time.hh"

namespace isw::dist {

/** The iteration components of paper Figure 4. */
enum class IterComponent : std::size_t {
    kAgentAction = 0,
    kEnvironReact,
    kBufferSampling,
    kMemoryAlloc,
    kForwardPass,
    kBackwardPass,
    kGpuCopy,
    kGradAggregation, ///< produced by the network simulation
    kWeightUpdate,
    kOthers,
    kCount,
};

constexpr std::size_t kNumComponents =
    static_cast<std::size_t>(IterComponent::kCount);

/** Printable component name (matches the paper's legend). */
const char *componentName(IterComponent c);

/** True for components that belong to Local Gradient Computing. */
bool isLgcComponent(IterComponent c);

/** Calibrated mean durations of the local iteration components. */
struct ComputeProfile
{
    /** Mean duration per component; aggregation entry ignored. */
    std::array<sim::TimeNs, kNumComponents> mean{};
    /** Coefficient of variation of the lognormal jitter. */
    double jitter_cv = 0.03;

    /** Sum of the LGC components' means. */
    sim::TimeNs lgcMean() const;

    /** Draw a jittered duration for @p c. */
    sim::TimeNs sample(IterComponent c, sim::Rng &rng) const;
};

/**
 * Calibrated profile for each paper benchmark (see DESIGN.md §5.6 for
 * the derivation from Table 4 and Figure 4).
 */
ComputeProfile profileFor(rl::Algo algo);

/**
 * A uniformly scaled copy of @p p (scale < 1 shrinks compute; used by
 * ablation benches exploring compute/communication ratios).
 */
ComputeProfile scaled(const ComputeProfile &p, double scale);

} // namespace isw::dist

#endif // ISW_DIST_TIMING_HH
