/**
 * @file
 * Asynchronous parameter-server training (paper Figure 3), the Async
 * PS baseline: the server owns the authoritative weights; each worker
 * independently pulls the latest weights, computes a gradient, and
 * pushes it; the server applies each arriving gradient immediately.
 * Iterations are counted at the server (weight updates). A staleness
 * bound S is enforced on the worker side, matching the S given to
 * asynchronous iSwitch for a fair comparison (§6.2).
 */

#ifndef ISW_DIST_PS_ASYNC_HH
#define ISW_DIST_PS_ASYNC_HH

#include "dist/strategy.hh"

namespace isw::dist {

/** Async PS job (Async PS rows of Tables 3/5). */
class AsyncPsJob : public JobBase
{
  public:
    explicit AsyncPsJob(const JobConfig &cfg);

  protected:
    void start() override;

  private:
    void pullWeights(WorkerCtx &w);
    void lgc(WorkerCtx &w);
    void onPsPacket(const net::PacketPtr &pkt);
    void onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt);

    WireFormat fmt_;
    ml::Vec srv_weights_;
    std::unique_ptr<ml::Optimizer> srv_opt_;
    std::uint64_t srv_version_ = 0;
    std::vector<VectorAssembler> srv_rx_; ///< per-worker gradient streams
    std::vector<std::uint64_t> installed_version_;
    sim::Rng ps_rng_;
};

} // namespace isw::dist

#endif // ISW_DIST_PS_ASYNC_HH
