/**
 * @file
 * Asynchronous parameter-server training (paper Figure 3), the Async
 * PS baseline: the server owns the authoritative weights; each worker
 * independently pulls the latest weights, computes a gradient, and
 * pushes it; the server applies each arriving gradient immediately.
 * Iterations are counted at the server (weight updates). A staleness
 * bound S is enforced on the worker side, matching the S given to
 * asynchronous iSwitch for a fair comparison (§6.2).
 */

#ifndef ISW_DIST_PS_ASYNC_HH
#define ISW_DIST_PS_ASYNC_HH

#include <atomic>
#include <deque>

#include "dist/strategy.hh"

namespace isw::dist {

/** Async PS job (Async PS rows of Tables 3/5). */
class AsyncPsJob : public JobBase
{
  public:
    explicit AsyncPsJob(const JobConfig &cfg);

  protected:
    void start() override;

  private:
    void pullWeights(WorkerCtx &w);
    void lgc(WorkerCtx &w);
    void onPsPacket(const net::PacketPtr &pkt);
    void onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt);

    /** Server version as seen by a worker's staleness check: the live
     *  counter in serial runs (byte-identical to pre-sharding reports),
     *  the barrier-published snapshot when sharded (no cross-domain
     *  race on the server's live counter). */
    std::uint64_t stalenessVersion() const;
    void onShardBarrier() override;

    WireFormat fmt_;
    /** Weight-pull replies stay raw fp32 regardless of cfg_.precision:
     *  quantizing installed weights would compound error every pull,
     *  and the paper's ablation quantizes only the gradient plane. */
    WireFormat wfmt_;
    ml::Vec srv_weights_;
    std::unique_ptr<ml::Optimizer> srv_opt_;
    std::uint64_t srv_version_ = 0;
    /** Snapshot of srv_version_ taken at every sharded window barrier
     *  (the engine's only globally-ordered point); workers read their
     *  staleness bound from here so runs are deterministic across
     *  shard_threads. Unused in serial runs. */
    std::atomic<std::uint64_t> srv_version_pub_{0};
    std::vector<VectorAssembler> srv_rx_; ///< per-worker gradient streams
    std::vector<std::uint64_t> installed_version_;
    sim::Rng ps_rng_;

    // --- loss-recovery state (inert when recovery is off) ---
    /** Per-worker push sequence stamped into gradient transfer ids so
     *  a late retransmission cannot pollute a newer push. */
    std::vector<std::uint64_t> push_seq_;
    /** Snapshot of the last pushed gradient (pending_grad mutates). */
    std::vector<ml::Vec> last_push_;
    /** Highest push seq the server has applied, per worker. */
    std::vector<std::uint64_t> srv_applied_;
    /** Push seq the server's assembler is currently collecting. */
    std::vector<std::uint64_t> srv_asm_seq_;
    /** Weight version the worker's assembler is collecting (kNoVer =
     *  idle: adopt whatever reply arrives next). */
    std::vector<std::uint64_t> rx_ver_;
    /** uint8_t, not bool: vector<bool> packs bits, so two workers in
     *  different sim domains would race on the same word. */
    std::vector<std::uint8_t> pull_outstanding_;
    std::deque<RetxTimer> push_retx_;
    std::deque<RetxTimer> pull_retx_;
};

} // namespace isw::dist

#endif // ISW_DIST_PS_ASYNC_HH
