/**
 * @file
 * Cluster builders: the paper's two evaluation fabrics.
 *
 *  - Star (main cluster, §5.3): N workers (+ optional PS node) on one
 *    programmable switch over 10 GbE.
 *  - Tree (scalability setup, §5.3 / Figure 10): racks of `per_rack`
 *    workers under ToR switches, ToRs under one core switch over a
 *    faster uplink, with hierarchical aggregation membership wired.
 *  - Fat-tree (datacenter scale, ROADMAP item 2): racks under ToRs,
 *    ToRs grouped into pods under AGG switches, AGGs under one core —
 *    three levels of hierarchical aggregation (ToR -> AGG -> Core),
 *    the regime SwitchML/NetReduce evaluate.
 *
 * The tree/fat-tree builders also assign shard domains (sim/shard.hh):
 * each rack (ToR + its hosts) is one domain, the AGG/core layer is
 * domain 0, and the conservative lookahead is the minimum propagation
 * delay among rack-boundary (ToR <-> parent) links.
 */

#ifndef ISW_DIST_CLUSTER_HH
#define ISW_DIST_CLUSTER_HH

#include <memory>
#include <vector>

#include "core/programmable_switch.hh"
#include "net/topology.hh"

namespace isw::dist {

/** iSwitch service UDP port. */
constexpr std::uint16_t kSwitchPort = 9000;
/** Worker-side UDP port. */
constexpr std::uint16_t kWorkerPort = 9999;
/** Parameter-server UDP port. */
constexpr std::uint16_t kPsPort = 9998;

/**
 * High-availability layer (DESIGN.md §16): a designated backup switch
 * mirrors the root's membership and segment state and takes over on
 * confirmed primary death. Star fabrics get a shadow switch with
 * dual-homed hosts; tree/fat-tree fabrics get a second root-level
 * switch with pre-wired failover uplinks from the root's children.
 */
struct HaConfig
{
    bool with_backup = false;
    core::ReplicationMode repl_mode = core::ReplicationMode::kPerHarvest;
    /** Max age of un-replicated state (kBatchedLazy mode only). */
    sim::TimeNs staleness_window = 2 * sim::kMsec;
    /** Primary heartbeat period; also the backup's check cadence. */
    sim::TimeNs heartbeat_period = 5 * sim::kMsec;
    /** Consecutive missed periods before confirmed-dead. */
    std::uint32_t miss_threshold = 3;
};

/** Knobs shared by both builders. */
struct ClusterConfig
{
    std::size_t num_workers = 4;
    bool with_ps = false;              ///< add a parameter-server host
    /** Parameter-server shard count (>1 = sharded PS, star only). */
    std::size_t ps_shards = 1;
    net::LinkConfig edge_link{};       ///< host <-> switch (10 GbE)
    net::LinkConfig uplink{40e9, 200, 0.0}; ///< ToR <-> parent (tree/fat)
    std::size_t per_rack = 3;          ///< workers per rack (tree/fat)
    std::size_t racks_per_pod = 4;     ///< ToRs per AGG (fat-tree only)
    net::LinkConfig core_link{100e9, 300, 0.0}; ///< AGG <-> core (fat)
    core::AcceleratorConfig accel{};   ///< accelerator parameters
    net::SwitchConfig switch_cfg{};    ///< base data-plane parameters
    /**
     * Per-worker job tags for multi-job switch sharing (star only).
     * Empty = every worker belongs to job 0 (the single-job layout,
     * bit-identical to the pre-sharing builder). When set, size must
     * equal num_workers; worker i adminJoins with job worker_jobs[i].
     */
    std::vector<std::uint8_t> worker_jobs;
    /** High-availability primary/backup configuration. */
    HaConfig ha;
};

/** A built cluster: topology plus the handles strategies need. */
struct Cluster
{
    std::unique_ptr<net::Topology> topo;
    std::vector<net::Host *> workers;
    net::Host *ps = nullptr;
    /** All PS shard hosts (size 1 unless sharding; ps == shards[0]). */
    std::vector<net::Host *> ps_shards;
    /** Leaf switches in rack order (the single switch for a star). */
    std::vector<core::ProgrammableSwitch *> leaves;
    /** Pod aggregation switches in pod order (fat-tree only). */
    std::vector<core::ProgrammableSwitch *> aggs;
    /** Aggregation root (== leaves[0] for a star). */
    core::ProgrammableSwitch *root = nullptr;
    /** HA backup switch (nullptr unless ClusterConfig::ha.with_backup). */
    core::ProgrammableSwitch *backup = nullptr;
    /**
     * Every link touching the primary (root) switch, recorded so fault
     * plans with switch crashes / control partitions can attach the
     * injector. Backup-side links are deliberately excluded — they
     * must stay up through a primary crash.
     */
    std::vector<net::Link *> primary_links;

    /** Leaf switch worker @p i attaches to. */
    core::ProgrammableSwitch *leafOf(std::size_t i) const;

    std::size_t workersPerRack = 0; ///< 0 for star clusters

    /**
     * Shard-domain plan baked by the builder: rack r is domain r+1,
     * the switch fabric above the ToRs is domain 0. 1 means "nothing
     * to parallelize" (star). See sim/shard.hh.
     */
    std::size_t sim_domains = 1;
    /** Lookahead = min propagation among domain-boundary links. */
    sim::TimeNs domain_lookahead = 0;
};

/** Build the single-switch main cluster. */
Cluster buildStarCluster(sim::Simulation &s, const ClusterConfig &cfg);

/** Build the two-layer rack-scale cluster with hierarchical joins. */
Cluster buildTreeCluster(sim::Simulation &s, const ClusterConfig &cfg);

/**
 * Build the three-layer ToR-AGG-Core fat-tree: ceil(num_workers /
 * per_rack) racks, grouped racks_per_pod to a pod, one AGG switch per
 * pod, one core. Aggregation is hierarchical at every level (ToR
 * threshold = rack occupancy, AGG threshold = ToRs in the pod, core
 * threshold = pods).
 */
Cluster buildFatTreeCluster(sim::Simulation &s, const ClusterConfig &cfg);

} // namespace isw::dist

#endif // ISW_DIST_CLUSTER_HH
