#include "dist/cluster.hh"

#include <algorithm>
#include <stdexcept>

namespace isw::dist {

core::ProgrammableSwitch *
Cluster::leafOf(std::size_t i) const
{
    if (workersPerRack == 0)
        return leaves.at(0);
    return leaves.at(i / workersPerRack);
}

Cluster
buildStarCluster(sim::Simulation &s, const ClusterConfig &cfg)
{
    if (!cfg.worker_jobs.empty() &&
        cfg.worker_jobs.size() != cfg.num_workers)
        throw std::invalid_argument(
            "buildStarCluster: worker_jobs size mismatch");
    if (cfg.ha.with_backup && cfg.accel.num_slots != 0)
        throw std::invalid_argument(
            "buildStarCluster: HA backups require the unbounded "
            "dedicated-switch slot model (accel.num_slots == 0)");
    Cluster c;
    c.topo = std::make_unique<net::Topology>(s);
    const std::size_t shards = cfg.with_ps ? std::max<std::size_t>(
                                                 cfg.ps_shards, 1)
                                           : 0;
    const std::size_t extra = shards;
    const std::size_t ha_ports = cfg.ha.with_backup ? 1 : 0;
    const std::size_t host_ports = cfg.ha.with_backup ? 2 : 1;

    core::ProgrammableSwitchConfig sw_cfg;
    sw_cfg.base = cfg.switch_cfg;
    sw_cfg.accel = cfg.accel;
    sw_cfg.ip = net::Ipv4Addr(10, 0, 0, 1);
    sw_cfg.udp_port = kSwitchPort;
    auto *sw = c.topo->addSwitch<core::ProgrammableSwitch>(
        "switch0", cfg.num_workers + extra + ha_ports, sw_cfg);
    c.leaves.push_back(sw);
    c.root = sw;

    for (std::size_t i = 0; i < cfg.num_workers; ++i) {
        auto *h = c.topo->addHost("worker" + std::to_string(i),
                                  net::Ipv4Addr(10, 0, 0,
                                                static_cast<std::uint8_t>(
                                                    2 + i)),
                                  host_ports);
        c.primary_links.push_back(
            c.topo->connectHost(h, sw, i, cfg.edge_link));
        sw->adminJoin(h->ip(), kWorkerPort, core::MemberType::kWorker,
                      cfg.worker_jobs.empty() ? std::uint8_t{0}
                                              : cfg.worker_jobs[i]);
        c.workers.push_back(h);
    }
    for (std::size_t k = 0; k < shards; ++k) {
        net::Host *h = c.topo->addHost(
            shards == 1 ? "ps" : "ps" + std::to_string(k),
            net::Ipv4Addr(10, 0, 254, static_cast<std::uint8_t>(2 + k)),
            host_ports);
        c.primary_links.push_back(
            c.topo->connectHost(h, sw, cfg.num_workers + k, cfg.edge_link));
        c.ps_shards.push_back(h); // not aggregation members
    }
    if (!c.ps_shards.empty())
        c.ps = c.ps_shards.front();

    if (cfg.ha.with_backup) {
        // Shadow switch: every host dual-homes its port 1 to the
        // backup; on kFailover the hosts flip their active uplink.
        core::ProgrammableSwitchConfig bk_cfg = sw_cfg;
        bk_cfg.ip = net::Ipv4Addr(10, 0, 253, 1);
        auto *bk = c.topo->addSwitch<core::ProgrammableSwitch>(
            "backup", cfg.num_workers + shards + 1, bk_cfg);
        for (std::size_t i = 0; i < cfg.num_workers; ++i) {
            c.topo->connectHostPort(c.workers[i], 1, bk, i, cfg.edge_link);
            bk->adminJoin(c.workers[i]->ip(), kWorkerPort,
                          core::MemberType::kWorker,
                          cfg.worker_jobs.empty() ? std::uint8_t{0}
                                                  : cfg.worker_jobs[i]);
        }
        for (std::size_t k = 0; k < shards; ++k)
            c.topo->connectHostPort(c.ps_shards[k], 1, bk,
                                    cfg.num_workers + k, cfg.edge_link);
        const std::size_t peer_sw = cfg.num_workers + extra;
        const std::size_t peer_bk = cfg.num_workers + shards;
        c.primary_links.push_back(
            c.topo->connectPeers(sw, peer_sw, bk, peer_bk, cfg.edge_link));
        sw->addRoute(bk->ip(), peer_sw);
        sw->enableHaPrimary(bk->ip(), kSwitchPort,
                            {cfg.ha.repl_mode, cfg.ha.staleness_window});
        bk->enableHaBackup(cfg.ha.heartbeat_period, cfg.ha.miss_threshold);
        c.backup = bk;
    }
    return c;
}

Cluster
buildTreeCluster(sim::Simulation &s, const ClusterConfig &cfg)
{
    if (cfg.per_rack == 0)
        throw std::invalid_argument("buildTreeCluster: per_rack == 0");
    Cluster c;
    c.topo = std::make_unique<net::Topology>(s);
    c.workersPerRack = cfg.per_rack;
    const std::size_t racks =
        (cfg.num_workers + cfg.per_rack - 1) / cfg.per_rack;
    const std::size_t shards =
        cfg.with_ps ? std::max<std::size_t>(cfg.ps_shards, 1) : 0;
    if (shards > 250)
        throw std::invalid_argument(
            "buildTreeCluster: too many PS shards for the 10.0.254.x "
            "address plan");
    if (cfg.ha.with_backup && cfg.accel.num_slots != 0)
        throw std::invalid_argument(
            "buildTreeCluster: HA backups require the unbounded "
            "dedicated-switch slot model (accel.num_slots == 0)");
    const std::size_t ha_ports = cfg.ha.with_backup ? 1 : 0;

    core::ProgrammableSwitchConfig core_cfg;
    core_cfg.base = cfg.switch_cfg;
    core_cfg.accel = cfg.accel;
    core_cfg.ip = net::Ipv4Addr(10, 0, 255, 1);
    core_cfg.udp_port = kSwitchPort;
    auto *root = c.topo->addSwitch<core::ProgrammableSwitch>(
        "core", racks + ha_ports, core_cfg);
    c.root = root;

    std::size_t next_worker = 0;
    for (std::size_t r = 0; r < racks; ++r) {
        // PS shards spread round-robin over racks (shard k on rack
        // k % racks), so each rack's ToR needs a port per local shard.
        const std::size_t rack_ps =
            shards / racks + (r < shards % racks ? 1 : 0);
        core::ProgrammableSwitchConfig tor_cfg;
        tor_cfg.base = cfg.switch_cfg;
        tor_cfg.accel = cfg.accel;
        tor_cfg.ip = net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(r), 1);
        tor_cfg.udp_port = kSwitchPort;
        tor_cfg.parent = core_cfg.ip;
        tor_cfg.parent_port = kSwitchPort;
        // Ports: per_rack workers + uplink + local PS shards (at least
        // one spare slot, matching the pre-sharded layout) + one
        // pre-wired failover uplink when an HA backup exists.
        auto *tor = c.topo->addSwitch<core::ProgrammableSwitch>(
            "tor" + std::to_string(r),
            cfg.per_rack + 1 + std::max<std::size_t>(1, rack_ps) + ha_ports,
            tor_cfg);
        c.leaves.push_back(tor);

        tor->setDomain(static_cast<sim::DomainId>(r + 1));

        std::size_t used = 0;
        for (; used < cfg.per_rack && next_worker < cfg.num_workers;
             ++used, ++next_worker) {
            auto *h = c.topo->addHost(
                "worker" + std::to_string(next_worker),
                net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(r),
                              static_cast<std::uint8_t>(2 + used)));
            h->setDomain(static_cast<sim::DomainId>(r + 1));
            c.topo->connectHost(h, tor, used, cfg.edge_link);
            tor->adminJoin(h->ip(), kWorkerPort, core::MemberType::kWorker);
            c.workers.push_back(h);
        }
        // Uplink on the port after the last worker slot.
        c.primary_links.push_back(
            c.topo->connectSwitches(tor, cfg.per_rack, root, r, cfg.uplink));
        // The core must be able to address the ToR itself (results &
        // control), not just the hosts behind it.
        root->addRoute(tor->ip(), r);
        root->adminJoin(tor->ip(), kSwitchPort, core::MemberType::kSwitch);
    }

    for (std::size_t k = 0; k < shards; ++k) {
        const std::size_t rack = k % racks;
        net::Host *h = c.topo->addHost(
            shards == 1 ? "ps" : "ps" + std::to_string(k),
            net::Ipv4Addr(10, 0, 254, static_cast<std::uint8_t>(2 + k)));
        h->setDomain(static_cast<sim::DomainId>(rack + 1));
        c.topo->connectHost(h, c.leaves[rack],
                            cfg.per_rack + 1 + k / racks, cfg.edge_link);
        c.ps_shards.push_back(h); // not aggregation members
    }
    if (!c.ps_shards.empty())
        c.ps = c.ps_shards.front();

    if (cfg.ha.with_backup) {
        // Second root-level switch in domain 0. Wired after the PS
        // loop so subtreeHosts() already includes the PS shards.
        core::ProgrammableSwitchConfig bk_cfg = core_cfg; // root-style
        bk_cfg.ip = net::Ipv4Addr(10, 0, 255, 2);
        auto *bk = c.topo->addSwitch<core::ProgrammableSwitch>(
            "backup", racks + 1, bk_cfg);
        for (std::size_t r = 0; r < racks; ++r) {
            core::ProgrammableSwitch *tor = c.leaves[r];
            const std::size_t fail_port = tor->numPorts() - 1;
            // Failover links must stay up through a primary crash, so
            // they are NOT recorded in primary_links.
            c.topo->connectPeers(tor, fail_port, bk, r, cfg.uplink);
            bk->addRoute(tor->ip(), r);
            for (net::Host *h : c.topo->subtreeHosts(tor))
                bk->addRoute(h->ip(), r);
            bk->adminJoin(tor->ip(), kSwitchPort,
                          core::MemberType::kSwitch);
            tor->setFailoverUplink(bk->ip(), fail_port);
        }
        c.primary_links.push_back(
            c.topo->connectPeers(root, racks, bk, racks, cfg.uplink));
        root->addRoute(bk->ip(), racks);
        root->enableHaPrimary(bk->ip(), kSwitchPort,
                              {cfg.ha.repl_mode, cfg.ha.staleness_window});
        bk->enableHaBackup(cfg.ha.heartbeat_period, cfg.ha.miss_threshold);
        c.backup = bk;
    }

    // Shard plan: one domain per rack + domain 0 for the core. The
    // only links crossing domains are the ToR uplinks (plus the ToR
    // failover uplinks under HA, which share the same propagation).
    c.sim_domains = racks + 1;
    c.domain_lookahead = cfg.uplink.propagation;
    return c;
}

Cluster
buildFatTreeCluster(sim::Simulation &s, const ClusterConfig &cfg)
{
    if (cfg.per_rack == 0)
        throw std::invalid_argument("buildFatTreeCluster: per_rack == 0");
    if (cfg.per_rack > 250)
        throw std::invalid_argument(
            "buildFatTreeCluster: per_rack exceeds the 10.0.rack.x "
            "address plan");
    if (cfg.racks_per_pod == 0)
        throw std::invalid_argument(
            "buildFatTreeCluster: racks_per_pod == 0");
    Cluster c;
    c.topo = std::make_unique<net::Topology>(s);
    c.workersPerRack = cfg.per_rack;
    const std::size_t racks =
        (cfg.num_workers + cfg.per_rack - 1) / cfg.per_rack;
    if (racks > 250)
        throw std::invalid_argument(
            "buildFatTreeCluster: too many racks for the 10.0.rack.x "
            "address plan");
    const std::size_t pods =
        (racks + cfg.racks_per_pod - 1) / cfg.racks_per_pod;
    const std::size_t shards =
        cfg.with_ps ? std::max<std::size_t>(cfg.ps_shards, 1) : 0;
    if (shards > 250)
        throw std::invalid_argument(
            "buildFatTreeCluster: too many PS shards for the 10.0.254.x "
            "address plan");
    if (cfg.ha.with_backup && cfg.accel.num_slots != 0)
        throw std::invalid_argument(
            "buildFatTreeCluster: HA backups require the unbounded "
            "dedicated-switch slot model (accel.num_slots == 0)");
    const std::size_t ha_ports = cfg.ha.with_backup ? 1 : 0;

    core::ProgrammableSwitchConfig core_cfg;
    core_cfg.base = cfg.switch_cfg;
    core_cfg.accel = cfg.accel;
    core_cfg.ip = net::Ipv4Addr(10, 1, 255, 1);
    core_cfg.udp_port = kSwitchPort;
    auto *root = c.topo->addSwitch<core::ProgrammableSwitch>(
        "core", pods + ha_ports, core_cfg);
    c.root = root;

    // AGG layer first: each pod's AGG joins the core as a kSwitch
    // member, so the core's auto-threshold H = number of pods. Wiring
    // the AGG uplinks before any ToR/host lets the subtree-route
    // propagation in connectHost/connectSwitches reach the core.
    for (std::size_t p = 0; p < pods; ++p) {
        const std::size_t pod_racks =
            std::min(cfg.racks_per_pod, racks - p * cfg.racks_per_pod);
        core::ProgrammableSwitchConfig agg_cfg;
        agg_cfg.base = cfg.switch_cfg;
        agg_cfg.accel = cfg.accel;
        agg_cfg.ip = net::Ipv4Addr(10, 1, static_cast<std::uint8_t>(p), 1);
        agg_cfg.udp_port = kSwitchPort;
        agg_cfg.parent = core_cfg.ip;
        agg_cfg.parent_port = kSwitchPort;
        auto *agg = c.topo->addSwitch<core::ProgrammableSwitch>(
            "agg" + std::to_string(p), pod_racks + 1 + ha_ports, agg_cfg);
        c.primary_links.push_back(c.topo->connectSwitches(
            agg, pod_racks, root, p, cfg.core_link));
        root->addRoute(agg->ip(), p);
        root->adminJoin(agg->ip(), kSwitchPort, core::MemberType::kSwitch);
        c.aggs.push_back(agg);
    }

    std::size_t next_worker = 0;
    for (std::size_t r = 0; r < racks; ++r) {
        const std::size_t pod = r / cfg.racks_per_pod;
        const std::size_t slot = r % cfg.racks_per_pod;
        core::ProgrammableSwitch *agg = c.aggs[pod];

        core::ProgrammableSwitchConfig tor_cfg;
        tor_cfg.base = cfg.switch_cfg;
        tor_cfg.accel = cfg.accel;
        tor_cfg.ip = net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(r), 1);
        tor_cfg.udp_port = kSwitchPort;
        tor_cfg.parent = agg->ip();
        tor_cfg.parent_port = kSwitchPort;
        // Ports: per_rack workers + uplink + local PS shards (shard k
        // lands on rack k % racks; at least one spare slot, matching
        // the pre-sharded layout).
        const std::size_t rack_ps =
            shards / racks + (r < shards % racks ? 1 : 0);
        auto *tor = c.topo->addSwitch<core::ProgrammableSwitch>(
            "tor" + std::to_string(r),
            cfg.per_rack + 1 + std::max<std::size_t>(1, rack_ps), tor_cfg);
        tor->setDomain(static_cast<sim::DomainId>(r + 1));
        c.leaves.push_back(tor);

        std::size_t used = 0;
        for (; used < cfg.per_rack && next_worker < cfg.num_workers;
             ++used, ++next_worker) {
            auto *h = c.topo->addHost(
                "worker" + std::to_string(next_worker),
                net::Ipv4Addr(10, 0, static_cast<std::uint8_t>(r),
                              static_cast<std::uint8_t>(2 + used)));
            h->setDomain(static_cast<sim::DomainId>(r + 1));
            c.topo->connectHost(h, tor, used, cfg.edge_link);
            tor->adminJoin(h->ip(), kWorkerPort, core::MemberType::kWorker);
            c.workers.push_back(h);
        }
        c.topo->connectSwitches(tor, cfg.per_rack, agg, slot, cfg.uplink);
        // Parents must be able to address the ToR itself (results &
        // control), not just the hosts behind it.
        agg->addRoute(tor->ip(), slot);
        root->addRoute(tor->ip(), pod);
        agg->adminJoin(tor->ip(), kSwitchPort, core::MemberType::kSwitch);
    }

    for (std::size_t k = 0; k < shards; ++k) {
        const std::size_t rack = k % racks;
        net::Host *h = c.topo->addHost(
            shards == 1 ? "ps" : "ps" + std::to_string(k),
            net::Ipv4Addr(10, 0, 254, static_cast<std::uint8_t>(2 + k)));
        h->setDomain(static_cast<sim::DomainId>(rack + 1));
        c.topo->connectHost(h, c.leaves[rack],
                            cfg.per_rack + 1 + k / racks, cfg.edge_link);
        c.ps_shards.push_back(h); // not aggregation members
    }
    if (!c.ps_shards.empty())
        c.ps = c.ps_shards.front();

    if (cfg.ha.with_backup) {
        // AGG-layer backup: a second root-level switch in domain 0,
        // pre-wired to every AGG. Wired after the PS loop so
        // subtreeHosts() already includes the PS shards.
        core::ProgrammableSwitchConfig bk_cfg = core_cfg; // root-style
        bk_cfg.ip = net::Ipv4Addr(10, 1, 254, 1);
        auto *bk = c.topo->addSwitch<core::ProgrammableSwitch>(
            "backup", pods + 1, bk_cfg);
        for (std::size_t p = 0; p < pods; ++p) {
            core::ProgrammableSwitch *agg = c.aggs[p];
            const std::size_t fail_port = agg->numPorts() - 1;
            // Failover links must stay up through a primary crash, so
            // they are NOT recorded in primary_links. All endpoints
            // live in domain 0 (the fabric layer).
            c.topo->connectPeers(agg, fail_port, bk, p, cfg.core_link);
            bk->addRoute(agg->ip(), p);
            for (net::Host *h : c.topo->subtreeHosts(agg))
                bk->addRoute(h->ip(), p);
            bk->adminJoin(agg->ip(), kSwitchPort,
                          core::MemberType::kSwitch);
            agg->setFailoverUplink(bk->ip(), fail_port);
        }
        c.primary_links.push_back(
            c.topo->connectPeers(root, pods, bk, pods, cfg.core_link));
        root->addRoute(bk->ip(), pods);
        root->enableHaPrimary(bk->ip(), kSwitchPort,
                              {cfg.ha.repl_mode, cfg.ha.staleness_window});
        bk->enableHaBackup(cfg.ha.heartbeat_period, cfg.ha.miss_threshold);
        c.backup = bk;
    }

    // Shard plan: one domain per rack, domain 0 for the AGG + core
    // fabric. Only the ToR uplinks cross domains (AGG <-> core links
    // are internal to domain 0), so the lookahead is the ToR uplink
    // propagation delay.
    c.sim_domains = racks + 1;
    c.domain_lookahead = cfg.uplink.propagation;
    return c;
}

} // namespace isw::dist
