#include "dist/ps_sharded.hh"

#include <stdexcept>

namespace isw::dist {

namespace {
/** Transfer ids: shard results are offset past worker gradient ids. */
constexpr std::uint64_t kResultXferBase = 1'000'000;
} // namespace

SyncShardedPsJob::SyncShardedPsJob(const JobConfig &cfg) : JobBase(cfg)
{
    const std::size_t k = cluster_.ps_shards.size();
    if (k < 1)
        throw std::logic_error("SyncShardedPsJob: no PS shards built");

    const WireFormat full = gradientWire(/*iswitch_plane=*/false);
    shards_.resize(k);
    const std::uint64_t base_wire = (full.wire_bytes / k) & ~3ULL;
    std::uint64_t wire_used = 0;
    for (std::size_t s = 0; s < k; ++s) {
        ShardSpec &sp = shards_[s];
        sp.log_begin = full.logical_floats * s / k;
        sp.log_end = full.logical_floats * (s + 1) / k;
        sp.wire_bytes =
            s + 1 == k ? full.wire_bytes - wire_used : base_wire;
        wire_used += sp.wire_bytes;
        const std::uint64_t need = (sp.log_end - sp.log_begin) * 4;
        if (sp.wire_bytes < need)
            sp.wire_bytes = need;
        sp.fmt = WireFormat::forVector(sp.log_end - sp.log_begin,
                                       sp.wire_bytes,
                                       /*iswitch_plane=*/false);
    }

    state_.resize(k);
    for (auto &st : state_) {
        st.rx.resize(workers_.size());
    }
    for (std::size_t s = 0; s < k; ++s)
        for (auto &rx : state_[s].rx)
            rx.reset(shards_[s].fmt);

    worker_rx_.resize(workers_.size());
    agg_.resize(workers_.size());
    slices_done_.assign(workers_.size(), 0);
    for (auto &per_shard : worker_rx_) {
        per_shard.resize(k);
        for (std::size_t s = 0; s < k; ++s)
            per_shard[s].reset(shards_[s].fmt);
    }
    ps_rng_ = sim_->forkRng();
}

void
SyncShardedPsJob::start()
{
    for (std::size_t s = 0; s < cluster_.ps_shards.size(); ++s) {
        cluster_.ps_shards[s]->setReceiveHandler(
            [this, s](net::PacketPtr pkt) { onShardPacket(s, pkt); });
    }
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncShardedPsJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        // Scatter: one message per shard, each charged a send posting.
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const ShardSpec &sp = shards_[s];
            sim_->after(cfg_.overhead.send * (s + 1), [this, wp, s, sp] {
                sendVector(
                    *wp->host, cluster_.ps_shards[s]->ip(), kPsPort,
                    kWorkerPort, /*tos=*/0, /*transfer_id=*/wp->index,
                    std::span<const float>(
                        wp->pending_grad.data() + sp.log_begin,
                        sp.log_end - sp.log_begin),
                    sp.fmt);
            });
        }
    });
}

void
SyncShardedPsJob::onShardPacket(std::size_t shard, const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || chunk->transfer_id >= workers_.size())
        return;
    ShardState &st = state_[shard];
    if (st.rx[chunk->transfer_id].offer(*chunk)) {
        if (++st.received == workers_.size())
            shardAggregate(shard);
    }
}

void
SyncShardedPsJob::shardAggregate(std::size_t shard)
{
    ShardState &st = state_[shard];
    const ShardSpec &sp = shards_[shard];
    st.sum.assign(sp.fmt.logical_floats, 0.0f);
    for (const auto &rx : st.rx) {
        const auto &v = rx.vector();
        for (std::size_t i = 0; i < st.sum.size(); ++i)
            st.sum[i] += v[i];
    }
    const double sum_bytes = static_cast<double>(sp.wire_bytes) *
                             static_cast<double>(workers_.size());
    const auto sum_time = static_cast<sim::TimeNs>(
        sum_bytes / cfg_.ps_sum_bytes_per_sec * 1e9);
    // Every shard performs its slice of the weight update; slices run
    // in parallel so the visible update cost is one shard's share.
    last_server_wu_ =
        cfg_.profile.sample(IterComponent::kWeightUpdate, ps_rng_) /
        shards_.size();

    for (auto &rx : st.rx)
        rx.reset();
    st.received = 0;

    sim_->after(cfg_.overhead.recv + sum_time + last_server_wu_,
                [this, shard] {
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            WorkerCtx *wp = &workers_[i];
            sim_->after(cfg_.overhead.send * (i + 1),
                        [this, shard, wp] {
                sendVector(*cluster_.ps_shards[shard], wp->host->ip(),
                           kWorkerPort, kPsPort, /*tos=*/0,
                           kResultXferBase + shard, state_[shard].sum,
                           shards_[shard].fmt);
            });
        }
    });
}

void
SyncShardedPsJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || chunk->transfer_id < kResultXferBase)
        return;
    const std::size_t shard =
        static_cast<std::size_t>(chunk->transfer_id - kResultXferBase);
    if (shard >= shards_.size())
        return;
    if (worker_rx_[w.index][shard].offer(*chunk)) {
        if (++slices_done_[w.index] == shards_.size())
            onSlicesComplete(w);
    }
}

void
SyncShardedPsJob::onSlicesComplete(WorkerCtx &w)
{
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        // Stitch the K slices into the full aggregated gradient.
        ml::Vec &agg = agg_[w.index];
        agg.resize(gradientWire(false).logical_floats);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const ShardSpec &sp = shards_[s];
            const auto &v = worker_rx_[w.index][s].vector();
            std::copy(v.begin(), v.end(), agg.begin() + sp.log_begin);
            worker_rx_[w.index][s].reset();
        }
        slices_done_[w.index] = 0;

        const sim::TimeNs elapsed = sim_->now() - w.lgc_end;
        const sim::TimeNs agg_time =
            elapsed > last_server_wu_ ? elapsed - last_server_wu_ : 0;
        chargeAggregation(w, agg_time);
        w.metrics.add(IterComponent::kWeightUpdate, last_server_wu_);
        w.agent->applyAggregatedGradient(
            agg, static_cast<std::uint32_t>(workers_.size()));
        ++w.round;
        if (w.index == 0)
            noteGlobalIteration();
        beginRound(w);
    });
}

} // namespace isw::dist
