#include "dist/ps_sharded.hh"

#include <algorithm>
#include <stdexcept>

namespace isw::dist {

namespace {
/**
 * Transfer ids stamp the round so late retransmissions from round r
 * cannot pollute round r+1: gradients use (round << kRoundShift) |
 * worker, shard results are (round << kRoundShift) | shard with
 * kResultFlag set.
 */
constexpr std::uint64_t kRoundShift = 20;
constexpr std::uint64_t kIdMask = (1ULL << kRoundShift) - 1;
constexpr std::uint64_t kResultFlag = 1ULL << 63;

constexpr std::uint64_t
makeTid(std::uint64_t round, std::uint64_t id)
{
    return (round << kRoundShift) | id;
}

constexpr std::uint64_t
tidRound(std::uint64_t tid)
{
    return (tid & ~kResultFlag) >> kRoundShift;
}

constexpr std::uint64_t
tidId(std::uint64_t tid)
{
    return tid & kIdMask;
}
} // namespace

SyncShardedPsJob::SyncShardedPsJob(const JobConfig &cfg) : JobBase(cfg)
{
    const std::size_t k = cluster_.ps_shards.size();
    if (k < 1)
        throw std::logic_error("SyncShardedPsJob: no PS shards built");

    const WireFormat full = gradientWire(/*iswitch_plane=*/false);
    shards_.resize(k);
    const std::uint64_t base_wire = (full.wire_bytes / k) & ~3ULL;
    std::uint64_t wire_used = 0;
    for (std::size_t s = 0; s < k; ++s) {
        ShardSpec &sp = shards_[s];
        sp.log_begin = full.logical_floats * s / k;
        sp.log_end = full.logical_floats * (s + 1) / k;
        sp.wire_bytes =
            s + 1 == k ? full.wire_bytes - wire_used : base_wire;
        wire_used += sp.wire_bytes;
        const std::uint64_t need = WireFormat::minWireBytes(
            full.precision, sp.log_end - sp.log_begin);
        if (sp.wire_bytes < need)
            sp.wire_bytes = need;
        sp.fmt = WireFormat::forVector(sp.log_end - sp.log_begin,
                                       sp.wire_bytes,
                                       /*iswitch_plane=*/false,
                                       full.precision);
    }

    state_.resize(k);
    for (auto &st : state_) {
        st.rx.resize(workers_.size());
        st.ppp = makePipeline();
    }
    for (std::size_t s = 0; s < k; ++s)
        for (auto &rx : state_[s].rx)
            rx.reset(shards_[s].fmt);

    worker_rx_.resize(workers_.size());
    agg_.resize(workers_.size());
    slices_done_.assign(workers_.size(), 0);
    for (auto &per_shard : worker_rx_) {
        per_shard.resize(k);
        for (std::size_t s = 0; s < k; ++s)
            per_shard[s].reset(shards_[s].fmt);
    }
    ps_rng_ = sim_->forkRng();
    if (crossDomainFabric()) {
        shard_rng_.reserve(k);
        for (std::size_t s = 0; s < k; ++s)
            shard_rng_.push_back(sim_->forkRng());
        shard_wu_.assign(k, 0);
    }
    grad_retx_.resize(workers_.size() * k);
    result_retx_.resize(workers_.size() * k);
    for (auto &t : grad_retx_)
        configureTimer(t);
    for (auto &t : result_retx_)
        configureTimer(t);
}

void
SyncShardedPsJob::start()
{
    for (std::size_t s = 0; s < cluster_.ps_shards.size(); ++s) {
        cluster_.ps_shards[s]->setReceiveHandler(
            [this, s](net::PacketPtr pkt) { onShardPacket(s, pkt); });
    }
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        beginRound(w);
}

void
SyncShardedPsJob::beginRound(WorkerCtx &w)
{
    if (stopped())
        return;
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp] {
        // Scatter: one message per shard, each charged a send posting.
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const ShardSpec &sp = shards_[s];
            const std::uint64_t r = wp->round;
            sim_->after(cfg_.overhead.send * (s + 1),
                        [this, wp, s, sp, r] {
                const std::span<const float> slice(
                    wp->pending_grad.data() + sp.log_begin,
                    sp.log_end - sp.log_begin);
                sendVector(*wp->host, cluster_.ps_shards[s]->ip(),
                           kPsPort, kWorkerPort, /*tos=*/0,
                           makeTid(r, wp->index), slice, sp.fmt,
                           /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                           wp->ppp.get());
                // Guard this slice: the free-ack model reads the
                // shard's assembler to learn what is still missing.
                grad_retx_[wp->index * shards_.size() + s].arm(
                    [this, wp, s, r]() -> std::size_t {
                        if (stopped())
                            return 0;
                        if (!crossDomainFabric()) {
                            if (state_[s].round != r)
                                return 0;
                            const ShardSpec &sp = shards_[s];
                            std::size_t n = 0;
                            for (std::uint64_t seg :
                                 state_[s].rx[wp->index]
                                     .missingSegments()) {
                                sendVectorSegment(
                                    *wp->host,
                                    cluster_.ps_shards[s]->ip(), kPsPort,
                                    kWorkerPort, /*tos=*/0,
                                    makeTid(r, wp->index),
                                    std::span<const float>(
                                        wp->pending_grad.data() +
                                            sp.log_begin,
                                        sp.log_end - sp.log_begin),
                                    sp.fmt, seg, /*seg_base=*/0,
                                    /*job=*/0, /*ver_quota=*/0,
                                    wp->ppp.get());
                                ++recovery_.retransmits;
                                ++n;
                            }
                            return n;
                        }
                        // Partitioned fabric: probe the shard's
                        // assembler in its home domain, hop back to
                        // the worker's domain to resend.
                        inDomainOf(cluster_.ps_shards[s],
                                   [this, wp, s, r] {
                            if (stopped() || state_[s].round != r)
                                return;
                            std::vector<std::uint64_t> missing =
                                state_[s].rx[wp->index].missingSegments();
                            if (missing.empty())
                                return;
                            inDomainOf(wp->host,
                                       [this, wp, s, r,
                                        missing = std::move(missing)] {
                                if (stopped() || wp->round != r)
                                    return;
                                const ShardSpec &sp = shards_[s];
                                for (std::uint64_t seg : missing) {
                                    sendVectorSegment(
                                        *wp->host,
                                        cluster_.ps_shards[s]->ip(),
                                        kPsPort, kWorkerPort, /*tos=*/0,
                                        makeTid(r, wp->index),
                                        std::span<const float>(
                                            wp->pending_grad.data() +
                                                sp.log_begin,
                                            sp.log_end - sp.log_begin),
                                        sp.fmt, seg, /*seg_base=*/0,
                                        /*job=*/0, /*ver_quota=*/0,
                                        wp->ppp.get());
                                    ++recovery_.retransmits;
                                }
                            });
                        });
                        return 1;
                    });
            });
        }
    });
}

void
SyncShardedPsJob::onShardPacket(std::size_t shard, const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || (chunk->transfer_id & kResultFlag) != 0)
        return;
    ShardState &st = state_[shard];
    const std::uint64_t widx = tidId(chunk->transfer_id);
    if (widx >= workers_.size() ||
        tidRound(chunk->transfer_id) != st.round)
        return; // stale round (late retransmission): drop
    if (st.rx[widx].offer(*chunk)) {
        // The timer lives in the worker's domain; done() hops there.
        deferDone(grad_retx_[widx * shards_.size() + shard],
                  workers_[widx].host);
        if (++st.received == workers_.size())
            shardAggregate(shard);
    }
}

void
SyncShardedPsJob::shardAggregate(std::size_t shard)
{
    ShardState &st = state_[shard];
    const ShardSpec &sp = shards_[shard];
    st.sum.assign(sp.fmt.logical_floats, 0.0f);
    for (const auto &rx : st.rx) {
        const auto &v = rx.vector();
        for (std::size_t i = 0; i < st.sum.size(); ++i)
            st.sum[i] += v[i];
    }
    const double sum_bytes = static_cast<double>(sp.wire_bytes) *
                             static_cast<double>(workers_.size());
    const auto sum_time = static_cast<sim::TimeNs>(
        sum_bytes / cfg_.ps_sum_bytes_per_sec * 1e9);
    // Every shard performs its slice of the weight update; slices run
    // in parallel so the visible update cost is one shard's share. On
    // a partitioned fabric each shard samples its own rng fork and
    // publishes into its own slot (single-writer per domain).
    sim::TimeNs wu_share;
    if (crossDomainFabric()) {
        wu_share = cfg_.profile.sample(IterComponent::kWeightUpdate,
                                       shard_rng_[shard]) /
                   shards_.size();
        shard_wu_[shard] = wu_share;
    } else {
        wu_share = cfg_.profile.sample(IterComponent::kWeightUpdate,
                                       ps_rng_) /
                   shards_.size();
        last_server_wu_ = wu_share;
    }

    for (auto &rx : st.rx)
        rx.reset();
    st.received = 0;
    const std::uint64_t round = st.round++;

    sim_->after(cfg_.overhead.recv + sum_time + wu_share,
                [this, shard, round] {
        for (std::size_t i = 0; i < workers_.size(); ++i) {
            WorkerCtx *wp = &workers_[i];
            sim_->after(cfg_.overhead.send * (i + 1),
                        [this, shard, wp, round] {
                const std::uint64_t tid =
                    kResultFlag | makeTid(round, shard);
                sendVector(*cluster_.ps_shards[shard], wp->host->ip(),
                           kWorkerPort, kPsPort, /*tos=*/0, tid,
                           state_[shard].sum, shards_[shard].fmt,
                           /*seg_base=*/0, /*job=*/0, /*ver_quota=*/0,
                           state_[shard].ppp.get());
                // Guard the result slice; st.sum is stable until every
                // worker finished this round (a worker missing this
                // slice cannot have scattered the next round's slice).
                result_retx_[wp->index * shards_.size() + shard].arm(
                    [this, shard, wp, tid, round]() -> std::size_t {
                        if (stopped())
                            return 0;
                        if (!crossDomainFabric()) {
                            if (wp->round != round)
                                return 0;
                            std::size_t n = 0;
                            for (std::uint64_t seg :
                                 worker_rx_[wp->index][shard]
                                     .missingSegments()) {
                                sendVectorSegment(
                                    *cluster_.ps_shards[shard],
                                    wp->host->ip(), kWorkerPort, kPsPort,
                                    /*tos=*/0, tid, state_[shard].sum,
                                    shards_[shard].fmt, seg,
                                    /*seg_base=*/0, /*job=*/0,
                                    /*ver_quota=*/0,
                                    state_[shard].ppp.get());
                                ++recovery_.retransmits;
                                ++n;
                            }
                            return n;
                        }
                        // Probe the worker's assembler in its domain,
                        // then resend from the shard's domain. The
                        // round guard on the shard side keeps stale
                        // resends off a recycled st.sum.
                        inDomainOf(wp->host, [this, shard, wp, tid,
                                              round] {
                            if (stopped() || wp->round != round)
                                return;
                            std::vector<std::uint64_t> missing =
                                worker_rx_[wp->index][shard]
                                    .missingSegments();
                            if (missing.empty())
                                return;
                            inDomainOf(cluster_.ps_shards[shard],
                                       [this, shard, wp, tid, round,
                                        missing = std::move(missing)] {
                                if (stopped() ||
                                    state_[shard].round != round + 1)
                                    return;
                                for (std::uint64_t seg : missing) {
                                    sendVectorSegment(
                                        *cluster_.ps_shards[shard],
                                        wp->host->ip(), kWorkerPort,
                                        kPsPort, /*tos=*/0, tid,
                                        state_[shard].sum,
                                        shards_[shard].fmt, seg,
                                        /*seg_base=*/0, /*job=*/0,
                                        /*ver_quota=*/0,
                                        state_[shard].ppp.get());
                                    ++recovery_.retransmits;
                                }
                            });
                        });
                        return 1;
                    });
            });
        }
    });
}

void
SyncShardedPsJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (checkFailoverFrame(pkt))
        return;
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr || (chunk->transfer_id & kResultFlag) == 0)
        return;
    const auto shard =
        static_cast<std::size_t>(tidId(chunk->transfer_id));
    if (shard >= shards_.size() ||
        tidRound(chunk->transfer_id) != w.round)
        return; // stale round (late retransmission): drop
    if (worker_rx_[w.index][shard].offer(*chunk)) {
        // The timer lives in the shard's domain; done() hops there.
        deferDone(result_retx_[w.index * shards_.size() + shard],
                  cluster_.ps_shards[shard]);
        if (++slices_done_[w.index] == shards_.size())
            onSlicesComplete(w);
    }
}

void
SyncShardedPsJob::onSlicesComplete(WorkerCtx &w)
{
    WorkerCtx *wp = &w;
    sim_->after(cfg_.overhead.recv, [this, wp] {
        WorkerCtx &w = *wp;
        // Stitch the K slices into the full aggregated gradient.
        ml::Vec &agg = agg_[w.index];
        agg.resize(gradientWire(false).logical_floats);
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const ShardSpec &sp = shards_[s];
            const auto &v = worker_rx_[w.index][s].vector();
            std::copy(v.begin(), v.end(), agg.begin() + sp.log_begin);
            worker_rx_[w.index][s].reset();
        }
        slices_done_[w.index] = 0;

        // Partitioned fabrics publish per-shard wu shares; the round's
        // critical path is the slowest shard. Each shard_wu_ slot is
        // safely readable here: a shard cannot recycle it for round
        // r+1 until this worker (among all) scatters r+1.
        sim::TimeNs server_wu = last_server_wu_;
        if (crossDomainFabric()) {
            server_wu = 0;
            for (sim::TimeNs wu : shard_wu_)
                server_wu = std::max(server_wu, wu);
        }
        const sim::TimeNs elapsed = sim_->now() - w.lgc_end;
        const sim::TimeNs agg_time =
            elapsed > server_wu ? elapsed - server_wu : 0;
        chargeAggregation(w, agg_time);
        w.metrics.add(IterComponent::kWeightUpdate, server_wu);
        w.agent->applyAggregatedGradient(
            agg, static_cast<std::uint32_t>(workers_.size()));
        ++w.round;
        if (w.index == 0)
            noteGlobalIteration();
        beginRound(w);
    });
}

} // namespace isw::dist
