#include "dist/iswitch_async.hh"

#include <stdexcept>

namespace isw::dist {

AsyncIswitchJob::AsyncIswitchJob(const JobConfig &cfg) : JobBase(cfg)
{
    init();
}

AsyncIswitchJob::AsyncIswitchJob(const JobConfig &cfg,
                                 const SharedWorld &world)
    : JobBase(cfg, world)
{
    init();
}

void
AsyncIswitchJob::init()
{
    fmt_ = gradientWire(/*iswitch_plane=*/true);
    rx_.resize(workers_.size());
    for (auto &rx : rx_)
        rx.reset(fmt_);
    lwu_busy_.assign(workers_.size(), 0);
    if (cfg_.precision == net::Precision::kInt32)
        static_qexp_.assign(fmt_.segments(), ml::kDefaultQexp);
    sent_.assign(workers_.size(), 0);
    last_sent_.resize(workers_.size());
    watch_.resize(workers_.size());
    for (auto &t : watch_)
        configureTimer(t);
    h_ = cfg_.agg_threshold == 0
             ? static_cast<std::uint32_t>(workers_.size())
             : cfg_.agg_threshold;
    // Async mode reuses segment indices 0..P-1 every iteration with
    // contributor dedupe off (cross-iteration mixing is by design), so
    // the per-slot floor/version machinery of a bounded pool cannot
    // distinguish a legitimate late contribution from a stale one. A
    // finite slot quota therefore must cover the whole tensor.
    if (slotQuota() != 0 && slotQuota() < fmt_.segments())
        throw std::invalid_argument(
            "AsyncIswitchJob: slot quota smaller than the tensor's "
            "segment count (async iSwitch cannot stream a bounded "
            "pool; grant at least segments() slots)");
    if (cfg_.agg_threshold != 0) {
        if (jobId() == 0) {
            // The control plane's SetH: pin H below the membership count.
            for (auto *leaf : cluster_.leaves)
                leaf->setManualThreshold(h_);
            if (cluster_.root != cluster_.leaves.front())
                cluster_.root->setManualThreshold(h_);
            if (cluster_.backup != nullptr)
                cluster_.backup->setManualThreshold(h_);
        } else {
            // Shared fabric: pin only our own job's threshold.
            cluster_.root->accelerator().setJobThreshold(jobId(), h_);
        }
    }
}

void
AsyncIswitchJob::start()
{
    for (auto &w : workers_) {
        WorkerCtx *wp = &w;
        w.host->setReceiveHandler(
            [this, wp](net::PacketPtr pkt) { onWorkerPacket(*wp, pkt); });
    }
    for (auto &w : workers_)
        lgcLoop(w);
}

void
AsyncIswitchJob::lgcLoop(WorkerCtx &w)
{
    if (stopped())
        return;
    const std::uint64_t tw = w.ts; // Algorithm 1: copy iteration index
    WorkerCtx *wp = &w;
    scheduleLgc(w, [this, wp, tw] {
        WorkerCtx &w = *wp;
        // Staleness check before commit (Algorithm 1 line 8), plus
        // send-side backpressure: a gradient's staleness at *apply*
        // time is at least the number of our commits not yet applied,
        // so committing past that bound only produces stale updates
        // and unbounded queueing when aggregation lags the pipeline.
        const bool fresh = w.ts - tw <= cfg_.staleness_bound;
        // A worker's commit count can fall *below* the global round
        // count (other workers' surplus commits complete rounds it
        // skipped), so the backlog must saturate at zero.
        const std::uint64_t backlog =
            sent_[w.index] > w.ts ? sent_[w.index] - w.ts : 0;
        const bool backlog_ok = backlog <= cfg_.staleness_bound;
        if (fresh && backlog_ok) {
            committed_.fetch_add(1, std::memory_order_relaxed);
            ++sent_[w.index];
            // Nonblocking send (line 9).
            ml::Vec grad = w.pending_grad; // snapshot for transmission
            // Aggregation target resolved at send time, not commit
            // time, so a failover between the two re-homes the send.
            sim_->after(cfg_.iswitch_overhead.send, [this, wp, grad] {
                sendVector(*wp->host, aggIpOf(*wp), kSwitchPort, kWorkerPort,
                           net::kTosData, /*transfer_id=*/0, grad, fmt_,
                           /*seg_base=*/0, jobId(), /*ver_quota=*/0,
                           wp->ppp.get(), static_qexp_);
                if (recoveryEnabled()) {
                    last_sent_[wp->index] = grad;
                    rearmWatch(*wp);
                }
            });
        } else {
            skipped_.fetch_add(1, std::memory_order_relaxed);
        }
        ++w.round;
        lgcLoop(w); // pipeline: the next LGC starts immediately
    });
}

void
AsyncIswitchJob::onWorkerPacket(WorkerCtx &w, const net::PacketPtr &pkt)
{
    if (checkFailoverFrame(pkt))
        return;
    if (pkt->ip.tos != net::kTosResult)
        return;
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    if (chunk->job != jobId())
        return; // another job's broadcast (shared fabric)
    rx_[w.index].offer(*chunk);
    drainLwu(w);
}

void
AsyncIswitchJob::drainLwu(WorkerCtx &w)
{
    if (lwu_busy_[w.index] || !rx_[w.index].frontComplete())
        return;
    lwu_busy_[w.index] = true;
    const ml::Vec sum = rx_[w.index].popFront();
    const sim::TimeNs wu = chargeWeightUpdate(w);
    WorkerCtx *wp = &w;
    sim_->after(cfg_.iswitch_overhead.recv + wu, [this, wp, sum] {
        WorkerCtx &w = *wp;
        // Algorithm 1 LWU: ws <- ws - lr * gsum / H.
        w.agent->applyAggregatedGradient(sum, h_);
        ++w.ts;
        if (w.index == 0)
            noteGlobalIteration();
        lwu_busy_[w.index] = false;
        if (recoveryEnabled())
            rearmWatch(w);
        drainLwu(w);
    });
}

void
AsyncIswitchJob::rearmWatch(WorkerCtx &w)
{
    // Outstanding results exist while our commit count runs ahead of
    // the applied-version counter: some broadcast we depend on has not
    // landed yet. Re-arming on every apply treats progress as an ack.
    if (sent_[w.index] <= w.ts) {
        watch_[w.index].done();
        return;
    }
    WorkerCtx *wp = &w;
    watch_[w.index].arm([this, wp]() -> std::size_t {
        if (stopped() || sent_[wp->index] <= wp->ts)
            return 0;
        return nudge(*wp);
    });
}

std::size_t
AsyncIswitchJob::nudge(WorkerCtx &w)
{
    // The front round stalled: either the result broadcast was lost to
    // us, or contributions were lost upstream and the segment never
    // reached H. FBcast first flushes whatever partial the switch
    // holds (async mode has no contributor dedupe, so emitting before
    // we re-contribute avoids double-counting ourselves in one
    // emission); then re-contribute our latest gradient so a starved
    // segment refills. Repeated nudges from every stalled worker drive
    // the count back to H even under a global stall.
    const std::vector<std::uint64_t> missing =
        rx_[w.index].missingFront();
    const net::Ipv4Addr agg = aggIpOf(w);
    for (std::uint64_t seg : missing) {
        net::ControlPayload fb;
        fb.action = net::Action::kFBcast;
        fb.has_value = true;
        fb.value = seg;
        w.host->sendTo(agg, kSwitchPort, kWorkerPort,
                       net::kTosControl, fb);
        ++recovery_.fbcasts;
        if (!last_sent_[w.index].empty()) {
            sendVectorSegment(*w.host, agg, kSwitchPort,
                              kWorkerPort, net::kTosData,
                              /*transfer_id=*/0, last_sent_[w.index],
                              fmt_, seg, /*seg_base=*/0, jobId(),
                              /*ver_quota=*/0, w.ppp.get(), static_qexp_);
            ++recovery_.retransmits;
        }
    }
    return missing.size();
}

void
AsyncIswitchJob::collectExtras(RunResult &res) const
{
    JobBase::collectExtras(res);
    res.extras["gradients_committed"] =
        static_cast<double>(gradientsCommitted());
    res.extras["gradients_skipped"] =
        static_cast<double>(gradientsSkipped());
}

} // namespace isw::dist
