/**
 * @file
 * Sequential network container and the flat parameter view (ParamSet)
 * that distributed training serializes onto the wire.
 */

#ifndef ISW_ML_NETWORK_HH
#define ISW_ML_NETWORK_HH

#include <memory>
#include <vector>

#include "ml/layers.hh"

namespace isw::ml {

/** A stack of layers applied in order. */
class Network
{
  public:
    Network() = default;

    /** Append a layer; returns a raw handle for composition. */
    template <class L, class... Args>
    L *
    add(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers_.push_back(std::move(layer));
        return raw;
    }

    /** Build an MLP: dims[0] -> dims[1] -> ... with @p Act between. */
    template <class Act>
    static Network
    mlp(const std::vector<std::size_t> &dims, sim::Rng &rng,
        const std::string &name = "mlp")
    {
        Network net;
        for (std::size_t i = 0; i + 1 < dims.size(); ++i) {
            net.add<Linear>(dims[i], dims[i + 1], rng,
                            name + ".l" + std::to_string(i));
            if (i + 2 < dims.size())
                net.add<Act>();
        }
        return net;
    }

    Matrix forward(const Matrix &x);
    Matrix backward(const Matrix &dy);
    void collectParams(std::vector<ParamRef> &out);

    std::size_t numLayers() const { return layers_.size(); }

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * A flat view over parameters collected from one or more networks.
 *
 * The order of registration defines the wire layout of the flattened
 * weight/gradient vectors, so every worker must build its ParamSet
 * identically (they do: agents are constructed from the same config).
 */
class ParamSet
{
  public:
    /** Register every parameter of @p net. */
    void addNetwork(Network &net) { net.collectParams(refs_); }

    /** Register a single layer (e.g. a separate head). */
    void addLayer(Layer &layer) { layer.collectParams(refs_); }

    /** Total scalar parameter count. */
    std::size_t count() const;

    /** Copy all parameter values into @p out (resized). */
    void copyValuesTo(Vec &out) const;

    /** Overwrite all parameters from @p in (size must match). */
    void setValues(std::span<const float> in);

    /** Copy all gradients into @p out (resized). */
    void copyGradsTo(Vec &out) const;

    /** Zero every gradient. */
    void zeroGrads();

    /** grads += @p in (flat layout; size must match). */
    void accumulateGrads(std::span<const float> in);

    /** Elementwise gradient scale (e.g. 1/batch). */
    void scaleGrads(float s);

    /** Global L2 gradient-norm clipping; returns pre-clip norm. */
    float clipGradNorm(float max_norm);

    const std::vector<ParamRef> &refs() const { return refs_; }

  private:
    std::vector<ParamRef> refs_;
};

} // namespace isw::ml

#endif // ISW_ML_NETWORK_HH
