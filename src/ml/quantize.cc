#include "ml/quantize.hh"

#include <cmath>
#include <cstring>

namespace isw::ml {

std::uint16_t
encodeHalf(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    const std::uint32_t sign = (bits >> 16) & 0x8000;
    const std::int32_t exp = static_cast<std::int32_t>((bits >> 23) & 0xFF);
    std::uint32_t mant = bits & 0x7FFFFF;

    if (exp == 0xFF) // inf / nan
        return static_cast<std::uint16_t>(sign | 0x7C00 |
                                          (mant ? 0x200 : 0));

    // Re-bias 127 -> 15.
    std::int32_t new_exp = exp - 127 + 15;
    if (new_exp >= 0x1F) // overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7C00);
    if (new_exp <= 0) {
        // Subnormal half (or zero). Shift mantissa with the hidden bit.
        if (new_exp < -10)
            return static_cast<std::uint16_t>(sign); // underflow -> 0
        mant |= 0x800000;
        const int shift = 14 - new_exp;
        std::uint32_t half_mant = mant >> shift;
        // Round to nearest even.
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++half_mant;
        return static_cast<std::uint16_t>(sign | half_mant);
    }
    // Normal half; round mantissa from 23 to 10 bits, nearest even.
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1FFF;
    if (rem > 0x1000 || (rem == 0x1000 && (half_mant & 1)))
        ++half_mant;
    if (half_mant == 0x400) { // mantissa carry bumps the exponent
        half_mant = 0;
        ++new_exp;
        if (new_exp >= 0x1F)
            return static_cast<std::uint16_t>(sign | 0x7C00);
    }
    return static_cast<std::uint16_t>(
        sign | (static_cast<std::uint32_t>(new_exp) << 10) | half_mant);
}

float
decodeHalf(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000)
                               << 16;
    const std::uint32_t exp = (h >> 10) & 0x1F;
    std::uint32_t mant = h & 0x3FF;
    std::uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign; // signed zero
        } else {
            // Subnormal: normalize.
            int e = -1;
            std::uint32_t m = mant;
            while ((m & 0x400) == 0) {
                m <<= 1;
                ++e;
            }
            m &= 0x3FF;
            bits = sign |
                   (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                   (m << 13);
        }
    } else if (exp == 0x1F) {
        bits = sign | 0x7F800000 | (mant << 13); // inf / nan
    } else {
        bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

std::vector<std::uint16_t>
toHalf(std::span<const float> v)
{
    std::vector<std::uint16_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = encodeHalf(v[i]);
    return out;
}

std::vector<float>
fromHalf(std::span<const std::uint16_t> v)
{
    std::vector<float> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = decodeHalf(v[i]);
    return out;
}

void
quantizeInPlace(std::span<float> v)
{
    for (float &x : v)
        x = decodeHalf(encodeHalf(x));
}

float
halfRoundTripError(std::span<const float> v)
{
    float worst = 0.0f;
    for (float x : v)
        worst = std::max(worst,
                         std::fabs(decodeHalf(encodeHalf(x)) - x));
    return worst;
}

} // namespace isw::ml
