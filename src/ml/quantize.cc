#include "ml/quantize.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

namespace isw::ml {

namespace {

/** ceil(log2(h)) for h >= 1 (0 for h <= 1). */
int
ceilLog2(std::uint32_t h)
{
    return h <= 1 ? 0 : std::bit_width(h - 1);
}

int
clampExp(int e, QuantStats *st)
{
    if (e < kQexpMin) {
        if (st != nullptr)
            ++st->exp_clamps;
        return kQexpMin;
    }
    if (e > kQexpMax) {
        if (st != nullptr)
            ++st->exp_clamps;
        return kQexpMax;
    }
    return e;
}

} // namespace

std::uint16_t
encodeHalf(float f)
{
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    const std::uint32_t sign = (bits >> 16) & 0x8000;
    const std::int32_t exp = static_cast<std::int32_t>((bits >> 23) & 0xFF);
    std::uint32_t mant = bits & 0x7FFFFF;

    if (exp == 0xFF) // inf / nan
        return static_cast<std::uint16_t>(sign | 0x7C00 |
                                          (mant ? 0x200 : 0));

    // Re-bias 127 -> 15.
    std::int32_t new_exp = exp - 127 + 15;
    if (new_exp >= 0x1F) // overflow -> inf
        return static_cast<std::uint16_t>(sign | 0x7C00);
    if (new_exp <= 0) {
        // Subnormal half (or zero). Shift mantissa with the hidden bit.
        if (new_exp < -10)
            return static_cast<std::uint16_t>(sign); // underflow -> 0
        mant |= 0x800000;
        const int shift = 14 - new_exp;
        std::uint32_t half_mant = mant >> shift;
        // Round to nearest even.
        const std::uint32_t rem = mant & ((1u << shift) - 1);
        const std::uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++half_mant;
        return static_cast<std::uint16_t>(sign | half_mant);
    }
    // Normal half; round mantissa from 23 to 10 bits, nearest even.
    std::uint32_t half_mant = mant >> 13;
    const std::uint32_t rem = mant & 0x1FFF;
    if (rem > 0x1000 || (rem == 0x1000 && (half_mant & 1)))
        ++half_mant;
    if (half_mant == 0x400) { // mantissa carry bumps the exponent
        half_mant = 0;
        ++new_exp;
        if (new_exp >= 0x1F)
            return static_cast<std::uint16_t>(sign | 0x7C00);
    }
    return static_cast<std::uint16_t>(
        sign | (static_cast<std::uint32_t>(new_exp) << 10) | half_mant);
}

float
decodeHalf(std::uint16_t h)
{
    const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000)
                               << 16;
    const std::uint32_t exp = (h >> 10) & 0x1F;
    std::uint32_t mant = h & 0x3FF;
    std::uint32_t bits;
    if (exp == 0) {
        if (mant == 0) {
            bits = sign; // signed zero
        } else {
            // Subnormal: normalize.
            int e = -1;
            std::uint32_t m = mant;
            while ((m & 0x400) == 0) {
                m <<= 1;
                ++e;
            }
            m &= 0x3FF;
            bits = sign |
                   (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                   (m << 13);
        }
    } else if (exp == 0x1F) {
        bits = sign | 0x7F800000 | (mant << 13); // inf / nan
    } else {
        bits = sign | ((exp - 15 + 127) << 23) | (mant << 13);
    }
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

std::vector<std::uint16_t>
toHalf(std::span<const float> v)
{
    std::vector<std::uint16_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = encodeHalf(v[i]);
    return out;
}

std::vector<float>
fromHalf(std::span<const std::uint16_t> v)
{
    std::vector<float> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = decodeHalf(v[i]);
    return out;
}

void
quantizeInPlace(std::span<float> v)
{
    for (float &x : v)
        x = decodeHalf(encodeHalf(x));
}

float
halfRoundTripError(std::span<const float> v)
{
    float worst = 0.0f;
    for (float x : v)
        worst = std::max(worst,
                         std::fabs(decodeHalf(encodeHalf(x)) - x));
    return worst;
}

void
packHalfWords(const float *src, std::size_t n, float *words)
{
    for (std::size_t i = 0; i < n; i += 2) {
        const std::uint32_t lo = encodeHalf(src[i]);
        const std::uint32_t hi = i + 1 < n ? encodeHalf(src[i + 1]) : 0;
        words[i / 2] = std::bit_cast<float>(lo | (hi << 16));
    }
}

void
unpackHalfWords(const float *words, std::size_t n, float *dst)
{
    for (std::size_t i = 0; i < n; ++i) {
        const auto w = std::bit_cast<std::uint32_t>(words[i / 2]);
        dst[i] = decodeHalf(
            static_cast<std::uint16_t>((i & 1) ? w >> 16 : w & 0xFFFF));
    }
}

float
addHalfWords(float a, float b)
{
    const auto wa = std::bit_cast<std::uint32_t>(a);
    const auto wb = std::bit_cast<std::uint32_t>(b);
    const std::uint32_t lo = encodeHalf(
        decodeHalf(static_cast<std::uint16_t>(wa & 0xFFFF)) +
        decodeHalf(static_cast<std::uint16_t>(wb & 0xFFFF)));
    const std::uint32_t hi = encodeHalf(
        decodeHalf(static_cast<std::uint16_t>(wa >> 16)) +
        decodeHalf(static_cast<std::uint16_t>(wb >> 16)));
    return std::bit_cast<float>(lo | (hi << 16));
}

int
blockExponent(const float *v, std::size_t n, std::uint32_t headroom,
              QuantStats *st)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        const float a = std::fabs(v[i]);
        if (std::isfinite(a) && a > m)
            m = a;
    }
    if (m == 0.0f)
        return kDefaultQexp;
    // m = f * 2^e with 0.5 <= f < 1, so every |v| < 2^e and a sum of
    // `headroom` worst-case addends stays below 2^kQuantFracBits.
    int e = 0;
    std::frexp(m, &e);
    return clampExp(e + ceilLog2(headroom), st);
}

void
encodeBlockInt32(const float *src, std::size_t n, int e, float *words,
                 QuantStats *st)
{
    const double scale = std::ldexp(1.0, kQuantFracBits - e);
    for (std::size_t i = 0; i < n; ++i) {
        const float f = src[i];
        std::int32_t q;
        if (!std::isfinite(f)) {
            // NaN carries no magnitude -> 0; infinities saturate.
            q = std::isnan(f) ? 0 : (f > 0.0f ? kQuantMax : kQuantMin);
            if (st != nullptr)
                ++st->value_clamps;
        } else {
            const long long ll =
                std::llround(static_cast<double>(f) * scale);
            if (ll > kQuantMax || ll < kQuantMin) {
                q = ll > 0 ? kQuantMax : kQuantMin;
                if (st != nullptr)
                    ++st->value_clamps;
            } else {
                q = static_cast<std::int32_t>(ll);
            }
        }
        words[i] = std::bit_cast<float>(q);
    }
}

void
decodeBlockInt32(const float *words, std::size_t n, int e, float *dst)
{
    const double inv = std::ldexp(1.0, e - kQuantFracBits);
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<float>(
            static_cast<double>(std::bit_cast<std::int32_t>(words[i])) *
            inv);
}

std::uint64_t
addBlockInt32(float *acc, const float *v, std::size_t n)
{
    std::uint64_t clamps = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t s =
            std::int64_t{std::bit_cast<std::int32_t>(acc[i])} +
            std::int64_t{std::bit_cast<std::int32_t>(v[i])};
        std::int32_t q;
        if (s > kQuantMax || s < kQuantMin) {
            q = s > 0 ? kQuantMax : kQuantMin;
            ++clamps;
        } else {
            q = static_cast<std::int32_t>(s);
        }
        acc[i] = std::bit_cast<float>(q);
    }
    return clamps;
}

std::uint64_t
rescaleBlockInt32(float *words, std::size_t n, int from_e, int to_e)
{
    const int d = to_e - from_e;
    if (d == 0)
        return 0;
    std::uint64_t clamps = 0;
    if (d > 0) {
        // Raising the exponent: arithmetic right shift (low bits lost).
        const int shift = std::min(d, 62);
        for (std::size_t i = 0; i < n; ++i) {
            const std::int64_t s =
                std::int64_t{std::bit_cast<std::int32_t>(words[i])} >>
                shift;
            words[i] = std::bit_cast<float>(static_cast<std::int32_t>(s));
        }
        return 0;
    }
    const int shift = std::min(-d, 62);
    for (std::size_t i = 0; i < n; ++i) {
        const std::int64_t s =
            std::int64_t{std::bit_cast<std::int32_t>(words[i])} << shift;
        std::int32_t q;
        if (s > kQuantMax || s < kQuantMin) {
            q = s > 0 ? kQuantMax : kQuantMin;
            ++clamps;
        } else {
            q = static_cast<std::int32_t>(s);
        }
        words[i] = std::bit_cast<float>(q);
    }
    return clamps;
}

int
speculateExponent(const float *aggregate, std::size_t n,
                  std::uint32_t contributors)
{
    float m = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        const float a = std::fabs(aggregate[i]);
        if (std::isfinite(a) && a > m)
            m = a;
    }
    if (m == 0.0f)
        return kDefaultQexp;
    const std::uint32_t h = std::max<std::uint32_t>(contributors, 1);
    const double per = static_cast<double>(m) / h;
    int e = 0;
    std::frexp(per, &e);
    // +1 allows gradients to double round-over-round before clamping.
    return clampExp(e + 1 + ceilLog2(h), nullptr);
}

} // namespace isw::ml
