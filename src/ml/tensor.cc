#include "ml/tensor.hh"

#include <cmath>

namespace isw::ml {

void
affineForward(const Matrix &x, const Matrix &w, const Vec &b, Matrix &out)
{
    const std::size_t batch = x.rows();
    const std::size_t in = x.cols();
    const std::size_t outdim = w.rows();
    assert(w.cols() == in);
    assert(b.size() == outdim);
    out = Matrix(batch, outdim);

    // Outer-product ordering over a transposed weight scratch: each
    // output o still accumulates b[o] + x0*w[o][0] + x1*w[o][1] + …
    // in exactly the i-order of the naive dot product — bit-identical
    // results — but the inner loop is now elementwise across outputs,
    // which auto-vectorizes without reassociating any reduction (a
    // float dot product cannot vectorize without -ffast-math).
    thread_local Vec wt_scratch;
    wt_scratch.resize(in * outdim);
    float *__restrict__ wt = wt_scratch.data();
    const float *__restrict__ wp = w.data();
    for (std::size_t o = 0; o < outdim; ++o)
        for (std::size_t i = 0; i < in; ++i)
            wt[i * outdim + o] = wp[o * in + i];

    const float *__restrict__ bp = b.data();
    for (std::size_t r = 0; r < batch; ++r) {
        const float *__restrict__ xr = x.data() + r * in;
        float *__restrict__ or_ = out.data() + r * outdim;
        for (std::size_t o = 0; o < outdim; ++o)
            or_[o] = bp[o];
        for (std::size_t i = 0; i < in; ++i) {
            const float xi = xr[i];
            const float *__restrict__ wr = wt + i * outdim;
            for (std::size_t o = 0; o < outdim; ++o)
                or_[o] += xi * wr[o];
        }
    }
}

void
affineBackward(const Matrix &dy, const Matrix &x, const Matrix &w, Matrix &dw,
               Vec &db, Matrix &dx)
{
    const std::size_t batch = x.rows();
    const std::size_t in = x.cols();
    const std::size_t outdim = w.rows();
    assert(dy.rows() == batch && dy.cols() == outdim);
    assert(dw.rows() == outdim && dw.cols() == in);
    assert(db.size() == outdim);
    dx = Matrix(batch, in);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *__restrict__ dyr = dy.data() + r * outdim;
        const float *__restrict__ xr = x.data() + r * in;
        float *__restrict__ dxr = dx.data() + r * in;
        for (std::size_t o = 0; o < outdim; ++o) {
            const float g = dyr[o];
            db[o] += g;
            float *__restrict__ dwr = dw.data() + o * in;
            const float *__restrict__ wr = w.data() + o * in;
            // Elementwise updates: vectorization preserves each
            // element's operation order exactly.
            for (std::size_t i = 0; i < in; ++i) {
                dwr[i] += g * xr[i];
                dxr[i] += g * wr[i];
            }
        }
    }
}

void
axpy(float a, std::span<const float> x, std::span<float> y)
{
    assert(x.size() == y.size());
    const std::size_t n = x.size();
    const float *__restrict__ xp = x.data();
    float *__restrict__ yp = y.data();
    for (std::size_t i = 0; i < n; ++i)
        yp[i] += a * xp[i];
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

float
l2norm(std::span<const float> v)
{
    return std::sqrt(dot(v, v));
}

} // namespace isw::ml
