#include "ml/tensor.hh"

#include <cmath>

namespace isw::ml {

void
affineForward(const Matrix &x, const Matrix &w, const Vec &b, Matrix &out)
{
    const std::size_t batch = x.rows();
    const std::size_t in = x.cols();
    const std::size_t outdim = w.rows();
    assert(w.cols() == in);
    assert(b.size() == outdim);
    out = Matrix(batch, outdim);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *xr = x.data() + r * in;
        float *or_ = out.data() + r * outdim;
        for (std::size_t o = 0; o < outdim; ++o) {
            const float *wr = w.data() + o * in;
            float acc = b[o];
            for (std::size_t i = 0; i < in; ++i)
                acc += xr[i] * wr[i];
            or_[o] = acc;
        }
    }
}

void
affineBackward(const Matrix &dy, const Matrix &x, const Matrix &w, Matrix &dw,
               Vec &db, Matrix &dx)
{
    const std::size_t batch = x.rows();
    const std::size_t in = x.cols();
    const std::size_t outdim = w.rows();
    assert(dy.rows() == batch && dy.cols() == outdim);
    assert(dw.rows() == outdim && dw.cols() == in);
    assert(db.size() == outdim);
    dx = Matrix(batch, in);
    for (std::size_t r = 0; r < batch; ++r) {
        const float *dyr = dy.data() + r * outdim;
        const float *xr = x.data() + r * in;
        float *dxr = dx.data() + r * in;
        for (std::size_t o = 0; o < outdim; ++o) {
            const float g = dyr[o];
            db[o] += g;
            float *dwr = dw.data() + o * in;
            const float *wr = w.data() + o * in;
            for (std::size_t i = 0; i < in; ++i) {
                dwr[i] += g * xr[i];
                dxr[i] += g * wr[i];
            }
        }
    }
}

void
axpy(float a, std::span<const float> x, std::span<float> y)
{
    assert(x.size() == y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        y[i] += a * x[i];
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    assert(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

float
l2norm(std::span<const float> v)
{
    return std::sqrt(dot(v, v));
}

} // namespace isw::ml
