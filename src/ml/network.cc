#include "ml/network.hh"

#include <cmath>
#include <stdexcept>

namespace isw::ml {

Matrix
Network::forward(const Matrix &x)
{
    Matrix h = x;
    for (auto &layer : layers_)
        h = layer->forward(h);
    return h;
}

Matrix
Network::backward(const Matrix &dy)
{
    Matrix g = dy;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
    return g;
}

void
Network::collectParams(std::vector<ParamRef> &out)
{
    for (auto &layer : layers_)
        layer->collectParams(out);
}

std::size_t
ParamSet::count() const
{
    std::size_t n = 0;
    for (const auto &r : refs_)
        n += r.value.size();
    return n;
}

void
ParamSet::copyValuesTo(Vec &out) const
{
    out.resize(count());
    std::size_t off = 0;
    for (const auto &r : refs_) {
        std::copy(r.value.begin(), r.value.end(), out.begin() + off);
        off += r.value.size();
    }
}

void
ParamSet::setValues(std::span<const float> in)
{
    if (in.size() != count())
        throw std::invalid_argument("ParamSet::setValues: size mismatch");
    std::size_t off = 0;
    for (const auto &r : refs_) {
        std::copy(in.begin() + off, in.begin() + off + r.value.size(),
                  r.value.begin());
        off += r.value.size();
    }
}

void
ParamSet::copyGradsTo(Vec &out) const
{
    out.resize(count());
    std::size_t off = 0;
    for (const auto &r : refs_) {
        std::copy(r.grad.begin(), r.grad.end(), out.begin() + off);
        off += r.grad.size();
    }
}

void
ParamSet::zeroGrads()
{
    for (auto &r : refs_)
        std::fill(r.grad.begin(), r.grad.end(), 0.0f);
}

void
ParamSet::accumulateGrads(std::span<const float> in)
{
    if (in.size() != count())
        throw std::invalid_argument("ParamSet::accumulateGrads: size");
    std::size_t off = 0;
    for (auto &r : refs_) {
        axpy(1.0f, in.subspan(off, r.grad.size()), r.grad);
        off += r.grad.size();
    }
}

void
ParamSet::scaleGrads(float s)
{
    for (auto &r : refs_)
        for (float &g : r.grad)
            g *= s;
}

float
ParamSet::clipGradNorm(float max_norm)
{
    double sq = 0.0;
    for (const auto &r : refs_)
        for (float g : r.grad)
            sq += double(g) * double(g);
    const float norm = static_cast<float>(std::sqrt(sq));
    if (norm > max_norm && norm > 0.0f)
        scaleGrads(max_norm / norm);
    return norm;
}

} // namespace isw::ml
