#include "ml/losses.hh"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace isw::ml {

float
mseLoss(const Matrix &pred, const Matrix &target, Matrix &dpred)
{
    assert(pred.rows() == target.rows() && pred.cols() == target.cols());
    dpred = Matrix(pred.rows(), pred.cols());
    const std::size_t n = pred.size();
    float loss = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        const float diff = pred.raw()[i] - target.raw()[i];
        loss += diff * diff;
        dpred.raw()[i] = 2.0f * diff / static_cast<float>(n);
    }
    return loss / static_cast<float>(n);
}

float
huberLoss(const Matrix &pred, const Matrix &target, Matrix &dpred,
          float delta)
{
    assert(pred.rows() == target.rows() && pred.cols() == target.cols());
    dpred = Matrix(pred.rows(), pred.cols());
    const std::size_t n = pred.size();
    float loss = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        const float diff = pred.raw()[i] - target.raw()[i];
        const float ad = std::fabs(diff);
        if (ad <= delta) {
            loss += 0.5f * diff * diff;
            dpred.raw()[i] = diff / static_cast<float>(n);
        } else {
            loss += delta * (ad - 0.5f * delta);
            dpred.raw()[i] =
                (diff > 0 ? delta : -delta) / static_cast<float>(n);
        }
    }
    return loss / static_cast<float>(n);
}

void
softmaxRow(std::span<float> logits)
{
    const float mx = *std::max_element(logits.begin(), logits.end());
    float sum = 0.0f;
    for (float &v : logits) {
        v = std::exp(v - mx);
        sum += v;
    }
    for (float &v : logits)
        v /= sum;
}

Vec
logSoftmaxRow(std::span<const float> logits)
{
    const float mx = *std::max_element(logits.begin(), logits.end());
    float sum = 0.0f;
    for (float v : logits)
        sum += std::exp(v - mx);
    const float lse = mx + std::log(sum);
    Vec out(logits.size());
    for (std::size_t i = 0; i < logits.size(); ++i)
        out[i] = logits[i] - lse;
    return out;
}

std::size_t
sampleCategorical(std::span<const float> probs, sim::Rng &rng)
{
    const double u = rng.uniform();
    double cum = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        cum += probs[i];
        if (u < cum)
            return i;
    }
    return probs.size() - 1;
}

std::size_t
argmaxRow(std::span<const float> row)
{
    return static_cast<std::size_t>(
        std::max_element(row.begin(), row.end()) - row.begin());
}

float
entropyRow(std::span<const float> probs)
{
    float h = 0.0f;
    for (float p : probs)
        if (p > 0.0f)
            h -= p * std::log(p);
    return h;
}

} // namespace isw::ml
