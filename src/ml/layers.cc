#include "ml/layers.hh"

#include <cmath>

namespace isw::ml {

Linear::Linear(std::size_t in, std::size_t out, sim::Rng &rng,
               std::string name)
    : name_(std::move(name)), w_(out, in), b_(out, 0.0f), gw_(out, in),
      gb_(out, 0.0f)
{
    // Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (in + out)).
    const double a =
        std::sqrt(6.0 / static_cast<double>(in + out));
    for (float &v : w_.raw())
        v = static_cast<float>(rng.uniform(-a, a));
}

Matrix
Linear::forward(const Matrix &x)
{
    x_ = x;
    Matrix y;
    affineForward(x, w_, b_, y);
    return y;
}

Matrix
Linear::backward(const Matrix &dy)
{
    Matrix dx;
    affineBackward(dy, x_, w_, gw_, gb_, dx);
    return dx;
}

void
Linear::collectParams(std::vector<ParamRef> &out)
{
    out.push_back({name_ + ".w", w_.raw(), gw_.raw()});
    out.push_back({name_ + ".b", b_, gb_});
}

Matrix
ReLU::forward(const Matrix &x)
{
    y_ = x;
    for (float &v : y_.raw())
        v = v > 0.0f ? v : 0.0f;
    return y_;
}

Matrix
ReLU::backward(const Matrix &dy)
{
    Matrix dx = dy;
    for (std::size_t i = 0; i < dx.raw().size(); ++i)
        if (y_.raw()[i] <= 0.0f)
            dx.raw()[i] = 0.0f;
    return dx;
}

Matrix
Tanh::forward(const Matrix &x)
{
    y_ = x;
    for (float &v : y_.raw())
        v = std::tanh(v);
    return y_;
}

Matrix
Tanh::backward(const Matrix &dy)
{
    Matrix dx = dy;
    for (std::size_t i = 0; i < dx.raw().size(); ++i) {
        const float t = y_.raw()[i];
        dx.raw()[i] *= 1.0f - t * t;
    }
    return dx;
}

} // namespace isw::ml
