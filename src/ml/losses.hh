/**
 * @file
 * Loss functions and probability utilities used by the RL algorithms.
 * Each loss returns its value and writes dLoss/dPred for backprop.
 */

#ifndef ISW_ML_LOSSES_HH
#define ISW_ML_LOSSES_HH

#include <span>
#include <vector>

#include "ml/tensor.hh"
#include "sim/random.hh"

namespace isw::ml {

/** Mean-squared error over all elements; fills @p dpred. */
float mseLoss(const Matrix &pred, const Matrix &target, Matrix &dpred);

/** Huber (smooth-L1) loss with threshold @p delta; fills @p dpred. */
float huberLoss(const Matrix &pred, const Matrix &target, Matrix &dpred,
                float delta = 1.0f);

/** In-place numerically stable softmax over a logits row. */
void softmaxRow(std::span<float> logits);

/** log-softmax of one row, returned as a new vector. */
Vec logSoftmaxRow(std::span<const float> logits);

/** Sample an index from a probability row. */
std::size_t sampleCategorical(std::span<const float> probs, sim::Rng &rng);

/** argmax of a row. */
std::size_t argmaxRow(std::span<const float> row);

/** Entropy of a probability row (nats). */
float entropyRow(std::span<const float> probs);

} // namespace isw::ml

#endif // ISW_ML_LOSSES_HH
