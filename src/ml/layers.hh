/**
 * @file
 * Neural-network layers with explicit backward passes.
 *
 * Layers cache whatever the backward pass needs during forward();
 * backward() accumulates parameter gradients (callers zero them via
 * ParamSet) and returns the gradient w.r.t. the layer input.
 */

#ifndef ISW_ML_LAYERS_HH
#define ISW_ML_LAYERS_HH

#include <memory>
#include <string>
#include <vector>

#include "ml/tensor.hh"
#include "sim/random.hh"

namespace isw::ml {

/** A named view of one parameter tensor and its gradient. */
struct ParamRef
{
    std::string name;
    std::span<float> value;
    std::span<float> grad;
};

/** Base class for differentiable layers. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward a batch; caches activations for backward. */
    virtual Matrix forward(const Matrix &x) = 0;

    /** Propagate upstream gradient; accumulates parameter grads. */
    virtual Matrix backward(const Matrix &dy) = 0;

    /** Append this layer's parameters to @p out. */
    virtual void collectParams(std::vector<ParamRef> &out) { (void)out; }
};

/** Fully connected layer: y = x W^T + b. */
class Linear : public Layer
{
  public:
    /**
     * @param in Input features.
     * @param out Output features.
     * @param rng Initialization stream (Xavier-uniform weights).
     * @param name Parameter name prefix.
     */
    Linear(std::size_t in, std::size_t out, sim::Rng &rng,
           std::string name = "linear");

    Matrix forward(const Matrix &x) override;
    Matrix backward(const Matrix &dy) override;
    void collectParams(std::vector<ParamRef> &out) override;

    std::size_t inDim() const { return w_.cols(); }
    std::size_t outDim() const { return w_.rows(); }
    Matrix &weight() { return w_; }
    Vec &bias() { return b_; }

  private:
    std::string name_;
    Matrix w_;  ///< (out, in)
    Vec b_;     ///< (out)
    Matrix gw_; ///< gradient of w_
    Vec gb_;    ///< gradient of b_
    Matrix x_;  ///< cached input
};

/**
 * A bare trainable parameter vector (no forward pass). Used for free
 * parameters such as a Gaussian policy's state-independent log-std.
 */
class ParamVector : public Layer
{
  public:
    ParamVector(std::size_t n, float init, std::string name = "param")
        : name_(std::move(name)), v_(n, init), g_(n, 0.0f)
    {}

    Matrix forward(const Matrix &x) override { return x; }
    Matrix backward(const Matrix &dy) override { return dy; }
    void collectParams(std::vector<ParamRef> &out) override
    {
        out.push_back({name_, v_, g_});
    }

    Vec &value() { return v_; }
    Vec &grad() { return g_; }

  private:
    std::string name_;
    Vec v_;
    Vec g_;
};

/** Rectified linear unit. */
class ReLU : public Layer
{
  public:
    Matrix forward(const Matrix &x) override;
    Matrix backward(const Matrix &dy) override;

  private:
    Matrix y_; ///< cached output (mask source)
};

/** Hyperbolic tangent. */
class Tanh : public Layer
{
  public:
    Matrix forward(const Matrix &x) override;
    Matrix backward(const Matrix &dy) override;

  private:
    Matrix y_; ///< cached output
};

} // namespace isw::ml

#endif // ISW_ML_LAYERS_HH
