#include "ml/optimizer.hh"

#include <cassert>
#include <cmath>
#include <cstdint>

namespace isw::ml {

void
Sgd::step(std::span<float> params, std::span<const float> grads)
{
    assert(params.size() == grads.size());
    if (momentum_ == 0.0) {
        for (std::size_t i = 0; i < params.size(); ++i)
            params[i] -= static_cast<float>(lr_) * grads[i];
        return;
    }
    if (velocity_.empty())
        velocity_.assign(params.size(), 0.0f);
    assert(velocity_.size() == params.size());
    const float mu = static_cast<float>(momentum_);
    const float lr = static_cast<float>(lr_);
    for (std::size_t i = 0; i < params.size(); ++i) {
        velocity_[i] = mu * velocity_[i] + grads[i];
        params[i] -= lr * velocity_[i];
    }
}

void
RmsProp::step(std::span<float> params, std::span<const float> grads)
{
    assert(params.size() == grads.size());
    if (sq_avg_.empty())
        sq_avg_.assign(params.size(), 0.0f);
    assert(sq_avg_.size() == params.size());
    const float rho = static_cast<float>(decay_);
    const float lr = static_cast<float>(lr_);
    const float eps = static_cast<float>(eps_);
    for (std::size_t i = 0; i < params.size(); ++i) {
        const float g = grads[i];
        sq_avg_[i] = rho * sq_avg_[i] + (1.0f - rho) * g * g;
        params[i] -= lr * g / (std::sqrt(sq_avg_[i]) + eps);
    }
}

void
Adam::step(std::span<float> params, std::span<const float> grads)
{
    assert(params.size() == grads.size());
    if (m_.empty()) {
        m_.assign(params.size(), 0.0f);
        v_.assign(params.size(), 0.0f);
    }
    assert(m_.size() == params.size());
    ++t_;
    const double b1 = beta1_;
    const double b2 = beta2_;
    const double corr1 = 1.0 - std::pow(b1, static_cast<double>(t_));
    const double corr2 = 1.0 - std::pow(b2, static_cast<double>(t_));
    const double alpha = lr_ * std::sqrt(corr2) / corr1;
    for (std::size_t i = 0; i < params.size(); ++i) {
        const float g = grads[i];
        m_[i] = static_cast<float>(b1) * m_[i] + (1.0f - float(b1)) * g;
        v_[i] = static_cast<float>(b2) * v_[i] + (1.0f - float(b2)) * g * g;
        params[i] -= static_cast<float>(
            alpha * m_[i] / (std::sqrt(double(v_[i])) + eps_));
    }
}

} // namespace isw::ml
