/**
 * @file
 * Quantization codecs for the gradient wire (DESIGN.md §14).
 *
 * The paper transmits raw float32 gradients; real programmable
 * switches aggregate integers (SwitchML), and related work (GradiVeQ,
 * cited in §7; FPISA) compresses or reformats them. This module holds
 * the wire codecs the `dist::PrePostProcessor` pipeline runs per
 * segment:
 *
 *  - an IEEE 754 binary16 codec (two halves packed per 32-bit wire
 *    word) for the fp16 ablation, and
 *  - a block-shared-exponent int32 codec: every value of a segment is
 *    fixed-point with kQuantFracBits fractional bits at one shared
 *    exponent e, q = round(v * 2^(kQuantFracBits - e)), so the switch
 *    can accumulate plain integers. Integer addition is associative
 *    and commutative, which is what makes switch-side aggregation
 *    bit-identical under arbitrary packet arrival order — as long as
 *    every contribution to a segment carries the same exponent
 *    (mismatches are shift-rescaled and counted, a documented
 *    degraded path that is no longer order-independent).
 *
 * Encoded words are bit-cast into float storage so they ride the
 * existing ChunkPayload / SegState float buffers unchanged.
 */

#ifndef ISW_ML_QUANTIZE_HH
#define ISW_ML_QUANTIZE_HH

#include <cstdint>
#include <span>
#include <vector>

namespace isw::ml {

/** Convert a float32 to IEEE 754 binary16 (round-to-nearest-even). */
std::uint16_t encodeHalf(float f);

/** Convert an IEEE 754 binary16 to float32 (exact). */
float decodeHalf(std::uint16_t h);

/** Quantize a vector to fp16 storage. */
std::vector<std::uint16_t> toHalf(std::span<const float> v);

/** Expand fp16 storage back to float32. */
std::vector<float> fromHalf(std::span<const std::uint16_t> v);

/**
 * Round-trip @p v through fp16 in place — exactly the loss a
 * half-precision wire introduces.
 */
void quantizeInPlace(std::span<float> v);

/** Max absolute element-wise error of an fp16 round trip over @p v. */
float halfRoundTripError(std::span<const float> v);

/*
 * Packed-half wire words: one 32-bit word carries logical values 2i
 * (low half) and 2i+1 (high half). An odd tail leaves the high half
 * zero. Words are bit-cast into float storage.
 */

/** Pack @p n floats into ceil(n/2) half-pair words at @p words. */
void packHalfWords(const float *src, std::size_t n, float *words);

/** Unpack @p n logical floats from half-pair words at @p words. */
void unpackHalfWords(const float *words, std::size_t n, float *dst);

/**
 * Add two half-pair words half-wise: unpack both halves of each,
 * add in float32, re-encode. This is the FPISA-style switch-side
 * fp16 accumulate — it rounds after every step, exactly like a
 * hardware fp16 adder pipeline would.
 */
float addHalfWords(float a, float b);

/*
 * Block-shared-exponent int32 codec. q = round(v * 2^(kQuantFracBits
 * - e)); decode is v = q * 2^(e - kQuantFracBits). The shared
 * exponent e covers one wire segment ("block") and rides the Seg
 * word (core::packSegWord), biased into 5 bits.
 */

/** Smallest / largest encodable shared exponent (5 biased bits). */
constexpr int kQexpMin = -16;
constexpr int kQexpMax = 15;
/** Fractional bits of the fixed-point representation. */
constexpr int kQuantFracBits = 30;
/** Exponent used when a block gives no signal (all zero) and for the
 *  first round of switch-aggregated runs before speculation kicks in. */
constexpr int kDefaultQexp = 4;
/** Saturation rails (symmetric so negation never overflows). */
constexpr std::int32_t kQuantMax = 0x7FFFFFFF;
constexpr std::int32_t kQuantMin = -kQuantMax;

/** Deterministic codec counters (exported via RunResult::extras). */
struct QuantStats
{
    std::uint64_t value_clamps = 0; ///< values saturated while encoding
    std::uint64_t exp_clamps = 0;   ///< exponents clamped to the 5-bit range
};

/**
 * Shared exponent for a block: the smallest e such that every |v| and
 * the sum of @p headroom worst-case contributions still fit in int32.
 * Non-finite values are ignored; an all-zero block yields
 * kDefaultQexp. Clamped to [kQexpMin, kQexpMax] (counted in @p st).
 */
int blockExponent(const float *v, std::size_t n, std::uint32_t headroom = 1,
                  QuantStats *st = nullptr);

/**
 * Encode @p n floats at shared exponent @p e into int32 wire words
 * (bit-cast into floats) at @p words. Out-of-range values saturate,
 * NaN encodes as 0, ±inf as ±kQuantMax; all are counted in @p st.
 */
void encodeBlockInt32(const float *src, std::size_t n, int e, float *words,
                      QuantStats *st = nullptr);

/** Decode @p n int32 wire words at shared exponent @p e to floats. */
void decodeBlockInt32(const float *words, std::size_t n, int e, float *dst);

/**
 * Saturating element-wise integer add of @p n words of @p v into
 * @p acc (both int32 bit-cast in float storage, same shared
 * exponent). Returns the number of saturated lanes.
 */
std::uint64_t addBlockInt32(float *acc, const float *v, std::size_t n);

/**
 * Shift @p n int32 words in place from shared exponent @p from_e to
 * @p to_e. Raising the exponent arithmetic-shifts right (precision
 * loss); lowering it shifts left with saturation. Returns the number
 * of saturated lanes.
 */
std::uint64_t rescaleBlockInt32(float *words, std::size_t n, int from_e,
                                int to_e);

/**
 * Predict next round's shared exponent from this round's decoded
 * aggregate: estimate the per-contributor magnitude as max|agg| /
 * @p contributors, allow one doubling of growth, and add headroom for
 * @p contributors worst-case addends. Pure — every worker that holds
 * the same aggregate bytes derives the same exponent, which is how
 * sync switch-aggregated runs agree on e without an extra negotiation
 * round (DESIGN.md §14). An all-zero aggregate yields kDefaultQexp.
 */
int speculateExponent(const float *aggregate, std::size_t n,
                      std::uint32_t contributors);

} // namespace isw::ml

#endif // ISW_ML_QUANTIZE_HH
