/**
 * @file
 * IEEE 754 half-precision conversion for gradient compression.
 *
 * The paper transmits raw float32 gradients; related work (GradiVeQ,
 * cited in §7) compresses them. This module provides a software fp16
 * codec so the `bench_ablation_fp16` experiment can quantify both
 * sides of that trade: wire bytes halve, but gradients lose precision.
 */

#ifndef ISW_ML_QUANTIZE_HH
#define ISW_ML_QUANTIZE_HH

#include <cstdint>
#include <span>
#include <vector>

namespace isw::ml {

/** Convert a float32 to IEEE 754 binary16 (round-to-nearest-even). */
std::uint16_t encodeHalf(float f);

/** Convert an IEEE 754 binary16 to float32 (exact). */
float decodeHalf(std::uint16_t h);

/** Quantize a vector to fp16 storage. */
std::vector<std::uint16_t> toHalf(std::span<const float> v);

/** Expand fp16 storage back to float32. */
std::vector<float> fromHalf(std::span<const std::uint16_t> v);

/**
 * Round-trip @p v through fp16 in place — exactly the loss a
 * half-precision wire introduces.
 */
void quantizeInPlace(std::span<float> v);

/** Max absolute element-wise error of an fp16 round trip over @p v. */
float halfRoundTripError(std::span<const float> v);

} // namespace isw::ml

#endif // ISW_ML_QUANTIZE_HH
