/**
 * @file
 * Checkpointing: save/load flat weight vectors in a small versioned
 * binary container, so trained policies survive process restarts and
 * examples can hand models to each other.
 *
 * Format (little-endian):
 *   magic "ISWW" | u32 version | u64 count | count x f32 | u64 fnv1a
 */

#ifndef ISW_ML_SERIALIZE_HH
#define ISW_ML_SERIALIZE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace isw::ml {

/** Current checkpoint container version. */
constexpr std::uint32_t kCheckpointVersion = 1;

/** FNV-1a over a byte range (checkpoint integrity). */
std::uint64_t fnv1a(const void *data, std::size_t bytes);

/** Serialize @p weights to @p os. Throws std::runtime_error on I/O error. */
void saveWeights(std::ostream &os, const std::vector<float> &weights);

/**
 * Parse a checkpoint from @p is.
 * @throws std::runtime_error on malformed input, version mismatch, or
 *         checksum failure.
 */
std::vector<float> loadWeights(std::istream &is);

/** Convenience: save to a file path. */
void saveWeightsFile(const std::string &path,
                     const std::vector<float> &weights);

/** Convenience: load from a file path. */
std::vector<float> loadWeightsFile(const std::string &path);

} // namespace isw::ml

#endif // ISW_ML_SERIALIZE_HH
