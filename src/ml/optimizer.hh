/**
 * @file
 * First-order optimizers operating on flat parameter/gradient vectors.
 *
 * Distributed strategies apply the *aggregated* gradient with a local
 * optimizer replica; because the update is deterministic, identically
 * seeded workers stay bit-identical (the paper's decentralized weight
 * storage argument, §4.1).
 */

#ifndef ISW_ML_OPTIMIZER_HH
#define ISW_ML_OPTIMIZER_HH

#include <memory>
#include <span>
#include <vector>

namespace isw::ml {

/** Base class for flat-vector optimizers. */
class Optimizer
{
  public:
    virtual ~Optimizer() = default;

    /**
     * In-place update: params -= f(grads). Sizes must match the first
     * call's; state vectors are lazily sized then fixed.
     */
    virtual void step(std::span<float> params,
                      std::span<const float> grads) = 0;

    virtual double learningRate() const = 0;
    virtual void setLearningRate(double lr) = 0;
};

/** Plain SGD with optional momentum. */
class Sgd : public Optimizer
{
  public:
    explicit Sgd(double lr, double momentum = 0.0)
        : lr_(lr), momentum_(momentum)
    {}

    void step(std::span<float> params, std::span<const float> grads) override;
    double learningRate() const override { return lr_; }
    void setLearningRate(double lr) override { lr_ = lr; }

  private:
    double lr_;
    double momentum_;
    std::vector<float> velocity_;
};

/** RMSProp (the classic DQN optimizer). */
class RmsProp : public Optimizer
{
  public:
    explicit RmsProp(double lr, double decay = 0.99, double eps = 1e-8)
        : lr_(lr), decay_(decay), eps_(eps)
    {}

    void step(std::span<float> params, std::span<const float> grads) override;
    double learningRate() const override { return lr_; }
    void setLearningRate(double lr) override { lr_ = lr; }

  private:
    double lr_;
    double decay_;
    double eps_;
    std::vector<float> sq_avg_;
};

/** Adam (Kingma & Ba). */
class Adam : public Optimizer
{
  public:
    explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                  double eps = 1e-8)
        : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps)
    {}

    void step(std::span<float> params, std::span<const float> grads) override;
    double learningRate() const override { return lr_; }
    void setLearningRate(double lr) override { lr_ = lr; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    std::uint64_t t_ = 0;
    std::vector<float> m_;
    std::vector<float> v_;
};

} // namespace isw::ml

#endif // ISW_ML_OPTIMIZER_HH
