#include "ml/serialize.hh"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace isw::ml {

namespace {

constexpr char kMagic[4] = {'I', 'S', 'W', 'W'};

template <class T>
void
putPod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <class T>
T
getPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error("checkpoint: truncated input");
    return v;
}

} // namespace

std::uint64_t
fnv1a(const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

void
saveWeights(std::ostream &os, const std::vector<float> &weights)
{
    os.write(kMagic, sizeof(kMagic));
    putPod(os, kCheckpointVersion);
    putPod(os, static_cast<std::uint64_t>(weights.size()));
    os.write(reinterpret_cast<const char *>(weights.data()),
             static_cast<std::streamsize>(weights.size() * sizeof(float)));
    putPod(os, fnv1a(weights.data(), weights.size() * sizeof(float)));
    if (!os)
        throw std::runtime_error("checkpoint: write failed");
}

std::vector<float>
loadWeights(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof(magic));
    if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        throw std::runtime_error("checkpoint: bad magic");
    const auto version = getPod<std::uint32_t>(is);
    if (version != kCheckpointVersion)
        throw std::runtime_error("checkpoint: unsupported version " +
                                 std::to_string(version));
    const auto count = getPod<std::uint64_t>(is);
    // Sanity bound: refuse absurd sizes rather than bad_alloc.
    if (count > (1ULL << 32))
        throw std::runtime_error("checkpoint: implausible weight count");
    std::vector<float> weights(count);
    is.read(reinterpret_cast<char *>(weights.data()),
            static_cast<std::streamsize>(count * sizeof(float)));
    if (!is)
        throw std::runtime_error("checkpoint: truncated weights");
    const auto checksum = getPod<std::uint64_t>(is);
    if (checksum != fnv1a(weights.data(), weights.size() * sizeof(float)))
        throw std::runtime_error("checkpoint: checksum mismatch");
    return weights;
}

void
saveWeightsFile(const std::string &path, const std::vector<float> &weights)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        throw std::runtime_error("checkpoint: cannot open " + path);
    saveWeights(os, weights);
}

std::vector<float>
loadWeightsFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("checkpoint: cannot open " + path);
    return loadWeights(is);
}

} // namespace isw::ml
