/**
 * @file
 * Minimal dense math types for the NN substrate: a row-major float
 * matrix and a few free-function kernels. Sized for the small models
 * RL training uses; clarity over BLAS-level tuning.
 */

#ifndef ISW_ML_TENSOR_HH
#define ISW_ML_TENSOR_HH

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace isw::ml {

/** Contiguous float vector. */
using Vec = std::vector<float>;

/** Row-major dense matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), d_(rows * cols, fill)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return d_.size(); }

    float &at(std::size_t r, std::size_t c)
    {
        assert(r < rows_ && c < cols_);
        return d_[r * cols_ + c];
    }
    float at(std::size_t r, std::size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return d_[r * cols_ + c];
    }

    float *data() { return d_.data(); }
    const float *data() const { return d_.data(); }

    std::span<float> row(std::size_t r)
    {
        assert(r < rows_);
        return {d_.data() + r * cols_, cols_};
    }
    std::span<const float> row(std::size_t r) const
    {
        assert(r < rows_);
        return {d_.data() + r * cols_, cols_};
    }

    void fill(float v) { d_.assign(d_.size(), v); }

    std::vector<float> &raw() { return d_; }
    const std::vector<float> &raw() const { return d_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> d_;
};

/** out(B,O) = x(B,I) * wT(O,I)^T + b(O), the dense-layer kernel. */
void affineForward(const Matrix &x, const Matrix &w, const Vec &b,
                   Matrix &out);

/**
 * Dense-layer backward: given upstream dY(B,O), cached input X(B,I),
 * and weights W(O,I): accumulate dW += dY^T X, db += colsum(dY), and
 * produce dX = dY W.
 */
void affineBackward(const Matrix &dy, const Matrix &x, const Matrix &w,
                    Matrix &dw, Vec &db, Matrix &dx);

/** y += a * x elementwise (sizes must match). */
void axpy(float a, std::span<const float> x, std::span<float> y);

/** Dot product. */
float dot(std::span<const float> a, std::span<const float> b);

/** Euclidean norm. */
float l2norm(std::span<const float> v);

} // namespace isw::ml

#endif // ISW_ML_TENSOR_HH
