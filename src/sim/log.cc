#include "sim/log.hh"

#include <cstdio>
#include <iomanip>

namespace isw::sim {

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::kError: return "ERROR";
      case LogLevel::kWarn: return "WARN";
      case LogLevel::kInfo: return "INFO";
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kTrace: return "TRACE";
    }
    return "?";
}

void
Logger::write(LogLevel level, TimeNs now, const std::string &component,
              const std::string &message)
{
    if (!enabled(level))
        return;
    std::ostringstream os;
    os << "[" << std::setw(12) << now << "ns] " << logLevelName(level) << " "
       << component << ": " << message;
    if (sink_) {
        sink_(os.str());
    } else {
        std::fprintf(stderr, "%s\n", os.str().c_str());
    }
}

} // namespace isw::sim
