/**
 * @file
 * InlineFn: a move-only `void()` callable with small-buffer storage.
 *
 * The discrete-event queue stores millions of short-lived callbacks
 * per run; `std::function` heap-allocates any capture larger than its
 * tiny internal buffer (16 bytes on libstdc++), which made the event
 * hot path allocator-bound. InlineFn embeds captures up to `Capacity`
 * bytes directly in the object — every callback the simulator
 * schedules (a `this` pointer, a PacketPtr, a couple of indices) fits
 * inline — and falls back to the heap only for oversized or
 * throwing-move captures.
 *
 * Differences from std::function, on purpose:
 *  - move-only (no copy; the queue never copies callbacks),
 *  - invoking a null InlineFn is undefined (the queue rejects null at
 *    schedule time instead of paying a per-call branch + throw path).
 */

#ifndef ISW_SIM_SMALL_FN_HH
#define ISW_SIM_SMALL_FN_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace isw::sim {

template <std::size_t Capacity = 64>
class InlineFn
{
  public:
    InlineFn() = default;
    InlineFn(std::nullptr_t) {}

    template <class F,
              class D = std::decay_t<F>,
              class = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                       std::is_invocable_r_v<void, D &>>>
    InlineFn(F &&f)
    {
        if constexpr (fitsInline<D>()) {
            ::new (static_cast<void *>(buf_)) D(std::forward<F>(f));
            ops_ = &inlineOps<D>();
        } else {
            using P = D *;
            ::new (static_cast<void *>(buf_)) P(new D(std::forward<F>(f)));
            ops_ = &heapOps<D>();
        }
    }

    InlineFn(InlineFn &&o) noexcept : ops_(o.ops_)
    {
        if (ops_)
            ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
    }

    InlineFn &
    operator=(InlineFn &&o) noexcept
    {
        if (this != &o) {
            reset();
            ops_ = o.ops_;
            if (ops_)
                ops_->relocate(buf_, o.buf_);
            o.ops_ = nullptr;
        }
        return *this;
    }

    InlineFn(const InlineFn &) = delete;
    InlineFn &operator=(const InlineFn &) = delete;

    ~InlineFn() { reset(); }

    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke. Precondition: non-null. */
    void operator()() { ops_->invoke(buf_); }

  private:
    struct Ops
    {
        void (*invoke)(void *);
        /** Move-construct into @p dst from @p src, then destroy src. */
        void (*relocate)(void *dst, void *src);
        void (*destroy)(void *);
    };

    template <class D>
    static constexpr bool
    fitsInline()
    {
        return sizeof(D) <= Capacity &&
               alignof(D) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <class D>
    static const Ops &
    inlineOps()
    {
        static constexpr Ops ops{
            [](void *p) { (*std::launder(static_cast<D *>(p)))(); },
            [](void *dst, void *src) {
                D *s = std::launder(static_cast<D *>(src));
                ::new (dst) D(std::move(*s));
                s->~D();
            },
            [](void *p) { std::launder(static_cast<D *>(p))->~D(); },
        };
        return ops;
    }

    template <class D>
    static const Ops &
    heapOps()
    {
        using P = D *;
        static constexpr Ops ops{
            [](void *p) { (**std::launder(static_cast<P *>(p)))(); },
            [](void *dst, void *src) {
                // The stored pointer is trivially destructible; just
                // copy it across and forget the source.
                ::new (dst) P(*std::launder(static_cast<P *>(src)));
            },
            [](void *p) { delete *std::launder(static_cast<P *>(p)); },
        };
        return ops;
    }

    void
    reset()
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[Capacity];
    const Ops *ops_ = nullptr;
};

} // namespace isw::sim

#endif // ISW_SIM_SMALL_FN_HH
