/**
 * @file
 * Leveled logger stamped with simulated time.
 *
 * The default level is kWarn so unit tests and benches stay quiet;
 * examples raise it to kInfo/kDebug to narrate what the cluster does.
 */

#ifndef ISW_SIM_LOG_HH
#define ISW_SIM_LOG_HH

#include <functional>
#include <sstream>
#include <string>

#include "sim/time.hh"

namespace isw::sim {

enum class LogLevel { kError = 0, kWarn, kInfo, kDebug, kTrace };

/** Printable name of a log level. */
const char *logLevelName(LogLevel level);

/**
 * Minimal logger. Messages below the configured level are formatted
 * lazily (the stream body never runs), so logging is cheap when off.
 */
class Logger
{
  public:
    using Sink = std::function<void(const std::string &)>;

    explicit Logger(LogLevel level = LogLevel::kWarn) : level_(level) {}

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }
    bool enabled(LogLevel level) const { return level <= level_; }

    /** Replace the output sink (default: stderr). */
    void setSink(Sink sink) { sink_ = std::move(sink); }

    /** Emit one line; @p now is the simulated timestamp. */
    void write(LogLevel level, TimeNs now, const std::string &component,
               const std::string &message);

  private:
    LogLevel level_;
    Sink sink_;
};

} // namespace isw::sim

/**
 * Log from any scope holding a Simulation reference `sim`:
 *   ISW_LOG(sim, kInfo, "switch0", "agg done seg=" << seg);
 */
#define ISW_LOG(simref, lvl, component, expr)                                 \
    do {                                                                      \
        auto &isw_log_sim = (simref);                                         \
        if (isw_log_sim.logger().enabled(::isw::sim::LogLevel::lvl)) {        \
            std::ostringstream isw_log_os;                                    \
            isw_log_os << expr;                                               \
            isw_log_sim.logger().write(::isw::sim::LogLevel::lvl,             \
                                       isw_log_sim.now(), (component),        \
                                       isw_log_os.str());                     \
        }                                                                     \
    } while (0)

#endif // ISW_SIM_LOG_HH
