/**
 * @file
 * Simulated-time type and unit helpers.
 *
 * All simulated time in iswitch-sim is expressed in integer nanoseconds.
 * Using an integer type keeps the event kernel deterministic across
 * platforms and avoids floating-point drift in long runs.
 */

#ifndef ISW_SIM_TIME_HH
#define ISW_SIM_TIME_HH

#include <cstdint>

namespace isw::sim {

/** Simulated time, in nanoseconds since the start of the simulation. */
using TimeNs = std::uint64_t;

/** One microsecond in TimeNs units. */
constexpr TimeNs kUsec = 1000ULL;
/** One millisecond in TimeNs units. */
constexpr TimeNs kMsec = 1000ULL * kUsec;
/** One second in TimeNs units. */
constexpr TimeNs kSec = 1000ULL * kMsec;

/** Convert a TimeNs to fractional seconds (for reporting only). */
constexpr double
toSeconds(TimeNs t)
{
    return static_cast<double>(t) / static_cast<double>(kSec);
}

/** Convert a TimeNs to fractional milliseconds (for reporting only). */
constexpr double
toMillis(TimeNs t)
{
    return static_cast<double>(t) / static_cast<double>(kMsec);
}

/** Convert fractional seconds to TimeNs, rounding to nearest ns. */
constexpr TimeNs
fromSeconds(double s)
{
    return static_cast<TimeNs>(s * static_cast<double>(kSec) + 0.5);
}

/** Convert fractional milliseconds to TimeNs, rounding to nearest ns. */
constexpr TimeNs
fromMillis(double ms)
{
    return static_cast<TimeNs>(ms * static_cast<double>(kMsec) + 0.5);
}

} // namespace isw::sim

#endif // ISW_SIM_TIME_HH
