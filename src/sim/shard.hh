/**
 * @file
 * Domain-sharded conservative parallel event engine (DESIGN.md §13/§15).
 *
 * A large Simulation is split into D *domains*, each owning a private
 * serial EventQueue (so intra-domain ordering, FIFO tie-breaking, and
 * the generation-tagged cancellation of sim/event_queue.hh are all
 * preserved verbatim). Domains advance together through conservative
 * time windows:
 *
 *   T = min over domains of nextTime()
 *   window = [T, T + lookahead)
 *
 * where `lookahead` is the minimum propagation delay of any
 * domain-boundary link. Because a cross-domain interaction must cross
 * such a link — delivery time = serialization-done + propagation >=
 * now + lookahead — no event executed inside the window can schedule
 * work in *another* domain earlier than the window's end. Each domain
 * can therefore run its slice of the window on a separate thread with
 * no event-level synchronization at all.
 *
 * Cross-domain handoffs produced during a window are *staged* in the
 * source domain (thread-private, zero contention) and flushed once per
 * window slice as a single batch node onto the target domain's
 * lock-free MPSC mailbox (a Treiber stack of batch nodes). Between
 * windows the caller's thread pops every mailbox and merges it into
 * the owning queue in (time, source-domain, source-sequence) order,
 * which makes the merged schedule — and hence the whole run —
 * deterministic and independent of thread count and OS scheduling.
 *
 * With a single domain the engine degenerates to "run the one queue
 * on the caller's thread with no windows", which is byte-identical to
 * the serial Simulation. Windows whose horizon only one domain can
 * reach take a serial fast path that skips the worker-pool wakeup
 * entirely.
 */

#ifndef ISW_SIM_SHARD_HH
#define ISW_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace isw::sim {

/** Index of one shard domain. */
using DomainId = std::uint32_t;

/** "Not inside any domain" (setup code, the window scheduler). */
constexpr DomainId kNoDomain = ~DomainId{0};

/** How to shard a Simulation (see Simulation::shard()). */
struct ShardPlan
{
    /** Number of domains (1 = serial-equivalent). */
    std::size_t domains = 1;
    /**
     * Conservative window width: the minimum propagation delay of any
     * link whose endpoints live in different domains. Must be > 0.
     */
    TimeNs lookahead = 1;
    /**
     * Worker threads (including the calling thread). 0 picks
     * hardware_concurrency, capped at the domain count.
     */
    unsigned threads = 0;
};

/**
 * The sharded engine: D serial EventQueues + mailboxes + a worker pool.
 *
 * Threading contract: schedule()/cancelHere()/cancelIn() may be called
 * either from *inside* a domain (a callback executing during a window —
 * the common runtime case) or from the owning thread while no window is
 * running (setup). runAll()/runUntil() must be called from the owning
 * thread only.
 */
class ShardedEngine
{
  public:
    explicit ShardedEngine(const ShardPlan &plan);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    std::size_t domains() const { return domains_.size(); }
    TimeNs lookahead() const { return lookahead_; }
    unsigned threads() const { return nthreads_; }

    /**
     * Schedule @p cb at absolute @p when in domain @p d.
     *
     * From inside domain d itself this is a plain serial schedule.
     * From inside a *different* domain the event is a cross-domain
     * handoff: @p when must honor the lookahead contract (>= the end
     * of the current window) or std::logic_error is thrown, and the
     * returned id is kInvalidEventId (mailbox events are not
     * cancellable — they belong to no queue yet).
     */
    EventId schedule(DomainId d, TimeNs when, EventQueue::Callback cb);

    /** Domain of the callback currently executing on this thread. */
    static DomainId currentDomain() { return tls_domain_; }

    /**
     * Domain to charge work initiated on this thread to: the executing
     * domain during a window, domain 0 otherwise (setup).
     */
    DomainId hereOr0() const
    {
        return tls_engine_ == this && tls_domain_ != kNoDomain ? tls_domain_
                                                               : 0;
    }

    /**
     * Cancel an event scheduled in the current thread's domain.
     * Outside any domain context, ids from domain 0 are assumed (the
     * setup-thread convention). EventIds are queue-local: cancelling
     * an id minted by another domain silently cancels (or misses) an
     * unrelated event in *this* domain's queue. Callers that know the
     * owning domain must use cancelIn(), which checks.
     */
    bool cancelHere(EventId id);

    /**
     * Cancel an event known to live in domain @p d's queue. Safe from
     * the owning thread between windows (no queue is running) and from
     * inside domain d itself; calling from inside a *different* domain
     * mid-window throws std::logic_error — that would be a data race
     * on d's queue, and EventIds are only unique per queue anyway.
     */
    bool cancelIn(DomainId d, EventId id);

    /** Clock visible to the current thread (domain clock inside a
     *  window, last committed global time outside). */
    TimeNs now() const;

    /** End (exclusive) of the window currently executing. */
    TimeNs windowEnd() const
    {
        return window_end_.load(std::memory_order_relaxed);
    }

    /** Run windows until every queue drains or @p max_events ran. */
    std::size_t runAll(std::size_t max_events = SIZE_MAX);

    /** Run windows until simulated @p deadline (inclusive, like
     *  EventQueue::runUntil) or the queues drain. */
    std::size_t runUntil(TimeNs deadline);

    bool empty() const;
    std::size_t pending() const;
    std::uint64_t executed() const;

    /**
     * Per-domain enter/leave hooks, invoked on the worker thread
     * immediately before/after a domain executes its window slice.
     * Used to swap in per-domain resources (e.g. the thread-local
     * PacketPool override). Set before the first run.
     */
    using DomainHook = std::function<void(DomainId)>;
    void setDomainHooks(DomainHook enter, DomainHook leave)
    {
        enter_ = std::move(enter);
        leave_ = std::move(leave);
    }

    /**
     * Window-barrier hook, invoked on the owning thread after every
     * window completes (all domains quiescent, before the next merge).
     * This is the engine's only globally-ordered point, so it is where
     * cross-domain snapshots are published: async strategies copy live
     * version counters into their read-side snapshots here, giving
     * every domain in the next window the same deterministic view
     * regardless of thread count. Set before the first run.
     */
    void setBarrierHook(std::function<void()> fn)
    {
        barrier_ = std::move(fn);
    }

    /** Conservative windows executed so far. */
    std::uint64_t windows() const { return windows_; }
    /** Windows that took the single-active-domain serial fast path. */
    std::uint64_t windowsSerialFastPath() const { return windows_serial_; }
    /** Domain window-slices skipped because the domain had no event
     *  before the window horizon (idle-domain skip). */
    std::uint64_t domainsSkipped() const;
    /** Cross-domain mailbox handoffs so far. */
    std::uint64_t crossEvents() const;
    /** Batch nodes pushed onto mailboxes (handoffs are flushed once
     *  per source domain, destination, and window). */
    std::uint64_t crossBatches() const;
    /** CAS retries while pushing mailbox batches: how often two
     *  domains raced on the same destination's mailbox head. */
    std::uint64_t mailboxContention() const
    {
        return mailbox_contention_.load(std::memory_order_relaxed);
    }

  private:
    /** One cross-domain handoff, stamped for deterministic merging. */
    struct CrossEvent
    {
        TimeNs when;
        DomainId src;
        std::uint64_t seq; ///< per-source send counter
        EventQueue::Callback cb;
    };

    /** One mailbox node: every handoff a source domain produced for
     *  one destination during one window slice. */
    struct CrossNode
    {
        std::vector<CrossEvent> batch;
        CrossNode *next = nullptr;
    };

    /**
     * One domain. alignas keeps hot per-domain state (the queue, the
     * send counter, the staging buffers) on private cache lines across
     * worker threads. `staged` and the plain counters are only touched
     * by the thread executing this domain's window slice (one thread
     * per window, with a barrier between windows) or by the owning
     * thread between windows — never concurrently. `inbox` is the
     * lock-free MPSC head other domains push batch nodes onto.
     */
    struct alignas(64) Domain
    {
        EventQueue q;
        std::uint64_t send_seq = 0; ///< stamps outgoing cross events
        std::uint64_t batches_out = 0; ///< mailbox nodes pushed
        std::uint64_t skipped = 0;     ///< idle window-slices skipped
        /** Outgoing handoffs staged this window, keyed by destination
         *  (linear scan: fan-out per window is small). */
        std::vector<std::pair<DomainId, std::vector<CrossEvent>>> staged;
        std::atomic<CrossNode *> inbox{nullptr};
    };

    std::size_t runLoop(TimeNs deadline, std::size_t max_events);
    /** Execute one window on all threads; returns events executed. */
    std::size_t runWindowParallel(TimeNs end_exclusive);
    /** Execute one window entirely on the calling thread when only
     *  @p only can reach the horizon (skips the pool wakeup). */
    std::size_t runWindowSerial(DomainId only, TimeNs end_exclusive);
    /** Run one domain's slice of the current window (tls context,
     *  enter/leave hooks, staged-handoff flush). */
    void runDomainSlice(DomainId d, TimeNs end_exclusive);
    /** Run the window slice owned by worker @p worker. */
    void runOwnedDomains(unsigned worker, TimeNs end_exclusive);
    void workerMain(unsigned worker);
    /** Push @p src's staged handoffs onto the destination mailboxes
     *  (one batch node per destination). */
    void flushStaged(Domain &src);
    /** Merge all mailboxes into their queues (serial, deterministic). */
    void drainInboxes();

    std::deque<Domain> domains_; ///< deque: stable addrs, no moves
    TimeNs lookahead_;
    TimeNs committed_ = 0; ///< global clock between/after runs

    DomainHook enter_;
    DomainHook leave_;
    std::function<void()> barrier_;

    // Worker pool: pool_[i] drives domains {d : d % nthreads_ == i+1};
    // the calling thread doubles as worker 0. Wakeups use C++20
    // atomic wait (futex): gen_ bumps to start a window, done_ counts
    // finished workers.
    std::vector<std::thread> pool_;
    unsigned nthreads_ = 1;
    std::atomic<std::uint64_t> gen_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<TimeNs> window_end_{0};
    std::atomic<bool> quit_{false};

    std::uint64_t windows_ = 0;
    std::uint64_t windows_serial_ = 0;
    std::atomic<std::uint64_t> mailbox_contention_{0};
    std::vector<CrossEvent> merge_buf_; ///< drain scratch (reused)

    static thread_local ShardedEngine *tls_engine_;
    static thread_local DomainId tls_domain_;
};

} // namespace isw::sim

#endif // ISW_SIM_SHARD_HH
