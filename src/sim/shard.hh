/**
 * @file
 * Domain-sharded conservative parallel event engine (DESIGN.md §13).
 *
 * A large Simulation is split into D *domains*, each owning a private
 * serial EventQueue (so intra-domain ordering, FIFO tie-breaking, and
 * the generation-tagged cancellation of sim/event_queue.hh are all
 * preserved verbatim). Domains advance together through conservative
 * time windows:
 *
 *   T = min over domains of nextTime()
 *   window = [T, T + lookahead)
 *
 * where `lookahead` is the minimum propagation delay of any
 * domain-boundary link. Because a cross-domain interaction must cross
 * such a link — delivery time = serialization-done + propagation >=
 * now + lookahead — no event executed inside the window can schedule
 * work in *another* domain earlier than the window's end. Each domain
 * can therefore run its slice of the window on a separate thread with
 * no event-level synchronization at all.
 *
 * Cross-domain handoffs produced during a window land in the target
 * domain's *inbox* (a mutex-guarded mailbox). Between windows the
 * caller's thread merges every inbox into its queue in (time,
 * source-domain, source-sequence) order, which makes the merged
 * schedule — and hence the whole run — deterministic and independent
 * of thread count and OS scheduling.
 *
 * With a single domain the engine degenerates to "run the one queue
 * on the caller's thread with no windows", which is byte-identical to
 * the serial Simulation.
 */

#ifndef ISW_SIM_SHARD_HH
#define ISW_SIM_SHARD_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace isw::sim {

/** Index of one shard domain. */
using DomainId = std::uint32_t;

/** "Not inside any domain" (setup code, the window scheduler). */
constexpr DomainId kNoDomain = ~DomainId{0};

/** How to shard a Simulation (see Simulation::shard()). */
struct ShardPlan
{
    /** Number of domains (1 = serial-equivalent). */
    std::size_t domains = 1;
    /**
     * Conservative window width: the minimum propagation delay of any
     * link whose endpoints live in different domains. Must be > 0.
     */
    TimeNs lookahead = 1;
    /**
     * Worker threads (including the calling thread). 0 picks
     * hardware_concurrency, capped at the domain count.
     */
    unsigned threads = 0;
};

/**
 * The sharded engine: D serial EventQueues + inboxes + a worker pool.
 *
 * Threading contract: schedule()/cancelHere() may be called either
 * from *inside* a domain (a callback executing during a window — the
 * common runtime case) or from the owning thread while no window is
 * running (setup). runAll()/runUntil() must be called from the owning
 * thread only.
 */
class ShardedEngine
{
  public:
    explicit ShardedEngine(const ShardPlan &plan);
    ~ShardedEngine();

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    std::size_t domains() const { return domains_.size(); }
    TimeNs lookahead() const { return lookahead_; }
    unsigned threads() const { return nthreads_; }

    /**
     * Schedule @p cb at absolute @p when in domain @p d.
     *
     * From inside domain d itself this is a plain serial schedule.
     * From inside a *different* domain the event is a cross-domain
     * handoff: @p when must honor the lookahead contract (>= the end
     * of the current window) or std::logic_error is thrown, and the
     * returned id is kInvalidEventId (mailbox events are not
     * cancellable — they belong to no queue yet).
     */
    EventId schedule(DomainId d, TimeNs when, EventQueue::Callback cb);

    /** Domain of the callback currently executing on this thread. */
    static DomainId currentDomain() { return tls_domain_; }

    /**
     * Domain to charge work initiated on this thread to: the executing
     * domain during a window, domain 0 otherwise (setup).
     */
    DomainId hereOr0() const
    {
        return tls_engine_ == this && tls_domain_ != kNoDomain ? tls_domain_
                                                               : 0;
    }

    /**
     * Cancel an event scheduled in the current thread's domain.
     * Outside any domain context, ids from domain 0 are assumed (the
     * setup-thread convention); cancelling a foreign domain's id is a
     * checked error because keys are only unique per queue.
     */
    bool cancelHere(EventId id);

    /** Clock visible to the current thread (domain clock inside a
     *  window, last committed global time outside). */
    TimeNs now() const;

    /** Run windows until every queue drains or @p max_events ran. */
    std::size_t runAll(std::size_t max_events = SIZE_MAX);

    /** Run windows until simulated @p deadline (inclusive, like
     *  EventQueue::runUntil) or the queues drain. */
    std::size_t runUntil(TimeNs deadline);

    bool empty() const;
    std::size_t pending() const;
    std::uint64_t executed() const;

    /**
     * Per-domain enter/leave hooks, invoked on the worker thread
     * immediately before/after a domain executes its window slice.
     * Used to swap in per-domain resources (e.g. the thread-local
     * PacketPool override). Set before the first run.
     */
    using DomainHook = std::function<void(DomainId)>;
    void setDomainHooks(DomainHook enter, DomainHook leave)
    {
        enter_ = std::move(enter);
        leave_ = std::move(leave);
    }

    /** Conservative windows executed so far. */
    std::uint64_t windows() const { return windows_; }
    /** Cross-domain mailbox handoffs so far. */
    std::uint64_t crossEvents() const
    {
        return cross_events_.load(std::memory_order_relaxed);
    }

  private:
    /** One cross-domain handoff, stamped for deterministic merging. */
    struct CrossEvent
    {
        TimeNs when;
        DomainId src;
        std::uint64_t seq; ///< per-source send counter
        EventQueue::Callback cb;
    };

    /**
     * One domain. alignas keeps hot per-domain state (the queue, the
     * send counter) on private cache lines across worker threads.
     */
    struct alignas(64) Domain
    {
        EventQueue q;
        std::uint64_t send_seq = 0; ///< stamps outgoing cross events
        std::size_t ran = 0;        ///< events executed this run call
        mutable std::mutex inbox_mu;
        std::vector<CrossEvent> inbox;
    };

    std::size_t runLoop(TimeNs deadline, std::size_t max_events);
    /** Execute one window on all threads; returns events executed. */
    std::size_t runWindowParallel(TimeNs end_exclusive);
    /** Run the window slice owned by worker @p worker. */
    void runOwnedDomains(unsigned worker, TimeNs end_exclusive);
    void workerMain(unsigned worker);
    /** Merge all inboxes into their queues (serial, deterministic). */
    void drainInboxes();

    std::deque<Domain> domains_; ///< deque: stable addrs, no moves
    TimeNs lookahead_;
    TimeNs committed_ = 0; ///< global clock between/after runs

    DomainHook enter_;
    DomainHook leave_;

    // Worker pool: pool_[i] drives domains {d : d % nthreads_ == i+1};
    // the calling thread doubles as worker 0. Wakeups use C++20
    // atomic wait (futex): gen_ bumps to start a window, done_ counts
    // finished workers.
    std::vector<std::thread> pool_;
    unsigned nthreads_ = 1;
    std::atomic<std::uint64_t> gen_{0};
    std::atomic<unsigned> done_{0};
    std::atomic<TimeNs> window_end_{0};
    std::atomic<bool> quit_{false};

    std::uint64_t windows_ = 0;
    std::atomic<std::uint64_t> cross_events_{0};

    static thread_local ShardedEngine *tls_engine_;
    static thread_local DomainId tls_domain_;
};

} // namespace isw::sim

#endif // ISW_SIM_SHARD_HH
