/**
 * @file
 * Discrete-event kernel: a time-ordered queue of callbacks.
 *
 * Events scheduled at the same timestamp fire in scheduling order
 * (FIFO), which makes simulations fully deterministic. Cancellation is
 * lazy: cancelled events stay in the heap but are skipped when popped.
 */

#ifndef ISW_SIM_EVENT_QUEUE_HH
#define ISW_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hh"

namespace isw::sim {

/** Opaque handle identifying a scheduled event. */
using EventId = std::uint64_t;

/** Sentinel EventId returned by no-op schedules. */
constexpr EventId kInvalidEventId = 0;

/**
 * A deterministic discrete-event queue.
 *
 * The queue owns the simulated clock: time only advances when an event
 * is popped. Scheduling into the past is a programming error and
 * throws.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    TimeNs now() const { return now_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return heap_.size() - cancelled_.size(); }

    /** True when no runnable events remain. */
    bool empty() const { return pending() == 0; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute simulated time; must be >= now().
     * @param cb Callback invoked when the event fires.
     * @return Handle usable with cancel().
     */
    EventId schedule(TimeNs when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    EventId scheduleAfter(TimeNs delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an already-fired or unknown id is a harmless no-op.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /**
     * Pop and run the earliest event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until simulated time exceeds @p deadline or the queue
     * drains. Events scheduled exactly at @p deadline do run.
     * @return number of events executed.
     */
    std::size_t runUntil(TimeNs deadline);

    /**
     * Run until the queue drains or @p max_events events have run.
     * @return number of events executed.
     */
    std::size_t runAll(std::size_t max_events = SIZE_MAX);

  private:
    struct Event
    {
        TimeNs when;
        EventId id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            // std::priority_queue is a max-heap; invert for earliest-first.
            // Ties broken by id so same-time events fire FIFO.
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    /** Pop the earliest non-cancelled event, or return false. */
    bool popNext(Event &out);

    TimeNs now_ = 0;
    EventId next_id_ = 1;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    std::unordered_set<EventId> cancelled_;
};

} // namespace isw::sim

#endif // ISW_SIM_EVENT_QUEUE_HH
