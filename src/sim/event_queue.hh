/**
 * @file
 * Discrete-event kernel: a time-ordered queue of callbacks.
 *
 * Events scheduled at the same timestamp fire in scheduling order
 * (FIFO), which makes simulations fully deterministic.
 *
 * Hot-path layout (DESIGN.md §9):
 *  - Callbacks live in a small-buffer `InlineFn` (no heap allocation
 *    for the capture sizes the simulator uses) inside a stable slot
 *    table, so each is moved exactly twice (in at schedule, out at
 *    fire) no matter how much the ordering structures churn.
 *  - Time order lives in 16-byte POD keys split between two
 *    structures: a monotone *tail* FIFO that absorbs the dominant
 *    nondecreasing-time scheduling pattern (link serialization,
 *    fixed-latency hops, scheduleAfter chains) in O(1), and an inline
 *    4-ary array heap for out-of-order arrivals — fewer levels and
 *    far cheaper sifts than the binary std::priority_queue of
 *    std::function events it replaces.
 *  - Cancellation is generation-tagged: an event handle encodes its
 *    unique (seq, slot) key; cancel() is an O(1) key mismatch — no
 *    hash-set insert, no tombstone growth — and stale handles (fired
 *    or cancelled) are recognised exactly instead of leaking.
 */

#ifndef ISW_SIM_EVENT_QUEUE_HH
#define ISW_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/small_fn.hh"
#include "sim/time.hh"

namespace isw::sim {

/**
 * Opaque handle identifying a scheduled event.
 *
 * Encoding: the event's unique packed key (seq << 24 | slot) + 1. A
 * handle is live exactly while the slot table still carries that key;
 * firing or cancelling clears it, so stale handles can never alias a
 * later event (sequence numbers are never reused).
 */
using EventId = std::uint64_t;

/** Sentinel EventId returned by no-op schedules. */
constexpr EventId kInvalidEventId = 0;

/**
 * A deterministic discrete-event queue.
 *
 * The queue owns the simulated clock: time only advances when an event
 * is popped. Scheduling into the past is a programming error and
 * throws.
 */
class EventQueue
{
  public:
    using Callback = InlineFn<48>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    TimeNs now() const { return now_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pending() const { return pending_; }

    /** True when no runnable events remain. */
    bool empty() const { return pending_ == 0; }

    /** Events executed over this queue's lifetime. */
    std::uint64_t executed() const { return executed_; }

    /** Sentinel returned by nextTime() when the queue is drained. */
    static constexpr TimeNs kNoEvent = ~TimeNs{0};

    /**
     * Timestamp of the earliest pending event, or kNoEvent when the
     * queue is drained. Non-const because stale (cancelled) fronts are
     * pruned on the way.
     */
    TimeNs nextTime();

    /**
     * Schedule @p cb to run at absolute time @p when.
     *
     * @param when Absolute simulated time; must be >= now().
     * @param cb Callback invoked when the event fires.
     * @return Handle usable with cancel().
     */
    EventId schedule(TimeNs when, Callback cb);

    /** Schedule @p cb to run @p delay after the current time. */
    EventId scheduleAfter(TimeNs delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    /**
     * Cancel a previously scheduled event.
     *
     * Cancelling an already-fired, already-cancelled, or unknown id is
     * a harmless no-op that returns false.
     * @return true if the event was pending and is now cancelled.
     */
    bool cancel(EventId id);

    /**
     * Pop and run the earliest event.
     * @return true if an event ran, false if the queue was empty.
     */
    bool runOne();

    /**
     * Run events until simulated time exceeds @p deadline or the queue
     * drains. Events scheduled exactly at @p deadline do run.
     * @return number of events executed.
     */
    std::size_t runUntil(TimeNs deadline);

    /**
     * Run until the queue drains or @p max_events events have run.
     * @return number of events executed.
     */
    std::size_t runAll(std::size_t max_events = SIZE_MAX);

    /**
     * Run events strictly before @p end_exclusive. Unlike runUntil(),
     * the clock never force-advances to the window edge: now() is left
     * at the last executed event, so a later window (or an event merged
     * in from another domain at >= end_exclusive) observes exactly the
     * serial-queue clock semantics. This is the conservative-window
     * primitive of the domain-sharded engine (sim/shard.hh).
     * @return number of events executed.
     */
    std::size_t runWindow(TimeNs end_exclusive);

  private:
    /** Slot index bits inside a packed key (max 16M pending events). */
    static constexpr std::uint64_t kSlotBits = 24;
    static constexpr std::uint64_t kSlotMask = (1ULL << kSlotBits) - 1;

    /**
     * Trivially-copyable 16-byte ordering key; the callback stays in
     * its slot. `key` packs (seq << 24 | slot): seq is unique and
     * monotone, so comparing keys tie-breaks equal timestamps FIFO.
     */
    struct Entry
    {
        TimeNs when;
        std::uint64_t key;
    };

    struct SlotRec
    {
        std::uint64_t live_key = 0; ///< key of the pending event, or 0
        Callback cb;
    };

    static bool
    earlier(const Entry &a, const Entry &b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.key < b.key;
    }

    /** True while the heap entry's handle is still live. */
    bool
    live(const Entry &e) const
    {
        return slots_[e.key & kSlotMask].live_key == e.key;
    }

    /** Retire the slot of @p e: invalidate its handle, allow reuse. */
    void
    retireSlot(std::uint64_t key)
    {
        SlotRec &rec = slots_[key & kSlotMask];
        rec.live_key = 0;
        rec.cb = nullptr;
        free_slots_.push_back(static_cast<std::uint32_t>(key & kSlotMask));
    }

    void pushHeap(const Entry &e);
    /** Remove the heap root (which must exist). */
    Entry popHeap();
    /**
     * Earliest live entry across heap and tail, discarding stale
     * entries. Returns nullptr when drained; otherwise *from_tail
     * says which structure holds it.
     */
    const Entry *peekLive(bool *from_tail);
    /** Extract a live entry found by peekLive(). */
    Entry extract(bool from_tail);

    TimeNs now_ = 0;
    std::uint64_t next_seq_ = 1;
    std::size_t pending_ = 0;
    std::uint64_t executed_ = 0;
    std::vector<Entry> heap_; ///< 4-ary min-heap on (when, key)
    std::vector<Entry> tail_; ///< sorted run of monotone arrivals
    std::size_t tail_head_ = 0;
    std::vector<SlotRec> slots_;
    std::vector<std::uint32_t> free_slots_;
};

} // namespace isw::sim

#endif // ISW_SIM_EVENT_QUEUE_HH
