#include "sim/event_queue.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace isw::sim {

namespace {

constexpr std::size_t kArity = 4;

} // namespace

EventId
EventQueue::schedule(TimeNs when, Callback cb)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling into the past");
    if (!cb)
        throw std::invalid_argument("EventQueue: null callback");

    std::uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        if (slot > kSlotMask)
            throw std::length_error("EventQueue: too many pending events");
        slots_.emplace_back();
    }
    SlotRec &rec = slots_[slot];
    rec.cb = std::move(cb);
    const std::uint64_t key = next_seq_++ << kSlotBits | slot;
    rec.live_key = key;

    const Entry e{when, key};
    // Monotone arrivals (the common pattern: fixed-latency hops, link
    // serialization, scheduleAfter chains) append to the sorted tail
    // in O(1); only out-of-order arrivals pay the heap sift.
    if (tail_head_ == tail_.size()) {
        tail_.clear();
        tail_head_ = 0;
        tail_.push_back(e);
    } else if (!earlier(e, tail_.back())) {
        tail_.push_back(e);
    } else {
        pushHeap(e);
    }
    ++pending_;
    return key + 1;
}

bool
EventQueue::cancel(EventId id)
{
    const std::uint64_t key = id - 1; // kInvalidEventId wraps to ~0
    const std::uint64_t slot = key & kSlotMask;
    if (id == kInvalidEventId || slot >= slots_.size() ||
        slots_[slot].live_key != key)
        return false; // already fired, already cancelled, or unknown
    // The ordering entry stays buried and is discarded lazily when it
    // surfaces; the cleared slot key makes it recognisably stale.
    retireSlot(key);
    --pending_;
    return true;
}

void
EventQueue::pushHeap(const Entry &e)
{
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
        const std::size_t parent = (i - 1) / kArity;
        if (!earlier(e, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = e;
}

EventQueue::Entry
EventQueue::popHeap()
{
    const Entry top = heap_.front();
    const Entry v = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0)
        return top;
    std::size_t i = 0;
    for (;;) {
        const std::size_t first = i * kArity + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        const std::size_t last = std::min(first + kArity, n);
        for (std::size_t c = first + 1; c < last; ++c)
            if (earlier(heap_[c], heap_[best]))
                best = c;
        if (!earlier(heap_[best], v))
            break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = v;
    return top;
}

const EventQueue::Entry *
EventQueue::peekLive(bool *from_tail)
{
    // Drop stale (cancelled) fronts from both structures first.
    while (tail_head_ < tail_.size() && !live(tail_[tail_head_]))
        ++tail_head_;
    while (!heap_.empty() && !live(heap_.front()))
        (void)popHeap();

    const bool have_tail = tail_head_ < tail_.size();
    const bool have_heap = !heap_.empty();
    if (!have_tail && !have_heap)
        return nullptr;
    if (have_tail &&
        (!have_heap || earlier(tail_[tail_head_], heap_.front()))) {
        *from_tail = true;
        return &tail_[tail_head_];
    }
    *from_tail = false;
    return &heap_.front();
}

EventQueue::Entry
EventQueue::extract(bool from_tail)
{
    if (from_tail)
        return tail_[tail_head_++];
    return popHeap();
}

bool
EventQueue::runOne()
{
    bool from_tail;
    if (peekLive(&from_tail) == nullptr)
        return false;
    const Entry e = extract(from_tail);
    Callback cb = std::move(slots_[e.key & kSlotMask].cb);
    retireSlot(e.key);
    --pending_;
    ++executed_;
    now_ = e.when;
    cb();
    return true;
}

std::size_t
EventQueue::runUntil(TimeNs deadline)
{
    std::size_t n = 0;
    for (;;) {
        bool from_tail;
        const Entry *top = peekLive(&from_tail);
        if (top == nullptr) {
            if (now_ < deadline)
                now_ = deadline;
            break;
        }
        if (top->when > deadline)
            break;
        const Entry e = extract(from_tail);
        Callback cb = std::move(slots_[e.key & kSlotMask].cb);
        retireSlot(e.key);
        --pending_;
        ++executed_;
        now_ = e.when;
        cb();
        ++n;
    }
    return n;
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

TimeNs
EventQueue::nextTime()
{
    bool from_tail;
    const Entry *top = peekLive(&from_tail);
    return top == nullptr ? kNoEvent : top->when;
}

std::size_t
EventQueue::runWindow(TimeNs end_exclusive)
{
    std::size_t n = 0;
    for (;;) {
        bool from_tail;
        const Entry *top = peekLive(&from_tail);
        if (top == nullptr || top->when >= end_exclusive)
            break;
        const Entry e = extract(from_tail);
        Callback cb = std::move(slots_[e.key & kSlotMask].cb);
        retireSlot(e.key);
        --pending_;
        ++executed_;
        now_ = e.when;
        cb();
        ++n;
    }
    return n;
}

} // namespace isw::sim
