#include "sim/event_queue.hh"

#include <stdexcept>
#include <utility>

namespace isw::sim {

EventId
EventQueue::schedule(TimeNs when, Callback cb)
{
    if (when < now_)
        throw std::logic_error("EventQueue: scheduling into the past");
    if (!cb)
        throw std::invalid_argument("EventQueue: null callback");
    EventId id = next_id_++;
    heap_.push(Event{when, id, std::move(cb)});
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id == kInvalidEventId || id >= next_id_)
        return false;
    // We cannot cheaply tell fired-vs-pending; record the id and let
    // popNext() discard it. Inserting an already-fired id is benign
    // because ids are never reused.
    return cancelled_.insert(id).second;
}

bool
EventQueue::popNext(Event &out)
{
    while (!heap_.empty()) {
        // priority_queue::top returns const&; move via const_cast is
        // the standard workaround, safe because we pop immediately.
        Event ev = std::move(const_cast<Event &>(heap_.top()));
        heap_.pop();
        auto it = cancelled_.find(ev.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            continue;
        }
        out = std::move(ev);
        return true;
    }
    return false;
}

bool
EventQueue::runOne()
{
    Event ev;
    if (!popNext(ev))
        return false;
    now_ = ev.when;
    ev.cb();
    return true;
}

std::size_t
EventQueue::runUntil(TimeNs deadline)
{
    std::size_t n = 0;
    Event ev;
    while (popNext(ev)) {
        if (ev.when > deadline) {
            // Put it back: re-push preserves id so ordering holds.
            heap_.push(std::move(ev));
            break;
        }
        now_ = ev.when;
        ev.cb();
        ++n;
    }
    if (now_ < deadline && heap_.empty())
        now_ = deadline;
    return n;
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t n = 0;
    while (n < max_events && runOne())
        ++n;
    return n;
}

} // namespace isw::sim
