/**
 * @file
 * Lightweight statistics primitives and a named registry.
 *
 * Entities record counters, value accumulators (Welford mean/variance),
 * fixed-bin histograms, and (time, value) series. The registry is used
 * by the experiment harness to dump results as tables or CSV.
 */

#ifndef ISW_SIM_STATS_HH
#define ISW_SIM_STATS_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace isw::sim {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Streaming accumulator: count, sum, min, max, mean, variance. */
class Accumulator
{
  public:
    void add(double x);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 for fewer than two samples. */
    double variance() const;
    double stddev() const;
    void reset() { *this = Accumulator(); }

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-width-bin histogram over [lo, hi) with under/overflow bins. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);
    std::size_t count() const { return count_; }
    std::size_t bin(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    std::size_t underflow() const { return underflow_; }
    std::size_t overflow() const { return overflow_; }
    /** Approximate quantile (linear within the containing bin). */
    double quantile(double q) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> bins_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t count_ = 0;
};

/** A recorded (simulated time, value) series, e.g. a reward curve. */
class TimeSeries
{
  public:
    struct Point
    {
        TimeNs t;
        double v;
    };

    void record(TimeNs t, double v) { points_.push_back({t, v}); }
    const std::vector<Point> &points() const { return points_; }
    bool empty() const { return points_.empty(); }
    void clear() { points_.clear(); }

  private:
    std::vector<Point> points_;
};

/**
 * Name-keyed collection of statistics owned by a Simulation.
 *
 * Lookup creates on first use, so call sites stay one-liners:
 *   sim.stats().counter("switch.pkts_aggregated").inc();
 */
class StatsRegistry
{
  public:
    Counter &counter(const std::string &name) { return counters_[name]; }
    Accumulator &accumulator(const std::string &name) { return accs_[name]; }
    TimeSeries &series(const std::string &name) { return series_[name]; }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Accumulator> &accumulators() const
    {
        return accs_;
    }
    const std::map<std::string, TimeSeries> &allSeries() const
    {
        return series_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Accumulator> accs_;
    std::map<std::string, TimeSeries> series_;
};

} // namespace isw::sim

#endif // ISW_SIM_STATS_HH
