#include "sim/random.hh"

#include <cassert>
#include <cmath>

namespace isw::sim {

namespace {

/** SplitMix64 step, used for seed expansion and stream derivation. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ULL / span) * span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::lognormalMeanCv(double mean, double cv)
{
    assert(mean >= 0.0 && cv >= 0.0);
    if (mean == 0.0 || cv == 0.0)
        return mean;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = std::log(mean) - 0.5 * sigma2;
    return std::exp(mu + std::sqrt(sigma2) * normal());
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Mix the parent state with the stream id through SplitMix64 so
    // children are decorrelated from the parent and from each other.
    std::uint64_t x = s_[0] ^ rotl(s_[2], 13) ^ (stream_id * 0xD1342543DE82EF95ULL);
    Rng child(splitmix64(x));
    return child;
}

} // namespace isw::sim
