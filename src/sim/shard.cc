#include "sim/shard.hh"

#include <algorithm>
#include <stdexcept>

namespace isw::sim {

thread_local ShardedEngine *ShardedEngine::tls_engine_ = nullptr;
thread_local DomainId ShardedEngine::tls_domain_ = kNoDomain;

ShardedEngine::ShardedEngine(const ShardPlan &plan)
    : lookahead_(plan.lookahead)
{
    if (plan.domains == 0)
        throw std::invalid_argument("ShardedEngine: need at least 1 domain");
    if (plan.domains > std::size_t{kNoDomain})
        throw std::invalid_argument("ShardedEngine: too many domains");
    if (plan.lookahead == 0)
        throw std::invalid_argument("ShardedEngine: lookahead must be > 0");
    domains_.resize(plan.domains);

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    const unsigned want = plan.threads != 0 ? plan.threads : hw;
    nthreads_ = static_cast<unsigned>(
        std::min<std::size_t>(want, plan.domains));
    if (nthreads_ == 0)
        nthreads_ = 1;
    pool_.reserve(nthreads_ - 1);
    for (unsigned i = 1; i < nthreads_; ++i)
        pool_.emplace_back(&ShardedEngine::workerMain, this, i);
}

ShardedEngine::~ShardedEngine()
{
    quit_.store(true, std::memory_order_release);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    for (auto &t : pool_)
        t.join();
    // Free any mailbox nodes left behind by an aborted run.
    for (auto &d : domains_) {
        CrossNode *n = d.inbox.exchange(nullptr, std::memory_order_acquire);
        while (n != nullptr) {
            CrossNode *next = n->next;
            delete n;
            n = next;
        }
    }
}

EventId
ShardedEngine::schedule(DomainId d, TimeNs when, EventQueue::Callback cb)
{
    if (d >= domains_.size())
        throw std::out_of_range("ShardedEngine: no such domain");
    Domain &dst = domains_[d];
    if (tls_engine_ == this && tls_domain_ != kNoDomain) {
        if (d == tls_domain_)
            return dst.q.schedule(when, std::move(cb));
        // Cross-domain handoff. The conservative-window contract says
        // nothing scheduled during [T, end) may land in another domain
        // before `end`; a violation means the domain partition cut a
        // dependency shorter than the lookahead — a setup bug.
        if (when < window_end_.load(std::memory_order_relaxed))
            throw std::logic_error(
                "ShardedEngine: cross-domain event violates lookahead");
        // Stage in the *source* domain (thread-private, no contention);
        // flushed as one batch node per destination when this domain's
        // window slice ends.
        Domain &src = domains_[tls_domain_];
        const std::uint64_t seq = src.send_seq++;
        for (auto &entry : src.staged) {
            if (entry.first == d) {
                entry.second.push_back(
                    CrossEvent{when, tls_domain_, seq, std::move(cb)});
                return kInvalidEventId;
            }
        }
        src.staged.emplace_back(d, std::vector<CrossEvent>{});
        src.staged.back().second.push_back(
            CrossEvent{when, tls_domain_, seq, std::move(cb)});
        return kInvalidEventId; // mailbox events have no queue key yet
    }
    // Setup / between windows: only the owning thread runs here.
    return dst.q.schedule(when, std::move(cb));
}

bool
ShardedEngine::cancelHere(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    const DomainId d =
        tls_engine_ == this && tls_domain_ != kNoDomain ? tls_domain_ : 0;
    return domains_[d].q.cancel(id);
}

bool
ShardedEngine::cancelIn(DomainId d, EventId id)
{
    if (id == kInvalidEventId)
        return false;
    if (d >= domains_.size())
        throw std::out_of_range("ShardedEngine: no such domain");
    // Inside a window only the executing domain's own queue is safe to
    // touch: another domain's queue may be mid-run on another thread,
    // and EventIds are only unique per queue, so a silent cross-domain
    // cancel would corrupt an unrelated event. Loud beats undefined.
    if (tls_engine_ == this && tls_domain_ != kNoDomain && tls_domain_ != d)
        throw std::logic_error(
            "ShardedEngine: cross-domain cancel mid-window — EventIds "
            "are queue-local; defer the cancel to its home domain");
    return domains_[d].q.cancel(id);
}

TimeNs
ShardedEngine::now() const
{
    if (tls_engine_ == this && tls_domain_ != kNoDomain)
        return domains_[tls_domain_].q.now();
    return committed_;
}

bool
ShardedEngine::empty() const
{
    return pending() == 0;
}

std::size_t
ShardedEngine::pending() const
{
    // Owner-thread only, between windows: mailboxes are quiescent and
    // staging buffers are flushed, so a plain walk is race-free.
    std::size_t n = 0;
    for (const auto &d : domains_) {
        n += d.q.pending();
        for (const CrossNode *node =
                 d.inbox.load(std::memory_order_acquire);
             node != nullptr; node = node->next)
            n += node->batch.size();
    }
    return n;
}

std::uint64_t
ShardedEngine::executed() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d.q.executed();
    return n;
}

std::uint64_t
ShardedEngine::domainsSkipped() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d.skipped;
    return n;
}

std::uint64_t
ShardedEngine::crossEvents() const
{
    // send_seq is a per-source lifetime counter, so the sum is the
    // total number of handoffs without a shared atomic in the path.
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d.send_seq;
    return n;
}

std::uint64_t
ShardedEngine::crossBatches() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d.batches_out;
    return n;
}

void
ShardedEngine::flushStaged(Domain &src)
{
    for (auto &entry : src.staged) {
        if (entry.second.empty())
            continue;
        auto *node = new CrossNode;
        node->batch = std::move(entry.second);
        entry.second.clear(); // moved-from: make the reuse explicit
        Domain &dst = domains_[entry.first];
        node->next = dst.inbox.load(std::memory_order_relaxed);
        while (!dst.inbox.compare_exchange_weak(node->next, node,
                                                std::memory_order_release,
                                                std::memory_order_relaxed))
            mailbox_contention_.fetch_add(1, std::memory_order_relaxed);
        ++src.batches_out;
    }
}

void
ShardedEngine::drainInboxes()
{
    for (auto &dst : domains_) {
        // No window is running, but flushes from the just-finished
        // window were released by other threads: acquire pairs with
        // their CAS release.
        CrossNode *head =
            dst.inbox.exchange(nullptr, std::memory_order_acquire);
        if (head == nullptr)
            continue;
        merge_buf_.clear();
        while (head != nullptr) {
            for (auto &ce : head->batch)
                merge_buf_.push_back(std::move(ce));
            CrossNode *next = head->next;
            delete head;
            head = next;
        }
        // Deterministic merge order: time, then source domain, then
        // the source's send sequence. Queue FIFO tie-breaking then
        // reproduces this order for equal timestamps, independent of
        // thread interleaving and of the stack's node order.
        std::sort(merge_buf_.begin(), merge_buf_.end(),
                  [](const CrossEvent &a, const CrossEvent &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        for (auto &ce : merge_buf_)
            dst.q.schedule(ce.when, std::move(ce.cb));
    }
}

void
ShardedEngine::runDomainSlice(DomainId d, TimeNs end_exclusive)
{
    Domain &dom = domains_[d];
    tls_domain_ = d;
    if (enter_)
        enter_(d);
    // The leave hook must run even when a callback throws (lookahead or
    // cancel-contract violations surface as exceptions): it restores
    // thread-local state — e.g. a per-domain packet-pool override — that
    // would otherwise dangle past the owning job's lifetime.
    struct LeaveGuard
    {
        ShardedEngine *eng;
        DomainId d;
        bool fired = false;
        void
        fire()
        {
            if (fired)
                return;
            fired = true;
            if (eng->leave_)
                eng->leave_(d);
        }
        ~LeaveGuard() { fire(); }
    } guard{this, d};
    dom.q.runWindow(end_exclusive);
    guard.fire();
    flushStaged(dom);
}

void
ShardedEngine::runOwnedDomains(unsigned worker, TimeNs end_exclusive)
{
    // Clear the thread's domain context even if a callback throws (a
    // lookahead violation must not leave stale context behind).
    struct ContextGuard
    {
        ~ContextGuard() { tls_domain_ = kNoDomain; }
    };
    tls_engine_ = this;
    ContextGuard guard;
    for (std::size_t d = worker; d < domains_.size(); d += nthreads_) {
        Domain &dom = domains_[d];
        if (dom.q.nextTime() >= end_exclusive) {
            ++dom.skipped; // idle: no event before the window horizon
            continue;
        }
        runDomainSlice(static_cast<DomainId>(d), end_exclusive);
    }
}

void
ShardedEngine::workerMain(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        gen_.wait(seen, std::memory_order_acquire);
        seen = gen_.load(std::memory_order_acquire);
        if (quit_.load(std::memory_order_acquire))
            return;
        runOwnedDomains(worker, window_end_.load(std::memory_order_relaxed));
        done_.fetch_add(1, std::memory_order_release);
        done_.notify_one();
    }
}

std::size_t
ShardedEngine::runWindowParallel(TimeNs end_exclusive)
{
    const std::uint64_t before = executed();
    // schedule()'s lookahead check reads window_end_ on every thread
    // count, so it must be published even on the serial path.
    window_end_.store(end_exclusive, std::memory_order_relaxed);
    if (nthreads_ == 1) {
        runOwnedDomains(0, end_exclusive);
    } else {
        done_.store(0, std::memory_order_relaxed);
        gen_.fetch_add(1, std::memory_order_release);
        gen_.notify_all();
        runOwnedDomains(0, end_exclusive);
        unsigned finished;
        while ((finished = done_.load(std::memory_order_acquire)) !=
               nthreads_ - 1)
            done_.wait(finished, std::memory_order_acquire);
    }
    ++windows_;
    return static_cast<std::size_t>(executed() - before);
}

std::size_t
ShardedEngine::runWindowSerial(DomainId only, TimeNs end_exclusive)
{
    // Only one domain can reach the horizon: run it inline and leave
    // the worker pool parked (no futex round trip). Behavior matches
    // runWindowParallel exactly — every other domain would have been
    // skipped as idle, which is what the counter records.
    Domain &dom = domains_[only];
    const std::uint64_t before = dom.q.executed();
    window_end_.store(end_exclusive, std::memory_order_relaxed);
    struct ContextGuard
    {
        ~ContextGuard() { tls_domain_ = kNoDomain; }
    };
    tls_engine_ = this;
    ContextGuard guard;
    runDomainSlice(only, end_exclusive);
    dom.skipped += domains_.size() - 1;
    ++windows_;
    ++windows_serial_;
    return static_cast<std::size_t>(dom.q.executed() - before);
}

std::size_t
ShardedEngine::runLoop(TimeNs deadline, std::size_t max_events)
{
    std::size_t total = 0;
    for (;;) {
        drainInboxes();
        // One scan finds both the window start (global min) and the
        // runner-up: when the runner-up lies beyond the horizon, the
        // window has exactly one active domain and runs serially.
        TimeNs t = EventQueue::kNoEvent;
        TimeNs t2 = EventQueue::kNoEvent;
        std::size_t argmin = 0;
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            const TimeNs next = domains_[d].q.nextTime();
            if (next < t) {
                t2 = t;
                t = next;
                argmin = d;
            } else if (next < t2) {
                t2 = next;
            }
        }
        if (t == EventQueue::kNoEvent || t > deadline)
            break;
        TimeNs end = t + lookahead_;
        if (end < t)
            end = EventQueue::kNoEvent; // overflow clamp
        if (deadline != EventQueue::kNoEvent && end > deadline)
            end = deadline + 1; // deadline-inclusive, like runUntil()
        if (t2 >= end)
            total += runWindowSerial(static_cast<DomainId>(argmin), end);
        else
            total += runWindowParallel(end);
        if (barrier_)
            barrier_();
        if (total >= max_events)
            break;
    }
    for (const auto &d : domains_)
        committed_ = std::max(committed_, d.q.now());
    return total;
}

std::size_t
ShardedEngine::runAll(std::size_t max_events)
{
    return runLoop(EventQueue::kNoEvent, max_events);
}

std::size_t
ShardedEngine::runUntil(TimeNs deadline)
{
    const std::size_t n = runLoop(deadline, SIZE_MAX);
    // The serial queue parks the clock at the deadline when it drains
    // early; mirror that so now() agrees.
    if (empty() && committed_ < deadline)
        committed_ = deadline;
    return n;
}

} // namespace isw::sim
