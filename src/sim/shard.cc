#include "sim/shard.hh"

#include <algorithm>
#include <stdexcept>

namespace isw::sim {

thread_local ShardedEngine *ShardedEngine::tls_engine_ = nullptr;
thread_local DomainId ShardedEngine::tls_domain_ = kNoDomain;

ShardedEngine::ShardedEngine(const ShardPlan &plan)
    : lookahead_(plan.lookahead)
{
    if (plan.domains == 0)
        throw std::invalid_argument("ShardedEngine: need at least 1 domain");
    if (plan.domains > std::size_t{kNoDomain})
        throw std::invalid_argument("ShardedEngine: too many domains");
    if (plan.lookahead == 0)
        throw std::invalid_argument("ShardedEngine: lookahead must be > 0");
    domains_.resize(plan.domains);

    unsigned hw = std::thread::hardware_concurrency();
    if (hw == 0)
        hw = 1;
    const unsigned want = plan.threads != 0 ? plan.threads : hw;
    nthreads_ = static_cast<unsigned>(
        std::min<std::size_t>(want, plan.domains));
    if (nthreads_ == 0)
        nthreads_ = 1;
    pool_.reserve(nthreads_ - 1);
    for (unsigned i = 1; i < nthreads_; ++i)
        pool_.emplace_back(&ShardedEngine::workerMain, this, i);
}

ShardedEngine::~ShardedEngine()
{
    quit_.store(true, std::memory_order_release);
    gen_.fetch_add(1, std::memory_order_release);
    gen_.notify_all();
    for (auto &t : pool_)
        t.join();
}

EventId
ShardedEngine::schedule(DomainId d, TimeNs when, EventQueue::Callback cb)
{
    if (d >= domains_.size())
        throw std::out_of_range("ShardedEngine: no such domain");
    Domain &dst = domains_[d];
    if (tls_engine_ == this && tls_domain_ != kNoDomain) {
        if (d == tls_domain_)
            return dst.q.schedule(when, std::move(cb));
        // Cross-domain handoff. The conservative-window contract says
        // nothing scheduled during [T, end) may land in another domain
        // before `end`; a violation means the domain partition cut a
        // dependency shorter than the lookahead — a setup bug.
        if (when < window_end_.load(std::memory_order_relaxed))
            throw std::logic_error(
                "ShardedEngine: cross-domain event violates lookahead");
        Domain &src = domains_[tls_domain_];
        const std::uint64_t seq = src.send_seq++;
        cross_events_.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> g(dst.inbox_mu);
        dst.inbox.push_back(CrossEvent{when, tls_domain_, seq,
                                       std::move(cb)});
        return kInvalidEventId; // mailbox events have no queue key yet
    }
    // Setup / between windows: only the owning thread runs here.
    return dst.q.schedule(when, std::move(cb));
}

bool
ShardedEngine::cancelHere(EventId id)
{
    if (id == kInvalidEventId)
        return false;
    const DomainId d =
        tls_engine_ == this && tls_domain_ != kNoDomain ? tls_domain_ : 0;
    return domains_[d].q.cancel(id);
}

TimeNs
ShardedEngine::now() const
{
    if (tls_engine_ == this && tls_domain_ != kNoDomain)
        return domains_[tls_domain_].q.now();
    return committed_;
}

bool
ShardedEngine::empty() const
{
    return pending() == 0;
}

std::size_t
ShardedEngine::pending() const
{
    std::size_t n = 0;
    for (const auto &d : domains_) {
        n += d.q.pending();
        std::lock_guard<std::mutex> g(d.inbox_mu);
        n += d.inbox.size();
    }
    return n;
}

std::uint64_t
ShardedEngine::executed() const
{
    std::uint64_t n = 0;
    for (const auto &d : domains_)
        n += d.q.executed();
    return n;
}

void
ShardedEngine::drainInboxes()
{
    for (auto &dst : domains_) {
        // No window is running: inboxes are quiescent, but take the
        // lock anyway so TSan sees the ordering.
        std::vector<CrossEvent> batch;
        {
            std::lock_guard<std::mutex> g(dst.inbox_mu);
            batch.swap(dst.inbox);
        }
        if (batch.empty())
            continue;
        // Deterministic merge order: time, then source domain, then
        // the source's send sequence. Queue FIFO tie-breaking then
        // reproduces this order for equal timestamps, independent of
        // thread interleaving.
        std::sort(batch.begin(), batch.end(),
                  [](const CrossEvent &a, const CrossEvent &b) {
                      if (a.when != b.when)
                          return a.when < b.when;
                      if (a.src != b.src)
                          return a.src < b.src;
                      return a.seq < b.seq;
                  });
        for (auto &ce : batch)
            dst.q.schedule(ce.when, std::move(ce.cb));
    }
}

void
ShardedEngine::runOwnedDomains(unsigned worker, TimeNs end_exclusive)
{
    // Clear the thread's domain context even if a callback throws (a
    // lookahead violation must not leave stale context behind).
    struct ContextGuard
    {
        ~ContextGuard() { tls_domain_ = kNoDomain; }
    };
    tls_engine_ = this;
    ContextGuard guard;
    for (std::size_t d = worker; d < domains_.size(); d += nthreads_) {
        Domain &dom = domains_[d];
        if (dom.q.nextTime() >= end_exclusive)
            continue;
        tls_domain_ = static_cast<DomainId>(d);
        if (enter_)
            enter_(tls_domain_);
        dom.q.runWindow(end_exclusive);
        if (leave_)
            leave_(tls_domain_);
    }
}

void
ShardedEngine::workerMain(unsigned worker)
{
    std::uint64_t seen = 0;
    for (;;) {
        gen_.wait(seen, std::memory_order_acquire);
        seen = gen_.load(std::memory_order_acquire);
        if (quit_.load(std::memory_order_acquire))
            return;
        runOwnedDomains(worker, window_end_.load(std::memory_order_relaxed));
        done_.fetch_add(1, std::memory_order_release);
        done_.notify_one();
    }
}

std::size_t
ShardedEngine::runWindowParallel(TimeNs end_exclusive)
{
    const std::uint64_t before = executed();
    // schedule()'s lookahead check reads window_end_ on every thread
    // count, so it must be published even on the serial path.
    window_end_.store(end_exclusive, std::memory_order_relaxed);
    if (nthreads_ == 1) {
        runOwnedDomains(0, end_exclusive);
    } else {
        done_.store(0, std::memory_order_relaxed);
        gen_.fetch_add(1, std::memory_order_release);
        gen_.notify_all();
        runOwnedDomains(0, end_exclusive);
        unsigned finished;
        while ((finished = done_.load(std::memory_order_acquire)) !=
               nthreads_ - 1)
            done_.wait(finished, std::memory_order_acquire);
    }
    ++windows_;
    return static_cast<std::size_t>(executed() - before);
}

std::size_t
ShardedEngine::runLoop(TimeNs deadline, std::size_t max_events)
{
    std::size_t total = 0;
    for (;;) {
        drainInboxes();
        TimeNs t = EventQueue::kNoEvent;
        for (auto &d : domains_)
            t = std::min(t, d.q.nextTime());
        if (t == EventQueue::kNoEvent || t > deadline)
            break;
        TimeNs end = t + lookahead_;
        if (end < t)
            end = EventQueue::kNoEvent; // overflow clamp
        if (deadline != EventQueue::kNoEvent && end > deadline)
            end = deadline + 1; // deadline-inclusive, like runUntil()
        total += runWindowParallel(end);
        if (total >= max_events)
            break;
    }
    for (const auto &d : domains_)
        committed_ = std::max(committed_, d.q.now());
    return total;
}

std::size_t
ShardedEngine::runAll(std::size_t max_events)
{
    return runLoop(EventQueue::kNoEvent, max_events);
}

std::size_t
ShardedEngine::runUntil(TimeNs deadline)
{
    const std::size_t n = runLoop(deadline, SIZE_MAX);
    // The serial queue parks the clock at the deadline when it drains
    // early; mirror that so now() agrees.
    if (empty() && committed_ < deadline)
        committed_ = deadline;
    return n;
}

} // namespace isw::sim
