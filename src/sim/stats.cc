#include "sim/stats.hh"

#include <cmath>
#include <stdexcept>

namespace isw::sim {

void
Accumulator::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      bins_(bins, 0)
{
    if (!(hi > lo) || bins == 0)
        throw std::invalid_argument("Histogram: bad range or bin count");
}

void
Histogram::add(double x)
{
    ++count_;
    if (x < lo_) {
        ++underflow_;
    } else if (x >= hi_) {
        ++overflow_;
    } else {
        auto idx = static_cast<std::size_t>((x - lo_) / width_);
        idx = std::min(idx, bins_.size() - 1);
        ++bins_[idx];
    }
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    double cum = static_cast<double>(underflow_);
    if (target <= cum)
        return lo_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        const double next = cum + static_cast<double>(bins_[i]);
        if (target <= next && bins_[i] > 0) {
            const double frac = (target - cum) / static_cast<double>(bins_[i]);
            return lo_ + (static_cast<double>(i) + frac) * width_;
        }
        cum = next;
    }
    return hi_;
}

} // namespace isw::sim
