/**
 * @file
 * Simulation context: clock + event queue + RNG + stats + logger.
 *
 * Every simulated entity (link, switch, worker, ...) holds a reference
 * to one Simulation and interacts with the world exclusively through
 * it, which keeps runs deterministic and single-threaded.
 */

#ifndef ISW_SIM_SIMULATION_HH
#define ISW_SIM_SIMULATION_HH

#include <cstdint>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace isw::sim {

/**
 * Owner of all cross-cutting simulation state.
 *
 * Not copyable or movable: entities capture `Simulation&`.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : root_rng_(seed), next_stream_(0)
    {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    TimeNs now() const { return events_.now(); }
    EventQueue &events() { return events_; }
    StatsRegistry &stats() { return stats_; }
    Logger &logger() { return logger_; }

    /** Root RNG. Prefer forkRng() for per-entity streams. */
    Rng &rng() { return root_rng_; }

    /** Hand out the next independent RNG substream. */
    Rng forkRng() { return root_rng_.fork(next_stream_++); }

    /** Convenience: schedule relative to now. */
    EventId after(TimeNs delay, EventQueue::Callback cb)
    {
        return events_.scheduleAfter(delay, std::move(cb));
    }

    /** Convenience: schedule at absolute time. */
    EventId at(TimeNs when, EventQueue::Callback cb)
    {
        return events_.schedule(when, std::move(cb));
    }

    /** Run everything (bounded by @p max_events as a runaway guard). */
    std::size_t run(std::size_t max_events = SIZE_MAX)
    {
        return events_.runAll(max_events);
    }

    /** Run until simulated @p deadline. */
    std::size_t runUntil(TimeNs deadline) { return events_.runUntil(deadline); }

  private:
    EventQueue events_;
    StatsRegistry stats_;
    Logger logger_;
    Rng root_rng_;
    std::uint64_t next_stream_;
};

} // namespace isw::sim

#endif // ISW_SIM_SIMULATION_HH
