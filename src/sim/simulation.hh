/**
 * @file
 * Simulation context: clock + event queue + RNG + stats + logger.
 *
 * Every simulated entity (link, switch, worker, ...) holds a reference
 * to one Simulation and interacts with the world exclusively through
 * it, which keeps runs deterministic. A Simulation is single-threaded
 * by default; shard() swaps the serial queue for a domain-sharded
 * conservative-parallel engine (sim/shard.hh) while keeping the same
 * scheduling API.
 */

#ifndef ISW_SIM_SIMULATION_HH
#define ISW_SIM_SIMULATION_HH

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "sim/event_queue.hh"
#include "sim/log.hh"
#include "sim/random.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace isw::sim {

/**
 * Owner of all cross-cutting simulation state.
 *
 * Not copyable or movable: entities capture `Simulation&`.
 */
class Simulation
{
  public:
    explicit Simulation(std::uint64_t seed = 1)
        : root_rng_(seed), next_stream_(0)
    {}

    Simulation(const Simulation &) = delete;
    Simulation &operator=(const Simulation &) = delete;

    TimeNs now() const
    {
        return engine_ ? engine_->now() : events_.now();
    }

    /**
     * The serial event queue. Valid only while un-sharded; sharded
     * simulations must go through at()/after()/cancelEvent() and the
     * aggregate counters below.
     */
    EventQueue &events() { return events_; }
    StatsRegistry &stats() { return stats_; }
    Logger &logger() { return logger_; }

    /** Root RNG. Prefer forkRng() for per-entity streams. */
    Rng &rng() { return root_rng_; }

    /** Hand out the next independent RNG substream. */
    Rng forkRng() { return root_rng_.fork(next_stream_++); }

    /**
     * Swap the serial queue for a domain-sharded parallel engine.
     * Must be called before any event is scheduled (typically right
     * after topology construction, which schedules nothing). Entities
     * are assigned to domains via net::Node::setDomain(); events
     * scheduled outside any domain context land in domain 0.
     */
    void shard(const ShardPlan &plan)
    {
        if (engine_)
            throw std::logic_error("Simulation: already sharded");
        if (!events_.empty() || events_.executed() != 0)
            throw std::logic_error(
                "Simulation: shard() before scheduling events");
        engine_ = std::make_unique<ShardedEngine>(plan);
    }

    /** Non-null once shard() was called. */
    ShardedEngine *engine() { return engine_.get(); }
    bool sharded() const { return engine_ != nullptr; }

    /** Convenience: schedule relative to now. */
    EventId after(TimeNs delay, EventQueue::Callback cb)
    {
        if (engine_)
            return engine_->schedule(engine_->hereOr0(),
                                     engine_->now() + delay, std::move(cb));
        return events_.scheduleAfter(delay, std::move(cb));
    }

    /** Convenience: schedule at absolute time. */
    EventId at(TimeNs when, EventQueue::Callback cb)
    {
        if (engine_)
            return engine_->schedule(engine_->hereOr0(), when,
                                     std::move(cb));
        return events_.schedule(when, std::move(cb));
    }

    /**
     * Schedule at absolute time into a specific shard domain. On an
     * un-sharded Simulation the domain is ignored (one queue).
     */
    EventId atInDomain(DomainId d, TimeNs when, EventQueue::Callback cb)
    {
        if (engine_)
            return engine_->schedule(d, when, std::move(cb));
        return events_.schedule(when, std::move(cb));
    }

    /**
     * Cancel an event by handle. Sharded: only valid from the domain
     * that scheduled it (handles are queue-local, so a foreign handle
     * silently hits an unrelated event); kInvalidEventId is always a
     * harmless no-op. Callers that may cancel from another domain —
     * RetxTimer teardown, deferred acks — must record the scheduling
     * domain (hereDomain() at schedule time) and use cancelEventIn().
     */
    bool cancelEvent(EventId id)
    {
        if (engine_)
            return engine_->cancelHere(id);
        return events_.cancel(id);
    }

    /**
     * Cancel an event known to have been scheduled in domain @p d.
     * Safe between windows and from inside domain d; a cross-domain
     * cancel mid-window throws std::logic_error instead of silently
     * corrupting another queue. Un-sharded: plain cancel.
     */
    bool cancelEventIn(DomainId d, EventId id)
    {
        if (engine_)
            return engine_->cancelIn(d, id);
        return events_.cancel(id);
    }

    /** Domain events scheduled by this thread land in: the executing
     *  domain during a sharded window, 0 otherwise. */
    DomainId hereDomain() const
    {
        return engine_ ? engine_->hereOr0() : 0;
    }

    /** Run everything (bounded by @p max_events as a runaway guard). */
    std::size_t run(std::size_t max_events = SIZE_MAX)
    {
        return engine_ ? engine_->runAll(max_events)
                       : events_.runAll(max_events);
    }

    /** Run until simulated @p deadline. */
    std::size_t runUntil(TimeNs deadline)
    {
        return engine_ ? engine_->runUntil(deadline)
                       : events_.runUntil(deadline);
    }

    /** Events executed so far (aggregated across domains). */
    std::uint64_t eventsExecuted() const
    {
        return engine_ ? engine_->executed() : events_.executed();
    }

    /** Pending events (aggregated across domains + mailboxes). */
    std::size_t pendingEvents() const
    {
        return engine_ ? engine_->pending() : events_.pending();
    }

    /** True when no runnable events remain anywhere. */
    bool queueEmpty() const
    {
        return engine_ ? engine_->empty() : events_.empty();
    }

  private:
    EventQueue events_;
    std::unique_ptr<ShardedEngine> engine_;
    StatsRegistry stats_;
    Logger logger_;
    Rng root_rng_;
    std::uint64_t next_stream_;
};

} // namespace isw::sim

#endif // ISW_SIM_SIMULATION_HH
