/**
 * @file
 * Deterministic random-number generation for simulations.
 *
 * Implements xoshiro256++ seeded through SplitMix64. Each simulation
 * entity should fork() its own substream so that adding entities does
 * not perturb the draws seen by existing ones.
 */

#ifndef ISW_SIM_RANDOM_HH
#define ISW_SIM_RANDOM_HH

#include <array>
#include <cstdint>

namespace isw::sim {

/**
 * xoshiro256++ pseudo-random generator with substream forking.
 *
 * Satisfies UniformRandomBitGenerator so it can drive <random>
 * distributions, but the member helpers below are preferred: they are
 * reproducible across standard-library implementations.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    result_type operator()() { return next(); }

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal draw (Box-Muller, cached second value). */
    double normal();

    /** Normal draw with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Lognormal draw parameterized by the mean of the resulting
     * distribution and a coefficient of variation. Handy for
     * service-time jitter: lognormalMeanCv(m, 0) == m exactly.
     */
    double lognormalMeanCv(double mean, double cv);

    /** Bernoulli draw with probability @p p of returning true. */
    bool bernoulli(double p);

    /**
     * Derive an independent substream. Deterministic: fork(i) on equal
     * parent states yields equal children for equal @p stream_id.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t next();

    std::array<std::uint64_t, 4> s_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace isw::sim

#endif // ISW_SIM_RANDOM_HH
