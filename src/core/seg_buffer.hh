/**
 * @file
 * Per-segment accumulation state of the in-switch accelerator
 * (the Buffers + Seg Counters of paper Figure 7).
 */

#ifndef ISW_CORE_SEG_BUFFER_HH
#define ISW_CORE_SEG_BUFFER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "net/packet.hh"

namespace isw::core {

/** Accumulated contributions toward one segment of the gradient. */
struct SegState
{
    std::vector<float> acc;      ///< element-wise running sum
    std::uint32_t count = 0;     ///< contributions received so far
    std::uint32_t wire_floats = 0; ///< wire slots (max over contributions)
    /** Sources folded in (used only under contributor dedupe). */
    std::unordered_set<std::uint32_t> contributors;
};

/**
 * Pool of segment buffers keyed by Seg number.
 *
 * The hardware holds a fixed BRAM region indexed by segment; we model
 * the same semantics with a flat slab of recycled SegState slots plus
 * an open-addressing seg → slot index (linear probing, fibonacci
 * hashing, backward-shift deletion), so the steady state allocates
 * nothing and the accumulate loop runs over contiguous restrict-
 * qualified floats the compiler can vectorize (DESIGN.md §9).
 * Element-wise adds vectorize bit-identically, so results are
 * unchanged from the scalar unordered_map version.
 *
 * A segment "completes" when its counter reaches the aggregation
 * threshold H, at which point the caller harvests the sum and the
 * buffer is cleared (the paper's write-back-zeros step).
 */
class SegBufferPool
{
  public:
    /**
     * Fold one contribution into segment @p seg.
     *
     * @param src Contributor identity (IPv4 bits). When @p dedupe is
     *        true, a second contribution from the same source to the
     *        same in-progress segment is ignored — this makes the
     *        sync-mode loss-recovery retransmissions idempotent.
     * @return true if this contribution made the segment reach @p h.
     */
    bool accumulate(const net::ChunkPayload &chunk, std::uint32_t h,
                    std::uint32_t src = 0, bool dedupe = false);

    /** Number of segments currently holding partial sums. */
    std::size_t activeSegments() const { return active_; }

    /** True if segment @p seg holds any contributions. */
    bool has(std::uint64_t seg) const { return findSlot(seg) != kNoSlot; }

    /** Contribution count for @p seg (0 if absent). */
    std::uint32_t count(std::uint64_t seg) const;

    /**
     * Remove and return the state of @p seg (complete or partial).
     * Throws std::out_of_range if the segment is absent.
     */
    SegState harvest(std::uint64_t seg);

    /** Drop all partial state (control-plane Reset). */
    void clear();

    /** Peak number of simultaneously active segments (BRAM pressure). */
    std::size_t peakActiveSegments() const { return peak_; }

  private:
    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    struct Bucket
    {
        std::uint64_t seg = 0;
        std::uint32_t slot_plus1 = 0; ///< 0 = empty
    };

    static std::size_t
    hashSeg(std::uint64_t seg)
    {
        return static_cast<std::size_t>(
            (seg + 1) * 0x9E3779B97F4A7C15ULL >> 32);
    }

    /** Slab slot for @p seg, or kNoSlot. */
    std::uint32_t findSlot(std::uint64_t seg) const;
    /** Slot for @p seg, inserting a recycled slab entry if absent. */
    std::uint32_t findOrInsert(std::uint64_t seg);
    /** Unlink @p seg from the index and park its slot for reuse. */
    void eraseIndex(std::uint64_t seg);
    void grow();

    std::vector<Bucket> buckets_; ///< power-of-two open-addressed index
    std::size_t mask_ = 0;
    std::vector<SegState> slab_;  ///< slot storage, recycled via free_
    std::vector<std::uint32_t> free_;
    std::size_t active_ = 0;
    std::size_t peak_ = 0;
};

} // namespace isw::core

#endif // ISW_CORE_SEG_BUFFER_HH
