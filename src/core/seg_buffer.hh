/**
 * @file
 * Per-segment accumulation state of the in-switch accelerator
 * (the Buffers + Seg Counters of paper Figure 7).
 */

#ifndef ISW_CORE_SEG_BUFFER_HH
#define ISW_CORE_SEG_BUFFER_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/protocol.hh"
#include "net/packet.hh"

namespace isw::core {

/** Accumulated contributions toward one segment of the gradient. */
struct SegState
{
    /**
     * Element-wise running sum in the wire's word format: raw float32
     * adds for kFp32, packed half-pair adds for kFp16, saturating
     * int32 adds for kInt32 (bit-cast into the float storage) — the
     * int path is exact and order-independent, which is what a real
     * integer-ALU switch pipeline computes (DESIGN.md §14).
     */
    std::vector<float> acc;
    std::uint32_t count = 0;     ///< contributions received so far
    std::uint32_t wire_floats = 0; ///< wire slots (max over contributions)
    /** Word format + shared exponent, latched from the first
     *  contribution; later mismatched exponents are shift-rescaled. */
    net::Precision prec = net::Precision::kFp32;
    std::int8_t qexp = 0;
    /** Sources folded in (used only under contributor dedupe). */
    std::unordered_set<std::uint32_t> contributors;
};

/** What the slot pool did with one offered contribution. */
enum class SlotOutcome : std::uint8_t {
    kAccepted,   ///< folded in, segment still below threshold
    kCompleted,  ///< folded in and the segment reached H
    kDuplicate,  ///< same source already contributed (dedupe)
    kStale,      ///< stale packet (old version / already-completed seg)
    kBusy,       ///< slot still aggregating an older segment (Nack)
    kUnadmitted, ///< job has no slot partition on this switch
};

/** Per-job slot-pool counters (fairness / contention observability). */
struct SlotPoolStats
{
    std::uint64_t accepted = 0;    ///< contributions folded in
    std::uint64_t completed = 0;   ///< segments that reached H
    std::uint64_t duplicates = 0;  ///< dedupe rejections
    std::uint64_t stale_drops = 0; ///< stale-version packets dropped
    std::uint64_t busy_drops = 0;  ///< busy-slot rejections (Nacked)
    std::uint64_t unadmitted = 0;  ///< packets from unadmitted jobs
    std::uint64_t reclaimed = 0;   ///< partials dropped on member Leave
    std::uint64_t overflow_clamps = 0; ///< int32 lanes saturated in adds
    std::uint64_t exp_rescales = 0; ///< exponent-mismatch contributions
};

/**
 * Pool of segment buffers keyed by Seg word (packSegWord(seg, job)).
 *
 * Two operating modes (DESIGN.md §11):
 *
 *  - Unbounded (capacity 0, the default): the paper's dedicated-switch
 *    model. A flat slab of recycled SegState slots plus an
 *    open-addressing key → slot index (linear probing, fibonacci
 *    hashing, backward-shift deletion): the steady state allocates
 *    nothing and the accumulate loop runs over contiguous restrict-
 *    qualified floats the compiler can vectorize (DESIGN.md §9).
 *
 *  - Bounded (capacity N > 0): a SwitchML-style fixed pool of N
 *    aggregator slots, optionally partitioned per job. A segment maps
 *    direct-mapped to slot `base + seg % quota`; tensors larger than
 *    the pool recirculate through slot reuse, paced by the sender's
 *    streaming window. Conflicts resolve deterministically:
 *      - same (job, seg, ver): accumulate (dedupe as configured);
 *      - same (job, seg), other ver, or seg below the slot's completed
 *        floor: stale — dropped and counted;
 *      - an older in-flight segment still holds the slot: busy — the
 *        contribution is dropped, counted, and (via the accelerator)
 *        Nacked so the sender backs off and retries.
 *
 * Element-wise adds vectorize bit-identically, so results are
 * unchanged from the scalar unordered_map version.
 *
 * A segment "completes" when its counter reaches the aggregation
 * threshold H, at which point the caller harvests the sum and the
 * buffer is cleared (the paper's write-back-zeros step).
 */
class SegBufferPool
{
  public:
    /**
     * Bound the pool to @p slots aggregator slots (0 = unbounded).
     * Drops all state; call before traffic flows.
     */
    void setCapacity(std::size_t slots);

    /** Configured slot count (0 = unbounded legacy mode). */
    std::size_t capacity() const { return capacity_; }
    bool bounded() const { return capacity_ > 0; }

    /**
     * Reserve slots [base, base + quota) for @p job. Once any
     * partition exists the pool runs admission control: traffic from a
     * job without a partition is dropped and counted. Bounded mode
     * only.
     */
    void setJobPartition(std::uint8_t job, std::uint32_t base,
                         std::uint32_t quota);

    /** Has admission control been turned on via setJobPartition? */
    bool partitioned() const { return partitioned_; }

    /** Slot quota for @p job (capacity when unpartitioned). */
    std::uint32_t quotaFor(std::uint8_t job) const;

    /**
     * Fold one contribution into its segment buffer / aggregator slot.
     *
     * @param src Contributor identity (IPv4 bits). When @p dedupe is
     *        true, a second contribution from the same source to the
     *        same in-progress segment is ignored — this makes the
     *        sync-mode loss-recovery retransmissions idempotent.
     *        Dedupe also marks the job's traffic as *ordered*
     *        (monotonically increasing seg indices), which is what
     *        arms the bounded mode's stale floor.
     */
    SlotOutcome offer(const net::ChunkPayload &chunk, std::uint32_t h,
                      std::uint32_t src = 0, bool dedupe = false);

    /** Legacy wrapper: true iff the contribution reached H. */
    bool accumulate(const net::ChunkPayload &chunk, std::uint32_t h,
                    std::uint32_t src = 0, bool dedupe = false)
    {
        return offer(chunk, h, src, dedupe) == SlotOutcome::kCompleted;
    }

    /** Number of segments currently holding partial sums. */
    std::size_t activeSegments() const { return active_; }

    /** True if Seg word @p key holds any contributions. */
    bool has(std::uint64_t key) const;

    /** Contribution count for Seg word @p key (0 if absent). */
    std::uint32_t count(std::uint64_t key) const;

    /**
     * Remove and return the state of Seg word @p key (complete or
     * partial). @p completed distinguishes a finished segment (the
     * slot's stale floor advances past it) from a recovery drop whose
     * segment will be retransmitted and must stay admissible.
     * Throws std::out_of_range if the segment is absent.
     */
    SegState harvest(std::uint64_t key, bool completed = true);

    /**
     * Read-only view of Seg word @p key's partial state, or nullptr.
     * The HA primary snapshots replication frames from this; the
     * pointer is invalidated by any mutating call. Unbounded mode only
     * (bounded pools always return nullptr — HA requires unbounded).
     */
    const SegState *peek(std::uint64_t key) const;

    /**
     * Install a replicated snapshot of Seg word @p key, replacing any
     * existing partial wholesale (replication frames carry the full
     * accumulator and contributor set, so replace semantics make
     * re-applied or reordered frames idempotent). Unbounded mode only;
     * throws std::logic_error on a bounded pool — HA backups run the
     * paper's dedicated-switch model.
     */
    void installReplica(std::uint64_t key, SegState st);

    /** Drop all partial state (control-plane Reset). */
    void clear();

    /**
     * Drop every in-flight partial containing a contribution from
     * @p src (membership Leave: a crashed worker's contributions would
     * otherwise pin their slots until round end, inflating the peak-
     * occupancy counter). Only meaningful for deduped (sync) traffic —
     * unordered jobs record no contributor identity. Returns the
     * number of slots reclaimed.
     */
    std::size_t reclaimFrom(std::uint32_t src);

    /** Peak number of simultaneously active segments (BRAM pressure). */
    std::size_t peakActiveSegments() const { return peak_; }

    /** Per-job counters (job ids not seen yet read as zeros). */
    SlotPoolStats jobStats(std::uint8_t job) const;

    /** Sum of stale + busy + unadmitted + reclaimed over all jobs. */
    std::uint64_t contentionEvents() const;

    /** Aggregate counters over all jobs. */
    SlotPoolStats totals() const;

  private:
    static constexpr std::uint32_t kNoSlot = UINT32_MAX;

    struct Bucket
    {
        std::uint64_t seg = 0;
        std::uint32_t slot_plus1 = 0; ///< 0 = empty
    };

    /** One aggregator slot of the bounded pool. */
    struct Slot
    {
        bool used = false;
        bool ordered = false; ///< claimed by deduped (ordered) traffic
        std::uint8_t job = 0;
        std::uint8_t ver = 0;
        std::uint64_t seg = 0;   ///< occupant's segment index
        std::uint64_t floor = 0; ///< smallest admissible seg (ordered)
        SegState st;
    };

    struct Partition
    {
        std::uint32_t base = 0;
        std::uint32_t quota = 0;
        bool set = false;
    };

    static std::size_t
    hashSeg(std::uint64_t seg)
    {
        return static_cast<std::size_t>(
            (seg + 1) * 0x9E3779B97F4A7C15ULL >> 32);
    }

    /** Fold @p chunk into @p st per its wire precision;
     *  Accepted/Completed/Duplicate. Member (not static) because the
     *  int32 path books saturation/rescale counters per job. */
    SlotOutcome foldInto(SegState &st, const net::ChunkPayload &chunk,
                         std::uint32_t h, std::uint32_t src, bool dedupe);

    SlotOutcome offerUnbounded(const net::ChunkPayload &chunk,
                               std::uint32_t h, std::uint32_t src,
                               bool dedupe);
    SlotOutcome offerBounded(const net::ChunkPayload &chunk, std::uint32_t h,
                             std::uint32_t src, bool dedupe);

    /** Bounded-mode slot index for (job, seg), or kNoSlot. */
    std::uint32_t boundedSlot(std::uint8_t job, std::uint64_t seg) const;

    SlotPoolStats &statsFor(std::uint8_t job);

    /** Slab slot for @p seg, or kNoSlot. */
    std::uint32_t findSlot(std::uint64_t seg) const;
    /** Slot for @p seg, inserting a recycled slab entry if absent. */
    std::uint32_t findOrInsert(std::uint64_t seg);
    /** Unlink @p seg from the index and park its slot for reuse. */
    void eraseIndex(std::uint64_t seg);
    void grow();

    std::vector<Bucket> buckets_; ///< power-of-two open-addressed index
    std::size_t mask_ = 0;
    std::vector<SegState> slab_;  ///< slot storage, recycled via free_
    std::vector<std::uint32_t> free_;
    std::size_t active_ = 0;
    std::size_t peak_ = 0;

    std::size_t capacity_ = 0;  ///< 0 = unbounded
    std::vector<Slot> slots_;   ///< bounded-mode aggregator slots
    std::vector<Partition> partitions_;
    bool partitioned_ = false;
    std::vector<SlotPoolStats> stats_; ///< indexed by job id
};

} // namespace isw::core

#endif // ISW_CORE_SEG_BUFFER_HH
