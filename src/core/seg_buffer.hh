/**
 * @file
 * Per-segment accumulation state of the in-switch accelerator
 * (the Buffers + Seg Counters of paper Figure 7).
 */

#ifndef ISW_CORE_SEG_BUFFER_HH
#define ISW_CORE_SEG_BUFFER_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/packet.hh"

namespace isw::core {

/** Accumulated contributions toward one segment of the gradient. */
struct SegState
{
    std::vector<float> acc;      ///< element-wise running sum
    std::uint32_t count = 0;     ///< contributions received so far
    std::uint32_t wire_floats = 0; ///< wire slots (max over contributions)
    /** Sources folded in (used only under contributor dedupe). */
    std::unordered_set<std::uint32_t> contributors;
};

/**
 * Pool of segment buffers keyed by Seg number.
 *
 * The hardware holds a fixed BRAM region indexed by segment; we model
 * the same semantics with a hash map so arbitrarily large models work.
 * A segment "completes" when its counter reaches the aggregation
 * threshold H, at which point the caller harvests the sum and the
 * buffer is cleared (the paper's write-back-zeros step).
 */
class SegBufferPool
{
  public:
    /**
     * Fold one contribution into segment @p seg.
     *
     * @param src Contributor identity (IPv4 bits). When @p dedupe is
     *        true, a second contribution from the same source to the
     *        same in-progress segment is ignored — this makes the
     *        sync-mode loss-recovery retransmissions idempotent.
     * @return true if this contribution made the segment reach @p h.
     */
    bool accumulate(const net::ChunkPayload &chunk, std::uint32_t h,
                    std::uint32_t src = 0, bool dedupe = false);

    /** Number of segments currently holding partial sums. */
    std::size_t activeSegments() const { return segs_.size(); }

    /** True if segment @p seg holds any contributions. */
    bool has(std::uint64_t seg) const { return segs_.count(seg) != 0; }

    /** Contribution count for @p seg (0 if absent). */
    std::uint32_t count(std::uint64_t seg) const;

    /**
     * Remove and return the state of @p seg (complete or partial).
     * Throws std::out_of_range if the segment is absent.
     */
    SegState harvest(std::uint64_t seg);

    /** Drop all partial state (control-plane Reset). */
    void clear() { segs_.clear(); }

    /** Peak number of simultaneously active segments (BRAM pressure). */
    std::size_t peakActiveSegments() const { return peak_; }

  private:
    std::unordered_map<std::uint64_t, SegState> segs_;
    std::size_t peak_ = 0;
};

} // namespace isw::core

#endif // ISW_CORE_SEG_BUFFER_HH
