#include "core/accelerator.hh"

#include <cmath>
#include <stdexcept>

namespace isw::core {

Accelerator::Accelerator(sim::Simulation &s, AcceleratorConfig cfg)
    : sim_(s), cfg_(cfg)
{
    if (cfg_.clock_hz <= 0.0 || cfg_.burst_bytes == 0)
        throw std::invalid_argument("Accelerator: bad config");
}

sim::TimeNs
Accelerator::procTime(std::size_t wire_bytes) const
{
    const std::size_t bursts =
        (wire_bytes + cfg_.burst_bytes - 1) / cfg_.burst_bytes;
    const double ns = static_cast<double>(bursts) * 1e9 / cfg_.clock_hz;
    return static_cast<sim::TimeNs>(std::llround(ns));
}

void
Accelerator::ingest(const net::ChunkPayload &chunk, std::uint32_t src)
{
    ++ingested_;
    const sim::TimeNs now = sim_.now();
    const std::size_t bytes = 8 + std::size_t{chunk.wire_floats} * 4;
    const sim::TimeNs start = std::max(now, busy_until_);
    const sim::TimeNs done = start + procTime(bytes);
    busy_until_ = done;

    // Logic fires when the packet's last burst clears the adders.
    sim_.at(done + cfg_.fixed_latency, [this, chunk, src] {
        if (pool_.accumulate(chunk, threshold_, src, dedupe_))
            emitSeg(chunk.seg);
    });
}

void
Accelerator::ingest(const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    ++ingested_;
    const sim::TimeNs now = sim_.now();
    const std::size_t bytes = 8 + std::size_t{chunk->wire_floats} * 4;
    const sim::TimeNs start = std::max(now, busy_until_);
    const sim::TimeNs done = start + procTime(bytes);
    busy_until_ = done;

    // Same timing as the copying overload; the closure pins the packet
    // (16 bytes, fits the event queue's inline buffer) instead of
    // copying the chunk's float vector.
    sim_.at(done + cfg_.fixed_latency, [this, pkt] {
        const auto &c = std::get<net::ChunkPayload>(pkt->payload);
        if (pool_.accumulate(c, threshold_, pkt->ip.src.bits(), dedupe_))
            emitSeg(c.seg);
    });
}

void
Accelerator::forceEmit(std::uint64_t seg)
{
    if (!pool_.has(seg))
        return;
    emitSeg(seg);
}

void
Accelerator::emitSeg(std::uint64_t seg)
{
    SegState sum = pool_.harvest(seg);
    ++emitted_;
    if (emit_)
        emit_(seg, std::move(sum));
}

} // namespace isw::core
