#include "core/accelerator.hh"

#include <cmath>
#include <stdexcept>

namespace isw::core {

Accelerator::Accelerator(sim::Simulation &s, AcceleratorConfig cfg)
    : sim_(s), cfg_(cfg)
{
    if (cfg_.clock_hz <= 0.0 || cfg_.burst_bytes == 0)
        throw std::invalid_argument("Accelerator: bad config");
    pool_.setCapacity(cfg_.num_slots);
}

sim::TimeNs
Accelerator::procTime(std::size_t wire_bytes) const
{
    const std::size_t bursts =
        (wire_bytes + cfg_.burst_bytes - 1) / cfg_.burst_bytes;
    const double ns = static_cast<double>(bursts) * 1e9 / cfg_.clock_hz;
    return static_cast<sim::TimeNs>(std::llround(ns));
}

void
Accelerator::setJobThreshold(std::uint8_t job, std::uint32_t h)
{
    if (job == 0) {
        threshold_ = h; // keep job-0 visible through threshold()
        return;
    }
    if (job_knobs_.size() <= job)
        job_knobs_.resize(std::size_t{job} + 1);
    job_knobs_[job].has_threshold = true;
    job_knobs_[job].threshold = h;
}

std::uint32_t
Accelerator::thresholdFor(std::uint8_t job) const
{
    if (job < job_knobs_.size() && job_knobs_[job].has_threshold)
        return job_knobs_[job].threshold;
    return threshold_;
}

void
Accelerator::setJobDedupe(std::uint8_t job, bool on)
{
    if (job == 0) {
        dedupe_ = on;
        return;
    }
    if (job_knobs_.size() <= job)
        job_knobs_.resize(std::size_t{job} + 1);
    job_knobs_[job].has_dedupe = true;
    job_knobs_[job].dedupe = on;
}

bool
Accelerator::dedupeFor(std::uint8_t job) const
{
    if (job < job_knobs_.size() && job_knobs_[job].has_dedupe)
        return job_knobs_[job].dedupe;
    return dedupe_;
}

void
Accelerator::afterAccumulate(const net::ChunkPayload &chunk,
                             std::uint32_t src)
{
    const SlotOutcome out = pool_.offer(chunk, thresholdFor(chunk.job), src,
                                        dedupeFor(chunk.job));
    if (out == SlotOutcome::kCompleted)
        emitSeg(packSegWord(chunk.seg, chunk.job));
    else if (out == SlotOutcome::kAccepted && accept_)
        accept_(packSegWord(chunk.seg, chunk.job));
    else if (out == SlotOutcome::kBusy && nack_)
        nack_(chunk.job, chunk.seg, src);
}

void
Accelerator::ingest(const net::ChunkPayload &chunk, std::uint32_t src)
{
    ++ingested_;
    const sim::TimeNs now = sim_.now();
    const std::size_t bytes = 8 + std::size_t{chunk.wire_floats} * 4;
    const sim::TimeNs start = std::max(now, busy_until_);
    const sim::TimeNs done = start + procTime(bytes);
    busy_until_ = done;

    // Logic fires when the packet's last burst clears the adders.
    sim_.at(done + cfg_.fixed_latency,
            [this, chunk, src] { afterAccumulate(chunk, src); });
}

void
Accelerator::ingest(const net::PacketPtr &pkt)
{
    const auto *chunk = std::get_if<net::ChunkPayload>(&pkt->payload);
    if (chunk == nullptr)
        return;
    ++ingested_;
    const sim::TimeNs now = sim_.now();
    const std::size_t bytes = 8 + std::size_t{chunk->wire_floats} * 4;
    const sim::TimeNs start = std::max(now, busy_until_);
    const sim::TimeNs done = start + procTime(bytes);
    busy_until_ = done;

    // Same timing as the copying overload; the closure pins the packet
    // (16 bytes, fits the event queue's inline buffer) instead of
    // copying the chunk's float vector.
    sim_.at(done + cfg_.fixed_latency, [this, pkt] {
        const auto &c = std::get<net::ChunkPayload>(pkt->payload);
        afterAccumulate(c, pkt->ip.src.bits());
    });
}

void
Accelerator::forceEmit(std::uint64_t key)
{
    if (!pool_.has(key))
        return;
    emitSeg(key);
}

void
Accelerator::emitSeg(std::uint64_t key)
{
    SegState sum = pool_.harvest(key);
    ++emitted_;
    if (emit_)
        emit_(key, std::move(sum));
}

} // namespace isw::core
