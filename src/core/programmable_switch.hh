/**
 * @file
 * The iSwitch programmable switch (paper Figure 6): a regular
 * EthSwitch whose input arbiter diverts ToS-tagged packets to the
 * aggregation accelerator and the control plane, leaving normal
 * traffic untouched.
 *
 * Hierarchical aggregation (paper §3.4): a switch configured with a
 * parent forwards each locally completed segment upward as a fresh
 * contribution; the root broadcasts completed segments downward as
 * result packets, which lower switches fan out to their members.
 */

#ifndef ISW_CORE_PROGRAMMABLE_SWITCH_HH
#define ISW_CORE_PROGRAMMABLE_SWITCH_HH

#include <unordered_map>

#include "core/accelerator.hh"
#include "core/control.hh"
#include "net/switch.hh"

namespace isw::core {

/** Configuration of a programmable switch. */
struct ProgrammableSwitchConfig
{
    net::SwitchConfig base;           ///< regular data-plane parameters
    AcceleratorConfig accel;          ///< aggregation datapath
    net::Ipv4Addr ip;                 ///< switch's own address
    std::uint16_t udp_port = 9000;    ///< iSwitch service port
    net::Ipv4Addr parent;             ///< upstream switch (unset = root)
    std::uint16_t parent_port = 9000; ///< upstream service port
    /**
     * Result-cache retention window in segment indices. Synchronous
     * training stripes the round number into the Seg field, so indices
     * grow without bound; entries older than the highest-seen index
     * minus this window are evicted (models finite switch SRAM).
     */
    std::uint64_t cache_window = 1ULL << 13;
};

/** An EthSwitch extended with the iSwitch accelerator. */
class ProgrammableSwitch : public net::EthSwitch
{
  public:
    ProgrammableSwitch(sim::Simulation &s, std::string name,
                       std::size_t num_ports,
                       ProgrammableSwitchConfig cfg = {});

    Accelerator &accelerator() { return accel_; }
    ControlPlane &controlPlane() { return ctrl_; }
    net::Ipv4Addr ip() const { return cfg_.ip; }
    bool isRoot() const { return cfg_.parent.isUnspecified(); }

    /**
     * Register a member without the Join handshake (used by tests and
     * by harness builders that wire clusters programmatically).
     * @p job tags the member's training job for multi-job sharing.
     */
    void adminJoin(net::Ipv4Addr ip, std::uint16_t udp_port, MemberType type,
                   std::uint8_t job = 0);

    /**
     * Pin the aggregation threshold H. Without this call H tracks the
     * membership count (the paper's default: H = number of children).
     */
    void setManualThreshold(std::uint32_t h);

    /** Completed results re-sendable via Help, keyed by segment. */
    std::size_t cachedResults() const { return result_cache_.size(); }

  protected:
    bool interceptIngress(const net::PacketPtr &pkt,
                          std::size_t in_port) override;

  private:
    /** A completed segment kept for Help-based recovery. */
    struct CachedResult
    {
        std::vector<float> values;
        std::uint32_t wire_floats = 0;
        std::uint32_t count = 0;
        std::uint64_t seq = 0; ///< how many completions this seg has had
        /** Wire word format of `values` (quantized datapaths). */
        net::Precision prec = net::Precision::kFp32;
        std::int8_t qexp = 0;
    };

    void onEmit(std::uint64_t key, SegState sum);
    void onControl(const net::PacketPtr &pkt);
    void onResult(const net::PacketPtr &pkt);

    /** Fan a completed segment out to its job's members (result plane).
     *  @p key is the packed Seg word. */
    void broadcastResult(std::uint64_t key, const CachedResult &res);

    /** Send one result packet to a member. */
    void sendResultTo(const Member &m, std::uint64_t key,
                      const CachedResult &res);

    void sendControlTo(const Member &m, net::ControlPayload msg);

    /** Nack a contribution that bounced off a busy aggregator slot. */
    void sendNack(std::uint8_t job, std::uint64_t seg, std::uint32_t src);

    /** Recompute auto thresholds from membership (per job). */
    void refreshThreshold();

    /** Evict cache entries that fell out of the retention window. */
    void pruneCache(std::uint64_t latest_key);

    ProgrammableSwitchConfig cfg_;
    Accelerator accel_;
    ControlPlane ctrl_;
    bool manual_threshold_ = false;
    net::MacAddr mac_;
    /** Caches are keyed by packed Seg word (bare seg for job 0). */
    std::unordered_map<std::uint64_t, CachedResult> result_cache_;
    std::unordered_map<std::uint64_t, std::uint64_t> seg_completions_;
    /** Highest segment index seen, per job (cache eviction floors must
     *  not let one job's progress evict another job's entries). */
    std::unordered_map<std::uint8_t, std::uint64_t> max_seg_seen_;
    /**
     * Registry counters resolved at construction so the hot path never
     * concatenates names or mutates the registry map — required once
     * switches execute on shard-domain threads (sim/shard.hh).
     */
    struct HotCounters
    {
        sim::Counter &data_in;
        sim::Counter &ctrl_in;
        sim::Counter &segs_done;
        sim::Counter &nacks;
        sim::Counter &reclaimed;
    };
    HotCounters counters_;
};

} // namespace isw::core

#endif // ISW_CORE_PROGRAMMABLE_SWITCH_HH
