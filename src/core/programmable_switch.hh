/**
 * @file
 * The iSwitch programmable switch (paper Figure 6): a regular
 * EthSwitch whose input arbiter diverts ToS-tagged packets to the
 * aggregation accelerator and the control plane, leaving normal
 * traffic untouched.
 *
 * Hierarchical aggregation (paper §3.4): a switch configured with a
 * parent forwards each locally completed segment upward as a fresh
 * contribution; the root broadcasts completed segments downward as
 * result packets, which lower switches fan out to their members.
 */

#ifndef ISW_CORE_PROGRAMMABLE_SWITCH_HH
#define ISW_CORE_PROGRAMMABLE_SWITCH_HH

#include <memory>
#include <unordered_map>

#include "core/accelerator.hh"
#include "core/control.hh"
#include "core/replication.hh"
#include "net/switch.hh"

namespace isw::core {

/** Configuration of a programmable switch. */
struct ProgrammableSwitchConfig
{
    net::SwitchConfig base;           ///< regular data-plane parameters
    AcceleratorConfig accel;          ///< aggregation datapath
    net::Ipv4Addr ip;                 ///< switch's own address
    std::uint16_t udp_port = 9000;    ///< iSwitch service port
    net::Ipv4Addr parent;             ///< upstream switch (unset = root)
    std::uint16_t parent_port = 9000; ///< upstream service port
    /**
     * Result-cache retention window in segment indices. Synchronous
     * training stripes the round number into the Seg field, so indices
     * grow without bound; entries older than the highest-seen index
     * minus this window are evicted (models finite switch SRAM).
     */
    std::uint64_t cache_window = 1ULL << 13;
};

/** An EthSwitch extended with the iSwitch accelerator. */
class ProgrammableSwitch : public net::EthSwitch
{
  public:
    ProgrammableSwitch(sim::Simulation &s, std::string name,
                       std::size_t num_ports,
                       ProgrammableSwitchConfig cfg = {});

    Accelerator &accelerator() { return accel_; }
    ControlPlane &controlPlane() { return ctrl_; }
    net::Ipv4Addr ip() const { return cfg_.ip; }
    bool isRoot() const { return cfg_.parent.isUnspecified(); }

    /**
     * Register a member without the Join handshake (used by tests and
     * by harness builders that wire clusters programmatically).
     * @p job tags the member's training job for multi-job sharing.
     */
    void adminJoin(net::Ipv4Addr ip, std::uint16_t udp_port, MemberType type,
                   std::uint8_t job = 0);

    /**
     * Pin the aggregation threshold H. Without this call H tracks the
     * membership count (the paper's default: H = number of children).
     */
    void setManualThreshold(std::uint32_t h);

    /** Completed results re-sendable via Help, keyed by segment. */
    std::size_t cachedResults() const { return result_cache_.size(); }

    // ----- High-availability roles (DESIGN.md §16) -----

    /**
     * Make this switch the HA primary: every accepted partial,
     * completed result, and membership event streams to the backup at
     * @p backup_ip as kTosRepl frames (a route to the backup must be
     * installed by the builder).
     */
    void enableHaPrimary(net::Ipv4Addr backup_ip,
                         std::uint16_t backup_port, ReplicationConfig repl);

    /**
     * Make this switch the HA backup: it applies replication frames,
     * feeds heartbeats into a HeartbeatMonitor, and on confirmed
     * primary death promotes itself — broadcasting kFailover to every
     * member so they re-home.
     */
    void enableHaBackup(sim::TimeNs heartbeat_period,
                        std::uint32_t miss_threshold);

    /**
     * Pre-wire the failover uplink of a child switch under an HA
     * root: on receiving kFailover it re-parents to @p new_parent and
     * makes @p port its default (uplink) port.
     */
    void setFailoverUplink(net::Ipv4Addr new_parent, std::size_t port);

    /** One primary HA tick: lazy-replication pump plus a heartbeat. */
    void haBeat();

    /** One backup HA tick: re-evaluate the primary's liveness.
     *  Returns true exactly once — on the call that promotes. */
    bool haCheckPeer();

    bool haPromoted() const { return ha_promoted_; }
    sim::TimeNs haPromoteTime() const { return ha_promote_time_; }
    const HeartbeatMonitor &haMonitor() const { return ha_monitor_; }
    /** Primary-side replication counters (nullptr unless primary). */
    const ReplicatedAccelerator *replication() const { return repl_.get(); }
    /** Backup-side apply counters. */
    std::uint64_t haStateApplied() const { return ha_state_applied_; }
    std::uint64_t haResultsApplied() const { return ha_results_applied_; }
    std::uint64_t haMembersApplied() const { return ha_members_applied_; }

  protected:
    bool interceptIngress(const net::PacketPtr &pkt,
                          std::size_t in_port) override;

  private:
    /** A completed segment kept for Help-based recovery. */
    struct CachedResult
    {
        std::vector<float> values;
        std::uint32_t wire_floats = 0;
        std::uint32_t count = 0;
        std::uint64_t seq = 0; ///< how many completions this seg has had
        /** Wire word format of `values` (quantized datapaths). */
        net::Precision prec = net::Precision::kFp32;
        std::int8_t qexp = 0;
    };

    void onEmit(std::uint64_t key, SegState sum);
    void onControl(const net::PacketPtr &pkt);
    void onResult(const net::PacketPtr &pkt);

    /** Apply one replication frame (backup role). */
    void onRepl(const net::PacketPtr &pkt);

    /** Backup self-promotion: broadcast kFailover to all members. */
    void promote();

    /** Child-switch failover: flip the uplink to the promoted backup. */
    void adoptFailoverUplink();

    /** Egress one replication payload toward the backup. */
    void sendReplPayload(net::Payload payload);

    /** Fan a completed segment out to its job's members (result plane).
     *  @p key is the packed Seg word. */
    void broadcastResult(std::uint64_t key, const CachedResult &res);

    /** Send one result packet to a member. */
    void sendResultTo(const Member &m, std::uint64_t key,
                      const CachedResult &res);

    void sendControlTo(const Member &m, net::ControlPayload msg);

    /** Nack a contribution that bounced off a busy aggregator slot. */
    void sendNack(std::uint8_t job, std::uint64_t seg, std::uint32_t src);

    /** Recompute auto thresholds from membership (per job). */
    void refreshThreshold();

    /** Evict cache entries that fell out of the retention window. */
    void pruneCache(std::uint64_t latest_key);

    ProgrammableSwitchConfig cfg_;
    Accelerator accel_;
    ControlPlane ctrl_;
    bool manual_threshold_ = false;
    net::MacAddr mac_;
    /** Caches are keyed by packed Seg word (bare seg for job 0). */
    std::unordered_map<std::uint64_t, CachedResult> result_cache_;
    std::unordered_map<std::uint64_t, std::uint64_t> seg_completions_;
    /** Highest segment index seen, per job (cache eviction floors must
     *  not let one job's progress evict another job's entries). */
    std::unordered_map<std::uint8_t, std::uint64_t> max_seg_seen_;
    /**
     * Registry counters resolved at construction so the hot path never
     * concatenates names or mutates the registry map — required once
     * switches execute on shard-domain threads (sim/shard.hh).
     */
    struct HotCounters
    {
        sim::Counter &data_in;
        sim::Counter &ctrl_in;
        sim::Counter &segs_done;
        sim::Counter &nacks;
        sim::Counter &reclaimed;
    };
    HotCounters counters_;

    // ----- HA state (all roles default to off) -----
    std::unique_ptr<ReplicatedAccelerator> repl_; ///< primary role
    bool ha_primary_ = false;
    bool ha_backup_ = false;
    net::Ipv4Addr ha_peer_ip_;          ///< the backup (primary role)
    std::uint16_t ha_peer_port_ = 9000;
    HeartbeatMonitor ha_monitor_;       ///< backup role
    bool ha_promoted_ = false;
    sim::TimeNs ha_promote_time_ = 0;
    /** Pre-wired failover uplink (child switches of an HA root). */
    bool ha_has_failover_uplink_ = false;
    bool ha_failed_over_ = false;
    net::Ipv4Addr ha_failover_parent_;
    std::size_t ha_failover_port_ = 0;
    /** Backup-side apply counters (observability). */
    std::uint64_t ha_state_applied_ = 0;
    std::uint64_t ha_results_applied_ = 0;
    std::uint64_t ha_members_applied_ = 0;
};

} // namespace isw::core

#endif // ISW_CORE_PROGRAMMABLE_SWITCH_HH
