#include "core/protocol.hh"

#include <cstring>

namespace isw::core {

namespace {

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 7; i >= 0; --i)
        out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

std::uint64_t
getU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v = (v << 8) | p[i];
    return v;
}

} // namespace

std::vector<std::uint8_t>
encodeControl(const net::ControlPayload &c)
{
    std::vector<std::uint8_t> out;
    out.reserve(1 + (c.has_value ? 8 : 0));
    out.push_back(static_cast<std::uint8_t>(c.action));
    if (c.has_value)
        putU64(out, c.value);
    return out;
}

std::optional<net::ControlPayload>
decodeControl(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() != 1 && bytes.size() != 9)
        return std::nullopt;
    const auto raw = bytes[0];
    if (raw < static_cast<std::uint8_t>(net::Action::kJoin) ||
        raw > static_cast<std::uint8_t>(net::Action::kNack)) {
        return std::nullopt;
    }
    net::ControlPayload c;
    c.action = static_cast<net::Action>(raw);
    if (bytes.size() == 9) {
        c.has_value = true;
        c.value = getU64(bytes.data() + 1);
    }
    return c;
}

std::vector<std::uint8_t>
encodeData(const net::ChunkPayload &d)
{
    std::vector<std::uint8_t> out;
    out.reserve(8 + std::size_t{d.wire_floats} * 4);
    putU64(out, packSegWord(d.seg, d.job, d.ver, d.prec, d.qexp));
    for (std::uint32_t i = 0; i < d.wire_floats; ++i) {
        float f = i < d.values.size() ? d.values[i] : 0.0f;
        std::uint32_t bits;
        std::memcpy(&bits, &f, sizeof(bits));
        for (int b = 3; b >= 0; --b)
            out.push_back(static_cast<std::uint8_t>((bits >> (8 * b)) & 0xFF));
    }
    return out;
}

std::optional<net::ChunkPayload>
decodeData(const std::vector<std::uint8_t> &bytes)
{
    if (bytes.size() < 8 || (bytes.size() - 8) % 4 != 0)
        return std::nullopt;
    net::ChunkPayload d;
    const std::uint64_t word = getU64(bytes.data());
    if (((word >> kSegWordPrecShift) & 3) == 3)
        return std::nullopt; // reserved precision tag
    d.seg = segWordIndex(word);
    d.job = segWordJob(word);
    d.ver = segWordVer(word);
    d.prec = segWordPrec(word);
    d.qexp = segWordQexp(word);
    d.wire_floats = static_cast<std::uint32_t>((bytes.size() - 8) / 4);
    d.values.resize(d.wire_floats);
    const std::uint8_t *p = bytes.data() + 8;
    for (std::uint32_t i = 0; i < d.wire_floats; ++i, p += 4) {
        std::uint32_t bits = (std::uint32_t{p[0]} << 24) |
                             (std::uint32_t{p[1]} << 16) |
                             (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
        std::memcpy(&d.values[i], &bits, sizeof(float));
    }
    return d;
}

} // namespace isw::core
