/**
 * @file
 * In-switch aggregation accelerator (paper Figure 7).
 *
 * Functional model: per-segment accumulate-and-count with threshold H,
 * emitting the summed segment the moment the H-th contribution lands
 * (on-the-fly aggregation, Figure 8b).
 *
 * Timing model: the NetFPGA datapath moves 256-bit bursts at 200 MHz
 * through eight parallel fp32 adders, so a packet of B wire bytes
 * occupies the pipeline for ceil(B/32) cycles of 5 ns. The pipeline is
 * modeled as a busy-until serialization point plus a small fixed
 * latency, matching the "bump-in-the-wire" integration of Figure 6.
 *
 * Slot pool (DESIGN.md §11): with num_slots > 0 the segment buffers are
 * a fixed SwitchML-style aggregator pool shared by one or more jobs;
 * contributions that hit a busy slot are Nacked back to the sender and
 * stale duplicates are dropped instead of corrupting a newer round.
 */

#ifndef ISW_CORE_ACCELERATOR_HH
#define ISW_CORE_ACCELERATOR_HH

#include <functional>
#include <vector>

#include "core/seg_buffer.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"

namespace isw::core {

/** Accelerator hardware parameters (defaults = paper's NetFPGA). */
struct AcceleratorConfig
{
    double clock_hz = 200e6;         ///< datapath clock
    std::size_t burst_bytes = 32;    ///< AXI4-Stream width: 256 bits
    sim::TimeNs fixed_latency = 100; ///< parse/decode pipeline depth
    /**
     * Aggregator slots carved out of switch SRAM (0 = unbounded, the
     * paper's dedicated-switch model). Each slot buffers one segment:
     * kFloatsPerSeg floats plus counters (DESIGN.md §11).
     */
    std::size_t num_slots = 0;
};

/**
 * The aggregation engine bolted onto a programmable switch.
 *
 * The owner (ProgrammableSwitch) feeds tagged data packets in via
 * ingest(); when a segment completes (or is force-broadcast) the
 * engine calls the emit callback with the harvested sum. Emission
 * happens in simulated time after the pipeline delay.
 *
 * Segment identity is the packed Seg word packSegWord(seg, job), so a
 * single engine can serve several jobs without cross-talk; single-job
 * callers (job 0) see plain segment indices, unchanged.
 */
class Accelerator
{
  public:
    /** Called when a segment's aggregate is ready to leave the chip.
     *  @p key is the packed Seg word (bare seg index for job 0). */
    using EmitFn = std::function<void(std::uint64_t key, SegState sum)>;

    /** Called when a contribution bounced off a busy aggregator slot:
     *  the switch turns this into a Nack control packet. */
    using NackFn = std::function<void(std::uint8_t job, std::uint64_t seg,
                                      std::uint32_t src)>;

    /** Called after a contribution is folded into a still-incomplete
     *  segment (HA primary streams the updated partial to its backup;
     *  completions replicate via the result path instead). */
    using AcceptFn = std::function<void(std::uint64_t key)>;

    Accelerator(sim::Simulation &s, AcceleratorConfig cfg = {});

    /** Install the emission callback (owned by the switch). */
    void setEmit(EmitFn fn) { emit_ = std::move(fn); }

    /** Install the busy-slot rejection callback. */
    void setNack(NackFn fn) { nack_ = std::move(fn); }

    /** Install the partial-accepted callback (HA replication). */
    void setAccept(AcceptFn fn) { accept_ = std::move(fn); }

    /** Aggregation threshold H (contributions per segment), job 0. */
    void setThreshold(std::uint32_t h) { threshold_ = h; }
    std::uint32_t threshold() const { return threshold_; }

    /** Per-job threshold override (job 0 falls back to threshold()). */
    void setJobThreshold(std::uint8_t job, std::uint32_t h);
    std::uint32_t thresholdFor(std::uint8_t job) const;

    /**
     * Enable per-source contribution dedupe. Synchronous training
     * turns this on so Help-driven retransmissions are idempotent;
     * asynchronous training leaves it off because contributions from
     * successive worker iterations legitimately share a buffer.
     */
    void setDedupeContributors(bool on) { dedupe_ = on; }
    bool dedupeContributors() const { return dedupe_; }

    /** Per-job dedupe override (jobs not set fall back to the global
     *  flag — lets sync and async jobs share one switch). */
    void setJobDedupe(std::uint8_t job, bool on);
    bool dedupeFor(std::uint8_t job) const;

    /**
     * Feed one tagged data packet into the pipeline. Accumulation and
     * possible emission occur after the modeled processing delay.
     * @param src Contributor identity (source IPv4 bits).
     */
    void ingest(const net::ChunkPayload &chunk, std::uint32_t src = 0);

    /**
     * Zero-copy ingest: holds a reference to the shared packet until
     * the accumulate event fires instead of copying the chunk into the
     * event closure. No-op for packets without a ChunkPayload.
     */
    void ingest(const net::PacketPtr &pkt);

    /**
     * Force emission of a (possibly partial) segment, clearing its
     * buffer (control-plane FBcast). No-op if the segment is empty.
     * @p key is the packed Seg word.
     */
    void forceEmit(std::uint64_t key);

    /** Clear all partial aggregation state (control-plane Reset). */
    void reset() { pool_.clear(); }

    /**
     * Remove and return a segment's partial state without emitting
     * (loss recovery: the partial may mix duplicate retransmissions).
     * Does not advance the slot's stale floor — the segment will be
     * retransmitted and must stay admissible.
     */
    SegState harvestPartial(std::uint64_t key)
    {
        return pool_.harvest(key, /*completed=*/false);
    }

    /**
     * Drop in-flight partials contributed to by @p src (membership
     * Leave of a crashed worker). Returns reclaimed slot count.
     */
    std::size_t reclaimFrom(std::uint32_t src)
    {
        return pool_.reclaimFrom(src);
    }

    /** Pipeline occupancy time for a packet of @p wire_bytes. */
    sim::TimeNs procTime(std::size_t wire_bytes) const;

    const SegBufferPool &pool() const { return pool_; }
    SegBufferPool &pool() { return pool_; }

    std::uint64_t packetsIngested() const { return ingested_; }
    std::uint64_t segmentsEmitted() const { return emitted_; }

  private:
    void emitSeg(std::uint64_t key);
    void afterAccumulate(const net::ChunkPayload &chunk, std::uint32_t src);

    sim::Simulation &sim_;
    AcceleratorConfig cfg_;
    SegBufferPool pool_;
    std::uint32_t threshold_ = 1;
    EmitFn emit_;
    NackFn nack_;
    AcceptFn accept_;
    sim::TimeNs busy_until_ = 0;
    bool dedupe_ = false;
    /** Per-job overrides; .set false = fall back to the globals. */
    struct JobKnobs
    {
        bool has_threshold = false;
        bool has_dedupe = false;
        std::uint32_t threshold = 1;
        bool dedupe = false;
    };
    std::vector<JobKnobs> job_knobs_;
    std::uint64_t ingested_ = 0;
    std::uint64_t emitted_ = 0;
};

} // namespace isw::core

#endif // ISW_CORE_ACCELERATOR_HH
