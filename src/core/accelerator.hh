/**
 * @file
 * In-switch aggregation accelerator (paper Figure 7).
 *
 * Functional model: per-segment accumulate-and-count with threshold H,
 * emitting the summed segment the moment the H-th contribution lands
 * (on-the-fly aggregation, Figure 8b).
 *
 * Timing model: the NetFPGA datapath moves 256-bit bursts at 200 MHz
 * through eight parallel fp32 adders, so a packet of B wire bytes
 * occupies the pipeline for ceil(B/32) cycles of 5 ns. The pipeline is
 * modeled as a busy-until serialization point plus a small fixed
 * latency, matching the "bump-in-the-wire" integration of Figure 6.
 */

#ifndef ISW_CORE_ACCELERATOR_HH
#define ISW_CORE_ACCELERATOR_HH

#include <functional>

#include "core/seg_buffer.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"

namespace isw::core {

/** Accelerator hardware parameters (defaults = paper's NetFPGA). */
struct AcceleratorConfig
{
    double clock_hz = 200e6;         ///< datapath clock
    std::size_t burst_bytes = 32;    ///< AXI4-Stream width: 256 bits
    sim::TimeNs fixed_latency = 100; ///< parse/decode pipeline depth
};

/**
 * The aggregation engine bolted onto a programmable switch.
 *
 * The owner (ProgrammableSwitch) feeds tagged data packets in via
 * ingest(); when a segment completes (or is force-broadcast) the
 * engine calls the emit callback with the harvested sum. Emission
 * happens in simulated time after the pipeline delay.
 */
class Accelerator
{
  public:
    /** Called when a segment's aggregate is ready to leave the chip. */
    using EmitFn = std::function<void(std::uint64_t seg, SegState sum)>;

    Accelerator(sim::Simulation &s, AcceleratorConfig cfg = {});

    /** Install the emission callback (owned by the switch). */
    void setEmit(EmitFn fn) { emit_ = std::move(fn); }

    /** Aggregation threshold H (contributions per segment). */
    void setThreshold(std::uint32_t h) { threshold_ = h; }
    std::uint32_t threshold() const { return threshold_; }

    /**
     * Enable per-source contribution dedupe. Synchronous training
     * turns this on so Help-driven retransmissions are idempotent;
     * asynchronous training leaves it off because contributions from
     * successive worker iterations legitimately share a buffer.
     */
    void setDedupeContributors(bool on) { dedupe_ = on; }
    bool dedupeContributors() const { return dedupe_; }

    /**
     * Feed one tagged data packet into the pipeline. Accumulation and
     * possible emission occur after the modeled processing delay.
     * @param src Contributor identity (source IPv4 bits).
     */
    void ingest(const net::ChunkPayload &chunk, std::uint32_t src = 0);

    /**
     * Zero-copy ingest: holds a reference to the shared packet until
     * the accumulate event fires instead of copying the chunk into the
     * event closure. No-op for packets without a ChunkPayload.
     */
    void ingest(const net::PacketPtr &pkt);

    /**
     * Force emission of a (possibly partial) segment, clearing its
     * buffer (control-plane FBcast). No-op if the segment is empty.
     */
    void forceEmit(std::uint64_t seg);

    /** Clear all partial aggregation state (control-plane Reset). */
    void reset() { pool_.clear(); }

    /**
     * Remove and return a segment's partial state without emitting
     * (loss recovery: the partial may mix duplicate retransmissions).
     */
    SegState harvestPartial(std::uint64_t seg) { return pool_.harvest(seg); }

    /** Pipeline occupancy time for a packet of @p wire_bytes. */
    sim::TimeNs procTime(std::size_t wire_bytes) const;

    const SegBufferPool &pool() const { return pool_; }

    std::uint64_t packetsIngested() const { return ingested_; }
    std::uint64_t segmentsEmitted() const { return emitted_; }

  private:
    void emitSeg(std::uint64_t seg);

    sim::Simulation &sim_;
    AcceleratorConfig cfg_;
    SegBufferPool pool_;
    std::uint32_t threshold_ = 1;
    EmitFn emit_;
    sim::TimeNs busy_until_ = 0;
    bool dedupe_ = false;
    std::uint64_t ingested_ = 0;
    std::uint64_t emitted_ = 0;
};

} // namespace isw::core

#endif // ISW_CORE_ACCELERATOR_HH
