#include "core/seg_buffer.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "ml/quantize.hh"
#include "net/packet_pool.hh"

namespace isw::core {

std::uint32_t
SegBufferPool::findSlot(std::uint64_t seg) const
{
    if (buckets_.empty())
        return kNoSlot;
    std::size_t i = hashSeg(seg) & mask_;
    while (buckets_[i].slot_plus1 != 0) {
        if (buckets_[i].seg == seg)
            return buckets_[i].slot_plus1 - 1;
        i = (i + 1) & mask_;
    }
    return kNoSlot;
}

std::uint32_t
SegBufferPool::findOrInsert(std::uint64_t seg)
{
    if (buckets_.empty() || (active_ + 1) * 4 > buckets_.size() * 3)
        grow();
    std::size_t i = hashSeg(seg) & mask_;
    while (buckets_[i].slot_plus1 != 0) {
        if (buckets_[i].seg == seg)
            return buckets_[i].slot_plus1 - 1;
        i = (i + 1) & mask_;
    }
    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
    }
    buckets_[i] = Bucket{seg, slot + 1};
    ++active_;
    peak_ = std::max(peak_, active_);
    return slot;
}

void
SegBufferPool::eraseIndex(std::uint64_t seg)
{
    std::size_t i = hashSeg(seg) & mask_;
    while (buckets_[i].seg != seg || buckets_[i].slot_plus1 == 0)
        i = (i + 1) & mask_;
    // Backward-shift deletion keeps probe chains intact without
    // tombstones: pull up any entry whose probe path crosses the hole.
    std::size_t j = i;
    for (;;) {
        buckets_[i] = Bucket{};
        for (;;) {
            j = (j + 1) & mask_;
            if (buckets_[j].slot_plus1 == 0)
                return;
            const std::size_t k = hashSeg(buckets_[j].seg) & mask_;
            // Movable iff the hole lies on j's probe path from k.
            if (((j - k) & mask_) >= ((j - i) & mask_))
                break;
        }
        buckets_[i] = buckets_[j];
        i = j;
    }
}

void
SegBufferPool::grow()
{
    const std::size_t cap = buckets_.empty() ? 64 : buckets_.size() * 2;
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(cap, Bucket{});
    mask_ = cap - 1;
    for (const Bucket &b : old) {
        if (b.slot_plus1 == 0)
            continue;
        std::size_t i = hashSeg(b.seg) & mask_;
        while (buckets_[i].slot_plus1 != 0)
            i = (i + 1) & mask_;
        buckets_[i] = b;
    }
}

void
SegBufferPool::setCapacity(std::size_t slots)
{
    clear();
    capacity_ = slots;
    slots_.assign(capacity_, Slot{});
    partitions_.clear();
    partitioned_ = false;
}

void
SegBufferPool::setJobPartition(std::uint8_t job, std::uint32_t base,
                               std::uint32_t quota)
{
    if (!bounded())
        throw std::logic_error(
            "SegBufferPool::setJobPartition: pool is unbounded");
    if (quota == 0 || std::size_t{base} + quota > capacity_)
        throw std::invalid_argument(
            "SegBufferPool::setJobPartition: partition exceeds capacity");
    if (partitions_.size() <= job)
        partitions_.resize(std::size_t{job} + 1);
    partitions_[job] = Partition{base, quota, true};
    partitioned_ = true;
}

std::uint32_t
SegBufferPool::quotaFor(std::uint8_t job) const
{
    if (!partitioned_)
        return static_cast<std::uint32_t>(capacity_);
    if (job < partitions_.size() && partitions_[job].set)
        return partitions_[job].quota;
    return 0;
}

SlotPoolStats &
SegBufferPool::statsFor(std::uint8_t job)
{
    if (stats_.size() <= job)
        stats_.resize(std::size_t{job} + 1);
    return stats_[job];
}

SlotPoolStats
SegBufferPool::jobStats(std::uint8_t job) const
{
    return job < stats_.size() ? stats_[job] : SlotPoolStats{};
}

std::uint64_t
SegBufferPool::contentionEvents() const
{
    std::uint64_t n = 0;
    for (const SlotPoolStats &s : stats_)
        n += s.stale_drops + s.busy_drops + s.unadmitted + s.reclaimed;
    return n;
}

SlotPoolStats
SegBufferPool::totals() const
{
    SlotPoolStats t;
    for (const SlotPoolStats &s : stats_) {
        t.accepted += s.accepted;
        t.completed += s.completed;
        t.duplicates += s.duplicates;
        t.stale_drops += s.stale_drops;
        t.busy_drops += s.busy_drops;
        t.unadmitted += s.unadmitted;
        t.reclaimed += s.reclaimed;
        t.overflow_clamps += s.overflow_clamps;
        t.exp_rescales += s.exp_rescales;
    }
    return t;
}

SlotOutcome
SegBufferPool::foldInto(SegState &st, const net::ChunkPayload &chunk,
                        std::uint32_t h, std::uint32_t src, bool dedupe)
{
    if (dedupe && !st.contributors.insert(src).second)
        return SlotOutcome::kDuplicate; // retransmission: already folded in
    st.wire_floats = std::max(st.wire_floats, chunk.wire_floats);
    if (st.count == 0) {
        st.prec = chunk.prec;
        st.qexp = chunk.qexp;
    }
    const std::size_t n = chunk.values.size();
    if (st.acc.size() < n) {
        if (st.acc.capacity() == 0)
            st.acc = net::PacketPool::local().acquireFloats(n);
        st.acc.resize(n, 0.0f);
    }
    float *__restrict__ a = st.acc.data();
    const float *__restrict__ v = chunk.values.data();
    if (st.prec == net::Precision::kInt32) {
        // Integer-ALU datapath: saturating int32 adds at the slot's
        // shared exponent. Equal-exponent contributions commute
        // bit-identically; a mismatch rescales toward the larger
        // exponent (max over contributions — itself order-independent)
        // and is counted as the documented degraded path.
        SlotPoolStats &js = statsFor(chunk.job);
        std::uint64_t clamps = 0;
        if (chunk.qexp != st.qexp) {
            ++js.exp_rescales;
            if (chunk.qexp > st.qexp) {
                clamps += ml::rescaleBlockInt32(a, st.acc.size(), st.qexp,
                                                chunk.qexp);
                st.qexp = chunk.qexp;
            }
        }
        if (chunk.qexp < st.qexp) {
            std::vector<float> tmp(v, v + n);
            clamps +=
                ml::rescaleBlockInt32(tmp.data(), n, chunk.qexp, st.qexp);
            clamps += ml::addBlockInt32(a, tmp.data(), n);
        } else {
            clamps += ml::addBlockInt32(a, v, n);
        }
        js.overflow_clamps += clamps;
    } else if (st.prec == net::Precision::kFp16) {
        // FPISA-style half adders: unpack both packed halves, add in
        // fp32, round back to fp16 — per-step rounding included.
        for (std::size_t i = 0; i < n; ++i)
            a[i] = ml::addHalfWords(a[i], v[i]);
    } else {
        for (std::size_t i = 0; i < n; ++i)
            a[i] += v[i];
    }
    ++st.count;
    return st.count >= h ? SlotOutcome::kCompleted : SlotOutcome::kAccepted;
}

SlotOutcome
SegBufferPool::offer(const net::ChunkPayload &chunk, std::uint32_t h,
                     std::uint32_t src, bool dedupe)
{
    const SlotOutcome out = bounded()
                                ? offerBounded(chunk, h, src, dedupe)
                                : offerUnbounded(chunk, h, src, dedupe);
    SlotPoolStats &s = statsFor(chunk.job);
    switch (out) {
      case SlotOutcome::kAccepted: ++s.accepted; break;
      case SlotOutcome::kCompleted: ++s.accepted; ++s.completed; break;
      case SlotOutcome::kDuplicate: ++s.duplicates; break;
      case SlotOutcome::kStale: ++s.stale_drops; break;
      case SlotOutcome::kBusy: ++s.busy_drops; break;
      case SlotOutcome::kUnadmitted: ++s.unadmitted; break;
    }
    return out;
}

SlotOutcome
SegBufferPool::offerUnbounded(const net::ChunkPayload &chunk, std::uint32_t h,
                              std::uint32_t src, bool dedupe)
{
    const std::uint64_t key = packSegWord(chunk.seg, chunk.job);
    return foldInto(slab_[findOrInsert(key)], chunk, h, src, dedupe);
}

std::uint32_t
SegBufferPool::boundedSlot(std::uint8_t job, std::uint64_t seg) const
{
    if (!partitioned_)
        return static_cast<std::uint32_t>(seg % capacity_);
    if (job >= partitions_.size() || !partitions_[job].set)
        return kNoSlot;
    const Partition &p = partitions_[job];
    return p.base + static_cast<std::uint32_t>(seg % p.quota);
}

SlotOutcome
SegBufferPool::offerBounded(const net::ChunkPayload &chunk, std::uint32_t h,
                            std::uint32_t src, bool dedupe)
{
    const std::uint32_t idx = boundedSlot(chunk.job, chunk.seg);
    if (idx == kNoSlot)
        return SlotOutcome::kUnadmitted;
    Slot &sl = slots_[idx];
    if (!sl.used) {
        // Stale floor: a duplicate of an already-completed segment must
        // not re-claim the slot — it would accumulate forever (its
        // other contributors are gone) and deadlock the stream.
        if (dedupe && chunk.seg < sl.floor)
            return SlotOutcome::kStale;
        sl.used = true;
        sl.ordered = dedupe;
        sl.job = chunk.job;
        sl.ver = chunk.ver & 1;
        sl.seg = chunk.seg;
        ++active_;
        peak_ = std::max(peak_, active_);
        const SlotOutcome out = foldInto(sl.st, chunk, h, src, dedupe);
        return out; // fresh claim cannot be a duplicate
    }
    if (sl.job == chunk.job && sl.seg == chunk.seg) {
        if (sl.ver != (chunk.ver & 1))
            return SlotOutcome::kStale; // other reuse cycle of same seg
        return foldInto(sl.st, chunk, h, src, dedupe);
    }
    // Slot conflict. Ordered traffic: an older seg is stale (its round
    // already finished — drop); a newer seg means the occupant is still
    // aggregating — Nack so the sender retries once the slot frees.
    if (dedupe && chunk.seg < sl.seg)
        return SlotOutcome::kStale;
    return SlotOutcome::kBusy;
}

std::uint32_t
SegBufferPool::count(std::uint64_t key) const
{
    if (bounded()) {
        const std::uint32_t idx = boundedSlot(segWordJob(key),
                                              segWordIndex(key));
        if (idx == kNoSlot)
            return 0;
        const Slot &sl = slots_[idx];
        return (sl.used && sl.job == segWordJob(key) &&
                sl.seg == segWordIndex(key))
                   ? sl.st.count
                   : 0;
    }
    const std::uint32_t slot = findSlot(key);
    return slot == kNoSlot ? 0 : slab_[slot].count;
}

bool
SegBufferPool::has(std::uint64_t key) const
{
    return count(key) != 0;
}

const SegState *
SegBufferPool::peek(std::uint64_t key) const
{
    if (bounded())
        return nullptr; // HA replication runs unbounded only
    const std::uint32_t slot = findSlot(key);
    return slot == kNoSlot ? nullptr : &slab_[slot];
}

void
SegBufferPool::installReplica(std::uint64_t key, SegState st)
{
    if (bounded())
        throw std::logic_error(
            "SegBufferPool::installReplica: bounded pools unsupported "
            "(HA backups run the unbounded dedicated-switch model)");
    slab_[findOrInsert(key)] = std::move(st);
}

SegState
SegBufferPool::harvest(std::uint64_t key, bool completed)
{
    if (bounded()) {
        const std::uint32_t idx = boundedSlot(segWordJob(key),
                                              segWordIndex(key));
        if (idx == kNoSlot)
            throw std::out_of_range(
                "SegBufferPool::harvest: no such segment");
        Slot &sl = slots_[idx];
        if (!sl.used || sl.job != segWordJob(key) ||
            sl.seg != segWordIndex(key))
            throw std::out_of_range(
                "SegBufferPool::harvest: no such segment");
        SegState out = std::move(sl.st);
        sl.st = SegState{};
        sl.used = false;
        // A completed segment moves the stale floor past itself so late
        // duplicates are dropped; a recovery drop leaves the floor so
        // the retransmitted segment is still admissible.
        if (completed && sl.ordered)
            sl.floor = std::max(sl.floor, sl.seg + 1);
        --active_;
        return out;
    }
    const std::uint32_t slot = findSlot(key);
    if (slot == kNoSlot)
        throw std::out_of_range("SegBufferPool::harvest: no such segment");
    SegState out = std::move(slab_[slot]);
    // Park a clean, capacity-preserving slot for the next segment.
    SegState &st = slab_[slot];
    st.acc.clear();
    st.count = 0;
    st.wire_floats = 0;
    st.prec = net::Precision::kFp32;
    st.qexp = 0;
    st.contributors.clear();
    eraseIndex(key);
    free_.push_back(slot);
    --active_;
    return out;
}

std::size_t
SegBufferPool::reclaimFrom(std::uint32_t src)
{
    std::size_t n = 0;
    if (bounded()) {
        for (Slot &sl : slots_) {
            if (!sl.used || sl.st.contributors.count(src) == 0)
                continue;
            sl.st = SegState{};
            sl.used = false; // floor untouched: survivors may resend
            --active_;
            ++statsFor(sl.job).reclaimed;
            ++n;
        }
        return n;
    }
    std::vector<std::uint64_t> keys;
    for (const Bucket &b : buckets_) {
        if (b.slot_plus1 != 0 &&
            slab_[b.slot_plus1 - 1].contributors.count(src) != 0)
            keys.push_back(b.seg);
    }
    for (std::uint64_t key : keys) {
        harvest(key, /*completed=*/false);
        ++statsFor(segWordJob(key)).reclaimed;
        ++n;
    }
    return n;
}

void
SegBufferPool::clear()
{
    buckets_.clear();
    mask_ = 0;
    slab_.clear();
    free_.clear();
    active_ = 0;
    slots_.assign(capacity_, Slot{});
}

} // namespace isw::core
