#include "core/seg_buffer.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "net/packet_pool.hh"

namespace isw::core {

std::uint32_t
SegBufferPool::findSlot(std::uint64_t seg) const
{
    if (buckets_.empty())
        return kNoSlot;
    std::size_t i = hashSeg(seg) & mask_;
    while (buckets_[i].slot_plus1 != 0) {
        if (buckets_[i].seg == seg)
            return buckets_[i].slot_plus1 - 1;
        i = (i + 1) & mask_;
    }
    return kNoSlot;
}

std::uint32_t
SegBufferPool::findOrInsert(std::uint64_t seg)
{
    if (buckets_.empty() || (active_ + 1) * 4 > buckets_.size() * 3)
        grow();
    std::size_t i = hashSeg(seg) & mask_;
    while (buckets_[i].slot_plus1 != 0) {
        if (buckets_[i].seg == seg)
            return buckets_[i].slot_plus1 - 1;
        i = (i + 1) & mask_;
    }
    std::uint32_t slot;
    if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
    }
    buckets_[i] = Bucket{seg, slot + 1};
    ++active_;
    peak_ = std::max(peak_, active_);
    return slot;
}

void
SegBufferPool::eraseIndex(std::uint64_t seg)
{
    std::size_t i = hashSeg(seg) & mask_;
    while (buckets_[i].seg != seg || buckets_[i].slot_plus1 == 0)
        i = (i + 1) & mask_;
    // Backward-shift deletion keeps probe chains intact without
    // tombstones: pull up any entry whose probe path crosses the hole.
    std::size_t j = i;
    for (;;) {
        buckets_[i] = Bucket{};
        for (;;) {
            j = (j + 1) & mask_;
            if (buckets_[j].slot_plus1 == 0)
                return;
            const std::size_t k = hashSeg(buckets_[j].seg) & mask_;
            // Movable iff the hole lies on j's probe path from k.
            if (((j - k) & mask_) >= ((j - i) & mask_))
                break;
        }
        buckets_[i] = buckets_[j];
        i = j;
    }
}

void
SegBufferPool::grow()
{
    const std::size_t cap = buckets_.empty() ? 64 : buckets_.size() * 2;
    std::vector<Bucket> old = std::move(buckets_);
    buckets_.assign(cap, Bucket{});
    mask_ = cap - 1;
    for (const Bucket &b : old) {
        if (b.slot_plus1 == 0)
            continue;
        std::size_t i = hashSeg(b.seg) & mask_;
        while (buckets_[i].slot_plus1 != 0)
            i = (i + 1) & mask_;
        buckets_[i] = b;
    }
}

bool
SegBufferPool::accumulate(const net::ChunkPayload &chunk, std::uint32_t h,
                          std::uint32_t src, bool dedupe)
{
    SegState &st = slab_[findOrInsert(chunk.seg)];
    if (dedupe && !st.contributors.insert(src).second)
        return false; // duplicate retransmission: already folded in
    st.wire_floats = std::max(st.wire_floats, chunk.wire_floats);
    const std::size_t n = chunk.values.size();
    if (st.acc.size() < n) {
        if (st.acc.capacity() == 0)
            st.acc = net::PacketPool::local().acquireFloats(n);
        st.acc.resize(n, 0.0f);
    }
    float *__restrict__ a = st.acc.data();
    const float *__restrict__ v = chunk.values.data();
    for (std::size_t i = 0; i < n; ++i)
        a[i] += v[i];
    ++st.count;
    return st.count >= h;
}

std::uint32_t
SegBufferPool::count(std::uint64_t seg) const
{
    const std::uint32_t slot = findSlot(seg);
    return slot == kNoSlot ? 0 : slab_[slot].count;
}

SegState
SegBufferPool::harvest(std::uint64_t seg)
{
    const std::uint32_t slot = findSlot(seg);
    if (slot == kNoSlot)
        throw std::out_of_range("SegBufferPool::harvest: no such segment");
    SegState out = std::move(slab_[slot]);
    // Park a clean, capacity-preserving slot for the next segment.
    SegState &st = slab_[slot];
    st.acc.clear();
    st.count = 0;
    st.wire_floats = 0;
    st.contributors.clear();
    eraseIndex(seg);
    free_.push_back(slot);
    --active_;
    return out;
}

void
SegBufferPool::clear()
{
    buckets_.clear();
    mask_ = 0;
    slab_.clear();
    free_.clear();
    active_ = 0;
}

} // namespace isw::core
