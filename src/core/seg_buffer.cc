#include "core/seg_buffer.hh"

#include <algorithm>
#include <stdexcept>

namespace isw::core {

bool
SegBufferPool::accumulate(const net::ChunkPayload &chunk, std::uint32_t h,
                          std::uint32_t src, bool dedupe)
{
    SegState &st = segs_[chunk.seg];
    peak_ = std::max(peak_, segs_.size());
    if (dedupe && !st.contributors.insert(src).second)
        return false; // duplicate retransmission: already folded in
    st.wire_floats = std::max(st.wire_floats, chunk.wire_floats);
    if (st.acc.size() < chunk.values.size())
        st.acc.resize(chunk.values.size(), 0.0f);
    for (std::size_t i = 0; i < chunk.values.size(); ++i)
        st.acc[i] += chunk.values[i];
    ++st.count;
    return st.count >= h;
}

std::uint32_t
SegBufferPool::count(std::uint64_t seg) const
{
    auto it = segs_.find(seg);
    return it == segs_.end() ? 0 : it->second.count;
}

SegState
SegBufferPool::harvest(std::uint64_t seg)
{
    auto it = segs_.find(seg);
    if (it == segs_.end())
        throw std::out_of_range("SegBufferPool::harvest: no such segment");
    SegState st = std::move(it->second);
    segs_.erase(it);
    return st;
}

} // namespace isw::core
