/**
 * @file
 * iSwitch control plane: membership table (paper Figure 9) and the
 * control-message state machine (paper Table 2).
 */

#ifndef ISW_CORE_CONTROL_HH
#define ISW_CORE_CONTROL_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "net/packet.hh"
#include "sim/time.hh"

namespace isw::core {

/** Membership entry type (Figure 9's Type column). */
enum class MemberType : std::uint8_t { kWorker = 0, kSwitch = 1 };

/** One row of the membership table. */
struct Member
{
    std::uint32_t id = 0;
    net::Ipv4Addr ip;
    std::uint16_t udp_port = 0;
    MemberType type = MemberType::kWorker;
    std::uint8_t job = 0; ///< training job this member belongs to
};

/**
 * Pack a Join message's Value field: low 16 bits the member's UDP
 * port, bit 16 the member type, bits 24..31 the member's job id
 * (zero for the sole job, keeping the value unchanged from the
 * single-job format).
 */
constexpr std::uint64_t
encodeJoinValue(std::uint16_t udp_port, MemberType type,
                std::uint8_t job = 0)
{
    return std::uint64_t{udp_port} |
           (std::uint64_t{type == MemberType::kSwitch} << 16) |
           (std::uint64_t{job} << 24);
}

/** Unpack the UDP port from a Join Value. */
constexpr std::uint16_t
joinValuePort(std::uint64_t v)
{
    return static_cast<std::uint16_t>(v & 0xFFFF);
}

/** Unpack the member type from a Join Value. */
constexpr MemberType
joinValueType(std::uint64_t v)
{
    return (v >> 16) & 1 ? MemberType::kSwitch : MemberType::kWorker;
}

/** Unpack the job id from a Join Value. */
constexpr std::uint8_t
joinValueJob(std::uint64_t v)
{
    return static_cast<std::uint8_t>((v >> 24) & 0xFF);
}

/** Pack a Help request Value: completion sequence number + segment. */
constexpr std::uint64_t
helpValue(std::uint64_t want_seq, std::uint64_t seg)
{
    return (want_seq << 32) | (seg & 0xFFFFFFFFULL);
}

/** Segment of a Help request Value. */
constexpr std::uint64_t
helpSeg(std::uint64_t v)
{
    return v & 0xFFFFFFFFULL;
}

/** Wanted completion sequence of a Help request Value. */
constexpr std::uint64_t
helpSeq(std::uint64_t v)
{
    return v >> 32;
}

/**
 * The light-weight membership table maintained in the control plane.
 * Keyed by member IP; ids are assigned on join and stable until leave.
 */
class MembershipTable
{
  public:
    /**
     * Add or refresh a member; returns its id. Idempotent per IP.
     * @p changed (optional) is set true only when the table actually
     * changed — a new row, or an existing row's port/type/job updated —
     * so a duplicate Join does not look like a membership event.
     */
    std::uint32_t join(net::Ipv4Addr ip, std::uint16_t udp_port,
                       MemberType type, std::uint8_t job = 0,
                       bool *changed = nullptr);

    /** Remove a member; returns true if it existed. */
    bool leave(net::Ipv4Addr ip);

    /** Look up a member by IP. */
    std::optional<Member> find(net::Ipv4Addr ip) const;

    /** All members in id order. */
    std::vector<Member> members() const;

    std::size_t size() const { return by_ip_.size(); }
    bool empty() const { return by_ip_.empty(); }

  private:
    std::map<std::uint32_t, net::Ipv4Addr> by_id_;
    std::map<net::Ipv4Addr, Member> by_ip_;
    std::uint32_t next_id_ = 0;
};

/**
 * Heartbeat-based failure detector (HA layer, DESIGN.md §16). The
 * primary beats every `period`; the backup calls check() on its own
 * timer and classifies the primary by consecutive missed periods:
 * alive (< 2 misses — one miss is normal jitter between the beat and
 * check phases), suspect (>= 2), confirmed dead (>= miss_threshold).
 * Pure bookkeeping — no events, no network — so it is trivially
 * domain-safe: beat() and check() both run in the backup's domain.
 */
class HeartbeatMonitor
{
  public:
    enum class State : std::uint8_t { kAlive, kSuspect, kDead };

    void
    configure(sim::TimeNs period, std::uint32_t miss_threshold,
              sim::TimeNs now)
    {
        period_ = period;
        miss_threshold_ = miss_threshold;
        last_beat_ = now; // baseline: primary assumed alive at start
    }

    /** A beat arrived from the primary. */
    void
    beat(sim::TimeNs now)
    {
        last_beat_ = now;
        peak_misses_ = 0;
        ++beats_;
    }

    /** Re-evaluate the primary's state at @p now. */
    State
    check(sim::TimeNs now)
    {
        const std::uint64_t misses =
            period_ > 0 && now > last_beat_
                ? static_cast<std::uint64_t>((now - last_beat_) / period_)
                : 0;
        if (misses > peak_misses_) {
            missed_ += misses - peak_misses_;
            peak_misses_ = misses;
        }
        if (misses >= miss_threshold_)
            return State::kDead;
        return misses >= 2 ? State::kSuspect : State::kAlive;
    }

    std::uint64_t beats() const { return beats_; }
    std::uint64_t missed() const { return missed_; }
    sim::TimeNs lastBeat() const { return last_beat_; }

  private:
    sim::TimeNs period_ = 0;
    std::uint32_t miss_threshold_ = 3;
    sim::TimeNs last_beat_ = 0;
    std::uint64_t peak_misses_ = 0; ///< misses already booked since last beat
    std::uint64_t beats_ = 0;
    std::uint64_t missed_ = 0;
};

/**
 * Control-plane logic, decoupled from the switch through callbacks so
 * it can be unit-tested without a network.
 */
class ControlPlane
{
  public:
    /** Operations the control plane invokes on its switch. */
    struct Hooks
    {
        /** Send a control message to a member. */
        std::function<void(const Member &, net::ControlPayload)> send_control;
        /** Clear accelerator buffers/counters (Reset). */
        std::function<void()> reset_accel;
        /** Set aggregation threshold H (SetH). */
        std::function<void(std::uint32_t)> set_threshold;
        /**
         * Force-broadcast a partially aggregated segment (FBcast).
         * @p key is the packed Seg word: the control plane stamps the
         * requester's job id into the high bits (bare seg for job 0).
         */
        std::function<void(std::uint64_t key)> force_broadcast;
        /**
         * Serve a Help request. The request value packs the wanted
         * completion sequence number in the high 32 bits and the
         * segment in the low 32 (helpValue()). Returns false when the
         * switch has no matching completed copy; the control plane
         * then clears the segment's partial state and asks all workers
         * to retransmit it.
         */
        std::function<bool(std::uint64_t request, const Member &requester)>
            resend_cached;
        /** Drop a segment's partial aggregation state (Help retry).
         *  @p key is the packed Seg word (requester's job stamped in). */
        std::function<void(std::uint64_t key)> clear_segment;
        /** Membership changed (auto-H recomputation lives here). */
        std::function<void()> membership_changed;
        /**
         * A member actually left (fires after the table row is gone).
         * The switch reclaims the leaver's in-flight aggregator slots
         * here so a crashed worker's partials don't pin buffers until
         * round end.
         */
        std::function<void(const Member &)> member_left;
        /** A liveness beat arrived (HA backup role). No ack. */
        std::function<void(net::Ipv4Addr)> heartbeat;
        /**
         * A kFailover frame arrived: the backup promoted itself and
         * this switch must re-home to it (flip its uplink). No ack.
         */
        std::function<void()> failover;
    };

    explicit ControlPlane(Hooks hooks) : hooks_(std::move(hooks)) {}

    /**
     * Process one control message arriving from @p src_ip/@p src_port.
     * Replies (Ack etc.) flow through the hooks.
     */
    void handle(net::Ipv4Addr src_ip, std::uint16_t src_port,
                const net::ControlPayload &msg);

    MembershipTable &table() { return table_; }
    const MembershipTable &table() const { return table_; }

    /** Workers currently halted? (Halt toggles, Join clears.) */
    bool halted() const { return halted_; }

  private:
    void ack(net::Ipv4Addr ip, std::uint16_t port, bool ok);

    Hooks hooks_;
    MembershipTable table_;
    bool halted_ = false;
};

} // namespace isw::core

#endif // ISW_CORE_CONTROL_HH
