#include "core/replication.hh"

#include <bit>

#include "core/accelerator.hh"
#include "core/protocol.hh"

namespace isw::core {

ReplicatedAccelerator::ReplicatedAccelerator(sim::Simulation &sim,
                                             Accelerator &accel,
                                             ReplicationConfig cfg,
                                             SendFn send)
    : sim_(sim), accel_(accel), cfg_(cfg), send_(std::move(send))
{
}

void
ReplicatedAccelerator::sendState(std::uint64_t key)
{
    const SegState *st = accel_.pool().peek(key);
    if (st == nullptr)
        return; // completed or reclaimed since it was dirtied
    net::ChunkPayload ch;
    ch.transfer_id = packReplState(
        static_cast<std::uint32_t>(st->contributors.size()), st->count);
    ch.seg = segWordIndex(key);
    ch.job = segWordJob(key);
    ch.wire_floats = st->wire_floats;
    ch.prec = st->prec;
    ch.qexp = st->qexp;
    ch.values = st->acc;
    // The full contributor set rides after the accumulator words
    // (IPv4 bits bit-cast into float slots). Wire accounting charges
    // wire_floats only — the set is the real switch's per-slot
    // contributor bitmap, which fits the slot tag word.
    ch.values.reserve(ch.values.size() + st->contributors.size());
    for (const std::uint32_t c : st->contributors)
        ch.values.push_back(std::bit_cast<float>(c));
    send_(std::move(ch));
    ++stats_.state_frames;
}

void
ReplicatedAccelerator::onAccept(std::uint64_t key)
{
    if (cfg_.mode == ReplicationMode::kPerHarvest) {
        sendState(key);
        return;
    }
    if (dirty_.insert(key).second)
        dirty_order_.push_back(key);
    if (sim_.now() - last_flush_ >= cfg_.staleness_window)
        flushDirty();
}

void
ReplicatedAccelerator::flushDirty()
{
    last_flush_ = sim_.now();
    if (dirty_order_.empty())
        return;
    for (const std::uint64_t key : dirty_order_)
        sendState(key);
    dirty_order_.clear();
    dirty_.clear();
}

void
ReplicatedAccelerator::pump()
{
    if (cfg_.mode != ReplicationMode::kBatchedLazy)
        return;
    if (sim_.now() - last_flush_ >= cfg_.staleness_window)
        flushDirty();
}

void
ReplicatedAccelerator::onResult(std::uint64_t key,
                                const std::vector<float> &values,
                                std::uint32_t wire_floats,
                                std::uint32_t count, std::uint64_t seq,
                                net::Precision prec, std::int8_t qexp)
{
    // Results replicate immediately in both modes: they advance the
    // backup's completion floor, which is what post-failover Help
    // requests are served from.
    if (dirty_.erase(key) != 0) {
        for (auto it = dirty_order_.begin(); it != dirty_order_.end(); ++it) {
            if (*it == key) {
                dirty_order_.erase(it);
                break;
            }
        }
    }
    net::ChunkPayload ch;
    ch.transfer_id = packReplResult(seq, count);
    ch.seg = segWordIndex(key);
    ch.job = segWordJob(key);
    ch.wire_floats = wire_floats;
    ch.prec = prec;
    ch.qexp = qexp;
    ch.values = values;
    send_(std::move(ch));
    ++stats_.result_frames;
}

void
ReplicatedAccelerator::onMembership(net::Action action,
                                    std::uint32_t member_ip_bits,
                                    std::uint64_t join_value)
{
    net::ControlPayload c;
    c.action = action;
    c.has_value = true;
    c.value = packReplMember(member_ip_bits, join_value);
    send_(c);
    ++stats_.member_frames;
}

} // namespace isw::core
